// WordCount three ways (the Figure 8(b) comparison): the baseline heap
// path, the Gerenuk-transformed native path, and the Tungsten/DataFrame
// configuration whose fused binary-string tokenizer wins this flat
// workload.
//
// Run with:
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/apps/sparkapps"
	"repro/internal/engine"
	"repro/internal/spark"
	"repro/internal/tungsten"
	"repro/internal/workload"
)

func main() {
	docs := workload.GenDocs(60, 40, 7)

	type outcome struct {
		name   string
		counts map[string]int64
		stats  string
	}
	var results []outcome

	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		prog := sparkapps.NewProgram(sparkapps.ClsDoc, sparkapps.ClsWordCount)
		comp := engine.Compile(prog)
		ctx := spark.NewContext(comp, mode)
		wc := sparkapps.WordCount{}
		wc.Register(prog)
		parts, err := workload.Encode(comp.Codec, sparkapps.ClsDoc, docs, 4)
		if err != nil {
			log.Fatal(err)
		}
		out, err := wc.Run(ctx, ctx.Parallelize(sparkapps.ClsDoc, parts))
		if err != nil {
			log.Fatal(err)
		}
		counts, err := sparkapps.DecodeCounts(comp.Codec, out)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{mode.String(), counts, ctx.Stats.String()})
	}

	// Tungsten: same engine substrate, fused string split.
	{
		prog := sparkapps.NewProgram(sparkapps.ClsDoc, sparkapps.ClsWordCount)
		comp := engine.Compile(prog)
		ctx := spark.NewContext(comp, engine.Gerenuk)
		twc := sparkapps.TungstenWordCount{}
		twc.Register(prog)
		parts, err := workload.Encode(comp.Codec, sparkapps.ClsDoc, docs, 4)
		if err != nil {
			log.Fatal(err)
		}
		s := tungsten.NewSession()
		out, err := twc.Run(ctx, ctx.Parallelize(sparkapps.ClsDoc, parts), s)
		if err != nil {
			log.Fatal(err)
		}
		counts, err := sparkapps.DecodeCounts(comp.Codec, out)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{"tungsten", counts,
			fmt.Sprintf("total=%v (incl. plan %v)", ctx.Stats.Total+s.Stats.PlanTime, s.Stats.PlanTime)})
	}

	for _, r := range results[1:] {
		if len(r.counts) != len(results[0].counts) {
			log.Fatalf("%s disagrees with baseline", r.name)
		}
		for w, n := range results[0].counts {
			if r.counts[w] != n {
				log.Fatalf("%s: count[%q] = %d, baseline %d", r.name, w, r.counts[w], n)
			}
		}
	}
	fmt.Println("all three systems agree on every word count")

	type wc struct {
		w string
		n int64
	}
	var top []wc
	for w, n := range results[0].counts {
		top = append(top, wc{w, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Println("\ntop words:")
	for _, e := range top[:5] {
		fmt.Printf("  %-12s %d\n", e.w, e.n)
	}
	fmt.Println("\ncosts:")
	for _, r := range results {
		fmt.Printf("  %-9s %s\n", r.name, r.stats)
	}
}
