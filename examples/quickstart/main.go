// Quickstart: define a data type, write a tiny dataflow program in the
// IR, and run it on both execution paths — the baseline simulated
// managed heap and the Gerenuk-transformed native path — verifying that
// they produce identical results while the native path skips
// deserialization entirely.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

func main() {
	// 1. Define the schema: a Reading record and an aggregate.
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Reading", Fields: []model.FieldDef{
		{Name: "sensor", Type: model.Prim(model.KindLong)},
		{Name: "celsius", Type: model.Prim(model.KindDouble)},
	}})
	prog := ir.NewProgram(reg)
	// The Gerenuk user annotation (paper section 3.1): which types are
	// top-level data records.
	prog.TopTypes = []string{"Reading"}

	// 2. Write the UDF in the IR: convert each reading to Fahrenheit.
	b := ir.NewFuncBuilder(prog, "toFahrenheit", model.Type{})
	rec := b.Param("rec", model.Object("Reading"))
	sensor := b.Load(rec, "sensor")
	c := b.Load(rec, "celsius")
	nine5 := b.FConst(1.8)
	off := b.FConst(32)
	f := b.Bin(ir.OpAdd, b.Bin(ir.OpMul, c, nine5), off)
	out := b.New("Reading")
	b.Store(out, "sensor", sensor)
	b.Store(out, "celsius", f)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "convertStage", "toFahrenheit", "Reading")

	// sumCombine folds readings per sensor.
	cb := ir.NewFuncBuilder(prog, "sumCombine", model.Object("Reading"))
	a := cb.Param("a", model.Object("Reading"))
	bb := cb.Param("b", model.Object("Reading"))
	k := cb.Load(a, "sensor")
	s := cb.Bin(ir.OpAdd, cb.Load(a, "celsius"), cb.Load(bb, "celsius"))
	acc := cb.New("Reading")
	cb.Store(acc, "sensor", k)
	cb.Store(acc, "celsius", s)
	cb.Ret(acc)
	cb.Done()
	spark.BuildReduceDriver(prog, "sumStage", "sumCombine", "Reading")

	// 3. Compile: DSA layouts + SER analysis + Algorithm 1 run on demand.
	comp := engine.Compile(prog)

	// 4. Generate input wire records (what a disk split would hold).
	var input []byte
	var err error
	for i := 0; i < 12; i++ {
		input, err = comp.Codec.Encode("Reading", serde.Obj{
			"sensor": int64(i % 3), "celsius": float64(10 + i),
		}, input)
		if err != nil {
			log.Fatal(err)
		}
	}

	// 5. Run in both modes and compare.
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx := spark.NewContext(comp, mode)
		ctx.Partitions = 2
		rdd := ctx.Parallelize("Reading", [][]byte{input})
		converted, err := rdd.MapPartitions("convertStage", "Reading")
		if err != nil {
			log.Fatal(err)
		}
		summed, err := converted.ReduceByKey("sumStage", "sensor")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", mode)
		buf := summed.CollectBytes()
		for offB := 0; offB < len(buf); {
			v, next, err := comp.Codec.Decode("Reading", buf, offB)
			if err != nil {
				log.Fatal(err)
			}
			o := v.(serde.Obj)
			fmt.Printf("  sensor %d: sum %.1f°F\n", o["sensor"].(int64), o["celsius"].(float64))
			offB = next
		}
		fmt.Printf("  stats: %s\n", ctx.Stats)
	}
	fmt.Println("\nThe gerenuk run reports near-zero deserialization time (only")
	fmt.Println("closure shipping remains): the transformed stages operated")
	fmt.Println("directly on the inlined bytes.")
}
