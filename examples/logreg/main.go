// The paper's motivating example (sections 1-2): a Spark logistic
// regression over LabeledPoint records. This example first reproduces
// the Figure 4 arithmetic — the heap representation of LabeledPoints
// costs roughly 2x more than the inlined payload — and then trains the
// model on both execution paths, showing identical weights and the
// Gerenuk path's cost savings.
//
// Run with:
//
//	go run ./examples/logreg
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/sparkapps"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/serde"
	"repro/internal/spark"
	"repro/internal/workload"
)

func main() {
	const dim = 8

	// Part 1: Figure 4 — layout comparison for three LabeledPoints.
	prog := sparkapps.NewProgram(sparkapps.ClsLabeled, sparkapps.ClsGrad)
	comp := engine.Compile(prog)
	h := heap.New(prog.Reg, heap.Config{})
	var roots []heap.Addr
	defer h.AddRoots(heap.RootFunc(func(visit func(*heap.Addr)) {
		for i := range roots {
			visit(&roots[i])
		}
	}))()
	var heapBytes, inlineBytes int64
	for i := 0; i < 3; i++ {
		a, err := comp.Codec.Build(h, sparkapps.ClsLabeled, serde.Obj{
			"label":    float64(i),
			"features": serde.Obj{"size": int64(3), "values": []float64{1, 2, 3}},
		})
		if err != nil {
			log.Fatal(err)
		}
		roots = append(roots, a)
		foot, _ := comp.Codec.HeapFootprint(h, a, sparkapps.ClsLabeled)
		wire, _ := comp.Codec.Serialize(h, a, sparkapps.ClsLabeled, nil)
		heapBytes += foot
		inlineBytes += int64(len(wire) - serde.SizePrefixBytes)
	}
	fmt.Println("== Figure 4: representation of 3 LabeledPoints ==")
	fmt.Printf("  heap objects (headers+refs+padding): %4d bytes\n", heapBytes)
	fmt.Printf("  inlined native payload:              %4d bytes\n", inlineBytes)
	fmt.Printf("  object-representation overhead:      %.2fx\n",
		float64(heapBytes)/float64(inlineBytes))

	// Part 2: train logistic regression in both modes.
	points, trueW := workload.GenLabeledPoints(400, dim, 42)
	fmt.Println("\n== training (4 iterations, both modes) ==")
	var weights [][]float64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		prog := sparkapps.NewProgram(sparkapps.ClsLabeled, sparkapps.ClsGrad)
		comp := engine.Compile(prog)
		ctx := spark.NewContext(comp, mode)
		lr := sparkapps.LogReg{Dim: dim, Iters: 4, Rate: 1}
		lr.Register(prog)
		parts, err := workload.Encode(comp.Codec, sparkapps.ClsLabeled, points, 4)
		if err != nil {
			log.Fatal(err)
		}
		w, err := lr.Run(ctx, ctx.Parallelize(sparkapps.ClsLabeled, parts))
		if err != nil {
			log.Fatal(err)
		}
		weights = append(weights, w)
		fmt.Printf("  %-8s %s\n", mode, ctx.Stats)
	}
	same := true
	for d := range weights[0] {
		if weights[0][d] != weights[1][d] {
			same = false
		}
	}
	fmt.Printf("\nweights identical across modes: %v\n", same)
	dot := 0.0
	for d := range trueW {
		dot += trueW[d] * weights[0][d]
	}
	fmt.Printf("correlation with generating weights: positive = %v\n", dot > 0)
}
