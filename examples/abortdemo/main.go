// Abort demo (paper section 4.4): the StackOverflow Analytics combine
// contains java.util.Vector's resize pattern — a reference write into an
// existing data record. The Gerenuk compiler detects it statically
// (violation condition #2) and fences it with an abort; at run time the
// abort fires only for users whose vectors actually outgrow their
// capacity, and the runtime transparently re-executes those tasks on the
// unmodified slow path. Results are identical either way.
//
// Run with:
//
//	go run ./examples/abortdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/sparkapps"
	"repro/internal/engine"
	"repro/internal/spark"
	"repro/internal/workload"
)

func main() {
	posts := workload.GenPosts(48, 12, 99)
	fmt.Printf("input: %d posts across 48 users (a few heavy posters)\n\n", len(posts))

	// Show the compiler's view first.
	prog := sparkapps.NewProgram(sparkapps.ClsPost, sparkapps.ClsAccount)
	soa := sparkapps.StackOverflowAnalytics{InitialCap: 24}
	soa.Register(prog)
	comp := engine.Compile(prog)
	if err := comp.CompileDriver("soaCombineStage"); err != nil {
		log.Fatal(err)
	}
	ser := comp.SERs["soaCombineStage"]
	fmt.Println("== static analysis of the combine SER ==")
	fmt.Printf("transformable: %v\n", ser.Transformable)
	for _, v := range ser.Violations {
		fmt.Printf("violation point: %s\n", v)
	}
	fmt.Println("(an abort instruction is inserted immediately before it)")

	// Run both modes.
	var counts []map[int64]int64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		prog := sparkapps.NewProgram(sparkapps.ClsPost, sparkapps.ClsAccount)
		soa := sparkapps.StackOverflowAnalytics{InitialCap: 24}
		soa.Register(prog)
		comp := engine.Compile(prog)
		ctx := spark.NewContext(comp, mode)
		ctx.Partitions = 4
		parts, err := workload.Encode(comp.Codec, sparkapps.ClsPost, posts, 4)
		if err != nil {
			log.Fatal(err)
		}
		accounts, err := soa.Run(ctx, ctx.Parallelize(sparkapps.ClsPost, parts))
		if err != nil {
			log.Fatal(err)
		}
		m, err := sparkapps.DecodeAccounts(comp.Codec, accounts)
		if err != nil {
			log.Fatal(err)
		}
		counts = append(counts, m)
		fmt.Printf("\n== %s ==\n", mode)
		fmt.Printf("tasks aborted and re-executed on the slow path: %d\n", ctx.Stats.Aborts)
		fmt.Printf("stats: %s\n", ctx.Stats)
	}

	same := len(counts[0]) == len(counts[1])
	for u, n := range counts[0] {
		if counts[1][u] != n {
			same = false
		}
	}
	fmt.Printf("\nper-user post counts identical across modes: %v\n", same)
	total := int64(0)
	for _, n := range counts[0] {
		total += n
	}
	fmt.Printf("posts preserved: %d of %d\n", total, len(posts))
}
