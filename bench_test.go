// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation at test scale (one testing.B benchmark per
// experiment) and assert the headline result *shapes* in regular tests:
// Gerenuk beats the baseline end to end, memory drops, GC all but
// disappears, Tungsten wins WordCount but loses PageRank, and aborts
// cost roughly a SER re-execution.
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
)

func quickCfg() bench.Config { return bench.Quick() }

// ---- Figure/Table benchmarks (one per paper artifact) ----

func BenchmarkFigure4Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5SpaceRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure5(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkApp(b *testing.B, app string, mode engine.Mode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunApp(app, quickCfg(), mode); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 6(a): the five Spark programs, baseline vs Gerenuk.
func BenchmarkFigure6aSparkPRBaseline(b *testing.B) { benchmarkApp(b, "PR", engine.Baseline) }
func BenchmarkFigure6aSparkPRGerenuk(b *testing.B)  { benchmarkApp(b, "PR", engine.Gerenuk) }
func BenchmarkFigure6aSparkKMBaseline(b *testing.B) { benchmarkApp(b, "KM", engine.Baseline) }
func BenchmarkFigure6aSparkKMGerenuk(b *testing.B)  { benchmarkApp(b, "KM", engine.Gerenuk) }
func BenchmarkFigure6aSparkLRBaseline(b *testing.B) { benchmarkApp(b, "LR", engine.Baseline) }
func BenchmarkFigure6aSparkLRGerenuk(b *testing.B)  { benchmarkApp(b, "LR", engine.Gerenuk) }
func BenchmarkFigure6aSparkCSBaseline(b *testing.B) { benchmarkApp(b, "CS", engine.Baseline) }
func BenchmarkFigure6aSparkCSGerenuk(b *testing.B)  { benchmarkApp(b, "CS", engine.Gerenuk) }
func BenchmarkFigure6aSparkGBBaseline(b *testing.B) { benchmarkApp(b, "GB", engine.Baseline) }
func BenchmarkFigure6aSparkGBGerenuk(b *testing.B)  { benchmarkApp(b, "GB", engine.Gerenuk) }

// Figure 6(b): the seven Hadoop programs, baseline vs Gerenuk.
func BenchmarkFigure6bHadoopIUFBaseline(b *testing.B) { benchmarkApp(b, "IUF", engine.Baseline) }
func BenchmarkFigure6bHadoopIUFGerenuk(b *testing.B)  { benchmarkApp(b, "IUF", engine.Gerenuk) }
func BenchmarkFigure6bHadoopUAHBaseline(b *testing.B) { benchmarkApp(b, "UAH", engine.Baseline) }
func BenchmarkFigure6bHadoopUAHGerenuk(b *testing.B)  { benchmarkApp(b, "UAH", engine.Gerenuk) }
func BenchmarkFigure6bHadoopSPFBaseline(b *testing.B) { benchmarkApp(b, "SPF", engine.Baseline) }
func BenchmarkFigure6bHadoopSPFGerenuk(b *testing.B)  { benchmarkApp(b, "SPF", engine.Gerenuk) }
func BenchmarkFigure6bHadoopUEDBaseline(b *testing.B) { benchmarkApp(b, "UED", engine.Baseline) }
func BenchmarkFigure6bHadoopUEDGerenuk(b *testing.B)  { benchmarkApp(b, "UED", engine.Gerenuk) }
func BenchmarkFigure6bHadoopCEDBaseline(b *testing.B) { benchmarkApp(b, "CED", engine.Baseline) }
func BenchmarkFigure6bHadoopCEDGerenuk(b *testing.B)  { benchmarkApp(b, "CED", engine.Gerenuk) }
func BenchmarkFigure6bHadoopIMCBaseline(b *testing.B) { benchmarkApp(b, "IMC", engine.Baseline) }
func BenchmarkFigure6bHadoopIMCGerenuk(b *testing.B)  { benchmarkApp(b, "IMC", engine.Gerenuk) }
func BenchmarkFigure6bHadoopTFCBaseline(b *testing.B) { benchmarkApp(b, "TFC", engine.Baseline) }
func BenchmarkFigure6bHadoopTFCGerenuk(b *testing.B)  { benchmarkApp(b, "TFC", engine.Gerenuk) }

// Figures 7(a)/7(b) and Table 3 derive from the same runs as Figure 6;
// the peak-memory accounting is exercised by every app benchmark above.
// BenchmarkFigure7Memory runs the whole Spark suite once per iteration,
// producing both the runtime and memory artifacts.
func BenchmarkFigure7Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := bench.RunSparkSuite(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		bench.Figure7a(s)
	}
}

func BenchmarkFigure8aPageRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8a(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8bWordCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8b(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9Yak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10aAborts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure10a(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10bForcedAborts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure10b(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.StaticStats(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benchmarks (DESIGN.md section 4) ----

// AblationInterpOverhead: baseline vs Gerenuk on the same app isolates
// the representation costs, since both share the interpreter loop.
func BenchmarkAblationInterpOverheadBaseline(b *testing.B) { benchmarkApp(b, "LR", engine.Baseline) }
func BenchmarkAblationInterpOverheadGerenuk(b *testing.B)  { benchmarkApp(b, "LR", engine.Gerenuk) }

// AblationGCPolicy: the same Hadoop job under Parallel Scavenge vs the
// Yak region policy (see Figure 9 for the three-way comparison).
func BenchmarkAblationGCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Shape assertions (the paper's qualitative claims) ----

func TestShapeFigure4(t *testing.T) {
	r, err := bench.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := r.Checks["ratio"]; ratio < 2.0 || ratio > 3.5 {
		t.Errorf("heap/inline ratio = %.2f, want ~2.8 (paper 2.79)", ratio)
	}
}

func TestShapeFigure5(t *testing.T) {
	r, err := bench.Figure5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if overall := r.Checks["overall"]; overall < 2.0 {
		t.Errorf("object/serialized ratio = %.2f, want > 2 (paper 3.5)", overall)
	}
}

func TestShapeSparkSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	s, err := bench.RunSparkSuite(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Figure6a(s)
	if sp := r.Checks["overall_speedup"]; sp < 1.2 {
		t.Errorf("Spark overall speedup = %.2f, want > 1.2 (paper 1.96)", sp)
	}
	mem := bench.Figure7a(s)
	if ratio := mem.Checks["overall_ratio"]; ratio > 1.0 {
		t.Errorf("Spark memory ratio = %.2f, want < 1 (paper 0.82)", ratio)
	}
}

func TestShapeHadoopSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	s, err := bench.RunHadoopSuite(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Figure6b(s)
	if sp := r.Checks["overall_speedup"]; sp < 1.1 {
		t.Errorf("Hadoop overall speedup = %.2f, want > 1.1 (paper 1.4)", sp)
	}
}

func TestShapeFigure9(t *testing.T) {
	r, err := bench.Figure9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if sp := r.Checks["speedup_vs_ps"]; sp < 1.05 {
		t.Errorf("Gerenuk vs Parallel Scavenge = %.2f, want > 1.05 (paper 2.4)", sp)
	}
	if gc := r.Checks["gc_reduction_vs_ps"]; gc < 2 {
		t.Errorf("GC reduction = %.2f, want large (paper 13.7)", gc)
	}
}

func TestShapeFigure10a(t *testing.T) {
	r, err := bench.Figure10a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Checks["aborts"] == 0 {
		t.Fatalf("SOA triggered no aborts")
	}
	// Aborts erase the usual ~2x win: the transformed version lands
	// near (paper: 7% above) the baseline. At test scale, whether every
	// reduce partition contains a resizing vector varies, so accept a
	// band around parity rather than a point.
	if slow := r.Checks["slowdown"]; slow < 0.7 || slow > 2.0 {
		t.Errorf("SOA slowdown = %.2f, want ~1.07 (paper)", slow)
	}
}

func TestShapeFigure10b(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	r, err := bench.Figure10b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// More forced aborts must cost more (compare the extremes; small
	// counts are noise-dominated at test scale).
	if r.Checks["rel_20"] <= 1.0 {
		t.Errorf("20 forced aborts not slower than 0: rel=%.2f", r.Checks["rel_20"])
	}
	if r.Checks["aborts_20"] != 20 {
		t.Errorf("forced abort budget delivered %v aborts, want 20", r.Checks["aborts_20"])
	}
}

func TestShapeFigure8(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run")
	}
	a, err := bench.Figure8a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v := a.Checks["gerenuk_vs_tungsten"]; v < 0.95 {
		t.Errorf("PageRank: Gerenuk/Tungsten = %.2f, want >= ~1 (paper 2.2)", v)
	}
	b, err := bench.Figure8b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v := b.Checks["tungsten_vs_gerenuk"]; v < 1.0 {
		t.Errorf("WordCount: Tungsten should win (paper ~1.2x), got %.2f", v)
	}
}

func TestStaticStatsReport(t *testing.T) {
	r, err := bench.StaticStats()
	if err != nil {
		t.Fatal(err)
	}
	if r.Checks["spark_classes"] < 10 {
		t.Errorf("spark classes touched = %v, expected a broad set", r.Checks["spark_classes"])
	}
	if r.Checks["spark_violations"] < 1 {
		t.Errorf("no violation points found across the Spark suite")
	}
}
