package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBreakdownComputeDerivation(t *testing.T) {
	b := Breakdown{Total: 100 * time.Millisecond, GC: 10 * time.Millisecond,
		Ser: 5 * time.Millisecond, Deser: 15 * time.Millisecond}
	if got := b.Compute(); got != 70*time.Millisecond {
		t.Errorf("Compute = %v", got)
	}
	// Clamped at zero when attribution exceeds total (clock skew).
	b2 := Breakdown{Total: time.Millisecond, GC: 2 * time.Millisecond}
	if got := b2.Compute(); got != 0 {
		t.Errorf("negative compute not clamped: %v", got)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{Total: time.Second, GC: time.Millisecond, PeakHeapBytes: 100, Aborts: 1}
	b := Breakdown{Total: 2 * time.Second, Ser: time.Millisecond, PeakHeapBytes: 50, PeakNativeBytes: 200}
	a.Add(b)
	if a.Total != 3*time.Second || a.GC != time.Millisecond || a.Ser != time.Millisecond {
		t.Errorf("durations wrong: %+v", a)
	}
	if a.PeakHeapBytes != 100 || a.PeakNativeBytes != 200 {
		t.Errorf("peaks should take max: %+v", a)
	}
	if a.Aborts != 1 {
		t.Errorf("aborts wrong")
	}
	if a.PeakBytes() != 300 {
		t.Errorf("PeakBytes = %d", a.PeakBytes())
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if got := GeoMean(nil); !math.IsNaN(got) {
		t.Errorf("GeoMean(nil) = %v, want NaN", got)
	}
	// NaNs and non-positives are skipped.
	if got := GeoMean([]float64{math.NaN(), 0, -1, 3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("GeoMean with junk = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), 1, 7})
	if lo != 1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(1, 0); !math.IsNaN(got) {
		t.Errorf("Ratio by zero = %v", got)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.00MB",
		5 << 30: "5.00GB",
	}
	for n, want := range cases {
		if got := FmtBytes(n); got != want {
			t.Errorf("FmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: both rows' second column starts at the same index.
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "22")
	if r1 != r2 {
		t.Errorf("columns misaligned (%d vs %d):\n%s", r1, r2, out)
	}
}

func TestFAndD(t *testing.T) {
	if got := F(1.234); got != "1.23" {
		t.Errorf("F = %q", got)
	}
	if got := F(math.NaN()); got != "-" {
		t.Errorf("F(NaN) = %q", got)
	}
	if got := D(1234567 * time.Nanosecond); got == "" {
		t.Errorf("D empty")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Total: time.Second, GC: time.Millisecond, Aborts: 2, PeakHeapBytes: 1024}
	s := b.String()
	for _, want := range []string{"total=", "gc=", "aborts=2", "1.0KB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestTableRenderRaggedRow(t *testing.T) {
	// Rows wider than the header must render, not panic (regression:
	// Render indexed widths by cell position unguarded).
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "2", "extra", "more")
	tb.AddRow("3")
	out := tb.Render()
	for _, want := range []string{"extra", "more", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestBreakdownAddPeakSemantics(t *testing.T) {
	// Add models sequential composition: times and counters sum, peaks
	// take the max — two attempts that each peaked at 100 bytes did not
	// coexist, so the process footprint is 100, not 200. Concurrent
	// peaks are summed explicitly by engine.Pool.Run instead.
	a := Breakdown{Total: time.Second, GC: time.Millisecond, Aborts: 1,
		PeakHeapBytes: 100, PeakNativeBytes: 40}
	b := Breakdown{Total: 2 * time.Second, Aborts: 2,
		PeakHeapBytes: 70, PeakNativeBytes: 90}
	a.Add(b)
	if a.Total != 3*time.Second || a.Aborts != 3 {
		t.Errorf("sums wrong: %+v", a)
	}
	if a.PeakHeapBytes != 100 {
		t.Errorf("PeakHeapBytes = %d, want max(100,70) = 100", a.PeakHeapBytes)
	}
	if a.PeakNativeBytes != 90 {
		t.Errorf("PeakNativeBytes = %d, want max(40,90) = 90", a.PeakNativeBytes)
	}
}
