// Package metrics defines the measurement containers and table formatting
// used by the benchmark harness to regenerate the paper's figures: the
// four-way runtime breakdown of Figure 6 (computation, GC, serialization,
// deserialization), the peak-memory comparisons of Figure 7, and the
// normalized summaries of Table 3.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Breakdown is the per-run cost breakdown. Compute is derived: total
// minus the attributed GC/serialization/deserialization time.
type Breakdown struct {
	Total time.Duration
	GC    time.Duration
	Ser   time.Duration
	Deser time.Duration

	// GCAttributed is real Go GC pause time charged to this run by the
	// observability plane's attribution sampler (obs.GCAttributor) — the
	// measured counterpart of the simulated GC above. Zero unless a live
	// observability plane is attached. Deliberately NOT part of Compute's
	// derivation: the simulated GC already occupies that budget, and the
	// two columns answer different questions (model vs process).
	GCAttributed time.Duration

	// Attempt-path attribution: wall time spent inside speculative native
	// attempts vs heap (fallback/hedge) attempts, summed over tasks.
	NativeTime time.Duration
	HeapTime   time.Duration

	// Shuffle exchange attribution. ShuffleWrite/ShuffleRead are the
	// map-side and reduce-side exchange wall time excluding serde (the
	// exchange's encode/decode cost lands in Ser/Deser, where Figure 6
	// attributes it).
	ShuffleWrite time.Duration
	ShuffleRead  time.Duration

	PeakHeapBytes   int64
	PeakNativeBytes int64

	Aborts       int64
	MinorGCs     int64
	MajorGCs     int64
	AllocObjects int64
	AllocBytes   int64
	Records      int64

	// Fault-tolerance accounting (engine task attempts and recovery).
	Attempts        int64 // task attempts executed (first tries + retries)
	Retries         int64 // attempts beyond each task's first
	PanicsContained int64 // runtime panics converted into recoverable faults
	NativeSkips     int64 // native attempts skipped by the de-speculation breaker
	Hedges          int64 // hedged heap attempts launched against straggling natives
	HedgeWins       int64 // hedged heap attempts that finished first

	// Shuffle exchange volume accounting.
	Spills              int64 // spill runs written by map-side writers
	ShuffleBytesWritten int64 // raw record bytes sealed into shuffle blocks
	ShuffleBytesSpilled int64 // bytes written to spill runs on disk
	ShuffleBytesFetched int64 // raw record bytes fetched on the reduce side
	ShuffleFetchRetries int64 // block fetch attempts beyond each block's first
}

// Compute returns the portion of the total not attributed to GC, serde,
// or the shuffle exchange's transport/spill work.
func (b Breakdown) Compute() time.Duration {
	c := b.Total - b.GC - b.Ser - b.Deser - b.ShuffleWrite - b.ShuffleRead
	if c < 0 {
		return 0
	}
	return c
}

// PeakBytes returns the combined peak process footprint (heap + native).
func (b Breakdown) PeakBytes() int64 { return b.PeakHeapBytes + b.PeakNativeBytes }

// Add accumulates another breakdown. Times and event counters sum, but
// the peak-memory fields take the MAX of the two sides: Add models
// sequential composition — the attempts of one task, or the stages of a
// job, run one after another, so the process footprint at any instant
// is the largest single contributor, not the sum. Concurrent
// composition is the caller's job: engine.Pool.Run sums per-worker
// peaks explicitly because workers' footprints do coexist.
func (b *Breakdown) Add(o Breakdown) {
	b.Total += o.Total
	b.GC += o.GC
	b.Ser += o.Ser
	b.Deser += o.Deser
	b.GCAttributed += o.GCAttributed
	b.NativeTime += o.NativeTime
	b.HeapTime += o.HeapTime
	b.ShuffleWrite += o.ShuffleWrite
	b.ShuffleRead += o.ShuffleRead
	b.Aborts += o.Aborts
	b.MinorGCs += o.MinorGCs
	b.MajorGCs += o.MajorGCs
	b.AllocObjects += o.AllocObjects
	b.AllocBytes += o.AllocBytes
	b.Records += o.Records
	b.Attempts += o.Attempts
	b.Retries += o.Retries
	b.PanicsContained += o.PanicsContained
	b.NativeSkips += o.NativeSkips
	b.Hedges += o.Hedges
	b.HedgeWins += o.HedgeWins
	b.Spills += o.Spills
	b.ShuffleBytesWritten += o.ShuffleBytesWritten
	b.ShuffleBytesSpilled += o.ShuffleBytesSpilled
	b.ShuffleBytesFetched += o.ShuffleBytesFetched
	b.ShuffleFetchRetries += o.ShuffleFetchRetries
	if o.PeakHeapBytes > b.PeakHeapBytes {
		b.PeakHeapBytes = o.PeakHeapBytes
	}
	if o.PeakNativeBytes > b.PeakNativeBytes {
		b.PeakNativeBytes = o.PeakNativeBytes
	}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total=%v compute=%v gc=%v ser=%v deser=%v peak=%s aborts=%d",
		b.Total.Round(time.Microsecond), b.Compute().Round(time.Microsecond),
		b.GC.Round(time.Microsecond), b.Ser.Round(time.Microsecond),
		b.Deser.Round(time.Microsecond), FmtBytes(b.PeakBytes()), b.Aborts)
}

// Ratio returns x/y guarding zero denominators.
func Ratio(x, y float64) float64 {
	if y == 0 {
		return math.NaN()
	}
	return x / y
}

// GeoMean returns the geometric mean of positive values (NaN inputs are
// skipped).
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}

// MinMax returns the min and max of values, skipping NaNs.
func MinMax(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// FmtBytes renders a byte count human-readably.
func FmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table is a simple fixed-width text table for harness output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			// Rows wider than the header have no width to pad to;
			// render the extra cells as-is instead of panicking.
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// F formats a float with 2 decimals; NaN renders as "-".
func F(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// D formats a duration rounded for display.
func D(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }
