package analysis

import (
	"fmt"
	"sort"

	"repro/internal/dsa"
	"repro/internal/ir"
	"repro/internal/model"
)

// ViolationKind enumerates the conditions of paper section 3.4 under
// which memory accesses cannot be performed on inlined data.
type ViolationKind uint8

// Violation kinds.
const (
	// ViolEscape is condition #1, Load-And-Escape: a reference read from
	// a data structure is stored into a heap (control) object.
	ViolEscape ViolationKind = iota
	// ViolDisrupt is condition #2, Disrupt-the-Native-Space: a heap
	// reference is written into an object of an inlined data structure.
	ViolDisrupt
	// ViolNativeMethod is condition #3, Invoke-Native-Method on a data
	// object (whitelisted methods excepted).
	ViolNativeMethod
	// ViolMetainfo is condition #4, Use-Object-Metainfo: using a data
	// object's header metadata, e.g. as a lock.
	ViolMetainfo
	// ViolMutateInput extends the immutability guarantee to primitive
	// writes: a store into a deserialized (input-derived) record would
	// modify the input buffer, breaking abort-and-re-execute.
	ViolMutateInput
	// ViolAmbiguous marks a statement whose receiver may be either a
	// data or a control object; the conservative answer is to abort.
	ViolAmbiguous
)

var violNames = [...]string{
	"load-and-escape", "disrupt-the-native-space", "invoke-native-method",
	"use-object-metainfo", "mutate-input", "ambiguous-receiver",
}

func (k ViolationKind) String() string { return violNames[k] }

// Violation is one statically detected violation point; the transformer
// inserts an abort instruction immediately before the statement.
type Violation struct {
	Kind ViolationKind
	Stmt ir.Stmt
	Fn   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %q: %s", v.Kind, v.Fn, v.Stmt)
}

// nativeWhitelist is the set of native methods Gerenuk reimplements over
// inlined bytes (paper section 3.4, condition #3).
var nativeWhitelist = map[string]bool{
	"clone":     true,
	"hashCode":  true,
	"toString":  true,
	"arrayCopy": true,
	"length":    true, // string length, used pervasively by text workloads
	"charAt":    true,
	"equals":    true,
	// splitToWordCounts is the fused Tungsten string-split operator
	// (Figure 8(b)'s "string optimizations"), provided over inlined
	// bytes like the other customized natives.
	"splitToWordCounts": true,
}

// IsWhitelistedNative reports whether the named native method has a
// Gerenuk-provided implementation over inlined bytes.
func IsWhitelistedNative(name string) bool { return nativeWhitelist[name] }

// SER is the result of the SER code analyzer (section 3.2) plus the
// violation computation (section 3.4) for one speculative execution
// region rooted at an entry function.
type SER struct {
	Entry string
	P     *PointsTo

	// DataSites are the abstract objects belonging to inlined data
	// structures: deserialized records and their interiors, plus
	// allocation sites of hierarchy classes whose values flow to a
	// serialization sink.
	DataSites map[int]bool
	// DataVars are variables that may hold data-structure references —
	// after transformation these become long addresses.
	DataVars map[*ir.Var]bool
	// InputVars may hold references derived from *deserialized* records
	// (as opposed to records under construction); writes through them
	// are ViolMutateInput.
	InputVars map[*ir.Var]bool
	// TransformStmts is the set of statements on data flows from source
	// to sink — the statements Algorithm 1 rewrites.
	TransformStmts map[ir.Stmt]bool
	// Violations lists every statically detected violation point.
	Violations []Violation
	// Transformable is false when the SER cannot be transformed at all
	// (e.g. a deserialized top type was rejected by the DSA); the engine
	// then keeps the heap path for the whole task.
	Transformable bool
	Reason        string
	// ClassesTouched is the set of classes participating in transformed
	// statements (the paper's "55 classes in Spark" statistic).
	ClassesTouched map[string]bool
}

// violationSet returns violations keyed by statement for the transformer.
func (s *SER) ViolationAt(st ir.Stmt) (Violation, bool) {
	for _, v := range s.Violations {
		if v.Stmt == st {
			return v, true
		}
	}
	return Violation{}, false
}

// AnalyzeSER runs the full Gerenuk static pipeline for the region rooted
// at entry: points-to, source/sink taint, data-site classification,
// violation detection, and statement selection.
func AnalyzeSER(prog *ir.Program, layouts *dsa.Result, entry string) (*SER, error) {
	p, err := Solve(prog, entry)
	if err != nil {
		return nil, err
	}
	s := &SER{
		Entry:          entry,
		P:              p,
		DataSites:      make(map[int]bool),
		DataVars:       make(map[*ir.Var]bool),
		InputVars:      make(map[*ir.Var]bool),
		TransformStmts: make(map[ir.Stmt]bool),
		Transformable:  true,
		ClassesTouched: make(map[string]bool),
	}

	// Every deserialized top type must have an accepted inline layout.
	for _, site := range p.Sites {
		if site.Kind != SiteDeser {
			continue
		}
		cls := site.Type.Class
		if site.Type.Array || cls == "" || !layouts.IsAccepted(cls) {
			s.Transformable = false
			s.Reason = fmt.Sprintf("deserialized type %s has no inline layout", site.Type)
			return s, nil
		}
	}

	// reaches-sink: sites flowing (directly or via containment) into a
	// Serialize/Emit. This is the sink-directed pruning of section 3.2.
	reaches := make(map[int]bool)
	for _, name := range p.Funcs {
		ir.Walk(prog.Funcs[name].Body, func(st ir.Stmt) {
			var src *ir.Var
			switch t := st.(type) {
			case *ir.Serialize:
				src = t.Src
			case *ir.Emit:
				src = t.Src
			default:
				return
			}
			for id := range p.VarPts[src] {
				reaches[id] = true
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for fk, srcs := range p.FieldPts {
			if !reaches[fk.site] {
				continue
			}
			for id := range srcs {
				if !reaches[id] {
					reaches[id] = true
					changed = true
				}
			}
		}
		// A sub-site's parent reaching the sink implies the sub-site
		// reaches it too (it is inlined within the parent).
		for _, site := range p.Sites {
			if site.Kind == SiteDeserSub && reaches[site.Parent.ID] && !reaches[site.ID] {
				reaches[site.ID] = true
				changed = true
			}
		}
	}

	// Classify data sites.
	inHierarchy := func(t model.Type) bool {
		switch {
		case t.Array && t.Elem.Kind != model.KindRef:
			return true // primitive arrays are record parts
		case t.Array:
			return layouts.InHierarchy(t.Elem.Class)
		case t.IsRef():
			return layouts.InHierarchy(t.Class)
		default:
			return false
		}
	}
	inputSites := make(map[int]bool)
	for _, site := range p.Sites {
		switch site.Kind {
		case SiteDeser, SiteDeserSub:
			s.DataSites[site.ID] = true
			inputSites[site.ID] = true
		case SiteAlloc:
			if inHierarchy(site.Type) && reaches[site.ID] {
				s.DataSites[site.ID] = true
			}
		}
	}

	// Data/input variables.
	for v, pts := range p.VarPts {
		for id := range pts {
			if s.DataSites[id] {
				s.DataVars[v] = true
			}
			if inputSites[id] {
				s.InputVars[v] = true
			}
		}
	}

	// Violation detection + statement selection.
	for _, name := range p.Funcs {
		fn := prog.Funcs[name]
		ir.Walk(fn.Body, func(st ir.Stmt) {
			s.classify(prog, p, name, st)
		})
	}
	sort.Slice(s.Violations, func(i, j int) bool {
		if s.Violations[i].Fn != s.Violations[j].Fn {
			return s.Violations[i].Fn < s.Violations[j].Fn
		}
		return s.Violations[i].Kind < s.Violations[j].Kind
	})
	return s, nil
}

// pureData reports whether v's points-to set is entirely data sites
// (non-empty). Mixed sets are the conservative-abort case.
func (s *SER) pureData(v *ir.Var) (pure, any bool) {
	pts := s.P.VarPts[v]
	if len(pts) == 0 {
		return false, false
	}
	pure = true
	for id := range pts {
		if s.DataSites[id] {
			any = true
		} else {
			pure = false
		}
	}
	return pure && any, any
}

// allocatedIn reports whether every site of v is an alloc site defined in
// function fn — the "record under construction" test that distinguishes
// benign construction stores from mutation.
func (s *SER) allocatedIn(v *ir.Var, fn string) bool {
	pts := s.P.VarPts[v]
	if len(pts) == 0 {
		return false
	}
	for id := range pts {
		site := s.P.Sites[id]
		if site.Kind != SiteAlloc || site.Fn != fn {
			return false
		}
	}
	return true
}

func (s *SER) addViolation(k ViolationKind, st ir.Stmt, fn string) {
	s.Violations = append(s.Violations, Violation{Kind: k, Stmt: st, Fn: fn})
}

func (s *SER) markTransform(st ir.Stmt, classes ...string) {
	s.TransformStmts[st] = true
	for _, c := range classes {
		if c != "" {
			s.ClassesTouched[c] = true
		}
	}
}

func (s *SER) classify(prog *ir.Program, p *PointsTo, fn string, st ir.Stmt) {
	isData := func(v *ir.Var) bool { return v != nil && s.DataVars[v] }
	isInput := func(v *ir.Var) bool { return v != nil && s.InputVars[v] }

	switch t := st.(type) {
	case *ir.Deserialize:
		s.markTransform(st, t.Dst.Type.Class)
	case *ir.Serialize:
		if isData(t.Src) {
			s.markTransform(st, t.Src.Type.Class)
		}
	case *ir.Emit:
		if isData(t.Src) {
			s.markTransform(st, t.Src.Type.Class)
		}
	case *ir.Assign:
		if isData(t.Src) || isData(t.Dst) {
			s.markTransform(st)
		}
	case *ir.FieldLoad:
		if !isData(t.Obj) {
			return
		}
		if pure, _ := s.pureData(t.Obj); !pure {
			s.addViolation(ViolAmbiguous, st, fn)
			return
		}
		s.markTransform(st, t.Class)
	case *ir.FieldStore:
		objData, srcData := isData(t.Obj), t.Src.Type.IsRef() && isData(t.Src)
		switch {
		case !objData && !t.Src.Type.IsRef():
			return
		case !objData && srcData:
			// A data reference escapes into a control object: #1.
			s.addViolation(ViolEscape, st, fn)
		case !objData:
			return
		case isInput(t.Obj):
			// Any store into an input-derived record mutates the input
			// buffer.
			s.addViolation(ViolMutateInput, st, fn)
		default:
			if pure, _ := s.pureData(t.Obj); !pure {
				s.addViolation(ViolAmbiguous, st, fn)
				return
			}
			if !t.Src.Type.IsRef() {
				// Primitive store into a record under construction.
				s.markTransform(st, t.Class)
				return
			}
			if !srcData || !s.allocatedIn(t.Obj, fn) {
				// Heap reference into native space, or a reference
				// overwrite of an already-built record (the Vector
				// resize case of section 4.4): #2.
				s.addViolation(ViolDisrupt, st, fn)
				return
			}
			// Construction-order reference store: a no-op over inlined
			// bytes (the sub-record is already in place); transformed
			// to a runtime adjacency check.
			s.markTransform(st, t.Class)
		}
	case *ir.ArrayLoad:
		if !isData(t.Arr) {
			return
		}
		if pure, _ := s.pureData(t.Arr); !pure {
			s.addViolation(ViolAmbiguous, st, fn)
			return
		}
		s.markTransform(st)
	case *ir.ArrayStore:
		arrData, srcData := isData(t.Arr), t.Src.Type.IsRef() && isData(t.Src)
		switch {
		case !arrData && !t.Src.Type.IsRef():
			return
		case !arrData && srcData:
			// Writing a data record into a collection backbone is the
			// tracked flow of section 3.2 when the record is top-level;
			// writing a lower-level object out is an escape.
			if cls := t.Src.Type.Class; cls != "" && isTopLevel(prog, cls) {
				s.markTransform(st, cls)
			} else {
				s.addViolation(ViolEscape, st, fn)
			}
		case !arrData:
			return
		case isInput(t.Arr):
			s.addViolation(ViolMutateInput, st, fn)
		default:
			if pure, _ := s.pureData(t.Arr); !pure {
				s.addViolation(ViolAmbiguous, st, fn)
				return
			}
			if !t.Src.Type.IsRef() {
				s.markTransform(st)
				return
			}
			if !srcData || !s.allocatedIn(t.Arr, fn) {
				s.addViolation(ViolDisrupt, st, fn)
				return
			}
			s.markTransform(st)
		}
	case *ir.ArrayLen:
		if isData(t.Arr) {
			s.markTransform(st)
		}
	case *ir.New:
		if d := ir.Defs(st); d != nil && isData(d) {
			s.markTransform(st, t.Class)
		}
	case *ir.NewArray:
		if d := ir.Defs(st); d != nil && isData(d) {
			s.markTransform(st)
		}
	case *ir.ConstString:
		if isData(t.Dst) {
			s.markTransform(st, model.StringClassName)
		}
	case *ir.NativeCall:
		if !isData(t.Recv) {
			return
		}
		if !nativeWhitelist[t.Name] {
			s.addViolation(ViolNativeMethod, st, fn)
			return
		}
		s.markTransform(st)
	case *ir.MonitorEnter:
		if isData(t.Obj) {
			s.addViolation(ViolMetainfo, st, fn)
		}
	case *ir.Call:
		for _, a := range t.Args {
			if isData(a) {
				s.markTransform(st)
				return
			}
		}
		if t.Dst != nil && isData(t.Dst) {
			s.markTransform(st)
		}
	}
}

func isTopLevel(prog *ir.Program, cls string) bool {
	for _, t := range prog.TopTypes {
		if t == cls {
			return true
		}
	}
	return false
}

// Stats summarizes an analysis for reporting (the paper's section 4.1
// static statistics).
type Stats struct {
	Funcs          int
	Sites          int
	DataSites      int
	DataVars       int
	TransformStmts int
	Violations     int
	Classes        int
}

// Summary computes report statistics.
func (s *SER) Summary() Stats {
	return Stats{
		Funcs:          len(s.P.Funcs),
		Sites:          len(s.P.Sites),
		DataSites:      len(s.DataSites),
		DataVars:       len(s.DataVars),
		TransformStmts: len(s.TransformStmts),
		Violations:     len(s.Violations),
		Classes:        len(s.ClassesTouched),
	}
}
