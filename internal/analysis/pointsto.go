// Package analysis implements the static analyses of the Gerenuk
// compiler: an allocation-site points-to analysis (the substrate the
// paper takes from Soot/Spark), the SER code analyzer — the taint-like
// source-to-sink data-flow analysis of section 3.2 — and the violation
// conditions of section 3.4.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/model"
)

// SiteKind classifies abstract objects.
type SiteKind uint8

// Site kinds.
const (
	// SiteAlloc is a `new C()` / `new T[n]` / string-literal site.
	SiteAlloc SiteKind = iota
	// SiteDeser is the abstract object created by a deserialization
	// point — the root of an input record.
	SiteDeser
	// SiteDeserSub is an abstract sub-object of a deserialized record,
	// materialized lazily per (parent site, field): the static model of
	// the inlined structure's interior.
	SiteDeserSub
)

func (k SiteKind) String() string {
	switch k {
	case SiteAlloc:
		return "alloc"
	case SiteDeser:
		return "deser"
	case SiteDeserSub:
		return "deser-sub"
	default:
		return "?"
	}
}

// Site is an abstract object.
type Site struct {
	ID   int
	Kind SiteKind
	// Type is the static type of the object (class or array).
	Type model.Type
	// Stmt is the creating statement for alloc/deser sites.
	Stmt ir.Stmt
	// Fn is the function containing Stmt.
	Fn string
	// Parent and Field identify sub-sites.
	Parent *Site
	Field  string
}

func (s *Site) String() string {
	if s.Kind == SiteDeserSub {
		return fmt.Sprintf("%s.%s<%s>", s.Parent, s.Field, s.Type)
	}
	return fmt.Sprintf("%s#%d<%s>@%s", s.Kind, s.ID, s.Type, s.Fn)
}

// eleField is the placeholder field name for array elements (the paper's
// o.ELE).
const eleField = "ELE"

type fieldKey struct {
	site  int
	field string
}

// PointsTo is the result of the points-to analysis over the functions
// reachable from an entry point.
type PointsTo struct {
	Sites []*Site
	// VarPts maps each variable to the set of site IDs it may point to.
	VarPts map[*ir.Var]map[int]bool
	// FieldPts maps (site, field) to the sites stored there.
	FieldPts map[fieldKey]map[int]bool
	// Funcs is the call-graph closure from the entry, in discovery order.
	Funcs []string

	prog     *ir.Program
	subSites map[fieldKey]*Site
}

// Reachable returns the functions in the analyzed closure.
func (p *PointsTo) Reachable() []string { return p.Funcs }

// Pts returns the points-to set of v (possibly nil).
func (p *PointsTo) Pts(v *ir.Var) map[int]bool { return p.VarPts[v] }

// Solve runs a flow-insensitive, context-insensitive inclusion-based
// (Andersen-style) points-to analysis over the closure of functions
// reachable from entry.
func Solve(prog *ir.Program, entry string) (*PointsTo, error) {
	p := &PointsTo{
		VarPts:   make(map[*ir.Var]map[int]bool),
		FieldPts: make(map[fieldKey]map[int]bool),
		subSites: make(map[fieldKey]*Site),
		prog:     prog,
	}
	// Discover the call-graph closure.
	seen := map[string]bool{}
	queue := []string{entry}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		fn, ok := prog.Funcs[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown function %q", name)
		}
		p.Funcs = append(p.Funcs, name)
		ir.Walk(fn.Body, func(s ir.Stmt) {
			if c, isCall := s.(*ir.Call); isCall && !seen[c.Fn] {
				queue = append(queue, c.Fn)
			}
		})
	}

	// Create sites for all creating statements.
	for _, name := range p.Funcs {
		fn := prog.Funcs[name]
		ir.Walk(fn.Body, func(s ir.Stmt) {
			switch t := s.(type) {
			case *ir.New:
				p.newSite(SiteAlloc, model.Object(t.Class), s, name)
			case *ir.NewArray:
				p.newSite(SiteAlloc, model.ArrayOf(t.Elem), s, name)
			case *ir.ConstString:
				p.newSite(SiteAlloc, model.Object(model.StringClassName), s, name)
			case *ir.Deserialize:
				p.newSite(SiteDeser, t.Dst.Type, s, name)
			}
		})
	}

	// Fixpoint over inclusion constraints.
	for changed := true; changed; {
		changed = false
		for _, name := range p.Funcs {
			fn := prog.Funcs[name]
			ir.Walk(fn.Body, func(s ir.Stmt) {
				if p.apply(s, name) {
					changed = true
				}
			})
		}
	}
	return p, nil
}

func (p *PointsTo) newSite(kind SiteKind, t model.Type, s ir.Stmt, fn string) *Site {
	site := &Site{ID: len(p.Sites), Kind: kind, Type: t, Stmt: s, Fn: fn}
	p.Sites = append(p.Sites, site)
	if s != nil {
		if d := ir.Defs(s); d != nil {
			p.addTo(d, site.ID)
		}
	}
	return site
}

// subSite lazily materializes the abstract sub-object of a deserialized
// record behind (site, field) with the given static type.
func (p *PointsTo) subSite(parent *Site, field string, t model.Type) *Site {
	k := fieldKey{parent.ID, field}
	if s, ok := p.subSites[k]; ok {
		return s
	}
	s := &Site{ID: len(p.Sites), Kind: SiteDeserSub, Type: t, Fn: parent.Fn, Parent: parent, Field: field}
	p.Sites = append(p.Sites, s)
	p.subSites[k] = s
	return s
}

func (p *PointsTo) addTo(v *ir.Var, id int) bool {
	set := p.VarPts[v]
	if set == nil {
		set = make(map[int]bool)
		p.VarPts[v] = set
	}
	if set[id] {
		return false
	}
	set[id] = true
	return true
}

func (p *PointsTo) copyVar(dst, src *ir.Var) bool {
	changed := false
	for id := range p.VarPts[src] {
		if p.addTo(dst, id) {
			changed = true
		}
	}
	return changed
}

func (p *PointsTo) addField(site int, field string, srcs map[int]bool) bool {
	k := fieldKey{site, field}
	set := p.FieldPts[k]
	if set == nil {
		set = make(map[int]bool)
		p.FieldPts[k] = set
	}
	changed := false
	for id := range srcs {
		if !set[id] {
			set[id] = true
			changed = true
		}
	}
	return changed
}

// fieldType returns the declared type of field f on a site of class type.
func (p *PointsTo) fieldType(s *Site, field string) (model.Type, bool) {
	if field == eleField {
		if s.Type.Array && s.Type.Elem != nil {
			return *s.Type.Elem, true
		}
		return model.Type{}, false
	}
	if s.Type.Array || !s.Type.IsRef() {
		return model.Type{}, false
	}
	cls, ok := p.prog.Reg.Lookup(s.Type.Class)
	if !ok {
		return model.Type{}, false
	}
	f, ok := cls.Field(field)
	if !ok {
		return model.Type{}, false
	}
	return f.Type, true
}

func (p *PointsTo) apply(s ir.Stmt, fn string) bool {
	changed := false
	switch t := s.(type) {
	case *ir.Assign:
		if t.Dst.Type.IsRef() {
			changed = p.copyVar(t.Dst, t.Src)
		}
	case *ir.FieldLoad:
		if !t.Dst.Type.IsRef() {
			return false
		}
		for id := range p.VarPts[t.Obj] {
			site := p.Sites[id]
			if site.Kind != SiteAlloc {
				// Deserialized interior: materialize the sub-object.
				if ft, ok := p.fieldType(site, t.Field); ok && ft.IsRef() {
					sub := p.subSite(site, t.Field, ft)
					if p.addTo(t.Dst, sub.ID) {
						changed = true
					}
				}
			}
			for src := range p.FieldPts[fieldKey{id, t.Field}] {
				if p.addTo(t.Dst, src) {
					changed = true
				}
			}
		}
	case *ir.FieldStore:
		if !t.Src.Type.IsRef() {
			return false
		}
		for id := range p.VarPts[t.Obj] {
			if p.addField(id, t.Field, p.VarPts[t.Src]) {
				changed = true
			}
		}
	case *ir.ArrayLoad:
		if !t.Dst.Type.IsRef() {
			return false
		}
		for id := range p.VarPts[t.Arr] {
			site := p.Sites[id]
			if site.Kind != SiteAlloc {
				if ft, ok := p.fieldType(site, eleField); ok && ft.IsRef() {
					sub := p.subSite(site, eleField, ft)
					if p.addTo(t.Dst, sub.ID) {
						changed = true
					}
				}
			}
			for src := range p.FieldPts[fieldKey{id, eleField}] {
				if p.addTo(t.Dst, src) {
					changed = true
				}
			}
		}
	case *ir.ArrayStore:
		if !t.Src.Type.IsRef() {
			return false
		}
		for id := range p.VarPts[t.Arr] {
			if p.addField(id, eleField, p.VarPts[t.Src]) {
				changed = true
			}
		}
	case *ir.Call:
		callee, ok := p.prog.Funcs[t.Fn]
		if !ok {
			return false
		}
		for i, a := range t.Args {
			if i < len(callee.Params) && callee.Params[i].Type.IsRef() {
				if p.copyVar(callee.Params[i], a) {
					changed = true
				}
			}
		}
		if t.Dst != nil && t.Dst.Type.IsRef() {
			ir.Walk(callee.Body, func(cs ir.Stmt) {
				if r, isRet := cs.(*ir.Return); isRet && r.Val != nil {
					if p.copyVar(t.Dst, r.Val) {
						changed = true
					}
				}
			})
		}
	case *ir.NativeCall:
		// clone returns an object aliased (structurally) with the
		// receiver's sites; other whitelisted natives return prims or
		// fresh strings. Model clone as aliasing the receiver.
		if t.Dst != nil && t.Dst.Type.IsRef() && t.Name == "clone" {
			changed = p.copyVar(t.Dst, t.Recv)
		}
	}
	return changed
}

// SitesOfKind returns the IDs of sites with the given kind, sorted.
func (p *PointsTo) SitesOfKind(k SiteKind) []int {
	var out []int
	for _, s := range p.Sites {
		if s.Kind == k {
			out = append(out, s.ID)
		}
	}
	sort.Ints(out)
	return out
}
