package analysis

import (
	"testing"

	"repro/internal/dsa"
	"repro/internal/ir"
	"repro/internal/model"
)

// testSchema builds the LR-style schema used across the analysis tests.
func testSchema() (*model.Registry, *dsa.Result) {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "DenseVector", Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "values", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	reg.Define(model.ClassDef{Name: "LabeledPoint", Fields: []model.FieldDef{
		{Name: "label", Type: model.Prim(model.KindDouble)},
		{Name: "features", Type: model.Object("DenseVector")},
	}})
	reg.Define(model.ClassDef{Name: "Pair", Fields: []model.FieldDef{
		{Name: "key", Type: model.Prim(model.KindLong)},
		{Name: "value", Type: model.Prim(model.KindDouble)},
	}})
	// A control-path class: never part of any data hierarchy.
	reg.Define(model.ClassDef{Name: "Logger", Fields: []model.FieldDef{
		{Name: "last", Type: model.Object("DenseVector")},
		{Name: "count", Type: model.Prim(model.KindLong)},
	}})
	layouts := dsa.Analyze(reg, []string{"LabeledPoint", "Pair"})
	return reg, layouts
}

// buildDriver constructs the canonical SER shape: read a LabeledPoint,
// compute over it, emit a Pair, write it out.
func buildDriver(prog *ir.Program) *ir.Func {
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	label := b.Load(lp, "label")
	vec := b.Load(lp, "features")
	vals := b.Load(vec, "values")
	zero := b.IConst(0)
	sum := b.Local("sum", model.Prim(model.KindDouble))
	b.Emit(&ir.ConstFloat{Dst: sum, Val: 0})
	n := b.Len(vals)
	b.For(n, func(i *ir.Var) {
		x := b.Elem(vals, i)
		b.BinTo(sum, ir.OpAdd, sum, x)
	})
	p := b.New("Pair")
	key := b.Un(ir.OpD2I, label)
	b.Store(p, "key", key)
	b.Store(p, "value", sum)
	b.WriteRecord("out", p)
	_ = zero
	b.Ret(nil)
	return b.Done()
}

func mustSER(t *testing.T, prog *ir.Program, layouts *dsa.Result, entry string) *SER {
	t.Helper()
	s, err := AnalyzeSER(prog, layouts, entry)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTaintFlowsSourceToSink(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint", "Pair"}
	driver := buildDriver(prog)

	s := mustSER(t, prog, layouts, "driver")
	if !s.Transformable {
		t.Fatalf("not transformable: %s", s.Reason)
	}
	if len(s.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", s.Violations)
	}
	// The deserialized var, the vector, the values array and the output
	// pair must all be data vars.
	wantData := map[string]bool{}
	for v := range s.DataVars {
		wantData[v.Name] = true
	}
	for _, name := range []string{"t1" /* lp is a temp */} {
		_ = name
	}
	// Identify by types instead: every ref-typed local of driver except
	// none should be data.
	for _, v := range driver.Locals {
		if v.Type.IsRef() && !s.DataVars[v] {
			t.Errorf("ref var %s (%s) not tainted", v.Name, v.Type)
		}
	}
	// All heap-access statements must be selected for transformation.
	count := 0
	ir.Walk(driver.Body, func(st ir.Stmt) {
		switch st.(type) {
		case *ir.FieldLoad, *ir.FieldStore, *ir.ArrayLoad, *ir.ArrayLen,
			*ir.New, *ir.Deserialize, *ir.Serialize:
			if !s.TransformStmts[st] {
				t.Errorf("statement not selected: %s", st)
			}
			count++
		}
	})
	if count == 0 {
		t.Fatalf("no statements inspected")
	}
}

func TestViolationLoadAndEscape(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	vec := b.Load(lp, "features") // data object interior
	logger := b.New("Logger")
	b.Store(logger, "last", vec) // ESCAPE: data ref into control object
	b.WriteRecord("out", lp)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if len(s.Violations) != 1 || s.Violations[0].Kind != ViolEscape {
		t.Fatalf("violations = %v, want one load-and-escape", s.Violations)
	}
}

func TestViolationDisruptNativeSpace(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}

	// Helper mutates a vector passed in (not allocated here): the Vector
	// resize pattern of section 4.4.
	hb := ir.NewFuncBuilder(prog, "resize", model.Type{})
	v := hb.Param("v", model.Object("DenseVector"))
	n := hb.IConst(16)
	arr := hb.NewArr(model.Prim(model.KindDouble), n)
	hb.Store(v, "values", arr) // DISRUPT: heap ref into data object
	hb.Ret(nil)
	hb.Done()

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	vec := b.Load(lp, "features")
	b.CallV("resize", vec)
	b.WriteRecord("out", lp)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	found := false
	for _, viol := range s.Violations {
		if (viol.Kind == ViolDisrupt || viol.Kind == ViolMutateInput) && viol.Fn == "resize" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want disrupt/mutate in resize", s.Violations)
	}
}

func TestViolationNativeMethod(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	vec := b.Load(lp, "features")
	b.Native("mmapRegion", model.Prim(model.KindLong), vec) // not whitelisted
	h := b.Native("hashCode", model.Prim(model.KindLong), vec)
	_ = h // whitelisted: no violation
	b.WriteRecord("out", lp)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if len(s.Violations) != 1 || s.Violations[0].Kind != ViolNativeMethod {
		t.Fatalf("violations = %v, want one invoke-native-method", s.Violations)
	}
}

func TestViolationUseMetainfo(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	vec := b.Load(lp, "features")
	b.Synchronized(vec, func() {}) // lock on a data object
	b.WriteRecord("out", lp)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if len(s.Violations) != 1 || s.Violations[0].Kind != ViolMetainfo {
		t.Fatalf("violations = %v, want one use-object-metainfo", s.Violations)
	}
}

func TestViolationMutateInput(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	z := b.FConst(0)
	b.Store(lp, "label", z) // primitive write into the input record
	b.WriteRecord("out", lp)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if len(s.Violations) != 1 || s.Violations[0].Kind != ViolMutateInput {
		t.Fatalf("violations = %v, want one mutate-input", s.Violations)
	}
}

func TestConstructionStoresAreNotViolations(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	label := b.Load(lp, "label")
	// Build a fresh output LabeledPoint in construction order.
	out := b.New("LabeledPoint")
	b.Store(out, "label", label)
	vec := b.New("DenseVector")
	three := b.IConst(3)
	b.Store(vec, "size", three)
	arr := b.NewArr(model.Prim(model.KindDouble), three)
	b.Store(vec, "values", arr) // fresh-into-fresh: construction
	b.Store(out, "features", vec)
	b.WriteRecord("out", out)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if len(s.Violations) != 0 {
		t.Fatalf("construction flagged: %v", s.Violations)
	}
	if !s.Transformable {
		t.Fatalf("not transformable: %s", s.Reason)
	}
}

func TestRejectedTopTypeMakesSERUntransformable(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Node", Fields: []model.FieldDef{
		{Name: "next", Type: model.Object("Node")},
		{Name: "val", Type: model.Prim(model.KindLong)},
	}})
	layouts := dsa.Analyze(reg, []string{"Node"})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Node"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	nd := b.ReadRecord("in", model.Object("Node"))
	b.WriteRecord("out", nd)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if s.Transformable {
		t.Fatalf("SER with recursive top type reported transformable")
	}
}

func TestSinkPruning(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint", "Pair"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	// A Pair that never reaches any sink: its alloc must not be a data
	// site, so its stores are not selected for transformation.
	dead := b.New("Pair")
	k := b.IConst(1)
	b.Store(dead, "key", k)
	b.WriteRecord("out", lp)
	b.Ret(nil)
	driver := b.Done()

	s := mustSER(t, prog, layouts, "driver")
	ir.Walk(driver.Body, func(st ir.Stmt) {
		if fs, ok := st.(*ir.FieldStore); ok && fs.Obj.Name == dead.Name {
			if s.TransformStmts[st] {
				t.Errorf("dead-pair store selected for transformation: %s", st)
			}
		}
	})
	if len(s.Violations) != 0 {
		t.Errorf("violations on dead flow: %v", s.Violations)
	}
}

func TestInterproceduralTaint(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}

	hb := ir.NewFuncBuilder(prog, "firstValue", model.Prim(model.KindDouble))
	p := hb.Param("lp", model.Object("LabeledPoint"))
	vec := hb.Load(p, "features")
	vals := hb.Load(vec, "values")
	zero := hb.IConst(0)
	x := hb.Elem(vals, zero)
	hb.Ret(x)
	helper := hb.Done()

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	v := b.Call("firstValue", model.Prim(model.KindDouble), lp)
	_ = v
	b.WriteRecord("out", lp)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if !s.DataVars[helper.Params[0]] {
		t.Errorf("parameter of callee not tainted")
	}
	found := false
	ir.Walk(helper.Body, func(st ir.Stmt) {
		if _, ok := st.(*ir.FieldLoad); ok && s.TransformStmts[st] {
			found = true
		}
	})
	if !found {
		t.Errorf("callee field loads not selected")
	}
	if got := len(s.P.Reachable()); got != 2 {
		t.Errorf("closure size = %d, want 2", got)
	}
}

func TestArrayStoreOfTopLevelIntoCollection(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	one := b.IConst(1)
	backbone := b.NewArr(model.Object("LabeledPoint"), one)
	zero := b.IConst(0)
	b.SetElem(backbone, zero, lp) // top-level into a collection: tracked, not escape
	got := b.Elem(backbone, zero)
	b.WriteRecord("out", got)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if len(s.Violations) != 0 {
		t.Fatalf("collection store flagged: %v", s.Violations)
	}
}

func TestArrayStoreOfInnerObjectIsEscape(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint"}
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	lp := b.ReadRecord("in", model.Object("LabeledPoint"))
	vec := b.Load(lp, "features") // lower-level object
	one := b.IConst(1)
	stash := b.NewArr(model.Object("DenseVector"), one)
	zero := b.IConst(0)
	b.SetElem(stash, zero, vec) // lower-level escape into a control array
	b.WriteRecord("out", lp)
	b.Ret(nil)
	b.Done()

	s := mustSER(t, prog, layouts, "driver")
	if len(s.Violations) != 1 || s.Violations[0].Kind != ViolEscape {
		t.Fatalf("violations = %v, want one escape", s.Violations)
	}
}

func TestSummaryCounts(t *testing.T) {
	reg, layouts := testSchema()
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint", "Pair"}
	buildDriver(prog)
	s := mustSER(t, prog, layouts, "driver")
	sum := s.Summary()
	if sum.Funcs != 1 || sum.TransformStmts == 0 || sum.DataVars == 0 || sum.Classes == 0 {
		t.Errorf("summary = %+v", sum)
	}
}
