package analysis

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/model"
)

func ptProgram() *ir.Program {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Box", Fields: []model.FieldDef{
		{Name: "inner", Type: model.Object("Box")},
		{Name: "v", Type: model.Prim(model.KindLong)},
	}})
	return ir.NewProgram(reg)
}

func pts(t *testing.T, p *PointsTo, v *ir.Var) map[int]bool {
	t.Helper()
	return p.Pts(v)
}

func TestPointsToAssignPropagation(t *testing.T) {
	prog := ptProgram()
	b := ir.NewFuncBuilder(prog, "main", model.Type{})
	a := b.New("Box")
	c := b.Temp(model.Object("Box"))
	b.Assign(c, a)
	d := b.Temp(model.Object("Box"))
	b.Assign(d, c)
	b.Ret(nil)
	b.Done()

	p, err := Solve(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	pa, pd := pts(t, p, a), pts(t, p, d)
	if len(pa) != 1 || len(pd) != 1 {
		t.Fatalf("pts sizes: %d %d", len(pa), len(pd))
	}
	for id := range pa {
		if !pd[id] {
			t.Errorf("assignment chain lost the site")
		}
	}
}

func TestPointsToFieldFlow(t *testing.T) {
	prog := ptProgram()
	b := ir.NewFuncBuilder(prog, "main", model.Type{})
	outer := b.New("Box")
	inner := b.New("Box")
	b.Store(outer, "inner", inner)
	got := b.Load(outer, "inner")
	b.Ret(nil)
	b.Done()

	p, err := Solve(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	pi, pg := pts(t, p, inner), pts(t, p, got)
	for id := range pi {
		if !pg[id] {
			t.Errorf("field load did not recover the stored site")
		}
	}
	// The loaded set must not include the outer allocation.
	po := pts(t, p, outer)
	for id := range po {
		if pg[id] {
			t.Errorf("field load polluted with the holder's own site")
		}
	}
}

func TestPointsToDeserializedSubSites(t *testing.T) {
	prog := ptProgram()
	b := ir.NewFuncBuilder(prog, "main", model.Type{})
	rec := b.ReadRecord("in", model.Object("Box"))
	in1 := b.Load(rec, "inner")
	in2 := b.Load(in1, "inner")
	b.Ret(nil)
	b.Done()

	p, err := Solve(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts(t, p, in1)) == 0 || len(pts(t, p, in2)) == 0 {
		t.Fatalf("deserialized interiors not modeled")
	}
	for id := range pts(t, p, in1) {
		if p.Sites[id].Kind != SiteDeserSub {
			t.Errorf("inner of a deserialized record should be a sub-site, got %v", p.Sites[id].Kind)
		}
	}
}

func TestPointsToCallBinding(t *testing.T) {
	prog := ptProgram()
	hb := ir.NewFuncBuilder(prog, "id", model.Object("Box"))
	hp := hb.Param("x", model.Object("Box"))
	hb.Ret(hp)
	hb.Done()

	b := ir.NewFuncBuilder(prog, "main", model.Type{})
	a := b.New("Box")
	r := b.Call("id", model.Object("Box"), a)
	b.Ret(nil)
	b.Done()

	p, err := Solve(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	pa, pr := pts(t, p, a), pts(t, p, r)
	if len(pr) == 0 {
		t.Fatalf("return value has empty points-to set")
	}
	for id := range pa {
		if !pr[id] {
			t.Errorf("identity call lost the site")
		}
	}
	if got := len(p.Reachable()); got != 2 {
		t.Errorf("closure = %d funcs, want 2", got)
	}
}

func TestPointsToArrayElements(t *testing.T) {
	prog := ptProgram()
	b := ir.NewFuncBuilder(prog, "main", model.Type{})
	one := b.IConst(1)
	arr := b.NewArr(model.Object("Box"), one)
	bx := b.New("Box")
	zero := b.IConst(0)
	b.SetElem(arr, zero, bx)
	got := b.Elem(arr, zero)
	b.Ret(nil)
	b.Done()

	p, err := Solve(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	pb, pg := pts(t, p, bx), pts(t, p, got)
	for id := range pb {
		if !pg[id] {
			t.Errorf("array element flow lost")
		}
	}
}

func TestSolveUnknownEntry(t *testing.T) {
	prog := ptProgram()
	if _, err := Solve(prog, "ghost"); err == nil {
		t.Fatalf("unknown entry accepted")
	}
}

func TestSiteStringAndKinds(t *testing.T) {
	prog := ptProgram()
	b := ir.NewFuncBuilder(prog, "main", model.Type{})
	b.New("Box")
	b.ReadRecord("in", model.Object("Box"))
	b.Ret(nil)
	b.Done()
	p, err := Solve(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SitesOfKind(SiteAlloc)) != 1 || len(p.SitesOfKind(SiteDeser)) != 1 {
		t.Errorf("site kinds wrong")
	}
	for _, s := range p.Sites {
		if s.String() == "" {
			t.Errorf("empty site string")
		}
	}
}
