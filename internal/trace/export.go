package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ---- Chrome trace_event exporter ----

// ChromeEvent is one entry of the Chrome trace_event JSON array, the
// format chrome://tracing and Perfetto load directly. Timestamps and
// durations are microseconds.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTraceFile is the top-level object of a Chrome trace JSON file.
type ChromeTraceFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// toChrome converts one recorded event to its Chrome trace form.
func toChrome(e Event) ChromeEvent {
	return ChromeEvent{
		Name: e.Name, Cat: e.Cat, Ph: e.Ph,
		TS:  float64(e.TS) / 1e3,
		Dur: float64(e.Dur) / 1e3,
		PID: 1, TID: e.TID, S: e.Scope, Args: e.Args,
	}
}

// ChromeTrace converts the recorded events to the Chrome trace file
// structure, sorted by timestamp.
func (t *Tracer) ChromeTrace() ChromeTraceFile {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	out := ChromeTraceFile{DisplayTimeUnit: "ns", TraceEvents: make([]ChromeEvent, len(events))}
	for i, e := range events {
		out.TraceEvents[i] = toChrome(e)
	}
	return out
}

// ---- streaming Chrome exporter ----

// streamWriter incrementally writes the Chrome trace JSON object as
// events are emitted, so a long traced run never buffers its whole event
// log in tracer memory. Always accessed under the tracer's mutex.
type streamWriter struct {
	w     io.Writer
	wrote bool // at least one event written (comma bookkeeping)
	err   error
}

func (sw *streamWriter) event(e Event) {
	if sw.err != nil {
		return
	}
	sep := ",\n"
	if !sw.wrote {
		sep = "\n"
	}
	payload, err := json.Marshal(toChrome(e))
	if err == nil {
		_, err = fmt.Fprintf(sw.w, "%s %s", sep, payload)
	}
	if err != nil {
		sw.err = err
		return
	}
	sw.wrote = true
}

// StreamTo switches the tracer into streaming mode: the Chrome trace
// JSON header and every already-buffered event are written to w
// immediately, each future event is appended as it is emitted (and not
// retained in memory), and CloseStream terminates the JSON object. The
// streamed file holds events in emission order — spans appear when they
// End — which Perfetto accepts; only the buffered exporter sorts.
func (t *Tracer) StreamTo(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stream != nil {
		return fmt.Errorf("trace: already streaming")
	}
	if _, err := fmt.Fprintf(w, "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": ["); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	sw := &streamWriter{w: w}
	for _, e := range t.events {
		sw.event(e)
	}
	if sw.err != nil {
		return fmt.Errorf("trace: %w", sw.err)
	}
	t.events = nil
	t.stream = sw
	return nil
}

// CloseStream ends streaming mode, writing the closing brackets of the
// Chrome trace JSON object and reporting any write error swallowed along
// the way. The tracer buffers events again afterwards.
func (t *Tracer) CloseStream() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sw := t.stream
	if sw == nil {
		return fmt.Errorf("trace: not streaming")
	}
	t.stream = nil
	if sw.err != nil {
		return fmt.Errorf("trace: %w", sw.err)
	}
	if _, err := fmt.Fprintf(sw.w, "\n]}\n"); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WriteChromeTrace writes the Chrome trace JSON to w.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.ChromeTrace())
}

// WriteChromeTraceFile writes the Chrome trace JSON to the named file.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return t.WriteChromeTrace(f)
}

// ---- metrics JSON exporter ----

// MetricsSchemaVersion identifies the metrics JSON layout, so committed
// BENCH_*.json trajectory points stay comparable across PRs.
const MetricsSchemaVersion = 1

// HistSnapshot is the exported state of one histogram. Counts has
// len(Bounds)+1 entries; Counts[i] holds observations v with
// Bounds[i-1] < v <= Bounds[i] and the final entry is the overflow.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
}

// Snapshot is a point-in-time capture of a registry.
type Snapshot struct {
	Schema     int                     `json:"schema"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     MetricsSchemaVersion,
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// MetricsFile is the top-level object of the metrics JSON exporter:
// the registry snapshot plus caller-supplied context (app name, scale,
// per-mode Breakdown dumps) under "extra".
type MetricsFile struct {
	Snapshot
	Extra map[string]any `json:"extra,omitempty"`
}

// WriteMetricsJSON writes the registry snapshot and extra context to w,
// suitable for committing as a BENCH_*.json trajectory point.
func (t *Tracer) WriteMetricsJSON(w io.Writer, extra map[string]any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(MetricsFile{Snapshot: t.Registry().Snapshot(), Extra: extra})
}

// WriteMetricsJSONFile writes the metrics JSON to the named file.
func (t *Tracer) WriteMetricsJSONFile(path string, extra map[string]any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return t.WriteMetricsJSON(f, extra)
}
