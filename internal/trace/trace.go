// Package trace is the runtime's structured observability layer: a
// span-based lifecycle tracer (job → stage → task → attempt → phase)
// with instant events for GC pauses, arena growth, aborts, retries,
// breaker transitions and fault injections, plus a metrics registry of
// counters, gauges and fixed-bucket histograms (registry.go) and two
// exporters — Chrome trace_event JSON and machine-readable metrics JSON
// (export.go).
//
// The paper's whole argument is a cost-attribution claim (Figures 6/7
// decompose runtime into compute/GC/ser/deser); this package turns the
// end-of-job aggregate totals of metrics.Breakdown into per-event
// evidence: when a GC pause lands inside a task, how an abort
// redistributes time between the native attempt and the heap fallback,
// how arena occupancy evolves.
//
// Overhead contract: tracing is off by default and the hot path pays
// only nil checks. Every method of Tracer, Span, Counter, Gauge,
// Histogram and Registry is safe to call on a nil receiver and returns
// immediately, so instrumentation sites never branch on an "enabled"
// flag themselves — a disabled tracer is simply a nil one. The
// BenchmarkDisabledSpan benchmark pins this at a few ns per call chain.
//
// Concurrency: one Tracer is shared by every worker of a job. Event
// emission takes a mutex (events are coarse: tasks, attempts, GCs —
// not per-field accesses), and registry instruments use their own
// locks; `go test -race ./internal/trace` exercises parallel spans.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one key/value annotation attached to an event.
type Arg struct {
	Key string
	Val any
}

// Str builds a string-valued Arg.
func Str(k, v string) Arg { return Arg{Key: k, Val: v} }

// I64 builds an integer-valued Arg.
func I64(k string, v int64) Arg { return Arg{Key: k, Val: v} }

// F64 builds a float-valued Arg.
func F64(k string, v float64) Arg { return Arg{Key: k, Val: v} }

// Event is one recorded trace event. TS and Dur are nanoseconds since
// the tracer's start; the Chrome exporter converts to microseconds.
type Event struct {
	Name  string
	Cat   string
	Ph    string // "X" complete, "i" instant, "C" counter, "B" span-open (subscribers only)
	TS    int64
	Dur   int64  // complete events only
	TID   int64  // 0 = process-scoped
	Scope string // instant events: "t" thread, "p" process
	Args  map[string]any

	// SID identifies the span an event belongs to and PSID its parent
	// span (0 = root). They let live subscribers reconstruct the span
	// tree without matching by time interval — hedged attempts overlap
	// on one thread row, so intervals alone are ambiguous. The Chrome
	// exporter ignores both.
	SID  int64
	PSID int64
}

// Tracer collects events for one run. Create with New; a nil *Tracer is
// the disabled tracer and accepts every call as a no-op.
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Time
	start   time.Time
	events  []Event
	nextTID int64
	metrics *Registry
	stream  *streamWriter // non-nil: events flush to it instead of buffering

	nextSID atomic.Int64
	hasSubs atomic.Bool // fast-path gate: span opens only notify when true
	subs    []func(Event)
}

// New returns an enabled tracer using the real clock.
func New() *Tracer { return NewWithClock(time.Now) }

// NewWithClock returns a tracer reading time from now — tests inject a
// deterministic clock so exported timestamps are reproducible.
func NewWithClock(now func() time.Time) *Tracer {
	t := &Tracer{now: now, metrics: NewRegistry()}
	t.start = now()
	return t
}

// Registry returns the tracer's metrics registry (nil for a nil tracer;
// registry methods are themselves nil-safe, so chained calls like
// t.Registry().Counter("x").Add(1) are always valid).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Events returns a snapshot of the events recorded so far.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

func (t *Tracer) since() int64 { return t.now().Sub(t.start).Nanoseconds() }

func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	if t.stream != nil {
		t.stream.event(e)
	} else {
		t.events = append(t.events, e)
	}
	for _, fn := range t.subs {
		fn(e)
	}
	t.mu.Unlock()
}

// Subscribe registers a live event sink: every future event — plus a
// synthetic "B" (span-open) notification for each StartSpan/Child, which
// is delivered only to subscribers and never buffered or streamed — is
// passed to fn. Subscribers run under the tracer's mutex, so fn must be
// fast and must not call back into the tracer or its spans. This is the
// attachment point for the live observability plane (bounded event
// rings, flame-graph aggregation); a tracer with no subscribers pays
// one atomic load per span open.
func (t *Tracer) Subscribe(fn func(Event)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.subs = append(t.subs, fn)
	t.hasSubs.Store(true)
	t.mu.Unlock()
}

// notifyOpen delivers the subscriber-only span-open notification.
func (t *Tracer) notifyOpen(s *Span) {
	e := Event{Name: s.name, Cat: s.cat, Ph: "B", TS: s.start, TID: s.tid,
		SID: s.sid, PSID: s.psid}
	t.mu.Lock()
	for _, fn := range t.subs {
		fn(e)
	}
	t.mu.Unlock()
}

// StartSpan opens a root span on a fresh thread row (Chrome renders one
// row per tid; child spans share their parent's row and must nest).
func (t *Tracer) StartSpan(cat, name string, args ...Arg) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextTID++
	tid := t.nextTID
	t.mu.Unlock()
	s := &Span{t: t, cat: cat, name: name, tid: tid, start: t.since(), args: args,
		sid: t.nextSID.Add(1)}
	if t.hasSubs.Load() {
		t.notifyOpen(s)
	}
	return s
}

// Instant records a process-scoped instant event (a vertical line across
// the whole trace in Perfetto).
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Cat: cat, Ph: "i", TS: t.since(), Scope: "p", Args: argsMap(args, nil)})
}

// Span is one open duration event. A nil *Span accepts every call as a
// no-op, so a disabled tracer propagates for free through span trees.
type Span struct {
	t         *Tracer
	cat, name string
	tid       int64
	start     int64
	args      []Arg
	sid, psid int64
}

// Tracer returns the owning tracer (nil for a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// Child opens a sub-span on the same thread row. Children must end
// before their parent for the Chrome nesting to render correctly.
func (s *Span) Child(cat, name string, args ...Arg) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, cat: cat, name: name, tid: s.tid, start: s.t.since(), args: args,
		sid: s.t.nextSID.Add(1), psid: s.sid}
	if s.t.hasSubs.Load() {
		s.t.notifyOpen(c)
	}
	return c
}

// End closes the span, emitting one complete ("X") event carrying the
// start args plus any end args.
func (s *Span) End(args ...Arg) {
	if s == nil {
		return
	}
	end := s.t.since()
	s.t.emit(Event{Name: s.name, Cat: s.cat, Ph: "X", TS: s.start, Dur: end - s.start,
		TID: s.tid, Args: argsMap(s.args, args), SID: s.sid, PSID: s.psid})
}

// Instant records a thread-scoped instant event on the span's row —
// e.g. a GC pause or an abort attributed to the task that suffered it.
func (s *Span) Instant(cat, name string, args ...Arg) {
	if s == nil {
		return
	}
	s.t.emit(Event{Name: name, Cat: cat, Ph: "i", TS: s.t.since(), TID: s.tid, Scope: "t",
		Args: argsMap(args, nil), PSID: s.sid})
}

// Counter records a counter ("C") sample — Perfetto graphs these as a
// stacked area chart, e.g. heap or arena occupancy over time.
func (s *Span) Counter(name string, value int64) {
	if s == nil {
		return
	}
	s.t.emit(Event{Name: name, Cat: "counter", Ph: "C", TS: s.t.since(), TID: s.tid,
		Args: map[string]any{"value": value}})
}

func argsMap(a, b []Arg) map[string]any {
	if len(a)+len(b) == 0 {
		return nil
	}
	m := make(map[string]any, len(a)+len(b))
	for _, x := range a {
		m[x.Key] = x.Val
	}
	for _, x := range b {
		m[x.Key] = x.Val
	}
	return m
}
