package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock advances a fixed step per reading, making timestamps (and
// therefore the exported JSON) fully deterministic.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

// TestChromeTraceGolden pins the exporter's wire format: a miniature
// job → task → attempt → phase span tree with GC/abort instants and a
// counter sample must serialize byte-identically to the golden file.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Millisecond))

	job := tr.StartSpan("job", "PR", Str("mode", "gerenuk"))
	task := tr.StartSpan("task", "pr-contribs-p0", Str("driver", "pr-contribs"))
	att := task.Child("attempt", "native-attempt", I64("attempt", 1))
	ph := att.Child("phase", "native-execute")
	ph.Instant("gc", "minor-gc", I64("pause_ns", 12345), I64("heap_before_bytes", 4096), I64("heap_after_bytes", 1024))
	ph.Counter("heap_used_bytes", 1024)
	ph.End(I64("deser_bytes", 2048))
	att.End(Str("outcome", "abort"))
	task.Instant("abort", "speculation-abort", Str("class", "abort-speculation"))
	fb := task.Child("attempt", "heap-attempt")
	fb.End(Str("outcome", "success"))
	task.End(Str("status", "ok"))
	tr.Instant("fault", "injected-transient", I64("attempt", 2))
	job.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace JSON drifted from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// The golden bytes must also be valid Chrome trace JSON round-trip.
	var file ChromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	if len(file.TraceEvents) != 9 {
		t.Errorf("got %d events, want 9", len(file.TraceEvents))
	}
}

// TestHistogramBucketBoundaries pins the upper-inclusive bucket rule:
// an observation exactly on a bound lands in that bound's bucket, one
// past it lands in the next, and values beyond the last bound land in
// the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 100, 1000)
	for _, v := range []float64{5, 10, 10.5, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	wantCounts := []int64{2, 2, 2, 2} // (..10] (10,100] (100,1000] (1000,..)
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Min != 5 || s.Max != 5000 {
		t.Errorf("min/max = %v/%v, want 5/5000", s.Min, s.Max)
	}
	if s.Sum != 5+10+10.5+100+101+1000+1001+5000 {
		t.Errorf("sum = %v", s.Sum)
	}
	// Re-looking-up the histogram must return the same instance and
	// ignore new bounds.
	if h2 := r.Histogram("lat", 1, 2, 3); h2 != h {
		t.Error("histogram lookup created a duplicate")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1000, 2, 4)
	want := []float64{1000, 2000, 4000, 8000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// TestConcurrentSpans drives parallel task spans, instants and registry
// instruments from many goroutines; `go test -race` (run in CI) makes
// this the tracer's thread-safety proof.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	const workers, tasks = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < tasks; i++ {
				task := tr.StartSpan("task", fmt.Sprintf("w%d-t%d", w, i))
				att := task.Child("attempt", "heap-attempt")
				att.Instant("gc", "minor-gc", I64("pause_ns", int64(i)))
				att.End()
				task.End()
				tr.Registry().Counter("tasks_total").Add(1)
				tr.Registry().Histogram("task_latency_ns", LatencyBuckets()...).Observe(float64(i))
				tr.Registry().Gauge("last_task").Set(float64(i))
			}
		}(w)
	}
	wg.Wait()

	if got := tr.Registry().Counter("tasks_total").Value(); got != workers*tasks {
		t.Errorf("counter = %d, want %d", got, workers*tasks)
	}
	if got := tr.Registry().Histogram("task_latency_ns").snapshot().Count; got != workers*tasks {
		t.Errorf("histogram count = %d, want %d", got, workers*tasks)
	}
	events := tr.Events()
	want := workers * tasks * 3 // task X + attempt X + gc instant
	if len(events) != want {
		t.Errorf("got %d events, want %d", len(events), want)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file ChromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("concurrent trace does not parse: %v", err)
	}
	if err := tr.WriteMetricsJSON(&buf, map[string]any{"test": true}); err != nil {
		t.Fatal(err)
	}
}

// TestNilTracerIsNoOp: the disabled tracer must accept the full API
// surface without panicking or recording anything.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("task", "x", Str("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	child := sp.Child("phase", "deserialize")
	child.Instant("gc", "minor-gc")
	child.Counter("heap_used_bytes", 1)
	child.End(I64("bytes", 1))
	sp.End()
	tr.Instant("fault", "injected")
	tr.Registry().Counter("c").Add(1)
	tr.Registry().Gauge("g").Set(1)
	tr.Registry().Gauge("g").SetMax(2)
	tr.Registry().Histogram("h", 1, 2).Observe(1)
	if tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	snap := tr.Registry().Snapshot()
	if len(snap.Counters) != 0 || snap.Schema != MetricsSchemaVersion {
		t.Errorf("nil registry snapshot = %+v", snap)
	}
}

// TestMetricsJSONRoundTrip: the metrics exporter must produce JSON that
// parses back into the snapshot structure with the schema stamp.
func TestMetricsJSONRoundTrip(t *testing.T) {
	tr := New()
	tr.Registry().Counter("aborts_total").Add(3)
	tr.Registry().Gauge("peak_bytes").SetMax(4096)
	tr.Registry().Histogram("gc_pause_ns", LatencyBuckets()...).Observe(1500)
	var buf bytes.Buffer
	if err := tr.WriteMetricsJSON(&buf, map[string]any{"app": "PR"}); err != nil {
		t.Fatal(err)
	}
	var m MetricsFile
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Schema != MetricsSchemaVersion {
		t.Errorf("schema = %d, want %d", m.Schema, MetricsSchemaVersion)
	}
	if m.Counters["aborts_total"] != 3 {
		t.Errorf("counter = %d, want 3", m.Counters["aborts_total"])
	}
	if m.Gauges["peak_bytes"] != 4096 {
		t.Errorf("gauge = %v, want 4096", m.Gauges["peak_bytes"])
	}
	h := m.Histograms["gc_pause_ns"]
	if h.Count != 1 || h.Sum != 1500 {
		t.Errorf("histogram = %+v", h)
	}
	if m.Extra["app"] != "PR" {
		t.Errorf("extra = %v", m.Extra)
	}
}

// BenchmarkDisabledSpan pins the overhead contract: the full span tree
// call chain on a disabled (nil) tracer must cost only nil checks.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		task := tr.StartSpan("task", "t")
		att := task.Child("attempt", "heap-attempt")
		ph := att.Child("phase", "deserialize")
		ph.End(I64("bytes", 64))
		att.Instant("gc", "minor-gc")
		att.End()
		task.End()
	}
}

// BenchmarkEnabledSpan measures the cost when tracing is on, for
// comparison in DESIGN.md's overhead contract.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		task := tr.StartSpan("task", "t")
		att := task.Child("attempt", "heap-attempt")
		att.End()
		task.End()
	}
}

// TestStreamingExporter: switching to streaming mode flushes the events
// buffered so far, appends later events incrementally instead of
// retaining them, and CloseStream produces a well-formed Chrome trace
// JSON object.
func TestStreamingExporter(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Millisecond))
	pre := tr.StartSpan("job", "before-stream")
	pre.End()

	var buf bytes.Buffer
	if err := tr.StreamTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.StreamTo(&buf); err == nil {
		t.Error("second StreamTo accepted")
	}
	if n := len(tr.Events()); n != 0 {
		t.Errorf("tracer retained %d events after StreamTo", n)
	}
	mid := buf.Len()

	s := tr.StartSpan("task", "while-streaming", Str("k", "v"))
	s.Instant("gc", "minor-gc", I64("pause_ns", 7))
	s.End()
	if buf.Len() <= mid {
		t.Error("streamed events were not written incrementally")
	}
	if n := len(tr.Events()); n != 0 {
		t.Errorf("tracer retained %d events while streaming", n)
	}

	if err := tr.CloseStream(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CloseStream(); err == nil {
		t.Error("second CloseStream accepted")
	}

	var file ChromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("streamed output is not valid trace JSON: %v\n%s", err, buf.Bytes())
	}
	if file.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	names := map[string]bool{}
	for _, e := range file.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"before-stream", "while-streaming", "minor-gc"} {
		if !names[want] {
			t.Errorf("streamed trace missing event %q (got %v)", want, names)
		}
	}

	// After CloseStream the tracer buffers again.
	tr.Instant("fault", "post-stream")
	if n := len(tr.Events()); n != 1 {
		t.Errorf("post-stream buffering broken: %d events", n)
	}
}

func TestStreamNilAndNotStreaming(t *testing.T) {
	var nilTr *Tracer
	if err := nilTr.StreamTo(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer StreamTo: %v", err)
	}
	if err := nilTr.CloseStream(); err != nil {
		t.Errorf("nil tracer CloseStream: %v", err)
	}
	if err := New().CloseStream(); err == nil {
		t.Error("CloseStream without StreamTo accepted")
	}
}
