package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentScrapeStress hammers one shared registry's
// counters, gauges and histograms from many writer goroutines — the
// shape of concurrent task attempts instrumenting a live job — while
// reader goroutines repeatedly Snapshot the registry, query quantiles,
// and run the metrics JSON exporter, the way a live /metrics scrape
// reads mid-run state. Run under -race (the CI suite always does), it
// locks in that live scrapes are data-race-free against the hot
// instrumentation path, and that every snapshot is internally coherent
// (bucket counts always sum to the histogram count).
func TestRegistryConcurrentScrapeStress(t *testing.T) {
	tr := New()
	r := tr.Registry()
	const (
		writers = 8
		readers = 4
		rounds  = 400
	)
	var wg sync.WaitGroup
	start := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				r.Counter("tasks_total").Add(1)
				r.Counter(fmt.Sprintf("worker_%d_total", w)).Add(2)
				r.Gauge("inflight").Set(float64(i))
				r.Gauge("peak").SetMax(float64(w*rounds + i))
				r.Histogram("task_latency_ns", LatencyBuckets()...).Observe(float64(i * 1000))
				r.Histogram("bytes", ByteBuckets()...).Observe(float64(i * 64))
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds/4; i++ {
				s := r.Snapshot()
				for name, h := range s.Histograms {
					var sum int64
					for _, c := range h.Counts {
						sum += c
					}
					if sum != h.Count {
						t.Errorf("snapshot %s: bucket counts sum %d != count %d", name, sum, h.Count)
						return
					}
				}
				r.Histogram("task_latency_ns").Quantile(0.99)
				var buf bytes.Buffer
				if err := tr.WriteMetricsJSON(&buf, nil); err != nil {
					t.Errorf("WriteMetricsJSON: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := r.Counter("tasks_total").Value(); got != writers*rounds {
		t.Fatalf("tasks_total = %d, want %d", got, writers*rounds)
	}
	if h := r.Histogram("task_latency_ns").snapshot(); h.Count != writers*rounds {
		t.Fatalf("task_latency_ns count = %d, want %d", h.Count, writers*rounds)
	}
}

// TestTracerSubscribeStress drives concurrent span trees through a
// tracer with a live subscriber — the bounded-ring/flame-aggregation
// shape — proving span-open notifications and event emission are safe
// against parallel workers.
func TestTracerSubscribeStress(t *testing.T) {
	tr := New()
	var mu sync.Mutex
	var opens, closes int
	tr.Subscribe(func(e Event) {
		mu.Lock()
		switch e.Ph {
		case "B":
			opens++
		case "X":
			closes++
		}
		mu.Unlock()
	})
	const workers, spansPer = 6, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				task := tr.StartSpan("task", "t")
				att := task.Child("attempt", "a")
				ph := att.Child("phase", "p")
				ph.End()
				att.End()
				task.Instant("fault", "noop")
				task.End()
			}
		}()
	}
	wg.Wait()
	want := workers * spansPer * 3
	mu.Lock()
	defer mu.Unlock()
	if opens != want || closes != want {
		t.Fatalf("subscriber saw %d opens, %d closes; want %d each", opens, closes, want)
	}
}
