package trace

import "testing"

// TestHistogramQuantile pins the bucket-quantile estimator the hedging
// heuristic relies on: nil/empty safety, exactness when all mass sits in
// one bucket, the min/max clamp, and the count it reports.
func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if v, n := nilH.Quantile(0.5); v != 0 || n != 0 {
		t.Fatalf("nil histogram Quantile = %v, %d; want 0, 0", v, n)
	}

	r := NewRegistry()
	h := r.Histogram("q", 10, 100, 1000)
	if v, n := h.Quantile(0.5); v != 0 || n != 0 {
		t.Fatalf("empty histogram Quantile = %v, %d; want 0, 0", v, n)
	}

	// All observations in the (10,100] bucket: every quantile clamps into
	// the observed [min,max] range.
	for _, v := range []float64{20, 30, 40, 50} {
		h.Observe(v)
	}
	if v, n := h.Quantile(0.5); v != 50 || n != 4 {
		// rank 2 falls in bucket bound 100, clamped to max observed 50
		t.Fatalf("Quantile(0.5) = %v, %d; want 50 (bucket bound clamped to max), 4", v, n)
	}
	if v, _ := h.Quantile(0.01); v != 50 {
		// every rank resolves to the same bucket, so the same clamp applies
		t.Fatalf("Quantile(0.01) = %v; want 50", v)
	}

	// Spread across buckets: the median lands on its bucket's upper bound.
	h2 := r.Histogram("q2", 10, 100, 1000)
	for _, v := range []float64{5, 5, 5, 500, 500} {
		h2.Observe(v)
	}
	if v, n := h2.Quantile(0.5); v != 10 || n != 5 {
		// rank 3 of 5 sits in the first bucket (bound 10), above min 5
		t.Fatalf("Quantile(0.5) = %v, %d; want 10, 5", v, n)
	}
	if v, _ := h2.Quantile(1); v != 500 {
		t.Fatalf("Quantile(1) = %v; want 500 (last bucket, clamped to max)", v)
	}

	// Overflow bucket (above the last bound): clamp to observed max.
	h3 := r.Histogram("q3", 10)
	h3.Observe(9999)
	if v, n := h3.Quantile(0.5); v != 9999 || n != 1 {
		t.Fatalf("overflow-bucket Quantile = %v, %d; want 9999, 1", v, n)
	}
}
