package trace

import (
	"math"
	"testing"
)

// TestHistogramQuantile pins the bucket-quantile estimator the hedging
// heuristic relies on: nil/empty safety, exactness when all mass sits in
// one bucket, the min/max clamp, and the count it reports.
func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if v, n := nilH.Quantile(0.5); v != 0 || n != 0 {
		t.Fatalf("nil histogram Quantile = %v, %d; want 0, 0", v, n)
	}

	r := NewRegistry()
	h := r.Histogram("q", 10, 100, 1000)
	if v, n := h.Quantile(0.5); v != 0 || n != 0 {
		t.Fatalf("empty histogram Quantile = %v, %d; want 0, 0", v, n)
	}

	// All observations in the (10,100] bucket: every quantile clamps into
	// the observed [min,max] range.
	for _, v := range []float64{20, 30, 40, 50} {
		h.Observe(v)
	}
	if v, n := h.Quantile(0.5); v != 50 || n != 4 {
		// rank 2 falls in bucket bound 100, clamped to max observed 50
		t.Fatalf("Quantile(0.5) = %v, %d; want 50 (bucket bound clamped to max), 4", v, n)
	}
	if v, _ := h.Quantile(0.01); v != 50 {
		// every rank resolves to the same bucket, so the same clamp applies
		t.Fatalf("Quantile(0.01) = %v; want 50", v)
	}

	// Spread across buckets: the median lands on its bucket's upper bound.
	h2 := r.Histogram("q2", 10, 100, 1000)
	for _, v := range []float64{5, 5, 5, 500, 500} {
		h2.Observe(v)
	}
	if v, n := h2.Quantile(0.5); v != 10 || n != 5 {
		// rank 3 of 5 sits in the first bucket (bound 10), above min 5
		t.Fatalf("Quantile(0.5) = %v, %d; want 10, 5", v, n)
	}
	if v, _ := h2.Quantile(1); v != 500 {
		t.Fatalf("Quantile(1) = %v; want 500 (last bucket, clamped to max)", v)
	}

	// Overflow bucket (above the last bound): clamp to observed max.
	h3 := r.Histogram("q3", 10)
	h3.Observe(9999)
	if v, n := h3.Quantile(0.5); v != 9999 || n != 1 {
		t.Fatalf("overflow-bucket Quantile = %v, %d; want 9999, 1", v, n)
	}
}

// TestHistogramQuantileEdges is the table-driven edge-case suite: empty
// histograms, single samples, q at and beyond both ends of (0,1], NaN q,
// bound-less histograms (everything in the overflow bucket), and exact
// boundary observations. Until the live /metrics plane every caller only
// exercised the median path; these pin the rest of the domain.
func TestHistogramQuantileEdges(t *testing.T) {
	mk := func(bounds []float64, obs ...float64) *Histogram {
		h := NewRegistry().Histogram("h", bounds...)
		for _, v := range obs {
			h.Observe(v)
		}
		return h
	}
	cases := []struct {
		name      string
		h         *Histogram
		q         float64
		wantV     float64
		wantCount int64
	}{
		{"empty/q0", mk([]float64{10, 100}), 0, 0, 0},
		{"empty/q1", mk([]float64{10, 100}), 1, 0, 0},
		{"single/median", mk([]float64{10, 100}, 42), 0.5, 42, 1},
		{"single/q0", mk([]float64{10, 100}, 42), 0, 42, 1},
		{"single/q1", mk([]float64{10, 100}, 42), 1, 42, 1},
		{"single/overflow-bucket", mk([]float64{10}, 42), 0.5, 42, 1},
		{"q0-returns-min", mk([]float64{10, 100, 1000}, 5, 50, 500), 0, 5, 3},
		{"q1-returns-max", mk([]float64{10, 100, 1000}, 5, 50, 500), 1, 500, 3},
		{"q-negative-clamps-to-min", mk([]float64{10, 100}, 20, 80), -3, 20, 2},
		{"q-above-one-clamps-to-max", mk([]float64{10, 100}, 20, 80), 1.5, 80, 2},
		{"q-nan-returns-min", mk([]float64{10, 100}, 20, 80), math.NaN(), 20, 2},
		{"no-bounds-all-overflow", mk(nil, 3, 7, 11), 0.5, 11, 3},
		{"no-bounds-q0", mk(nil, 3, 7, 11), 0, 3, 3},
		{"boundary-observation", mk([]float64{10, 100}, 10, 10), 0.5, 10, 2},
		{"tiny-q-first-bucket", mk([]float64{10, 100}, 5, 50, 50, 50), 0.25, 10, 4},
		{"p99-lands-in-top-bucket", mk([]float64{10, 100}, 5, 5, 5, 99), 0.99, 99, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, n := tc.h.Quantile(tc.q)
			if v != tc.wantV || n != tc.wantCount {
				t.Fatalf("Quantile(%v) = %v, %d; want %v, %d", tc.q, v, n, tc.wantV, tc.wantCount)
			}
		})
	}
}
