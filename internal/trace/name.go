package trace

import (
	"fmt"
	"strings"
)

// Name builds a registry metric name carrying an inline Prometheus label
// block, e.g. Name("gc_pause_ns", "job", "PR", "mode", "gerenuk") →
// `gc_pause_ns{job="PR",mode="gerenuk"}`. kv is key/value pairs; values
// are quoted with backslash escaping so arbitrary app or tenant names
// stay inside one label. The obs package's Prometheus exporter splits
// the block back out into per-series labels; the plain JSON exporter
// keeps the name verbatim, which is unambiguous either way.
//
// Living here (rather than in obs) lets the execution layers — engine,
// spark, hadoop, cluster — emit labeled series into the registry they
// already hold without importing the observability plane.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		// %q's Go escaping matches Prometheus label escaping for the
		// characters that matter here (backslash, quote)
		fmt.Fprintf(&sb, "%s=%q", SanitizeMetricName(kv[i]), kv[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// SanitizeMetricName maps an arbitrary instrument name onto the
// Prometheus metric-name alphabet [a-zA-Z0-9_:].
func SanitizeMetricName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}
