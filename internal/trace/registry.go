package trace

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metric instruments. Instruments are created
// lazily on first use and live for the registry's lifetime; Snapshot
// (export.go) captures their values for the metrics JSON exporter.
// All methods are safe for concurrent use and for nil receivers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named monotonic counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given bucket upper bounds if needed (bounds are ignored on later
// lookups of an existing histogram).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1),
			min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// SetMax stores v only if it exceeds the current value (high-water
// gauges such as peak occupancy).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if v > g.v {
		g.v = v
	}
	g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations v
// with bounds[i-1] < v <= bounds[i] (upper-inclusive); the final bucket
// counts everything above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Quantile returns an approximation of the q-th quantile of the
// observed values plus the observation count. The estimate is the upper
// bound of the bucket containing the quantile, clamped to the observed
// min/max — with exponential buckets that is within one bucket factor of
// the true value, which is all the hedging heuristic needs.
//
// Edge cases are total: a nil or empty histogram returns (0, 0); a
// single-sample histogram returns that sample for every q; q <= 0 (and
// NaN) returns the observed min, q >= 1 the observed max.
func (h *Histogram) Quantile(q float64) (float64, int64) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0, 0
	}
	if q <= 0 || math.IsNaN(q) {
		return h.min, h.count
	}
	if q >= 1 {
		return h.max, h.count
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	v := h.max
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				v = h.bounds[i]
			}
			break
		}
	}
	if v > h.max {
		v = h.max
	}
	if v < h.min {
		v = h.min
	}
	return v, h.count
}

// snapshot captures the histogram under its lock.
func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	return s
}

// ExpBuckets returns n exponentially spaced bucket upper bounds
// starting at start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets are the default duration buckets in nanoseconds:
// 1µs, 2µs, ... doubling up to ~17s. Used for task-latency and
// GC-pause distributions.
func LatencyBuckets() []float64 { return ExpBuckets(1e3, 2, 25) }

// ByteBuckets are the default size buckets: 64B, 256B, ... ×4 up to
// ~1GB. Used for serde byte-count distributions.
func ByteBuckets() []float64 { return ExpBuckets(64, 4, 12) }
