package recovery

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Disk persistence for the checkpoint store. A store opened with
// OpenDiskCheckpointStore writes every Save through to one file per
// checkpoint (atomic temp-file + rename, so a crash mid-write leaves
// either the old entry or the new one, never a torn file) and reloads
// the directory at open, so a restarted gerenukd or stream run resumes
// from the checkpoints its predecessor persisted.
//
// The stored checksum travels with the entry: a file whose data rotted
// on disk loads structurally fine and is then caught by the normal
// Load-time checksum verification, firing the same
// recovery_checkpoint_corrupt_total accounting as in-memory corruption.
// Only structurally unreadable files (torn by a crash without rename,
// alien content) are discarded at open — a missing checkpoint means
// restart-from-zero, which is slower but never wrong.

// ckptMagic brands checkpoint files so open can cheaply reject alien
// content in a reused directory.
var ckptMagic = []byte("GCK1")

// OpenDiskCheckpointStore opens (creating if needed) a file-backed
// checkpoint store rooted at dir. Every checkpoint file already present
// is loaded; structurally invalid files are removed. Scoped views of
// the returned store persist too — the scope prefix is part of the
// stored key, so two jobs' same-named tasks land in distinct files.
func OpenDiskCheckpointStore(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: checkpoint dir: %w", err)
	}
	s := &CheckpointStore{m: make(map[string]ckptEntry), dir: dir}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("recovery: checkpoint dir: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".ckpt" {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		key, e, err := readCheckpointFile(path)
		if err != nil {
			os.Remove(path)
			continue
		}
		s.m[key] = e
	}
	return s, nil
}

// ckptPath maps a (possibly scope-prefixed) key to its file. Keys carry
// "\x00" scope separators, so the filename is a digest, and the full key
// is stored inside the file.
func (s *CheckpointStore) ckptPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".ckpt")
}

// encodeCheckpointFile renders one entry: magic, key, seq, data, and the
// entry's checksum, all length-prefixed little-endian.
func encodeCheckpointFile(key string, e ckptEntry) []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	var u64 [8]byte
	buf.Write(ckptMagic)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
	buf.Write(u32[:])
	buf.WriteString(key)
	binary.LittleEndian.PutUint64(u64[:], uint64(e.seq))
	buf.Write(u64[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(e.data)))
	buf.Write(u32[:])
	buf.Write(e.data)
	binary.LittleEndian.PutUint64(u64[:], e.sum)
	buf.Write(u64[:])
	return buf.Bytes()
}

func readCheckpointFile(path string) (string, ckptEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", ckptEntry{}, err
	}
	p := 0
	need := func(n int) error {
		if p+n > len(data) {
			return fmt.Errorf("recovery: truncated checkpoint file %s at offset %d", path, p)
		}
		return nil
	}
	if err := need(len(ckptMagic) + 4); err != nil {
		return "", ckptEntry{}, err
	}
	if !bytes.Equal(data[:len(ckptMagic)], ckptMagic) {
		return "", ckptEntry{}, fmt.Errorf("recovery: %s is not a checkpoint file", path)
	}
	p = len(ckptMagic)
	kl := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	if err := need(kl + 12); err != nil {
		return "", ckptEntry{}, err
	}
	key := string(data[p : p+kl])
	p += kl
	seq := int(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	dl := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	if err := need(dl + 8); err != nil {
		return "", ckptEntry{}, err
	}
	d := append([]byte(nil), data[p:p+dl]...)
	p += dl
	sum := binary.LittleEndian.Uint64(data[p:])
	if p+8 != len(data) {
		return "", ckptEntry{}, fmt.Errorf("recovery: trailing bytes in checkpoint file %s", path)
	}
	return key, ckptEntry{seq: seq, data: d, sum: sum}, nil
}

// writeThrough persists one entry (best-effort: the in-memory map stays
// the running process's source of truth; a failed write costs only
// restart durability). Called with the root store's lock held.
func (r *CheckpointStore) writeThrough(key string, e ckptEntry) {
	if r.dir == "" {
		return
	}
	tmp, err := os.CreateTemp(r.dir, "ckpt-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(encodeCheckpointFile(key, e))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), r.ckptPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// removeFile drops one entry's file. Called with the root store's lock
// held.
func (r *CheckpointStore) removeFile(key string) {
	if r.dir == "" {
		return
	}
	os.Remove(r.ckptPath(key))
}
