package recovery

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestCheckpointSaveLoadDrop(t *testing.T) {
	s := NewCheckpointStore()
	if _, ok, corrupt := s.Load("t1"); ok || corrupt {
		t.Fatalf("empty store: ok=%v corrupt=%v", ok, corrupt)
	}
	data := []byte("partial fold state")
	s.Save("t1", 3, data)
	data[0] = 'X' // caller keeps ownership; the store must have copied
	ck, ok, corrupt := s.Load("t1")
	if !ok || corrupt {
		t.Fatalf("Load: ok=%v corrupt=%v", ok, corrupt)
	}
	if ck.Seq != 3 || string(ck.Data) != "partial fold state" {
		t.Fatalf("Load = %d %q", ck.Seq, ck.Data)
	}
	ck.Data[0] = 'Y' // returned copy must not alias the stored bytes
	if ck2, _, _ := s.Load("t1"); string(ck2.Data) != "partial fold state" {
		t.Fatalf("stored bytes aliased: %q", ck2.Data)
	}
	s.Save("t1", 5, []byte("later state"))
	if ck, _, _ := s.Load("t1"); ck.Seq != 5 {
		t.Fatalf("overwrite kept seq %d", ck.Seq)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Drop("t1")
	if s.Len() != 0 {
		t.Fatalf("Len after Drop = %d", s.Len())
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	s := NewCheckpointStore()
	s.Save("t1", 2, []byte("state"))
	if !s.Corrupt("t1") {
		t.Fatal("Corrupt found no checkpoint")
	}
	ck, ok, corrupt := s.Load("t1")
	if ok || !corrupt {
		t.Fatalf("corrupted Load: ok=%v corrupt=%v ck=%+v", ok, corrupt, ck)
	}
	// The corrupt entry must have been discarded, not resurface later.
	if _, ok, corrupt := s.Load("t1"); ok || corrupt {
		t.Fatalf("second Load after corruption: ok=%v corrupt=%v", ok, corrupt)
	}
	if s.Corrupt("missing") {
		t.Fatal("Corrupt invented a checkpoint")
	}
}

func TestNilCheckpointStoreIsInert(t *testing.T) {
	var s *CheckpointStore
	s.Save("t", 1, []byte("x"))
	if _, ok, corrupt := s.Load("t"); ok || corrupt {
		t.Fatal("nil store returned a checkpoint")
	}
	s.Drop("t")
	if s.Corrupt("t") || s.Len() != 0 {
		t.Fatal("nil store not inert")
	}
}

func TestLineageRebuild(t *testing.T) {
	l := NewLineage()
	if err := l.Rebuild("ex", 0); !errors.Is(err, ErrNoLineage) {
		t.Fatalf("unregistered Rebuild: %v", err)
	}
	calls := 0
	l.Register("ex", 0, func() error { calls++; return nil })
	if err := l.Rebuild("ex", 0); err != nil || calls != 1 {
		t.Fatalf("Rebuild: err=%v calls=%d", err, calls)
	}
	// Idempotent: a second rebuild replays the closure.
	if err := l.Rebuild("ex", 0); err != nil || calls != 2 {
		t.Fatalf("second Rebuild: err=%v calls=%d", err, calls)
	}
	if err := l.Rebuild("ex", 1); !errors.Is(err, ErrNoLineage) {
		t.Fatalf("wrong map task: %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	var nilL *Lineage
	nilL.Register("ex", 0, func() error { return nil })
	if err := nilL.Rebuild("ex", 0); !errors.Is(err, ErrNoLineage) {
		t.Fatalf("nil lineage: %v", err)
	}
}

func TestLineageRebuildSerializesPerProducer(t *testing.T) {
	l := NewLineage()
	inFlight := 0
	var mu sync.Mutex
	l.Register("ex", 0, func() error {
		mu.Lock()
		inFlight++
		if inFlight != 1 {
			mu.Unlock()
			t.Error("concurrent rebuilds of one producer")
			return nil
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
		return nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Rebuild("ex", 0); err != nil {
				t.Errorf("Rebuild: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestWatchdogPassesResultsThrough(t *testing.T) {
	w := Watchdog{Deadline: time.Second}
	v, err := w.Guard("s", func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("Guard = %v, %v", v, err)
	}
	want := errors.New("boom")
	if _, err := w.Guard("s", func() (any, error) { return nil, want }); !errors.Is(err, want) {
		t.Fatalf("Guard error = %v", err)
	}
	// Disabled watchdog runs inline.
	w0 := Watchdog{}
	if v, err := w0.Guard("s", func() (any, error) { return "ok", nil }); err != nil || v.(string) != "ok" {
		t.Fatalf("disabled Guard = %v, %v", v, err)
	}
}

func TestWatchdogTimesOutHungStage(t *testing.T) {
	tr := trace.New()
	w := Watchdog{Deadline: 5 * time.Millisecond, Trace: tr}
	release := make(chan struct{})
	defer close(release)
	_, err := w.Guard("hung", func() (any, error) {
		<-release
		return nil, nil
	})
	if !errors.Is(err, ErrStageTimeout) {
		t.Fatalf("Guard = %v, want stage timeout", err)
	}
	var ste *StageTimeoutError
	if !errors.As(err, &ste) || ste.Stage != "hung" {
		t.Fatalf("timeout error = %#v", err)
	}
	if got := tr.Registry().Counter("recovery_watchdog_timeouts_total").Value(); got != 1 {
		t.Fatalf("watchdog counter = %d", got)
	}
}
