package recovery

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestCheckpointSaveLoadDrop(t *testing.T) {
	s := NewCheckpointStore()
	if _, ok, corrupt := s.Load("t1"); ok || corrupt {
		t.Fatalf("empty store: ok=%v corrupt=%v", ok, corrupt)
	}
	data := []byte("partial fold state")
	s.Save("t1", 3, data)
	data[0] = 'X' // caller keeps ownership; the store must have copied
	ck, ok, corrupt := s.Load("t1")
	if !ok || corrupt {
		t.Fatalf("Load: ok=%v corrupt=%v", ok, corrupt)
	}
	if ck.Seq != 3 || string(ck.Data) != "partial fold state" {
		t.Fatalf("Load = %d %q", ck.Seq, ck.Data)
	}
	ck.Data[0] = 'Y' // returned copy must not alias the stored bytes
	if ck2, _, _ := s.Load("t1"); string(ck2.Data) != "partial fold state" {
		t.Fatalf("stored bytes aliased: %q", ck2.Data)
	}
	s.Save("t1", 5, []byte("later state"))
	if ck, _, _ := s.Load("t1"); ck.Seq != 5 {
		t.Fatalf("overwrite kept seq %d", ck.Seq)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Drop("t1")
	if s.Len() != 0 {
		t.Fatalf("Len after Drop = %d", s.Len())
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	s := NewCheckpointStore()
	s.Save("t1", 2, []byte("state"))
	if !s.Corrupt("t1") {
		t.Fatal("Corrupt found no checkpoint")
	}
	ck, ok, corrupt := s.Load("t1")
	if ok || !corrupt {
		t.Fatalf("corrupted Load: ok=%v corrupt=%v ck=%+v", ok, corrupt, ck)
	}
	// The corrupt entry must have been discarded, not resurface later.
	if _, ok, corrupt := s.Load("t1"); ok || corrupt {
		t.Fatalf("second Load after corruption: ok=%v corrupt=%v", ok, corrupt)
	}
	if s.Corrupt("missing") {
		t.Fatal("Corrupt invented a checkpoint")
	}
}

func TestNilCheckpointStoreIsInert(t *testing.T) {
	var s *CheckpointStore
	s.Save("t", 1, []byte("x"))
	if _, ok, corrupt := s.Load("t"); ok || corrupt {
		t.Fatal("nil store returned a checkpoint")
	}
	s.Drop("t")
	if s.Corrupt("t") || s.Len() != 0 {
		t.Fatal("nil store not inert")
	}
}

func TestLineageRebuild(t *testing.T) {
	l := NewLineage()
	if err := l.Rebuild("ex", 0); !errors.Is(err, ErrNoLineage) {
		t.Fatalf("unregistered Rebuild: %v", err)
	}
	calls := 0
	l.Register("ex", 0, func() error { calls++; return nil })
	if err := l.Rebuild("ex", 0); err != nil || calls != 1 {
		t.Fatalf("Rebuild: err=%v calls=%d", err, calls)
	}
	// Idempotent: a second rebuild replays the closure.
	if err := l.Rebuild("ex", 0); err != nil || calls != 2 {
		t.Fatalf("second Rebuild: err=%v calls=%d", err, calls)
	}
	if err := l.Rebuild("ex", 1); !errors.Is(err, ErrNoLineage) {
		t.Fatalf("wrong map task: %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	var nilL *Lineage
	nilL.Register("ex", 0, func() error { return nil })
	if err := nilL.Rebuild("ex", 0); !errors.Is(err, ErrNoLineage) {
		t.Fatalf("nil lineage: %v", err)
	}
}

func TestLineageRebuildSerializesPerProducer(t *testing.T) {
	l := NewLineage()
	inFlight := 0
	var mu sync.Mutex
	l.Register("ex", 0, func() error {
		mu.Lock()
		inFlight++
		if inFlight != 1 {
			mu.Unlock()
			t.Error("concurrent rebuilds of one producer")
			return nil
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
		return nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Rebuild("ex", 0); err != nil {
				t.Errorf("Rebuild: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestWatchdogPassesResultsThrough(t *testing.T) {
	w := Watchdog{Deadline: time.Second}
	v, err := w.Guard("s", func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("Guard = %v, %v", v, err)
	}
	want := errors.New("boom")
	if _, err := w.Guard("s", func() (any, error) { return nil, want }); !errors.Is(err, want) {
		t.Fatalf("Guard error = %v", err)
	}
	// Disabled watchdog runs inline.
	w0 := Watchdog{}
	if v, err := w0.Guard("s", func() (any, error) { return "ok", nil }); err != nil || v.(string) != "ok" {
		t.Fatalf("disabled Guard = %v, %v", v, err)
	}
}

func TestWatchdogTimesOutHungStage(t *testing.T) {
	tr := trace.New()
	w := Watchdog{Deadline: 5 * time.Millisecond, Trace: tr}
	release := make(chan struct{})
	defer close(release)
	_, err := w.Guard("hung", func() (any, error) {
		<-release
		return nil, nil
	})
	if !errors.Is(err, ErrStageTimeout) {
		t.Fatalf("Guard = %v, want stage timeout", err)
	}
	var ste *StageTimeoutError
	if !errors.As(err, &ste) || ste.Stage != "hung" {
		t.Fatalf("timeout error = %#v", err)
	}
	if got := tr.Registry().Counter("recovery_watchdog_timeouts_total").Value(); got != 1 {
		t.Fatalf("watchdog counter = %d", got)
	}
}

// Two concurrent jobs registering producers for the same-named exchange
// used to collide on lineageKey(exchange, mapTask): the later Register
// silently replaced the earlier job's rebuild closure, so a fetch-miss
// in job A could replay job B's producer. Job-scoped views must keep
// the registrations separate.
func TestLineageScopeIsolatesSameNamedExchanges(t *testing.T) {
	root := NewLineage()
	jobA := root.Scope("jobA")
	jobB := root.Scope("jobB")

	var rebuilt []string
	jobA.Register("shuffle-0", 0, func() error { rebuilt = append(rebuilt, "A"); return nil })
	jobB.Register("shuffle-0", 0, func() error { rebuilt = append(rebuilt, "B"); return nil })

	if err := jobA.Rebuild("shuffle-0", 0); err != nil {
		t.Fatalf("jobA Rebuild: %v", err)
	}
	if err := jobB.Rebuild("shuffle-0", 0); err != nil {
		t.Fatalf("jobB Rebuild: %v", err)
	}
	if len(rebuilt) != 2 || rebuilt[0] != "A" || rebuilt[1] != "B" {
		t.Fatalf("rebuilds = %v, want [A B] (scoped closures must not alias)", rebuilt)
	}
	// A scope only sees its own registrations.
	if err := jobA.Rebuild("shuffle-0", 1); !errors.Is(err, ErrNoLineage) {
		t.Fatalf("jobA unregistered map task: %v", err)
	}
	if n := root.Scope("jobC").Len(); n != 0 {
		t.Fatalf("fresh scope Len = %d", n)
	}
	if jobA.Len() != 1 || jobB.Len() != 1 {
		t.Fatalf("scoped Len = %d/%d, want 1/1", jobA.Len(), jobB.Len())
	}
	var nilL *Lineage
	if nilL.Scope("job") != nil {
		t.Fatal("nil lineage Scope must stay nil")
	}
}

// Checkpoint keys are task names like "reduce-3", which repeat across
// every job; job-scoped views must not let one job resume from another
// job's fold state.
func TestCheckpointScopeIsolatesTaskKeys(t *testing.T) {
	root := NewCheckpointStore()
	jobA := root.Scope("jobA")
	jobB := root.Scope("jobB")

	jobA.Save("reduce-3", 1, []byte("A state"))
	jobB.Save("reduce-3", 7, []byte("B state"))

	ck, ok, corrupt := jobA.Load("reduce-3")
	if !ok || corrupt || ck.Seq != 1 || string(ck.Data) != "A state" {
		t.Fatalf("jobA Load = %+v ok=%v corrupt=%v", ck, ok, corrupt)
	}
	if ck, _, _ := jobB.Load("reduce-3"); ck.Seq != 7 || string(ck.Data) != "B state" {
		t.Fatalf("jobB Load = %+v", ck)
	}
	if jobA.Len() != 1 || jobB.Len() != 1 || root.Len() != 2 {
		t.Fatalf("Len scoped=%d/%d root=%d", jobA.Len(), jobB.Len(), root.Len())
	}
	// Corruption and Drop stay inside their scope.
	if !jobA.Corrupt("reduce-3") {
		t.Fatal("jobA Corrupt found nothing")
	}
	if _, ok, _ := jobB.Load("reduce-3"); !ok {
		t.Fatal("jobA corruption leaked into jobB")
	}
	// Loading the corrupted entry discards it (the recovery layer falls
	// back to from-scratch execution); the scoped load must discard only
	// jobA's entry.
	if _, ok, corrupt := jobA.Load("reduce-3"); ok || !corrupt {
		t.Fatalf("jobA corrupted Load: ok=%v corrupt=%v", ok, corrupt)
	}
	jobB.Drop("reduce-3")
	if root.Len() != 0 {
		t.Fatalf("root Len after scoped drops = %d", root.Len())
	}
	var nilS *CheckpointStore
	if nilS.Scope("job") != nil {
		t.Fatal("nil store Scope must stay nil")
	}
}
