package recovery

import (
	"os"
	"path/filepath"
	"testing"
)

// A restarted process reopening the same directory sees every
// checkpoint its predecessor saved — including scoped ones — and Drop
// removes the file so a dropped task stays dropped across restarts.
func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("task-a", 3, []byte("alpha"))
	s.Scope("job-1").Save("task-a", 7, []byte("scoped"))
	s.Save("task-b", 1, []byte("beta"))
	s.Drop("task-b")

	r, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck, ok, corrupt := r.Load("task-a"); !ok || corrupt || ck.Seq != 3 || string(ck.Data) != "alpha" {
		t.Fatalf("task-a after reopen: %+v ok=%v corrupt=%v", ck, ok, corrupt)
	}
	if ck, ok, _ := r.Scope("job-1").Load("task-a"); !ok || ck.Seq != 7 || string(ck.Data) != "scoped" {
		t.Fatalf("scoped task-a after reopen: %+v ok=%v", ck, ok)
	}
	if _, ok, _ := r.Load("task-b"); ok {
		t.Fatal("dropped task-b survived reopen")
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("reopened store holds %d entries, want 2", got)
	}
}

// On-disk corruption is detected by the normal Load checksum path after
// reopen: the entry is rejected, discarded (in memory and on disk), and
// the caller restarts from zero.
func TestDiskStoreDetectsRotAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("fold", 5, []byte("checkpoint-bytes"))
	if !s.Corrupt("fold") {
		t.Fatal("Corrupt found no entry")
	}

	r, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, corrupt := r.Load("fold"); ok || !corrupt {
		t.Fatalf("rotted checkpoint: ok=%v corrupt=%v, want detection", ok, corrupt)
	}
	// Detection discards the file too: a third open sees nothing.
	r2, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, corrupt := r2.Load("fold"); ok || corrupt {
		t.Fatalf("discarded checkpoint came back: ok=%v corrupt=%v", ok, corrupt)
	}
}

// Structurally invalid files — a torn temp write that never renamed,
// truncated content, alien bytes — are discarded at open instead of
// poisoning the store.
func TestDiskStoreDiscardsUnreadableFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("good", 1, []byte("fine"))
	if err := os.WriteFile(filepath.Join(dir, "alien.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate a real entry below its declared lengths.
	full := encodeCheckpointFile("torn", ckptEntry{seq: 2, data: []byte("abcdef"), sum: 9})
	if err := os.WriteFile(filepath.Join(dir, "torn.ckpt"), full[:len(full)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("reopened store holds %d entries, want only the good one", got)
	}
	if _, ok, _ := r.Load("good"); !ok {
		t.Fatal("good entry lost")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("invalid files not cleaned up: %d left", len(ents))
	}
}

// The write path is temp-file + rename: no partially written .ckpt file
// is ever observable under the final name, and re-saving replaces the
// previous entry in place.
func TestDiskStoreSaveReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 10; seq++ {
		s.Save("fold", seq, []byte{byte(seq)})
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("10 saves of one task left %d files, want 1", len(ents))
	}
	r, err := OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck, ok, _ := r.Load("fold"); !ok || ck.Seq != 10 {
		t.Fatalf("latest save not the survivor: %+v ok=%v", ck, ok)
	}
}
