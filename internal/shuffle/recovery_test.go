package shuffle_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/recovery"
	. "repro/internal/shuffle"
	"repro/internal/trace"
)

// A replicated block survives the loss of one copy: the fetch path fails
// over to the surviving replica and the output is byte-identical.
func TestReplicaFailoverSurvivesReplicaLoss(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 2, 20, 5)
	ref, _ := runExchange(t, c, Config{Partitions: 2}, nil, parts)

	tr := trace.New()
	store := NewStore()
	cfg := Config{Partitions: 2, Replicas: 2, Trace: tr, SpillDir: t.TempDir()}
	ex, err := NewExchange(store, cfg, "test", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		w := ex.Writer(i)
		if err := w.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < 2; m++ {
		for r := 0; r < 2; r++ {
			store.Drop("test", m, r, 1)
		}
	}
	blocks, err := ex.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	for r := range blocks {
		if !bytes.Equal(blocks[r], ref[r]) {
			t.Errorf("reducer %d diverged after replica loss", r)
		}
	}
}

// A first replica that keeps failing its fetches is abandoned after the
// retry budget and the next replica takes over — the failover counter
// records it.
func TestReplicaFailoverOnExhaustedRetries(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 12, 4)
	ref, _ := runExchange(t, c, Config{Partitions: 1}, nil, parts)

	tr := trace.New()
	inj := &faults.Injector{Seed: 3, FetchFailRate: 1, FetchFails: 2}
	cfg := Config{Partitions: 1, Replicas: 2, MaxFetchRetries: 2,
		Injector: inj, Trace: tr, SpillDir: t.TempDir()}
	blocks, st := runExchange(t, c, cfg, nil, parts)
	if !bytes.Equal(blocks[0], ref[0]) {
		t.Error("failover output diverged")
	}
	if st.FetchRetries < 1 {
		t.Errorf("fetch retries = %d, want >= 1", st.FetchRetries)
	}
	if n := tr.Registry().Counter("recovery_replica_failover_total").Value(); n < 1 {
		t.Errorf("replica failovers = %d, want >= 1", n)
	}
}

// The tentpole end state: every replica of a block is gone, the lineage
// re-runs just the producing map task, and the rebuilt fetch is
// byte-identical — with recovery_reexec_total recording the rescue.
func TestLineageRebuildRestoresFullyLostBlocks(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 2, 20, 5)
	ref, _ := runExchange(t, c, Config{Partitions: 2}, nil, parts)

	tr := trace.New()
	store := NewStore()
	lin := recovery.NewLineage()
	cfg := Config{Partitions: 2, Lineage: lin, Trace: tr, SpillDir: t.TempDir()}
	ex, err := NewExchange(store, cfg, "test", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		w := ex.Writer(i)
		if err := w.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		i, p := i, p
		lin.Register("test", i, func() error {
			rw := ex.RecoveryWriter(i)
			if err := rw.Add(p); err != nil {
				return err
			}
			return rw.Close()
		})
	}
	// Lose every replica of map task 0's blocks for both reducers.
	for r := 0; r < 2; r++ {
		if dropped := store.Drop("test", 0, r, 99); dropped == 0 {
			t.Fatalf("reducer %d of map 0 had nothing to drop", r)
		}
	}
	blocks, err := ex.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	for r := range blocks {
		if !bytes.Equal(blocks[r], ref[r]) {
			t.Errorf("reducer %d diverged after lineage rebuild", r)
		}
	}
	if n := tr.Registry().Counter("recovery_reexec_total").Value(); n < 1 {
		t.Errorf("recovery_reexec_total = %d, want >= 1", n)
	}
}

// Without lineage, a fully lost block still fails the fetch loudly.
func TestFullReplicaLossWithoutLineageFails(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 8, 3)
	store := NewStore()
	ex, err := NewExchange(store, Config{Partitions: 1}, "test", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := ex.Writer(0)
	if err := w.Add(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	store.Drop("test", 0, 0, 99)
	if _, err := ex.FetchAll(); err == nil {
		t.Fatal("fetch of a fully lost block succeeded without lineage")
	}
}

// The injected replica-loss knob drives the same path end to end: a
// replicated exchange under LoseBlockReplicas completes byte-identically
// via failover alone (no breaker, no lineage).
func TestInjectedReplicaLossRecoversViaFailover(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 2, 16, 7)
	ref, _ := runExchange(t, c, Config{Partitions: 2}, nil, parts)

	inj := &faults.Injector{Seed: 11, ReplicaLossRate: 1, ReplicaLosses: 1}
	cfg := Config{Partitions: 2, Replicas: 2, Injector: inj}
	blocks, _ := runExchange(t, c, cfg, nil, parts)
	for r := range blocks {
		if !bytes.Equal(blocks[r], ref[r]) {
			t.Errorf("reducer %d diverged under injected replica loss", r)
		}
	}
}

// Satellite: the k-way merge under a zero-headroom budget — every single
// record spills as its own run, including the degenerate one-record
// exchange — still reproduces the in-memory reference bytes.
func TestTinyBudgetMergeDegenerateRuns(t *testing.T) {
	c := pairCompiled(t)

	t.Run("one-record", func(t *testing.T) {
		parts := encodeParts(t, c, 1, 1, 1)
		ref, _ := runExchange(t, c, Config{Partitions: 2}, nil, parts)
		got, st := runExchange(t, c, Config{Partitions: 2, MemoryBudget: 1}, nil, parts)
		if st.Spills != 1 {
			t.Errorf("one-record run spilled %d times, want 1", st.Spills)
		}
		for r := range got {
			if !bytes.Equal(got[r], ref[r]) {
				t.Errorf("reducer %d diverged", r)
			}
		}
	})

	t.Run("run-per-record", func(t *testing.T) {
		parts := encodeParts(t, c, 2, 15, 4)
		ref, _ := runExchange(t, c, Config{Partitions: 3}, nil, parts)
		got, st := runExchange(t, c, Config{Partitions: 3, MemoryBudget: 1}, nil, parts)
		if st.Spills != 30 {
			t.Errorf("spilled %d runs, want one per record (30)", st.Spills)
		}
		for r := range got {
			if !bytes.Equal(got[r], ref[r]) {
				t.Errorf("reducer %d diverged with one-record runs", r)
			}
		}
	})

	t.Run("run-per-record-compressed", func(t *testing.T) {
		parts := encodeParts(t, c, 2, 15, 4)
		ref, _ := runExchange(t, c, Config{Partitions: 3}, nil, parts)
		got, _ := runExchange(t, c, Config{Partitions: 3, MemoryBudget: 1, Compression: LZ4}, nil, parts)
		for r := range got {
			if !bytes.Equal(got[r], ref[r]) {
				t.Errorf("reducer %d diverged with compressed one-record runs", r)
			}
		}
	})
}

// Satellite: a Close that fails mid-merge must not leak its spill run
// files.
func TestCloseRemovesRunsOnMergeError(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 10, 3)
	dir := t.TempDir()
	cfg := Config{Partitions: 2, MemoryBudget: 64, SpillDir: dir}
	ex, err := NewExchange(nil, cfg, "test", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := ex.Writer(0)
	if err := w.Add(parts[0]); err != nil {
		t.Fatal(err)
	}
	runs, err := filepath.Glob(filepath.Join(dir, "shuffle-*.run"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no spill runs on disk (err=%v)", err)
	}
	// Truncate one run so the merge's readRun fails.
	if err := os.Truncate(runs[0], 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close over a truncated run succeeded")
	}
	left, _ := filepath.Glob(filepath.Join(dir, "shuffle-*.run"))
	if len(left) != 0 {
		t.Errorf("%d spill runs leaked after failed Close: %v", len(left), left)
	}
}
