package shuffle

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/serde"
	"repro/internal/trace"
)

// FetchAll runs the reduce-side fetch: for every reducer it pulls that
// reducer's block from each registered map output over the simulated
// transport (bounded concurrency, retry-with-backoff over injected
// fetch faults, circuit-breaker bypass for persistently failing
// sources), decompresses, and concatenates the raw record bytes in
// ascending map-task order. In Baseline mode every assembled record
// then pays a real serde decode — the reduce-side deserialization point;
// in Gerenuk mode the assembled native bytes are returned untouched for
// zero-copy adoption into the task arena.
//
// The returned slice is indexed by reducer; a reducer nothing hashed to
// gets an empty buffer. The exchange's blocks are released from the
// store afterwards, and the exchange span closes: FetchAll is terminal.
func (ex *Exchange) FetchAll() ([][]byte, error) {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return nil, fmt.Errorf("shuffle: exchange %s fetched twice", ex.name)
	}
	ex.closed = true
	ex.mu.Unlock()
	defer ex.store.release(ex.name)

	maps := ex.mapIDs()
	out := make([][]byte, ex.cfg.Partitions)
	var err error
	for r := 0; r < ex.cfg.Partitions; r++ {
		out[r], err = ex.fetchReducer(r, maps)
		if err != nil {
			ex.span.End(trace.Str("error", err.Error()))
			return nil, err
		}
	}
	st := ex.Stats()
	ex.span.End(trace.I64("bytes_written", st.BytesWritten),
		trace.I64("bytes_fetched", st.BytesFetched),
		trace.I64("spills", st.Spills), trace.I64("fetch_retries", st.FetchRetries))
	return out, nil
}

// fetchReducer assembles one reducer's input. Blocks fetch concurrently
// under the configured semaphore; assembly order is ascending map task,
// so the result is deterministic regardless of fetch completion order.
func (ex *Exchange) fetchReducer(reducer int, maps []int) ([]byte, error) {
	t0 := time.Now()
	sp := ex.span.Child("shuffle", "fetch", trace.I64("reducer", int64(reducer)))
	var plan *faults.Plan
	if ex.cfg.Injector != nil {
		plan = ex.cfg.Injector.ForTask(fmt.Sprintf("%s/r%d", ex.name, reducer))
	}
	if k, ok := plan.TakeReplicaLoss(); ok {
		// Injected replica loss: the dying "node" takes k replicas of
		// this reducer's first live block with it.
		for _, mapTask := range maps {
			if dropped := ex.store.Drop(ex.name, mapTask, reducer, k); dropped > 0 {
				sp.Instant("recovery", "replica-loss", trace.I64("map_task", int64(mapTask)),
					trace.I64("replicas_lost", int64(dropped)))
				break
			}
		}
	}

	type fetched struct {
		raw []byte
		st  Stats
		err error
	}
	results := make([]fetched, len(maps))
	sem := make(chan struct{}, ex.cfg.FetchConcurrency)
	var wg sync.WaitGroup
	for i, mapTask := range maps {
		id := blockID{ex.name, mapTask, reducer}
		if !ex.store.has(id) {
			continue // this map task produced nothing for this reducer
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id blockID) {
			defer wg.Done()
			defer func() { <-sem }()
			raw, st, err := ex.fetchBlock(sp, id, plan)
			results[i] = fetched{raw: raw, st: st, err: err}
		}(i, id)
	}
	wg.Wait()

	var st Stats
	var buf []byte
	var records int64
	for _, f := range results {
		if f.err != nil {
			return nil, f.err
		}
		st.add(f.st)
		buf = append(buf, f.raw...)
	}
	if ex.codec != nil && len(buf) > 0 {
		// Baseline reduce-side deserialization: one real decode per record.
		td := time.Now()
		decodes := ex.reg().Counter("shuffle_read_decodes_total")
		for off := 0; off < len(buf); {
			if _, _, err := ex.codec.Decode(ex.class, buf, off); err != nil {
				return nil, fmt.Errorf("shuffle: reducer %d: deserialize: %w", reducer, err)
			}
			sp.Instant("shuffle", "shuffle-record-decode", trace.I64("off", int64(off)))
			decodes.Add(1)
			records++
			off += serde.RecordSize(buf, off)
		}
		st.DeserTime = time.Since(td)
	}
	// ReadTime is the fetch/assembly wall excluding the serde cost, which
	// Stats.AddTo reports under Deser instead.
	st.ReadTime = time.Since(t0) - st.DeserTime
	ex.reg().Counter("shuffle_records_fetched_total").Add(st.Records)
	ex.addStats(st)
	sp.End(trace.I64("bytes", int64(len(buf))), trace.I64("blocks", int64(len(maps))),
		trace.I64("decoded_records", records))
	return buf, nil
}

// fetchBlock pulls one block, failing over replica by replica and — when
// every replica is lost or exhausted — re-executing the producing map
// task from lineage and fetching the rebuilt block. Lineage is the last
// line of defense: it is tried exactly once per block.
func (ex *Exchange) fetchBlock(parent *trace.Span, id blockID, plan *faults.Plan) ([]byte, Stats, error) {
	raw, st, err := ex.fetchReplicas(parent, id, plan, 0)
	if err == nil || ex.cfg.Lineage == nil {
		return raw, st, err
	}
	rb := parent.Child("recovery", "lineage-reexec",
		trace.I64("map_task", int64(id.mapTask)), trace.Str("cause", err.Error()))
	rerr := ex.cfg.Lineage.Rebuild(ex.name, id.mapTask)
	rb.End()
	if rerr != nil {
		return nil, st, fmt.Errorf("%w (lineage rebuild: %v)", err, rerr)
	}
	ex.reg().Counter("recovery_reexec_total").Add(1)
	raw, st2, err2 := ex.fetchReplicas(parent, id, plan, st.FetchRetries)
	st.add(st2)
	return raw, st, err2
}

// fetchReplicas walks the block's live replicas in slot order, fetching
// each through the simulated transport until one succeeds. prior is the
// attempt count already consumed for this block (so retry accounting
// stays "attempts beyond the block's first" across a lineage rebuild).
func (ex *Exchange) fetchReplicas(parent *trace.Span, id blockID, plan *faults.Plan, prior int64) ([]byte, Stats, error) {
	var st Stats
	reps, ok := ex.store.replicas(id)
	if !ok {
		return nil, st, fmt.Errorf("shuffle: block %s/map-%d/r%d vanished", id.exchange, id.mapTask, id.reducer)
	}
	src := fmt.Sprintf("%s/map-%d", id.exchange, id.mapTask)

	live := 0
	attempts := prior
	var lastErr error
	for ri, b := range reps {
		if b == nil {
			continue // lost replica
		}
		if live++; live > 1 {
			ex.reg().Counter("recovery_replica_failover_total").Add(1)
			parent.Instant("recovery", "replica-failover", trace.Str("source", src),
				trace.I64("replica", int64(ri)))
		}
		raw, rst, err := ex.fetchReplica(parent, id, ri, b, plan, &attempts)
		st.add(rst)
		if err == nil {
			return raw, st, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shuffle: all %d replicas of %s/r%d lost", len(reps), src, id.reducer)
	}
	return nil, st, lastErr
}

// fetchReplica pulls one replica through the simulated transport,
// retrying injected fetch faults with (optionally jittered) exponential
// backoff under the per-replica deadline. A source whose breaker has
// tripped open bypasses the fault-prone transport entirely — the model
// of falling back to a local copy — paying neither latency nor fault
// rolls.
func (ex *Exchange) fetchReplica(parent *trace.Span, id blockID, replica int, b *Block,
	plan *faults.Plan, attempts *int64) ([]byte, Stats, error) {
	var st Stats
	src := fmt.Sprintf("%s/map-%d", id.exchange, id.mapTask)
	latHist := ex.reg().Histogram("shuffle_fetch_latency_ns", trace.LatencyBuckets()...)
	start := time.Now()

	var lastErr error
	for attempt := 1; attempt <= ex.cfg.MaxFetchRetries; attempt++ {
		if *attempts++; *attempts > 1 {
			st.FetchRetries++
			ex.reg().Counter("shuffle_fetch_retries_total").Add(1)
			time.Sleep(ex.cfg.Jitter.Delay(ex.cfg.FetchBackoff, attempt))
		}
		if d := ex.cfg.ReplicaDeadline; d > 0 && time.Since(start) >= d {
			return nil, st, fmt.Errorf("shuffle: replica %d of %s/r%d exceeded deadline %v (attempt %d)",
				replica, src, id.reducer, d, attempt)
		}
		t0 := time.Now()
		if ex.cfg.Breaker != nil && !ex.cfg.Breaker.Allow(src) {
			parent.Instant("shuffle", "fetch-bypass", trace.Str("source", src))
			ex.reg().Counter("shuffle_fetch_bypass_total").Add(1)
			latHist.Observe(float64(time.Since(t0).Nanoseconds()))
			lastErr = nil
			break
		}
		if d := ex.cfg.Transport.delay(len(b.Payload)); d > 0 {
			time.Sleep(d)
		}
		if plan != nil && plan.TakeFetchAttempt() {
			lastErr = fmt.Errorf("shuffle: injected fetch failure from %s (attempt %d)", src, attempt)
			parent.Instant("shuffle", "fetch-fault", trace.Str("source", src),
				trace.I64("attempt", int64(attempt)))
			if ex.cfg.Breaker != nil {
				ex.cfg.Breaker.Record(src, true)
			}
			continue
		}
		if ex.cfg.Breaker != nil {
			ex.cfg.Breaker.Record(src, false)
		}
		latHist.Observe(float64(time.Since(t0).Nanoseconds()))
		lastErr = nil
		break
	}
	if lastErr != nil {
		return nil, st, fmt.Errorf("shuffle: fetch of %s/r%d failed after %d attempts: %w",
			src, id.reducer, ex.cfg.MaxFetchRetries, lastErr)
	}

	raw := b.Payload
	if b.Codec != None {
		ds := parent.Child("shuffle", "decompress", trace.Str("codec", b.Codec.String()),
			trace.I64("wire_bytes", int64(len(b.Payload))), trace.I64("raw_bytes", int64(b.RawLen)))
		var err error
		raw, err = decompressBlock(b.Codec, b.Payload, b.RawLen)
		ds.End()
		if err != nil {
			return nil, st, err
		}
	} else if len(raw) != b.RawLen {
		return nil, st, fmt.Errorf("shuffle: raw block is %d bytes, header says %d", len(raw), b.RawLen)
	}
	st.WireBytesFetched += int64(len(b.Payload))
	st.BytesFetched += int64(len(raw))
	st.Records += int64(b.Records)
	ex.reg().Counter("shuffle_blocks_fetched_total").Add(1)
	ex.reg().Counter("shuffle_bytes_fetched_total").Add(int64(len(raw)))
	return raw, st, nil
}
