// Package shuffle is the exchange subsystem both drivers (spark, hadoop)
// route their wide operations through: a map-side Writer that hash-
// partitions wire records into per-reducer blocks under a bounded memory
// budget — spilling sorted runs to disk and merging them on close — a
// Store registering every sealed block, and a reduce-side fetch path
// that streams blocks through a simulated transport with bounded
// concurrency, optional block compression, and retry-with-backoff over
// injected fetch faults.
//
// The exchange is where the paper's S/D elimination becomes measurable
// per phase. In Baseline mode the exchange pays real serde per record:
// the writer decodes and re-encodes every record crossing it (the
// map-side serialization point) and the fetch path decodes every record
// again (the reduce-side deserialization point) — the codec is canonical,
// so the bytes are unchanged and only the cost is modeled. In Gerenuk
// mode records cross the exchange as inlined native bytes untouched, and
// the fetched block is adopted into the reduce task's arena zero-copy
// (engine.Input.Owned → arena.AdoptBytesOwned): no decode spans, no
// transfer copy.
//
// Determinism contract: for a fixed input, every storage configuration —
// unbounded in-memory, any spill budget, any compression — produces
// byte-identical per-reducer blocks. Writers order each reducer's records
// by (canonical key bytes, arrival sequence); the in-memory path sorts
// once at close, the spill path writes runs already in that order and
// k-way merges them, and both orders are total, so they agree. The
// gerenukbench shuffle pass pins this across every app in both modes.
package shuffle

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dsa"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/serde"
	"repro/internal/trace"
)

// Transport simulates the network between map outputs and reduce
// fetches. The zero value is an instantaneous local exchange.
type Transport struct {
	// Latency is the fixed per-block fetch latency (connection setup,
	// request round trip).
	Latency time.Duration
	// BytesPerSec bounds the simulated bandwidth; the wire payload
	// (post-compression) is what crosses it. 0 means unbounded.
	BytesPerSec int64
}

// delay returns the simulated transfer time for a wire payload.
func (t Transport) delay(wireBytes int) time.Duration {
	d := t.Latency
	if t.BytesPerSec > 0 {
		d += time.Duration(int64(wireBytes) * int64(time.Second) / t.BytesPerSec)
	}
	return d
}

// Config configures one exchange. The zero value is an unbounded
// in-memory exchange: no spilling, no compression, no transport delay,
// no fault injection.
type Config struct {
	// Partitions is the reducer count (filled by the driver).
	Partitions int
	// MemoryBudget bounds each writer's buffered bytes; once exceeded the
	// buffered entries spill to disk as one sorted run. 0 = unbounded.
	MemoryBudget int64
	// SpillDir is where spill runs are written (default os.TempDir()).
	SpillDir string
	// Compression is the per-block codec applied when a writer seals a
	// block and undone by the fetch path.
	Compression Compression
	// Transport simulates per-block fetch latency and bandwidth.
	Transport Transport
	// FetchConcurrency bounds in-flight block fetches per reducer
	// (default 4).
	FetchConcurrency int
	// MaxFetchRetries bounds attempts per block over injected fetch
	// faults (default 3; 1 disables retries).
	MaxFetchRetries int
	// FetchBackoff is the delay before a block's second fetch attempt,
	// doubling per retry via engine.BackoffDelay (default 0).
	FetchBackoff time.Duration
	// Replicas is how many copies of each sealed block the writer
	// registers (default 1). The fetch path fails over replica by
	// replica before declaring the block lost.
	Replicas int
	// ReplicaDeadline bounds the total time spent on one replica
	// (attempts plus backoff) before failing over to the next; 0 means
	// retries alone decide.
	ReplicaDeadline time.Duration
	// Lineage, when set, is the last line of defense: when every replica
	// of a block is lost or exhausted, the fetch path re-runs the
	// producing map task from its recorded lineage and fetches again.
	Lineage *recovery.Lineage
	// Jitter randomizes fetch retry backoff (full jitter); nil keeps the
	// deterministic engine.BackoffDelay schedule.
	Jitter *engine.Jitter
	// Breaker, when set, tracks per-map-output fetch health with the
	// engine's circuit-breaker semantics: a source whose fetches keep
	// failing trips open and subsequent fetches bypass the fault-prone
	// transport path (modeling a fallback to the replicated/local copy)
	// instead of burning retries.
	Breaker *engine.Breaker
	// Injector, when set, derives a deterministic fetch fault plan per
	// reducer (faults.Plan.FetchFailures).
	Injector *faults.Injector
	// Trace receives shuffle-write/spill/merge/fetch/decompress spans and
	// the shuffle metrics (byte counters, fetch-latency histogram).
	Trace *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.FetchConcurrency <= 0 {
		c.FetchConcurrency = 4
	}
	if c.MaxFetchRetries <= 0 {
		c.MaxFetchRetries = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c
}

// Stats is one exchange's accounting, folded into the job's cost
// breakdown by the driver.
type Stats struct {
	BytesWritten     int64 // raw record bytes written into blocks
	BytesSpilled     int64 // bytes written to spill runs on disk
	BytesFetched     int64 // raw record bytes fetched (post-decompression)
	WireBytesFetched int64 // bytes that crossed the simulated transport
	Spills           int64 // spill runs written
	FetchRetries     int64 // block fetch attempts beyond each block's first
	Records          int64 // records fetched

	WriteTime time.Duration // map-side wall time, serde excluded
	ReadTime  time.Duration // reduce-side wall time, serde excluded
	SerTime   time.Duration // baseline per-record encode cost (map side)
	DeserTime time.Duration // baseline per-record decode cost (reduce side)
}

func (s *Stats) add(o Stats) {
	s.BytesWritten += o.BytesWritten
	s.BytesSpilled += o.BytesSpilled
	s.BytesFetched += o.BytesFetched
	s.WireBytesFetched += o.WireBytesFetched
	s.Spills += o.Spills
	s.FetchRetries += o.FetchRetries
	s.Records += o.Records
	s.WriteTime += o.WriteTime
	s.ReadTime += o.ReadTime
	s.SerTime += o.SerTime
	s.DeserTime += o.DeserTime
}

// AddTo folds the exchange accounting into a job cost breakdown: shuffle
// wall time into the ShuffleWrite/ShuffleRead attribution buckets, the
// exchange serde into Ser/Deser (it is real serialization cost, the very
// cost Gerenuk eliminates), and the volume counters.
func (s Stats) AddTo(bd *metrics.Breakdown) {
	bd.ShuffleWrite += s.WriteTime
	bd.ShuffleRead += s.ReadTime
	bd.Ser += s.SerTime
	bd.Deser += s.DeserTime
	bd.Spills += s.Spills
	bd.ShuffleBytesWritten += s.BytesWritten
	bd.ShuffleBytesSpilled += s.BytesSpilled
	bd.ShuffleBytesFetched += s.BytesFetched
	bd.ShuffleFetchRetries += s.FetchRetries
}

// Block is one sealed map output for one reducer: records ordered by
// (key, arrival), possibly compressed.
type Block struct {
	Payload []byte // wire form (compressed when Codec != None)
	RawLen  int    // uncompressed length
	Records int
	Codec   Compression
}

type blockID struct {
	exchange string
	mapTask  int
	reducer  int
}

// Store is the registry of sealed shuffle blocks — the simulated shuffle
// service mappers publish to and reducers fetch from. Each block is held
// as a slice of replica slots; a nil slot is a lost replica, and an entry
// whose every slot is nil is a fully lost block only lineage can bring
// back. Safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	blocks map[blockID][]*Block
}

// NewStore returns an empty block store.
func NewStore() *Store { return &Store{blocks: make(map[blockID][]*Block)} }

func (s *Store) put(id blockID, b *Block, replicas int) {
	if replicas < 1 {
		replicas = 1
	}
	reps := make([]*Block, replicas)
	for i := range reps {
		reps[i] = b
	}
	s.mu.Lock()
	s.blocks[id] = reps
	s.mu.Unlock()
}

// replicas returns a snapshot of the block's replica slots (nil slots
// are lost replicas); the second result is false when the block was
// never registered.
func (s *Store) replicas(id blockID) ([]*Block, bool) {
	s.mu.Lock()
	reps, ok := s.blocks[id]
	out := append([]*Block(nil), reps...)
	s.mu.Unlock()
	return out, ok
}

func (s *Store) has(id blockID) bool {
	s.mu.Lock()
	_, ok := s.blocks[id]
	s.mu.Unlock()
	return ok
}

// Drop marks up to k live replicas of one block as lost and returns how
// many it actually dropped. This is the injection point for replica-loss
// chaos (and the test hook); a block whose every replica is dropped stays
// registered so the fetch path sees "lost", not "never written".
func (s *Store) Drop(exchange string, mapTask, reducer, k int) int {
	id := blockID{exchange, mapTask, reducer}
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for i, b := range s.blocks[id] {
		if dropped == k {
			break
		}
		if b != nil {
			s.blocks[id][i] = nil
			dropped++
		}
	}
	return dropped
}

// release drops every block of one exchange, bounding the store to the
// exchanges still in flight.
func (s *Store) release(exchange string) {
	s.mu.Lock()
	for id := range s.blocks {
		if id.exchange == exchange {
			delete(s.blocks, id)
		}
	}
	s.mu.Unlock()
}

// Len returns the number of registered blocks with at least one live
// replica.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, reps := range s.blocks {
		for _, b := range reps {
			if b != nil {
				n++
				break
			}
		}
	}
	return n
}

// Exchange is one shuffle: a set of map-side writers publishing into a
// store and a reduce-side fetch pass consuming them. Writers run one at
// a time (driver-side map loop); FetchAll fetches blocks concurrently.
type Exchange struct {
	store    *Store
	cfg      Config
	name     string
	layouts  *dsa.Result
	class    string
	keyField string
	// codec non-nil selects the baseline exchange: every record crossing
	// pays a decode+encode on the write side and a decode on the fetch
	// side. nil is the Gerenuk exchange: bytes cross untouched.
	codec *serde.Codec

	span *trace.Span

	mu     sync.Mutex
	maps   []int
	stats  Stats
	closed bool
}

// NewExchange validates the key field against the class layout — even an
// exchange whose every partition turns out empty must reject a missing
// key field loudly — and opens the exchange span.
func NewExchange(store *Store, cfg Config, name string, layouts *dsa.Result,
	class, keyField string, codec *serde.Codec) (*Exchange, error) {
	l := layouts.Layout(class)
	if l == nil {
		return nil, fmt.Errorf("shuffle: no layout for class %s", class)
	}
	if _, ok := l.FieldOff[keyField]; !ok {
		return nil, fmt.Errorf("shuffle: no key field %s.%s", class, keyField)
	}
	if store == nil {
		store = NewStore()
	}
	cfg = cfg.withDefaults()
	ex := &Exchange{
		store: store, cfg: cfg, name: name,
		layouts: layouts, class: class, keyField: keyField, codec: codec,
	}
	ex.span = cfg.Trace.StartSpan("shuffle", name,
		trace.Str("class", class), trace.Str("key", keyField),
		trace.I64("partitions", int64(cfg.Partitions)),
		trace.Str("compression", cfg.Compression.String()))
	return ex, nil
}

// Discard abandons the exchange without fetching: every block published
// into the store under this exchange's name is released and the exchange
// is closed (a later FetchAll or Discard errors/no-ops). This is the
// cleanup path for a streaming window that is canceled mid-flight — its
// writers Abandon, the window's exchange Discards, and the store holds
// no orphaned blocks.
func (ex *Exchange) Discard() {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return
	}
	ex.closed = true
	ex.mu.Unlock()
	ex.store.release(ex.name)
	ex.span.End(trace.Str("outcome", "discarded"))
}

// Stats returns the exchange accounting so far.
func (ex *Exchange) Stats() Stats {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.stats
}

func (ex *Exchange) addStats(o Stats) {
	ex.mu.Lock()
	ex.stats.add(o)
	ex.mu.Unlock()
}

func (ex *Exchange) addMap(mapTask int) {
	ex.mu.Lock()
	ex.maps = append(ex.maps, mapTask)
	ex.mu.Unlock()
}

// mapIDs returns the registered map task ids in ascending order, the
// deterministic assembly order of every reducer's fetch.
func (ex *Exchange) mapIDs() []int {
	ex.mu.Lock()
	ids := append([]int(nil), ex.maps...)
	ex.mu.Unlock()
	sort.Ints(ids)
	return ids
}

func (ex *Exchange) reg() *trace.Registry { return ex.cfg.Trace.Registry() }
