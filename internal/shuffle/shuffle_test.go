package shuffle_test

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	. "repro/internal/shuffle"
	"repro/internal/trace"
)

func pairCompiled(t *testing.T) *engine.Compiled {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Pair", Fields: []model.FieldDef{
		{Name: "key", Type: model.Prim(model.KindLong)},
		{Name: "value", Type: model.Prim(model.KindDouble)},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Pair"}
	return engine.Compile(prog)
}

// encodeParts builds nParts map-side partitions of n records each, keys
// cycling mod keyMod so every reducer sees multi-record key groups.
func encodeParts(t *testing.T, c *engine.Compiled, nParts, n, keyMod int) [][]byte {
	t.Helper()
	parts := make([][]byte, nParts)
	var err error
	for p := 0; p < nParts; p++ {
		for i := 0; i < n; i++ {
			parts[p], err = c.Codec.Encode("Pair",
				serde.Obj{"key": int64((p*n + i) % keyMod), "value": float64(p*n + i)}, parts[p])
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return parts
}

// runExchange pushes parts through one exchange and returns the fetched
// reducer blocks plus the accounting.
func runExchange(t *testing.T, c *engine.Compiled, cfg Config, codec *serde.Codec, parts [][]byte) ([][]byte, Stats) {
	t.Helper()
	cfg.SpillDir = t.TempDir()
	ex, err := NewExchange(nil, cfg, "test", c.Layouts, "Pair", "key", codec)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		w := ex.Writer(i)
		if err := w.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	blocks, err := ex.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	return blocks, ex.Stats()
}

func countRecords(blocks [][]byte) int {
	n := 0
	for _, b := range blocks {
		for off := 0; off < len(b); off += serde.RecordSize(b, off) {
			n++
		}
	}
	return n
}

// The determinism contract: unbounded in-memory, tiny spill budgets, and
// every compression codec must produce byte-identical reducer blocks, in
// both the baseline (serde-paying) and gerenuk (native bytes) exchanges.
func TestExchangeDeterministicAcrossConfigs(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 3, 40, 17)

	for _, mode := range []string{"gerenuk", "baseline"} {
		var codec *serde.Codec
		if mode == "baseline" {
			codec = c.Codec
		}
		ref, refStats := runExchange(t, c, Config{Partitions: 4}, codec, parts)
		if refStats.Spills != 0 {
			t.Fatalf("%s: unbounded config spilled %d times", mode, refStats.Spills)
		}
		if got := countRecords(ref); got != 120 {
			t.Fatalf("%s: fetched %d records, want 120", mode, got)
		}
		cases := []struct {
			name string
			cfg  Config
		}{
			{"spill-1b", Config{Partitions: 4, MemoryBudget: 1}},
			{"spill-256b", Config{Partitions: 4, MemoryBudget: 256}},
			{"spill-flate", Config{Partitions: 4, MemoryBudget: 128, Compression: Flate}},
			{"spill-lz4", Config{Partitions: 4, MemoryBudget: 128, Compression: LZ4}},
			{"inmem-lz4", Config{Partitions: 4, Compression: LZ4}},
		}
		for _, tc := range cases {
			blocks, st := runExchange(t, c, tc.cfg, codec, parts)
			if len(blocks) != len(ref) {
				t.Fatalf("%s/%s: %d blocks, want %d", mode, tc.name, len(blocks), len(ref))
			}
			for r := range blocks {
				if !bytes.Equal(blocks[r], ref[r]) {
					t.Errorf("%s/%s: reducer %d diverged from in-memory reference", mode, tc.name, r)
				}
			}
			if tc.cfg.MemoryBudget > 0 && st.Spills < int64(len(parts)) {
				t.Errorf("%s/%s: %d spills, want >= one per map task (%d)", mode, tc.name, st.Spills, len(parts))
			}
			if st.BytesFetched != refStats.BytesFetched {
				t.Errorf("%s/%s: fetched %d bytes, reference fetched %d", mode, tc.name, st.BytesFetched, refStats.BytesFetched)
			}
		}
	}
}

// Satellite fix: a missing key field must error at exchange creation,
// before any record is seen — even a shuffle whose partitions are all
// empty rejects it.
func TestMissingKeyFieldErrorsBeforeAnyRecord(t *testing.T) {
	c := pairCompiled(t)
	if _, err := NewExchange(nil, Config{Partitions: 2}, "t", c.Layouts, "Pair", "nope", nil); err == nil {
		t.Fatal("missing key field accepted")
	}
	if _, err := NewExchange(nil, Config{Partitions: 2}, "t", c.Layouts, "NoSuch", "key", nil); err == nil {
		t.Fatal("missing class accepted")
	}
	// A valid exchange with zero input still works and yields empty blocks.
	ex, err := NewExchange(nil, Config{Partitions: 2}, "t", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := ex.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || len(blocks[0]) != 0 || len(blocks[1]) != 0 {
		t.Fatalf("empty exchange produced non-empty blocks: %v", blocks)
	}
}

func TestFetchRetryRecoversInjectedFaults(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 2, 30, 7)
	ref, _ := runExchange(t, c, Config{Partitions: 3}, nil, parts)

	inj := &faults.Injector{Seed: 42, FetchFailRate: 1, FetchFails: 2}
	blocks, st := runExchange(t, c, Config{Partitions: 3, MaxFetchRetries: 4, Injector: inj}, nil, parts)
	for r := range blocks {
		if !bytes.Equal(blocks[r], ref[r]) {
			t.Errorf("reducer %d diverged under fetch faults", r)
		}
	}
	if st.FetchRetries < 2 {
		t.Errorf("fetch retries = %d, want >= 2 (2 injected failures per reducer)", st.FetchRetries)
	}
}

func TestFetchRetryExhaustionFailsTheJob(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 10, 3)
	inj := &faults.Injector{Seed: 7, FetchFailRate: 1, FetchFails: 100}
	cfg := Config{Partitions: 1, MaxFetchRetries: 2, Injector: inj, SpillDir: t.TempDir()}
	ex, err := NewExchange(nil, cfg, "t", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := ex.Writer(0)
	if err := w.Add(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.FetchAll(); err == nil {
		t.Fatal("exhausted retries still succeeded")
	}
}

// An open breaker routes around the fault-prone transport (the local-
// copy fallback), so even a permanently failing source completes.
func TestBreakerBypassesPersistentFetchFaults(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 20, 5)
	ref, _ := runExchange(t, c, Config{Partitions: 1}, nil, parts)

	inj := &faults.Injector{Seed: 7, FetchFailRate: 1, FetchFails: 1 << 30}
	br := engine.NewBreaker(2)
	blocks, st := runExchange(t, c,
		Config{Partitions: 1, MaxFetchRetries: 8, Injector: inj, Breaker: br}, nil, parts)
	if !bytes.Equal(blocks[0], ref[0]) {
		t.Error("bypassed fetch diverged from reference")
	}
	if st.FetchRetries < 2 {
		t.Errorf("fetch retries = %d, want >= breaker threshold", st.FetchRetries)
	}
	if !br.Open("test/map-0") {
		t.Error("breaker never opened for the failing source")
	}
}

// The acceptance criterion made unit-sized: the baseline exchange decodes
// every fetched record (one decode span + counter tick per record); the
// gerenuk exchange decodes none.
func TestBaselineDecodesPerRecordGerenukZero(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 2, 25, 9)
	const total = 50

	for _, mode := range []string{"baseline", "gerenuk"} {
		tr := trace.New()
		var codec *serde.Codec
		if mode == "baseline" {
			codec = c.Codec
		}
		cfg := Config{Partitions: 3, MemoryBudget: 200, Compression: LZ4, Trace: tr}
		cfg.SpillDir = t.TempDir()
		ex, err := NewExchange(nil, cfg, "t", c.Layouts, "Pair", "key", codec)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range parts {
			w := ex.Writer(i)
			if err := w.Add(p); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ex.FetchAll(); err != nil {
			t.Fatal(err)
		}
		decodes := tr.Registry().Counter("shuffle_read_decodes_total").Value()
		spans := 0
		for _, e := range tr.Events() {
			if e.Name == "shuffle-record-decode" {
				spans++
			}
		}
		want := int64(0)
		if mode == "baseline" {
			want = total
		}
		if decodes != want || int64(spans) != want {
			t.Errorf("%s: decode counter = %d, decode spans = %d, want %d",
				mode, decodes, spans, want)
		}
		if got := tr.Registry().Counter("shuffle_records_fetched_total").Value(); got != total {
			t.Errorf("%s: records fetched counter = %d, want %d", mode, got, total)
		}
	}
}

// Double-Close is an idempotent no-op (defer-friendly); a second
// FetchAll is still an error — the exchange is gone after the first.
func TestWriterDoubleCloseIdempotentFetchTwiceRejected(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 5, 3)
	store := NewStore()
	ex, err := NewExchange(store, Config{Partitions: 1}, "t", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := ex.Writer(0)
	if err := w.Add(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close not idempotent: %v", err)
	}
	if got := store.Len(); got != 1 {
		t.Errorf("double close left %d blocks, want 1", got)
	}
	if _, err := ex.FetchAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.FetchAll(); err == nil {
		t.Error("second FetchAll accepted")
	}
}

func TestStoreReleasedAfterFetch(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 2, 10, 4)
	store := NewStore()
	ex, err := NewExchange(store, Config{Partitions: 2}, "t", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		w := ex.Writer(i)
		if err := w.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() == 0 {
		t.Fatal("no blocks registered")
	}
	if _, err := ex.FetchAll(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Errorf("store still holds %d blocks after fetch", store.Len())
	}
}
