package shuffle_test

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/serde"
	. "repro/internal/shuffle"
	"repro/internal/trace"
)

// chunkRecords splits one wire partition into n record-aligned chunks —
// the micro-batch arrival pattern.
func chunkRecords(t *testing.T, part []byte, n int) [][]byte {
	t.Helper()
	var offs []int
	for off := 0; off < len(part); off += serde.RecordSize(part, off) {
		offs = append(offs, off)
	}
	offs = append(offs, len(part))
	chunks := make([][]byte, 0, n)
	per := (len(offs) - 1 + n - 1) / n
	for i := 0; i+1 < len(offs); i += per {
		end := i + per
		if end >= len(offs) {
			end = len(offs) - 1
		}
		chunks = append(chunks, part[offs[i]:offs[end]])
	}
	return chunks
}

// The incremental contract: a writer that Adds its records in batches
// with a Sync after each one must produce byte-identical reducer blocks
// to the one-shot writer, across spill budgets, compression codecs, and
// both exchange flavors (gerenuk native bytes, baseline serde).
func TestIncrementalSyncEqualsOneShot(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 3, 40, 17)

	for _, mode := range []string{"gerenuk", "baseline"} {
		var codec *serde.Codec
		if mode == "baseline" {
			codec = c.Codec
		}
		ref, _ := runExchange(t, c, Config{Partitions: 4}, codec, parts)
		cases := []struct {
			name string
			cfg  Config
		}{
			{"inmem", Config{Partitions: 4}},
			{"spill-1b", Config{Partitions: 4, MemoryBudget: 1}},
			{"spill-lz4", Config{Partitions: 4, MemoryBudget: 128, Compression: LZ4}},
			{"replicated", Config{Partitions: 4, Replicas: 2}},
		}
		for _, tc := range cases {
			tr := trace.New()
			tc.cfg.SpillDir = t.TempDir()
			tc.cfg.Trace = tr
			ex, err := NewExchange(nil, tc.cfg, "test", c.Layouts, "Pair", "key", codec)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range parts {
				w := ex.Writer(i)
				for _, chunk := range chunkRecords(t, p, 5) {
					if err := w.Add(chunk); err != nil {
						t.Fatal(err)
					}
					if err := w.Sync(); err != nil {
						t.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
			}
			blocks, err := ex.FetchAll()
			if err != nil {
				t.Fatal(err)
			}
			for r := range blocks {
				if !bytes.Equal(blocks[r], ref[r]) {
					t.Errorf("%s/%s: reducer %d diverged from one-shot reference", mode, tc.name, r)
				}
			}
			if got := tr.Registry().Counter("shuffle_incremental_syncs_total").Value(); got < int64(len(parts)*5) {
				t.Errorf("%s/%s: %d incremental syncs recorded, want >= %d", mode, tc.name, got, len(parts)*5)
			}
		}
	}
}

// Satellite regression: an abandoned open writer — batches staged,
// synced, more staged, spill runs on disk — must delete every spill run,
// stay abandoned across double-Abandon and late Close, and leave no
// blocks behind once the exchange is discarded.
func TestAbandonedWriterLeaksNothing(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 60, 11)
	spillDir := t.TempDir()
	store := NewStore()
	cfg := Config{Partitions: 3, MemoryBudget: 64, SpillDir: spillDir}
	ex, err := NewExchange(store, cfg, "abandoned", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	chunks := chunkRecords(t, parts[0], 4)
	w := ex.Writer(0)
	if err := w.Add(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("sync published no blocks")
	}
	// Stage more without syncing so live spill runs exist at abandon time.
	if err := w.Add(chunks[1]); err != nil {
		t.Fatal(err)
	}
	w.Abandon()
	w.Abandon() // idempotent
	if err := w.Close(); err != nil {
		t.Errorf("Close after Abandon: %v", err)
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("abandoned writer left %d spill runs on disk", len(ents))
	}
	if err := w.Add(chunks[2]); err != nil {
		t.Log("Add after Abandon errored (acceptable):", err)
	}
	ex.Discard()
	ex.Discard() // idempotent
	if got := store.Len(); got != 0 {
		t.Errorf("discarded exchange left %d blocks in the store", got)
	}
	if _, err := ex.FetchAll(); err == nil {
		t.Error("FetchAll after Discard accepted")
	}
}

// Sync on a closed writer is a loud error, not silent data loss.
func TestSyncAfterCloseErrors(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 5, 3)
	ex, err := NewExchange(nil, Config{Partitions: 1}, "t", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := ex.Writer(0)
	if err := w.Add(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync after Close accepted")
	}
}

// Re-publishing a grown block restores the full replica set: replicas
// dropped between syncs come back on the next Sync/Close, so a fetch
// needs no failover at all.
func TestSyncRestoresDroppedReplicas(t *testing.T) {
	c := pairCompiled(t)
	parts := encodeParts(t, c, 1, 20, 1) // one key → one reducer block
	store := NewStore()
	tr := trace.New()
	cfg := Config{Partitions: 1, Replicas: 2, Trace: tr}
	ex, err := NewExchange(store, cfg, "grow", c.Layouts, "Pair", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	chunks := chunkRecords(t, parts[0], 2)
	w := ex.Writer(0)
	if err := w.Add(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if dropped := store.Drop("grow", 0, 0, 1); dropped != 1 {
		t.Fatalf("dropped %d replicas, want 1", dropped)
	}
	if err := w.Add(chunks[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blocks, err := ex.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := countRecords(blocks); got != 20 {
		t.Fatalf("fetched %d records, want 20", got)
	}
	if got := tr.Registry().Counter("recovery_replica_failover_total").Value(); got != 0 {
		t.Errorf("fetch needed %d replica failovers after republish, want 0", got)
	}
}
