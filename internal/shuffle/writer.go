package shuffle

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/serde"
	"repro/internal/trace"
)

// entry is one record staged for the exchange: its canonical key bytes,
// its arrival sequence within the writer (the tiebreak that makes the
// per-reducer order total, and with it the output bytes independent of
// budget and compression), and the wire record itself.
type entry struct {
	key []byte
	seq uint64
	rec []byte
}

func entryLess(a, b entry) bool {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// Writer stages one map task's output: records are hash-partitioned by
// key into per-reducer buffers; when the buffered bytes exceed the
// memory budget everything spills to disk as one sorted run, and Close
// merges the runs back into per-reducer blocks registered in the store.
// Not safe for concurrent use (one writer per map task).
type Writer struct {
	ex      *Exchange
	mapTask int
	span    *trace.Span

	buf      [][]entry // per-reducer staged entries
	bufBytes int64
	seq      uint64
	runs     []string  // sorted spill run files, merge order
	base     [][]entry // per-reducer entries already merged by Sync, in (key, seq) order
	st       Stats
	closed   bool
	rebuild  bool // lineage re-execution: re-register blocks, not the map ID
	syncs    int64
}

// Writer opens the map-side writer for one map task.
func (ex *Exchange) Writer(mapTask int) *Writer {
	return &Writer{
		ex: ex, mapTask: mapTask,
		buf: make([][]entry, ex.cfg.Partitions),
		span: ex.span.Child("shuffle", "shuffle-write",
			trace.I64("map_task", int64(mapTask))),
	}
}

// RecoveryWriter opens a writer that re-runs an already-registered map
// task from lineage: Close re-registers the rebuilt blocks (restoring
// the full replica count) but does not re-add the map ID, so the fetch
// assembly order is unchanged. The writer is deterministic, so the
// rebuilt blocks are byte-identical to the lost ones.
func (ex *Exchange) RecoveryWriter(mapTask int) *Writer {
	return &Writer{
		ex: ex, mapTask: mapTask, rebuild: true,
		buf: make([][]entry, ex.cfg.Partitions),
		span: ex.span.Child("recovery", "rebuild-write",
			trace.I64("map_task", int64(mapTask))),
	}
}

// discardRuns removes any spill run files still on disk — the error-path
// cleanup that keeps a failed merge or close from leaking temp files.
func (w *Writer) discardRuns() {
	for _, path := range w.runs {
		os.Remove(path)
	}
	w.runs = nil
}

// Add stages every size-prefixed record in buf. In Baseline mode each
// record pays a real decode + canonical re-encode here — the map-side
// serialization point of a conventional runtime; in Gerenuk mode the
// native bytes are staged untouched.
func (w *Writer) Add(buf []byte) error {
	if w.closed {
		return fmt.Errorf("shuffle: add on closed writer for map task %d", w.mapTask)
	}
	t0 := time.Now()
	var serT time.Duration
	defer func() {
		w.st.WriteTime += time.Since(t0) - serT
		w.st.SerTime += serT
	}()
	ex := w.ex
	for off := 0; off < len(buf); {
		if off+serde.SizePrefixBytes > len(buf) {
			return fmt.Errorf("shuffle: corrupt record at offset %d of map task %d", off, w.mapTask)
		}
		sz := serde.RecordSize(buf, off)
		if off+sz > len(buf) {
			return fmt.Errorf("shuffle: corrupt record at offset %d of map task %d", off, w.mapTask)
		}
		rec := buf[off : off+sz]
		key, err := engine.KeyOf(ex.layouts, ex.class, ex.keyField, buf, off)
		if err != nil {
			return fmt.Errorf("shuffle: map task %d: %w", w.mapTask, err)
		}
		if ex.codec != nil {
			ts := time.Now()
			v, _, err := ex.codec.Decode(ex.class, buf, off)
			if err != nil {
				return fmt.Errorf("shuffle: map task %d: serialize: %w", w.mapTask, err)
			}
			obj, ok := v.(serde.Obj)
			if !ok {
				return fmt.Errorf("shuffle: map task %d: record decoded to %T, want object", w.mapTask, v)
			}
			enc, err := ex.codec.Encode(ex.class, obj, nil)
			if err != nil {
				return fmt.Errorf("shuffle: map task %d: serialize: %w", w.mapTask, err)
			}
			rec = enc // canonical: byte-identical to the input record
			serT += time.Since(ts)
			ex.reg().Counter("shuffle_write_encodes_total").Add(1)
		} else {
			rec = append([]byte(nil), rec...)
		}
		reducer := int(engine.HashKey(key) % uint64(ex.cfg.Partitions))
		w.buf[reducer] = append(w.buf[reducer], entry{key: key, seq: w.seq, rec: rec})
		w.seq++
		w.bufBytes += int64(len(key) + len(rec))
		off += sz
		if ex.cfg.MemoryBudget > 0 && w.bufBytes > ex.cfg.MemoryBudget {
			if err := w.spill(); err != nil {
				return err
			}
		}
	}
	return nil
}

// spill sorts the staged entries and writes them to disk as one run:
// per-reducer groups in ascending reducer order, each group's entries in
// (key, seq) order — exactly the order Close's merge consumes.
func (w *Writer) spill() error {
	sp := w.span.Child("shuffle", "spill",
		trace.I64("map_task", int64(w.mapTask)), trace.I64("bytes", w.bufBytes))
	f, err := os.CreateTemp(w.ex.cfg.SpillDir, "shuffle-*.run")
	if err != nil {
		return fmt.Errorf("shuffle: spill: %w", err)
	}
	bw := bytes.Buffer{}
	var u32 [4]byte
	var u64 [8]byte
	for r, es := range w.buf {
		if len(es) == 0 {
			continue
		}
		sort.Slice(es, func(i, j int) bool { return entryLess(es[i], es[j]) })
		binary.LittleEndian.PutUint32(u32[:], uint32(r))
		bw.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(es)))
		bw.Write(u32[:])
		for _, e := range es {
			binary.LittleEndian.PutUint32(u32[:], uint32(len(e.key)))
			bw.Write(u32[:])
			bw.Write(e.key)
			binary.LittleEndian.PutUint64(u64[:], e.seq)
			bw.Write(u64[:])
			binary.LittleEndian.PutUint32(u32[:], uint32(len(e.rec)))
			bw.Write(u32[:])
			bw.Write(e.rec)
		}
	}
	n, err := f.Write(bw.Bytes())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("shuffle: spill: %w", err)
	}
	w.runs = append(w.runs, f.Name())
	w.st.Spills++
	w.st.BytesSpilled += int64(n)
	w.ex.reg().Counter("shuffle_spills_total").Add(1)
	w.ex.reg().Counter("shuffle_bytes_spilled_total").Add(int64(n))
	for r := range w.buf {
		w.buf[r] = nil
	}
	w.bufBytes = 0
	sp.End(trace.I64("run_bytes", int64(n)))
	return nil
}

// readRun loads one spill run back as per-reducer entry groups, each
// already in (key, seq) order.
func readRun(path string, partitions int) ([][]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shuffle: merge: %w", err)
	}
	groups := make([][]entry, partitions)
	p := 0
	need := func(n int) error {
		if p+n > len(data) {
			return fmt.Errorf("shuffle: merge: truncated run %s at offset %d", path, p)
		}
		return nil
	}
	for p < len(data) {
		if err := need(8); err != nil {
			return nil, err
		}
		r := int(binary.LittleEndian.Uint32(data[p:]))
		count := int(binary.LittleEndian.Uint32(data[p+4:]))
		p += 8
		if r < 0 || r >= partitions {
			return nil, fmt.Errorf("shuffle: merge: run %s names reducer %d of %d", path, r, partitions)
		}
		es := make([]entry, 0, count)
		for i := 0; i < count; i++ {
			if err := need(4); err != nil {
				return nil, err
			}
			kl := int(binary.LittleEndian.Uint32(data[p:]))
			p += 4
			if err := need(kl + 12); err != nil {
				return nil, err
			}
			key := data[p : p+kl : p+kl]
			p += kl
			seq := binary.LittleEndian.Uint64(data[p:])
			p += 8
			rl := int(binary.LittleEndian.Uint32(data[p:]))
			p += 4
			if err := need(rl); err != nil {
				return nil, err
			}
			rec := data[p : p+rl : p+rl]
			p += rl
			es = append(es, entry{key: key, seq: seq, rec: rec})
		}
		groups[r] = append(groups[r], es...)
	}
	return groups, nil
}

// mergeRuns k-way merges per-reducer sorted runs by (key, seq). Every
// seq is unique within the writer, so the merge order equals the global
// sort order the in-memory path produces.
func mergeRuns(runs [][]entry) []entry {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]entry, 0, total)
	cur := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if cur[i] >= len(r) {
				continue
			}
			if best < 0 || entryLess(r[cur[i]], runs[best][cur[best]]) {
				best = i
			}
		}
		out = append(out, runs[best][cur[best]])
		cur[best]++
	}
	return out
}

// assemble merges the entries a previous Sync retained, every spill run
// on disk, and the still-buffered entries into one (key, seq)-ordered
// slice per reducer. It consumes the spill runs (deleting them) and the
// buffer; the caller decides whether the merged result becomes the new
// retained base (Sync) or the sealed output (Close). All three sources
// are sorted by entryLess and every seq is unique within the writer, so
// the k-way merge yields exactly the order a one-shot in-memory close
// would — the incremental path is byte-identical by construction.
func (w *Writer) assemble() ([][]entry, error) {
	ex := w.ex
	perReducer := make([][][]entry, ex.cfg.Partitions)
	for r, es := range w.base {
		if len(es) > 0 {
			perReducer[r] = append(perReducer[r], es)
		}
	}
	if len(w.runs) > 0 && w.bufBytes > 0 {
		// Flush the tail so the merge sees every record as a sorted run.
		if err := w.spill(); err != nil {
			return nil, err
		}
	}
	for _, path := range w.runs {
		groups, err := readRun(path, ex.cfg.Partitions)
		if err != nil {
			return nil, err
		}
		for r, g := range groups {
			if len(g) > 0 {
				perReducer[r] = append(perReducer[r], g)
			}
		}
	}
	for r, es := range w.buf {
		if len(es) == 0 {
			continue
		}
		sort.Slice(es, func(i, j int) bool { return entryLess(es[i], es[j]) })
		perReducer[r] = append(perReducer[r], es)
	}

	var mergeSpan *trace.Span
	if len(w.runs) > 0 {
		mergeSpan = w.span.Child("shuffle", "merge",
			trace.I64("map_task", int64(w.mapTask)), trace.I64("runs", int64(len(w.runs))))
	}
	merged := make([][]entry, ex.cfg.Partitions)
	var records int64
	for r := range perReducer {
		merged[r] = mergeRuns(perReducer[r])
		records += int64(len(merged[r]))
	}
	mergeSpan.End(trace.I64("records", records))
	w.discardRuns()
	for r := range w.buf {
		w.buf[r] = nil
	}
	w.bufBytes = 0
	return merged, nil
}

// publish compresses each non-empty reducer's merged entries and
// registers the block in the store with the configured replica count.
// put replaces the whole replica slice, so re-publishing a grown block
// also restores any replicas chaos dropped since the last publish.
func (w *Writer) publish(merged [][]entry) (written, records int64, err error) {
	ex := w.ex
	for r, es := range merged {
		if len(es) == 0 {
			continue
		}
		var raw bytes.Buffer
		for _, e := range es {
			raw.Write(e.rec)
		}
		payload, err := compressBlock(ex.cfg.Compression, raw.Bytes())
		if err != nil {
			return written, records, err
		}
		ex.store.put(blockID{ex.name, w.mapTask, r}, &Block{
			Payload: payload, RawLen: raw.Len(), Records: len(es), Codec: ex.cfg.Compression,
		}, ex.cfg.Replicas)
		written += int64(raw.Len())
		records += int64(len(es))
	}
	return written, records, nil
}

// Sync publishes the writer's accumulated output as live reducer blocks
// without sealing it — the micro-batch append mode. Each call merges the
// records staged since the last Sync into the retained per-reducer order
// and replaces the published blocks with the grown versions; the map ID
// is not registered until Close, so fetch never observes a half-built
// exchange. After Sync the retained entries no longer count against the
// memory budget (they live on as published blocks); only newly staged
// bytes can trigger spills. Sync after Close is an error.
func (w *Writer) Sync() error {
	if w.closed {
		return fmt.Errorf("shuffle: sync on closed writer for map task %d", w.mapTask)
	}
	t0 := time.Now()
	merged, err := w.assemble()
	if err != nil {
		w.discardRuns()
		return err
	}
	w.base = merged
	_, _, perr := w.publish(merged)
	w.syncs++
	w.st.WriteTime += time.Since(t0)
	w.ex.reg().Counter("shuffle_incremental_syncs_total").Add(1)
	if perr != nil {
		return perr
	}
	w.span.Instant("shuffle", "sync", trace.I64("map_task", int64(w.mapTask)))
	return nil
}

// Abandon discards the writer without publishing: spill runs are deleted
// from disk, buffered and retained entries are dropped, and any blocks a
// previous Sync published stay in the store but remain invisible to
// fetch (the map ID was never registered) until the exchange itself is
// released or discarded. Abandoning a closed or already-abandoned writer
// is a no-op, as is closing an abandoned one.
func (w *Writer) Abandon() {
	if w.closed {
		return
	}
	w.closed = true
	w.discardRuns()
	w.buf = nil
	w.base = nil
	w.bufBytes = 0
	w.span.End(trace.Str("outcome", "abandoned"))
}

// Close seals the map output: entries retained by previous Syncs and
// spilled runs are merged with any still-buffered entries, each
// reducer's records are concatenated in (key, seq) order, compressed per
// the exchange config, and registered in the block store with the
// configured replica count. The spill files are deleted — on the error
// paths too. Closing an already-closed writer is a no-op.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	t0 := time.Now()
	ex := w.ex

	merged, err := w.assemble()
	if err != nil {
		w.discardRuns()
		return err
	}
	w.base = nil
	written, records, err := w.publish(merged)
	if err != nil {
		return err
	}
	w.buf = nil
	w.st.BytesWritten += written
	ex.reg().Counter("shuffle_bytes_written_total").Add(written)
	w.st.WriteTime += time.Since(t0)
	if !w.rebuild {
		ex.addMap(w.mapTask)
		ex.addStats(w.st)
	}
	w.span.End(trace.I64("bytes", written), trace.I64("records", records),
		trace.I64("spills", w.st.Spills), trace.I64("syncs", w.syncs))
	return nil
}
