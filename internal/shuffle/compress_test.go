package shuffle

import (
	"bytes"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, c Compression, raw []byte) []byte {
	t.Helper()
	payload, err := compressBlock(c, raw)
	if err != nil {
		t.Fatalf("%v: compress: %v", c, err)
	}
	got, err := decompressBlock(c, payload, len(raw))
	if err != nil {
		t.Fatalf("%v: decompress: %v", c, err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatalf("%v: round trip diverged (%d bytes in, %d out)", c, len(raw), len(got))
	}
	return payload
}

func TestCompressionRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 10_000)
	rng.Read(random)
	repetitive := bytes.Repeat([]byte("the quick brown fox "), 500)
	runs := bytes.Repeat([]byte{0xAB}, 5_000)
	short := []byte{1, 2, 3}
	var mixed []byte
	for i := 0; i < 200; i++ {
		mixed = append(mixed, repetitive[:50]...)
		var r [17]byte
		rng.Read(r[:])
		mixed = append(mixed, r[:]...)
	}
	cases := map[string][]byte{
		"empty": nil, "short": short, "random": random,
		"repetitive": repetitive, "runs": runs, "mixed": mixed,
	}
	for _, c := range []Compression{None, Flate, LZ4} {
		for name, raw := range cases {
			payload := roundTrip(t, c, raw)
			if c != None && name == "repetitive" && len(payload) >= len(raw) {
				t.Errorf("%v: repetitive input did not shrink (%d -> %d)", c, len(raw), len(payload))
			}
			if c != None && name == "runs" && len(payload) >= len(raw)/10 {
				t.Errorf("%v: byte run compressed poorly (%d -> %d)", c, len(raw), len(payload))
			}
		}
	}
}

func TestLZ4RandomizedRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("abcd")
	for i := 0; i < 200; i++ {
		n := rng.Intn(4096)
		raw := make([]byte, n)
		// Low-entropy alphabet produces plenty of matches, including
		// overlapping ones; vary entropy with i.
		for j := range raw {
			if i%3 == 0 {
				raw[j] = byte(rng.Intn(256))
			} else {
				raw[j] = alphabet[rng.Intn(len(alphabet))]
			}
		}
		roundTrip(t, LZ4, raw)
	}
}

func TestLZ4LongMatchLengthExtensions(t *testing.T) {
	// A single 100KB run forces multi-byte (255-continuation) match
	// length extensions and window-capped offsets.
	raw := bytes.Repeat([]byte{7}, 100_000)
	payload := roundTrip(t, LZ4, raw)
	if len(payload) > 500 {
		t.Errorf("100KB run compressed to %d bytes, want < 500", len(payload))
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	raw := bytes.Repeat([]byte("hello world "), 100)
	for _, c := range []Compression{Flate, LZ4} {
		payload, err := compressBlock(c, raw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decompressBlock(c, payload, len(raw)+1); err == nil {
			t.Errorf("%v: wrong rawLen accepted", c)
		}
		if _, err := decompressBlock(c, payload[:len(payload)/2], len(raw)); err == nil {
			t.Errorf("%v: truncated payload accepted", c)
		}
	}
	if _, err := decompressBlock(None, raw, len(raw)-1); err == nil {
		t.Error("None: wrong rawLen accepted")
	}
	// LZ4: an offset pointing before the start of the output must be
	// rejected, not read wild.
	bad := []byte{0x10, 'a', 0xFF, 0xFF}
	if _, err := lz4Decompress(bad, 100); err == nil {
		t.Error("lz4: wild back-reference accepted")
	}
}

func TestParseCompression(t *testing.T) {
	for in, want := range map[string]Compression{
		"": None, "none": None, "flate": Flate, "DEFLATE": Flate, "lz4": LZ4, " LZ4 ": LZ4,
	} {
		got, err := ParseCompression(in)
		if err != nil || got != want {
			t.Errorf("ParseCompression(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseCompression("zstd"); err == nil {
		t.Error("unknown codec accepted")
	}
}
