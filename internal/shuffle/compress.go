package shuffle

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"strings"
)

// Compression selects the per-block codec applied between a map-side
// writer sealing a block and a reduce-side fetcher decompressing it.
// Blocks are compressed whole: the exchange ships far fewer, far larger
// units than records, which is where block codecs earn their CPU.
type Compression int

const (
	// None ships raw block bytes.
	None Compression = iota
	// Flate uses stdlib DEFLATE at its fastest level (entropy coding,
	// best ratio of the two, slowest).
	Flate
	// LZ4 uses a hand-rolled LZ4-style sequence codec (byte-aligned
	// match/literal tokens, 64KB window, no entropy stage). The format is
	// this package's own — both ends of the exchange live in-process, so
	// interoperability with real LZ4 frames is explicitly a non-goal.
	LZ4
)

func (c Compression) String() string {
	switch c {
	case Flate:
		return "flate"
	case LZ4:
		return "lz4"
	default:
		return "none"
	}
}

// ParseCompression maps a CLI flag value to a Compression. The empty
// string parses as None so an unset flag means "raw blocks".
func ParseCompression(s string) (Compression, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return None, nil
	case "flate", "deflate":
		return Flate, nil
	case "lz4":
		return LZ4, nil
	}
	return None, fmt.Errorf("shuffle: unknown compression %q (want none|flate|lz4)", s)
}

// compressBlock encodes raw with the chosen codec. None returns raw
// unchanged (no copy); the caller treats the payload as immutable either
// way.
func compressBlock(c Compression, raw []byte) ([]byte, error) {
	switch c {
	case None:
		return raw, nil
	case Flate:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("shuffle: flate: %w", err)
		}
		if _, err := w.Write(raw); err != nil {
			return nil, fmt.Errorf("shuffle: flate: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("shuffle: flate: %w", err)
		}
		return buf.Bytes(), nil
	case LZ4:
		return lz4Compress(raw), nil
	}
	return nil, fmt.Errorf("shuffle: unknown compression %d", c)
}

// decompressBlock reverses compressBlock. rawLen is the expected
// uncompressed size carried in the block header; a mismatch means the
// payload was corrupted in flight and is reported, never silently
// truncated.
func decompressBlock(c Compression, payload []byte, rawLen int) ([]byte, error) {
	switch c {
	case None:
		if len(payload) != rawLen {
			return nil, fmt.Errorf("shuffle: raw block is %d bytes, header says %d", len(payload), rawLen)
		}
		return payload, nil
	case Flate:
		r := flate.NewReader(bytes.NewReader(payload))
		raw := make([]byte, 0, rawLen)
		buf := bytes.NewBuffer(raw)
		if _, err := io.Copy(buf, r); err != nil {
			return nil, fmt.Errorf("shuffle: flate: %w", err)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("shuffle: flate: %w", err)
		}
		if buf.Len() != rawLen {
			return nil, fmt.Errorf("shuffle: flate block decompressed to %d bytes, header says %d", buf.Len(), rawLen)
		}
		return buf.Bytes(), nil
	case LZ4:
		return lz4Decompress(payload, rawLen)
	}
	return nil, fmt.Errorf("shuffle: unknown compression %d", c)
}

// ---- LZ4-style block codec ----
//
// A block is a flat run of sequences. Each sequence is:
//
//	token        1 byte: literal count (high nibble) | match length - 4 (low nibble)
//	ext lit len  0..n bytes of 255 + terminator, present when the nibble is 15
//	literals     <literal count> raw bytes
//	offset       2 bytes little-endian back-reference distance (1..65535)
//	ext mat len  as ext lit len, for the match nibble
//
// The final sequence of a block carries literals only: decoding stops
// when the literals end exactly at the payload boundary, so no offset
// follows. Matches may overlap their own output (offset < length), which
// is how runs compress.

const (
	lz4MinMatch  = 4
	lz4MaxOffset = 1 << 16 // offsets are u16; 0 is reserved as "corrupt"
	lz4HashLog   = 13
	lz4NibbleMax = 15
)

func lz4Hash(v uint32) uint32 {
	// Knuth multiplicative hash over the 4 candidate bytes.
	return (v * 2654435761) >> (32 - lz4HashLog)
}

func lz4Word(src []byte, i int) uint32 {
	return uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16 | uint32(src[i+3])<<24
}

// lz4Compress greedily matches 4+ byte repeats against a 64KB window
// using a last-occurrence hash table. Incompressible input degrades to a
// single literal run with ~0.4% framing overhead.
func lz4Compress(src []byte) []byte {
	dst := make([]byte, 0, len(src)/2+16)
	var table [1 << lz4HashLog]int32 // position+1 of the last occurrence
	anchor, i := 0, 0
	for i+lz4MinMatch <= len(src) {
		h := lz4Hash(lz4Word(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand >= lz4MaxOffset || lz4Word(src, cand) != lz4Word(src, i) {
			i++
			continue
		}
		mlen := lz4MinMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		dst = lz4EmitSeq(dst, src[anchor:i], i-cand, mlen)
		i += mlen
		anchor = i
	}
	return lz4EmitSeq(dst, src[anchor:], 0, 0) // trailing literals, no match
}

// lz4EmitSeq appends one sequence. offset 0 marks the final literals-only
// sequence (no offset bytes follow).
func lz4EmitSeq(dst, lits []byte, offset, mlen int) []byte {
	ltok := len(lits)
	if ltok > lz4NibbleMax {
		ltok = lz4NibbleMax
	}
	mtok := 0
	if offset > 0 {
		mtok = mlen - lz4MinMatch
		if mtok > lz4NibbleMax {
			mtok = lz4NibbleMax
		}
	}
	dst = append(dst, byte(ltok<<4|mtok))
	if ltok == lz4NibbleMax {
		dst = lz4EmitLen(dst, len(lits)-lz4NibbleMax)
	}
	dst = append(dst, lits...)
	if offset > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if mtok == lz4NibbleMax {
			dst = lz4EmitLen(dst, mlen-lz4MinMatch-lz4NibbleMax)
		}
	}
	return dst
}

func lz4EmitLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

func lz4ReadLen(payload []byte, p int) (n, np int, err error) {
	for {
		if p >= len(payload) {
			return 0, 0, fmt.Errorf("shuffle: lz4 block truncated in length extension")
		}
		b := payload[p]
		p++
		n += int(b)
		if b != 255 {
			return n, p, nil
		}
	}
}

func lz4Decompress(payload []byte, rawLen int) ([]byte, error) {
	corrupt := func(format string, args ...any) ([]byte, error) {
		return nil, fmt.Errorf("shuffle: corrupt lz4 block: "+format, args...)
	}
	dst := make([]byte, 0, rawLen)
	p := 0
	for p < len(payload) {
		tok := payload[p]
		p++
		litLen := int(tok >> 4)
		if litLen == lz4NibbleMax {
			n, np, err := lz4ReadLen(payload, p)
			if err != nil {
				return nil, err
			}
			litLen += n
			p = np
		}
		if p+litLen > len(payload) {
			return corrupt("literal run past payload end")
		}
		dst = append(dst, payload[p:p+litLen]...)
		p += litLen
		if p == len(payload) {
			break // final literals-only sequence
		}
		if p+2 > len(payload) {
			return corrupt("truncated match offset")
		}
		offset := int(payload[p]) | int(payload[p+1])<<8
		p += 2
		if offset == 0 || offset > len(dst) {
			return corrupt("match offset %d with %d bytes decoded", offset, len(dst))
		}
		mlen := int(tok&lz4NibbleMax) + lz4MinMatch
		if tok&lz4NibbleMax == lz4NibbleMax {
			n, np, err := lz4ReadLen(payload, p)
			if err != nil {
				return nil, err
			}
			mlen += n
			p = np
		}
		// Byte-at-a-time so overlapping matches (offset < length)
		// replicate runs, as the format intends.
		start := len(dst) - offset
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	if len(dst) != rawLen {
		return corrupt("decompressed to %d bytes, header says %d", len(dst), rawLen)
	}
	return dst, nil
}
