// Package tungsten implements a Spark SQL / Project Tungsten stand-in
// for the Figure 8 comparison: a DataFrame engine over a flat, native
// UnsafeRow format with interpreted row operators.
//
// Tungsten's characteristics that drive the paper's results are modeled
// structurally rather than by constants:
//
//   - Only flat schemas are supported (longs, doubles, binary strings).
//     Complex user types like Links{src, dsts[]} must be exploded into
//     edge rows, so iterative graph algorithms pay per-iteration hash
//     joins over materialized row tables instead of Gerenuk's one-pass
//     adjacency records — that is why Gerenuk wins PageRank.
//   - Strings are offset/length slices into the row buffer and aggregate
//     through a binary-key hash table without per-character object work —
//     the string optimization that lets Tungsten win WordCount.
//   - Each operator materializes its output rows into a fresh native
//     buffer (stage-boundary materialization); iterative queries rebuild
//     their plans and hash tables every iteration (the unresolved
//     SPARK-13346 growth issue the paper cites, which forced fixing
//     PageRank at 10 iterations).
package tungsten

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// ColKind is a flat column type.
type ColKind uint8

// Column kinds.
const (
	ColLong ColKind = iota
	ColDouble
	ColString
)

// Schema is an ordered set of flat columns.
type Schema struct {
	Names []string
	Kinds []ColKind
}

// NumCols returns the column count.
func (s Schema) NumCols() int { return len(s.Kinds) }

// fixedBytes is the fixed-width region size of a row: 8 bytes per column
// (value, or offset<<32|len for strings), UnsafeRow style.
func (s Schema) fixedBytes() int { return 8 * len(s.Kinds) }

// Table is a materialized set of UnsafeRows in one native buffer.
type Table struct {
	Schema Schema
	// rows holds the byte offset of each row in buf.
	rows []int
	buf  []byte
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Bytes returns the native buffer size (for memory accounting).
func (t *Table) Bytes() int64 { return int64(len(t.buf)) }

// RowBuilder appends rows to a table.
type RowBuilder struct {
	t     *Table
	start int
	vals  []uint64
	varb  []byte
}

// NewTable creates an empty table.
func NewTable(s Schema) *Table { return &Table{Schema: s} }

// Append starts a new row.
func (t *Table) Append() *RowBuilder {
	return &RowBuilder{t: t, vals: make([]uint64, t.Schema.NumCols())}
}

// SetLong sets a long column.
func (b *RowBuilder) SetLong(col int, v int64) { b.vals[col] = uint64(v) }

// SetDouble sets a double column.
func (b *RowBuilder) SetDouble(col int, v float64) {
	b.vals[col] = f64bits(v)
}

// SetString sets a string column; the bytes land in the row's variable
// region.
func (b *RowBuilder) SetString(col int, s []byte) {
	off := b.t.Schema.fixedBytes() + len(b.varb)
	b.vals[col] = uint64(off)<<32 | uint64(len(s))
	b.varb = append(b.varb, s...)
}

// Finish writes the row into the table.
func (b *RowBuilder) Finish() {
	t := b.t
	t.rows = append(t.rows, len(t.buf))
	for _, v := range b.vals {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		t.buf = append(t.buf, tmp[:]...)
	}
	t.buf = append(t.buf, b.varb...)
}

// Row is a cursor over one row.
type Row struct {
	t   *Table
	off int
}

// Row returns the i-th row cursor.
func (t *Table) Row(i int) Row { return Row{t: t, off: t.rows[i]} }

// Long reads a long column.
func (r Row) Long(col int) int64 {
	return int64(binary.LittleEndian.Uint64(r.t.buf[r.off+8*col:]))
}

// Double reads a double column.
func (r Row) Double(col int) float64 {
	return f64frombits(binary.LittleEndian.Uint64(r.t.buf[r.off+8*col:]))
}

// Str reads a string column as a byte slice into the row buffer (no
// copy — Tungsten's binary string representation).
func (r Row) Str(col int) []byte {
	v := binary.LittleEndian.Uint64(r.t.buf[r.off+8*col:])
	off, n := int(v>>32), int(v&0xFFFFFFFF)
	return r.t.buf[r.off+off : r.off+off+n]
}

// ---- interpreted expressions ----

// Expr is an interpreted row expression (Tungsten without whole-stage
// codegen, i.e. Spark's interpreted fallback — keeping per-row costs
// comparable with the IR interpreter used by the other two systems).
type Expr interface {
	evalKind() ColKind
}

// ColRef reads a column.
type ColRef struct {
	Col  int
	Kind ColKind
}

// ConstD is a double literal.
type ConstD struct{ V float64 }

// ConstL is a long literal.
type ConstL struct{ V int64 }

// BinExpr combines two numeric expressions: + - * /.
type BinExpr struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

func (e ColRef) evalKind() ColKind { return e.Kind }
func (ConstD) evalKind() ColKind   { return ColDouble }
func (ConstL) evalKind() ColKind   { return ColLong }
func (e BinExpr) evalKind() ColKind {
	if e.L.evalKind() == ColDouble || e.R.evalKind() == ColDouble {
		return ColDouble
	}
	return ColLong
}

// evalD evaluates an expression as double.
func evalD(e Expr, r Row) float64 {
	switch t := e.(type) {
	case ColRef:
		if t.Kind == ColDouble {
			return r.Double(t.Col)
		}
		return float64(r.Long(t.Col))
	case ConstD:
		return t.V
	case ConstL:
		return float64(t.V)
	case BinExpr:
		l, rr := evalD(t.L, r), evalD(t.R, r)
		switch t.Op {
		case '+':
			return l + rr
		case '-':
			return l - rr
		case '*':
			return l * rr
		default:
			return l / rr
		}
	default:
		panic(fmt.Sprintf("tungsten: unknown expr %T", e))
	}
}

// evalL evaluates an expression as long.
func evalL(e Expr, r Row) int64 {
	switch t := e.(type) {
	case ColRef:
		if t.Kind == ColLong {
			return r.Long(t.Col)
		}
		return int64(r.Double(t.Col))
	case ConstL:
		return t.V
	case ConstD:
		return int64(t.V)
	case BinExpr:
		if t.evalKind() == ColDouble {
			return int64(evalD(t, r))
		}
		l, rr := evalL(t.L, r), evalL(t.R, r)
		switch t.Op {
		case '+':
			return l + rr
		case '-':
			return l - rr
		case '*':
			return l * rr
		default:
			if rr == 0 {
				return 0
			}
			return l / rr
		}
	default:
		panic(fmt.Sprintf("tungsten: unknown expr %T", e))
	}
}

// ---- session & operators ----

// Stats accumulates execution metrics for the Figure 8 comparison.
type Stats struct {
	Total        time.Duration
	PlanTime     time.Duration // per-iteration plan (re)construction
	RowsScanned  int64
	RowsEmitted  int64
	PeakBytes    int64
	PlansBuilt   int64
	PlanNodeCost int64 // cumulative plan nodes "generated"
}

// Session runs DataFrame operations and accumulates stats.
type Session struct {
	Stats Stats
	live  int64
}

// NewSession returns an empty session.
func NewSession() *Session { return &Session{} }

func (s *Session) account(t *Table) {
	s.live += t.Bytes()
	if s.live > s.Stats.PeakBytes {
		s.Stats.PeakBytes = s.live
	}
}

// release models freeing an intermediate table.
func (s *Session) release(t *Table) { s.live -= t.Bytes() }

// PlanGrow models Catalyst rebuilding (and re-"generating code" for) the
// logical plan: the cost grows with the accumulated plan size, which is
// the SPARK-13346 behavior that cripples long iterative DataFrame jobs.
func (s *Session) PlanGrow(nodes int) {
	start := time.Now()
	s.Stats.PlansBuilt++
	s.Stats.PlanNodeCost += int64(nodes)
	// Real work proportional to cumulative plan size: simulate codegen
	// by hashing a buffer of plan-node descriptors.
	buf := make([]byte, 256*s.Stats.PlanNodeCost)
	var h uint64 = 1469598103934665603
	for i := range buf {
		buf[i] = byte(i)
		h = (h ^ uint64(buf[i])) * 1099511628211
	}
	_ = h
	s.Stats.PlanTime += time.Since(start)
	s.Stats.Total += time.Since(start)
}

// Project maps each input row through output expressions.
func (s *Session) Project(in *Table, out Schema, exprs []Expr) *Table {
	start := time.Now()
	t := NewTable(out)
	for i := 0; i < in.NumRows(); i++ {
		r := in.Row(i)
		b := t.Append()
		for c, e := range exprs {
			switch out.Kinds[c] {
			case ColLong:
				b.SetLong(c, evalL(e, r))
			case ColDouble:
				b.SetDouble(c, evalD(e, r))
			default:
				panic("tungsten: string projection unsupported")
			}
		}
		b.Finish()
	}
	s.Stats.RowsScanned += int64(in.NumRows())
	s.Stats.RowsEmitted += int64(t.NumRows())
	s.account(t)
	s.Stats.Total += time.Since(start)
	return t
}

// HashAggLong groups by a long key column and sums a double expression:
// SELECT key, SUM(expr) GROUP BY key.
func (s *Session) HashAggLong(in *Table, keyCol int, agg Expr) *Table {
	start := time.Now()
	sums := make(map[int64]float64, in.NumRows()/2+1)
	order := make([]int64, 0)
	for i := 0; i < in.NumRows(); i++ {
		r := in.Row(i)
		k := r.Long(keyCol)
		if _, ok := sums[k]; !ok {
			order = append(order, k)
		}
		sums[k] += evalD(agg, r)
	}
	out := NewTable(Schema{
		Names: []string{"key", "sum"},
		Kinds: []ColKind{ColLong, ColDouble},
	})
	for _, k := range order {
		b := out.Append()
		b.SetLong(0, k)
		b.SetDouble(1, sums[k])
		b.Finish()
	}
	s.Stats.RowsScanned += int64(in.NumRows())
	s.Stats.RowsEmitted += int64(out.NumRows())
	s.account(out)
	s.Stats.Total += time.Since(start)
	return out
}

// HashAggString groups by a binary string key and counts occurrences —
// Tungsten's string-optimized aggregation (byte-slice keys, no object
// per word).
func (s *Session) HashAggString(in *Table, keyCol int) *Table {
	start := time.Now()
	counts := make(map[string]int64, in.NumRows()/2+1)
	order := make([]string, 0)
	for i := 0; i < in.NumRows(); i++ {
		r := in.Row(i)
		k := string(r.Str(keyCol)) // interned key bytes
		if _, ok := counts[k]; !ok {
			order = append(order, k)
		}
		counts[k]++
	}
	out := NewTable(Schema{
		Names: []string{"word", "count"},
		Kinds: []ColKind{ColString, ColLong},
	})
	for _, k := range order {
		b := out.Append()
		b.SetString(0, []byte(k))
		b.SetLong(1, counts[k])
		b.Finish()
	}
	s.Stats.RowsScanned += int64(in.NumRows())
	s.Stats.RowsEmitted += int64(out.NumRows())
	s.account(out)
	s.Stats.Total += time.Since(start)
	return out
}

// HashJoinLong equi-joins two tables on long key columns, emitting the
// concatenation of both rows' columns. The build side's hash table is
// reconstructed on every call — no reuse across iterations, as in
// DataFrame loops.
func (s *Session) HashJoinLong(left *Table, lKey int, right *Table, rKey int) *Table {
	start := time.Now()
	build := make(map[int64][]int, right.NumRows())
	for i := 0; i < right.NumRows(); i++ {
		k := right.Row(i).Long(rKey)
		build[k] = append(build[k], i)
	}
	out := NewTable(Schema{
		Names: append(append([]string{}, left.Schema.Names...), right.Schema.Names...),
		Kinds: append(append([]ColKind{}, left.Schema.Kinds...), right.Schema.Kinds...),
	})
	nl := left.Schema.NumCols()
	for i := 0; i < left.NumRows(); i++ {
		lr := left.Row(i)
		k := lr.Long(lKey)
		for _, j := range build[k] {
			rr := right.Row(j)
			b := out.Append()
			for c, kind := range left.Schema.Kinds {
				copyCol(b, c, lr, c, kind)
			}
			for c, kind := range right.Schema.Kinds {
				copyCol(b, nl+c, rr, c, kind)
			}
			b.Finish()
		}
	}
	s.Stats.RowsScanned += int64(left.NumRows() + right.NumRows())
	s.Stats.RowsEmitted += int64(out.NumRows())
	s.account(out)
	s.Stats.Total += time.Since(start)
	return out
}

func copyCol(b *RowBuilder, dst int, r Row, src int, kind ColKind) {
	switch kind {
	case ColLong:
		b.SetLong(dst, r.Long(src))
	case ColDouble:
		b.SetDouble(dst, r.Double(src))
	default:
		b.SetString(dst, r.Str(src))
	}
}

// SplitWords is the Tungsten word-splitting operator: one pass over the
// text bytes of each row emitting (word) rows — binary slices, no
// per-character object construction.
func (s *Session) SplitWords(in *Table, textCol int) *Table {
	start := time.Now()
	out := NewTable(Schema{Names: []string{"word"}, Kinds: []ColKind{ColString}})
	for i := 0; i < in.NumRows(); i++ {
		text := in.Row(i).Str(textCol)
		st := 0
		for p := 0; p <= len(text); p++ {
			if p == len(text) || text[p] == ' ' {
				if p > st {
					b := out.Append()
					b.SetString(0, text[st:p])
					b.Finish()
				}
				st = p + 1
			}
		}
	}
	s.Stats.RowsScanned += int64(in.NumRows())
	s.Stats.RowsEmitted += int64(out.NumRows())
	s.account(out)
	s.Stats.Total += time.Since(start)
	return out
}

// Release frees an intermediate table from the accounting.
func (s *Session) Release(t *Table) { s.release(t) }

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
