package tungsten

import (
	"time"

	"repro/internal/workload"
)

// PageRankDF runs PageRank the DataFrame way (Figure 8(a)'s middle bar):
// adjacency is exploded into a flat edge table because complex types
// cannot live in UnsafeRows, and every iteration re-plans and re-joins.
func PageRankDF(s *Session, links []workload.Links, iters int) map[int64]float64 {
	// Edge table {src, dst, deg}: deg denormalized per edge, the usual
	// flattening when the engine cannot store adjacency lists.
	edges := NewTable(Schema{
		Names: []string{"src", "dst", "deg"},
		Kinds: []ColKind{ColLong, ColLong, ColLong},
	})
	for _, l := range links {
		for _, d := range l.Dsts {
			b := edges.Append()
			b.SetLong(0, l.Src)
			b.SetLong(1, d)
			b.SetLong(2, int64(len(l.Dsts)))
			b.Finish()
		}
	}
	s.account(edges)

	// ranks table {v, r}.
	ranks := NewTable(Schema{Names: []string{"v", "r"}, Kinds: []ColKind{ColLong, ColDouble}})
	for _, l := range links {
		b := ranks.Append()
		b.SetLong(0, l.Src)
		b.SetDouble(1, 1.0)
		b.Finish()
	}
	s.account(ranks)

	for it := 0; it < iters; it++ {
		// Catalyst re-plans the growing query every iteration.
		s.PlanGrow(8)

		// ranks JOIN edges ON v = src.
		joined := s.HashJoinLong(ranks, 0, edges, 0)
		// columns: v, r, src, dst, deg.
		contribs := s.Project(joined, Schema{
			Names: []string{"dst", "c"},
			Kinds: []ColKind{ColLong, ColDouble},
		}, []Expr{
			ColRef{Col: 3, Kind: ColLong},
			BinExpr{Op: '/', L: ColRef{Col: 1, Kind: ColDouble}, R: ColRef{Col: 4, Kind: ColLong}},
		})
		s.Release(joined)
		// Keep rank-less vertices alive with zero contributions (the
		// RDD version's self-contribution).
		withZeros := s.appendZeroContribs(contribs, ranks)
		sums := s.HashAggLong(withZeros, 0, ColRef{Col: 1, Kind: ColDouble})
		s.Release(contribs)
		if withZeros != contribs {
			s.Release(withZeros)
		}
		newRanks := s.Project(sums, Schema{
			Names: []string{"v", "r"},
			Kinds: []ColKind{ColLong, ColDouble},
		}, []Expr{
			ColRef{Col: 0, Kind: ColLong},
			BinExpr{Op: '+', L: ConstD{0.15},
				R: BinExpr{Op: '*', L: ConstD{0.85}, R: ColRef{Col: 1, Kind: ColDouble}}},
		})
		s.Release(sums)
		s.Release(ranks)
		ranks = newRanks
	}

	out := make(map[int64]float64, ranks.NumRows())
	for i := 0; i < ranks.NumRows(); i++ {
		r := ranks.Row(i)
		out[r.Long(0)] = r.Double(1)
	}
	return out
}

// appendZeroContribs materializes a contribution table extended with a
// zero row per known vertex.
func (s *Session) appendZeroContribs(contribs, ranks *Table) *Table {
	start := time.Now()
	out := NewTable(contribs.Schema)
	for i := 0; i < contribs.NumRows(); i++ {
		r := contribs.Row(i)
		b := out.Append()
		b.SetLong(0, r.Long(0))
		b.SetDouble(1, r.Double(1))
		b.Finish()
	}
	for i := 0; i < ranks.NumRows(); i++ {
		b := out.Append()
		b.SetLong(0, ranks.Row(i).Long(0))
		b.SetDouble(1, 0)
		b.Finish()
	}
	s.Stats.RowsScanned += int64(contribs.NumRows() + ranks.NumRows())
	s.Stats.RowsEmitted += int64(out.NumRows())
	s.account(out)
	s.Stats.Total += time.Since(start)
	return out
}

// WordCountDF runs WordCount the DataFrame way (Figure 8(b)): one plan,
// binary-string split and hash aggregation.
func WordCountDF(s *Session, docs []string) map[string]int64 {
	s.PlanGrow(3)
	table := NewTable(Schema{Names: []string{"text"}, Kinds: []ColKind{ColString}})
	for _, d := range docs {
		b := table.Append()
		b.SetString(0, []byte(d))
		b.Finish()
	}
	s.account(table)
	words := s.SplitWords(table, 0)
	counts := s.HashAggString(words, 0)
	s.Release(words)
	out := make(map[string]int64, counts.NumRows())
	for i := 0; i < counts.NumRows(); i++ {
		r := counts.Row(i)
		out[string(r.Str(0))] = r.Long(1)
	}
	return out
}
