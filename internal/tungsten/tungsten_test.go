package tungsten

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestRowRoundTrip(t *testing.T) {
	tbl := NewTable(Schema{
		Names: []string{"a", "b", "s"},
		Kinds: []ColKind{ColLong, ColDouble, ColString},
	})
	b := tbl.Append()
	b.SetLong(0, -42)
	b.SetDouble(1, 3.5)
	b.SetString(2, []byte("hello"))
	b.Finish()
	b = tbl.Append()
	b.SetLong(0, 7)
	b.SetDouble(1, -0.25)
	b.SetString(2, []byte(""))
	b.Finish()

	r := tbl.Row(0)
	if r.Long(0) != -42 || r.Double(1) != 3.5 || string(r.Str(2)) != "hello" {
		t.Errorf("row 0 wrong: %d %v %q", r.Long(0), r.Double(1), r.Str(2))
	}
	r = tbl.Row(1)
	if r.Long(0) != 7 || string(r.Str(2)) != "" {
		t.Errorf("row 1 wrong")
	}
}

func TestProjectAndAgg(t *testing.T) {
	s := NewSession()
	in := NewTable(Schema{Names: []string{"k", "v"}, Kinds: []ColKind{ColLong, ColDouble}})
	for i := 0; i < 10; i++ {
		b := in.Append()
		b.SetLong(0, int64(i%3))
		b.SetDouble(1, float64(i))
		b.Finish()
	}
	doubled := s.Project(in, in.Schema, []Expr{
		ColRef{Col: 0, Kind: ColLong},
		BinExpr{Op: '*', L: ColRef{Col: 1, Kind: ColDouble}, R: ConstD{2}},
	})
	sums := s.HashAggLong(doubled, 0, ColRef{Col: 1, Kind: ColDouble})
	want := map[int64]float64{}
	for i := 0; i < 10; i++ {
		want[int64(i%3)] += 2 * float64(i)
	}
	for i := 0; i < sums.NumRows(); i++ {
		r := sums.Row(i)
		if got := r.Double(1); math.Abs(got-want[r.Long(0)]) > 1e-9 {
			t.Errorf("sum[%d] = %v, want %v", r.Long(0), got, want[r.Long(0)])
		}
	}
	if sums.NumRows() != 3 {
		t.Errorf("groups = %d", sums.NumRows())
	}
}

func TestHashJoin(t *testing.T) {
	s := NewSession()
	l := NewTable(Schema{Names: []string{"k", "x"}, Kinds: []ColKind{ColLong, ColDouble}})
	r := NewTable(Schema{Names: []string{"k", "y"}, Kinds: []ColKind{ColLong, ColDouble}})
	for i := 0; i < 4; i++ {
		b := l.Append()
		b.SetLong(0, int64(i))
		b.SetDouble(1, float64(i))
		b.Finish()
	}
	for i := 2; i < 6; i++ {
		b := r.Append()
		b.SetLong(0, int64(i))
		b.SetDouble(1, float64(i*10))
		b.Finish()
	}
	j := s.HashJoinLong(l, 0, r, 0)
	if j.NumRows() != 2 {
		t.Fatalf("join rows = %d, want 2", j.NumRows())
	}
	for i := 0; i < j.NumRows(); i++ {
		row := j.Row(i)
		if row.Long(0) != row.Long(2) {
			t.Errorf("key mismatch in join output")
		}
		if row.Double(3) != row.Double(1)*10 {
			t.Errorf("joined values wrong")
		}
	}
}

func TestWordCountDFMatchesNaive(t *testing.T) {
	docs := []string{"the cat sat", "on the mat", "cat and cat"}
	s := NewSession()
	got := WordCountDF(s, docs)
	want := map[string]int64{"the": 2, "cat": 3, "sat": 1, "on": 1, "mat": 1, "and": 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
	if s.Stats.RowsEmitted == 0 || s.Stats.PlansBuilt != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestPageRankDFMatchesRDDSemantics(t *testing.T) {
	links := workload.GenGraph(workload.GraphSpec{
		Name: "t", Vertices: 30, AvgDeg: 3, Alpha: 2.2, Seed: 7,
	})
	s := NewSession()
	got := PageRankDF(s, links, 3)
	if len(got) != 30 {
		t.Fatalf("ranks for %d vertices, want 30", len(got))
	}
	for v, r := range got {
		if r < 0.15-1e-9 {
			t.Errorf("rank[%d] = %v below floor", v, r)
		}
	}
	// Plans must have been rebuilt every iteration.
	if s.Stats.PlansBuilt != 3 {
		t.Errorf("plans built = %d, want 3", s.Stats.PlansBuilt)
	}
	if s.Stats.PlanTime == 0 {
		t.Errorf("no plan time recorded")
	}
}

// TestPlanGrowthIsSuperlinear: the cumulative plan cost makes later
// iterations more expensive — the SPARK-13346 behavior.
func TestPlanGrowthIsSuperlinear(t *testing.T) {
	s := NewSession()
	var times []float64
	const rounds = 30
	for i := 0; i < rounds; i++ {
		before := s.Stats.PlanTime
		s.PlanGrow(32)
		times = append(times, float64(s.Stats.PlanTime-before))
	}
	if s.Stats.PlanNodeCost != 32*rounds {
		t.Fatalf("plan node accumulation wrong: %d", s.Stats.PlanNodeCost)
	}
	var first, second float64
	for i, v := range times {
		if i < rounds/2 {
			first += v
		} else {
			second += v
		}
	}
	if second <= first {
		t.Errorf("plan time did not grow: first half %v, second half %v", first, second)
	}
}
