// Package hadoopapps implements the paper's seven Hadoop benchmark
// programs (Table 2) over the internal/hadoop engine:
//
//	IUF — Inactive Users Filtering        (StackOverflow users)
//	UAH — Active User Activity Histogram  (StackOverflow posts)
//	SPF — Spam Posts Filtering            (StackOverflow posts)
//	UED — User Engagement Distribution    (StackOverflow users)
//	CED — Community Expert Detection      (StackOverflow posts)
//	IMC — In-Map Combiner word count      (Wikipedia docs)
//	TFC — Term Frequency Calculation      (Wikipedia docs)
//
// The programs are real-world MapReduce shapes taken from the Stack
// Overflow threads the paper cites: filters, histograms, per-user
// aggregations, and combiner-equipped word counting. Schemas and string
// UDF helpers are shared with internal/apps/sparkapps.
package hadoopapps

import (
	"repro/internal/apps/sparkapps"
	"repro/internal/engine"
	"repro/internal/hadoop"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/spark"
)

// Class aliases shared with the spark apps schema.
const (
	ClsUser      = sparkapps.ClsUser
	ClsPost      = sparkapps.ClsPost
	ClsDoc       = sparkapps.ClsDoc
	ClsWordCount = sparkapps.ClsWordCount
	ClsCountRec  = sparkapps.ClsCountRec
)

var tLong = model.Prim(model.KindLong)

// App names.
const (
	IUF = "IUF"
	UAH = "UAH"
	SPF = "SPF"
	UED = "UED"
	CED = "CED"
	IMC = "IMC"
	TFC = "TFC"
)

// AllApps lists the Table 2 programs in paper order.
var AllApps = []string{IUF, UAH, SPF, UED, CED, IMC, TFC}

// Dataset returns which synthetic dataset an app consumes:
// "stackoverflow-users", "stackoverflow-posts" or "wikipedia".
func Dataset(app string) string {
	switch app {
	case IUF, UED:
		return "stackoverflow-users"
	case UAH, SPF, CED:
		return "stackoverflow-posts"
	default:
		return "wikipedia"
	}
}

// NewProgram builds the program with UDFs for the given app registered
// and returns the program plus the job configuration template.
func NewProgram(app string) (*ir.Program, hadoop.JobConf) {
	var prog *ir.Program
	var conf hadoop.JobConf
	switch app {
	case IUF:
		prog = sparkapps.NewProgram(ClsUser)
		registerIUF(prog)
		conf = hadoop.JobConf{
			Name: app, MapDriver: "iufMapStage", ReduceDriver: "iufReduceStage",
			InClass: ClsUser, MapOutClass: ClsUser, OutClass: ClsUser, KeyField: "id",
		}
	case UAH:
		prog = sparkapps.NewProgram(ClsPost, ClsCountRec)
		registerUAH(prog)
		conf = hadoop.JobConf{
			Name: app, MapDriver: "uahMapStage", ReduceDriver: "countReduceStage",
			InClass: ClsPost, MapOutClass: ClsCountRec, OutClass: ClsCountRec, KeyField: "k",
		}
	case SPF:
		prog = sparkapps.NewProgram(ClsPost, ClsCountRec)
		registerSPF(prog)
		conf = hadoop.JobConf{
			Name: app, MapDriver: "spfMapStage", ReduceDriver: "countReduceStage",
			InClass: ClsPost, MapOutClass: ClsCountRec, OutClass: ClsCountRec, KeyField: "k",
		}
	case UED:
		prog = sparkapps.NewProgram(ClsUser, ClsCountRec)
		registerUED(prog)
		conf = hadoop.JobConf{
			Name: app, MapDriver: "uedMapStage", ReduceDriver: "countReduceStage",
			InClass: ClsUser, MapOutClass: ClsCountRec, OutClass: ClsCountRec, KeyField: "k",
		}
	case CED:
		prog = sparkapps.NewProgram(ClsPost, ClsCountRec)
		registerCED(prog)
		conf = hadoop.JobConf{
			Name: app, MapDriver: "cedMapStage", ReduceDriver: "countReduceStage",
			InClass: ClsPost, MapOutClass: ClsCountRec, OutClass: ClsCountRec, KeyField: "k",
		}
	case IMC:
		prog = sparkapps.NewProgram(ClsDoc, ClsWordCount)
		sparkapps.WordCount{}.Register(prog)
		conf = hadoop.JobConf{
			Name: app, MapDriver: "wcSplitStage", ReduceDriver: "wcCombineStage",
			CombineDriver: "wcCombineStage",
			InClass:       ClsDoc, MapOutClass: ClsWordCount, OutClass: ClsWordCount, KeyField: "word",
		}
	case TFC:
		prog = sparkapps.NewProgram(ClsDoc, ClsWordCount)
		sparkapps.WordCount{}.Register(prog)
		conf = hadoop.JobConf{
			Name: app, MapDriver: "wcSplitStage", ReduceDriver: "wcCombineStage",
			InClass: ClsDoc, MapOutClass: ClsWordCount, OutClass: ClsWordCount, KeyField: "word",
		}
	default:
		panic("hadoopapps: unknown app " + app)
	}
	return prog, conf
}

// Run builds the program, compiles it, and executes the job.
func Run(app string, mode engine.Mode, splits [][]byte, mutate func(*hadoop.JobConf)) (*hadoop.Result, *engine.Compiled, error) {
	prog, conf := NewProgram(app)
	conf.Mode = mode
	if mutate != nil {
		mutate(&conf)
	}
	comp := engine.Compile(prog)
	res, err := hadoop.Run(comp, conf, splits)
	return res, comp, err
}

// registerIUF: keep users active in the last 90 days with a non-empty
// profile (the profile scan is the text-parsing work real user-table
// mappers do on every row); the reducer is a pass-through.
func registerIUF(prog *ir.Program) {
	b := ir.NewFuncBuilder(prog, "iufMap", model.Type{})
	u := b.Param("u", model.Object(ClsUser))
	la := b.Load(u, "lastActive")
	threshold := b.IConst(90)
	b.If(ir.CmpLE, la, threshold, func() {
		about := b.Load(u, "about")
		words := sparkapps.CountWords(b, about)
		zero := b.IConst(0)
		b.If(ir.CmpGT, words, zero, func() {
			out := b.New(ClsUser)
			id := b.Load(u, "id")
			posts := b.Load(u, "posts")
			rep := b.Load(u, "reputation")
			b.Store(out, "id", id)
			b.Store(out, "lastActive", la)
			b.Store(out, "posts", posts)
			b.Store(out, "reputation", rep)
			cp := sparkapps.CopyString(b, about)
			b.Store(out, "about", cp)
			b.EmitRecord(out)
		}, nil)
	}, nil)
	b.Ret(nil)
	b.Done()

	// Pass-through reduce: the fold never runs for singleton groups, so
	// reuse the generic reduce driver with an identity-preserving combine.
	cb := ir.NewFuncBuilder(prog, "iufCombine", model.Object(ClsUser))
	a := cb.Param("a", model.Object(ClsUser))
	_ = cb.Param("b", model.Object(ClsUser))
	out := cb.New(ClsUser)
	for _, f := range []string{"id", "lastActive", "posts", "reputation"} {
		v := cb.Load(a, f)
		cb.Store(out, f, v)
	}
	ab := cb.Load(a, "about")
	cp := sparkapps.CopyString(cb, ab)
	cb.Store(out, "about", cp)
	cb.Ret(out)
	cb.Done()

	spark.BuildMapDriver(prog, "iufMapStage", "iufMap", ClsUser)
	spark.BuildReduceDriver(prog, "iufReduceStage", "iufCombine", ClsUser)
}

// registerCountReduce defines the shared CountRec sum reducer.
func registerCountReduce(prog *ir.Program) {
	if _, ok := prog.Funcs["countCombine"]; ok {
		return
	}
	cb := ir.NewFuncBuilder(prog, "countCombine", model.Object(ClsCountRec))
	a := cb.Param("a", model.Object(ClsCountRec))
	bb := cb.Param("b", model.Object(ClsCountRec))
	k := cb.Load(a, "k")
	s := cb.Bin(ir.OpAdd, cb.Load(a, "n"), cb.Load(bb, "n"))
	out := cb.New(ClsCountRec)
	cb.Store(out, "k", k)
	cb.Store(out, "n", s)
	cb.Ret(out)
	cb.Done()
	spark.BuildReduceDriver(prog, "countReduceStage", "countCombine", ClsCountRec)
}

// registerUAH: histogram of posting activity by hour of day. The mapper
// tokenizes the post body (empty posts do not count as activity).
func registerUAH(prog *ir.Program) {
	registerCountReduce(prog)
	b := ir.NewFuncBuilder(prog, "uahMap", model.Type{})
	p := b.Param("p", model.Object(ClsPost))
	hour := b.Load(p, "hour")
	body := b.Load(p, "body")
	words := sparkapps.CountWords(b, body)
	zero := b.IConst(0)
	one := b.IConst(1)
	b.If(ir.CmpGT, words, zero, func() {
		out := b.New(ClsCountRec)
		b.Store(out, "k", hour)
		b.Store(out, "n", one)
		b.EmitRecord(out)
	}, nil)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "uahMapStage", "uahMap", ClsPost)
}

// registerSPF: count spam posts (negative score and few words) per user.
// Tokenizing the body is the per-record parsing work.
func registerSPF(prog *ir.Program) {
	registerCountReduce(prog)
	b := ir.NewFuncBuilder(prog, "spfMap", model.Type{})
	p := b.Param("p", model.Object(ClsPost))
	score := b.Load(p, "score")
	body := b.Load(p, "body")
	words := sparkapps.CountWords(b, body)
	zero := b.IConst(0)
	short := b.IConst(5)
	one := b.IConst(1)
	b.If(ir.CmpLT, score, zero, func() {
		b.If(ir.CmpLT, words, short, func() {
			user := b.Load(p, "user")
			out := b.New(ClsCountRec)
			b.Store(out, "k", user)
			b.Store(out, "n", one)
			b.EmitRecord(out)
		}, nil)
	}, nil)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "spfMapStage", "spfMap", ClsPost)
}

// registerUED: distribution of users over engagement buckets; engagement
// combines the post count with the scanned profile completeness.
func registerUED(prog *ir.Program) {
	registerCountReduce(prog)
	b := ir.NewFuncBuilder(prog, "uedMap", model.Type{})
	u := b.Param("u", model.Object(ClsUser))
	posts := b.Load(u, "posts")
	about := b.Load(u, "about")
	words := sparkapps.CountWords(b, about)
	eng := b.Bin(ir.OpAdd, posts, words)
	ten := b.IConst(10)
	bucket := b.Bin(ir.OpDiv, eng, ten)
	one := b.IConst(1)
	out := b.New(ClsCountRec)
	b.Store(out, "k", bucket)
	b.Store(out, "n", one)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "uedMapStage", "uedMap", ClsUser)
}

// registerCED: total contribution score per user, weighting the vote
// score by the post's scanned length; experts are thresholded by the
// driver on the output.
func registerCED(prog *ir.Program) {
	registerCountReduce(prog)
	b := ir.NewFuncBuilder(prog, "cedMap", model.Type{})
	p := b.Param("p", model.Object(ClsPost))
	user := b.Load(p, "user")
	score := b.Load(p, "score")
	body := b.Load(p, "body")
	words := sparkapps.CountWords(b, body)
	total := b.Bin(ir.OpAdd, score, words)
	out := b.New(ClsCountRec)
	b.Store(out, "k", user)
	b.Store(out, "n", total)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "cedMapStage", "cedMap", ClsPost)
}
