package hadoopapps

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/hadoop"
	"repro/internal/serde"
	"repro/internal/workload"
)

func splitsFor(t *testing.T, comp *engine.Compiled, app string, n int) [][]byte {
	t.Helper()
	var objs []serde.Obj
	var class string
	switch Dataset(app) {
	case "stackoverflow-users":
		objs = workload.GenUsers(60, 3)
		class = ClsUser
	case "stackoverflow-posts":
		objs = workload.GenPosts(25, 4, 3)
		class = ClsPost
	default:
		objs = workload.GenDocs(16, 10, 3)
		class = ClsDoc
	}
	parts, err := workload.Encode(comp.Codec, class, objs, n)
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func decodeOut(t *testing.T, comp *engine.Compiled, class string, buf []byte) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for off := 0; off < len(buf); {
		v, next, err := comp.Codec.Decode(class, buf, off)
		if err != nil {
			t.Fatal(err)
		}
		o := v.(serde.Obj)
		switch class {
		case ClsCountRec:
			out[string(rune(o["k"].(int64)))+"#"] += o["n"].(int64)
		case ClsWordCount:
			out[o["word"].(string)] += o["n"].(int64)
		case ClsUser:
			out[string(rune(o["id"].(int64)))+"u"]++
		}
		off = next
	}
	return out
}

// TestAllAppsBothModes runs each Table 2 program in both execution modes
// and checks result equality and abort-freedom.
func TestAllAppsBothModes(t *testing.T) {
	for _, app := range AllApps {
		app := app
		t.Run(app, func(t *testing.T) {
			var results []map[string]int64
			for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
				prog, conf := NewProgram(app)
				conf.Mode = mode
				conf.Workers = 2
				conf.Reducers = 2
				comp := engine.Compile(prog)
				splits := splitsFor(t, comp, app, 2)
				res, err := hadoop.Run(comp, conf, splits)
				if err != nil {
					t.Fatalf("%s %v: %v", app, mode, err)
				}
				if res.Stats.Aborts != 0 {
					t.Errorf("%s %v: %d aborts", app, mode, res.Stats.Aborts)
				}
				if mode == engine.Baseline && res.Stats.Deser == 0 {
					t.Errorf("%s baseline paid no deserialization", app)
				}
				results = append(results, decodeOut(t, comp, conf.OutClass, res.Out))
			}
			if !reflect.DeepEqual(results[0], results[1]) {
				t.Fatalf("%s results differ:\nbaseline %v\ngerenuk  %v", app, results[0], results[1])
			}
			if len(results[0]) == 0 {
				t.Fatalf("%s produced no output", app)
			}
		})
	}
}

// TestUAHHistogramIsComplete: every post lands in exactly one hour
// bucket and totals match.
func TestUAHHistogramIsComplete(t *testing.T) {
	posts := workload.GenPosts(25, 4, 3)
	prog, conf := NewProgram(UAH)
	conf.Mode = engine.Gerenuk
	comp := engine.Compile(prog)
	splits, err := workload.Encode(comp.Codec, ClsPost, posts, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hadoop.Run(comp, conf, splits)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for off := 0; off < len(res.Out); {
		v, next, err := comp.Codec.Decode(ClsCountRec, res.Out, off)
		if err != nil {
			t.Fatal(err)
		}
		o := v.(serde.Obj)
		if h := o["k"].(int64); h < 0 || h > 23 {
			t.Errorf("hour bucket %d out of range", h)
		}
		total += o["n"].(int64)
		off = next
	}
	if total != int64(len(posts)) {
		t.Errorf("histogram total %d != %d posts", total, len(posts))
	}
}

// TestIUFFiltersInactive: output contains only users active within 90
// days.
func TestIUFFiltersInactive(t *testing.T) {
	users := workload.GenUsers(80, 5)
	active := 0
	for _, u := range users {
		if u["lastActive"].(int64) <= 90 {
			active++
		}
	}
	prog, conf := NewProgram(IUF)
	conf.Mode = engine.Gerenuk
	comp := engine.Compile(prog)
	splits, err := workload.Encode(comp.Codec, ClsUser, users, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hadoop.Run(comp, conf, splits)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for off := 0; off < len(res.Out); {
		v, next, err := comp.Codec.Decode(ClsUser, res.Out, off)
		if err != nil {
			t.Fatal(err)
		}
		if la := v.(serde.Obj)["lastActive"].(int64); la > 90 {
			t.Errorf("inactive user in output: lastActive=%d", la)
		}
		n++
		off = next
	}
	if n != active {
		t.Errorf("output %d users, want %d active", n, active)
	}
}

// TestIMCCombinerReducesShuffleVolume: with the in-map combiner, the
// reduce side sees fewer records than the raw map output.
func TestIMCCombinerReducesShuffleVolume(t *testing.T) {
	run := func(app string) int64 {
		prog, conf := NewProgram(app)
		conf.Mode = engine.Baseline
		comp := engine.Compile(prog)
		splits, err := workload.Encode(comp.Codec, ClsDoc, workload.GenDocs(30, 20, 3), 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hadoop.Run(comp, conf, splits)
		if err != nil {
			t.Fatal(err)
		}
		return res.ShuffleBytes
	}
	withCombiner := run(IMC)
	without := run(TFC)
	if withCombiner >= without {
		t.Errorf("IMC shuffled %d bytes, TFC shuffled %d: combiner did not reduce volume",
			withCombiner, without)
	}
}
