// Package sparkapps implements the paper's Spark benchmark programs over
// the internal/spark engine: PageRank (PR), KMeans (KM), Logistic
// Regression (LR), Chi-Square Selector (CS) and Gradient Boosting
// Classification (GB) from Table 1, the graph programs ConnectedComponents
// (CC) and TriangleCounting (TC) used by Figure 5, WordCount (WC) for the
// Tungsten comparison of Figure 8, and the StackOverflow Analytics
// application (SOA) whose Vector-resize aborts drive Figure 10(a).
//
// Every UDF is written in the IR, so the Gerenuk compiler analyzes and
// transforms real code paths — including the paper's motivating complex
// data types (LabeledPoint, DenseVector, SparseVector: 3-4 levels of
// objects connected by pointers on the heap path).
package sparkapps

import (
	"repro/internal/ir"
	"repro/internal/model"
)

// Class names shared by the applications.
const (
	ClsLinks       = "Links"
	ClsEdge        = "Edge"
	ClsRank        = "Rank"
	ClsContrib     = "Contrib"
	ClsLabel       = "VLabel"
	ClsTriRec      = "TriRec"
	ClsCountRec    = "CountRec"
	ClsDenseVector = "DenseVector"
	ClsLabeled     = "LabeledPoint"
	ClsSparseVec   = "SparseVector"
	ClsSparsePoint = "SparseLabeledPoint"
	ClsClusterStat = "ClusterStat"
	ClsGrad        = "Grad"
	ClsFeatObs     = "FeatObs"
	ClsSplitStat   = "SplitStat"
	ClsDoc         = "Doc"
	ClsWordCount   = "WordCount"
	ClsPost        = "Post"
	ClsAccount     = "Account"
	ClsUser        = "User"
	ClsString      = model.StringClassName
)

// NewProgram builds a program with the full application schema. topTypes
// lists the classes the job annotates as top-level data types (section
// 3.1's second user input).
func NewProgram(topTypes ...string) *ir.Program {
	reg := model.NewRegistry()
	reg.DefineString()
	long := model.Prim(model.KindLong)
	dbl := model.Prim(model.KindDouble)

	reg.Define(model.ClassDef{Name: ClsLinks, Fields: []model.FieldDef{
		{Name: "src", Type: long},
		{Name: "dsts", Type: model.ArrayOf(long)},
	}})
	reg.Define(model.ClassDef{Name: ClsEdge, Fields: []model.FieldDef{
		{Name: "src", Type: long},
		{Name: "dst", Type: long},
		{Name: "deg", Type: long},
	}})
	reg.Define(model.ClassDef{Name: ClsRank, Fields: []model.FieldDef{
		{Name: "v", Type: long},
		{Name: "r", Type: dbl},
	}})
	reg.Define(model.ClassDef{Name: ClsContrib, Fields: []model.FieldDef{
		{Name: "v", Type: long},
		{Name: "c", Type: dbl},
	}})
	reg.Define(model.ClassDef{Name: ClsLabel, Fields: []model.FieldDef{
		{Name: "v", Type: long},
		{Name: "l", Type: long},
	}})
	reg.Define(model.ClassDef{Name: ClsTriRec, Fields: []model.FieldDef{
		{Name: "k", Type: long},
		{Name: "w", Type: long},
		{Name: "e", Type: long},
	}})
	reg.Define(model.ClassDef{Name: ClsCountRec, Fields: []model.FieldDef{
		{Name: "k", Type: long},
		{Name: "n", Type: long},
	}})
	reg.Define(model.ClassDef{Name: ClsDenseVector, Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "values", Type: model.ArrayOf(dbl)},
	}})
	reg.Define(model.ClassDef{Name: ClsLabeled, Fields: []model.FieldDef{
		{Name: "label", Type: dbl},
		{Name: "features", Type: model.Object(ClsDenseVector)},
	}})
	reg.Define(model.ClassDef{Name: ClsSparseVec, Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "indices", Type: model.ArrayOf(long)},
		{Name: "values", Type: model.ArrayOf(dbl)},
	}})
	reg.Define(model.ClassDef{Name: ClsSparsePoint, Fields: []model.FieldDef{
		{Name: "label", Type: dbl},
		{Name: "features", Type: model.Object(ClsSparseVec)},
	}})
	reg.Define(model.ClassDef{Name: ClsClusterStat, Fields: []model.FieldDef{
		{Name: "cluster", Type: long},
		{Name: "count", Type: long},
		{Name: "sums", Type: model.ArrayOf(dbl)},
	}})
	reg.Define(model.ClassDef{Name: ClsGrad, Fields: []model.FieldDef{
		{Name: "k", Type: long},
		{Name: "n", Type: long},
		{Name: "g", Type: model.ArrayOf(dbl)},
	}})
	reg.Define(model.ClassDef{Name: ClsFeatObs, Fields: []model.FieldDef{
		{Name: "k", Type: long},
		{Name: "n", Type: long},
	}})
	reg.Define(model.ClassDef{Name: ClsSplitStat, Fields: []model.FieldDef{
		{Name: "k", Type: long},
		{Name: "n", Type: long},
		{Name: "sum", Type: dbl},
	}})
	reg.Define(model.ClassDef{Name: ClsDoc, Fields: []model.FieldDef{
		{Name: "text", Type: model.Object(ClsString)},
	}})
	reg.Define(model.ClassDef{Name: ClsWordCount, Fields: []model.FieldDef{
		{Name: "word", Type: model.Object(ClsString)},
		{Name: "n", Type: long},
	}})
	reg.Define(model.ClassDef{Name: ClsPost, Fields: []model.FieldDef{
		{Name: "user", Type: long},
		{Name: "score", Type: long},
		{Name: "hour", Type: long},
		{Name: "body", Type: model.Object(ClsString)},
	}})
	reg.Define(model.ClassDef{Name: ClsAccount, Fields: []model.FieldDef{
		{Name: "user", Type: long},
		{Name: "cap", Type: long},
		{Name: "n", Type: long},
		{Name: "posts", Type: model.ArrayOf(model.Object(ClsString))},
	}})
	reg.Define(model.ClassDef{Name: ClsUser, Fields: []model.FieldDef{
		{Name: "id", Type: long},
		{Name: "lastActive", Type: long},
		{Name: "posts", Type: long},
		{Name: "reputation", Type: long},
		{Name: "about", Type: model.Object(ClsString)},
	}})

	prog := ir.NewProgram(reg)
	prog.TopTypes = topTypes
	return prog
}

// long and dbl are builder shorthands.
var (
	tLong = model.Prim(model.KindLong)
	tDbl  = model.Prim(model.KindDouble)
	tChar = model.Prim(model.KindChar)
)

// CopyString emits IR that clones string src into a fresh String object
// (construction-order compatible for the native path) and returns it.
func CopyString(b *ir.FB, src *ir.Var) *ir.Var {
	out := b.New(ClsString)
	n := b.Native("length", tLong, src)
	chars := b.NewArr(tChar, n)
	b.For(n, func(k *ir.Var) {
		ch := b.Native("charAt", tLong, src, k)
		b.SetElem(chars, k, ch)
	})
	b.Store(out, "chars", chars)
	return out
}

// CountWords emits IR that scans string s and returns the number of
// space-separated words — the tokenization loop real text-processing
// mappers run on every record.
func CountWords(b *ir.FB, s *ir.Var) *ir.Var {
	n := b.Native("length", tLong, s)
	space := b.IConst(int64(' '))
	one := b.IConst(1)
	zero := b.IConst(0)
	words := b.Local("words", tLong)
	b.Assign(words, zero)
	inWord := b.Local("inWord", tLong)
	b.Assign(inWord, zero)
	i := b.Local("wi", tLong)
	b.Assign(i, zero)
	b.While(ir.CmpLT, i, n, func() {
		ch := b.Native("charAt", tLong, s, i)
		b.If(ir.CmpEQ, ch, space, func() {
			b.Assign(inWord, zero)
		}, func() {
			b.If(ir.CmpEQ, inWord, zero, func() {
				b.BinTo(words, ir.OpAdd, words, one)
				b.Assign(inWord, one)
			}, nil)
		})
		b.BinTo(i, ir.OpAdd, i, one)
	})
	return words
}

// copyDoubles emits IR that copies a double[] into a fresh array.
func copyDoubles(b *ir.FB, src *ir.Var) *ir.Var {
	n := b.Len(src)
	arr := b.NewArr(tDbl, n)
	b.For(n, func(k *ir.Var) {
		x := b.Elem(src, k)
		b.SetElem(arr, k, x)
	})
	return arr
}
