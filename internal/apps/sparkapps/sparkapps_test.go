package sparkapps

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/spark"
	"repro/internal/workload"
)

func makeContext(t *testing.T, mode engine.Mode, topTypes ...string) (*spark.Context, *engine.Compiled) {
	t.Helper()
	prog := NewProgram(topTypes...)
	comp := engine.Compile(prog)
	ctx := spark.NewContext(comp, mode)
	ctx.Workers = 2
	ctx.Partitions = 2
	ctx.ClosureBytes = 512
	return ctx, comp
}

func graphRDD(t *testing.T, ctx *spark.Context, comp *engine.Compiled, vertices int) *spark.RDD {
	t.Helper()
	links := workload.GenGraph(workload.GraphSpec{
		Name: "test", Vertices: vertices, AvgDeg: 3, Alpha: 2.2, Seed: 7,
	})
	parts, err := workload.Encode(comp.Codec, ClsLinks, workload.LinksObjs(links), ctx.Partitions)
	if err != nil {
		t.Fatal(err)
	}
	return ctx.Parallelize(ClsLinks, parts)
}

func TestPageRankBothModes(t *testing.T) {
	var results []map[int64]float64
	var stats []int64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsLinks, ClsRank, ClsContrib)
		pr := PageRank{Iters: 3}
		pr.Register(comp.Prog)
		links := graphRDD(t, ctx, comp, 40)
		ranks, err := pr.Run(ctx, links)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		m, err := DecodeRanks(comp.Codec, ranks)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, m)
		stats = append(stats, ctx.Stats.Aborts)
	}
	if stats[1] != 0 {
		t.Errorf("gerenuk PageRank aborted %d times", stats[1])
	}
	if len(results[0]) != 40 {
		t.Errorf("expected 40 ranks, got %d", len(results[0]))
	}
	for v, r := range results[0] {
		if g, ok := results[1][v]; !ok || math.Abs(g-r) > 1e-9 {
			t.Fatalf("rank of %d differs: %v vs %v", v, r, results[1][v])
		}
		if r < 0.15-1e-9 {
			t.Errorf("rank of %d below damping floor: %v", v, r)
		}
	}
}

func TestConnectedComponentsBothModes(t *testing.T) {
	var results []map[int64]int64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsLinks, ClsLabel)
		cc := ConnectedComponents{Iters: 4}
		cc.Register(comp.Prog)
		links := graphRDD(t, ctx, comp, 30)
		labels, err := cc.Run(ctx, links)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		m, err := DecodeLabels(comp.Codec, labels)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, m)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("CC labels differ between modes")
	}
	if len(results[0]) != 30 {
		t.Errorf("expected 30 labels, got %d", len(results[0]))
	}
	// Labels must be non-increasing relative to vertex ids (min-propagation).
	for v, l := range results[0] {
		if l > v {
			t.Errorf("label(%d) = %d exceeds vertex id", v, l)
		}
	}
}

func TestTriangleCountingBothModes(t *testing.T) {
	var counts []int64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsLinks, ClsTriRec, ClsCountRec)
		tc := TriangleCounting{Vertices: 1000, MaxWedges: 64}
		tc.Register(comp.Prog)
		links := graphRDD(t, ctx, comp, 25)
		n, err := tc.Run(ctx, links)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		counts = append(counts, n)
	}
	if counts[0] != counts[1] {
		t.Fatalf("triangle counts differ: %d vs %d", counts[0], counts[1])
	}
}

func TestKMeansBothModes(t *testing.T) {
	const k, dim = 3, 4
	points, _ := workload.GenDensePoints(90, dim, k, 5)
	var all [][][]float64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsDenseVector, ClsClusterStat)
		km := KMeans{K: k, Dim: dim, Iters: 3}
		km.Register(comp.Prog)
		parts, err := workload.Encode(comp.Codec, ClsDenseVector, points, ctx.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		rdd := ctx.Parallelize(ClsDenseVector, parts)
		initial := [][]float64{
			{10, 10, 10, 10}, {50, 50, 50, 50}, {90, 90, 90, 90},
		}
		centers, err := km.Run(ctx, rdd, initial)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		all = append(all, centers)
		if ctx.Stats.Aborts != 0 {
			t.Errorf("%v: kmeans aborted", mode)
		}
	}
	for j := range all[0] {
		for d := range all[0][j] {
			if math.Abs(all[0][j][d]-all[1][j][d]) > 1e-9 {
				t.Fatalf("centers differ at [%d][%d]: %v vs %v",
					j, d, all[0][j][d], all[1][j][d])
			}
		}
	}
}

func TestLogRegBothModes(t *testing.T) {
	const dim = 5
	points, trueW := workload.GenLabeledPoints(200, dim, 9)
	var weights [][]float64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsLabeled, ClsGrad)
		lr := LogReg{Dim: dim, Iters: 4, Rate: 1.0}
		lr.Register(comp.Prog)
		parts, err := workload.Encode(comp.Codec, ClsLabeled, points, ctx.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		w, err := lr.Run(ctx, ctx.Parallelize(ClsLabeled, parts))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		weights = append(weights, w)
	}
	if len(weights[0]) != dim {
		t.Fatalf("weight dim %d", len(weights[0]))
	}
	for d := range weights[0] {
		if math.Abs(weights[0][d]-weights[1][d]) > 1e-9 {
			t.Fatalf("weights differ at %d: %v vs %v", d, weights[0][d], weights[1][d])
		}
	}
	// Direction check: learned weights should correlate with the truth.
	dot := 0.0
	for d := range trueW {
		dot += trueW[d] * weights[0][d]
	}
	if dot <= 0 {
		t.Errorf("learned weights anti-correlated with truth (dot=%v)", dot)
	}
}

func TestChiSqBothModes(t *testing.T) {
	points := workload.GenSparsePoints(120, 10, 3, 21)
	var stats []map[int64]float64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsSparsePoint, ClsFeatObs)
		cs := ChiSqSelector{Dim: 10}
		cs.Register(comp.Prog)
		parts, err := workload.Encode(comp.Codec, ClsSparsePoint, points, ctx.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cs.Run(ctx, ctx.Parallelize(ClsSparsePoint, parts))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		stats = append(stats, m)
	}
	if !reflect.DeepEqual(stats[0], stats[1]) {
		t.Fatalf("chi-square stats differ between modes")
	}
	if len(stats[0]) == 0 {
		t.Errorf("no features observed")
	}
}

func TestGBoostBothModes(t *testing.T) {
	points, _ := workload.GenLabeledPoints(150, 4, 33)
	var models [][]Stump
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsLabeled, ClsSplitStat)
		gb := GBoost{Dim: 4, Rounds: 3, Buckets: 8, Shrinkage: 0.5, Range: 4}
		gb.Register(comp.Prog)
		parts, err := workload.Encode(comp.Codec, ClsLabeled, points, ctx.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		mdl, err := gb.Run(ctx, ctx.Parallelize(ClsLabeled, parts))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		models = append(models, mdl)
	}
	if !reflect.DeepEqual(models[0], models[1]) {
		t.Fatalf("models differ:\n%v\n%v", models[0], models[1])
	}
	if len(models[0]) == 0 {
		t.Errorf("empty model")
	}
}

func TestWordCountBothModes(t *testing.T) {
	docs := workload.GenDocs(20, 12, 3)
	var counts []map[string]int64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsDoc, ClsWordCount)
		wc := WordCount{}
		wc.Register(comp.Prog)
		parts, err := workload.Encode(comp.Codec, ClsDoc, docs, ctx.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		out, err := wc.Run(ctx, ctx.Parallelize(ClsDoc, parts))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		m, err := DecodeCounts(comp.Codec, out)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, m)
		if mode == engine.Gerenuk && ctx.Stats.Aborts != 0 {
			t.Errorf("wordcount aborted %d times", ctx.Stats.Aborts)
		}
	}
	if !reflect.DeepEqual(counts[0], counts[1]) {
		t.Fatalf("word counts differ between modes")
	}
	total := int64(0)
	for _, n := range counts[0] {
		total += n
	}
	if total != 20*12 {
		t.Errorf("total words = %d, want 240", total)
	}
}

func TestSOAAbortsOnResize(t *testing.T) {
	posts := workload.GenPosts(30, 6, 17)
	var results []map[int64]int64
	var aborts []int64
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		ctx, comp := makeContext(t, mode, ClsPost, ClsAccount)
		soa := StackOverflowAnalytics{InitialCap: 4}
		soa.Register(comp.Prog)
		parts, err := workload.Encode(comp.Codec, ClsPost, posts, ctx.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		accounts, err := soa.Run(ctx, ctx.Parallelize(ClsPost, parts))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		m, err := DecodeAccounts(comp.Codec, accounts)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, m)
		aborts = append(aborts, ctx.Stats.Aborts)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("account summaries differ between modes")
	}
	// The compiler must have found the resize violation, and the heavy
	// users (Zipf head exceeds the initial capacity) must trigger aborts.
	if aborts[1] == 0 {
		t.Errorf("SOA never aborted despite vector resizes")
	}
	// Total posts must be preserved.
	total := int64(0)
	for _, n := range results[0] {
		total += n
	}
	if total != int64(len(posts)) {
		t.Errorf("posts preserved = %d, want %d", total, len(posts))
	}
}

func TestSOAViolationIsStaticallyDetected(t *testing.T) {
	prog := NewProgram(ClsPost, ClsAccount)
	soa := StackOverflowAnalytics{InitialCap: 4}
	soa.Register(prog)
	comp := engine.Compile(prog)
	if err := comp.CompileDriver("soaCombineStage"); err != nil {
		t.Fatal(err)
	}
	ser := comp.SERs["soaCombineStage"]
	if !ser.Transformable {
		t.Fatalf("SOA combine not transformable: %s", ser.Reason)
	}
	if len(ser.Violations) == 0 {
		t.Fatalf("no violation detected at the Vector resize")
	}
}
