package sparkapps

import (
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

// WordCount (WC) is the non-iterative program added for the Tungsten
// comparison (Figure 8(b)): split documents into words, count per word.
type WordCount struct{}

// Register defines the WC UDFs and drivers: the splitter builds word
// strings character by character (whitelisted native length/charAt), the
// combiner sums counts while cloning the word.
func (WordCount) Register(prog *ir.Program) {
	b := ir.NewFuncBuilder(prog, "wcSplit", model.Type{})
	doc := b.Param("doc", model.Object(ClsDoc))
	text := b.Load(doc, "text")
	n := b.Native("length", tLong, text)
	space := b.IConst(int64(' '))
	one := b.IConst(1)
	zero := b.IConst(0)
	start := b.Local("start", tLong)
	b.Assign(start, zero)
	i := b.Local("i", tLong)
	b.Assign(i, zero)
	flush := func(end *ir.Var) {
		wlen := b.Bin(ir.OpSub, end, start)
		b.If(ir.CmpGT, wlen, zero, func() {
			out := b.New(ClsWordCount)
			word := b.New(ClsString)
			chars := b.NewArr(tChar, wlen)
			b.For(wlen, func(k *ir.Var) {
				pos := b.Bin(ir.OpAdd, start, k)
				ch := b.Native("charAt", tLong, text, pos)
				b.SetElem(chars, k, ch)
			})
			b.Store(word, "chars", chars)
			b.Store(out, "word", word)
			b.Store(out, "n", one)
			b.EmitRecord(out)
		}, nil)
	}
	b.While(ir.CmpLT, i, n, func() {
		ch := b.Native("charAt", tLong, text, i)
		b.If(ir.CmpEQ, ch, space, func() {
			flush(i)
			next := b.Bin(ir.OpAdd, i, one)
			b.Assign(start, next)
		}, nil)
		b.BinTo(i, ir.OpAdd, i, one)
	})
	flush(n)
	b.Ret(nil)
	b.Done()

	cb := ir.NewFuncBuilder(prog, "wcCombine", model.Object(ClsWordCount))
	a := cb.Param("a", model.Object(ClsWordCount))
	bb := cb.Param("b", model.Object(ClsWordCount))
	wa := cb.Load(a, "word")
	sum := cb.Bin(ir.OpAdd, cb.Load(a, "n"), cb.Load(bb, "n"))
	out := cb.New(ClsWordCount)
	word := CopyString(cb, wa)
	cb.Store(out, "word", word)
	cb.Store(out, "n", sum)
	cb.Ret(out)
	cb.Done()

	spark.BuildMapDriver(prog, "wcSplitStage", "wcSplit", ClsDoc)
	spark.BuildReduceDriver(prog, "wcCombineStage", "wcCombine", ClsWordCount)
}

// Run executes WordCount and returns the counts RDD.
func (w WordCount) Run(ctx *spark.Context, docs *spark.RDD) (*spark.RDD, error) {
	words, err := docs.MapPartitions("wcSplitStage", ClsWordCount)
	if err != nil {
		return nil, err
	}
	return words.ReduceByKey("wcCombineStage", "word")
}

// DecodeCounts converts a counts RDD to a map.
func DecodeCounts(c *serde.Codec, counts *spark.RDD) (map[string]int64, error) {
	out := map[string]int64{}
	buf := counts.CollectBytes()
	for off := 0; off < len(buf); {
		v, next, err := c.Decode(ClsWordCount, buf, off)
		if err != nil {
			return nil, err
		}
		o := v.(serde.Obj)
		out[o["word"].(string)] += o["n"].(int64)
		off = next
	}
	return out, nil
}
