package sparkapps

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/spark"
	"repro/internal/tungsten"
)

// TungstenPageRank runs PageRank the DataFrame/Tungsten way on the same
// execution substrate as the other two systems (the native path — rows
// are native, like UnsafeRow), with Tungsten's structural costs:
//
//   - complex types cannot live in rows, so the adjacency lists are
//     exploded into flat Edge{src,dst,deg} rows (a conversion stage) and
//     every iteration joins the full edge table;
//   - zero-contribution rows are materialized per iteration to keep
//     rank-less vertices alive (DataFrame union, an extra stage);
//   - Catalyst re-plans the growing query every iteration (the
//     SPARK-13346 cost, charged through tungsten.Session.PlanGrow).
type TungstenPageRank struct {
	Iters int
}

// Register defines the flat-schema UDFs and stage drivers.
func (t TungstenPageRank) Register(prog *ir.Program) {
	// tpExplode(links): Links -> one Edge row per neighbor.
	b := ir.NewFuncBuilder(prog, "tpExplode", model.Type{})
	l := b.Param("l", model.Object(ClsLinks))
	src := b.Load(l, "src")
	dsts := b.Load(l, "dsts")
	n := b.Len(dsts)
	b.For(n, func(i *ir.Var) {
		d := b.Elem(dsts, i)
		e := b.New(ClsEdge)
		b.Store(e, "src", src)
		b.Store(e, "dst", d)
		b.Store(e, "deg", n)
		b.EmitRecord(e)
	})
	b.Ret(nil)
	b.Done()

	// tpInit(links): rank 1 per vertex.
	ib := ir.NewFuncBuilder(prog, "tpInit", model.Type{})
	il := ib.Param("l", model.Object(ClsLinks))
	isrc := ib.Load(il, "src")
	one := ib.FConst(1)
	ro := ib.New(ClsRank)
	ib.Store(ro, "v", isrc)
	ib.Store(ro, "r", one)
	ib.EmitRecord(ro)
	ib.Ret(nil)
	ib.Done()

	// tpJoin(rank, edge): contrib = rank/deg to the edge destination.
	jb := ir.NewFuncBuilder(prog, "tpJoin", model.Type{})
	jr := jb.Param("r", model.Object(ClsRank))
	je := jb.Param("e", model.Object(ClsEdge))
	rank := jb.Load(jr, "r")
	dst := jb.Load(je, "dst")
	deg := jb.Load(je, "deg")
	degF := jb.Un(ir.OpI2D, deg)
	share := jb.Bin(ir.OpDiv, rank, degF)
	c := jb.New(ClsContrib)
	jb.Store(c, "v", dst)
	jb.Store(c, "c", share)
	jb.EmitRecord(c)
	jb.Ret(nil)
	jb.Done()

	// tpZero(rank): the zero-contribution row per vertex.
	zb := ir.NewFuncBuilder(prog, "tpZero", model.Type{})
	zr := zb.Param("r", model.Object(ClsRank))
	zv := zb.Load(zr, "v")
	zf := zb.FConst(0)
	zo := zb.New(ClsContrib)
	zb.Store(zo, "v", zv)
	zb.Store(zo, "c", zf)
	zb.EmitRecord(zo)
	zb.Ret(nil)
	zb.Done()

	// tpCombine / tpUpdate mirror the RDD versions over flat rows.
	cb := ir.NewFuncBuilder(prog, "tpCombine", model.Object(ClsContrib))
	ca := cb.Param("a", model.Object(ClsContrib))
	cc := cb.Param("b", model.Object(ClsContrib))
	v := cb.Load(ca, "v")
	s := cb.Bin(ir.OpAdd, cb.Load(ca, "c"), cb.Load(cc, "c"))
	acc := cb.New(ClsContrib)
	cb.Store(acc, "v", v)
	cb.Store(acc, "c", s)
	cb.Ret(acc)
	cb.Done()

	ub := ir.NewFuncBuilder(prog, "tpUpdate", model.Type{})
	uc := ub.Param("c", model.Object(ClsContrib))
	uv := ub.Load(uc, "v")
	usum := ub.Load(uc, "c")
	d085 := ub.FConst(0.85)
	d015 := ub.FConst(0.15)
	nr := ub.Bin(ir.OpAdd, ub.Bin(ir.OpMul, usum, d085), d015)
	uo := ub.New(ClsRank)
	ub.Store(uo, "v", uv)
	ub.Store(uo, "r", nr)
	ub.EmitRecord(uo)
	ub.Ret(nil)
	ub.Done()

	spark.BuildMapDriver(prog, "tpExplodeStage", "tpExplode", ClsLinks)
	spark.BuildMapDriver(prog, "tpInitStage", "tpInit", ClsLinks)
	spark.BuildJoinManyDriver(prog, "tpJoinStage", "tpJoin", ClsRank, ClsEdge)
	spark.BuildMapDriver(prog, "tpZeroStage", "tpZero", ClsRank)
	spark.BuildReduceDriver(prog, "tpCombineStage", "tpCombine", ClsContrib)
	spark.BuildMapDriver(prog, "tpUpdateStage", "tpUpdate", ClsContrib)
}

// Run executes DataFrame-style PageRank; plan-construction cost accrues
// on the session.
func (t TungstenPageRank) Run(ctx *spark.Context, links *spark.RDD, s *tungsten.Session) (*spark.RDD, error) {
	s.PlanGrow(6) // RDD -> DataFrame conversion plan
	edges, err := links.MapPartitions("tpExplodeStage", ClsEdge)
	if err != nil {
		return nil, err
	}
	ranks, err := links.MapPartitions("tpInitStage", ClsRank)
	if err != nil {
		return nil, err
	}
	for it := 0; it < t.Iters; it++ {
		s.PlanGrow(8) // the growing iterative plan
		contribs, err := ranks.JoinMany(edges, "tpJoinStage", "v", "src", ClsContrib)
		if err != nil {
			return nil, fmt.Errorf("tungsten pagerank iter %d: %w", it, err)
		}
		zeros, err := ranks.MapPartitions("tpZeroStage", ClsContrib)
		if err != nil {
			return nil, err
		}
		all, err := contribs.Union(zeros)
		if err != nil {
			return nil, err
		}
		summed, err := all.ReduceByKey("tpCombineStage", "v")
		if err != nil {
			return nil, err
		}
		ranks, err = summed.MapPartitions("tpUpdateStage", ClsRank)
		if err != nil {
			return nil, err
		}
	}
	return ranks, nil
}

// TungstenWordCount is WordCount with Tungsten's string optimization: the
// per-document tokenizer is a fused native operator (modeling whole-stage
// codegen over binary strings) instead of a per-character IR loop. The
// aggregation side shares the IR combiner with the other systems.
type TungstenWordCount struct{}

// Register defines the intrinsic-split map UDF; the combiner is the
// shared wcCombine.
func (TungstenWordCount) Register(prog *ir.Program) {
	if _, ok := prog.Funcs["wcCombine"]; !ok {
		WordCount{}.Register(prog)
	}
	b := ir.NewFuncBuilder(prog, "twcSplit", model.Type{})
	doc := b.Param("doc", model.Object(ClsDoc))
	text := b.Load(doc, "text")
	// The fused operator scans the binary string once and emits
	// WordCount records directly (interp intrinsic).
	b.Emit(&ir.NativeCall{Name: "splitToWordCounts", Recv: text, RecvClass: ClsString})
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "twcSplitStage", "twcSplit", ClsDoc)
}

// Run executes Tungsten WordCount (native mode contexts only).
func (t TungstenWordCount) Run(ctx *spark.Context, docs *spark.RDD, s *tungsten.Session) (*spark.RDD, error) {
	s.PlanGrow(3)
	words, err := docs.MapPartitions("twcSplitStage", ClsWordCount)
	if err != nil {
		return nil, err
	}
	return words.ReduceByKey("wcCombineStage", "word")
}
