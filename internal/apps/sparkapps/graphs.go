package sparkapps

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

// ConnectedComponents (CC) propagates minimum labels along edges until
// the configured number of iterations; used with PR and TC for Figure 5.
type ConnectedComponents struct {
	Iters int
}

// Register defines the CC UDFs and drivers.
func (c ConnectedComponents) Register(prog *ir.Program) {
	// ccInit(links): label(v) = v.
	b := ir.NewFuncBuilder(prog, "ccInit", model.Type{})
	l := b.Param("l", model.Object(ClsLinks))
	src := b.Load(l, "src")
	out := b.New(ClsLabel)
	b.Store(out, "v", src)
	b.Store(out, "l", src)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()

	// ccJoin(links, label): push the label to self and all neighbors.
	jb := ir.NewFuncBuilder(prog, "ccJoin", model.Type{})
	jl := jb.Param("l", model.Object(ClsLinks))
	jlab := jb.Param("lab", model.Object(ClsLabel))
	jsrc := jb.Load(jl, "src")
	dsts := jb.Load(jl, "dsts")
	lab := jb.Load(jlab, "l")
	self := jb.New(ClsLabel)
	jb.Store(self, "v", jsrc)
	jb.Store(self, "l", lab)
	jb.EmitRecord(self)
	n := jb.Len(dsts)
	jb.For(n, func(i *ir.Var) {
		d := jb.Elem(dsts, i)
		o := jb.New(ClsLabel)
		jb.Store(o, "v", d)
		jb.Store(o, "l", lab)
		jb.EmitRecord(o)
	})
	jb.Ret(nil)
	jb.Done()

	// ccCombine(a, b) = Label{a.v, min(a.l, b.l)}.
	cb := ir.NewFuncBuilder(prog, "ccCombine", model.Object(ClsLabel))
	ca := cb.Param("a", model.Object(ClsLabel))
	cbv := cb.Param("b", model.Object(ClsLabel))
	v := cb.Load(ca, "v")
	m := cb.Bin(ir.OpMin, cb.Load(ca, "l"), cb.Load(cbv, "l"))
	acc := cb.New(ClsLabel)
	cb.Store(acc, "v", v)
	cb.Store(acc, "l", m)
	cb.Ret(acc)
	cb.Done()

	spark.BuildMapDriver(prog, "ccInitStage", "ccInit", ClsLinks)
	spark.BuildJoinDriver(prog, "ccJoinStage", "ccJoin", ClsLinks, ClsLabel)
	spark.BuildReduceDriver(prog, "ccCombineStage", "ccCombine", ClsLabel)
}

// Run executes label propagation and returns the final labels RDD.
func (c ConnectedComponents) Run(ctx *spark.Context, links *spark.RDD) (*spark.RDD, error) {
	labels, err := links.MapPartitions("ccInitStage", ClsLabel)
	if err != nil {
		return nil, err
	}
	for it := 0; it < c.Iters; it++ {
		pushed, err := links.JoinPairs(labels, "ccJoinStage", "src", "v", ClsLabel)
		if err != nil {
			return nil, fmt.Errorf("cc iter %d: %w", it, err)
		}
		labels, err = pushed.ReduceByKey("ccCombineStage", "v")
		if err != nil {
			return nil, fmt.Errorf("cc iter %d: %w", it, err)
		}
	}
	return labels, nil
}

// DecodeLabels converts a labels RDD to a map.
func DecodeLabels(c *serde.Codec, labels *spark.RDD) (map[int64]int64, error) {
	out := map[int64]int64{}
	buf := labels.CollectBytes()
	for off := 0; off < len(buf); {
		v, next, err := c.Decode(ClsLabel, buf, off)
		if err != nil {
			return nil, err
		}
		o := v.(serde.Obj)
		out[o["v"].(int64)] = o["l"].(int64)
		off = next
	}
	return out, nil
}

// TriangleCounting (TC) counts closed wedges: each vertex emits its
// neighbor pairs (wedges, capped per vertex to bound the quadratic
// blow-up) keyed by the packed endpoint pair, each edge emits an edge
// marker under the same key, and a reduce counts wedges whose endpoint
// pair is an edge.
type TriangleCounting struct {
	// Vertices is the key-packing modulus (must exceed the vertex count).
	Vertices int64
	// MaxWedges caps emitted neighbor pairs per vertex.
	MaxWedges int64
}

// Register defines the TC UDFs and drivers.
func (t TriangleCounting) Register(prog *ir.Program) {
	vmod := t.Vertices
	if vmod <= 0 {
		vmod = 1 << 20
	}
	maxW := t.MaxWedges
	if maxW <= 0 {
		maxW = 64
	}

	// tcWedges(links): for neighbor pairs (a,b), emit TriRec{pack(a,b),1,0}.
	b := ir.NewFuncBuilder(prog, "tcWedges", model.Type{})
	l := b.Param("l", model.Object(ClsLinks))
	dsts := b.Load(l, "dsts")
	n := b.Len(dsts)
	vm := b.IConst(vmod)
	one := b.IConst(1)
	zero := b.IConst(0)
	emitted := b.Local("emitted", tLong)
	b.Assign(emitted, zero)
	cap := b.IConst(maxW)
	b.For(n, func(i *ir.Var) {
		a := b.Elem(dsts, i)
		j := b.Local("j", tLong)
		j1 := b.Bin(ir.OpAdd, i, one)
		b.Assign(j, j1)
		b.While(ir.CmpLT, j, n, func() {
			bb := b.Elem(dsts, j)
			b.If(ir.CmpLT, emitted, cap, func() {
				lo := b.Bin(ir.OpMin, a, bb)
				hi := b.Bin(ir.OpMax, a, bb)
				packed := b.Bin(ir.OpAdd, b.Bin(ir.OpMul, lo, vm), hi)
				o := b.New(ClsTriRec)
				b.Store(o, "k", packed)
				b.Store(o, "w", one)
				b.Store(o, "e", zero)
				b.EmitRecord(o)
				b.BinTo(emitted, ir.OpAdd, emitted, one)
			}, nil)
			b.BinTo(j, ir.OpAdd, j, one)
		})
	})
	b.Ret(nil)
	b.Done()

	// tcEdges(links): each edge (src,d) emits TriRec{pack(min,max),0,1}.
	eb := ir.NewFuncBuilder(prog, "tcEdges", model.Type{})
	el := eb.Param("l", model.Object(ClsLinks))
	esrc := eb.Load(el, "src")
	edsts := eb.Load(el, "dsts")
	en := eb.Len(edsts)
	evm := eb.IConst(vmod)
	eone := eb.IConst(1)
	ezero := eb.IConst(0)
	eb.For(en, func(i *ir.Var) {
		d := eb.Elem(edsts, i)
		lo := eb.Bin(ir.OpMin, esrc, d)
		hi := eb.Bin(ir.OpMax, esrc, d)
		packed := eb.Bin(ir.OpAdd, eb.Bin(ir.OpMul, lo, evm), hi)
		o := eb.New(ClsTriRec)
		eb.Store(o, "k", packed)
		eb.Store(o, "w", ezero)
		eb.Store(o, "e", eone)
		eb.EmitRecord(o)
	})
	eb.Ret(nil)
	eb.Done()

	// tcCombine sums wedge and edge markers per key.
	cb := ir.NewFuncBuilder(prog, "tcCombine", model.Object(ClsTriRec))
	ca := cb.Param("a", model.Object(ClsTriRec))
	cbv := cb.Param("b", model.Object(ClsTriRec))
	k := cb.Load(ca, "k")
	w := cb.Bin(ir.OpAdd, cb.Load(ca, "w"), cb.Load(cbv, "w"))
	e := cb.Bin(ir.OpAdd, cb.Load(ca, "e"), cb.Load(cbv, "e"))
	acc := cb.New(ClsTriRec)
	cb.Store(acc, "k", k)
	cb.Store(acc, "w", w)
	cb.Store(acc, "e", e)
	cb.Ret(acc)
	cb.Done()

	// tcCount(rec): triangles through this pair = wedges * (edge? 1 : 0).
	tb := ir.NewFuncBuilder(prog, "tcCount", model.Type{})
	tr := tb.Param("r", model.Object(ClsTriRec))
	tw := tb.Load(tr, "w")
	te := tb.Load(tr, "e")
	tone := tb.IConst(1)
	closed := tb.Bin(ir.OpMin, te, tone)
	cnt := tb.Bin(ir.OpMul, tw, closed)
	tzero := tb.IConst(0)
	o := tb.New(ClsCountRec)
	tb.Store(o, "k", tzero)
	tb.Store(o, "n", cnt)
	tb.EmitRecord(o)
	tb.Ret(nil)
	tb.Done()

	// countCombineTC sums counts.
	kb := ir.NewFuncBuilder(prog, "tcCountCombine", model.Object(ClsCountRec))
	ka := kb.Param("a", model.Object(ClsCountRec))
	kbv := kb.Param("b", model.Object(ClsCountRec))
	kk := kb.Load(ka, "k")
	ks := kb.Bin(ir.OpAdd, kb.Load(ka, "n"), kb.Load(kbv, "n"))
	kacc := kb.New(ClsCountRec)
	kb.Store(kacc, "k", kk)
	kb.Store(kacc, "n", ks)
	kb.Ret(kacc)
	kb.Done()

	spark.BuildMapDriver(prog, "tcWedgeStage", "tcWedges", ClsLinks)
	spark.BuildMapDriver(prog, "tcEdgeStage", "tcEdges", ClsLinks)
	spark.BuildReduceDriver(prog, "tcCombineStage", "tcCombine", ClsTriRec)
	spark.BuildMapDriver(prog, "tcCountStage", "tcCount", ClsTriRec)
	spark.BuildReduceDriver(prog, "tcSumStage", "tcCountCombine", ClsCountRec)
}

// Run counts triangles; the result is a single CountRec.
func (t TriangleCounting) Run(ctx *spark.Context, links *spark.RDD) (int64, error) {
	wedges, err := links.MapPartitions("tcWedgeStage", ClsTriRec)
	if err != nil {
		return 0, err
	}
	edges, err := links.MapPartitions("tcEdgeStage", ClsTriRec)
	if err != nil {
		return 0, err
	}
	all, err := wedges.Union(edges)
	if err != nil {
		return 0, err
	}
	merged, err := all.ReduceByKey("tcCombineStage", "k")
	if err != nil {
		return 0, err
	}
	counts, err := merged.MapPartitions("tcCountStage", ClsCountRec)
	if err != nil {
		return 0, err
	}
	total, err := counts.ReduceByKey("tcSumStage", "k")
	if err != nil {
		return 0, err
	}
	buf := total.CollectBytes()
	var sum int64
	c := ctx.C.Codec
	for off := 0; off < len(buf); {
		v, next, err := c.Decode(ClsCountRec, buf, off)
		if err != nil {
			return 0, err
		}
		sum += v.(serde.Obj)["n"].(int64)
		off = next
	}
	return sum, nil
}
