package sparkapps

import (
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

// StackOverflowAnalytics (SOA) is the section 4.4 application: phase one
// groups all posts by user into Account records whose posts live in a
// capacity-managed vector. When a combine overflows the capacity, the
// code takes java.util.Vector's resize path — allocate a bigger backing
// array and write it over the old one, a reference write into an
// existing data record that violates condition #2. The compiler inserts
// an abort there; at run time the abort fires exactly when a vector
// actually resizes (the paper observed ~10% of vectors resizing, making
// the transformed program 7% slower end to end).
type StackOverflowAnalytics struct {
	// InitialCap is the vector capacity of a fresh single-post account.
	InitialCap int64
}

// Register defines the SOA UDFs and drivers.
func (s StackOverflowAnalytics) Register(prog *ir.Program) {
	cap0 := s.InitialCap
	if cap0 <= 0 {
		cap0 = 8
	}

	// soaMap(post): a single-post account at the initial capacity.
	b := ir.NewFuncBuilder(prog, "soaMap", model.Type{})
	p := b.Param("p", model.Object(ClsPost))
	user := b.Load(p, "user")
	body := b.Load(p, "body")
	one := b.IConst(1)
	capC := b.IConst(cap0)
	out := b.New(ClsAccount)
	b.Store(out, "user", user)
	b.Store(out, "cap", capC)
	b.Store(out, "n", one)
	arr := b.NewArr(model.Object(ClsString), one)
	zero := b.IConst(0)
	cp := CopyString(b, body)
	b.SetElem(arr, zero, cp)
	b.Store(out, "posts", arr)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()

	// soaCombine(a, b): append b's posts to a's vector. If the combined
	// count exceeds a's capacity, run the Vector.resize pattern first —
	// this is the statically detected violation.
	cb := ir.NewFuncBuilder(prog, "soaCombine", model.Object(ClsAccount))
	a := cb.Param("a", model.Object(ClsAccount))
	bb := cb.Param("b", model.Object(ClsAccount))
	auser := cb.Load(a, "user")
	an := cb.Load(a, "n")
	bn := cb.Load(bb, "n")
	acap := cb.Load(a, "cap")
	total := cb.Bin(ir.OpAdd, an, bn)
	newCap := cb.Local("newCap", tLong)
	cb.Assign(newCap, acap)
	two := cb.IConst(2)
	cb.While(ir.CmpGT, total, newCap, func() {
		cb.BinTo(newCap, ir.OpMul, newCap, two)
	})
	cb.If(ir.CmpGT, total, acap, func() {
		// java.util.Vector.ensureCapacity: grow the backing array and
		// store it over the old one. The array write into the existing
		// record 'a' is violation condition #2; the Gerenuk compiler
		// fences it with an abort.
		aposts := cb.Load(a, "posts")
		grown := cb.NewArr(model.Object(ClsString), newCap)
		anLen := cb.Len(aposts)
		cb.For(anLen, func(i *ir.Var) {
			s := cb.Elem(aposts, i)
			cb.SetElem(grown, i, s)
		})
		cb.Store(a, "posts", grown)
	}, nil)

	// Build the combined account (fresh, immutable — the normal path).
	aposts2 := cb.Load(a, "posts")
	bposts := cb.Load(bb, "posts")
	outAcc := cb.New(ClsAccount)
	cb.Store(outAcc, "user", auser)
	cb.Store(outAcc, "cap", newCap)
	cb.Store(outAcc, "n", total)
	narr := cb.NewArr(model.Object(ClsString), total)
	cb.For(an, func(i *ir.Var) {
		s := cb.Elem(aposts2, i)
		cp := CopyString(cb, s)
		cb.SetElem(narr, i, cp)
	})
	cb.For(bn, func(i *ir.Var) {
		s := cb.Elem(bposts, i)
		cp := CopyString(cb, s)
		j := cb.Bin(ir.OpAdd, an, i)
		cb.SetElem(narr, j, cp)
	})
	cb.Store(outAcc, "posts", narr)
	cb.Ret(outAcc)
	cb.Done()

	spark.BuildMapDriver(prog, "soaMapStage", "soaMap", ClsPost)
	spark.BuildReduceDriver(prog, "soaCombineStage", "soaCombine", ClsAccount)
}

// Run executes phase one: group all posts per user.
func (s StackOverflowAnalytics) Run(ctx *spark.Context, posts *spark.RDD) (*spark.RDD, error) {
	accounts, err := posts.MapPartitions("soaMapStage", ClsAccount)
	if err != nil {
		return nil, err
	}
	return accounts.ReduceByKey("soaCombineStage", "user")
}

// DecodeAccounts returns userID -> post count for validation.
func DecodeAccounts(c *serde.Codec, accounts *spark.RDD) (map[int64]int64, error) {
	out := map[int64]int64{}
	buf := accounts.CollectBytes()
	for off := 0; off < len(buf); {
		v, next, err := c.Decode(ClsAccount, buf, off)
		if err != nil {
			return nil, err
		}
		o := v.(serde.Obj)
		out[o["user"].(int64)] = o["n"].(int64)
		off = next
	}
	return out, nil
}
