package sparkapps

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

// KMeans is the paper's KM benchmark: iterative Lloyd's algorithm over
// DenseVector points. Each iteration ships the current centers inside
// the assignment UDF (the closure), exactly as Spark broadcasts them.
type KMeans struct {
	K, Dim, Iters int
}

// Register defines the iteration-independent pieces (the stat combiner).
func (k KMeans) Register(prog *ir.Program) {
	cb := ir.NewFuncBuilder(prog, "kmCombine", model.Object(ClsClusterStat))
	a := cb.Param("a", model.Object(ClsClusterStat))
	bb := cb.Param("b", model.Object(ClsClusterStat))
	cl := cb.Load(a, "cluster")
	cnt := cb.Bin(ir.OpAdd, cb.Load(a, "count"), cb.Load(bb, "count"))
	sa := cb.Load(a, "sums")
	sb := cb.Load(bb, "sums")
	out := cb.New(ClsClusterStat)
	cb.Store(out, "cluster", cl)
	cb.Store(out, "count", cnt)
	n := cb.Len(sa)
	arr := cb.NewArr(tDbl, n)
	cb.For(n, func(i *ir.Var) {
		x := cb.Elem(sa, i)
		y := cb.Elem(sb, i)
		s := cb.Bin(ir.OpAdd, x, y)
		cb.SetElem(arr, i, s)
	})
	cb.Store(out, "sums", arr)
	cb.Ret(out)
	cb.Done()
	spark.BuildReduceDriver(prog, "kmCombineStage", "kmCombine", ClsClusterStat)
}

// buildAssign generates the iteration's assignment UDF with the centers
// embedded as constants, returning the stage driver name.
func (k KMeans) buildAssign(prog *ir.Program, iter int, centers [][]float64) string {
	udf := fmt.Sprintf("kmAssign_%d", iter)
	b := ir.NewFuncBuilder(prog, udf, model.Type{})
	p := b.Param("p", model.Object(ClsDenseVector))
	vals := b.Load(p, "values")
	best := b.Local("best", tLong)
	bestD := b.Local("bestD", tDbl)
	zero := b.IConst(0)
	b.Assign(best, zero)
	inf := b.FConst(math.MaxFloat64)
	b.Assign(bestD, inf)
	for j, c := range centers {
		d := b.Local(fmt.Sprintf("d%d", j), tDbl)
		b.Emit(&ir.ConstFloat{Dst: d, Val: 0})
		for t := 0; t < k.Dim; t++ {
			idx := b.IConst(int64(t))
			x := b.Elem(vals, idx)
			ct := b.FConst(c[t])
			diff := b.Bin(ir.OpSub, x, ct)
			sq := b.Bin(ir.OpMul, diff, diff)
			b.BinTo(d, ir.OpAdd, d, sq)
		}
		jc := b.IConst(int64(j))
		b.If(ir.CmpLT, d, bestD, func() {
			b.Assign(bestD, d)
			b.Assign(best, jc)
		}, nil)
	}
	one := b.IConst(1)
	out := b.New(ClsClusterStat)
	b.Store(out, "cluster", best)
	b.Store(out, "count", one)
	sums := copyDoubles(b, vals)
	b.Store(out, "sums", sums)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()
	stage := fmt.Sprintf("kmAssignStage_%d", iter)
	spark.BuildMapDriver(prog, stage, udf, ClsDenseVector)
	return stage
}

// Run executes KMeans, returning the final centers.
func (k KMeans) Run(ctx *spark.Context, points *spark.RDD, initial [][]float64) ([][]float64, error) {
	centers := initial
	for it := 0; it < k.Iters; it++ {
		stage := k.buildAssign(ctx.C.Prog, it, centers)
		stats, err := points.MapPartitions(stage, ClsClusterStat)
		if err != nil {
			return nil, fmt.Errorf("kmeans iter %d: %w", it, err)
		}
		reduced, err := stats.ReduceByKey("kmCombineStage", "cluster")
		if err != nil {
			return nil, fmt.Errorf("kmeans iter %d: %w", it, err)
		}
		// Driver side: recompute centers.
		next := make([][]float64, len(centers))
		for j := range next {
			next[j] = append([]float64(nil), centers[j]...)
		}
		buf := reduced.CollectBytes()
		for off := 0; off < len(buf); {
			v, noff, err := ctx.C.Codec.Decode(ClsClusterStat, buf, off)
			if err != nil {
				return nil, err
			}
			o := v.(serde.Obj)
			j := o["cluster"].(int64)
			cnt := float64(o["count"].(int64))
			sums := o["sums"].([]float64)
			if int(j) < len(next) && cnt > 0 {
				c := make([]float64, len(sums))
				for t := range sums {
					c[t] = sums[t] / cnt
				}
				next[j] = c
			}
			off = noff
		}
		centers = next
	}
	return centers, nil
}

// LogReg is the paper's LR benchmark: batch-gradient logistic regression
// over LabeledPoint records (the Figure 3/4 data type).
type LogReg struct {
	Dim, Iters int
	Rate       float64
}

// Register defines the gradient combiner.
func (l LogReg) Register(prog *ir.Program) {
	cb := ir.NewFuncBuilder(prog, "lrCombine", model.Object(ClsGrad))
	a := cb.Param("a", model.Object(ClsGrad))
	bb := cb.Param("b", model.Object(ClsGrad))
	k := cb.Load(a, "k")
	n := cb.Bin(ir.OpAdd, cb.Load(a, "n"), cb.Load(bb, "n"))
	ga := cb.Load(a, "g")
	gb := cb.Load(bb, "g")
	out := cb.New(ClsGrad)
	cb.Store(out, "k", k)
	cb.Store(out, "n", n)
	d := cb.Len(ga)
	arr := cb.NewArr(tDbl, d)
	cb.For(d, func(i *ir.Var) {
		x := cb.Elem(ga, i)
		y := cb.Elem(gb, i)
		s := cb.Bin(ir.OpAdd, x, y)
		cb.SetElem(arr, i, s)
	})
	cb.Store(out, "g", arr)
	cb.Ret(out)
	cb.Done()
	spark.BuildReduceDriver(prog, "lrCombineStage", "lrCombine", ClsGrad)
}

// buildGradient generates the iteration's gradient UDF with the weights
// embedded as constants.
func (l LogReg) buildGradient(prog *ir.Program, iter int, w []float64) string {
	udf := fmt.Sprintf("lrGrad_%d", iter)
	b := ir.NewFuncBuilder(prog, udf, model.Type{})
	p := b.Param("p", model.Object(ClsLabeled))
	label := b.Load(p, "label")
	vec := b.Load(p, "features")
	vals := b.Load(vec, "values")
	margin := b.Local("margin", tDbl)
	b.Emit(&ir.ConstFloat{Dst: margin, Val: 0})
	for t := 0; t < l.Dim; t++ {
		idx := b.IConst(int64(t))
		x := b.Elem(vals, idx)
		wt := b.FConst(w[t])
		prod := b.Bin(ir.OpMul, x, wt)
		b.BinTo(margin, ir.OpAdd, margin, prod)
	}
	// p = 1 / (1 + exp(-margin)); coeff = p - label.
	negM := b.Un(ir.OpNeg, margin)
	em := b.Un(ir.OpExp, negM)
	oneF := b.FConst(1)
	denom := b.Bin(ir.OpAdd, oneF, em)
	prob := b.Bin(ir.OpDiv, oneF, denom)
	coeff := b.Bin(ir.OpSub, prob, label)

	zero := b.IConst(0)
	one := b.IConst(1)
	out := b.New(ClsGrad)
	b.Store(out, "k", zero)
	b.Store(out, "n", one)
	n := b.Len(vals)
	arr := b.NewArr(tDbl, n)
	b.For(n, func(i *ir.Var) {
		x := b.Elem(vals, i)
		g := b.Bin(ir.OpMul, coeff, x)
		b.SetElem(arr, i, g)
	})
	b.Store(out, "g", arr)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()
	stage := fmt.Sprintf("lrGradStage_%d", iter)
	spark.BuildMapDriver(prog, stage, udf, ClsLabeled)
	return stage
}

// Run trains and returns the weights.
func (l LogReg) Run(ctx *spark.Context, points *spark.RDD) ([]float64, error) {
	w := make([]float64, l.Dim)
	for it := 0; it < l.Iters; it++ {
		stage := l.buildGradient(ctx.C.Prog, it, w)
		grads, err := points.MapPartitions(stage, ClsGrad)
		if err != nil {
			return nil, fmt.Errorf("logreg iter %d: %w", it, err)
		}
		reduced, err := grads.ReduceByKey("lrCombineStage", "k")
		if err != nil {
			return nil, fmt.Errorf("logreg iter %d: %w", it, err)
		}
		buf := reduced.CollectBytes()
		for off := 0; off < len(buf); {
			v, noff, err := ctx.C.Codec.Decode(ClsGrad, buf, off)
			if err != nil {
				return nil, err
			}
			o := v.(serde.Obj)
			n := float64(o["n"].(int64))
			g := o["g"].([]float64)
			for t := range g {
				if t < len(w) && n > 0 {
					w[t] -= l.Rate * g[t] / n
				}
			}
			off = noff
		}
	}
	return w, nil
}

// ChiSqSelector is the paper's CS benchmark: per-feature chi-square
// statistics over SparseVector points (contingency counts computed in
// the dataflow; the final statistic on the driver).
type ChiSqSelector struct {
	Dim int
}

// Register defines the CS UDFs and drivers.
func (c ChiSqSelector) Register(prog *ir.Program) {
	// csMap(point): for each non-zero feature, emit an observation keyed
	// by (feature, label, value bucket).
	b := ir.NewFuncBuilder(prog, "csMap", model.Type{})
	p := b.Param("p", model.Object(ClsSparsePoint))
	label := b.Load(p, "label")
	vec := b.Load(p, "features")
	indices := b.Load(vec, "indices")
	values := b.Load(vec, "values")
	lab := b.Un(ir.OpD2I, label)
	one := b.IConst(1)
	oneF := b.FConst(1)
	two := b.IConst(2)
	four := b.IConst(4)
	n := b.Len(indices)
	b.For(n, func(i *ir.Var) {
		idx := b.Elem(indices, i)
		v := b.Elem(values, i)
		bucket := b.Local("bucket", tLong)
		zc := b.IConst(0)
		b.Assign(bucket, zc)
		b.If(ir.CmpGT, v, oneF, func() {
			b.Assign(bucket, one)
		}, nil)
		k1 := b.Bin(ir.OpMul, idx, four)
		k2 := b.Bin(ir.OpMul, lab, two)
		k3 := b.Bin(ir.OpAdd, k1, k2)
		key := b.Bin(ir.OpAdd, k3, bucket)
		o := b.New(ClsFeatObs)
		b.Store(o, "k", key)
		b.Store(o, "n", one)
		b.EmitRecord(o)
	})
	b.Ret(nil)
	b.Done()

	cb := ir.NewFuncBuilder(prog, "csCombine", model.Object(ClsFeatObs))
	a := cb.Param("a", model.Object(ClsFeatObs))
	bb := cb.Param("b", model.Object(ClsFeatObs))
	k := cb.Load(a, "k")
	s := cb.Bin(ir.OpAdd, cb.Load(a, "n"), cb.Load(bb, "n"))
	out := cb.New(ClsFeatObs)
	cb.Store(out, "k", k)
	cb.Store(out, "n", s)
	cb.Ret(out)
	cb.Done()

	spark.BuildMapDriver(prog, "csMapStage", "csMap", ClsSparsePoint)
	spark.BuildReduceDriver(prog, "csCombineStage", "csCombine", ClsFeatObs)
}

// Run computes the chi-square statistic per feature.
func (c ChiSqSelector) Run(ctx *spark.Context, points *spark.RDD) (map[int64]float64, error) {
	obs, err := points.MapPartitions("csMapStage", ClsFeatObs)
	if err != nil {
		return nil, err
	}
	reduced, err := obs.ReduceByKey("csCombineStage", "k")
	if err != nil {
		return nil, err
	}
	// cells[feature][label*2+bucket]
	cells := map[int64][4]float64{}
	buf := reduced.CollectBytes()
	for off := 0; off < len(buf); {
		v, noff, err := ctx.C.Codec.Decode(ClsFeatObs, buf, off)
		if err != nil {
			return nil, err
		}
		o := v.(serde.Obj)
		key := o["k"].(int64)
		f := key / 4
		cell := key % 4
		arr := cells[f]
		arr[cell] += float64(o["n"].(int64))
		cells[f] = arr
		off = noff
	}
	stats := map[int64]float64{}
	for f, cl := range cells {
		total := cl[0] + cl[1] + cl[2] + cl[3]
		if total == 0 {
			continue
		}
		chi := 0.0
		for lab := 0; lab < 2; lab++ {
			for bkt := 0; bkt < 2; bkt++ {
				obs := cl[lab*2+bkt]
				rowSum := cl[lab*2] + cl[lab*2+1]
				colSum := cl[bkt] + cl[2+bkt]
				exp := rowSum * colSum / total
				if exp > 0 {
					chi += (obs - exp) * (obs - exp) / exp
				}
			}
		}
		stats[f] = chi
	}
	return stats, nil
}

// Stump is one decision stump of the boosted model.
type Stump struct {
	Feature   int
	Threshold float64
	LeftVal   float64
	RightVal  float64
}

// GBoost is the paper's GB benchmark: gradient-boosted decision stumps
// on squared loss over DenseVector-featured LabeledPoints.
type GBoost struct {
	Dim, Rounds, Buckets int
	Shrinkage            float64
	// Range scales feature values into buckets: bucket = clamp(v/Range*B).
	Range float64
}

// Register defines the split-stat combiner.
func (g GBoost) Register(prog *ir.Program) {
	cb := ir.NewFuncBuilder(prog, "gbCombine", model.Object(ClsSplitStat))
	a := cb.Param("a", model.Object(ClsSplitStat))
	bb := cb.Param("b", model.Object(ClsSplitStat))
	k := cb.Load(a, "k")
	n := cb.Bin(ir.OpAdd, cb.Load(a, "n"), cb.Load(bb, "n"))
	s := cb.Bin(ir.OpAdd, cb.Load(a, "sum"), cb.Load(bb, "sum"))
	out := cb.New(ClsSplitStat)
	cb.Store(out, "k", k)
	cb.Store(out, "n", n)
	cb.Store(out, "sum", s)
	cb.Ret(out)
	cb.Done()
	spark.BuildReduceDriver(prog, "gbCombineStage", "gbCombine", ClsSplitStat)
}

// buildResiduals generates the round's UDF: compute the model prediction
// (stumps embedded as constants), then emit residual stats per
// (feature, bucket).
func (g GBoost) buildResiduals(prog *ir.Program, round int, model_ []Stump) string {
	udf := fmt.Sprintf("gbResid_%d", round)
	b := ir.NewFuncBuilder(prog, udf, model.Type{})
	p := b.Param("p", model.Object(ClsLabeled))
	label := b.Load(p, "label")
	vec := b.Load(p, "features")
	vals := b.Load(vec, "values")
	pred := b.Local("pred", tDbl)
	b.Emit(&ir.ConstFloat{Dst: pred, Val: 0})
	for _, st := range model_ {
		idx := b.IConst(int64(st.Feature))
		x := b.Elem(vals, idx)
		thr := b.FConst(st.Threshold)
		lv := b.FConst(st.LeftVal * g.Shrinkage)
		rv := b.FConst(st.RightVal * g.Shrinkage)
		b.If(ir.CmpLE, x, thr, func() {
			b.BinTo(pred, ir.OpAdd, pred, lv)
		}, func() {
			b.BinTo(pred, ir.OpAdd, pred, rv)
		})
	}
	resid := b.Bin(ir.OpSub, label, pred)
	// Emit one SplitStat per feature with the bucketized value.
	scale := b.FConst(float64(g.Buckets) / g.Range)
	zero := b.IConst(0)
	bMax := b.IConst(int64(g.Buckets - 1))
	bCount := b.IConst(int64(g.Buckets))
	one := b.IConst(1)
	for f := 0; f < g.Dim; f++ {
		idx := b.IConst(int64(f))
		x := b.Elem(vals, idx)
		scaled := b.Bin(ir.OpMul, x, scale)
		bucket := b.Un(ir.OpD2I, scaled)
		b1 := b.Bin(ir.OpMax, bucket, zero)
		b2 := b.Bin(ir.OpMin, b1, bMax)
		fk := b.IConst(int64(f))
		k1 := b.Bin(ir.OpMul, fk, bCount)
		key := b.Bin(ir.OpAdd, k1, b2)
		o := b.New(ClsSplitStat)
		b.Store(o, "k", key)
		b.Store(o, "n", one)
		b.Store(o, "sum", resid)
		b.EmitRecord(o)
		_ = idx
	}
	b.Ret(nil)
	b.Done()
	stage := fmt.Sprintf("gbResidStage_%d", round)
	spark.BuildMapDriver(prog, stage, udf, ClsLabeled)
	return stage
}

// Run boosts for the configured rounds, returning the model.
func (g GBoost) Run(ctx *spark.Context, points *spark.RDD) ([]Stump, error) {
	var mdl []Stump
	for round := 0; round < g.Rounds; round++ {
		stage := g.buildResiduals(ctx.C.Prog, round, mdl)
		stats, err := points.MapPartitions(stage, ClsSplitStat)
		if err != nil {
			return nil, fmt.Errorf("gboost round %d: %w", round, err)
		}
		reduced, err := stats.ReduceByKey("gbCombineStage", "k")
		if err != nil {
			return nil, fmt.Errorf("gboost round %d: %w", round, err)
		}
		// Pick the split with the largest |mean-left - mean-right| gap.
		type cell struct {
			n   float64
			sum float64
		}
		byFeat := make([][]cell, g.Dim)
		for f := range byFeat {
			byFeat[f] = make([]cell, g.Buckets)
		}
		buf := reduced.CollectBytes()
		for off := 0; off < len(buf); {
			v, noff, err := ctx.C.Codec.Decode(ClsSplitStat, buf, off)
			if err != nil {
				return nil, err
			}
			o := v.(serde.Obj)
			key := o["k"].(int64)
			f := int(key) / g.Buckets
			bk := int(key) % g.Buckets
			if f < g.Dim {
				byFeat[f][bk].n += float64(o["n"].(int64))
				byFeat[f][bk].sum += o["sum"].(float64)
			}
			off = noff
		}
		best := Stump{Feature: -1}
		bestGain := -1.0
		for f := 0; f < g.Dim; f++ {
			for cut := 0; cut < g.Buckets-1; cut++ {
				var ln, ls, rn, rs float64
				for bk := 0; bk <= cut; bk++ {
					ln += byFeat[f][bk].n
					ls += byFeat[f][bk].sum
				}
				for bk := cut + 1; bk < g.Buckets; bk++ {
					rn += byFeat[f][bk].n
					rs += byFeat[f][bk].sum
				}
				if ln == 0 || rn == 0 {
					continue
				}
				lm, rm := ls/ln, rs/rn
				gain := (lm - rm) * (lm - rm) * ln * rn / (ln + rn)
				if gain > bestGain {
					bestGain = gain
					best = Stump{
						Feature:   f,
						Threshold: float64(cut+1) * g.Range / float64(g.Buckets),
						LeftVal:   lm,
						RightVal:  rm,
					}
				}
			}
		}
		if best.Feature < 0 {
			break
		}
		mdl = append(mdl, best)
	}
	return mdl, nil
}
