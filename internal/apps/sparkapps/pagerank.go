package sparkapps

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

// PageRank is the paper's PR benchmark (GraphX PageRank over the
// LiveJournal graph): iterative rank propagation over adjacency lists.
type PageRank struct {
	Iters int
}

// Register defines the PR UDFs and stage drivers in the program. The
// program must carry ClsLinks/ClsRank/ClsContrib among its top types.
func (p PageRank) Register(prog *ir.Program) {
	// prInit(links): every vertex starts with rank 1.
	b := ir.NewFuncBuilder(prog, "prInit", model.Type{})
	l := b.Param("l", model.Object(ClsLinks))
	src := b.Load(l, "src")
	one := b.FConst(1)
	out := b.New(ClsRank)
	b.Store(out, "v", src)
	b.Store(out, "r", one)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()

	// prJoin(links, rank): spread rank/deg to out-neighbors; a zero
	// self-contribution keeps rank-less vertices alive.
	jb := ir.NewFuncBuilder(prog, "prJoin", model.Type{})
	jl := jb.Param("l", model.Object(ClsLinks))
	jr := jb.Param("r", model.Object(ClsRank))
	jsrc := jb.Load(jl, "src")
	dsts := jb.Load(jl, "dsts")
	rank := jb.Load(jr, "r")
	n := jb.Len(dsts)
	zero := jb.IConst(0)
	self := jb.New(ClsContrib)
	zf := jb.FConst(0)
	jb.Store(self, "v", jsrc)
	jb.Store(self, "c", zf)
	jb.EmitRecord(self)
	jb.If(ir.CmpGT, n, zero, func() {
		nf := jb.Un(ir.OpI2D, n)
		share := jb.Bin(ir.OpDiv, rank, nf)
		jb.For(n, func(i *ir.Var) {
			d := jb.Elem(dsts, i)
			c := jb.New(ClsContrib)
			jb.Store(c, "v", d)
			jb.Store(c, "c", share)
			jb.EmitRecord(c)
		})
	}, nil)
	jb.Ret(nil)
	jb.Done()

	// prCombine(a, b) = Contrib{a.v, a.c + b.c}.
	cb := ir.NewFuncBuilder(prog, "prCombine", model.Object(ClsContrib))
	ca := cb.Param("a", model.Object(ClsContrib))
	cc := cb.Param("b", model.Object(ClsContrib))
	v := cb.Load(ca, "v")
	s := cb.Bin(ir.OpAdd, cb.Load(ca, "c"), cb.Load(cc, "c"))
	acc := cb.New(ClsContrib)
	cb.Store(acc, "v", v)
	cb.Store(acc, "c", s)
	cb.Ret(acc)
	cb.Done()

	// prUpdate(contrib): rank = 0.15 + 0.85 * sum.
	ub := ir.NewFuncBuilder(prog, "prUpdate", model.Type{})
	uc := ub.Param("c", model.Object(ClsContrib))
	uv := ub.Load(uc, "v")
	usum := ub.Load(uc, "c")
	d085 := ub.FConst(0.85)
	d015 := ub.FConst(0.15)
	scaled := ub.Bin(ir.OpMul, usum, d085)
	nr := ub.Bin(ir.OpAdd, scaled, d015)
	uo := ub.New(ClsRank)
	ub.Store(uo, "v", uv)
	ub.Store(uo, "r", nr)
	ub.EmitRecord(uo)
	ub.Ret(nil)
	ub.Done()

	spark.BuildMapDriver(prog, "prInitStage", "prInit", ClsLinks)
	spark.BuildJoinDriver(prog, "prJoinStage", "prJoin", ClsLinks, ClsRank)
	spark.BuildReduceDriver(prog, "prCombineStage", "prCombine", ClsContrib)
	spark.BuildMapDriver(prog, "prUpdateStage", "prUpdate", ClsContrib)
}

// Run executes PageRank and returns the final ranks RDD.
func (p PageRank) Run(ctx *spark.Context, links *spark.RDD) (*spark.RDD, error) {
	ranks, err := links.MapPartitions("prInitStage", ClsRank)
	if err != nil {
		return nil, err
	}
	for it := 0; it < p.Iters; it++ {
		contribs, err := links.JoinPairs(ranks, "prJoinStage", "src", "v", ClsContrib)
		if err != nil {
			return nil, fmt.Errorf("pagerank iter %d: %w", it, err)
		}
		summed, err := contribs.ReduceByKey("prCombineStage", "v")
		if err != nil {
			return nil, fmt.Errorf("pagerank iter %d: %w", it, err)
		}
		ranks, err = summed.MapPartitions("prUpdateStage", ClsRank)
		if err != nil {
			return nil, fmt.Errorf("pagerank iter %d: %w", it, err)
		}
	}
	return ranks, nil
}

// DecodeRanks converts a ranks RDD into a map for validation.
func DecodeRanks(c *serde.Codec, ranks *spark.RDD) (map[int64]float64, error) {
	out := map[int64]float64{}
	buf := ranks.CollectBytes()
	for off := 0; off < len(buf); {
		v, next, err := c.Decode(ClsRank, buf, off)
		if err != nil {
			return nil, err
		}
		o := v.(serde.Obj)
		out[o["v"].(int64)] = o["r"].(float64)
		off = next
	}
	return out, nil
}
