package sparkapps

import (
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/spark"
)

// StreamRank is the PageRank-style streaming app: one rank-contribution
// iteration folded continuously over a stream of adjacency records.
// Each Links record spreads a unit rank share 1/deg to every
// out-neighbor (plus a zero self-contribution keeping sink vertices
// alive); the window fold sums contributions per vertex. It is exactly
// the prJoin/prCombine dataflow with the rank join replaced by a
// constant — the shape that makes windowed aggregation meaningful
// without cross-window iteration state.
type StreamRank struct{}

// Register defines the StreamRank UDFs and stage drivers. The program
// must carry ClsLinks and ClsContrib among its top types. Names are
// distinct from PageRank's so both register into one program without
// clashing.
func (StreamRank) Register(prog *ir.Program) {
	// srSpread(links): emit 1/deg to each out-neighbor, zero to self.
	b := ir.NewFuncBuilder(prog, "srSpread", model.Type{})
	l := b.Param("l", model.Object(ClsLinks))
	src := b.Load(l, "src")
	dsts := b.Load(l, "dsts")
	n := b.Len(dsts)
	zero := b.IConst(0)
	self := b.New(ClsContrib)
	zf := b.FConst(0)
	b.Store(self, "v", src)
	b.Store(self, "c", zf)
	b.EmitRecord(self)
	b.If(ir.CmpGT, n, zero, func() {
		one := b.FConst(1)
		nf := b.Un(ir.OpI2D, n)
		share := b.Bin(ir.OpDiv, one, nf)
		b.For(n, func(i *ir.Var) {
			d := b.Elem(dsts, i)
			c := b.New(ClsContrib)
			b.Store(c, "v", d)
			b.Store(c, "c", share)
			b.EmitRecord(c)
		})
	}, nil)
	b.Ret(nil)
	b.Done()

	// srCombine(a, b) = Contrib{a.v, a.c + b.c}.
	cb := ir.NewFuncBuilder(prog, "srCombine", model.Object(ClsContrib))
	ca := cb.Param("a", model.Object(ClsContrib))
	cc := cb.Param("b", model.Object(ClsContrib))
	v := cb.Load(ca, "v")
	s := cb.Bin(ir.OpAdd, cb.Load(ca, "c"), cb.Load(cc, "c"))
	acc := cb.New(ClsContrib)
	cb.Store(acc, "v", v)
	cb.Store(acc, "c", s)
	cb.Ret(acc)
	cb.Done()

	spark.BuildMapDriver(prog, "srSpreadStage", "srSpread", ClsLinks)
	spark.BuildReduceDriver(prog, "srCombineStage", "srCombine", ClsContrib)
}
