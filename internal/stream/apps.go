package stream

import (
	"fmt"

	"repro/internal/apps/sparkapps"
	"repro/internal/engine"
	"repro/internal/workload"
)

// AppSpec names everything the streaming driver needs to run one
// application continuously: the compiled program with its stage
// drivers, the wire classes flowing through the map/shuffle/reduce
// pipeline, and the unbounded record source.
type AppSpec struct {
	Name string
	// InClass is the source record class; MapOutClass the map-output
	// (and reduce-input) class; KeyField its shuffle key.
	InClass     string
	MapOutClass string
	KeyField    string
	// MapDriver/ReduceDriver are the registered stage driver names.
	MapDriver    string
	ReduceDriver string
	// NewProgram compiles a fresh program with both drivers registered.
	NewProgram func() *engine.Compiled
	// Source derives the deterministic unbounded record source.
	Source func(seed int64) *workload.Unbounded
}

// AppNames lists the built-in streaming applications.
var AppNames = []string{"wordcount", "streamrank"}

// App returns the named built-in streaming application.
//
//   - wordcount: documents stream in, each window emits per-word counts
//     (the WC pipeline folded per window).
//   - streamrank: adjacency records stream in, each window emits summed
//     rank contributions per vertex (one PageRank spread iteration).
func App(name string) (AppSpec, error) {
	switch name {
	case "wordcount":
		return AppSpec{
			Name:         "wordcount",
			InClass:      sparkapps.ClsDoc,
			MapOutClass:  sparkapps.ClsWordCount,
			KeyField:     "word",
			MapDriver:    "wcSplitStage",
			ReduceDriver: "wcCombineStage",
			NewProgram: func() *engine.Compiled {
				prog := sparkapps.NewProgram(sparkapps.ClsDoc, sparkapps.ClsWordCount)
				sparkapps.WordCount{}.Register(prog)
				return engine.Compile(prog)
			},
			Source: func(seed int64) *workload.Unbounded {
				return workload.UnboundedDocs(6, seed)
			},
		}, nil
	case "streamrank":
		return AppSpec{
			Name:         "streamrank",
			InClass:      sparkapps.ClsLinks,
			MapOutClass:  sparkapps.ClsContrib,
			KeyField:     "v",
			MapDriver:    "srSpreadStage",
			ReduceDriver: "srCombineStage",
			NewProgram: func() *engine.Compiled {
				prog := sparkapps.NewProgram(sparkapps.ClsLinks, sparkapps.ClsContrib)
				sparkapps.StreamRank{}.Register(prog)
				return engine.Compile(prog)
			},
			Source: func(seed int64) *workload.Unbounded {
				return workload.UnboundedLinks(24, 3, seed)
			},
		}, nil
	}
	return AppSpec{}, fmt.Errorf("stream: unknown app %q", name)
}
