// Package stream is the micro-batch streaming subsystem: it runs the
// existing SER pipelines (map stage, shuffle, per-key reduce fold)
// continuously over unbounded record sources instead of once over a
// fixed input.
//
// Records arrive on a deterministic simulated clock; the driver cuts
// them into micro-batches (by count or by time-slice), assigns each
// record to its tumbling or sliding window(s), runs the map driver over
// the batch, and appends the map output into each open window's live
// shuffle exchange via the writers' incremental Sync — so a window's
// exchange is built up batch by batch instead of being rebuilt per
// batch. When the watermark passes a window's end, the window closes:
// writers finish, lineage is registered, the reduce fold runs over the
// fetched blocks, and the window's canonical output bytes are emitted.
//
// Everything is deterministic given (seed, cut policy, window policy):
// a streamed run, a one-giant-batch run, and a resumed-after-crash run
// all produce byte-identical window outputs, in both execution modes
// and on both backends. That byte-equality is the paper's correctness
// contract carried over to streaming, and what the differential tests
// assert.
package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Cut is the micro-batch cut policy: a batch closes when it holds Count
// records or spans Slice of simulated arrival time, whichever comes
// first (zero disables that trigger; both zero defaults to 32 records).
type Cut struct {
	Count int
	Slice time.Duration
}

// Window is the aggregation window policy on the simulated arrival
// clock. Slide == 0 (or == Size) is tumbling; Slide < Size is sliding,
// with each record folded into every window covering its arrival.
type Window struct {
	Size  time.Duration
	Slide time.Duration
}

// ErrCrashed is returned when the CrashAfterBatches test hook stops the
// run mid-window, leaving checkpointed state behind for a Resume run.
var ErrCrashed = errors.New("stream: crashed by test hook")

// Config configures one streaming run.
type Config struct {
	App     AppSpec
	Mode    engine.Mode
	Backend engine.Backend
	// Workers sizes the task pool; MapSlots is the number of live map
	// writers (shuffle producers) per window; Reducers the number of
	// shuffle partitions (= reduce tasks) per window.
	Workers  int
	MapSlots int
	Reducers int
	HeapCfg  heap.Config
	// ClosureBytes is the simulated per-task closure shipping size.
	ClosureBytes int

	// Seed drives the record source and the arrival jitter.
	Seed int64
	// Interval is the simulated mean inter-arrival gap.
	Interval time.Duration
	CutBy    Cut
	WindowBy Window
	// Windows is how many windows to run to completion.
	Windows int

	// MaxAttempts and RetryBackoff configure the pool's task retry
	// policy (0 = engine defaults).
	MaxAttempts  int
	RetryBackoff time.Duration
	Breaker      *engine.Breaker
	Hedge        engine.HedgeConfig
	// CheckpointEvery persists each task's fold state every N completed
	// invocations (the per-task resume knob; window-state checkpointing
	// is always on). 0 = off.
	CheckpointEvery int
	// StageDeadline runs every map/reduce phase and shuffle fetch under
	// a watchdog; a timed-out pooled phase is re-executed once.
	StageDeadline time.Duration
	Jitter        *engine.Jitter
	// Injector derives a deterministic fault plan for every task and
	// fetch (chaos testing); VerifyInputs arms the mutate-input canary.
	Injector     *faults.Injector
	VerifyInputs bool
	Trace        *trace.Tracer
	// Shuffle configures each window's exchange; Partitions, Trace,
	// Lineage and (when unset) Injector are filled per window.
	Shuffle shuffle.Config
	// Checkpoints, when set, is the durable store window state persists
	// to (scoped by JobID) — pass a disk-backed store to survive process
	// restarts. nil keeps a private in-memory store.
	Checkpoints *recovery.CheckpointStore
	Lineage     *recovery.Lineage
	JobID       string
	Tenant      string
	// Canceled, when set, is polled at every batch and phase boundary:
	// once closed, open windows are abandoned (no spill or block leaks)
	// and the run fails with engine.ErrCanceled.
	Canceled <-chan struct{}

	// CrashAfterBatches > 0 stops the run with ErrCrashed after that
	// many batches, before closing any window the watermark has passed —
	// the kill-mid-window test hook. Resume picks checkpointed state
	// back up: already-closed windows are emitted from their saved
	// outputs and open windows are rebuilt from their slot checkpoints
	// (or recomputed from the source when a checkpoint is corrupt).
	CrashAfterBatches int
	Resume            bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MapSlots <= 0 {
		c.MapSlots = 2
	}
	if c.Reducers <= 0 {
		c.Reducers = 2
	}
	if c.HeapCfg.YoungSize == 0 {
		c.HeapCfg = heap.Config{YoungSize: 128 << 10, OldSize: 2 << 20}
	}
	if c.ClosureBytes == 0 {
		c.ClosureBytes = 4 << 10
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.CutBy.Count <= 0 && c.CutBy.Slice <= 0 {
		c.CutBy.Count = 32
	}
	if c.WindowBy.Size <= 0 {
		c.WindowBy.Size = 16 * c.Interval
	}
	if c.WindowBy.Slide <= 0 || c.WindowBy.Slide > c.WindowBy.Size {
		c.WindowBy.Slide = c.WindowBy.Size
	}
	if c.Windows <= 0 {
		c.Windows = 4
	}
	return c
}

// Result is the outcome of a streaming run.
type Result struct {
	// Windows holds each closed window's canonical output bytes, in
	// window order — the byte-equality surface.
	Windows [][]byte
	// Records/Batches count source records ingested and micro-batches
	// processed by this run (a resumed run counts only its own).
	Records int64
	Batches int64
	// Resumed counts windows restored from checkpointed state; Rebuilt
	// counts windows recomputed from the source after checkpoint loss.
	Resumed int64
	Rebuilt int64
	Wall    time.Duration
	Stats   metrics.Breakdown
	// ShuffleBytes is the total volume fetched across window exchanges.
	ShuffleBytes int64
	// BatchP50/BatchP99 are batch processing latency quantiles;
	// RecordsPerSec is sustained ingest throughput over the run's wall
	// time.
	BatchP50      time.Duration
	BatchP99      time.Duration
	RecordsPerSec float64
}

// windowState is one open window's live aggregation state: its private
// exchange, the per-slot incremental writers, and the per-slot
// accumulated map-output bytes (the lineage/checkpoint payload).
type windowState struct {
	idx     int
	ex      *shuffle.Exchange
	writers []*shuffle.Writer
	acc     [][]byte
	// records counts records folded into this window (drives the
	// round-robin slot assignment); flushes counts incremental syncs
	// (the checkpoint sequence number).
	records int64
	flushes int
}

type runner struct {
	cfg    Config
	comp   *engine.Compiled
	src    *workload.Unbounded
	ckpts  *recovery.CheckpointStore
	lin    *recovery.Lineage
	res    *Result
	span   *trace.Span
	hist   *trace.Histogram
	open   map[int]*windowState
	cursor int64
	// closed is the number of windows emitted so far (windows close in
	// index order, so it is also the next window to close).
	closed int
	lats   []time.Duration
}

// Run executes one streaming run to completion (cfg.Windows windows).
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	comp := cfg.App.NewProgram()
	for _, d := range []string{cfg.App.MapDriver, cfg.App.ReduceDriver} {
		if err := comp.CompileDriver(d); err != nil {
			return nil, fmt.Errorf("stream: compiling %s: %w", d, err)
		}
	}
	ckpts := cfg.Checkpoints
	if ckpts == nil {
		ckpts = recovery.NewCheckpointStore()
	}
	lin := cfg.Lineage
	if lin == nil {
		lin = recovery.NewLineage()
	}
	if cfg.JobID != "" {
		ckpts = ckpts.Scope(cfg.JobID)
		lin = lin.Scope(cfg.JobID)
	}
	cfg.Breaker.EnsureTrace(cfg.Trace)
	r := &runner{
		cfg: cfg, comp: comp, src: cfg.App.Source(cfg.Seed),
		ckpts: ckpts, lin: lin, res: &Result{}, open: map[int]*windowState{},
	}
	r.hist = cfg.Trace.Registry().Histogram(
		trace.Name("stream_batch_latency_ns", "app", cfg.App.Name, "mode", cfg.Mode.String()),
		trace.LatencyBuckets()...)
	r.span = cfg.Trace.StartSpan("stream", "run-"+cfg.App.Name,
		trace.Str("mode", cfg.Mode.String()), trace.I64("windows", int64(cfg.Windows)))
	outcome := "error"
	defer func() { r.span.End(trace.Str("outcome", outcome)) }()

	start := time.Now()
	err := r.loop()
	r.res.Wall = time.Since(start)
	r.finishStats()
	if err != nil {
		if errors.Is(err, ErrCrashed) {
			outcome = "crashed"
		} else if errors.Is(err, engine.ErrCanceled) {
			outcome = "canceled"
		}
		return r.res, err
	}
	outcome = "ok"
	return r.res, nil
}

// loop is the streaming driver: resume, then cut/process/checkpoint/
// close until cfg.Windows windows have been emitted.
func (r *runner) loop() error {
	if r.cfg.Resume {
		if err := r.resume(); err != nil {
			return err
		}
	}
	stopT := r.windowEnd(r.cfg.Windows - 1)
	crashed := 0
	for r.closed < r.cfg.Windows {
		if err := engine.Canceled(r.cfg.Canceled); err != nil {
			r.abandonOpen()
			return fmt.Errorf("stream: %s: %w", r.cfg.App.Name, err)
		}
		lo, hi := r.cutBatch(stopT)
		if hi > lo {
			bspan := r.span.Child("stream", "batch", trace.I64("records", hi-lo))
			bstart := time.Now()
			if err := r.processBatch(lo, hi); err != nil {
				bspan.End(trace.Str("outcome", "error"))
				return err
			}
			r.cursor = hi
			r.res.Batches++
			r.res.Records += hi - lo
			r.checkpoint()
			lat := time.Since(bstart)
			r.lats = append(r.lats, lat)
			r.hist.Observe(float64(lat.Nanoseconds()))
			reg := r.cfg.Trace.Registry()
			reg.Counter("stream_batches_total").Add(1)
			reg.Counter("stream_records_total").Add(hi - lo)
			bspan.End(trace.Str("outcome", "ok"))
			crashed++
			if r.cfg.CrashAfterBatches > 0 && crashed >= r.cfg.CrashAfterBatches {
				return fmt.Errorf("stream: %s after %d batches: %w",
					r.cfg.App.Name, crashed, ErrCrashed)
			}
		}
		// Advance the watermark: the next record's arrival bounds every
		// earlier window; once the source is past the last requested
		// window, everything still open is complete.
		watermark := r.arrival(r.cursor)
		for r.closed < r.cfg.Windows &&
			(watermark >= stopT || r.windowEnd(r.closed) <= watermark) {
			if err := r.closeWindow(r.closed); err != nil {
				return err
			}
			r.closed++
		}
	}
	return nil
}

// arrival is the simulated arrival clock: record i lands at i*Interval
// plus deterministic jitter in [0, Interval/2) — strictly monotonic, so
// batch cuts and window assignment are total-order stable.
func (r *runner) arrival(i int64) time.Duration {
	base := time.Duration(i) * r.cfg.Interval
	half := r.cfg.Interval / 2
	if half <= 0 {
		return base
	}
	h := fnv.New64a()
	var b [16]byte
	for k := 0; k < 8; k++ {
		b[k] = byte(uint64(r.cfg.Seed) >> (8 * k))
		b[8+k] = byte(uint64(i) >> (8 * k))
	}
	h.Write(b[:])
	return base + time.Duration(h.Sum64()%uint64(half))
}

func (r *runner) windowEnd(w int) time.Duration {
	return time.Duration(w)*r.cfg.WindowBy.Slide + r.cfg.WindowBy.Size
}

// windowRange returns the inclusive [lo, hi] window indices covering
// arrival time t.
func (r *runner) windowRange(t time.Duration) (int, int) {
	hi := int(t / r.cfg.WindowBy.Slide)
	lo := 0
	if t >= r.cfg.WindowBy.Size {
		lo = int((t-r.cfg.WindowBy.Size)/r.cfg.WindowBy.Slide) + 1
	}
	return lo, hi
}

// cutBatch applies the cut policy from the current cursor: the batch
// [lo, hi) closes at Count records, at a Slice of arrival time, or when
// the source passes the last requested window's end.
func (r *runner) cutBatch(stopT time.Duration) (int64, int64) {
	lo := r.cursor
	first := r.arrival(lo)
	hi := lo
	for {
		t := r.arrival(hi)
		if t >= stopT {
			break
		}
		if r.cfg.CutBy.Count > 0 && hi-lo >= int64(r.cfg.CutBy.Count) {
			break
		}
		if r.cfg.CutBy.Slice > 0 && hi > lo && t-first >= r.cfg.CutBy.Slice {
			break
		}
		hi++
	}
	return lo, hi
}

// window returns (creating on first touch) window w's live state.
func (r *runner) window(w int) (*windowState, error) {
	if st, ok := r.open[w]; ok {
		return st, nil
	}
	scfg := r.cfg.Shuffle
	scfg.Partitions = r.cfg.Reducers
	scfg.Trace = r.cfg.Trace
	scfg.Lineage = r.lin
	if scfg.Injector == nil {
		scfg.Injector = r.cfg.Injector
	}
	if scfg.Jitter == nil {
		scfg.Jitter = r.cfg.Jitter
	}
	var codec *serde.Codec
	if r.cfg.Mode == engine.Baseline {
		codec = r.comp.Codec
	}
	ex, err := shuffle.NewExchange(shuffle.NewStore(), scfg, r.exName(w),
		r.comp.Layouts, r.cfg.App.MapOutClass, r.cfg.App.KeyField, codec)
	if err != nil {
		return nil, fmt.Errorf("stream: window %d: %w", w, err)
	}
	st := &windowState{idx: w, ex: ex,
		writers: make([]*shuffle.Writer, r.cfg.MapSlots),
		acc:     make([][]byte, r.cfg.MapSlots)}
	for m := 0; m < r.cfg.MapSlots; m++ {
		st.writers[m] = ex.Writer(m)
	}
	r.open[w] = st
	return st, nil
}

func (r *runner) exName(w int) string {
	return fmt.Sprintf("stream-%s-w%d", r.cfg.App.Name, w)
}

// ---- checkpoint keys ----

func (r *runner) cursorKey() string {
	return fmt.Sprintf("stream/%s/cursor", r.cfg.App.Name)
}
func (r *runner) slotKey(w, m int) string {
	return fmt.Sprintf("stream/%s/w%d/m%d", r.cfg.App.Name, w, m)
}
func (r *runner) metaKey(w int) string {
	return fmt.Sprintf("stream/%s/w%d/meta", r.cfg.App.Name, w)
}
func (r *runner) outKey(w int) string {
	return fmt.Sprintf("stream/%s/out/w%d", r.cfg.App.Name, w)
}

func u64le(v int64) []byte {
	b := make([]byte, 8)
	for k := 0; k < 8; k++ {
		b[k] = byte(uint64(v) >> (8 * k))
	}
	return b
}

func leU64(b []byte) int64 {
	var v uint64
	for k := 0; k < 8 && k < len(b); k++ {
		v |= uint64(b[k]) << (8 * k)
	}
	return int64(v)
}

// processBatch stages records [lo, hi) into their windows' per-slot
// input buffers, runs the map driver over every staged buffer in one
// pooled phase, and appends the outputs into each window's live
// exchange via an incremental sync.
func (r *runner) processBatch(lo, hi int64) error {
	staged := map[int][][]byte{}
	var order []int
	for i := lo; i < hi; i++ {
		wlo, whi := r.windowRange(r.arrival(i))
		obj := r.src.At(i)
		for w := wlo; w <= whi; w++ {
			// Windows past the requested horizon never close; don't
			// build state for them.
			if w >= r.cfg.Windows || w < r.closed {
				continue
			}
			st, err := r.window(w)
			if err != nil {
				return err
			}
			bufs, ok := staged[w]
			if !ok {
				bufs = make([][]byte, r.cfg.MapSlots)
				staged[w] = bufs
				order = append(order, w)
			}
			slot := int(st.records % int64(r.cfg.MapSlots))
			bufs[slot], err = r.comp.Codec.Encode(r.cfg.App.InClass, obj, bufs[slot])
			if err != nil {
				return fmt.Errorf("stream: encoding record %d: %w", i, err)
			}
			st.records++
		}
	}
	sort.Ints(order)

	var specs []engine.TaskSpec
	type target struct{ w, m int }
	var targets []target
	for _, w := range order {
		st := r.open[w]
		for m, buf := range staged[w] {
			if len(buf) == 0 {
				continue
			}
			name := fmt.Sprintf("stream-%s-w%d-b%d-m%d", r.cfg.App.Name, w, st.flushes, m)
			specs = append(specs, engine.TaskSpec{
				Name:   name,
				Driver: r.cfg.App.MapDriver,
				Invocations: []map[string]engine.Input{
					{"in": {Class: r.cfg.App.InClass, Buf: buf}},
				},
				ClosureBytes:    r.cfg.ClosureBytes,
				Faults:          r.cfg.Injector.ForTask(name),
				CheckpointEvery: r.cfg.CheckpointEvery,
				Checkpoints:     r.ckpts,
			})
			targets = append(targets, target{w, m})
		}
	}
	if len(specs) == 0 {
		return nil
	}
	job, err := r.phase(fmt.Sprintf("stream-%s-map", r.cfg.App.Name), specs)
	if job != nil {
		r.res.Stats.Add(job.Stats)
	}
	if err != nil {
		return fmt.Errorf("stream: map phase: %w", err)
	}
	for k, out := range job.Outputs {
		tg := targets[k]
		st := r.open[tg.w]
		st.acc[tg.m] = append(st.acc[tg.m], out...)
		if err := st.writers[tg.m].Add(out); err != nil {
			return fmt.Errorf("stream: window %d shuffle: %w", tg.w, err)
		}
	}
	for _, w := range order {
		st := r.open[w]
		for m, buf := range staged[w] {
			if len(buf) == 0 {
				continue
			}
			if err := st.writers[m].Sync(); err != nil {
				return fmt.Errorf("stream: window %d sync: %w", w, err)
			}
		}
		st.flushes++
	}
	return nil
}

// checkpoint persists the cursor and every open window's slot state, so
// a killed run resumes mid-window instead of recomputing.
func (r *runner) checkpoint() {
	for w, st := range r.open {
		for m := range st.acc {
			r.ckpts.Save(r.slotKey(w, m), st.flushes, st.acc[m])
		}
		r.ckpts.Save(r.metaKey(w), st.flushes, u64le(st.records))
	}
	r.ckpts.Save(r.cursorKey(), int(r.res.Batches), u64le(r.cursor))
}

// closeWindow finishes window w: writers close, lineage registers, the
// reduce fold runs over the fetched (merge-sorted) blocks, and the
// window's output is emitted and durably saved.
func (r *runner) closeWindow(w int) error {
	wspan := r.span.Child("stream", "window", trace.I64("idx", int64(w)))
	st := r.open[w]
	var out []byte
	if st != nil {
		var err error
		out, err = r.foldWindow(st)
		if err != nil {
			wspan.End(trace.Str("outcome", "error"))
			return fmt.Errorf("stream: window %d: %w", w, err)
		}
		delete(r.open, w)
	}
	// else: no record landed in this window — its output is empty.
	for m := 0; m < r.cfg.MapSlots; m++ {
		r.ckpts.Drop(r.slotKey(w, m))
	}
	r.ckpts.Drop(r.metaKey(w))
	r.ckpts.Save(r.outKey(w), w, out)
	r.res.Windows = append(r.res.Windows, out)
	r.cfg.Trace.Registry().Counter("stream_windows_total").Add(1)
	wspan.End(trace.Str("outcome", "ok"), trace.I64("bytes", int64(len(out))))
	return nil
}

// foldWindow drains a window's exchange and folds each key group.
func (r *runner) foldWindow(st *windowState) ([]byte, error) {
	exName := r.exName(st.idx)
	for m, wr := range st.writers {
		if err := wr.Close(); err != nil {
			return nil, fmt.Errorf("shuffle close: %w", err)
		}
		// Block lineage: losing every replica of this slot's blocks
		// re-runs just this writer over the retained map-output bytes.
		part := st.acc[m]
		slot := m
		r.lin.Register(exName, slot, func() error {
			rw := st.ex.RecoveryWriter(slot)
			if err := rw.Add(part); err != nil {
				return err
			}
			return rw.Close()
		})
	}
	blocks, err := r.guardedFetch(exName, st.ex)
	if err != nil {
		return nil, fmt.Errorf("shuffle fetch: %w", err)
	}
	shufStats := st.ex.Stats()
	shufStats.AddTo(&r.res.Stats)
	r.res.ShuffleBytes += shufStats.BytesFetched

	var specs []engine.TaskSpec
	var blockOf []int
	for i, block := range blocks {
		if len(block) == 0 {
			continue
		}
		// Canonical reduce order: merge-sort the fetched block by key
		// (map-side blocks are each key-sorted; this is the reduce-side
		// merge), then fold groups. Stable sort keeps same-key records
		// in shuffle (key, seq) order, so fold order is deterministic.
		block = r.sortByKey(block)
		blocks[i] = block
		_, groups, err := engine.GroupByKey(r.comp.Layouts, r.cfg.App.MapOutClass,
			r.cfg.App.KeyField, block)
		if err != nil {
			return nil, fmt.Errorf("grouping: %w", err)
		}
		invocations := make([]map[string]engine.Input, 0, len(groups))
		for _, offs := range groups {
			invocations = append(invocations, map[string]engine.Input{
				"in": {Class: r.cfg.App.MapOutClass, Buf: block, Offs: offs, Owned: true},
			})
		}
		name := fmt.Sprintf("stream-%s-w%d-red%d", r.cfg.App.Name, st.idx, i)
		specs = append(specs, engine.TaskSpec{
			Name:            name,
			Driver:          r.cfg.App.ReduceDriver,
			Invocations:     invocations,
			ClosureBytes:    r.cfg.ClosureBytes,
			Faults:          r.cfg.Injector.ForTask(name),
			CheckpointEvery: r.cfg.CheckpointEvery,
			Checkpoints:     r.ckpts,
		})
		blockOf = append(blockOf, i)
	}
	outs := make([][]byte, len(blocks))
	if len(specs) > 0 {
		job, err := r.phase(fmt.Sprintf("stream-%s-w%d-reduce", r.cfg.App.Name, st.idx), specs)
		if job != nil {
			r.res.Stats.Add(job.Stats)
		}
		if err != nil {
			return nil, fmt.Errorf("reduce phase: %w", err)
		}
		for k, o := range job.Outputs {
			outs[blockOf[k]] = o
		}
	}
	var out []byte
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}

// sortByKey rebuilds buf with records sorted by canonical key bytes
// (stable, so same-key order is preserved) — the reduce-side merge.
func (r *runner) sortByKey(buf []byte) []byte {
	offs := engine.RecordOffsets(buf)
	keys := make([]string, len(offs))
	for i, off := range offs {
		k, err := engine.KeyOf(r.comp.Layouts, r.cfg.App.MapOutClass,
			r.cfg.App.KeyField, buf, off)
		if err != nil {
			panic(fmt.Sprintf("stream: sortByKey: %v", err))
		}
		keys[i] = string(k)
	}
	idx := make([]int, len(offs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]byte, 0, len(buf))
	for _, i := range idx {
		off := offs[i]
		out = append(out, buf[off:off+serde.RecordSize(buf, off)]...)
	}
	return out
}

// phase runs one pooled phase under the stage watchdog, mirroring the
// batch engines: a timed-out phase is presumed hung and re-executed
// once, with checkpointed tasks resuming from persisted fold state.
func (r *runner) phase(name string, specs []engine.TaskSpec) (*engine.JobResult, error) {
	if err := engine.Canceled(r.cfg.Canceled); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	pool := &engine.Pool{Workers: r.cfg.Workers, MaxAttempts: r.cfg.MaxAttempts,
		Backoff: r.cfg.RetryBackoff, Jitter: r.cfg.Jitter}
	exec := func() *engine.Executor {
		return &engine.Executor{C: r.comp, Mode: r.cfg.Mode, HeapCfg: r.cfg.HeapCfg,
			Backend: r.cfg.Backend,
			Breaker: r.cfg.Breaker, VerifyInputs: r.cfg.VerifyInputs,
			Hedge: r.cfg.Hedge, Trace: r.cfg.Trace, Tenant: r.cfg.Tenant}
	}
	if r.cfg.StageDeadline <= 0 {
		return pool.Run(exec, specs)
	}
	wd := recovery.Watchdog{Deadline: r.cfg.StageDeadline, Trace: r.cfg.Trace}
	run := func() (any, error) { return pool.Run(exec, specs) }
	res, err := wd.Guard(name, run)
	if err != nil && errors.Is(err, recovery.ErrStageTimeout) {
		res, err = wd.Guard(name+"#retry", run)
	}
	job, _ := res.(*engine.JobResult)
	return job, err
}

// guardedFetch bounds a window's terminal fetch with the watchdog.
func (r *runner) guardedFetch(name string, ex *shuffle.Exchange) ([][]byte, error) {
	if err := engine.Canceled(r.cfg.Canceled); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if r.cfg.StageDeadline <= 0 {
		return ex.FetchAll()
	}
	wd := recovery.Watchdog{Deadline: r.cfg.StageDeadline, Trace: r.cfg.Trace}
	res, err := wd.Guard(name+"/fetch", func() (any, error) { return ex.FetchAll() })
	blocks, _ := res.([][]byte)
	return blocks, err
}

// resume restores a prior run's progress from the checkpoint store:
// the ingest cursor, every already-closed window's saved output, and
// every open window's incremental shuffle state. A corrupt or missing
// slot checkpoint falls back to recomputing that window from the
// deterministic source — slower, never wrong.
func (r *runner) resume() error {
	ck, ok, _ := r.ckpts.Load(r.cursorKey())
	if !ok {
		return nil
	}
	r.cursor = leU64(ck.Data)
	// Closed windows are a prefix: emit their saved outputs verbatim.
	for r.closed < r.cfg.Windows {
		oc, ok, _ := r.ckpts.Load(r.outKey(r.closed))
		if !ok {
			break
		}
		r.res.Windows = append(r.res.Windows, oc.Data)
		r.closed++
	}
	if r.cursor == 0 {
		return nil
	}
	maxW := r.cfg.Windows
	if _, hi := r.windowRange(r.arrival(r.cursor - 1)); hi+1 < maxW {
		maxW = hi + 1
	}
	reg := r.cfg.Trace.Registry()
	for w := r.closed; w < maxW; w++ {
		meta, ok, _ := r.ckpts.Load(r.metaKey(w))
		if !ok {
			// Never checkpointed: either untouched (fine — empty) or its
			// meta rotted; a source scan below decides which.
			if r.sourceTouches(w) {
				if err := r.rebuildFromSource(w); err != nil {
					return err
				}
			}
			continue
		}
		st, err := r.window(w)
		if err != nil {
			return err
		}
		st.records = leU64(meta.Data)
		st.flushes = meta.Seq
		intact := true
		for m := 0; m < r.cfg.MapSlots; m++ {
			sc, ok, corrupt := r.ckpts.Load(r.slotKey(w, m))
			if corrupt || (!ok && r.slotExpected(st, m)) {
				intact = false
				break
			}
			if ok && len(sc.Data) > 0 {
				st.acc[m] = sc.Data
			}
		}
		if !intact {
			// Tear down the half-restored state and recompute.
			for _, wr := range st.writers {
				wr.Abandon()
			}
			st.ex.Discard()
			delete(r.open, w)
			if err := r.rebuildFromSource(w); err != nil {
				return err
			}
			continue
		}
		// Replay the accumulated map output through fresh writers: a
		// single Add preserves record order, so shuffle sequence numbers
		// — and therefore block bytes — match the original run's.
		for m := 0; m < r.cfg.MapSlots; m++ {
			if len(st.acc[m]) == 0 {
				continue
			}
			if err := st.writers[m].Add(st.acc[m]); err != nil {
				return fmt.Errorf("stream: resume window %d: %w", w, err)
			}
			if err := st.writers[m].Sync(); err != nil {
				return fmt.Errorf("stream: resume window %d: %w", w, err)
			}
		}
		r.res.Resumed++
		reg.Counter("stream_window_resumes_total").Add(1)
		r.cfg.Trace.Instant("stream", "window-resume",
			trace.I64("idx", int64(w)), trace.I64("records", st.records))
	}
	return nil
}

// slotExpected reports whether round-robin assignment has placed at
// least one record in slot m of a window holding st.records records.
func (r *runner) slotExpected(st *windowState, m int) bool {
	return st.records > int64(m)
}

// sourceTouches reports whether any ingested record maps into window w.
func (r *runner) sourceTouches(w int) bool {
	for i := int64(0); i < r.cursor; i++ {
		lo, hi := r.windowRange(r.arrival(i))
		if lo <= w && w <= hi {
			return true
		}
	}
	return false
}

// rebuildFromSource recomputes window w's state by replaying the
// deterministic source over the already-ingested prefix — the fallback
// when a window checkpoint is lost or corrupt. The map phase re-runs
// (with fault injection live), and the rebuilt writers see records in
// the original order, so the recovered state stays byte-identical.
func (r *runner) rebuildFromSource(w int) error {
	st, err := r.window(w)
	if err != nil {
		return err
	}
	bufs := make([][]byte, r.cfg.MapSlots)
	for i := int64(0); i < r.cursor; i++ {
		lo, hi := r.windowRange(r.arrival(i))
		if w < lo || hi < w {
			continue
		}
		slot := int(st.records % int64(r.cfg.MapSlots))
		bufs[slot], err = r.comp.Codec.Encode(r.cfg.App.InClass, r.src.At(i), bufs[slot])
		if err != nil {
			return fmt.Errorf("stream: rebuild window %d: %w", w, err)
		}
		st.records++
	}
	var specs []engine.TaskSpec
	var slots []int
	for m, buf := range bufs {
		if len(buf) == 0 {
			continue
		}
		name := fmt.Sprintf("stream-%s-w%d-rb-m%d", r.cfg.App.Name, w, m)
		specs = append(specs, engine.TaskSpec{
			Name:   name,
			Driver: r.cfg.App.MapDriver,
			Invocations: []map[string]engine.Input{
				{"in": {Class: r.cfg.App.InClass, Buf: buf}},
			},
			ClosureBytes:    r.cfg.ClosureBytes,
			Faults:          r.cfg.Injector.ForTask(name),
			CheckpointEvery: r.cfg.CheckpointEvery,
			Checkpoints:     r.ckpts,
		})
		slots = append(slots, m)
	}
	if len(specs) > 0 {
		job, err := r.phase(fmt.Sprintf("stream-%s-w%d-rebuild", r.cfg.App.Name, w), specs)
		if job != nil {
			r.res.Stats.Add(job.Stats)
		}
		if err != nil {
			return fmt.Errorf("stream: rebuild window %d: %w", w, err)
		}
		for k, out := range job.Outputs {
			m := slots[k]
			st.acc[m] = out
			if err := st.writers[m].Add(out); err != nil {
				return fmt.Errorf("stream: rebuild window %d: %w", w, err)
			}
			if err := st.writers[m].Sync(); err != nil {
				return fmt.Errorf("stream: rebuild window %d: %w", w, err)
			}
		}
	}
	st.flushes = 1
	r.res.Rebuilt++
	r.cfg.Trace.Registry().Counter("stream_window_rebuilds_total").Add(1)
	r.cfg.Trace.Instant("stream", "window-rebuild",
		trace.I64("idx", int64(w)), trace.I64("records", st.records))
	return nil
}

// abandonOpen tears down every open window on cancellation: writers
// abandon their spill runs, exchanges discard their published blocks —
// nothing leaks.
func (r *runner) abandonOpen() {
	for _, st := range r.open {
		for _, wr := range st.writers {
			wr.Abandon()
		}
		st.ex.Discard()
	}
	r.open = map[int]*windowState{}
}

// finishStats computes throughput and batch latency quantiles.
func (r *runner) finishStats() {
	if r.res.Wall > 0 {
		r.res.RecordsPerSec = float64(r.res.Records) / r.res.Wall.Seconds()
	}
	if len(r.lats) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), r.lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	r.res.BatchP50 = q(0.5)
	r.res.BatchP99 = q(0.99)
}
