package stream_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/recovery"
	. "repro/internal/stream"
	"repro/internal/trace"
)

// base returns a small, fully deterministic streaming config.
func base(t *testing.T, app string, mode engine.Mode) Config {
	t.Helper()
	spec, err := App(app)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		App:      spec,
		Mode:     mode,
		Workers:  2,
		MapSlots: 2,
		Reducers: 2,
		Seed:     7,
		Interval: time.Millisecond,
		CutBy:    Cut{Count: 5},
		WindowBy: Window{Size: 8 * time.Millisecond},
		Windows:  3,
	}
}

// batchified turns a config into its one-giant-batch reference: every
// record of the run lands in a single micro-batch, so the run is the
// batch-computation baseline the streamed outputs must match.
func batchified(cfg Config) Config {
	cfg.CutBy = Cut{Count: 1 << 30}
	cfg.Checkpoints = recovery.NewCheckpointStore()
	cfg.Lineage = recovery.NewLineage()
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("stream.Run(%s/%s): %v", cfg.App.Name, cfg.Mode, err)
	}
	return res
}

func assertWindowsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Windows) != len(want.Windows) {
		t.Fatalf("%s: %d windows, want %d", label, len(got.Windows), len(want.Windows))
	}
	for w := range got.Windows {
		if !bytes.Equal(got.Windows[w], want.Windows[w]) {
			t.Fatalf("%s: window %d differs (%d vs %d bytes)",
				label, w, len(got.Windows[w]), len(want.Windows[w]))
		}
	}
}

// TestStreamedEqualsBatch is the core differential contract: streamed
// micro-batches produce byte-identical window outputs to a single-batch
// run over the same records, for both apps, both modes, both backends —
// and the two modes agree with each other.
func TestStreamedEqualsBatch(t *testing.T) {
	for _, app := range AppNames {
		for _, backend := range []engine.Backend{engine.BackendCompiled, engine.BackendInterp} {
			var perMode []*Result
			for _, mode := range []engine.Mode{engine.Gerenuk, engine.Baseline} {
				cfg := base(t, app, mode)
				cfg.Backend = backend
				streamed := mustRun(t, cfg)
				ref := mustRun(t, batchified(cfg))
				label := app + "/" + mode.String() + "/" + backend.String()
				if len(streamed.Windows) != cfg.Windows {
					t.Fatalf("%s: %d windows, want %d", label, len(streamed.Windows), cfg.Windows)
				}
				if streamed.Batches <= ref.Batches {
					t.Fatalf("%s: streamed run cut %d batches, reference %d — no streaming happened",
						label, streamed.Batches, ref.Batches)
				}
				if streamed.Records != ref.Records {
					t.Fatalf("%s: streamed %d records, reference %d", label, streamed.Records, ref.Records)
				}
				assertWindowsEqual(t, label+" streamed-vs-batch", streamed, ref)
				nonEmpty := 0
				for _, w := range streamed.Windows {
					if len(w) > 0 {
						nonEmpty++
					}
				}
				if nonEmpty == 0 {
					t.Fatalf("%s: every window empty — vacuous equality", label)
				}
				perMode = append(perMode, streamed)
			}
			assertWindowsEqual(t, app+"/"+backend.String()+" gerenuk-vs-baseline",
				perMode[0], perMode[1])
		}
	}
}

// TestSlidingWindows checks the sliding assignment (each record folded
// into every window covering its arrival) against the batch reference.
func TestSlidingWindows(t *testing.T) {
	for _, mode := range []engine.Mode{engine.Gerenuk, engine.Baseline} {
		cfg := base(t, "wordcount", mode)
		cfg.WindowBy = Window{Size: 8 * time.Millisecond, Slide: 4 * time.Millisecond}
		cfg.Windows = 4
		cfg.CutBy = Cut{Count: 3}
		streamed := mustRun(t, cfg)
		ref := mustRun(t, batchified(cfg))
		assertWindowsEqual(t, "sliding/"+mode.String(), streamed, ref)
	}
}

// TestTimeSliceCut checks the time-based cut policy yields the same
// window outputs as the count-based one.
func TestTimeSliceCut(t *testing.T) {
	cfg := base(t, "wordcount", engine.Gerenuk)
	cfg.CutBy = Cut{Slice: 3 * time.Millisecond}
	byTime := mustRun(t, cfg)
	cfg.CutBy = Cut{Count: 5}
	byCount := mustRun(t, cfg)
	if byTime.Batches < 2 {
		t.Fatalf("time-slice cut produced %d batches, want several", byTime.Batches)
	}
	assertWindowsEqual(t, "slice-vs-count", byTime, byCount)
}

// TestStreamChaosDifferential runs the streamed pipeline under the
// recovery chaos plan — kills, replica loss, checkpoint rot, flaky
// fetches — and requires window outputs identical to a fault-free
// reference in both modes.
func TestStreamChaosDifferential(t *testing.T) {
	for _, app := range AppNames {
		var perMode []*Result
		for _, mode := range []engine.Mode{engine.Gerenuk, engine.Baseline} {
			clean := base(t, app, mode)
			ref := mustRun(t, clean)

			tr := trace.New()
			cfg := base(t, app, mode)
			cfg.Trace = tr
			cfg.Injector = faults.RecoveryChaos(11)
			cfg.VerifyInputs = true
			cfg.MaxAttempts = 4
			cfg.CheckpointEvery = 2
			cfg.StageDeadline = 5 * time.Second
			cfg.Shuffle.Replicas = 2
			chaos := mustRun(t, cfg)
			label := app + "/" + mode.String() + "/chaos"
			assertWindowsEqual(t, label, chaos, ref)
			reg := tr.Registry()
			if n := reg.Counter("stream_batches_total").Value(); n == 0 {
				t.Fatalf("%s: stream_batches_total = 0", label)
			}
			if n := reg.Counter("stream_windows_total").Value(); n != int64(cfg.Windows) {
				t.Fatalf("%s: stream_windows_total = %d, want %d", label, n, cfg.Windows)
			}
			if n := reg.Counter("shuffle_incremental_syncs_total").Value(); n == 0 {
				t.Fatalf("%s: no incremental syncs under chaos", label)
			}
			perMode = append(perMode, chaos)
		}
		assertWindowsEqual(t, app+"/chaos gerenuk-vs-baseline", perMode[0], perMode[1])
	}
}

// TestKillMidWindowResume kills the run after two batches (windows
// still open), then resumes from the shared checkpoint store: the
// resumed run must pick up mid-window — without reprocessing the
// ingested prefix — and emit byte-identical window outputs.
func TestKillMidWindowResume(t *testing.T) {
	for _, app := range AppNames {
		for _, mode := range []engine.Mode{engine.Gerenuk, engine.Baseline} {
			ref := mustRun(t, base(t, app, mode))

			store := recovery.NewCheckpointStore()
			tr := trace.New()
			cfg := base(t, app, mode)
			cfg.Checkpoints = store
			cfg.CrashAfterBatches = 2
			_, err := Run(cfg)
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("%s/%s: crash hook: err = %v, want ErrCrashed", app, mode, err)
			}

			cfg.CrashAfterBatches = 0
			cfg.Resume = true
			cfg.Trace = tr
			resumed := mustRun(t, cfg)
			label := app + "/" + mode.String() + "/resume"
			assertWindowsEqual(t, label, resumed, ref)
			if resumed.Resumed == 0 {
				t.Fatalf("%s: no window resumed from checkpoint", label)
			}
			if resumed.Records >= ref.Records {
				t.Fatalf("%s: resumed run ingested %d records (full run %d) — it recomputed instead of resuming",
					label, resumed.Records, ref.Records)
			}
			if n := tr.Registry().Counter("stream_window_resumes_total").Value(); n == 0 {
				t.Fatalf("%s: stream_window_resumes_total = 0", label)
			}
		}
	}
}

// TestResumeRebuildsCorruptWindow rots one slot checkpoint between
// crash and resume; the resumed run must detect it, recompute that
// window from the deterministic source, and still match byte-for-byte.
func TestResumeRebuildsCorruptWindow(t *testing.T) {
	ref := mustRun(t, base(t, "wordcount", engine.Gerenuk))

	store := recovery.NewCheckpointStore()
	cfg := base(t, "wordcount", engine.Gerenuk)
	cfg.Checkpoints = store
	cfg.CrashAfterBatches = 2
	if _, err := Run(cfg); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash hook: %v", err)
	}
	if !store.Corrupt("stream/wordcount/w0/m0") {
		t.Fatal("no slot checkpoint to corrupt — crash left no open window state")
	}

	cfg.CrashAfterBatches = 0
	cfg.Resume = true
	resumed := mustRun(t, cfg)
	assertWindowsEqual(t, "corrupt-resume", resumed, ref)
	if resumed.Rebuilt == 0 {
		t.Fatal("corrupt slot checkpoint did not trigger a source rebuild")
	}
}

// TestDiskCheckpointSurvivesRestart is the end-to-end durability story:
// crash with a disk-backed store, reopen the directory in a fresh store
// (a new process), resume, and match the uninterrupted run.
func TestDiskCheckpointSurvivesRestart(t *testing.T) {
	ref := mustRun(t, base(t, "streamrank", engine.Gerenuk))

	dir := t.TempDir()
	store, err := recovery.OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base(t, "streamrank", engine.Gerenuk)
	cfg.Checkpoints = store
	cfg.CrashAfterBatches = 2
	if _, err := Run(cfg); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash hook: %v", err)
	}

	reopened, err := recovery.OpenDiskCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoints = reopened
	cfg.CrashAfterBatches = 0
	cfg.Resume = true
	resumed := mustRun(t, cfg)
	assertWindowsEqual(t, "disk-restart", resumed, ref)
	if resumed.Resumed == 0 {
		t.Fatal("no window resumed across the simulated restart")
	}
}

// TestStreamCancellation closes the cancel channel before the run: the
// loop must observe it at the batch boundary, abandon open state, and
// surface engine.ErrCanceled.
func TestStreamCancellation(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	cfg := base(t, "wordcount", engine.Gerenuk)
	cfg.Canceled = cancel
	res, err := Run(cfg)
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("err = %v, want engine.ErrCanceled", err)
	}
	if len(res.Windows) != 0 {
		t.Fatalf("canceled run emitted %d windows", len(res.Windows))
	}
}

// TestJobIDScoping runs two crashed jobs into one shared store under
// different job IDs and resumes both: scoped state never aliases.
func TestJobIDScoping(t *testing.T) {
	ref := mustRun(t, base(t, "wordcount", engine.Gerenuk))
	store := recovery.NewCheckpointStore()
	for _, id := range []string{"job-a", "job-b"} {
		cfg := base(t, "wordcount", engine.Gerenuk)
		cfg.Checkpoints = store
		cfg.JobID = id
		cfg.CrashAfterBatches = 2
		if _, err := Run(cfg); !errors.Is(err, ErrCrashed) {
			t.Fatalf("%s: crash hook: %v", id, err)
		}
	}
	for _, id := range []string{"job-a", "job-b"} {
		cfg := base(t, "wordcount", engine.Gerenuk)
		cfg.Checkpoints = store
		cfg.JobID = id
		cfg.Resume = true
		resumed := mustRun(t, cfg)
		assertWindowsEqual(t, id+"/resume", resumed, ref)
	}
}
