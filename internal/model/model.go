// Package model defines the class schemas shared by the simulated managed
// heap, the Gerenuk compiler and the inline serializer.
//
// A ClassDef describes a user-visible data type (e.g. LabeledPoint) as a
// sequence of typed fields. The Registry compiles definitions into Class
// values carrying the JVM-style heap layout: a 16-byte object header
// followed by fields at aligned offsets, with references taking 8 bytes.
// These layout constants reproduce the space accounting used in the
// paper's Figure 4 (8x16-byte headers, 8-byte references).
package model

import (
	"fmt"
	"sort"
)

// Kind enumerates the primitive value kinds plus references.
type Kind uint8

// Value kinds. KindRef covers both object and array references.
const (
	KindInvalid Kind = iota
	KindBool
	KindByte
	KindChar
	KindShort
	KindInt
	KindLong
	KindFloat
	KindDouble
	KindRef
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindBool:    "bool",
	KindByte:    "byte",
	KindChar:    "char",
	KindShort:   "short",
	KindInt:     "int",
	KindLong:    "long",
	KindFloat:   "float",
	KindDouble:  "double",
	KindRef:     "ref",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Size returns the number of bytes a value of this kind occupies, both in
// the simulated heap and in the inlined native format.
func (k Kind) Size() int {
	switch k {
	case KindBool, KindByte:
		return 1
	case KindChar, KindShort:
		return 2
	case KindInt, KindFloat:
		return 4
	case KindLong, KindDouble, KindRef:
		return 8
	default:
		return 0
	}
}

// IsPrimitive reports whether the kind is a primitive (non-reference) kind.
func (k Kind) IsPrimitive() bool { return k != KindInvalid && k != KindRef }

// Layout constants of the simulated managed heap. They mirror a 64-bit
// HotSpot-style JVM without compressed oops: a two-word object header and
// word-sized references. The paper's Figure 4 arithmetic (8x16 + 9x8 bytes
// of pure overhead for three LabeledPoints) uses exactly these values.
const (
	// HeaderSize is the per-object header: one word of class/flags
	// metadata and one word of identity hash / lock state.
	HeaderSize = 16
	// ArrayLengthSize is the int32 length slot that follows an array
	// object's header.
	ArrayLengthSize = 4
	// ArrayDataOffset is where array element storage begins (header +
	// length + padding to an 8-byte boundary).
	ArrayDataOffset = HeaderSize + 8
	// RefSize is the size of an object reference field or array slot.
	RefSize = 8
	// ObjectAlign is the allocation granule.
	ObjectAlign = 8
)

// Type describes the static type of a field, local or array element.
type Type struct {
	Kind  Kind   // KindRef for object and array types
	Class string // class name when Kind==KindRef and Array==false
	Array bool   // true for array types
	Elem  *Type  // element type when Array==true
}

// Prim returns a primitive type of kind k.
func Prim(k Kind) Type { return Type{Kind: k} }

// Object returns a reference type to the named class.
func Object(class string) Type { return Type{Kind: KindRef, Class: class} }

// ArrayOf returns an array type with the given element type.
func ArrayOf(elem Type) Type {
	e := elem
	return Type{Kind: KindRef, Array: true, Elem: &e}
}

// IsRef reports whether the type is a reference (object or array) type.
func (t Type) IsRef() bool { return t.Kind == KindRef }

// IsPrimArray reports whether t is an array of primitives.
func (t Type) IsPrimArray() bool { return t.Array && t.Elem != nil && t.Elem.Kind != KindRef }

// IsRefArray reports whether t is an array of references.
func (t Type) IsRefArray() bool { return t.Array && t.Elem != nil && t.Elem.Kind == KindRef }

func (t Type) String() string {
	if t.Array {
		return t.Elem.String() + "[]"
	}
	if t.Kind == KindRef {
		return t.Class
	}
	return t.Kind.String()
}

// Equal reports deep type equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind || t.Class != o.Class || t.Array != o.Array {
		return false
	}
	if t.Array {
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

// FieldDef declares one field of a class.
type FieldDef struct {
	Name string
	Type Type
}

// ClassDef declares a data type by name and field list.
type ClassDef struct {
	Name   string
	Fields []FieldDef
}

// Field is a compiled field: its definition plus the byte offset of its
// storage inside a heap object of the owning class.
type Field struct {
	FieldDef
	// Offset is the byte offset from the object base in the simulated
	// heap (header included).
	Offset int
	// Index is the declaration position.
	Index int
}

// Class is a compiled class with its heap layout.
type Class struct {
	Name   string
	ID     uint32
	Fields []Field
	// Size is the total heap size of an instance, header included and
	// aligned to ObjectAlign.
	Size int

	byName map[string]int
}

// Field returns the compiled field with the given name.
func (c *Class) Field(name string) (Field, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Field{}, false
	}
	return c.Fields[i], true
}

// MustField is Field, panicking on unknown names. Intended for test and
// application-definition code where the schema is statically known.
func (c *Class) MustField(name string) Field {
	f, ok := c.Field(name)
	if !ok {
		panic(fmt.Sprintf("model: class %s has no field %q", c.Name, name))
	}
	return f
}

// RefFields returns the reference-typed fields of the class in
// declaration order.
func (c *Class) RefFields() []Field {
	var out []Field
	for _, f := range c.Fields {
		if f.Type.IsRef() {
			out = append(out, f)
		}
	}
	return out
}

// Registry holds the compiled classes of one program.
type Registry struct {
	byName map[string]*Class
	byID   []*Class
}

// NewRegistry returns an empty registry. Class IDs start at 1; ID 0 is
// reserved to mean "no class" in heap headers.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Class), byID: []*Class{nil}}
}

// Define compiles and registers a class definition, computing its heap
// layout. Fields are laid out in declaration order at offsets aligned to
// the field size, starting after the object header; the instance size is
// rounded up to ObjectAlign. Define panics on duplicate names, unknown
// kinds, or empty definitions, since schemas are static program inputs.
func (r *Registry) Define(def ClassDef) *Class {
	if def.Name == "" {
		panic("model: class with empty name")
	}
	if _, dup := r.byName[def.Name]; dup {
		panic(fmt.Sprintf("model: duplicate class %q", def.Name))
	}
	c := &Class{
		Name:   def.Name,
		ID:     uint32(len(r.byID)),
		byName: make(map[string]int, len(def.Fields)),
	}
	off := HeaderSize
	for i, fd := range def.Fields {
		if fd.Name == "" {
			panic(fmt.Sprintf("model: class %q: field %d has empty name", def.Name, i))
		}
		if _, dup := c.byName[fd.Name]; dup {
			panic(fmt.Sprintf("model: class %q: duplicate field %q", def.Name, fd.Name))
		}
		sz := fieldSize(fd.Type)
		if sz == 0 {
			panic(fmt.Sprintf("model: class %q: field %q has invalid type", def.Name, fd.Name))
		}
		off = align(off, sz)
		c.Fields = append(c.Fields, Field{FieldDef: fd, Offset: off, Index: i})
		c.byName[fd.Name] = i
		off += sz
	}
	c.Size = align(off, ObjectAlign)
	r.byName[def.Name] = c
	r.byID = append(r.byID, c)
	return c
}

func fieldSize(t Type) int {
	if t.IsRef() {
		return RefSize
	}
	return t.Kind.Size()
}

func align(n, a int) int { return (n + a - 1) &^ (a - 1) }

// Lookup returns the class with the given name.
func (r *Registry) Lookup(name string) (*Class, bool) {
	c, ok := r.byName[name]
	return c, ok
}

// MustLookup is Lookup, panicking on unknown names.
func (r *Registry) MustLookup(name string) *Class {
	c, ok := r.byName[name]
	if !ok {
		panic(fmt.Sprintf("model: unknown class %q", name))
	}
	return c
}

// ByID returns the class with the given ID, or nil.
func (r *Registry) ByID(id uint32) *Class {
	if id == 0 || int(id) >= len(r.byID) {
		return nil
	}
	return r.byID[id]
}

// Names returns the registered class names in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered classes.
func (r *Registry) Len() int { return len(r.byName) }

// ArraySize returns the heap size of an array object holding n elements
// of the given kind, aligned to ObjectAlign.
func ArraySize(elem Kind, n int) int {
	return align(ArrayDataOffset+elem.Size()*n, ObjectAlign)
}

// ArrayRefSize returns the heap size of an array of n references.
func ArrayRefSize(n int) int {
	return align(ArrayDataOffset+RefSize*n, ObjectAlign)
}

// StringClassName is the reserved class name used for string data. The
// data structure analyzer treats strings as char arrays (paper section
// 3.3, "Special Cases"); the heap represents a string as an object with a
// single field "chars" referencing a char array.
const StringClassName = "java/lang/String"

// DefineString registers the built-in string class in the registry and
// returns it. Safe to call once per registry.
func (r *Registry) DefineString() *Class {
	return r.Define(ClassDef{
		Name: StringClassName,
		Fields: []FieldDef{
			{Name: "chars", Type: ArrayOf(Prim(KindChar))},
		},
	})
}
