package model

import (
	"testing"
	"testing/quick"
)

func TestKindSizes(t *testing.T) {
	cases := []struct {
		k    Kind
		size int
	}{
		{KindBool, 1}, {KindByte, 1}, {KindChar, 2}, {KindShort, 2},
		{KindInt, 4}, {KindFloat, 4}, {KindLong, 8}, {KindDouble, 8},
		{KindRef, 8}, {KindInvalid, 0},
	}
	for _, c := range cases {
		if got := c.k.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.k, got, c.size)
		}
	}
}

func TestLayoutSimpleClass(t *testing.T) {
	r := NewRegistry()
	// The paper's section 3.3 example: class C { int a; long[] b; double c; }
	c := r.Define(ClassDef{
		Name: "C",
		Fields: []FieldDef{
			{Name: "a", Type: Prim(KindInt)},
			{Name: "b", Type: ArrayOf(Prim(KindLong))},
			{Name: "c", Type: Prim(KindDouble)},
		},
	})
	a := c.MustField("a")
	if a.Offset != HeaderSize {
		t.Errorf("field a offset = %d, want %d", a.Offset, HeaderSize)
	}
	b := c.MustField("b")
	if b.Offset != HeaderSize+8 { // aligned up from 20 to 24
		t.Errorf("field b offset = %d, want %d", b.Offset, HeaderSize+8)
	}
	cc := c.MustField("c")
	if cc.Offset != HeaderSize+16 {
		t.Errorf("field c offset = %d, want %d", cc.Offset, HeaderSize+16)
	}
	if c.Size != HeaderSize+24 {
		t.Errorf("class size = %d, want %d", c.Size, HeaderSize+24)
	}
}

func TestLayoutPacksSmallFields(t *testing.T) {
	r := NewRegistry()
	c := r.Define(ClassDef{
		Name: "P",
		Fields: []FieldDef{
			{Name: "b1", Type: Prim(KindByte)},
			{Name: "b2", Type: Prim(KindByte)},
			{Name: "s", Type: Prim(KindShort)},
			{Name: "i", Type: Prim(KindInt)},
		},
	})
	if got := c.MustField("b1").Offset; got != 16 {
		t.Errorf("b1 offset = %d, want 16", got)
	}
	if got := c.MustField("b2").Offset; got != 17 {
		t.Errorf("b2 offset = %d, want 17", got)
	}
	if got := c.MustField("s").Offset; got != 18 {
		t.Errorf("s offset = %d, want 18", got)
	}
	if got := c.MustField("i").Offset; got != 20 {
		t.Errorf("i offset = %d, want 20", got)
	}
	if c.Size != 24 {
		t.Errorf("size = %d, want 24", c.Size)
	}
}

func TestRegistryLookupAndIDs(t *testing.T) {
	r := NewRegistry()
	a := r.Define(ClassDef{Name: "A", Fields: []FieldDef{{Name: "x", Type: Prim(KindInt)}}})
	b := r.Define(ClassDef{Name: "B", Fields: []FieldDef{{Name: "y", Type: Object("A")}}})
	if a.ID == 0 || b.ID == 0 || a.ID == b.ID {
		t.Fatalf("bad ids: %d %d", a.ID, b.ID)
	}
	if got := r.ByID(a.ID); got != a {
		t.Errorf("ByID(A) mismatch")
	}
	if got, ok := r.Lookup("B"); !ok || got != b {
		t.Errorf("Lookup(B) mismatch")
	}
	if r.ByID(0) != nil || r.ByID(99) != nil {
		t.Errorf("ByID out of range should be nil")
	}
	if got := r.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
}

func TestDefinePanics(t *testing.T) {
	cases := []struct {
		name string
		def  ClassDef
	}{
		{"empty name", ClassDef{}},
		{"empty field name", ClassDef{Name: "X", Fields: []FieldDef{{Name: "", Type: Prim(KindInt)}}}},
		{"invalid kind", ClassDef{Name: "Y", Fields: []FieldDef{{Name: "f", Type: Type{}}}}},
		{"dup field", ClassDef{Name: "Z", Fields: []FieldDef{
			{Name: "f", Type: Prim(KindInt)}, {Name: "f", Type: Prim(KindInt)}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Define(%q) did not panic", c.name)
				}
			}()
			NewRegistry().Define(c.def)
		})
	}
}

func TestDefineDuplicateClassPanics(t *testing.T) {
	r := NewRegistry()
	r.Define(ClassDef{Name: "D", Fields: []FieldDef{{Name: "f", Type: Prim(KindInt)}}})
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate Define did not panic")
		}
	}()
	r.Define(ClassDef{Name: "D", Fields: []FieldDef{{Name: "f", Type: Prim(KindInt)}}})
}

func TestArraySizes(t *testing.T) {
	if got := ArraySize(KindDouble, 3); got != ArrayDataOffset+24 {
		t.Errorf("ArraySize(double,3) = %d", got)
	}
	if got := ArraySize(KindByte, 1); got != ArrayDataOffset+8 { // aligned
		t.Errorf("ArraySize(byte,1) = %d", got)
	}
	if got := ArrayRefSize(2); got != ArrayDataOffset+16 {
		t.Errorf("ArrayRefSize(2) = %d", got)
	}
	if got := ArraySize(KindInt, 0); got != ArrayDataOffset {
		t.Errorf("ArraySize(int,0) = %d", got)
	}
}

func TestTypeHelpers(t *testing.T) {
	arr := ArrayOf(Prim(KindDouble))
	if !arr.IsRef() || !arr.IsPrimArray() || arr.IsRefArray() {
		t.Errorf("double[] classification wrong: %+v", arr)
	}
	refArr := ArrayOf(Object("A"))
	if !refArr.IsRefArray() || refArr.IsPrimArray() {
		t.Errorf("A[] classification wrong")
	}
	if got := refArr.String(); got != "A[]" {
		t.Errorf("String = %q", got)
	}
	nested := ArrayOf(ArrayOf(Prim(KindInt)))
	if got := nested.String(); got != "int[][]" {
		t.Errorf("String = %q", got)
	}
	if !nested.Equal(ArrayOf(ArrayOf(Prim(KindInt)))) {
		t.Errorf("Equal failed for identical nested types")
	}
	if nested.Equal(arr) {
		t.Errorf("Equal true for different types")
	}
}

func TestDefineString(t *testing.T) {
	r := NewRegistry()
	s := r.DefineString()
	f := s.MustField("chars")
	if !f.Type.IsPrimArray() || f.Type.Elem.Kind != KindChar {
		t.Errorf("string chars field wrong: %+v", f.Type)
	}
}

// Property: field offsets never overlap and stay inside the object, for
// arbitrary primitive field sequences.
func TestLayoutNoOverlapProperty(t *testing.T) {
	kinds := []Kind{KindBool, KindByte, KindChar, KindShort, KindInt, KindLong, KindFloat, KindDouble}
	f := func(sel []uint8) bool {
		if len(sel) == 0 || len(sel) > 30 {
			return true
		}
		r := NewRegistry()
		def := ClassDef{Name: "Q"}
		for i, s := range sel {
			def.Fields = append(def.Fields, FieldDef{
				Name: string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Type: Prim(kinds[int(s)%len(kinds)]),
			})
		}
		c := r.Define(def)
		type span struct{ lo, hi int }
		var spans []span
		for _, fl := range c.Fields {
			lo := fl.Offset
			hi := lo + fl.Type.Kind.Size()
			if lo < HeaderSize || hi > c.Size {
				return false
			}
			if lo%fl.Type.Kind.Size() != 0 {
				return false // misaligned
			}
			for _, sp := range spans {
				if lo < sp.hi && sp.lo < hi {
					return false // overlap
				}
			}
			spans = append(spans, span{lo, hi})
		}
		return c.Size%ObjectAlign == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
