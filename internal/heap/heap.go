// Package heap implements the simulated managed runtime heap that the
// baseline (untransformed) execution path runs on.
//
// Gerenuk's claimed wins come from removing three JVM costs: per-object
// header/reference space, garbage collection, and pointer-chasing data
// access. Go has none of these natively, so this package recreates them
// faithfully enough to measure: objects live in a byte-addressed space
// with 16-byte headers and 8-byte references (see internal/model), young
// objects are bump-allocated into a semispace nursery collected by a
// copying scavenger (modeling HotSpot's Parallel Scavenge, the paper's
// baseline GC), survivors are promoted to a bump-allocated old generation
// collected by sliding mark-compact, and every reference store runs a
// write barrier maintaining an old-to-young remembered set. All costs are
// real CPU work and real bytes, so the benchmark harness measures them
// directly rather than estimating.
//
// A Yak-style region policy (the paper's section 4.3 comparison target)
// is provided by the Epoch API: allocations between EpochStart and
// EpochEnd go to a region that is freed wholesale after an escape scan.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// Addr is a virtual address in the simulated heap. 0 is the null reference.
type Addr = int64

// ErrOutOfMemory is returned by allocation when a full collection cannot
// free enough space, mirroring a JVM OutOfMemoryError.
var ErrOutOfMemory = errors.New("heap: out of memory")

// header word0 bit layout:
//
//	bits 0..31   class ID (0 for arrays)
//	bit  32      isArray
//	bits 33..40  element kind (arrays)
//	bit  41      mark (mark-compact)
//	bit  42      forwarded (copying/compacting GC)
//	bits 43..47  age (number of scavenges survived)
//	bit  48      inRemembered (object is in the remembered set)
//
// word1 holds the identity hash, reused as the forwarding pointer while
// bit 42 is set during a collection.
const (
	flagArray      = 1 << 32
	elemKindShift  = 33
	elemKindMask   = 0xFF << elemKindShift
	flagMark       = 1 << 41
	flagForward    = 1 << 42
	ageShift       = 43
	ageMask        = 0x1F << ageShift
	flagRemembered = 1 << 48
)

// Virtual address space layout. Each space is a contiguous range so that
// generation membership checks are two comparisons, as in a real
// generational heap.
const (
	nullGuard  = int64(1 << 12)
	youngBase  = int64(1 << 20)
	spaceAlign = int64(model.ObjectAlign)
	// regionVirtualSpan bounds the virtual addresses of the epoch
	// region, whose physical pages grow on demand.
	regionVirtualSpan = int64(1) << 34
)

// Policy selects the collection behavior.
type Policy int

const (
	// PolicyGenerational is the default: copying young generation plus
	// mark-compact old generation, modeling Parallel Scavenge.
	PolicyGenerational Policy = iota
	// PolicyRegion is the Yak-style policy: epoch allocations go to a
	// region freed wholesale at epoch end after an escape scan. Outside
	// an epoch it behaves like PolicyGenerational.
	PolicyRegion
)

func (p Policy) String() string {
	switch p {
	case PolicyGenerational:
		return "parallel-scavenge"
	case PolicyRegion:
		return "yak"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config sizes the heap.
type Config struct {
	// YoungSize is the size in bytes of one nursery semispace.
	YoungSize int
	// OldSize is the size in bytes of the old generation.
	OldSize int
	// RegionSize is the size of the Yak epoch region (PolicyRegion only).
	RegionSize int
	// TenureAge is the number of scavenges an object survives before
	// promotion. Defaults to 2.
	TenureAge int
	Policy    Policy
	// Trace, when set, receives GC pause instants (with before/after
	// occupancy) and heap-occupancy counter samples on the owning task
	// attempt's trace row, and feeds the gc_pause_ns histogram. nil (the
	// default) disables all heap tracing.
	Trace *trace.Span
}

func (c Config) withDefaults() Config {
	if c.YoungSize <= 0 {
		c.YoungSize = 4 << 20
	}
	if c.OldSize <= 0 {
		c.OldSize = 16 << 20
	}
	if c.RegionSize <= 0 {
		c.RegionSize = c.OldSize
	}
	if c.TenureAge <= 0 {
		c.TenureAge = 2
	}
	return c
}

// Escalate returns a copy of the config with every generation size
// multiplied by factor (defaults applied first), the policy OOM-retry
// loops use to give a task that ran out of memory a larger heap on its
// next attempt instead of failing the job.
func (c Config) Escalate(factor int) Config {
	if factor <= 1 {
		return c
	}
	c = c.withDefaults()
	c.YoungSize *= factor
	c.OldSize *= factor
	c.RegionSize *= factor
	return c
}

// Stats accumulates heap and collector statistics for the metrics harness.
type Stats struct {
	AllocObjects   int64 // objects + arrays allocated
	AllocBytes     int64
	MinorGCs       int64
	MajorGCs       int64
	GCTime         time.Duration
	PromotedBytes  int64
	BarrierStores  int64 // reference stores that ran the write barrier
	RememberedAdds int64
	PeakUsedBytes  int64
	EpochsClosed   int64
	EpochEscapes   int64 // objects copied out of a region at epoch end
	FreedByEpoch   int64 // bytes freed wholesale at epoch ends
}

// RootProvider enumerates GC roots. The visit callback receives the
// address of each root slot so the moving collector can update it.
type RootProvider interface {
	VisitRoots(visit func(slot *Addr))
}

// RootFunc adapts a function to the RootProvider interface.
type RootFunc func(visit func(slot *Addr))

// VisitRoots implements RootProvider.
func (f RootFunc) VisitRoots(visit func(slot *Addr)) { f(visit) }

// Heap is a simulated managed heap. It is not safe for concurrent use: in
// the dataflow engines each executor owns its own Heap, mirroring the
// paper's per-executor worker setup and making "terminate the executor,
// discard its state" aborts trivially safe.
type Heap struct {
	reg *model.Registry
	cfg Config

	young    []byte // both semispaces, contiguous
	fromOff  int    // offset of from-space within young
	toOff    int    // offset of to-space within young
	youngTop int    // bump pointer within from-space
	toTop    int    // bump pointer within to-space during a scavenge
	youngBeg int64
	youngEnd int64

	old    []byte
	oldTop int // bump pointer
	oldBeg int64
	oldEnd int64

	region    []byte
	regionTop int
	regionBeg int64
	regionEnd int64
	inEpoch   bool

	// remembered holds old/region objects that may reference young (or,
	// in an epoch, region) objects; scanned during scavenges.
	remembered []Addr

	roots []RootProvider

	stats Stats

	// gcHist is the shared gc_pause_ns histogram handle, resolved once
	// at construction so collections never pay a registry lookup. nil
	// when tracing is disabled (Observe on nil is a no-op).
	gcHist *trace.Histogram
}

// New creates a heap over the given class registry.
func New(reg *model.Registry, cfg Config) *Heap {
	c := cfg.withDefaults()
	h := &Heap{reg: reg, cfg: c}
	h.young = make([]byte, 2*c.YoungSize)
	h.toOff = c.YoungSize
	h.youngBeg = youngBase
	h.youngEnd = youngBase + int64(2*c.YoungSize)
	h.old = make([]byte, c.OldSize)
	h.oldBeg = alignUp64(h.youngEnd+nullGuard, spaceAlign)
	h.oldEnd = h.oldBeg + int64(c.OldSize)
	if c.Policy == PolicyRegion {
		h.region = make([]byte, c.RegionSize)
	}
	h.regionBeg = alignUp64(h.oldEnd+nullGuard, spaceAlign)
	// The region grows on demand (Yak regions are page lists); reserve a
	// generous virtual span for it.
	h.regionEnd = h.regionBeg + regionVirtualSpan
	h.gcHist = c.Trace.Tracer().Registry().Histogram("gc_pause_ns", trace.LatencyBuckets()...)
	return h
}

// traceGC emits one GC instant event on the owning attempt's trace row
// and records the pause in the shared gc_pause_ns histogram.
func (h *Heap) traceGC(kind string, pause time.Duration, beforeUsed int64) {
	sp := h.cfg.Trace
	if sp == nil {
		return
	}
	used := h.UsedBytes()
	sp.Instant("gc", kind,
		trace.I64("pause_ns", int64(pause)),
		trace.I64("heap_before_bytes", beforeUsed),
		trace.I64("heap_after_bytes", used))
	sp.Counter("heap_used_bytes", used)
	h.gcHist.Observe(float64(pause))
}

// Registry returns the class registry the heap was created with.
func (h *Heap) Registry() *model.Registry { return h.reg }

// Config returns the (defaulted) configuration.
func (h *Heap) Config() Config { return h.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (h *Heap) Stats() Stats { return h.stats }

// UsedBytes returns the currently used bytes across all spaces.
func (h *Heap) UsedBytes() int64 {
	return int64(h.youngTop) + int64(h.oldTop) + int64(h.regionTop)
}

// AddRoots registers a root provider and returns a function that removes
// it. Roots must stay registered while any allocation can happen, because
// the copying collector moves objects and rewrites root slots.
func (h *Heap) AddRoots(p RootProvider) (remove func()) {
	h.roots = append(h.roots, p)
	idx := len(h.roots) - 1
	return func() {
		h.roots[idx] = nil
		// Trim trailing removed entries so the slice does not grow
		// unboundedly under LIFO registration patterns.
		for len(h.roots) > 0 && h.roots[len(h.roots)-1] == nil {
			h.roots = h.roots[:len(h.roots)-1]
		}
	}
}

// ---- address/space helpers ----

func (h *Heap) inYoung(a Addr) bool  { return a >= h.youngBeg && a < h.youngEnd }
func (h *Heap) inOld(a Addr) bool    { return a >= h.oldBeg && a < h.oldEnd }
func (h *Heap) inRegion(a Addr) bool { return a >= h.regionBeg && a < h.regionEnd }

// InRegion reports whether a points into the Yak epoch region. Exposed
// for tests asserting escape behavior.
func (h *Heap) InRegion(a Addr) bool { return h.inRegion(a) }

// InOld reports whether a points into the old generation.
func (h *Heap) InOld(a Addr) bool { return h.inOld(a) }

// InYoung reports whether a points into the nursery.
func (h *Heap) InYoung(a Addr) bool { return h.inYoung(a) }

// mem returns the backing bytes at address a. It panics on wild
// addresses: such a panic indicates an engine or interpreter bug, not a
// user-program error.
func (h *Heap) mem(a Addr) []byte {
	switch {
	case h.inYoung(a):
		return h.young[a-h.youngBeg:]
	case h.inOld(a):
		return h.old[a-h.oldBeg:]
	case h.inRegion(a):
		return h.region[a-h.regionBeg:]
	default:
		panic(fmt.Sprintf("heap: wild address %#x", a))
	}
}

func (h *Heap) word0(a Addr) uint64       { return binary.LittleEndian.Uint64(h.mem(a)) }
func (h *Heap) setWord0(a Addr, v uint64) { binary.LittleEndian.PutUint64(h.mem(a), v) }
func (h *Heap) word1(a Addr) uint64       { return binary.LittleEndian.Uint64(h.mem(a)[8:]) }
func (h *Heap) setWord1(a Addr, v uint64) { binary.LittleEndian.PutUint64(h.mem(a)[8:], v) }

// ClassOf returns the class of the object at a, or nil for arrays.
func (h *Heap) ClassOf(a Addr) *model.Class {
	w := h.word0(a)
	if w&flagArray != 0 {
		return nil
	}
	return h.reg.ByID(uint32(w))
}

// IsArray reports whether a refers to an array object.
func (h *Heap) IsArray(a Addr) bool { return h.word0(a)&flagArray != 0 }

// ElemKind returns the element kind of the array at a.
func (h *Heap) ElemKind(a Addr) model.Kind {
	return model.Kind((h.word0(a) & elemKindMask) >> elemKindShift)
}

// ArrayLen returns the length of the array at a.
func (h *Heap) ArrayLen(a Addr) int {
	return int(int32(binary.LittleEndian.Uint32(h.mem(a)[model.HeaderSize:])))
}

// SizeOf returns the heap size in bytes of the object at a, header included.
func (h *Heap) SizeOf(a Addr) int {
	w := h.word0(a)
	if w&flagArray != 0 {
		return model.ArraySize(model.Kind((w&elemKindMask)>>elemKindShift), h.ArrayLen(a))
	}
	c := h.reg.ByID(uint32(w))
	if c == nil {
		panic(fmt.Sprintf("heap: object %#x has unknown class id %d", a, uint32(w)))
	}
	return c.Size
}

// ---- allocation ----

// AllocObject allocates a zeroed instance of class c. It may trigger a
// collection, which can move previously allocated objects: any reference
// the caller holds across an allocation must be reachable from a
// registered root.
func (h *Heap) AllocObject(c *model.Class) (Addr, error) {
	a, err := h.allocRaw(c.Size)
	if err != nil {
		return 0, err
	}
	h.setWord0(a, uint64(c.ID))
	h.stats.AllocObjects++
	h.stats.AllocBytes += int64(c.Size)
	return a, nil
}

// AllocArray allocates a zeroed array of n elements of the given kind
// (model.KindRef for reference arrays).
func (h *Heap) AllocArray(elem model.Kind, n int) (Addr, error) {
	if n < 0 {
		return 0, fmt.Errorf("heap: negative array length %d", n)
	}
	size := model.ArraySize(elem, n)
	a, err := h.allocRaw(size)
	if err != nil {
		return 0, err
	}
	h.setWord0(a, flagArray|uint64(elem)<<elemKindShift)
	binary.LittleEndian.PutUint32(h.mem(a)[model.HeaderSize:], uint32(n))
	h.stats.AllocObjects++
	h.stats.AllocBytes += int64(size)
	return a, nil
}

func (h *Heap) allocRaw(size int) (Addr, error) {
	size = alignUp(size, model.ObjectAlign)
	if h.inEpoch && h.cfg.Policy == PolicyRegion {
		return h.allocRegion(size)
	}
	if size > h.cfg.YoungSize/2 {
		// Humongous allocations go straight to the old generation, as
		// HotSpot does for objects that would not fit the nursery.
		return h.allocOld(size)
	}
	if h.youngTop+size > h.cfg.YoungSize {
		if err := h.minorGC(); err != nil {
			return 0, err
		}
		if h.youngTop+size > h.cfg.YoungSize {
			return h.allocOld(size)
		}
	}
	a := h.youngBeg + int64(h.fromOff+h.youngTop)
	h.youngTop += size
	h.clear(a, size)
	h.trackPeak()
	return a, nil
}

func (h *Heap) allocOld(size int) (Addr, error) {
	if h.oldTop+size > h.cfg.OldSize {
		if err := h.fullGC(); err != nil {
			return 0, err
		}
		if h.oldTop+size > h.cfg.OldSize {
			return 0, fmt.Errorf("%w: old generation cannot fit %d bytes (%d used of %d)",
				ErrOutOfMemory, size, h.oldTop, h.cfg.OldSize)
		}
	}
	a := h.oldBeg + int64(h.oldTop)
	h.oldTop += size
	h.clear(a, size)
	h.trackPeak()
	return a, nil
}

// bumpOld is the non-collecting promotion allocator used inside GC.
func (h *Heap) bumpOld(size int) (Addr, bool) {
	if h.oldTop+size > h.cfg.OldSize {
		return 0, false
	}
	a := h.oldBeg + int64(h.oldTop)
	h.oldTop += size
	return a, true
}

func (h *Heap) allocRegion(size int) (Addr, error) {
	for h.regionTop+size > len(h.region) {
		// Yak appends pages to the epoch region as it fills; model that
		// by doubling the backing store.
		grow := len(h.region)
		if grow < h.cfg.RegionSize {
			grow = h.cfg.RegionSize
		}
		if int64(len(h.region)+grow) > regionVirtualSpan {
			return 0, fmt.Errorf("%w: epoch region cannot fit %d bytes", ErrOutOfMemory, size)
		}
		h.region = append(h.region, make([]byte, grow)...)
	}
	a := h.regionBeg + int64(h.regionTop)
	h.regionTop += size
	h.clear(a, size)
	h.trackPeak()
	return a, nil
}

func (h *Heap) clear(a Addr, size int) {
	m := h.mem(a)[:size]
	for i := range m {
		m[i] = 0
	}
}

func (h *Heap) trackPeak() {
	if u := h.UsedBytes(); u > h.stats.PeakUsedBytes {
		h.stats.PeakUsedBytes = u
	}
}

// ---- field and array access ----

// GetPrim reads the primitive field of the given kind at byte offset off,
// returning its raw bits widened to uint64 (floats as IEEE-754 bits).
func (h *Heap) GetPrim(a Addr, off int, k model.Kind) uint64 {
	m := h.mem(a)[off:]
	switch k.Size() {
	case 1:
		return uint64(m[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(m))
	case 4:
		return uint64(binary.LittleEndian.Uint32(m))
	case 8:
		return binary.LittleEndian.Uint64(m)
	default:
		panic("heap: GetPrim of invalid kind")
	}
}

// SetPrim writes the primitive field at byte offset off.
func (h *Heap) SetPrim(a Addr, off int, k model.Kind, bits uint64) {
	m := h.mem(a)[off:]
	switch k.Size() {
	case 1:
		m[0] = byte(bits)
	case 2:
		binary.LittleEndian.PutUint16(m, uint16(bits))
	case 4:
		binary.LittleEndian.PutUint32(m, uint32(bits))
	case 8:
		binary.LittleEndian.PutUint64(m, bits)
	default:
		panic("heap: SetPrim of invalid kind")
	}
}

// GetRef reads the reference field at byte offset off.
func (h *Heap) GetRef(a Addr, off int) Addr {
	return int64(binary.LittleEndian.Uint64(h.mem(a)[off:]))
}

// SetRef writes the reference field at byte offset off, running the
// generational write barrier.
func (h *Heap) SetRef(holder Addr, off int, val Addr) {
	binary.LittleEndian.PutUint64(h.mem(holder)[off:], uint64(val))
	h.writeBarrier(holder, val)
}

// ArrayGetPrim reads element i of a primitive array.
func (h *Heap) ArrayGetPrim(a Addr, i int, k model.Kind) uint64 {
	h.boundsCheck(a, i)
	return h.GetPrim(a, model.ArrayDataOffset+i*k.Size(), k)
}

// ArraySetPrim writes element i of a primitive array.
func (h *Heap) ArraySetPrim(a Addr, i int, k model.Kind, bits uint64) {
	h.boundsCheck(a, i)
	h.SetPrim(a, model.ArrayDataOffset+i*k.Size(), k, bits)
}

// ArrayGetRef reads element i of a reference array.
func (h *Heap) ArrayGetRef(a Addr, i int) Addr {
	h.boundsCheck(a, i)
	return h.GetRef(a, model.ArrayDataOffset+i*model.RefSize)
}

// ArraySetRef writes element i of a reference array with the write barrier.
func (h *Heap) ArraySetRef(a Addr, i int, val Addr) {
	h.boundsCheck(a, i)
	h.SetRef(a, model.ArrayDataOffset+i*model.RefSize, val)
}

// boundsCheck models the JVM's mandatory array bounds check — one of the
// per-access runtime costs the transformation eliminates (paper section 2).
func (h *Heap) boundsCheck(a Addr, i int) {
	if n := h.ArrayLen(a); i < 0 || i >= n {
		panic(fmt.Sprintf("heap: index %d out of bounds for length %d", i, n))
	}
}

// writeBarrier maintains the old-to-young remembered set. Every reference
// store pays for it, modeling the card-marking barrier whose per-write
// cost the paper calls out (sections 2 and 4.3).
func (h *Heap) writeBarrier(holder, val Addr) {
	h.stats.BarrierStores++
	if val == 0 {
		return
	}
	cross := (h.inOld(holder) || h.inRegion(holder)) && h.inYoung(val)
	if h.cfg.Policy == PolicyRegion && h.inEpoch && !h.inRegion(holder) && h.inRegion(val) {
		// Yak's barrier additionally records references into the region
		// from outside it so the epoch-end escape scan has its roots.
		cross = true
	}
	if !cross {
		return
	}
	w := h.word0(holder)
	if w&flagRemembered != 0 {
		return
	}
	h.setWord0(holder, w|flagRemembered)
	h.remembered = append(h.remembered, holder)
	h.stats.RememberedAdds++
}

// ---- garbage collection ----

// Collect forces a full collection.
func (h *Heap) Collect() error { return h.fullGC() }

// minorGC scavenges the nursery: live young objects are copied to
// to-space (or promoted once tenured), and all root and remembered-set
// slots are updated.
func (h *Heap) minorGC() error {
	// Pre-flight: if the worst case (everything survives and promotes)
	// cannot fit the old generation, compact it first so promotion
	// cannot fail mid-scavenge.
	if h.oldTop+h.youngTop > h.cfg.OldSize {
		if err := h.fullGC(); err != nil {
			return err
		}
		if h.oldTop+h.youngTop > h.cfg.OldSize {
			return fmt.Errorf("%w: old generation too full to guarantee scavenge", ErrOutOfMemory)
		}
		return nil // fullGC emptied the nursery
	}
	start := time.Now()
	before := h.UsedBytes()
	defer func() {
		pause := time.Since(start)
		h.stats.GCTime += pause
		h.stats.MinorGCs++
		h.traceGC("minor-gc", pause, before)
	}()
	return h.scavenge()
}

// scavenge performs the copying collection of the nursery. The caller
// guarantees promotions fit.
func (h *Heap) scavenge() error {
	h.toTop = 0
	var err error
	forward := func(slot *Addr) {
		if err != nil {
			return
		}
		if e := h.evacuate(slot); e != nil {
			err = e
		}
	}
	h.visitAllRoots(forward)
	rem := h.remembered
	h.remembered = h.remembered[:0]
	for _, holder := range rem {
		h.setWord0(holder, h.word0(holder)&^flagRemembered)
		h.visitRefSlots(holder, forward)
	}
	if err != nil {
		return err
	}
	// Gray-set drain: Cheney scan of to-space, interleaved with scanning
	// freshly promoted objects (evacuate appends them to h.remembered),
	// whose slots may still point into from-space.
	scan, promScan := 0, 0
	for scan < h.toTop || promScan < len(h.remembered) {
		for scan < h.toTop {
			a := h.youngBeg + int64(h.toOff+scan)
			size := h.SizeOf(a)
			h.visitRefSlots(a, forward)
			if err != nil {
				return err
			}
			scan += size
		}
		for promScan < len(h.remembered) {
			h.visitRefSlots(h.remembered[promScan], forward)
			promScan++
			if err != nil {
				return err
			}
		}
	}
	// Re-remember holders that still reference the nursery or region.
	for _, holder := range rem {
		h.reRemember(holder)
	}
	h.fromOff, h.toOff = h.toOff, h.fromOff
	h.youngTop = h.toTop
	return nil
}

func (h *Heap) reRemember(holder Addr) {
	if !h.inOld(holder) && !h.inRegion(holder) {
		return
	}
	if h.word0(holder)&flagRemembered != 0 {
		return
	}
	found := false
	h.visitRefSlots(holder, func(slot *Addr) {
		if h.inYoung(*slot) || (h.inEpoch && h.inRegion(*slot) && !h.inRegion(holder)) {
			found = true
		}
	})
	if found {
		h.setWord0(holder, h.word0(holder)|flagRemembered)
		h.remembered = append(h.remembered, holder)
	}
}

// evacuate copies the young object referenced by *slot out of from-space
// and updates the slot. Old and region objects are left in place.
func (h *Heap) evacuate(slot *Addr) error {
	a := *slot
	if a == 0 || !h.inYoung(a) {
		return nil
	}
	w := h.word0(a)
	if w&flagForward != 0 {
		*slot = int64(h.word1(a))
		return nil
	}
	size := h.SizeOf(a)
	age := int((w & ageMask) >> ageShift)
	var na Addr
	if age+1 >= h.cfg.TenureAge || h.toTop+size > h.cfg.YoungSize {
		na2, ok := h.bumpOld(size)
		if !ok {
			return fmt.Errorf("%w: promotion of %d bytes failed", ErrOutOfMemory, size)
		}
		na = na2
		copy(h.old[na-h.oldBeg:na-h.oldBeg+int64(size)], h.mem(a)[:size])
		h.stats.PromotedBytes += int64(size)
		// The promoted object may reference young survivors: remember it.
		h.setWord0(na, (w&^(ageMask|flagRemembered))|flagRemembered)
		h.remembered = append(h.remembered, na)
	} else {
		na = h.youngBeg + int64(h.toOff+h.toTop)
		copy(h.young[h.toOff+h.toTop:h.toOff+h.toTop+size], h.mem(a)[:size])
		h.toTop += size
		h.setWord0(na, (w&^(ageMask|flagRemembered))|uint64(age+1)<<ageShift)
	}
	h.setWord0(a, w|flagForward)
	h.setWord1(a, uint64(na))
	*slot = na
	return nil
}

// fullGC performs a stop-the-world full collection: mark everything live,
// slide-compact the old generation, then scavenge the nursery with
// immediate tenuring so it drains into the compacted old space.
func (h *Heap) fullGC() error {
	start := time.Now()
	before := h.UsedBytes()
	defer func() {
		pause := time.Since(start)
		h.stats.GCTime += pause
		h.stats.MajorGCs++
		h.traceGC("major-gc", pause, before)
	}()

	// Phase 1: mark from roots and remembered holders.
	var stack []Addr
	mark := func(slot *Addr) {
		a := *slot
		if a == 0 {
			return
		}
		w := h.word0(a)
		if w&flagMark != 0 {
			return
		}
		h.setWord0(a, w|flagMark)
		stack = append(stack, a)
	}
	h.visitAllRoots(mark)
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.visitRefSlots(a, mark)
	}

	// Phase 2: compute forwarding addresses for live old objects
	// (sliding compaction to the left).
	newTop := 0
	for off := 0; off < h.oldTop; {
		a := h.oldBeg + int64(off)
		size := alignUp(h.SizeOf(a), model.ObjectAlign)
		w := h.word0(a)
		if w&flagMark != 0 {
			h.setWord0(a, w|flagForward)
			h.setWord1(a, uint64(h.oldBeg+int64(newTop)))
			newTop += size
		}
		off += size
	}

	// Phase 3: update every reference slot that may point into old gen:
	// roots, live young objects (from-space walk), live old objects,
	// and region objects.
	fix := func(slot *Addr) {
		a := *slot
		if a == 0 || !h.inOld(a) {
			return
		}
		if h.word0(a)&flagForward != 0 {
			*slot = int64(h.word1(a))
		}
	}
	h.visitAllRoots(fix)
	h.walkSpace(h.youngBeg+int64(h.fromOff), h.youngTop, func(a Addr) {
		if h.word0(a)&flagMark != 0 {
			h.visitRefSlots(a, fix)
		}
	})
	h.walkSpace(h.oldBeg, h.oldTop, func(a Addr) {
		if h.word0(a)&flagMark != 0 {
			h.visitRefSlots(a, fix)
		}
	})
	h.walkSpace(h.regionBeg, h.regionTop, func(a Addr) {
		if h.word0(a)&flagMark != 0 {
			h.visitRefSlots(a, fix)
		}
	})

	// Phase 4: move live old objects left and clear their flags; clear
	// flags in young and region.
	h.remembered = h.remembered[:0]
	for off := 0; off < h.oldTop; {
		a := h.oldBeg + int64(off)
		size := alignUp(h.SizeOf(a), model.ObjectAlign)
		w := h.word0(a)
		if w&flagMark != 0 {
			dst := int64(h.word1(a)) - h.oldBeg
			clean := w &^ (flagMark | flagForward | flagRemembered)
			h.setWord0(a, clean)
			h.setWord1(a, 0)
			copy(h.old[dst:dst+int64(size)], h.old[off:off+size])
		}
		off += size
	}
	h.oldTop = newTop
	h.walkSpace(h.youngBeg+int64(h.fromOff), h.youngTop, func(a Addr) {
		h.setWord0(a, h.word0(a)&^(flagMark|flagRemembered))
	})
	h.walkSpace(h.regionBeg, h.regionTop, func(a Addr) {
		w := h.word0(a) &^ flagMark
		h.setWord0(a, w)
	})
	// Rebuild the remembered set: old/region objects referencing young
	// or (in-epoch) region objects. Young survivors are about to be
	// promoted below, and region holders must be re-found.
	h.walkSpace(h.oldBeg, h.oldTop, func(a Addr) { h.reRemember(a) })
	h.walkSpace(h.regionBeg, h.regionTop, func(a Addr) {
		h.setWord0(a, h.word0(a)&^flagRemembered)
		h.reRemember(a)
	})

	// Phase 5: drain the nursery into the compacted old generation.
	oldTenure := h.cfg.TenureAge
	h.cfg.TenureAge = 1 // promote everything that survives
	err := h.scavenge()
	h.cfg.TenureAge = oldTenure
	return err
}

// walkSpace iterates object base addresses over a linearly allocated
// space of `top` used bytes starting at virtual address beg.
func (h *Heap) walkSpace(beg int64, top int, f func(a Addr)) {
	for off := 0; off < top; {
		a := beg + int64(off)
		size := alignUp(h.SizeOf(a), model.ObjectAlign)
		f(a)
		off += size
	}
}

func (h *Heap) visitAllRoots(visit func(slot *Addr)) {
	for _, p := range h.roots {
		if p != nil {
			p.VisitRoots(visit)
		}
	}
}

// visitRefSlots calls visit for each reference slot inside the object at
// a. The callback may rewrite the slot; the new value is stored back.
func (h *Heap) visitRefSlots(a Addr, visit func(slot *Addr)) {
	w := h.word0(a)
	if w&flagArray != 0 {
		if model.Kind((w&elemKindMask)>>elemKindShift) != model.KindRef {
			return
		}
		n := h.ArrayLen(a)
		m := h.mem(a)
		for i := 0; i < n; i++ {
			off := model.ArrayDataOffset + i*model.RefSize
			v := int64(binary.LittleEndian.Uint64(m[off:]))
			visit(&v)
			binary.LittleEndian.PutUint64(m[off:], uint64(v))
		}
		return
	}
	c := h.reg.ByID(uint32(w))
	if c == nil {
		panic(fmt.Sprintf("heap: visitRefSlots on unknown class id %d at %#x", uint32(w), a))
	}
	m := h.mem(a)
	for _, f := range c.Fields {
		if !f.Type.IsRef() {
			continue
		}
		v := int64(binary.LittleEndian.Uint64(m[f.Offset:]))
		visit(&v)
		binary.LittleEndian.PutUint64(m[f.Offset:], uint64(v))
	}
}

// ---- Yak-style epochs (PolicyRegion) ----

// EpochStart begins a Yak epoch: subsequent allocations go to the region.
// A no-op under other policies, so callers can be policy-agnostic.
func (h *Heap) EpochStart() {
	if h.cfg.Policy != PolicyRegion {
		return
	}
	h.inEpoch = true
}

// InEpoch reports whether a Yak epoch is open.
func (h *Heap) InEpoch() bool { return h.inEpoch }

// EpochEnd closes the epoch: objects in the region reachable from outside
// it (from roots, or from holders recorded by the write barrier) are
// copied to the old generation — Yak's escape handling — and the region
// is freed wholesale. This is the "scan before deallocation" cost that
// Gerenuk's compiler-guaranteed confinement avoids (paper section 4.3).
func (h *Heap) EpochEnd() error {
	if h.cfg.Policy != PolicyRegion || !h.inEpoch {
		return nil
	}
	start := time.Now()
	h.inEpoch = false

	var err error
	var work []Addr
	move := func(slot *Addr) {
		if err != nil {
			return
		}
		a := *slot
		if a == 0 || !h.inRegion(a) {
			return
		}
		w := h.word0(a)
		if w&flagForward != 0 {
			*slot = int64(h.word1(a))
			return
		}
		size := h.SizeOf(a)
		na, ok := h.bumpOld(alignUp(size, model.ObjectAlign))
		if !ok {
			err = fmt.Errorf("%w: epoch escape promotion failed", ErrOutOfMemory)
			return
		}
		copy(h.old[na-h.oldBeg:na-h.oldBeg+int64(size)], h.mem(a)[:size])
		h.setWord0(na, w&^flagRemembered)
		h.setWord0(a, w|flagForward)
		h.setWord1(a, uint64(na))
		*slot = na
		h.stats.EpochEscapes++
		work = append(work, na)
	}
	h.visitAllRoots(move)
	rem := h.remembered
	h.remembered = h.remembered[:0]
	for _, holder := range rem {
		if h.inRegion(holder) {
			continue // the holder dies with the region
		}
		h.setWord0(holder, h.word0(holder)&^flagRemembered)
		h.visitRefSlots(holder, move)
	}
	for i := 0; i < len(work); i++ {
		h.visitRefSlots(work[i], move)
	}
	if err != nil {
		return err
	}
	// Holders that still reference young objects must stay remembered.
	for _, holder := range rem {
		if !h.inRegion(holder) {
			h.reRemember(holder)
		}
	}
	for _, na := range work {
		h.reRemember(na)
	}
	freed := int64(h.regionTop)
	h.stats.FreedByEpoch += freed
	h.regionTop = 0
	h.stats.EpochsClosed++
	pause := time.Since(start)
	h.stats.GCTime += pause
	if sp := h.cfg.Trace; sp != nil {
		sp.Instant("gc", "epoch-end",
			trace.I64("pause_ns", int64(pause)),
			trace.I64("freed_bytes", freed),
			trace.I64("escapes", h.stats.EpochEscapes))
		sp.Counter("heap_used_bytes", h.UsedBytes())
		h.gcHist.Observe(float64(pause))
	}
	return nil
}

// ---- small utilities ----

// Float64FromBits converts stored IEEE-754 bits to a float64.
func Float64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// Float64Bits converts a float64 to its storage bits.
func Float64Bits(f float64) uint64 { return math.Float64bits(f) }

func alignUp(n, a int) int       { return (n + a - 1) &^ (a - 1) }
func alignUp64(n, a int64) int64 { return (n + a - 1) &^ (a - 1) }
