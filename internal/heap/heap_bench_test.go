package heap

import (
	"testing"

	"repro/internal/model"
)

func benchRegistry() (*model.Registry, *model.Class) {
	reg := model.NewRegistry()
	c := reg.Define(model.ClassDef{Name: "Rec", Fields: []model.FieldDef{
		{Name: "a", Type: model.Prim(model.KindLong)},
		{Name: "b", Type: model.Prim(model.KindDouble)},
		{Name: "next", Type: model.Object("Rec")},
	}})
	return reg, c
}

// BenchmarkAllocGarbage measures allocation throughput with everything
// dying young — the scavenger's best case.
func BenchmarkAllocGarbage(b *testing.B) {
	reg, cls := benchRegistry()
	h := New(reg, Config{YoungSize: 256 << 10, OldSize: 4 << 20})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.AllocObject(cls); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(h.Stats().MinorGCs), "minorGCs")
}

// BenchmarkAllocSurvivors measures allocation with a rooted window of
// live objects, forcing copying and promotion.
func BenchmarkAllocSurvivors(b *testing.B) {
	reg, cls := benchRegistry()
	h := New(reg, Config{YoungSize: 128 << 10, OldSize: 16 << 20})
	const window = 512
	roots := make([]Addr, window)
	remove := h.AddRoots(RootFunc(func(visit func(*Addr)) {
		for i := range roots {
			visit(&roots[i])
		}
	}))
	defer remove()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := h.AllocObject(cls)
		if err != nil {
			b.Fatal(err)
		}
		roots[i%window] = a
	}
	st := h.Stats()
	b.ReportMetric(float64(st.MinorGCs), "minorGCs")
	b.ReportMetric(float64(st.PromotedBytes)/float64(b.N+1), "promotedB/op")
}

// BenchmarkFieldAccess measures header-relative loads/stores, the
// baseline path's per-access cost.
func BenchmarkFieldAccess(b *testing.B) {
	reg, cls := benchRegistry()
	h := New(reg, Config{})
	a, err := h.AllocObject(cls)
	if err != nil {
		b.Fatal(err)
	}
	root := a
	defer h.AddRoots(RootFunc(func(visit func(*Addr)) { visit(&root) }))()
	fa := cls.MustField("a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SetPrim(root, fa.Offset, model.KindLong, uint64(i))
		if got := h.GetPrim(root, fa.Offset, model.KindLong); got != uint64(i) {
			b.Fatal("readback mismatch")
		}
	}
}

// BenchmarkWriteBarrier measures the reference-store barrier the paper
// charges to baseline computation.
func BenchmarkWriteBarrier(b *testing.B) {
	reg, cls := benchRegistry()
	h := New(reg, Config{YoungSize: 1 << 20, OldSize: 8 << 20})
	x, _ := h.AllocObject(cls)
	y, _ := h.AllocObject(cls)
	rx, ry := x, y
	defer h.AddRoots(RootFunc(func(visit func(*Addr)) { visit(&rx); visit(&ry) }))()
	next := cls.MustField("next")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SetRef(rx, next.Offset, ry)
	}
}
