package heap

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func testRegistry() *model.Registry {
	r := model.NewRegistry()
	r.Define(model.ClassDef{Name: "Point", Fields: []model.FieldDef{
		{Name: "x", Type: model.Prim(model.KindDouble)},
		{Name: "y", Type: model.Prim(model.KindDouble)},
	}})
	r.Define(model.ClassDef{Name: "Node", Fields: []model.FieldDef{
		{Name: "val", Type: model.Prim(model.KindLong)},
		{Name: "next", Type: model.Object("Node")},
	}})
	r.Define(model.ClassDef{Name: "Holder", Fields: []model.FieldDef{
		{Name: "arr", Type: model.ArrayOf(model.Object("Point"))},
	}})
	return r
}

// rootSlice registers a Go slice of addresses as GC roots.
type rootSlice struct{ addrs []Addr }

func (r *rootSlice) VisitRoots(visit func(*Addr)) {
	for i := range r.addrs {
		visit(&r.addrs[i])
	}
}

func TestAllocAndFieldAccess(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{})
	pt := reg.MustLookup("Point")
	a, err := h.AllocObject(pt)
	if err != nil {
		t.Fatal(err)
	}
	x := pt.MustField("x")
	h.SetPrim(a, x.Offset, model.KindDouble, Float64Bits(3.5))
	if got := Float64FromBits(h.GetPrim(a, x.Offset, model.KindDouble)); got != 3.5 {
		t.Errorf("x = %v, want 3.5", got)
	}
	if h.ClassOf(a) != pt {
		t.Errorf("ClassOf mismatch")
	}
	if h.IsArray(a) {
		t.Errorf("object reported as array")
	}
	if got := h.SizeOf(a); got != pt.Size {
		t.Errorf("SizeOf = %d, want %d", got, pt.Size)
	}
}

func TestArrayAccessAndBounds(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{})
	arr, err := h.AllocArray(model.KindInt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsArray(arr) || h.ElemKind(arr) != model.KindInt || h.ArrayLen(arr) != 4 {
		t.Fatalf("array metadata wrong")
	}
	for i := 0; i < 4; i++ {
		h.ArraySetPrim(arr, i, model.KindInt, uint64(i*i))
	}
	for i := 0; i < 4; i++ {
		if got := h.ArrayGetPrim(arr, i, model.KindInt); got != uint64(i*i) {
			t.Errorf("elem %d = %d", i, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-bounds access did not panic")
		}
	}()
	h.ArrayGetPrim(arr, 4, model.KindInt)
}

func TestMinorGCPreservesLinkedList(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 64 << 10, OldSize: 1 << 20})
	node := reg.MustLookup("Node")
	val := node.MustField("val")
	next := node.MustField("next")

	roots := &rootSlice{addrs: make([]Addr, 1)}
	defer h.AddRoots(roots)()

	// Build a list long enough to force several scavenges; head is rooted.
	const n = 3000
	for i := n - 1; i >= 0; i-- {
		a, err := h.AllocObject(node)
		if err != nil {
			t.Fatal(err)
		}
		h.SetPrim(a, val.Offset, model.KindLong, uint64(i))
		h.SetRef(a, next.Offset, roots.addrs[0])
		roots.addrs[0] = a
	}
	if h.Stats().MinorGCs == 0 {
		t.Fatalf("expected scavenges during list construction")
	}
	// Verify the whole list survived with values intact.
	cur := roots.addrs[0]
	for i := 0; i < n; i++ {
		if cur == 0 {
			t.Fatalf("list truncated at %d", i)
		}
		if got := h.GetPrim(cur, val.Offset, model.KindLong); got != uint64(i) {
			t.Fatalf("node %d has val %d", i, got)
		}
		cur = h.GetRef(cur, next.Offset)
	}
	if cur != 0 {
		t.Errorf("list longer than expected")
	}
}

func TestUnreachableObjectsCollected(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 32 << 10, OldSize: 256 << 10})
	pt := reg.MustLookup("Point")
	// Allocate garbage with no roots: must never OOM.
	for i := 0; i < 100000; i++ {
		if _, err := h.AllocObject(pt); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if h.Stats().MinorGCs == 0 {
		t.Errorf("expected minor GCs")
	}
}

func TestFullGCCompactsOldGen(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 16 << 10, OldSize: 512 << 10, TenureAge: 1})
	node := reg.MustLookup("Node")
	val := node.MustField("val")

	roots := &rootSlice{addrs: make([]Addr, 64)}
	defer h.AddRoots(roots)()

	// Repeatedly fill the rooted window and drop most of it, forcing
	// promotion of garbage into old gen and then full GCs.
	r := rand.New(rand.NewSource(1))
	for round := 0; round < 200; round++ {
		for i := range roots.addrs {
			if r.Intn(2) == 0 {
				a, err := h.AllocObject(node)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				h.SetPrim(a, val.Offset, model.KindLong, uint64(round*1000+i))
				roots.addrs[i] = a
			} else if r.Intn(4) == 0 {
				roots.addrs[i] = 0
			}
		}
		// Churn: garbage arrays to pressure both generations.
		if _, err := h.AllocArray(model.KindLong, 512); err != nil {
			t.Fatalf("churn: %v", err)
		}
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if h.Stats().MajorGCs == 0 {
		t.Errorf("expected major GCs")
	}
	// All surviving roots must still be valid objects of class Node.
	for i, a := range roots.addrs {
		if a == 0 {
			continue
		}
		if h.ClassOf(a) != node {
			t.Errorf("root %d corrupted after GC", i)
		}
	}
}

// TestGCStressShadowGraph builds a random object graph mirrored by a Go
// shadow structure, churns the heap through many collections, and then
// verifies every reachable value matches the shadow. This is the key
// correctness test for the moving collector.
func TestGCStressShadowGraph(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 32 << 10, OldSize: 1 << 20, TenureAge: 2})
	node := reg.MustLookup("Node")
	valF := node.MustField("val")
	nextF := node.MustField("next")
	holder := reg.MustLookup("Holder")
	arrF := holder.MustField("arr")
	pt := reg.MustLookup("Point")
	xF := pt.MustField("x")

	type shadowNode struct {
		val  uint64
		next *shadowNode
	}
	type shadowHolder struct {
		points []float64 // NaN-free values; 0 means nil slot
	}

	const slots = 40
	roots := &rootSlice{addrs: make([]Addr, slots)}
	defer h.AddRoots(roots)()
	shadowLists := make([]*shadowNode, slots/2)
	shadowHolders := make([]*shadowHolder, slots/2)

	r := rand.New(rand.NewSource(42))
	mkList := func(slot int) {
		var sh *shadowNode
		var head Addr
		roots.addrs[slot] = 0
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			a, err := h.AllocObject(node)
			if err != nil {
				t.Fatal(err)
			}
			v := r.Uint64() % 1000000
			h.SetPrim(a, valF.Offset, model.KindLong, v)
			h.SetRef(a, nextF.Offset, head)
			head = a
			roots.addrs[slot] = a
			sh = &shadowNode{val: v, next: sh}
		}
		shadowLists[slot] = sh
	}
	mkHolder := func(slot int) {
		n := r.Intn(10) + 1
		hd, err := h.AllocObject(holder)
		if err != nil {
			t.Fatal(err)
		}
		roots.addrs[slots/2+slot] = hd
		arr, err := h.AllocArray(model.KindRef, n)
		if err != nil {
			t.Fatal(err)
		}
		// hd may have moved during the array allocation; reload via root.
		hd = roots.addrs[slots/2+slot]
		h.SetRef(hd, arrF.Offset, arr)
		sh := &shadowHolder{points: make([]float64, n)}
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				continue
			}
			p, err := h.AllocObject(pt)
			if err != nil {
				t.Fatal(err)
			}
			v := float64(r.Intn(1e6)) + 0.25
			h.SetPrim(p, xF.Offset, model.KindDouble, Float64Bits(v))
			hd = roots.addrs[slots/2+slot]
			arr = h.GetRef(hd, arrF.Offset)
			h.ArraySetRef(arr, i, p)
			sh.points[i] = v
		}
		shadowHolders[slot] = sh
	}

	for round := 0; round < 400; round++ {
		slot := r.Intn(slots / 2)
		if r.Intn(2) == 0 {
			mkList(slot)
		} else {
			mkHolder(slot)
		}
		if r.Intn(50) == 0 {
			if err := h.Collect(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Verify shadows.
	for i, sh := range shadowLists {
		cur := roots.addrs[i]
		for sh != nil {
			if cur == 0 {
				t.Fatalf("list %d truncated", i)
			}
			if got := h.GetPrim(cur, valF.Offset, model.KindLong); got != sh.val {
				t.Fatalf("list %d: val %d != shadow %d", i, got, sh.val)
			}
			cur = h.GetRef(cur, nextF.Offset)
			sh = sh.next
		}
		if cur != 0 {
			t.Fatalf("list %d longer than shadow", i)
		}
	}
	for i, sh := range shadowHolders {
		if sh == nil {
			continue
		}
		hd := roots.addrs[slots/2+i]
		arr := h.GetRef(hd, arrF.Offset)
		if h.ArrayLen(arr) != len(sh.points) {
			t.Fatalf("holder %d: arr len %d != %d", i, h.ArrayLen(arr), len(sh.points))
		}
		for j, want := range sh.points {
			p := h.ArrayGetRef(arr, j)
			if want == 0 {
				if p != 0 {
					t.Fatalf("holder %d[%d]: expected nil", i, j)
				}
				continue
			}
			if p == 0 {
				t.Fatalf("holder %d[%d]: lost point", i, j)
			}
			if got := Float64FromBits(h.GetPrim(p, xF.Offset, model.KindDouble)); got != want {
				t.Fatalf("holder %d[%d]: %v != %v", i, j, got, want)
			}
		}
	}
	st := h.Stats()
	if st.MinorGCs+st.MajorGCs == 0 {
		t.Errorf("stress test never collected")
	}
	t.Logf("stats: %+v", st)
}

func TestOutOfMemory(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 8 << 10, OldSize: 32 << 10})
	roots := &rootSlice{}
	defer h.AddRoots(roots)()
	node := reg.MustLookup("Node")
	nextF := node.MustField("next")
	var err error
	for i := 0; i < 1_000_000; i++ {
		var a Addr
		a, err = h.AllocObject(node)
		if err != nil {
			break
		}
		// Keep everything alive in one chain.
		h.SetRef(a, nextF.Offset, 0)
		if len(roots.addrs) > 0 {
			h.SetRef(a, nextF.Offset, roots.addrs[0])
		}
		roots.addrs = []Addr{a}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestHumongousAllocation(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 8 << 10, OldSize: 1 << 20})
	arr, err := h.AllocArray(model.KindLong, 2048) // 16KB > young/2
	if err != nil {
		t.Fatal(err)
	}
	if !h.InOld(arr) {
		t.Errorf("humongous array not in old gen")
	}
}

func TestWriteBarrierRemembersOldToYoung(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 64 << 10, OldSize: 1 << 20, TenureAge: 1})
	node := reg.MustLookup("Node")
	valF := node.MustField("val")
	nextF := node.MustField("next")
	roots := &rootSlice{addrs: make([]Addr, 2)}
	defer h.AddRoots(roots)()

	// Create an old object by forcing a full collection.
	a, err := h.AllocObject(node)
	if err != nil {
		t.Fatal(err)
	}
	roots.addrs[0] = a
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if !h.InOld(roots.addrs[0]) {
		t.Fatalf("object not promoted by full GC")
	}
	// Young child referenced ONLY from the old object.
	child, err := h.AllocObject(node)
	if err != nil {
		t.Fatal(err)
	}
	h.SetPrim(child, valF.Offset, model.KindLong, 777)
	h.SetRef(roots.addrs[0], nextF.Offset, child)
	barriers := h.Stats().RememberedAdds
	if barriers == 0 {
		t.Fatalf("old->young store did not populate remembered set")
	}
	// Force scavenges: the child must survive via the remembered set.
	for i := 0; i < 3; i++ {
		if err := h.minorGC(); err != nil {
			t.Fatal(err)
		}
	}
	got := h.GetRef(roots.addrs[0], nextF.Offset)
	if got == 0 {
		t.Fatalf("remembered child lost")
	}
	if v := h.GetPrim(got, valF.Offset, model.KindLong); v != 777 {
		t.Errorf("child val = %d, want 777", v)
	}
}

func TestYakEpochFreesRegionWholesale(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 64 << 10, OldSize: 1 << 20, RegionSize: 1 << 20, Policy: PolicyRegion})
	pt := reg.MustLookup("Point")
	roots := &rootSlice{addrs: make([]Addr, 1)}
	defer h.AddRoots(roots)()

	h.EpochStart()
	for i := 0; i < 1000; i++ {
		a, err := h.AllocObject(pt)
		if err != nil {
			t.Fatal(err)
		}
		_ = a // all garbage: confined to the epoch
	}
	used := h.UsedBytes()
	if used < int64(1000*pt.Size) {
		t.Fatalf("region allocation did not happen: used=%d", used)
	}
	if err := h.EpochEnd(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.EpochsClosed != 1 || st.FreedByEpoch == 0 {
		t.Errorf("epoch accounting wrong: %+v", st)
	}
	if st.EpochEscapes != 0 {
		t.Errorf("no object should have escaped, got %d", st.EpochEscapes)
	}
	if h.UsedBytes() != 0 {
		t.Errorf("region not freed: used=%d", h.UsedBytes())
	}
}

func TestYakEpochEscapeIsCopiedOut(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 64 << 10, OldSize: 1 << 20, RegionSize: 1 << 20, Policy: PolicyRegion})
	pt := reg.MustLookup("Point")
	xF := pt.MustField("x")
	roots := &rootSlice{addrs: make([]Addr, 1)}
	defer h.AddRoots(roots)()

	h.EpochStart()
	a, err := h.AllocObject(pt)
	if err != nil {
		t.Fatal(err)
	}
	h.SetPrim(a, xF.Offset, model.KindDouble, Float64Bits(9.75))
	roots.addrs[0] = a // escapes via a root
	if !h.InRegion(a) {
		t.Fatalf("allocation not in region")
	}
	if err := h.EpochEnd(); err != nil {
		t.Fatal(err)
	}
	na := roots.addrs[0]
	if h.InRegion(na) {
		t.Fatalf("escaped object still in region")
	}
	if got := Float64FromBits(h.GetPrim(na, xF.Offset, model.KindDouble)); got != 9.75 {
		t.Errorf("escaped object corrupted: %v", got)
	}
	if h.Stats().EpochEscapes != 1 {
		t.Errorf("EpochEscapes = %d, want 1", h.Stats().EpochEscapes)
	}
}

func TestYakEpochEscapeViaHeapReference(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{YoungSize: 64 << 10, OldSize: 1 << 20, RegionSize: 1 << 20, Policy: PolicyRegion, TenureAge: 1})
	node := reg.MustLookup("Node")
	valF := node.MustField("val")
	nextF := node.MustField("next")
	roots := &rootSlice{addrs: make([]Addr, 1)}
	defer h.AddRoots(roots)()

	// Old-gen holder.
	a, err := h.AllocObject(node)
	if err != nil {
		t.Fatal(err)
	}
	roots.addrs[0] = a
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	holder := roots.addrs[0]
	if !h.InOld(holder) {
		t.Fatalf("holder not in old gen")
	}

	h.EpochStart()
	b, err := h.AllocObject(node) // region object
	if err != nil {
		t.Fatal(err)
	}
	h.SetPrim(b, valF.Offset, model.KindLong, 123)
	h.SetRef(holder, nextF.Offset, b) // heap -> region: Yak barrier records it
	if err := h.EpochEnd(); err != nil {
		t.Fatal(err)
	}
	nb := h.GetRef(holder, nextF.Offset)
	if nb == 0 || h.InRegion(nb) {
		t.Fatalf("escapee not copied out: %#x", nb)
	}
	if got := h.GetPrim(nb, valF.Offset, model.KindLong); got != 123 {
		t.Errorf("escapee corrupted: %d", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	reg := testRegistry()
	h := New(reg, Config{})
	pt := reg.MustLookup("Point")
	for i := 0; i < 10; i++ {
		if _, err := h.AllocObject(pt); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st.AllocObjects != 10 {
		t.Errorf("AllocObjects = %d", st.AllocObjects)
	}
	if st.AllocBytes != int64(10*pt.Size) {
		t.Errorf("AllocBytes = %d", st.AllocBytes)
	}
	if st.PeakUsedBytes < st.AllocBytes {
		t.Errorf("PeakUsedBytes = %d < AllocBytes", st.PeakUsedBytes)
	}
}
