// Package cluster is the long-lived multi-tenant job service: many
// tenants submit jobs concurrently into one process, which runs them
// over a bounded worker pool while keeping their shared-state footprints
// — breakers, checkpoints, lineage, metrics — isolated per tenant and
// per job.
//
// The paper's thin-computation claim only matters at scale if many jobs
// can share one process's arenas, breakers and shuffle stores without
// corrupting each other. This package supplies the sharing discipline:
//
//   - Admission control. Each tenant has a FIFO queue bounded by a
//     queue depth and a memory quota; a submission that would exceed
//     either is rejected immediately with a typed *AdmissionError
//     (errors.Is-matchable against ErrAdmissionRejected), so callers get
//     backpressure instead of unbounded queue growth.
//   - Weighted fair-share scheduling. Workers drain the tenant queues
//     by smallest virtual time (start-time fair queuing): dispatching a
//     job advances its tenant's virtual clock by 1/weight, so a tenant
//     with weight 2 gets twice the dispatch slots of a weight-1 tenant
//     under saturation, and a newly active tenant joins at the current
//     clock rather than starving the backlog or being starved by it.
//   - Scoped shared state. Every job gets a tenant-scoped breaker view
//     (engine.Breaker.Scoped) and job-scoped checkpoint/lineage views
//     (recovery.Scope), so one tenant's fault-injected aborts cannot
//     de-speculate another tenant's drivers and two jobs registering
//     same-named exchanges cannot serve each other's bytes.
//   - Per-tenant attribution. Submission, completion, rejection and
//     cancellation counters, queue/quota gauges, and job-latency
//     histograms are emitted per tenant into the trace registry
//     (cluster_*{tenant="…"}), and Status() snapshots the live
//     per-tenant view for /statusz.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/recovery"
	"repro/internal/trace"
)

// ErrAdmissionRejected is the sentinel every admission failure matches
// via errors.Is — the service's backpressure signal.
var ErrAdmissionRejected = errors.New("cluster: admission rejected")

// ErrClosed reports a submission to a service that is draining or
// stopped.
var ErrClosed = errors.New("cluster: service closed")

// ErrCanceled reports a job canceled before completion. Await returns
// it for jobs canceled while queued; a running job's Run may also
// return it after observing JobContext.Canceled.
var ErrCanceled = errors.New("cluster: job canceled")

// AdmissionError is the typed rejection a Submit that exceeds a
// tenant's queue depth or memory quota returns.
type AdmissionError struct {
	Tenant string
	// Reason is "queue-depth" or "memory-quota".
	Reason string
	// QueueDepth is the tenant's queued-job count at rejection time;
	// QueueLimit the configured cap.
	QueueDepth, QueueLimit int
	// NeedBytes is the rejected job's memory ask, ReservedBytes the
	// tenant's outstanding reservations, QuotaBytes the cap.
	NeedBytes, ReservedBytes, QuotaBytes int64
}

func (e *AdmissionError) Error() string {
	if e.Reason == "memory-quota" {
		return fmt.Sprintf("cluster: admission rejected for tenant %s: memory quota (%d reserved + %d asked > %d quota)",
			e.Tenant, e.ReservedBytes, e.NeedBytes, e.QuotaBytes)
	}
	return fmt.Sprintf("cluster: admission rejected for tenant %s: queue depth (%d queued, limit %d)",
		e.Tenant, e.QueueDepth, e.QueueLimit)
}

// Is matches the ErrAdmissionRejected sentinel.
func (e *AdmissionError) Is(target error) bool { return target == ErrAdmissionRejected }

// State is a job's lifecycle position.
type State int

// Job states.
const (
	Queued State = iota
	Running
	Succeeded
	Failed
	Canceled
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// JobSpec describes one submission.
type JobSpec struct {
	// Name labels the job in traces and IDs ("PR/gerenuk"); it need not
	// be unique — the service mints a unique JobID per submission.
	Name string
	// MemoryBytes is the job's working-set estimate, reserved against
	// the tenant's quota from admission until completion. 0 asks for
	// nothing (always admitted quota-wise).
	MemoryBytes int64
	// Run executes the job. It receives the job's scoped views of the
	// service's shared state and must return the job's output bytes.
	// Panics are contained and fail the job, not the service.
	Run func(jc *JobContext) ([]byte, error)
}

// JobContext is what a running job sees of the service: its identity
// plus tenant/job-scoped views of the shared state. Pass the fields
// through to spark.Context / hadoop.JobConf (the bench.ClusterJob
// adapter does exactly that).
type JobContext struct {
	Tenant string
	JobID  string
	Trace  *trace.Tracer
	// Breaker is the tenant-scoped view of the service breaker: this
	// tenant's aborts trip only this tenant's entries.
	Breaker *engine.Breaker
	// Checkpoints and Lineage are job-scoped views of the service-wide
	// stores.
	Checkpoints *recovery.CheckpointStore
	Lineage     *recovery.Lineage
	// Canceled is closed when the job is canceled while running;
	// cooperative jobs may return ErrCanceled after observing it.
	Canceled <-chan struct{}
}

// TenantConfig overrides the service defaults for one tenant.
type TenantConfig struct {
	// Weight is the fair-share weight (dispatch slots relative to other
	// tenants); <= 0 means the default 1.
	Weight int
	// QuotaBytes caps the tenant's outstanding MemoryBytes reservations;
	// < 0 means unlimited, 0 means the service default.
	QuotaBytes int64
	// QueueDepth caps the tenant's queued (not yet running) jobs;
	// <= 0 means the service default.
	QueueDepth int
}

// Config configures the service.
type Config struct {
	// Workers is the bounded worker-pool size (default 4).
	Workers int
	// QueueDepth is the default per-tenant queued-job cap (default 64).
	QueueDepth int
	// QuotaBytes is the default per-tenant memory quota; 0 = unlimited.
	QuotaBytes int64
	// Breaker, when set, is the service-wide breaker; every tenant gets
	// a Scoped view of it, so de-speculation state is per (tenant,
	// driver). nil disables adaptive de-speculation.
	Breaker *engine.Breaker
	// Trace receives cluster spans/instants and the per-tenant metric
	// series; nil disables both (the usual nil-tracer contract).
	Trace *trace.Tracer
	// Checkpoints, when set, is the checkpoint store the service scopes
	// per job instead of constructing its own — the injection point for
	// a disk-backed store (gerenukd -checkpoint-dir), so a restarted
	// daemon resumes checkpointed fold state.
	Checkpoints *recovery.CheckpointStore
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Job is the handle a Submit returns: await the outcome, cancel, or
// poll the state.
type Job struct {
	ID     string
	Tenant string
	Name   string

	svc  *Service
	t    *tenantState
	spec JobSpec

	// Guarded by svc.mu.
	state     State
	err       error
	out       []byte
	submitted time.Time
	started   time.Time
	latency   time.Duration // submit → finish, set on completion

	cancel     chan struct{}
	cancelOnce sync.Once
	done       chan struct{}
}

// tenantState is one tenant's queues and accounting. Guarded by the
// service lock.
type tenantState struct {
	name       string
	weight     int
	quota      int64 // 0 = unlimited
	queueDepth int

	queue    []*Job
	reserved int64   // outstanding MemoryBytes reservations (queued + running)
	vtime    float64 // virtual finish time for weighted fair share
	running  int

	done, failed, canceled, rejected int64

	breaker *engine.Breaker  // tenant-scoped view of the service breaker
	latency *trace.Histogram // cluster_job_latency_ns{tenant}
	queueNs *trace.Histogram // cluster_job_queue_ns{tenant}
}

// Service is the job service. Construct with New; stop with Close.
type Service struct {
	cfg Config

	checkpoints *recovery.CheckpointStore
	lineage     *recovery.Lineage

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenantState
	seq      int64
	vclock   float64 // virtual time of the most recent dispatch
	inflight int     // queued + running jobs
	closing  bool    // no new submissions; drain what is queued
	stopped  bool    // workers exit

	wg sync.WaitGroup
}

// New starts a service with cfg.Workers workers. The service owns one
// checkpoint store and one lineage registry; every job runs against
// job-scoped views of them.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ckpts := cfg.Checkpoints
	if ckpts == nil {
		ckpts = recovery.NewCheckpointStore()
	}
	s := &Service{
		cfg:         cfg,
		checkpoints: ckpts,
		lineage:     recovery.NewLineage(),
		tenants:     make(map[string]*tenantState),
	}
	s.cond = sync.NewCond(&s.mu)
	// Wire the breaker's tracer up front so no job's stage ever races to
	// set it.
	cfg.Breaker.EnsureTrace(cfg.Trace)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// ConfigureTenant sets one tenant's weight, quota and queue depth.
// Tenants not configured get the service defaults on first submission.
func (s *Service) ConfigureTenant(name string, tc TenantConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(name)
	if tc.Weight > 0 {
		t.weight = tc.Weight
	}
	if tc.QuotaBytes < 0 {
		t.quota = 0
	} else if tc.QuotaBytes > 0 {
		t.quota = tc.QuotaBytes
	}
	if tc.QueueDepth > 0 {
		t.queueDepth = tc.QueueDepth
	}
	s.publishGaugesLocked(t)
}

// TenantBreaker returns the tenant's scoped breaker view (nil when the
// service has no breaker) — the isolation tests assert on it directly.
func (s *Service) TenantBreaker(name string) *engine.Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantLocked(name).breaker
}

func (s *Service) tenantLocked(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantState{
			name:       name,
			weight:     1,
			quota:      s.cfg.QuotaBytes,
			queueDepth: s.cfg.QueueDepth,
			breaker:    s.cfg.Breaker.Scoped(name),
		}
		reg := s.cfg.Trace.Registry()
		t.latency = reg.Histogram(trace.Name("cluster_job_latency_ns", "tenant", name),
			trace.LatencyBuckets()...)
		t.queueNs = reg.Histogram(trace.Name("cluster_job_queue_ns", "tenant", name),
			trace.LatencyBuckets()...)
		s.tenants[name] = t
	}
	return t
}

func (s *Service) counter(name, tenant string) *trace.Counter {
	return s.cfg.Trace.Registry().Counter(trace.Name(name, "tenant", tenant))
}

// publishGaugesLocked refreshes the tenant's queue/quota gauges.
func (s *Service) publishGaugesLocked(t *tenantState) {
	reg := s.cfg.Trace.Registry()
	if reg == nil {
		return
	}
	reg.Gauge(trace.Name("cluster_queue_depth", "tenant", t.name)).Set(float64(len(t.queue)))
	reg.Gauge(trace.Name("cluster_running", "tenant", t.name)).Set(float64(t.running))
	reg.Gauge(trace.Name("cluster_reserved_bytes", "tenant", t.name)).Set(float64(t.reserved))
	reg.Gauge(trace.Name("cluster_quota_bytes", "tenant", t.name)).Set(float64(t.quota))
}

// Submit enqueues one job for the tenant, enforcing queue-depth and
// memory-quota admission. The returned handle awaits, cancels or polls
// the job; a rejected submission returns a *AdmissionError (matching
// ErrAdmissionRejected) and no handle.
func (s *Service) Submit(tenant string, spec JobSpec) (*Job, error) {
	if spec.Run == nil {
		return nil, errors.New("cluster: JobSpec.Run must be set")
	}
	if spec.Name == "" {
		spec.Name = "job"
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t := s.tenantLocked(tenant)
	if len(t.queue) >= t.queueDepth {
		rej := &AdmissionError{Tenant: tenant, Reason: "queue-depth",
			QueueDepth: len(t.queue), QueueLimit: t.queueDepth}
		t.rejected++
		s.mu.Unlock()
		s.rejected(tenant, spec.Name, rej)
		return nil, rej
	}
	if t.quota > 0 && spec.MemoryBytes > 0 && t.reserved+spec.MemoryBytes > t.quota {
		rej := &AdmissionError{Tenant: tenant, Reason: "memory-quota",
			NeedBytes: spec.MemoryBytes, ReservedBytes: t.reserved, QuotaBytes: t.quota}
		t.rejected++
		s.mu.Unlock()
		s.rejected(tenant, spec.Name, rej)
		return nil, rej
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("%s/%s#%d", tenant, spec.Name, s.seq),
		Tenant:    tenant,
		Name:      spec.Name,
		svc:       s,
		t:         t,
		spec:      spec,
		state:     Queued,
		submitted: time.Now(),
		cancel:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	if len(t.queue) == 0 && t.running == 0 && t.vtime < s.vclock {
		// A tenant going from idle to active joins at the current
		// virtual clock: it neither redeems credit accumulated while
		// idle (which would starve the backlog) nor starts in the past.
		t.vtime = s.vclock
	}
	t.queue = append(t.queue, j)
	t.reserved += spec.MemoryBytes
	s.inflight++
	s.publishGaugesLocked(t)
	s.mu.Unlock()

	s.counter("cluster_jobs_submitted_total", tenant).Add(1)
	s.cfg.Trace.Instant("cluster", "job-submit",
		trace.Str("tenant", tenant), trace.Str("job", j.ID),
		trace.I64("memory_bytes", spec.MemoryBytes))
	s.cond.Signal()
	return j, nil
}

func (s *Service) rejected(tenant, name string, rej *AdmissionError) {
	s.counter("cluster_jobs_rejected_total", tenant).Add(1)
	s.cfg.Trace.Instant("cluster", "job-reject",
		trace.Str("tenant", tenant), trace.Str("job", name),
		trace.Str("reason", rej.Reason))
}

// pickLocked returns the tenant with work queued and the smallest
// virtual time (ties broken by name, for determinism), or nil.
func (s *Service) pickLocked() *tenantState {
	var best *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if best == nil || t.vtime < best.vtime ||
			(t.vtime == best.vtime && t.name < best.name) {
			best = t
		}
	}
	return best
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var t *tenantState
		for {
			if s.stopped {
				s.mu.Unlock()
				return
			}
			t = s.pickLocked()
			if t != nil {
				break
			}
			s.cond.Wait()
		}
		j := t.queue[0]
		t.queue = t.queue[1:]
		j.state = Running
		j.started = time.Now()
		t.running++
		// Start-time fair queuing: the dispatch advances the tenant's
		// virtual time by the job's cost over its weight (all jobs cost
		// 1 slot), and the global clock follows the dispatched tenant.
		s.vclock = t.vtime
		t.vtime += 1 / float64(t.weight)
		s.publishGaugesLocked(t)
		s.mu.Unlock()

		s.runJob(j, t)
	}
}

// runJob executes one dispatched job and folds the outcome back into
// the tenant's accounting.
func (s *Service) runJob(j *Job, t *tenantState) {
	span := s.cfg.Trace.StartSpan("cluster", j.ID,
		trace.Str("tenant", j.Tenant), trace.Str("job", j.Name))
	queued := j.started.Sub(j.submitted)
	t.queueNs.Observe(float64(queued))

	jc := &JobContext{
		Tenant:      j.Tenant,
		JobID:       j.ID,
		Trace:       s.cfg.Trace,
		Breaker:     t.breaker,
		Checkpoints: s.checkpoints.Scope(j.ID),
		Lineage:     s.lineage.Scope(j.ID),
		Canceled:    j.cancel,
	}
	out, err := func() (out []byte, err error) {
		defer func() {
			if r := recover(); r != nil {
				out, err = nil, fmt.Errorf("cluster: job %s panicked: %v", j.ID, r)
			}
		}()
		return j.spec.Run(jc)
	}()

	s.mu.Lock()
	t.running--
	t.reserved -= j.spec.MemoryBytes
	s.inflight--
	j.out, j.err = out, err
	j.latency = time.Since(j.submitted)
	var outcome string
	switch {
	case err == nil:
		j.state = Succeeded
		t.done++
		outcome = "ok"
	case errors.Is(err, ErrCanceled):
		j.state = Canceled
		t.canceled++
		outcome = "canceled"
	default:
		j.state = Failed
		t.failed++
		outcome = "error"
	}
	t.latency.Observe(float64(j.latency))
	s.publishGaugesLocked(t)
	s.mu.Unlock()

	switch outcome {
	case "ok":
		s.counter("cluster_jobs_done_total", j.Tenant).Add(1)
	case "canceled":
		s.counter("cluster_jobs_canceled_total", j.Tenant).Add(1)
	default:
		s.counter("cluster_jobs_failed_total", j.Tenant).Add(1)
	}
	span.End(trace.Str("outcome", outcome),
		trace.I64("queue_ns", int64(queued)), trace.I64("latency_ns", int64(j.latency)))
	close(j.done)
	// Wake anything waiting for drain (Close) or for a free worker.
	s.cond.Broadcast()
}

// Await blocks until the job finishes (or was canceled) and returns its
// output and error. Canceled-while-queued jobs return ErrCanceled.
func (j *Job) Await() ([]byte, error) {
	<-j.done
	j.svc.mu.Lock()
	defer j.svc.mu.Unlock()
	return j.out, j.err
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.svc.mu.Lock()
	defer j.svc.mu.Unlock()
	return j.state
}

// Cancel cancels the job. A queued job is removed immediately (its
// quota reservation released, Await returns ErrCanceled) and Cancel
// reports true. A running job only gets its JobContext.Canceled channel
// closed — cancellation mid-run is cooperative — and Cancel reports
// false, as it does for already-finished jobs.
func (j *Job) Cancel() bool {
	s := j.svc
	s.mu.Lock()
	if j.state != Queued {
		s.mu.Unlock()
		// Cooperative signal for a running job; harmless otherwise.
		j.cancelOnce.Do(func() { close(j.cancel) })
		return false
	}
	t := j.t
	for i, q := range t.queue {
		if q == j {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	j.state = Canceled
	j.err = ErrCanceled
	j.latency = time.Since(j.submitted)
	t.canceled++
	t.reserved -= j.spec.MemoryBytes
	s.inflight--
	s.publishGaugesLocked(t)
	s.mu.Unlock()

	j.cancelOnce.Do(func() { close(j.cancel) })
	s.counter("cluster_jobs_canceled_total", j.Tenant).Add(1)
	s.cfg.Trace.Instant("cluster", "job-cancel",
		trace.Str("tenant", j.Tenant), trace.Str("job", j.ID))
	close(j.done)
	s.cond.Broadcast()
	return true
}

// Close drains the service: new submissions are rejected with
// ErrClosed, queued and running jobs finish, then the workers exit.
func (s *Service) Close() {
	s.mu.Lock()
	s.closing = true
	for s.inflight > 0 {
		s.cond.Wait()
	}
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// TenantStatus is one tenant's live view for /statusz.
type TenantStatus struct {
	Tenant        string  `json:"tenant"`
	Weight        int     `json:"weight"`
	Queued        int     `json:"queued"`
	Running       int     `json:"running"`
	Done          int64   `json:"done"`
	Failed        int64   `json:"failed"`
	Canceled      int64   `json:"canceled"`
	Rejected      int64   `json:"rejected"`
	QuotaBytes    int64   `json:"quota_bytes"`
	ReservedBytes int64   `json:"reserved_bytes"`
	P50LatencyNs  float64 `json:"p50_job_latency_ns"`
	P99LatencyNs  float64 `json:"p99_job_latency_ns"`
}

// Status snapshots every tenant's queue, quota and latency view, sorted
// by tenant name. Mount it on the obs server:
//
//	server.AddStatus("cluster", func() any { return svc.Status() })
func (s *Service) Status() []TenantStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStatus, 0, len(s.tenants))
	for _, t := range s.tenants {
		st := TenantStatus{
			Tenant: t.name, Weight: t.weight,
			Queued: len(t.queue), Running: t.running,
			Done: t.done, Failed: t.failed,
			Canceled: t.canceled, Rejected: t.rejected,
			QuotaBytes: t.quota, ReservedBytes: t.reserved,
		}
		st.P50LatencyNs, _ = t.latency.Quantile(0.5)
		st.P99LatencyNs, _ = t.latency.Quantile(0.99)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
