package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// gateJob returns a job that signals `started` when dispatched and then
// blocks until `release` closes — the tool every scheduling test uses to
// hold the single worker while it arranges queue state.
func gateJob(started chan<- struct{}, release <-chan struct{}) JobSpec {
	return JobSpec{Name: "gate", Run: func(jc *JobContext) ([]byte, error) {
		started <- struct{}{}
		<-release
		return []byte("gate"), nil
	}}
}

func TestQuotaExceededRejected(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	svc.ConfigureTenant("alice", TenantConfig{QuotaBytes: 100})

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	gate := gateJob(started, release)
	gate.MemoryBytes = 60
	g, err := svc.Submit("alice", gate)
	if err != nil {
		t.Fatal(err)
	}
	<-started // 60 of 100 bytes now reserved by a running job

	_, err = svc.Submit("alice", JobSpec{Name: "big", MemoryBytes: 50,
		Run: func(jc *JobContext) ([]byte, error) { return nil, nil }})
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("over-quota submit: %v, want ErrAdmissionRejected", err)
	}
	var rej *AdmissionError
	if !errors.As(err, &rej) || rej.Reason != "memory-quota" {
		t.Fatalf("rejection = %+v, want *AdmissionError{Reason: memory-quota}", err)
	}
	if rej.Tenant != "alice" || rej.NeedBytes != 50 || rej.ReservedBytes != 60 || rej.QuotaBytes != 100 {
		t.Fatalf("rejection detail = %+v", rej)
	}

	// A job that fits the remaining quota is admitted alongside.
	ok, err := svc.Submit("alice", JobSpec{Name: "small", MemoryBytes: 40,
		Run: func(jc *JobContext) ([]byte, error) { return []byte("ok"), nil }})
	if err != nil {
		t.Fatalf("within-quota submit rejected: %v", err)
	}

	close(release)
	if _, err := g.Await(); err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Await(); err != nil {
		t.Fatal(err)
	}

	// Completion released the reservations: the full quota is available
	// again.
	j, err := svc.Submit("alice", JobSpec{Name: "full", MemoryBytes: 100,
		Run: func(jc *JobContext) ([]byte, error) { return nil, nil }})
	if err != nil {
		t.Fatalf("post-completion submit rejected: %v", err)
	}
	j.Await()
}

func TestQueueBackpressure(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 2})
	defer svc.Close()

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	g, err := svc.Submit("bob", gateJob(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	noop := JobSpec{Name: "n", Run: func(jc *JobContext) ([]byte, error) { return nil, nil }}
	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := svc.Submit("bob", noop)
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		queued = append(queued, j)
	}
	_, err = svc.Submit("bob", noop)
	var rej *AdmissionError
	if !errors.As(err, &rej) || rej.Reason != "queue-depth" {
		t.Fatalf("over-depth submit: %v, want queue-depth rejection", err)
	}
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("rejection does not match sentinel: %v", err)
	}
	// Depth is per tenant: another tenant still gets in.
	j, err := svc.Submit("carol", noop)
	if err != nil {
		t.Fatalf("other tenant rejected by bob's backlog: %v", err)
	}

	close(release)
	g.Await()
	for _, q := range queued {
		q.Await()
	}
	j.Await()
}

// TestFairShareOrdering pins the SFQ dispatch sequence: with one worker,
// a saturating backlog from alice (weight 1) and queues from bob
// (weight 1) and carol (weight 2) all enqueued while the worker is held,
// carol must get two dispatch slots for each of bob's, and alice's
// backlog must not starve either.
func TestFairShareOrdering(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	svc.ConfigureTenant("carol", TenantConfig{Weight: 2})

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	if _, err := svc.Submit("alice", gateJob(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started // worker held; everything below queues up behind it

	var mu sync.Mutex
	var order []string
	recorder := func(tenant string) JobSpec {
		return JobSpec{Name: "r", Run: func(jc *JobContext) ([]byte, error) {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			return nil, nil
		}}
	}
	var jobs []*Job
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			j, err := svc.Submit(tenant, recorder(tenant))
			if err != nil {
				t.Fatalf("submit %s: %v", tenant, err)
			}
			jobs = append(jobs, j)
		}
	}
	submit("alice", 5)
	submit("bob", 2)
	submit("carol", 4)

	close(release)
	for _, j := range jobs {
		j.Await()
	}

	// Virtual times after the gate dispatch: alice 1 (she spent her slot
	// on the gate), bob 0, carol 0. From there SFQ with carol at weight 2
	// gives the exact sequence below (ties break by name).
	want := []string{"bob", "carol", "carol", "alice", "bob", "carol", "carol",
		"alice", "alice", "alice", "alice"}
	if got := strings.Join(order, ","); got != strings.Join(want, ",") {
		t.Fatalf("dispatch order\n got %s\nwant %s", got, strings.Join(want, ","))
	}
}

func TestCancelQueuedJob(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	svc.ConfigureTenant("dave", TenantConfig{QuotaBytes: 50})

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	g, err := svc.Submit("dave", gateJob(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ran := false
	j, err := svc.Submit("dave", JobSpec{Name: "victim", MemoryBytes: 50,
		Run: func(jc *JobContext) ([]byte, error) { ran = true; return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if j.State() != Queued {
		t.Fatalf("state = %v, want Queued", j.State())
	}
	if !j.Cancel() {
		t.Fatal("Cancel of a queued job reported false")
	}
	if j.State() != Canceled {
		t.Fatalf("state after cancel = %v", j.State())
	}
	if _, err := j.Await(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Await after cancel: %v, want ErrCanceled", err)
	}
	if j.Cancel() {
		t.Fatal("second Cancel reported true")
	}

	// The canceled job's quota reservation must be gone.
	j2, err := svc.Submit("dave", JobSpec{Name: "after", MemoryBytes: 50,
		Run: func(jc *JobContext) ([]byte, error) { return nil, nil }})
	if err != nil {
		t.Fatalf("quota still held by canceled job: %v", err)
	}

	close(release)
	g.Await()
	j2.Await()
	if ran {
		t.Fatal("canceled job ran anyway")
	}
}

func TestPanicContainedAndServiceSurvives(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	j, err := svc.Submit("eve", JobSpec{Name: "boom",
		Run: func(jc *JobContext) ([]byte, error) { panic("kaboom") }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Await(); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panicking job Await: %v", err)
	}
	if j.State() != Failed {
		t.Fatalf("state = %v, want Failed", j.State())
	}
	ok, err := svc.Submit("eve", JobSpec{Name: "next",
		Run: func(jc *JobContext) ([]byte, error) { return []byte("alive"), nil }})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := ok.Await(); err != nil || string(out) != "alive" {
		t.Fatalf("post-panic job: %q %v", out, err)
	}
}

func TestJobContextIsScoped(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	// Two concurrent jobs write the same checkpoint task key and register
	// the same exchange; the scoped views must keep them apart.
	barrier := make(chan struct{})
	var wg sync.WaitGroup
	run := func(tenant, payload string) *Job {
		j, err := svc.Submit(tenant, JobSpec{Name: "scoped", Run: func(jc *JobContext) ([]byte, error) {
			if jc.Tenant != tenant {
				return nil, fmt.Errorf("tenant = %q", jc.Tenant)
			}
			jc.Checkpoints.Save("reduce-0", 1, []byte(payload))
			jc.Lineage.Register("shuffle-0", 0, func() error { return nil })
			<-barrier // both jobs have written before either reads
			ck, ok, _ := jc.Checkpoints.Load("reduce-0")
			if !ok || string(ck.Data) != payload {
				return nil, fmt.Errorf("checkpoint cross-talk: got %q want %q", ck.Data, payload)
			}
			if err := jc.Lineage.Rebuild("shuffle-0", 0); err != nil {
				return nil, err
			}
			return []byte(payload), nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); j.Await() }()
		return j
	}
	a := run("alice", "alice-state")
	b := run("bob", "bob-state")
	// Let both reach the barrier, then release.
	time.Sleep(10 * time.Millisecond)
	close(barrier)
	wg.Wait()
	if _, err := a.Await(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Await(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDrainsThenRejects(t *testing.T) {
	svc := New(Config{Workers: 2})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := svc.Submit("frank", JobSpec{Name: "drain",
			Run: func(jc *JobContext) ([]byte, error) { return []byte("x"), nil }})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	svc.Close()
	for i, j := range jobs {
		if out, err := j.Await(); err != nil || string(out) != "x" {
			t.Fatalf("job %d after Close: %q %v", i, out, err)
		}
	}
	if _, err := svc.Submit("frank", JobSpec{Name: "late",
		Run: func(jc *JobContext) ([]byte, error) { return nil, nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

func TestStatusSnapshot(t *testing.T) {
	// Latency quantiles come from the registry's histograms, so this test
	// needs a live tracer (everything else in the service is nil-tracer
	// safe).
	svc := New(Config{Workers: 1, Trace: trace.New()})
	defer svc.Close()
	svc.ConfigureTenant("grace", TenantConfig{Weight: 3, QuotaBytes: 1 << 20})
	j, err := svc.Submit("grace", JobSpec{Name: "s", MemoryBytes: 1 << 10,
		Run: func(jc *JobContext) ([]byte, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	j.Await()
	sts := svc.Status()
	if len(sts) != 1 {
		t.Fatalf("Status len = %d", len(sts))
	}
	st := sts[0]
	if st.Tenant != "grace" || st.Weight != 3 || st.Done != 1 ||
		st.QuotaBytes != 1<<20 || st.ReservedBytes != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.P50LatencyNs <= 0 || st.P99LatencyNs < st.P50LatencyNs {
		t.Fatalf("latency quantiles = p50 %v p99 %v", st.P50LatencyNs, st.P99LatencyNs)
	}
}
