// Package engine implements the Gerenuk runtime's execution layer: task
// executors that run SER drivers speculatively over native buffers and
// fall back to the untransformed heap path on abort (paper sections 3.6
// and 1, "third challenge").
//
// An executor is deliberately stateless across tasks: every task attempt
// gets a fresh simulated heap and a fresh arena, so aborting a task is
// exactly the paper's "terminate the current executor, launch a new one
// with the same input buffers" — the input wire bytes are owned by the
// caller and are immutable (enforced by the statically inserted
// mutate-input aborts), so re-execution always sees pristine input.
package engine

import (
	"fmt"
	"hash/fnv"
	"time"

	"errors"

	"repro/internal/analysis"
	"repro/internal/arena"
	"repro/internal/dsa"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/serde"
	"repro/internal/transform"
)

// Mode selects baseline or Gerenuk execution for a job.
type Mode int

// Execution modes.
const (
	Baseline Mode = iota
	Gerenuk
)

func (m Mode) String() string {
	if m == Gerenuk {
		return "gerenuk"
	}
	return "baseline"
}

// Compiled is a program plus everything the Gerenuk compiler derived from
// it: inline layouts, the codec, and per-driver SER analyses and
// transformed functions.
type Compiled struct {
	Prog    *ir.Program
	Layouts *dsa.Result
	Codec   *serde.Codec

	SERs    map[string]*analysis.SER
	Natives map[string]*ir.Func
	XStats  map[string]transform.Stats
}

// Compile runs the data structure analyzer over the program's top types
// and prepares the compiled container. Drivers are compiled on demand by
// CompileDriver.
func Compile(prog *ir.Program) *Compiled {
	layouts := dsa.Analyze(prog.Reg, prog.TopTypes)
	return &Compiled{
		Prog:    prog,
		Layouts: layouts,
		Codec:   serde.NewCodec(prog.Reg, layouts),
		SERs:    make(map[string]*analysis.SER),
		Natives: make(map[string]*ir.Func),
		XStats:  make(map[string]transform.Stats),
	}
}

// CompileDriver runs the SER analyzer and Algorithm 1 on one driver
// function, caching the result. Untransformable SERs are recorded (the
// job then stays on the heap path) rather than failing.
func (c *Compiled) CompileDriver(entry string) error {
	if _, done := c.SERs[entry]; done {
		return nil
	}
	ser, err := analysis.AnalyzeSER(c.Prog, c.Layouts, entry)
	if err != nil {
		return err
	}
	c.SERs[entry] = ser
	c.Prog.ResolveProgram(entry)
	if !ser.Transformable {
		return nil
	}
	out, err := transform.Transform(c.Prog, c.Layouts, ser)
	if err != nil {
		return err
	}
	c.Natives[entry] = out.Native
	c.XStats[entry] = out.Stats
	return nil
}

// CanRunNative reports whether a compiled native version exists.
func (c *Compiled) CanRunNative(entry string) bool { return c.Natives[entry] != nil }

// Input is one bound source of a task invocation: wire records in Buf.
// If Offs is non-nil it lists the record start offsets to read (e.g. one
// key group of a shuffle partition); otherwise the whole buffer is
// scanned sequentially.
type Input struct {
	Class string
	Buf   []byte
	Offs  []int
}

// TaskSpec describes one task: a driver run once per invocation (map
// tasks have a single invocation over a split; reduce tasks have one
// invocation per key group).
type TaskSpec struct {
	Name   string
	Driver string
	// Invocations bind source names to inputs, once per driver run.
	Invocations []map[string]Input
	// Args passes extra scalar arguments to the driver after no
	// parameters (drivers normally take none).
	Args []int64
	// ClosureBytes simulates shipping the serialized closure/task binary
	// to the executor; both modes pay it (the paper's residual serde).
	ClosureBytes int
	// EpochPerInvocation wraps each invocation in a Yak epoch
	// (PolicyRegion heaps only).
	EpochPerInvocation bool
	// AbortAfterRecords forces a speculative abort after N records, for
	// the Figure 10(b) experiment.
	AbortAfterRecords int64
}

// TaskResult is the outcome of one task.
type TaskResult struct {
	Out   []byte // output wire records
	Stats metrics.Breakdown
}

// Executor runs tasks. Safe for use by one goroutine at a time; create
// one per worker.
type Executor struct {
	C       *Compiled
	Mode    Mode
	HeapCfg heap.Config
}

// RunTask executes the task, speculatively when the executor is in
// Gerenuk mode and the driver has a native version. On abort, the
// attempt's executor state is discarded and the original driver re-runs
// on the heap path over the same inputs.
func (e *Executor) RunTask(spec TaskSpec) (TaskResult, error) {
	start := time.Now()
	var bd metrics.Breakdown

	// Closure shipping: serialize on the "driver", deserialize here.
	serT, deserT := simulateClosure(spec.ClosureBytes)
	bd.Ser += serT
	bd.Deser += deserT

	if e.Mode == Gerenuk && e.C.CanRunNative(spec.Driver) {
		out, attempt, err := e.runNativeAttempt(spec)
		bd.Add(attempt)
		if err == nil {
			bd.Total = time.Since(start)
			return TaskResult{Out: out, Stats: bd}, nil
		}
		if !errors.Is(err, interp.ErrAbort) {
			return TaskResult{}, fmt.Errorf("task %s: %w", spec.Name, err)
		}
		// Abort: discard the attempt (heap, arena and partial output all
		// die with it) and fall through to the slow path.
		bd.Aborts++
	}

	out, slow, err := e.runHeapAttempt(spec)
	bd.Add(slow)
	if err != nil {
		return TaskResult{}, fmt.Errorf("task %s: %w", spec.Name, err)
	}
	bd.Total = time.Since(start)
	return TaskResult{Out: out, Stats: bd}, nil
}

// runHeapAttempt executes the original driver over the simulated heap.
func (e *Executor) runHeapAttempt(spec TaskSpec) ([]byte, metrics.Breakdown, error) {
	var bd metrics.Breakdown
	h := heap.New(e.C.Prog.Reg, e.HeapCfg)
	sink := &collectSink{}
	fn := e.C.Prog.Fn(spec.Driver)

	for _, inv := range spec.Invocations {
		sources := make(map[string]interp.Source, len(inv))
		for name, in := range inv {
			sources[name] = newWireSource(in)
		}
		env := &interp.Env{
			Mode: interp.ModeHeap, Prog: e.C.Prog, Heap: h, Codec: e.C.Codec,
			Layouts: e.C.Layouts, Sources: sources, Sink: sink,
		}
		if spec.EpochPerInvocation {
			h.EpochStart()
		}
		_, err := interp.New(env).Run(fn, spec.Args...)
		bd.Ser += env.SerTime
		bd.Deser += env.DeserTime
		if err != nil {
			return nil, bd, err
		}
		if spec.EpochPerInvocation {
			if err := h.EpochEnd(); err != nil {
				return nil, bd, err
			}
		}
	}
	st := h.Stats()
	bd.GC += st.GCTime
	bd.MinorGCs += st.MinorGCs
	bd.MajorGCs += st.MajorGCs
	bd.AllocObjects += st.AllocObjects
	bd.AllocBytes += st.AllocBytes
	if st.PeakUsedBytes > bd.PeakHeapBytes {
		bd.PeakHeapBytes = st.PeakUsedBytes
	}
	// The serialized shuffle-output buffer is process memory too (the
	// Gerenuk path's equivalent lives inside its arena regions and is
	// already counted there).
	if out := int64(len(sink.out)); out > bd.PeakNativeBytes {
		bd.PeakNativeBytes = out
	}
	bd.Records += countRecords(spec)
	return sink.out, bd, nil
}

// runNativeAttempt executes the transformed driver over arena regions.
func (e *Executor) runNativeAttempt(spec TaskSpec) ([]byte, metrics.Breakdown, error) {
	var bd metrics.Breakdown
	a := arena.New()
	// A Gerenuk executor keeps a small control heap; data never touches it.
	h := heap.New(e.C.Prog.Reg, heap.Config{
		YoungSize: e.HeapCfg.YoungSize / 4, OldSize: e.HeapCfg.OldSize / 4,
	})
	out := a.NewRegion("task-out")
	sink := &nativeSink{a: a}
	fn := e.C.Natives[spec.Driver]

	// Adopt each distinct input buffer once.
	regions := make(map[*byte]*arena.Region)
	regionFor := func(buf []byte) *arena.Region {
		if len(buf) == 0 {
			return a.NewRegion("empty")
		}
		key := &buf[0]
		if r, ok := regions[key]; ok {
			return r
		}
		r := a.AdoptBytes("task-in", buf)
		regions[key] = r
		return r
	}

	var aborted error
	for _, inv := range spec.Invocations {
		sources := make(map[string]interp.NativeSource, len(inv))
		for name, in := range inv {
			sources[name] = newRegionSource(a, regionFor(in.Buf), in)
		}
		env := &interp.Env{
			Mode: interp.ModeNative, Prog: e.C.Prog, Heap: h, Arena: a,
			Layouts: e.C.Layouts, Out: out,
			NativeSources: sources, NativeSink: sink,
			AbortAfterRecords: spec.AbortAfterRecords,
		}
		_, err := interp.New(env).Run(fn, spec.Args...)
		bd.Ser += env.SerTime
		bd.Deser += env.DeserTime
		if err != nil {
			aborted = err
			break
		}
	}
	hst := h.Stats()
	bd.GC += hst.GCTime
	bd.MinorGCs += hst.MinorGCs
	bd.MajorGCs += hst.MajorGCs
	bd.AllocObjects += hst.AllocObjects
	bd.AllocBytes += hst.AllocBytes
	peak := hst.PeakUsedBytes
	if peak > bd.PeakHeapBytes {
		bd.PeakHeapBytes = peak
	}
	if ast := a.Stats(); ast.PeakBytes > bd.PeakNativeBytes {
		bd.PeakNativeBytes = ast.PeakBytes
	}
	if aborted != nil {
		return nil, bd, aborted
	}
	bd.Records += countRecords(spec)
	// Copy output bytes out, then free all regions wholesale — the
	// region-based reclamation the confinement guarantee enables.
	result := append([]byte(nil), sink.Bytes()...)
	return result, bd, nil
}

func countRecords(spec TaskSpec) int64 {
	var n int64
	for _, inv := range spec.Invocations {
		for _, in := range inv {
			if in.Offs != nil {
				n += int64(len(in.Offs))
			} else {
				for off := 0; off < len(in.Buf); off += serde.RecordSize(in.Buf, off) {
					n++
				}
			}
		}
	}
	return n
}

// simulateClosure models serializing and deserializing the task closure
// (lambda + captured state). It does real byte work so it shows up in
// measurements the way the paper's residual serde does.
func simulateClosure(n int) (ser, deser time.Duration) {
	if n <= 0 {
		return 0, 0
	}
	t0 := time.Now()
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	h := fnv.New64a()
	h.Write(buf)
	ser = time.Since(t0)
	t1 := time.Now()
	var sum uint64
	for _, b := range buf {
		sum = sum*131 + uint64(b)
	}
	_ = sum
	deser = time.Since(t1)
	return ser, deser
}

// RunNativeDebug exposes the native attempt for tests diagnosing abort
// reasons.
func (e *Executor) RunNativeDebug(spec TaskSpec) ([]byte, error) {
	out, _, err := e.runNativeAttempt(spec)
	return out, err
}
