// Package engine implements the Gerenuk runtime's execution layer: task
// executors that run SER drivers speculatively over native buffers and
// fall back to the untransformed heap path on abort (paper sections 3.6
// and 1, "third challenge").
//
// An executor is deliberately stateless across tasks: every task attempt
// gets a fresh simulated heap and a fresh arena, so aborting a task is
// exactly the paper's "terminate the current executor, launch a new one
// with the same input buffers" — the input wire bytes are owned by the
// caller and are immutable (enforced by the statically inserted
// mutate-input aborts), so re-execution always sees pristine input.
package engine

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/arena"
	"repro/internal/compile"
	"repro/internal/dsa"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/serde"
	"repro/internal/trace"
	"repro/internal/transform"
)

// Mode selects baseline or Gerenuk execution for a job.
type Mode int

// Execution modes.
const (
	Baseline Mode = iota
	Gerenuk
)

func (m Mode) String() string {
	if m == Gerenuk {
		return "gerenuk"
	}
	return "baseline"
}

// Compiled is a program plus everything the Gerenuk compiler derived from
// it: inline layouts, the codec, and per-driver SER analyses and
// transformed functions.
//
// Concurrency contract: CompileDriver calls serialize under mu and are
// idempotent, so concurrent jobs may compile the same drivers freely.
// The SERs/Natives/XStats maps stay exported for the offline consumers
// (cmd/gerenukc, the figure drivers) that read them after compilation
// finishes single-threaded; concurrent executors must go through the
// locked accessors (CanRunNative, Native) instead. Compiling a driver
// nobody has compiled yet mutates the shared IR program (resolution
// caches, transformed-function registration), so callers sharing one
// Compiled across concurrently running jobs must Precompile every
// driver before the first task launches — the per-job programs built by
// the bench/cluster layers do this implicitly by compiling at job start,
// before their pools spin up.
type Compiled struct {
	Prog    *ir.Program
	Layouts *dsa.Result
	Codec   *serde.Codec

	SERs    map[string]*analysis.SER
	Natives map[string]*ir.Func
	XStats  map[string]transform.Stats

	// mu guards the compilation maps above plus the closure cache below;
	// both fill lazily, possibly from concurrent jobs sharing this
	// Compiled. closures memoizes closure compilation per driver (nil
	// value = declined, interpret forever).
	mu       sync.Mutex
	closures map[string]*compile.Prog
}

// Compile runs the data structure analyzer over the program's top types
// and prepares the compiled container. Drivers are compiled on demand by
// CompileDriver.
func Compile(prog *ir.Program) *Compiled {
	layouts := dsa.Analyze(prog.Reg, prog.TopTypes)
	return &Compiled{
		Prog:    prog,
		Layouts: layouts,
		Codec:   serde.NewCodec(prog.Reg, layouts),
		SERs:    make(map[string]*analysis.SER),
		Natives: make(map[string]*ir.Func),
		XStats:  make(map[string]transform.Stats),
	}
}

// CompileDriver runs the SER analyzer and Algorithm 1 on one driver
// function, caching the result. Untransformable SERs are recorded (the
// job then stays on the heap path) rather than failing. Concurrent
// calls — jobs sharing one Compiled each compile their drivers at job
// start — serialize under the cache lock and are idempotent.
func (c *Compiled) CompileDriver(entry string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, done := c.SERs[entry]; done {
		return nil
	}
	ser, err := analysis.AnalyzeSER(c.Prog, c.Layouts, entry)
	if err != nil {
		return err
	}
	c.SERs[entry] = ser
	c.Prog.ResolveProgram(entry)
	if !ser.Transformable {
		return nil
	}
	out, err := transform.Transform(c.Prog, c.Layouts, ser)
	if err != nil {
		return err
	}
	c.Natives[entry] = out.Native
	c.XStats[entry] = out.Stats
	return nil
}

// Precompile compiles every listed driver, stopping at the first error.
// Call it before sharing this Compiled across concurrently running
// jobs: compilation mutates the shared IR program, so all of it must
// happen before the first concurrent task executes.
func (c *Compiled) Precompile(entries ...string) error {
	for _, e := range entries {
		if e == "" {
			continue
		}
		if err := c.CompileDriver(e); err != nil {
			return err
		}
	}
	return nil
}

// CanRunNative reports whether a compiled native version exists. Safe
// against concurrent CompileDriver calls.
func (c *Compiled) CanRunNative(entry string) bool { return c.Native(entry) != nil }

// Native returns the transformed form of the driver, or nil if the
// driver was not compiled or declined transformation. Safe against
// concurrent CompileDriver calls (executors resolve their driver per
// attempt while another job may still be compiling its own).
func (c *Compiled) Native(entry string) *ir.Func {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Natives[entry]
}

// Input is one bound source of a task invocation: wire records in Buf.
// If Offs is non-nil it lists the record start offsets to read (e.g. one
// key group of a shuffle partition); otherwise the whole buffer is
// scanned sequentially.
type Input struct {
	Class string
	Buf   []byte
	Offs  []int
	// Owned marks Buf as freshly assembled for this task alone (e.g. a
	// shuffle fetch's concatenation) with ownership transferred to the
	// executor: the native attempt may adopt it into its arena zero-copy
	// instead of paying the transfer copy. Attempts only ever read input
	// buffers (the canary enforces it), so a hedged pair sharing one
	// owned buffer is still safe.
	Owned bool
}

// TaskSpec describes one task: a driver run once per invocation (map
// tasks have a single invocation over a split; reduce tasks have one
// invocation per key group).
type TaskSpec struct {
	Name   string
	Driver string
	// Invocations bind source names to inputs, once per driver run.
	Invocations []map[string]Input
	// Args passes extra scalar arguments to the driver after no
	// parameters (drivers normally take none).
	Args []int64
	// ClosureBytes simulates shipping the serialized closure/task binary
	// to the executor; both modes pay it (the paper's residual serde).
	ClosureBytes int
	// EpochPerInvocation wraps each invocation in a Yak epoch
	// (PolicyRegion heaps only).
	EpochPerInvocation bool
	// AbortAfterRecords forces a speculative abort after N records, for
	// the Figure 10(b) experiment.
	AbortAfterRecords int64
	// Faults, when non-nil, injects deterministic failures into this
	// task (see internal/faults). The plan carries the cross-attempt
	// counter, so retries of the same spec see successive attempts.
	Faults *faults.Plan
	// CheckpointEvery persists the partial fold output every N completed
	// invocations (0 = off): a killed or faulted attempt then resumes
	// from the last checkpoint instead of record zero. Checkpoints cover
	// only completed invocations — deterministic, byte-equal across the
	// native and heap paths — so a checkpoint saved by either path
	// soundly resumes the other. Requires Checkpoints.
	CheckpointEvery int
	// Checkpoints is the job-level store partial folds persist to; the
	// pool drops a task's entry once the task completes.
	Checkpoints *recovery.CheckpointStore
}

// TaskResult is the outcome of one task.
type TaskResult struct {
	Out   []byte // output wire records
	Stats metrics.Breakdown
}

// Executor runs tasks. Safe for use by one goroutine at a time; create
// one per worker. Breaker (shared across a pool's executors) and
// VerifyInputs are optional fault-tolerance knobs.
type Executor struct {
	C       *Compiled
	Mode    Mode
	HeapCfg heap.Config
	// Backend selects the native execution strategy: closure-compiled
	// func chains (zero value, the default) or the tree-walking
	// interpreter. See backend.go.
	Backend Backend
	// Breaker, when set, adaptively de-speculates drivers that keep
	// aborting (shared across the pool; nil = always speculate).
	Breaker *Breaker
	// Hedge configures straggler hedging: a native attempt that outlives
	// the hedge delay races a concurrently launched heap attempt and the
	// task takes the first finisher (see hedge.go). The zero value
	// disables hedging.
	Hedge HedgeConfig
	// VerifyInputs enables the input-checksum canary: input buffers are
	// checksummed before a speculative attempt and re-verified after it,
	// so a violated mutate-input guarantee fails the task loudly instead
	// of silently re-executing over corrupt bytes.
	VerifyInputs bool
	// Trace, when set, receives task/attempt/phase spans and
	// abort/fault/GC instants for every task this executor runs. nil
	// (the default) disables tracing; the hot path then pays only nil
	// checks.
	Trace *trace.Tracer
	// Tenant, when set, labels this executor's task-latency series in
	// the registry ({tenant="…"}), so a multi-tenant service can tell
	// whose tasks are slow. "" keeps the unlabeled series.
	Tenant string
}

// RunTask executes the task, speculatively when the executor is in
// Gerenuk mode and the driver has a native version. On abort — whether a
// cooperative abort instruction, a failed runtime guard, or a contained
// panic anywhere in the native path — the attempt's executor state is
// discarded and the original driver re-runs on the heap path over the
// same inputs. Failures are returned as *TaskError with a FaultClass the
// pool uses to decide on retries. Even on error the partial Stats are
// returned, so failed attempts stay visible in the job accounting.
func (e *Executor) RunTask(spec TaskSpec) (TaskResult, error) {
	start := time.Now()
	task := e.Trace.StartSpan("task", spec.Name,
		trace.Str("driver", spec.Driver), trace.Str("mode", e.Mode.String()))
	var bd metrics.Breakdown
	bd.Attempts++
	finish := func(outcome string) {
		task.End(trace.Str("outcome", outcome),
			trace.I64("attempts", bd.Attempts), trace.I64("aborts", bd.Aborts))
		latency := "task_latency_ns"
		if e.Tenant != "" {
			latency = trace.Name(latency, "tenant", e.Tenant)
		}
		e.Trace.Registry().Histogram(latency, trace.LatencyBuckets()...).
			Observe(float64(time.Since(start)))
	}
	fail := func(err error) (TaskResult, error) {
		bd.Total = time.Since(start)
		task.Instant("fault", "task-error",
			trace.Str("class", Classify(err).String()), trace.Str("reason", err.Error()))
		finish("error")
		return TaskResult{Stats: bd}, taskErr(spec.Name, err)
	}

	// Closure shipping: serialize on the "driver", deserialize here.
	serT, deserT := simulateClosure(spec.ClosureBytes)
	bd.Ser += serT
	bd.Deser += deserT

	// Attempt-level injected faults (slow task, lost attempt, OOM).
	if p := spec.Faults; p != nil {
		if p.Delay > 0 {
			time.Sleep(p.Delay)
		}
		attempt := p.TakeAttempt()
		if attempt <= int64(p.TransientFailures) {
			task.Instant("fault", "injected-transient", trace.I64("attempt", attempt))
			return fail(&TaskError{Task: spec.Name, Class: FaultTransient,
				Err: fmt.Errorf("injected transient failure (attempt %d)", attempt)})
		}
		if attempt <= int64(p.TransientFailures+p.OOMFailures) {
			task.Instant("fault", "injected-oom", trace.I64("attempt", attempt))
			return fail(&TaskError{Task: spec.Name, Class: FaultOOM,
				Err: fmt.Errorf("injected allocation failure (attempt %d): %w", attempt, heap.ErrOutOfMemory)})
		}
	}

	var sum uint64
	if e.VerifyInputs {
		sum = checksumInputs(spec)
	}

	if e.Mode == Gerenuk && e.C.CanRunNative(spec.Driver) {
		if e.Breaker.Allow(spec.Driver) {
			if delay, hedged := e.hedgeDelay(); hedged {
				return e.runTaskHedged(spec, task, start, &bd, sum, delay, finish, fail)
			}
			att := task.Child("attempt", "native-attempt")
			out, attempt, err := e.runNativeAttempt(spec, att, nil)
			bd.Add(attempt)
			switch {
			case err == nil:
				att.End(trace.Str("outcome", "ok"))
				e.Breaker.Record(spec.Driver, false)
				if e.VerifyInputs && checksumInputs(spec) != sum {
					return fail(&TaskError{Task: spec.Name, Class: FaultPermanent, Err: ErrInputMutated})
				}
				bd.Total = time.Since(start)
				finish("ok")
				return TaskResult{Out: out, Stats: bd}, nil
			case Classify(err) == AbortSpeculation || Classify(err) == FaultOOM:
				// Abort (or a native-side allocation failure, equally a
				// failed speculation): discard the attempt — heap, arena
				// and partial output all die with it — and fall through
				// to the slow path over the pristine inputs.
				att.End(trace.Str("outcome", "abort"))
				e.Breaker.Record(spec.Driver, true)
				bd.Aborts++
				task.Instant("abort", "speculation-abort",
					trace.Str("class", Classify(err).String()),
					trace.Str("reason", err.Error()))
				e.Trace.Registry().Counter("aborts_total").Add(1)
				e.recordDeopt(spec.Driver)
				if e.VerifyInputs && checksumInputs(spec) != sum {
					return fail(&TaskError{Task: spec.Name, Class: FaultPermanent, Err: ErrInputMutated})
				}
			default:
				att.End(trace.Str("outcome", "error"))
				return fail(err)
			}
		} else {
			// Open breaker: skip the doomed native attempt.
			bd.NativeSkips++
			task.Instant("breaker", "native-skip", trace.Str("driver", spec.Driver))
			e.Trace.Registry().Counter("native_skips_total").Add(1)
		}
	}

	att := task.Child("attempt", "heap-attempt")
	out, slow, err := e.runHeapAttempt(spec, att, nil)
	bd.Add(slow)
	if err != nil {
		att.End(trace.Str("outcome", "error"))
		return fail(err)
	}
	att.End(trace.Str("outcome", "ok"))
	bd.Total = time.Since(start)
	finish("ok")
	return TaskResult{Out: out, Stats: bd}, nil
}

// checksumInputs hashes every input buffer of the task (FNV-1a over
// invocation order and sorted source names), giving the mutate-input
// canary a stable fingerprint of the bytes speculation must not touch.
func checksumInputs(spec TaskSpec) uint64 {
	h := fnv.New64a()
	names := make([]string, 0, 4)
	for _, inv := range spec.Invocations {
		names = names[:0]
		for name := range inv {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h.Write([]byte(name))
			h.Write(inv[name].Buf)
		}
	}
	return h.Sum64()
}

// runHeapAttempt executes the original driver over the simulated heap.
// A runtime panic here is contained (the process must survive a bad
// task) but classified permanent: the heap path is the ground truth, so
// a panic in it is a bug, not failed speculation.
func (e *Executor) runHeapAttempt(spec TaskSpec, att *trace.Span, cancel *canceler) (out []byte, bd metrics.Breakdown, err error) {
	t0 := time.Now()
	defer func() { bd.HeapTime += time.Since(t0) }()
	defer func() {
		if r := recover(); r != nil {
			bd.PanicsContained++
			out = nil
			err = &TaskError{Task: spec.Name, Class: FaultPermanent,
				Err: fmt.Errorf("runtime panic in heap execution: %v", r)}
		}
	}()
	// In Gerenuk mode the heap attempt only runs after a failed
	// speculation (or an open breaker), so the phase is the fallback the
	// paper pays for aborts; in Baseline it is the primary execution.
	phaseName := "heap-execute"
	if e.Mode == Gerenuk {
		phaseName = "heap-fallback"
	}
	cfg := e.HeapCfg
	cfg.Trace = att
	h := heap.New(e.C.Prog.Reg, cfg)
	sink := &collectSink{}
	fn := e.C.Prog.Fn(spec.Driver)
	hook := killHook(spec)

	// Resume from the last checkpoint, if one survives: the persisted
	// fold output seeds the sink (serialized heap state) and the loop
	// skips the invocations it covers.
	resume := e.restoreCheckpoint(spec, att, func(seed []byte) {
		sink.out = append(sink.out, seed...)
	})
	for i := resume; i < len(spec.Invocations); i++ {
		inv := spec.Invocations[i]
		sources := make(map[string]interp.Source, len(inv))
		for name, in := range inv {
			sources[name] = newWireSource(in)
		}
		ph := att.Child("phase", phaseName)
		env := &interp.Env{
			Mode: interp.ModeHeap, Prog: e.C.Prog, Heap: h, Codec: e.C.Codec,
			Layouts: e.C.Layouts, Sources: sources, Sink: sink,
			RecordHook: hook,
			Trace:      ph, Cancel: cancel.cancelFlag(),
		}
		if spec.EpochPerInvocation {
			h.EpochStart()
		}
		_, err := interp.New(env).Run(fn, spec.Args...)
		bd.Ser += env.SerTime
		bd.Deser += env.DeserTime
		ph.End(trace.I64("ser_bytes", env.SerBytes), trace.I64("deser_bytes", env.DeserBytes))
		if err != nil {
			return nil, bd, err
		}
		if spec.EpochPerInvocation {
			if err := h.EpochEnd(); err != nil {
				return nil, bd, err
			}
		}
		e.maybeCheckpoint(spec, att, i+1, sink.out)
	}
	st := h.Stats()
	bd.GC += st.GCTime
	bd.MinorGCs += st.MinorGCs
	bd.MajorGCs += st.MajorGCs
	bd.AllocObjects += st.AllocObjects
	bd.AllocBytes += st.AllocBytes
	if st.PeakUsedBytes > bd.PeakHeapBytes {
		bd.PeakHeapBytes = st.PeakUsedBytes
	}
	// The serialized shuffle-output buffer is process memory too (the
	// Gerenuk path's equivalent lives inside its arena regions and is
	// already counted there).
	if out := int64(len(sink.out)); out > bd.PeakNativeBytes {
		bd.PeakNativeBytes = out
	}
	bd.Records += countRecords(spec.Invocations[resume:])
	return sink.out, bd, nil
}

// runNativeAttempt executes the transformed driver over arena regions.
//
// The whole attempt runs under a recover barrier: any runtime panic —
// an arena.Fault access violation, an injected fault, or a plain bug in
// the speculative path — is converted into an AbortError, which RunTask
// treats exactly like a cooperative abort: terminate the attempt,
// discard its state, re-execute the untransformed driver over the same
// (immutable) input buffers. This is the paper's §3.6 recovery
// obligation extended from the one blessed abort instruction to every
// failure mode speculation can hit.
func (e *Executor) runNativeAttempt(spec TaskSpec, att *trace.Span, cancel *canceler) (out []byte, bd metrics.Breakdown, err error) {
	t0 := time.Now()
	defer func() { bd.NativeTime += time.Since(t0) }()
	defer func() {
		if r := recover(); r != nil {
			bd.PanicsContained++
			out = nil
			if f, ok := r.(*arena.Fault); ok {
				err = &interp.AbortError{Reason: "native memory violation: " + f.Msg}
			} else {
				err = &interp.AbortError{Reason: fmt.Sprintf("runtime panic in speculative execution: %v", r)}
			}
		}
	}()
	// Injected straggle: stall only this speculative attempt (a hedged
	// heap attempt keeps running), honoring cooperative cancellation so
	// a canceled straggler dies mid-stall instead of sleeping it out.
	if p := spec.Faults; p != nil && p.NativeDelay > 0 {
		if cancel.sleep(p.NativeDelay) {
			return nil, bd, interp.ErrCanceled
		}
	}
	// Resolve the execution backend for this driver: a compiled closure
	// chain when available (compiling it on first use), else the
	// interpreter over the transformed IR. Resolution happens before the
	// arena exists so a (hypothetical) compile failure can never leak
	// attempt state.
	cp := e.closureFor(spec.Driver, att)
	a := arena.New()
	a.SetTrace(att)
	// A Gerenuk executor keeps a small control heap; data never touches it.
	h := heap.New(e.C.Prog.Reg, heap.Config{
		YoungSize: e.HeapCfg.YoungSize / 4, OldSize: e.HeapCfg.OldSize / 4,
		Trace: att,
	})
	outRegion := a.NewRegion("task-out")
	sink := &nativeSink{a: a}
	fn := e.C.Native(spec.Driver)
	hook := recordHook(spec, a)

	// Adopt each distinct input buffer once. Owned buffers (a shuffle
	// fetch's fresh concatenation) wrap zero-copy; shared ones pay the
	// transfer copy.
	regions := make(map[*byte]*arena.Region)
	regionFor := func(in Input) *arena.Region {
		buf := in.Buf
		if len(buf) == 0 {
			return a.NewRegion("empty")
		}
		key := &buf[0]
		if r, ok := regions[key]; ok {
			return r
		}
		var r *arena.Region
		if in.Owned {
			r = a.AdoptBytesOwned("task-in", buf)
		} else {
			r = a.AdoptBytes("task-in", buf)
		}
		regions[key] = r
		return r
	}

	// Resume from the last checkpoint, if one survives: the persisted
	// fold state is adopted into an arena region — restored fold output
	// lives in native memory, like the live output it prefixes — and
	// seeds the sink.
	resume := e.restoreCheckpoint(spec, att, func(seed []byte) {
		r := a.AdoptBytes("ckpt-restore", seed)
		sink.out = append(sink.out, a.Slice(r.AddrOf(0), r.Len())...)
	})
	var aborted error
	for i := resume; i < len(spec.Invocations); i++ {
		inv := spec.Invocations[i]
		sources := make(map[string]interp.NativeSource, len(inv))
		for name, in := range inv {
			sources[name] = newRegionSource(a, regionFor(in), in)
		}
		ph := att.Child("phase", "native-execute")
		env := &interp.Env{
			Mode: interp.ModeNative, Prog: e.C.Prog, Heap: h, Arena: a,
			Layouts: e.C.Layouts, Out: outRegion,
			NativeSources: sources, NativeSink: sink,
			AbortAfterRecords: spec.AbortAfterRecords,
			RecordHook:        hook,
			Trace:             ph,
			Cancel:            cancel.cancelFlag(),
		}
		var err error
		if cp != nil {
			_, err = cp.Run(env, spec.Args...)
		} else {
			_, err = interp.New(env).Run(fn, spec.Args...)
		}
		bd.Ser += env.SerTime
		bd.Deser += env.DeserTime
		ph.End()
		if err != nil {
			aborted = err
			break
		}
		e.maybeCheckpoint(spec, att, i+1, sink.out)
	}
	hst := h.Stats()
	bd.GC += hst.GCTime
	bd.MinorGCs += hst.MinorGCs
	bd.MajorGCs += hst.MajorGCs
	bd.AllocObjects += hst.AllocObjects
	bd.AllocBytes += hst.AllocBytes
	peak := hst.PeakUsedBytes
	if peak > bd.PeakHeapBytes {
		bd.PeakHeapBytes = peak
	}
	if ast := a.Stats(); ast.PeakBytes > bd.PeakNativeBytes {
		bd.PeakNativeBytes = ast.PeakBytes
	}
	if aborted != nil {
		return nil, bd, aborted
	}
	bd.Records += countRecords(spec.Invocations[resume:])
	// Copy output bytes out, then free all regions wholesale — the
	// region-based reclamation the confinement guarantee enables.
	result := append([]byte(nil), sink.Bytes()...)
	return result, bd, nil
}

// recordHook builds the per-record fault hook for a native attempt, or
// nil when the spec injects no record-targeted faults. Record numbers
// are per driver invocation (1-based); the injected kill (killHook)
// instead counts cumulatively across invocations.
func recordHook(spec TaskSpec, a *arena.Arena) func(int64) error {
	p := spec.Faults
	kill := killHook(spec)
	if p == nil || (p.PanicAtRecord == 0 && p.WildReadAtRecord == 0 && !p.FlipInputBit) {
		return kill
	}
	flipped := false
	return func(n int64) error {
		if kill != nil {
			if err := kill(n); err != nil {
				return err
			}
		}
		if p.FlipInputBit && !flipped {
			flipped = true
			flipInputBit(spec)
		}
		if n == p.PanicAtRecord {
			panic(fmt.Sprintf("faults: injected panic at record %d", n))
		}
		if n == p.WildReadAtRecord {
			// A wild address: region id far beyond anything allocated.
			a.ReadNative(int64(1)<<62, 0, 8)
		}
		return nil
	}
}

// flipInputBit corrupts one bit of the task's first non-empty input
// buffer — the injected violation of the input-immutability contract
// that the VerifyInputs canary must catch.
func flipInputBit(spec TaskSpec) {
	for _, inv := range spec.Invocations {
		names := make([]string, 0, len(inv))
		for name := range inv {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if buf := inv[name].Buf; len(buf) > 0 {
				buf[len(buf)/2] ^= 1
				return
			}
		}
	}
}

func countRecords(invs []map[string]Input) int64 {
	var n int64
	for _, inv := range invs {
		for _, in := range inv {
			if in.Offs != nil {
				n += int64(len(in.Offs))
			} else {
				for off := 0; off < len(in.Buf); off += serde.RecordSize(in.Buf, off) {
					n++
				}
			}
		}
	}
	return n
}

// simulateClosure models serializing and deserializing the task closure
// (lambda + captured state). It does real byte work so it shows up in
// measurements the way the paper's residual serde does.
func simulateClosure(n int) (ser, deser time.Duration) {
	if n <= 0 {
		return 0, 0
	}
	t0 := time.Now()
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	h := fnv.New64a()
	h.Write(buf)
	ser = time.Since(t0)
	t1 := time.Now()
	var sum uint64
	for _, b := range buf {
		sum = sum*131 + uint64(b)
	}
	_ = sum
	deser = time.Since(t1)
	return ser, deser
}

// RunNativeDebug exposes the native attempt for tests diagnosing abort
// reasons.
func (e *Executor) RunNativeDebug(spec TaskSpec) ([]byte, error) {
	out, _, err := e.runNativeAttempt(spec, nil, nil)
	return out, err
}
