// Hedged task execution: the straggler mitigation the paper's recovery
// model (§3.6) leaves on the table. The unhedged executor runs the heap
// path only *after* a speculative abort, so a native attempt that is
// merely slow — a GC-wedged executor, a pathological input, an injected
// stall — serializes the whole task behind it. Hedging bounds that tail:
// once a native attempt has run longer than a configurable hedge delay,
// the untransformed heap attempt launches concurrently over the same
// immutable input buffers and the task takes the first finisher, the
// loser being canceled cooperatively through the interpreter's step
// loop.
//
// The race is safe for exactly the reason re-execution after an abort is
// safe: speculation never mutates task inputs (the statically inserted
// mutate-input aborts enforce it, the VerifyInputs canary checks it),
// and each attempt owns all of its other state — its own heap, its own
// arena, its own output sink. Both paths compute the same function, so
// whichever finishes first yields the same bytes; the differential tests
// pin hedged output byte-identical to unhedged output under -race.
//
// One deliberate asymmetry: a *permanent* native failure fails the task
// even if the hedge produced an answer, because that is what the
// unhedged path does — hedging must never change a task's outcome, only
// its latency.

package engine

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// HedgeConfig configures straggler hedging for an executor. The zero
// value disables hedging entirely (the paper's serial recovery
// semantics).
type HedgeConfig struct {
	// After is the absolute hedge delay: a native attempt still running
	// after this long gets a concurrent heap attempt raced against it.
	// <= 0 disables the absolute trigger.
	After time.Duration
	// MedianMult, when > 0, derives the hedge delay adaptively as
	// MedianMult times the pool's observed median task latency (the
	// task_latency_ns histogram of the executor's tracer registry). It
	// needs an enabled tracer and at least MinSamples observed tasks;
	// until both hold, After (if set) applies instead.
	MedianMult float64
	// MinSamples is the minimum number of task-latency observations
	// before the median trigger takes over from After (default 8).
	MinSamples int
}

// Enabled reports whether any hedge trigger is configured.
func (h HedgeConfig) Enabled() bool { return h.After > 0 || h.MedianMult > 0 }

// hedgeDelay resolves the hedge delay for the next task: the adaptive
// median-based trigger when enough latency samples exist, otherwise the
// absolute delay. ok is false when hedging should not arm at all.
func (e *Executor) hedgeDelay() (delay time.Duration, ok bool) {
	h := e.Hedge
	if !h.Enabled() {
		return 0, false
	}
	if h.MedianMult > 0 {
		minSamples := h.MinSamples
		if minSamples <= 0 {
			minSamples = 8
		}
		hist := e.Trace.Registry().Histogram("task_latency_ns", trace.LatencyBuckets()...)
		if med, n := hist.Quantile(0.5); n >= int64(minSamples) && med > 0 {
			return time.Duration(h.MedianMult * med), true
		}
	}
	if h.After > 0 {
		return h.After, true
	}
	return 0, false
}

// canceler carries the cooperative cancellation signal for one racing
// attempt: an atomic flag the interpreter's step loop polls, plus a
// channel injected stalls select on. A nil *canceler never cancels.
type canceler struct {
	flag atomic.Bool
	ch   chan struct{}
}

func newCanceler() *canceler { return &canceler{ch: make(chan struct{})} }

// cancel signals the attempt to stop at its next cancellation point.
// Idempotent and safe to call concurrently.
func (c *canceler) cancel() {
	if c.flag.CompareAndSwap(false, true) {
		close(c.ch)
	}
}

// cancelFlag returns the flag the interpreter polls (nil = uncancelable).
func (c *canceler) cancelFlag() *atomic.Bool {
	if c == nil {
		return nil
	}
	return &c.flag
}

// sleep blocks for d or until canceled, reporting whether it was
// canceled first.
func (c *canceler) sleep(d time.Duration) bool {
	if c == nil {
		time.Sleep(d)
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return false
	case <-c.ch:
		return true
	}
}

// attemptOutcome is one racing attempt's result, handed back over a
// channel so the task goroutine aggregates stats without shared state.
type attemptOutcome struct {
	out []byte
	bd  metrics.Breakdown
	err error
}

// runTaskHedged is RunTask's native branch with hedging armed. It owns
// the full task outcome from here: the native attempt starts
// immediately in its own goroutine; if it outlives the hedge delay, the
// heap attempt launches beside it and the first finisher wins. Both
// channels are always drained before returning, so no attempt goroutine
// outlives its task and every attempt's cost lands in the job
// accounting (a canceled loser's partial work is real work the hedge
// spent).
func (e *Executor) runTaskHedged(spec TaskSpec, task *trace.Span, start time.Time,
	bd *metrics.Breakdown, sum uint64, delay time.Duration,
	finish func(string), fail func(error) (TaskResult, error)) (TaskResult, error) {

	reg := e.Trace.Registry()

	// recordAbort mirrors the synchronous path's breaker and abort
	// accounting for a native attempt that ran to a failed speculation.
	recordAbort := func(err error) {
		e.Breaker.Record(spec.Driver, true)
		bd.Aborts++
		task.Instant("abort", "speculation-abort",
			trace.Str("class", Classify(err).String()), trace.Str("reason", err.Error()))
		reg.Counter("aborts_total").Add(1)
		e.recordDeopt(spec.Driver)
	}
	// verify re-runs the mutate-input canary. Every caller settles both
	// attempts first, so a hedged race can never mask a corrupted input:
	// mutation fails the task loudly, exactly like the unhedged path.
	verify := func() error {
		if e.VerifyInputs && checksumInputs(spec) != sum {
			return &TaskError{Task: spec.Name, Class: FaultPermanent, Err: ErrInputMutated}
		}
		return nil
	}
	ok := func(out []byte) (TaskResult, error) {
		if err := verify(); err != nil {
			return fail(err)
		}
		bd.Total = time.Since(start)
		finish("ok")
		return TaskResult{Out: out, Stats: *bd}, nil
	}

	nativeCancel := newCanceler()
	nativeCh := make(chan attemptOutcome, 1)
	natt := task.Child("attempt", "native-attempt")
	go func() {
		out, abd, err := e.runNativeAttempt(spec, natt, nativeCancel)
		nativeCh <- attemptOutcome{out: out, bd: abd, err: err}
	}()

	hedgeTimer := time.NewTimer(delay)
	defer hedgeTimer.Stop()

	var nr attemptOutcome
	nativeFirst := false
	select {
	case nr = <-nativeCh:
		nativeFirst = true
	case <-hedgeTimer.C:
	}

	if nativeFirst {
		// The native attempt beat the hedge delay: no intra-task
		// concurrency happened and the unhedged semantics apply verbatim.
		bd.Add(nr.bd)
		switch {
		case nr.err == nil:
			natt.End(trace.Str("outcome", "ok"))
			e.Breaker.Record(spec.Driver, false)
			return ok(nr.out)
		case Classify(nr.err) == AbortSpeculation || Classify(nr.err) == FaultOOM:
			natt.End(trace.Str("outcome", "abort"))
			recordAbort(nr.err)
			if err := verify(); err != nil {
				return fail(err)
			}
			hatt := task.Child("attempt", "heap-attempt")
			out, hbd, err := e.runHeapAttempt(spec, hatt, nil)
			bd.Add(hbd)
			if err != nil {
				hatt.End(trace.Str("outcome", "error"))
				return fail(err)
			}
			hatt.End(trace.Str("outcome", "ok"))
			bd.Total = time.Since(start)
			finish("ok")
			return TaskResult{Out: out, Stats: *bd}, nil
		default:
			natt.End(trace.Str("outcome", "error"))
			return fail(nr.err)
		}
	}

	// The hedge fires: launch the untransformed heap attempt over the
	// same immutable input buffers and take the first finisher.
	task.Instant("hedge", "hedge-launch",
		trace.Str("driver", spec.Driver), trace.I64("delay_ns", int64(delay)))
	reg.Counter("hedges_total").Add(1)
	bd.Hedges++
	heapCancel := newCanceler()
	heapCh := make(chan attemptOutcome, 1)
	hatt := task.Child("attempt", "heap-hedge")
	go func() {
		out, hbd, err := e.runHeapAttempt(spec, hatt, heapCancel)
		heapCh <- attemptOutcome{out: out, bd: hbd, err: err}
	}()

	select {
	case nr = <-nativeCh:
		bd.Add(nr.bd)
		switch {
		case nr.err == nil:
			// Native finished first after all: cancel the hedge, drain
			// it, and return the speculative result.
			natt.End(trace.Str("outcome", "ok"))
			e.Breaker.Record(spec.Driver, false)
			heapCancel.cancel()
			hr := <-heapCh
			bd.Add(hr.bd)
			hatt.End(trace.Str("outcome", "canceled"))
			task.Instant("hedge", "hedge-cancel", trace.Str("loser", "heap"))
			reg.Counter("hedge_cancels_total").Add(1)
			return ok(nr.out)
		case Classify(nr.err) == AbortSpeculation || Classify(nr.err) == FaultOOM:
			// Failed speculation: the already-running hedge IS the heap
			// fallback the unhedged path would now start — wait for it.
			natt.End(trace.Str("outcome", "abort"))
			recordAbort(nr.err)
			hr := <-heapCh
			bd.Add(hr.bd)
			if hr.err != nil {
				hatt.End(trace.Str("outcome", "error"))
				return fail(hr.err)
			}
			hatt.End(trace.Str("outcome", "ok"))
			task.Instant("hedge", "hedge-win", trace.Str("driver", spec.Driver))
			reg.Counter("hedge_wins_total").Add(1)
			bd.HedgeWins++
			return ok(hr.out)
		default:
			// Permanent native failure fails the task exactly as the
			// unhedged path would; the hedge's answer must not mask it.
			natt.End(trace.Str("outcome", "error"))
			heapCancel.cancel()
			hr := <-heapCh
			bd.Add(hr.bd)
			hatt.End(trace.Str("outcome", "canceled"))
			return fail(nr.err)
		}

	case hr := <-heapCh:
		bd.Add(hr.bd)
		if hr.err != nil {
			// The ground-truth path failed. Whether the task fails
			// depends on the native attempt, so wait for it.
			hatt.End(trace.Str("outcome", "error"))
			nr = <-nativeCh
			bd.Add(nr.bd)
			switch {
			case nr.err == nil:
				natt.End(trace.Str("outcome", "ok"))
				e.Breaker.Record(spec.Driver, false)
				return ok(nr.out)
			case Classify(nr.err) == AbortSpeculation || Classify(nr.err) == FaultOOM:
				natt.End(trace.Str("outcome", "abort"))
				recordAbort(nr.err)
				return fail(hr.err)
			default:
				natt.End(trace.Str("outcome", "error"))
				return fail(nr.err)
			}
		}
		// Hedge win: the heap attempt overtook the straggling native.
		// Cancel the straggler cooperatively and drain it.
		hatt.End(trace.Str("outcome", "ok"))
		task.Instant("hedge", "hedge-win", trace.Str("driver", spec.Driver))
		reg.Counter("hedge_wins_total").Add(1)
		bd.HedgeWins++
		nativeCancel.cancel()
		nr = <-nativeCh
		bd.Add(nr.bd)
		switch {
		case nr.err == nil:
			// Lost the race but completed: still a successful
			// speculation for the breaker (both outputs are identical).
			natt.End(trace.Str("outcome", "ok"))
			e.Breaker.Record(spec.Driver, false)
		case errors.Is(nr.err, interp.ErrCanceled):
			natt.End(trace.Str("outcome", "canceled"))
			task.Instant("hedge", "hedge-cancel", trace.Str("loser", "native"))
			reg.Counter("hedge_cancels_total").Add(1)
		case Classify(nr.err) == AbortSpeculation || Classify(nr.err) == FaultOOM:
			natt.End(trace.Str("outcome", "abort"))
			recordAbort(nr.err)
		default:
			// See above: a permanent native failure keeps failing the
			// task with hedging on.
			natt.End(trace.Str("outcome", "error"))
			return fail(nr.err)
		}
		return ok(hr.out)
	}
}
