package engine_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	. "repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/trace"
)

// hedgeFixture compiles the shared pair program and returns the compiled
// program, a task input, and the fault-free baseline output.
func hedgeFixture(t *testing.T, records int) (*Compiled, []byte, []byte) {
	t.Helper()
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	input := encode(t, c, records)
	return c, input, baselineOut(t, c, input)
}

// TestHedgeHeapWinsOverStraggler pins the headline behavior: a native
// attempt stalled far beyond the hedge delay loses to the concurrently
// launched heap attempt, the task returns the heap result well before
// the stall would have elapsed, and the output is byte-identical to the
// unhedged baseline.
func TestHedgeHeapWinsOverStraggler(t *testing.T) {
	c, input, want := hedgeFixture(t, 25)
	const stall = 30 * time.Second // far beyond any test runtime
	tr := trace.New()
	e := &Executor{C: c, Mode: Gerenuk, VerifyInputs: true, Trace: tr,
		Hedge: HedgeConfig{After: time.Millisecond}}
	start := time.Now()
	res, err := e.RunTask(TaskSpec{
		Name: "straggler", Driver: "incStage",
		Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
		Faults:      &faults.Plan{NativeDelay: stall},
	})
	if err != nil {
		t.Fatalf("hedged task failed: %v", err)
	}
	if time.Since(start) >= stall {
		t.Fatalf("hedge did not preempt the straggler stall")
	}
	if !bytes.Equal(res.Out, want) {
		t.Fatalf("hedged output differs from fault-free baseline")
	}
	if res.Stats.Hedges != 1 || res.Stats.HedgeWins != 1 {
		t.Errorf("hedges = %d, wins = %d, want 1 and 1", res.Stats.Hedges, res.Stats.HedgeWins)
	}
	reg := tr.Registry()
	if v := reg.Counter("hedges_total").Value(); v != 1 {
		t.Errorf("hedges_total = %d, want 1", v)
	}
	if v := reg.Counter("hedge_wins_total").Value(); v != 1 {
		t.Errorf("hedge_wins_total = %d, want 1", v)
	}
	if v := reg.Counter("hedge_cancels_total").Value(); v != 1 {
		t.Errorf("hedge_cancels_total = %d, want 1 (canceled straggler)", v)
	}
	if v := reg.Counter("aborts_total").Value(); v != 0 {
		t.Errorf("aborts_total = %d, want 0 (a canceled straggler is not an abort)", v)
	}
}

// TestHedgeNativeWinsFast: with a hedge delay no fast task ever reaches,
// hedging must be a pure no-op — no hedge launches, no extra stats.
func TestHedgeNativeWinsFast(t *testing.T) {
	c, input, want := hedgeFixture(t, 25)
	e := &Executor{C: c, Mode: Gerenuk, VerifyInputs: true,
		Hedge: HedgeConfig{After: time.Hour}}
	res, err := e.RunTask(TaskSpec{
		Name: "fast", Driver: "incStage",
		Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Out, want) {
		t.Fatalf("output differs from baseline")
	}
	if res.Stats.Hedges != 0 || res.Stats.HedgeWins != 0 {
		t.Errorf("hedges = %d, wins = %d, want 0 and 0", res.Stats.Hedges, res.Stats.HedgeWins)
	}
}

// TestHedgeRaceEitherWinner races the two attempts with an immediate
// hedge delay so either side can win, repeatedly. Whoever wins, the
// output must equal the fault-free baseline — the differential property
// that makes hedging safe to enable everywhere. Run under -race this
// also shakes out sharing between the concurrent attempts.
func TestHedgeRaceEitherWinner(t *testing.T) {
	c, input, want := hedgeFixture(t, 25)
	for i := 0; i < 20; i++ {
		e := &Executor{C: c, Mode: Gerenuk, VerifyInputs: true,
			Hedge: HedgeConfig{After: time.Nanosecond}}
		res, err := e.RunTask(TaskSpec{
			Name: "race", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !bytes.Equal(res.Out, want) {
			t.Fatalf("run %d: output differs from baseline", i)
		}
	}
}

// TestHedgeAbortFallsBackToRunningHedge: when the native attempt aborts
// after the hedge launched, the already-running heap attempt serves as
// the fallback (no second heap run) and abort accounting still fires.
func TestHedgeAbortFallsBackToRunningHedge(t *testing.T) {
	c, input, want := hedgeFixture(t, 25)
	tr := trace.New()
	e := &Executor{C: c, Mode: Gerenuk, VerifyInputs: true, Trace: tr,
		Hedge: HedgeConfig{After: time.Nanosecond}}
	res, err := e.RunTask(TaskSpec{
		Name: "abort-hedged", Driver: "incStage",
		Invocations:       []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
		AbortAfterRecords: 5,
	})
	if err != nil {
		t.Fatalf("hedged abort did not recover: %v", err)
	}
	if !bytes.Equal(res.Out, want) {
		t.Fatalf("recovered output differs from baseline")
	}
	if res.Stats.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", res.Stats.Aborts)
	}
	// One whole-task attempt, exactly like the unhedged abort-recover path.
	if res.Stats.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", res.Stats.Attempts)
	}
	if v := tr.Registry().Counter("aborts_total").Value(); v != 1 {
		t.Errorf("aborts_total = %d, want 1", v)
	}
}

// ---- breaker time-based decay ----

// TestBreakerCoolDownProbe drives the cool-down state machine with a
// fake clock: an open breaker admits no probe before the cool-down,
// exactly one per elapsed cool-down period, re-arms after both an
// admitted and a failed probe, and closes on a successful one.
func TestBreakerCoolDownProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &Breaker{Threshold: 2, ProbeEvery: 1 << 20, CoolDown: time.Second,
		Clock: func() time.Time { return now }}

	b.Record("d", true)
	b.Record("d", true)
	if !b.Open("d") {
		t.Fatalf("breaker did not open after threshold aborts")
	}
	if b.Allow("d") {
		t.Fatalf("probe admitted before the cool-down elapsed")
	}
	now = now.Add(time.Second)
	if !b.Allow("d") {
		t.Fatalf("probe not admitted after the cool-down elapsed")
	}
	// The admitted probe re-armed the cool-down: no second probe yet.
	if b.Allow("d") {
		t.Fatalf("second probe admitted inside one cool-down period")
	}
	// A failed probe re-arms the cool-down from its completion.
	now = now.Add(time.Second)
	if !b.Allow("d") {
		t.Fatalf("probe not admitted after second cool-down")
	}
	b.Record("d", true)
	if b.Allow("d") {
		t.Fatalf("probe admitted right after a failed probe re-armed the cool-down")
	}
	now = now.Add(time.Second)
	if !b.Allow("d") {
		t.Fatalf("probe not admitted after failed-probe re-arm elapsed")
	}
	b.Record("d", false)
	if b.Open("d") {
		t.Fatalf("breaker still open after successful probe")
	}
	if !b.Allow("d") {
		t.Fatalf("closed breaker must allow")
	}
}

// TestBreakerCoolDownZeroKeepsCadence: CoolDown 0 must preserve the
// probe-count-only behavior exactly (the zero value is the old breaker).
func TestBreakerCoolDownZeroKeepsCadence(t *testing.T) {
	b := &Breaker{Threshold: 1, ProbeEvery: 4}
	b.Record("d", true)
	allowed := 0
	for i := 0; i < 8; i++ {
		if b.Allow("d") {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("allowed %d probes in 8 tasks with ProbeEvery 4, want 2", allowed)
	}
}

// TestBreakerConcurrentAllowRecord exercises Allow/Record/Open from many
// goroutines; run with -race it pins the breaker's thread safety,
// including the cool-down fields.
func TestBreakerConcurrentAllowRecord(t *testing.T) {
	b := &Breaker{Threshold: 2, ProbeEvery: 4, CoolDown: time.Microsecond}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow("d") {
					b.Record("d", (g+i)%3 == 0)
				}
				b.Open("d")
			}
		}(g)
	}
	wg.Wait()
}

// ---- pool accounting bugfixes ----

// TestJobResultWallPopulated: regression for Wall being documented but
// never measured — Pool.Run must stamp the job's wall-clock time.
func TestJobResultWallPopulated(t *testing.T) {
	c, input, _ := hedgeFixture(t, 10)
	pool := &Pool{Workers: 2}
	job, err := pool.Run(func() *Executor {
		return &Executor{C: c, Mode: Gerenuk}
	}, []TaskSpec{
		{Name: "a", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}}},
		{Name: "b", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Wall.Total <= 0 {
		t.Fatalf("job.Wall.Total = %v, want > 0", job.Wall.Total)
	}
}

// TestPartialJobResultOnFailure: regression for Run returning a nil
// JobResult alongside the JobError — the successful tasks' outputs,
// stats, and the wall time must survive a partial failure.
func TestPartialJobResultOnFailure(t *testing.T) {
	c, input, want := hedgeFixture(t, 10)
	specs := make([]TaskSpec, 3)
	for i := range specs {
		specs[i] = TaskSpec{
			Name: "t", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
		}
	}
	specs[1].Faults = &faults.Plan{TransientFailures: 99}
	pool := &Pool{Workers: 1, MaxAttempts: 2}
	job, err := pool.Run(func() *Executor {
		return &Executor{C: c, Mode: Gerenuk}
	}, specs)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %v", err)
	}
	if job == nil {
		t.Fatalf("partial JobResult is nil alongside the JobError")
	}
	if len(job.Outputs) != 2 {
		t.Fatalf("partial outputs = %d, want 2", len(job.Outputs))
	}
	for i, out := range job.Outputs {
		if !bytes.Equal(out, want) {
			t.Errorf("partial output %d differs from baseline", i)
		}
	}
	if job.Stats.Attempts == 0 {
		t.Errorf("partial job.Stats empty; failed attempts must stay accounted")
	}
	if job.Wall.Total <= 0 {
		t.Errorf("partial job.Wall.Total = %v, want > 0", job.Wall.Total)
	}
}

// TestBackoffDelayCap pins the overflow fix: the exponential shift is
// capped, the delay clamped, and pathological attempt numbers can never
// yield a zero or negative sleep that would turn backoff into a hot
// retry loop.
func TestBackoffDelayCap(t *testing.T) {
	base := time.Millisecond
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{attempt: 1, want: 0},                       // first attempt: no backoff
		{attempt: 2, want: time.Millisecond},        // base
		{attempt: 3, want: 2 * time.Millisecond},    // doubled
		{attempt: 10, want: 256 * time.Millisecond}, // base << 8
		{attempt: 18, want: 30 * time.Second},       // base << 16 = 65.5s, clamped
		{attempt: 100, want: 30 * time.Second},      // shift capped at 16
		{attempt: 1 << 40, want: 30 * time.Second},  // would overflow unguarded
	}
	for _, tc := range cases {
		if got := BackoffDelay(base, tc.attempt); got != tc.want {
			t.Errorf("BackoffDelay(%v, %d) = %v, want %v", base, tc.attempt, got, tc.want)
		}
	}
	// A base above the clamp keeps itself as the ceiling.
	if got := BackoffDelay(time.Minute, 100); got != time.Minute {
		t.Errorf("BackoffDelay(1m, 100) = %v, want 1m", got)
	}
	if got := BackoffDelay(0, 5); got != 0 {
		t.Errorf("BackoffDelay(0, 5) = %v, want 0", got)
	}
	// Huge bases whose shift overflows must still come back positive.
	huge := time.Duration(1) << 62
	if got := BackoffDelay(huge, 50); got != huge {
		t.Errorf("BackoffDelay(huge, 50) = %v, want %v", got, huge)
	}
}
