package engine_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	. "repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/trace"
)

// Driver names repeat across jobs (every PageRank runs "contribStage"),
// so a service-wide breaker keyed only by driver would let one tenant's
// aborts de-speculate every tenant. Scoped views must isolate the
// (tenant, driver) state while sharing configuration.
func TestBreakerScopedIsolation(t *testing.T) {
	root := &Breaker{Threshold: 2, ProbeEvery: 4}
	alice := root.Scoped("alice")
	mallory := root.Scoped("mallory")

	const driver = "contribStage"
	// Mallory's tasks abort until her scope's breaker opens.
	mallory.Record(driver, true)
	mallory.Record(driver, true)
	if !mallory.Open(driver) {
		t.Fatal("mallory's breaker should be open after Threshold aborts")
	}
	if !mallory.Scoped("sub").Allow(driver) {
		// A nested scope is a fresh namespace, not a view of the parent's
		// entries.
		t.Fatal("nested scope inherited the parent scope's open state")
	}

	// Alice shares the same root and the same driver name, but her scope
	// must be untouched: speculation stays enabled.
	if alice.Open(driver) {
		t.Fatal("mallory's aborts opened alice's breaker")
	}
	if !alice.Allow(driver) {
		t.Fatal("alice's native path blocked by mallory's aborts")
	}
	if root.Open(driver) {
		t.Fatal("scoped aborts leaked into the root namespace")
	}

	// Alice's own outcomes drive only her scope.
	alice.Record(driver, true)
	alice.Record(driver, true)
	if !alice.Open(driver) || root.Open(driver) {
		t.Fatalf("alice open=%v root open=%v, want true/false",
			alice.Open(driver), root.Open(driver))
	}
	// Mallory recovering (successful probe) must not close alice's.
	mallory.Record(driver, false)
	if mallory.Open(driver) || !alice.Open(driver) {
		t.Fatalf("after mallory probe: mallory=%v alice=%v, want false/true",
			mallory.Open(driver), alice.Open(driver))
	}

	var nb *Breaker
	if nb.Scoped("x") != nil {
		t.Fatal("nil breaker Scoped must stay nil (always-allow)")
	}
}

// TestConcurrentJobsShareCompiledRace is the shared-state stress test:
// many concurrent jobs share one Compiled program (precompiled up
// front, per the sharing contract), one tracer and one breaker, across
// both execution backends, and every job's output must be
// byte-identical to a serial run. Run under -race this pins the
// compile-cache, tracer and breaker audit findings.
func TestConcurrentJobsShareCompiledRace(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	// The sharing contract: compile every driver before concurrent tasks
	// run, so no job mutates the IR program while another executes it.
	if err := c.Precompile("incStage"); err != nil {
		t.Fatal(err)
	}
	if !c.CanRunNative("incStage") {
		t.Fatal("precompiled driver not runnable natively")
	}

	tr := trace.New()
	breaker := &Breaker{Threshold: 3}
	breaker.EnsureTrace(tr)

	input := encode(t, c, 40)
	spec := TaskSpec{
		Name: "t", Driver: "incStage",
		Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
	}

	// Serial goldens, one per (backend, mode).
	type key struct {
		backend Backend
		mode    Mode
	}
	golden := map[key][]byte{}
	for _, backend := range []Backend{BackendCompiled, BackendInterp} {
		for _, mode := range []Mode{Baseline, Gerenuk} {
			e := &Executor{C: c, Mode: mode, Backend: backend,
				HeapCfg: heap.Config{YoungSize: 64 << 10, OldSize: 1 << 20}}
			res, err := e.RunTask(spec)
			if err != nil {
				t.Fatalf("serial %v/%v: %v", backend, mode, err)
			}
			golden[key{backend, mode}] = res.Out
		}
	}

	const jobs = 12 // ≥8 concurrent jobs, mixed tenants/backends/modes
	tenants := []string{"alice", "bob", "mallory"}
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := BackendCompiled
			if i%2 == 1 {
				backend = BackendInterp
			}
			mode := Baseline
			if i%4 >= 2 {
				mode = Gerenuk
			}
			tenant := tenants[i%len(tenants)]
			e := &Executor{
				C: c, Mode: mode, Backend: backend,
				HeapCfg: heap.Config{YoungSize: 64 << 10, OldSize: 1 << 20},
				Trace:   tr, Breaker: breaker.Scoped(tenant), Tenant: tenant,
			}
			res, err := e.RunTask(spec)
			if err != nil {
				errs <- fmt.Errorf("job %d (%v/%v): %v", i, backend, mode, err)
				return
			}
			if !bytes.Equal(res.Out, golden[key{backend, mode}]) {
				errs <- fmt.Errorf("job %d (%v/%v): output differs from serial run", i, backend, mode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Per-tenant task-latency series must have appeared in the shared
	// registry.
	snap := tr.Registry().Snapshot()
	for _, tenant := range tenants {
		name := trace.Name("task_latency_ns", "tenant", tenant)
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("missing %s in registry snapshot", name)
		}
	}
}
