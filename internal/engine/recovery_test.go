package engine_test

import (
	"bytes"
	"testing"
	"time"

	. "repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/recovery"
	"repro/internal/serde"
	"repro/internal/spark"
	"repro/internal/trace"
)

// reduceProgram defines Pair{key long, value double} with a summing
// combine UDF and the fold-style stage driver — a multi-invocation task
// shape the checkpoint tests need.
func reduceProgram(t *testing.T) *ir.Program {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Pair", Fields: []model.FieldDef{
		{Name: "key", Type: model.Prim(model.KindLong)},
		{Name: "value", Type: model.Prim(model.KindDouble)},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Pair"}

	cb := ir.NewFuncBuilder(prog, "sumCombine", model.Object("Pair"))
	a := cb.Param("a", model.Object("Pair"))
	bb := cb.Param("b", model.Object("Pair"))
	ka := cb.Load(a, "key")
	va := cb.Load(a, "value")
	vb := cb.Load(bb, "value")
	sum := cb.Bin(ir.OpAdd, va, vb)
	acc := cb.New("Pair")
	cb.Store(acc, "key", ka)
	cb.Store(acc, "value", sum)
	cb.Ret(acc)
	cb.Done()
	spark.BuildReduceDriver(prog, "sumStage", "sumCombine", "Pair")
	return prog
}

// foldSpec builds a reduce task over nKeys key groups of nPerKey records
// each — one driver invocation per key group.
func foldSpec(t *testing.T, c *Compiled, nKeys, nPerKey int) TaskSpec {
	t.Helper()
	var buf []byte
	var err error
	for k := 0; k < nKeys; k++ {
		for i := 0; i < nPerKey; i++ {
			buf, err = c.Codec.Encode("Pair",
				serde.Obj{"key": int64(k), "value": float64(10*k + i)}, buf)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	_, groups, err := GroupByKey(c.Layouts, "Pair", "key", buf)
	if err != nil {
		t.Fatal(err)
	}
	invs := make([]map[string]Input, 0, len(groups))
	for _, offs := range groups {
		invs = append(invs, map[string]Input{
			"in": {Class: "Pair", Buf: buf, Offs: offs},
		})
	}
	return TaskSpec{Name: "fold-r0", Driver: "sumStage", Invocations: invs}
}

func runFold(t *testing.T, mode Mode, mutate func(*TaskSpec), tr *trace.Tracer) ([]byte, error) {
	t.Helper()
	prog := reduceProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("sumStage"); err != nil {
		t.Fatal(err)
	}
	spec := foldSpec(t, c, 4, 3)
	if mutate != nil {
		mutate(&spec)
	}
	exec := func() *Executor {
		return &Executor{C: c, Mode: mode,
			HeapCfg: heap.Config{YoungSize: 64 << 10, OldSize: 1 << 20}, Trace: tr}
	}
	pool := &Pool{Workers: 1, MaxAttempts: 3}
	job, err := pool.Run(exec, []TaskSpec{spec})
	if err != nil {
		return nil, err
	}
	return job.Outputs[0], nil
}

// TestKillResumesFromCheckpoint is the core differential recovery
// property at task granularity: a reduce attempt killed mid-fold
// resumes from its last checkpoint on the retry, and the recovered
// output is byte-identical to the fault-free run — in both modes.
func TestKillResumesFromCheckpoint(t *testing.T) {
	for _, mode := range []Mode{Baseline, Gerenuk} {
		want, err := runFold(t, mode, nil, nil)
		if err != nil {
			t.Fatalf("%v fault-free: %v", mode, err)
		}
		tr := trace.New()
		store := recovery.NewCheckpointStore()
		got, err := runFold(t, mode, func(s *TaskSpec) {
			s.CheckpointEvery = 1
			s.Checkpoints = store
			// 4 invocations × 3 records: record 8 is mid-invocation 3,
			// after two checkpoints exist.
			s.Faults = &faults.Plan{KillReduceAtRecord: 8}
		}, tr)
		if err != nil {
			t.Fatalf("%v killed: %v", mode, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: recovered output differs from fault-free run", mode)
		}
		reg := tr.Registry()
		if saved := reg.Counter("recovery_checkpoints_saved_total").Value(); saved < 2 {
			t.Errorf("%v: checkpoints saved = %d, want >= 2", mode, saved)
		}
		if resumes := reg.Counter("recovery_checkpoint_resumes_total").Value(); resumes < 1 {
			t.Errorf("%v: checkpoint resumes = %d, want >= 1", mode, resumes)
		}
		if store.Len() != 0 {
			t.Errorf("%v: %d checkpoints leaked after task success", mode, store.Len())
		}
	}
}

// TestCheckpointCorruptionFallsBackToRecordZero: the dying attempt
// mangles its checkpoint; the retry must detect the checksum mismatch,
// discard the checkpoint, and still produce byte-identical output.
func TestCheckpointCorruptionFallsBackToRecordZero(t *testing.T) {
	for _, mode := range []Mode{Baseline, Gerenuk} {
		want, err := runFold(t, mode, nil, nil)
		if err != nil {
			t.Fatalf("%v fault-free: %v", mode, err)
		}
		tr := trace.New()
		got, err := runFold(t, mode, func(s *TaskSpec) {
			s.CheckpointEvery = 1
			s.Checkpoints = recovery.NewCheckpointStore()
			s.Faults = &faults.Plan{KillReduceAtRecord: 8, CheckpointCorrupt: true}
		}, tr)
		if err != nil {
			t.Fatalf("%v killed+corrupt: %v", mode, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: output after corrupt checkpoint differs", mode)
		}
		reg := tr.Registry()
		if n := reg.Counter("recovery_checkpoint_corrupt_total").Value(); n < 1 {
			t.Errorf("%v: corrupt checkpoints detected = %d, want >= 1", mode, n)
		}
		if n := reg.Counter("recovery_checkpoint_resumes_total").Value(); n != 0 {
			t.Errorf("%v: resumed %d times from a corrupt checkpoint", mode, n)
		}
	}
}

// TestKillWithoutCheckpointsStillRecovers: the kill alone is an
// ordinary transient fault; without a checkpoint store the retry
// restarts from record zero and must still match.
func TestKillWithoutCheckpointsStillRecovers(t *testing.T) {
	for _, mode := range []Mode{Baseline, Gerenuk} {
		want, err := runFold(t, mode, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runFold(t, mode, func(s *TaskSpec) {
			s.Faults = &faults.Plan{KillReduceAtRecord: 5}
		}, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: output differs", mode)
		}
	}
}

func TestJitterFullRangeAndReproducible(t *testing.T) {
	base := 10 * time.Millisecond
	a, b := NewJitter(42), NewJitter(42)
	for attempt := 2; attempt < 12; attempt++ {
		cap := BackoffDelay(base, attempt)
		da := a.Delay(base, attempt)
		if db := b.Delay(base, attempt); da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", attempt, da, db)
		}
		if da < 0 || da > cap {
			t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, da, cap)
		}
	}
	// A different seed must eventually differ (full jitter, not a no-op).
	c := NewJitter(7)
	same := true
	a2 := NewJitter(42)
	for attempt := 2; attempt < 12; attempt++ {
		if a2.Delay(base, attempt) != c.Delay(base, attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 7 produced identical delay sequences")
	}
	// nil jitter keeps the deterministic schedule exactly.
	var nj *Jitter
	for attempt := 1; attempt < 6; attempt++ {
		if nj.Delay(base, attempt) != BackoffDelay(base, attempt) {
			t.Fatalf("nil jitter changed the deterministic delay")
		}
	}
	if NewJitter(1).Delay(0, 5) != 0 {
		t.Error("zero base must stay zero")
	}
}
