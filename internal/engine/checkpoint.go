package engine

import (
	"fmt"

	"repro/internal/trace"
)

// restoreCheckpoint loads the task's persisted partial-fold state, if
// any: seedFn receives the checkpointed output bytes (the completed
// invocations' fold results — deterministic and byte-identical in both
// modes, so a checkpoint saved by a native attempt soundly resumes a
// heap attempt and vice versa) and the returned index is the invocation
// to resume from. A corrupt checkpoint (checksum mismatch) is discarded
// and counted; the attempt then restarts from record zero — slower,
// never wrong.
func (e *Executor) restoreCheckpoint(spec TaskSpec, att *trace.Span, seedFn func([]byte)) int {
	if spec.CheckpointEvery <= 0 || spec.Checkpoints == nil {
		return 0
	}
	ck, ok, corrupt := spec.Checkpoints.Load(spec.Name)
	if corrupt {
		att.Instant("recovery", "checkpoint-corrupt", trace.Str("task", spec.Name))
		e.Trace.Registry().Counter("recovery_checkpoint_corrupt_total").Add(1)
	}
	if !ok || ck.Seq <= 0 || ck.Seq > len(spec.Invocations) {
		return 0
	}
	if len(ck.Data) > 0 {
		seedFn(ck.Data)
	}
	att.Instant("recovery", "checkpoint-resume", trace.Str("task", spec.Name),
		trace.I64("seq", int64(ck.Seq)), trace.I64("bytes", int64(len(ck.Data))))
	e.Trace.Registry().Counter("recovery_checkpoint_resumes_total").Add(1)
	return ck.Seq
}

// maybeCheckpoint persists the fold output after the done'th completed
// invocation when the cadence hits. Hedged attempts may save
// concurrently; any saved prefix is a sound resume point, so the race
// is benign.
func (e *Executor) maybeCheckpoint(spec TaskSpec, att *trace.Span, done int, out []byte) {
	if spec.CheckpointEvery <= 0 || spec.Checkpoints == nil || done%spec.CheckpointEvery != 0 {
		return
	}
	spec.Checkpoints.Save(spec.Name, done, out)
	att.Instant("recovery", "checkpoint-save", trace.Str("task", spec.Name),
		trace.I64("seq", int64(done)), trace.I64("bytes", int64(len(out))))
	e.Trace.Registry().Counter("recovery_checkpoints_saved_total").Add(1)
}

// killHook returns a per-record hook firing the spec's injected task
// kill, or nil when none is planned. The kill triggers on the attempt's
// cumulative record count — invocations share one counter, the
// granularity a shot executor dies at — and fires once per plan, so the
// retry runs to completion. When the plan also calls for checkpoint
// corruption, the dying "executor" mangles its last checkpoint write on
// the way down: the retry must detect the bad checksum and restart the
// fold from record zero.
func killHook(spec TaskSpec) func(int64) error {
	p := spec.Faults
	if p == nil || p.KillReduceAtRecord <= 0 {
		return nil
	}
	var total int64
	return func(int64) error {
		total++
		if total >= p.KillReduceAtRecord && p.TakeKill() {
			if p.TakeCheckpointCorrupt() {
				spec.Checkpoints.Corrupt(spec.Name)
			}
			return &TaskError{Task: spec.Name, Class: FaultTransient,
				Err: fmt.Errorf("injected task kill at record %d", total)}
		}
		return nil
	}
}
