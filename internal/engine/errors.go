package engine

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/recovery"
)

// FaultClass partitions task failures by the recovery they admit,
// mirroring the paper's failure model (§3.4, §3.6): speculation failures
// always deoptimize to the untransformed heap path; everything else is a
// plain distributed-systems fault the scheduler retries or reports.
type FaultClass int

const (
	// AbortSpeculation is a failed speculative attempt — a cooperative
	// abort instruction, a runtime guard failure, or a contained panic
	// inside the native path. Recovery: discard the attempt and
	// re-execute the original driver over the pristine inputs.
	AbortSpeculation FaultClass = iota
	// FaultTransient is a retryable whole-task failure (lost executor,
	// flaky I/O, injected chaos). Recovery: bounded retries with backoff.
	FaultTransient
	// FaultPermanent is a non-retryable failure: a genuine bug, or a
	// violated input-immutability contract that voids the re-execution
	// guarantee. Recovery: fail the task and report it.
	FaultPermanent
	// FaultOOM is an allocation failure of the simulated heap.
	// Recovery: retry the task with an escalated heap configuration.
	FaultOOM
)

func (c FaultClass) String() string {
	switch c {
	case AbortSpeculation:
		return "abort-speculation"
	case FaultTransient:
		return "transient"
	case FaultOOM:
		return "oom"
	default:
		return "permanent"
	}
}

// Retryable reports whether the pool should re-attempt a task that
// failed with this class.
func (c FaultClass) Retryable() bool { return c == FaultTransient || c == FaultOOM }

// TaskError is the typed failure of one task (possibly after several
// attempts).
type TaskError struct {
	Task     string
	Class    FaultClass
	Attempts int
	Err      error
}

func (e *TaskError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("task %s: %s after %d attempts: %v", e.Task, e.Class, e.Attempts, e.Err)
	}
	return fmt.Sprintf("task %s: %s: %v", e.Task, e.Class, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// ErrInputMutated is the mutate-input canary firing: an input buffer
// changed while a speculative attempt ran, so re-execution over "the
// same" bytes would not be re-execution over pristine input. The task
// must fail loudly instead of recovering silently wrong.
var ErrInputMutated = errors.New("engine: input buffer mutated during speculation (mutate-input canary)")

// ErrCanceled reports that a driver observed its cancellation signal at
// a stage or batch boundary and stopped cooperatively. It is a permanent
// (non-retryable) outcome: the work was abandoned on purpose, not lost.
// The cluster adapter translates it into the service's canceled state.
var ErrCanceled = errors.New("engine: job canceled")

// Canceled non-blockingly polls a cancellation channel: ErrCanceled once
// the channel is closed, nil otherwise (including for a nil channel).
// Drivers call it at stage and batch boundaries — the cooperative
// cancellation points.
func Canceled(ch <-chan struct{}) error {
	select {
	case <-ch:
		return ErrCanceled
	default:
		return nil
	}
}

// Classify maps an error to its fault class. TaskErrors keep their
// class; interp aborts are speculation failures; heap allocation
// failures are OOMs; everything unrecognized is permanent.
func Classify(err error) FaultClass {
	var te *TaskError
	if errors.As(err, &te) {
		return te.Class
	}
	if errors.Is(err, interp.ErrAbort) {
		return AbortSpeculation
	}
	if errors.Is(err, heap.ErrOutOfMemory) {
		return FaultOOM
	}
	if errors.Is(err, recovery.ErrStageTimeout) {
		// A watchdog-expired stage is presumed hung, not wrong: the
		// driver may retry it like any other transient fault.
		return FaultTransient
	}
	return FaultPermanent
}

// taskErr wraps err as a TaskError for the named task, preserving an
// existing TaskError's class and filling in the task name if absent.
func taskErr(task string, err error) *TaskError {
	var te *TaskError
	if errors.As(err, &te) {
		if te.Task == "" {
			te.Task = task
		}
		return te
	}
	return &TaskError{Task: task, Class: Classify(err), Err: err}
}

// TaskFailure records one failed task inside a JobError.
type TaskFailure struct {
	Index    int    // position in the job's spec slice
	Name     string // TaskSpec.Name
	Attempts int    // attempts consumed
	Err      error
}

// JobError aggregates every failed task of a job, replacing the old
// first-error-wins behavior: callers see all failures at once, the way a
// driver's final job report lists every lost task.
type JobError struct {
	Tasks    int // total tasks in the job
	Failures []TaskFailure
}

func (e *JobError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d of %d tasks failed:", len(e.Failures), e.Tasks)
	for _, f := range e.Failures {
		fmt.Fprintf(&sb, "\n  task %d (%s): %v", f.Index, f.Name, f.Err)
	}
	return sb.String()
}

// Unwrap exposes the per-task errors to errors.Is/As.
func (e *JobError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}
