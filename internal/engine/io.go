package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/arena"
	"repro/internal/dsa"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/trace"
)

// wireSource iterates size-prefixed records in a byte buffer, optionally
// restricted to explicit record offsets (one shuffle key group).
type wireSource struct {
	in  Input
	pos int // sequential scan offset, or index into Offs
}

func newWireSource(in Input) *wireSource { return &wireSource{in: in} }

func (s *wireSource) NextWire() ([]byte, int, bool) {
	if s.in.Offs != nil {
		if s.pos >= len(s.in.Offs) {
			return nil, 0, false
		}
		off := s.in.Offs[s.pos]
		s.pos++
		return s.in.Buf, off, true
	}
	if s.pos >= len(s.in.Buf) {
		return nil, 0, false
	}
	off := s.pos
	s.pos += serde.RecordSize(s.in.Buf, s.pos)
	return s.in.Buf, off, true
}

func (s *wireSource) Class() string { return s.in.Class }

// regionSource iterates the same records as native addresses within an
// adopted region.
type regionSource struct {
	a      *arena.Arena
	region *arena.Region
	in     Input
	pos    int
}

func newRegionSource(a *arena.Arena, r *arena.Region, in Input) *regionSource {
	return &regionSource{a: a, region: r, in: in}
}

func (s *regionSource) NextAddr() (int64, bool) {
	if s.in.Offs != nil {
		if s.pos >= len(s.in.Offs) {
			return 0, false
		}
		addr := s.region.AddrOf(s.in.Offs[s.pos] + serde.SizePrefixBytes)
		s.pos++
		return addr, true
	}
	if s.pos >= s.region.Len() {
		return 0, false
	}
	size := s.a.ReadNative(s.region.AddrOf(s.pos), 0, 4)
	addr := s.region.AddrOf(s.pos + serde.SizePrefixBytes)
	s.pos += serde.SizePrefixBytes + int(size)
	return addr, true
}

func (s *regionSource) Class() string { return s.in.Class }

// collectSink accumulates output wire records (heap mode).
type collectSink struct{ out []byte }

func (s *collectSink) WriteWire(rec []byte, class string) error {
	s.out = append(s.out, rec...)
	return nil
}

// nativeSink accumulates sealed native records as wire bytes by
// referencing their region storage (prefix included).
type nativeSink struct {
	a   *arena.Arena
	out []byte
}

func (s *nativeSink) WriteRecord(addr int64, size int, class string) error {
	s.out = append(s.out, s.a.Slice(addr-serde.SizePrefixBytes, serde.SizePrefixBytes+size)...)
	return nil
}

func (s *nativeSink) Bytes() []byte { return s.out }

// ---- record/key utilities over wire bytes ----

// byteReader adapts a record payload (no prefix) to expr.NativeReader
// with base interpreted as an offset into the slice.
type byteReader []byte

func (b byteReader) ReadNative(base, off int64, sz int) int64 {
	m := b[base+off:]
	switch sz {
	case 1:
		return int64(int8(m[0]))
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(m)))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(m)))
	case 8:
		return int64(binary.LittleEndian.Uint64(m))
	default:
		panic(fmt.Sprintf("engine: read of size %d", sz))
	}
}

// KeyOf extracts the canonical key bytes of the named field from a wire
// record (size prefix at rec[off:]). Both execution modes use the same
// function, mirroring how shuffle partitioning operates on serialized
// data in real systems; the inlined format makes key bytes canonical.
func KeyOf(layouts *dsa.Result, class, field string, buf []byte, off int) ([]byte, error) {
	l := layouts.Layout(class)
	if l == nil {
		return nil, fmt.Errorf("engine: no layout for %s", class)
	}
	fOff, ok := l.FieldOff[field]
	if !ok {
		return nil, fmt.Errorf("engine: no field %s.%s", class, field)
	}
	payload := buf[off+serde.SizePrefixBytes:]
	fo := fOff.Eval(byteReader(payload), 0)
	f, _ := l.Class.Field(field)
	switch {
	case !f.Type.IsRef():
		return payload[fo : fo+int64(f.Type.Kind.Size())], nil
	case f.Type.Class == model.StringClassName:
		n := byteReader(payload).ReadNative(fo, 0, 4)
		return payload[fo : fo+4+2*n], nil
	default:
		return nil, fmt.Errorf("engine: key field %s.%s has unsupported type %s", class, field, f.Type)
	}
}

// HashKey hashes canonical key bytes (FNV-1a).
func HashKey(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// RecordOffsets lists the start offsets of all records in a buffer.
func RecordOffsets(buf []byte) []int {
	var offs []int
	for off := 0; off < len(buf); off += serde.RecordSize(buf, off) {
		offs = append(offs, off)
	}
	return offs
}

// GroupByKey partitions the records of buf into groups keyed by the
// canonical bytes of the key field, preserving first-seen key order.
// This is the engine-side shuffle-read grouping; it never deserializes.
func GroupByKey(layouts *dsa.Result, class, field string, buf []byte) (keys [][]byte, groups [][]int, err error) {
	index := make(map[string]int)
	for off := 0; off < len(buf); off += serde.RecordSize(buf, off) {
		key, err := KeyOf(layouts, class, field, buf, off)
		if err != nil {
			return nil, nil, err
		}
		i, seen := index[string(key)]
		if !seen {
			i = len(keys)
			index[string(key)] = i
			keys = append(keys, append([]byte(nil), key...))
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], off)
	}
	return keys, groups, nil
}

// Partition splits records of buf into n hash partitions by key field.
func Partition(layouts *dsa.Result, class, field string, buf []byte, n int) ([][]byte, error) {
	parts := make([][]byte, n)
	for off := 0; off < len(buf); off += serde.RecordSize(buf, off) {
		key, err := KeyOf(layouts, class, field, buf, off)
		if err != nil {
			return nil, err
		}
		p := int(HashKey(key) % uint64(n))
		parts[p] = append(parts[p], buf[off:off+serde.RecordSize(buf, off)]...)
	}
	return parts, nil
}

// ---- worker pool ----

// Pool runs tasks across a fixed set of worker executors, mirroring the
// multi-executor worker nodes of the paper's cluster. MaxAttempts and
// Backoff configure the task retry policy: transient faults retry with
// exponential backoff, OOM faults retry on a fresh executor with an
// escalated heap configuration, and everything else fails fast.
type Pool struct {
	Workers int
	// MaxAttempts bounds attempts per task for retryable faults
	// (default 3; 1 disables retries).
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling per
	// retry (default 0: retry immediately).
	Backoff time.Duration
	// Jitter, when set, randomizes each retry's delay with full jitter
	// (uniform in [0, the deterministic cap]) so tasks that failed
	// together do not retry in lockstep. nil keeps the deterministic
	// schedule.
	Jitter *Jitter
}

// JobResult aggregates a set of task results.
type JobResult struct {
	Outputs [][]byte
	Stats   metrics.Breakdown // summed across tasks; peaks summed across workers
	Wall    metrics.Breakdown // wall-clock Total only, measured around the whole Run
}

// Run executes all tasks on w workers, each task attempt on a fresh
// executor state. Task outputs are returned in task order. Every task
// runs regardless of other tasks' failures; when any fail, Run returns
// a *JobError listing all of them (first-error-wins is gone — a lost
// task no longer hides the rest of the job's outcome) ALONGSIDE the
// partial JobResult: the successful tasks' outputs and the aggregated
// Stats survive, so callers can surface partial accounting instead of
// discarding everything a mostly-healthy job computed.
func (p *Pool) Run(exec func() *Executor, specs []TaskSpec) (*JobResult, error) {
	start := time.Now()
	if len(specs) == 0 {
		return &JobResult{}, nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) {
		// Never spawn executors that could not receive a task.
		workers = len(specs)
	}
	type outcome struct {
		res TaskResult
		err error
	}
	results := make([]outcome, len(specs))
	var wg sync.WaitGroup
	next := make(chan int)
	workerPeaks := make([]metrics.Breakdown, workers)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := exec()
			for i := range next {
				res, err := p.runWithRetry(e, exec, specs[i])
				results[i] = outcome{res, err}
				if res.Stats.PeakHeapBytes > workerPeaks[w].PeakHeapBytes {
					workerPeaks[w].PeakHeapBytes = res.Stats.PeakHeapBytes
				}
				if res.Stats.PeakNativeBytes > workerPeaks[w].PeakNativeBytes {
					workerPeaks[w].PeakNativeBytes = res.Stats.PeakNativeBytes
				}
			}
		}(w)
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()

	job := &JobResult{}
	var failures []TaskFailure
	for i, o := range results {
		s := o.res.Stats
		// Peaks are handled below per worker; zero them for the sum.
		s.PeakHeapBytes, s.PeakNativeBytes = 0, 0
		job.Stats.Add(s)
		if o.err != nil {
			attempts := 1
			var te *TaskError
			if errors.As(o.err, &te) && te.Attempts > 0 {
				attempts = te.Attempts
			}
			failures = append(failures, TaskFailure{
				Index: i, Name: specs[i].Name, Attempts: attempts, Err: o.err,
			})
			continue
		}
		job.Outputs = append(job.Outputs, o.res.Out)
	}
	// Process-level peak: concurrent workers' peaks coexist.
	for _, wp := range workerPeaks {
		job.Stats.PeakHeapBytes += wp.PeakHeapBytes
		job.Stats.PeakNativeBytes += wp.PeakNativeBytes
	}
	job.Wall.Total = time.Since(start)
	if failures != nil {
		return job, &JobError{Tasks: len(specs), Failures: failures}
	}
	return job, nil
}

// maxBackoffShift caps the exponential backoff doubling: beyond 16
// doublings the shift `base << n` would overflow time.Duration for any
// realistic base (and a task sleeping 18 hours between retries is a
// bug, not a policy). maxBackoffDelay clamps the result outright.
const (
	maxBackoffShift = 16
	maxBackoffDelay = 30 * time.Second
)

// BackoffDelay returns the capped exponential backoff before the given
// 1-based attempt (attempt 2 waits base, attempt 3 waits 2*base, ...).
// The naive `base << (attempt-2)` overflows int64 once attempt-2
// exceeds ~62 — a pool configured with a large MaxAttempts would wrap
// to a negative Duration and time.Sleep would return immediately,
// turning backoff into a hot retry loop. The shift is capped at
// maxBackoffShift and the delay clamped to max(base, maxBackoffDelay),
// so pathological attempt counts degrade to a bounded wait instead.
func BackoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 || attempt < 2 {
		return 0
	}
	shift := attempt - 2
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	d := base << shift
	limit := maxBackoffDelay
	if base > limit {
		limit = base
	}
	if d <= 0 || d > limit {
		return limit
	}
	return d
}

// runWithRetry drives one task through the pool's retry policy. The
// first attempt reuses the worker's executor (stateless across tasks);
// every retry builds a fresh one from the factory — the paper's
// "terminate the executor, relaunch over the same buffers" — and OOM
// retries escalate its heap configuration so a task that genuinely
// needs more memory eventually gets it instead of dying in a retry
// loop. Stats accumulate across attempts so failed attempts stay
// visible in the job accounting.
func (p *Pool) runWithRetry(worker *Executor, exec func() *Executor, spec TaskSpec) (TaskResult, error) {
	maxAttempts := p.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	var agg metrics.Breakdown
	oomRetries := 0
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		e := worker
		if attempt > 1 {
			e = exec()
			if oomRetries > 0 {
				e.HeapCfg = e.HeapCfg.Escalate(1 << oomRetries)
			}
			e.Trace.Instant("retry", "task-retry",
				trace.Str("task", spec.Name), trace.I64("attempt", int64(attempt)),
				trace.Str("cause", Classify(lastErr).String()),
				trace.I64("heap_escalations", int64(oomRetries)))
			e.Trace.Registry().Counter("retries_total").Add(1)
			if p.Backoff > 0 {
				time.Sleep(p.Jitter.Delay(p.Backoff, attempt))
			}
		}
		res, err := e.RunTask(spec)
		if attempt > 1 {
			res.Stats.Retries++
		}
		agg.Add(res.Stats)
		if err == nil {
			res.Stats = agg
			// A finished task's checkpoint can never be resumed (the
			// name may recur in a later iteration's stage); drop it.
			spec.Checkpoints.Drop(spec.Name)
			return res, nil
		}
		lastErr = err
		class := Classify(err)
		if !class.Retryable() {
			break
		}
		if class == FaultOOM {
			oomRetries++
		}
	}
	te := taskErr(spec.Name, lastErr)
	te.Attempts = int(agg.Attempts)
	return TaskResult{Stats: agg}, te
}
