package engine

import "testing"

func TestSimulateClosureCosts(t *testing.T) {
	ser, deser := simulateClosure(8 << 10)
	if ser <= 0 || deser <= 0 {
		t.Errorf("closure costs not measured: %v %v", ser, deser)
	}
	if s, d := simulateClosure(0); s != 0 || d != 0 {
		t.Errorf("zero closure should be free")
	}
}
