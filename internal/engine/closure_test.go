package engine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/heap"
	"repro/internal/interp"
)

func TestSimulateClosureCosts(t *testing.T) {
	ser, deser := simulateClosure(8 << 10)
	if ser <= 0 || deser <= 0 {
		t.Errorf("closure costs not measured: %v %v", ser, deser)
	}
	if s, d := simulateClosure(0); s != 0 || d != 0 {
		t.Errorf("zero closure should be free")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FaultClass
	}{
		{&interp.AbortError{Reason: "mutate-input"}, AbortSpeculation},
		{fmt.Errorf("stage: %w", &interp.AbortError{Reason: "x"}), AbortSpeculation},
		{heap.ErrOutOfMemory, FaultOOM},
		{fmt.Errorf("alloc: %w", heap.ErrOutOfMemory), FaultOOM},
		{errors.New("some bug"), FaultPermanent},
		{ErrInputMutated, FaultPermanent},
		{&TaskError{Task: "t", Class: FaultTransient, Err: errors.New("x")}, FaultTransient},
		{fmt.Errorf("wrap: %w", &TaskError{Class: FaultOOM, Err: errors.New("x")}), FaultOOM},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	if !FaultTransient.Retryable() || !FaultOOM.Retryable() {
		t.Errorf("transient/oom must be retryable")
	}
	if AbortSpeculation.Retryable() || FaultPermanent.Retryable() {
		t.Errorf("abort/permanent must not be retryable")
	}
}

func TestTaskErrPreservesClass(t *testing.T) {
	inner := &TaskError{Class: FaultTransient, Err: errors.New("x")}
	out := taskErr("job-t1", inner)
	if out.Class != FaultTransient || out.Task != "job-t1" {
		t.Errorf("taskErr rewrote class or dropped name: %+v", out)
	}
	named := &TaskError{Task: "orig", Class: FaultOOM, Err: errors.New("x")}
	if got := taskErr("other", named); got.Task != "orig" {
		t.Errorf("taskErr renamed an already-named error: %q", got.Task)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := &Breaker{Threshold: 2, ProbeEvery: 3}
	d := "drv"
	if !b.Allow(d) || b.Open(d) {
		t.Fatalf("new breaker must start closed")
	}
	b.Record(d, true)
	if b.Open(d) {
		t.Fatalf("one abort below threshold opened the breaker")
	}
	b.Record(d, true)
	if !b.Open(d) {
		t.Fatalf("threshold aborts did not open the breaker")
	}
	// While open: every ProbeEvery-th Allow is a half-open probe.
	got := []bool{b.Allow(d), b.Allow(d), b.Allow(d), b.Allow(d), b.Allow(d), b.Allow(d)}
	want := []bool{false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("open-state Allow sequence = %v, want %v", got, want)
		}
	}
	// A failed probe keeps it open; a successful one closes it.
	b.Record(d, true)
	if !b.Open(d) {
		t.Fatalf("failed probe closed the breaker")
	}
	b.Record(d, false)
	if b.Open(d) || !b.Allow(d) {
		t.Fatalf("successful probe did not close the breaker")
	}
	// Abort streaks are per driver.
	b.Record("other", true)
	b.Record("other", true)
	if !b.Open("other") || b.Open(d) {
		t.Fatalf("drivers must trip independently")
	}
	// Disabled breakers always allow.
	var nb *Breaker
	if !nb.Allow(d) || nb.Open(d) {
		t.Fatalf("nil breaker must be a no-op")
	}
	zero := &Breaker{}
	zero.Record(d, true)
	if !zero.Allow(d) {
		t.Fatalf("threshold 0 must disable the breaker")
	}
}

func TestChecksumInputs(t *testing.T) {
	spec := TaskSpec{Invocations: []map[string]Input{
		{"in": {Buf: []byte{1, 2, 3}}, "side": {Buf: []byte{9}}},
	}}
	a, b := checksumInputs(spec), checksumInputs(spec)
	if a != b {
		t.Errorf("checksum not deterministic")
	}
	spec.Invocations[0]["in"].Buf[1] ^= 1
	if checksumInputs(spec) == a {
		t.Errorf("checksum missed a flipped bit")
	}
	spec.Invocations[0]["in"].Buf[1] ^= 1
	if checksumInputs(spec) != a {
		t.Errorf("checksum did not restore after unflip")
	}
	// Swapping which source holds which bytes must change the sum.
	swapped := TaskSpec{Invocations: []map[string]Input{
		{"side": {Buf: []byte{1, 2, 3}}, "in": {Buf: []byte{9}}},
	}}
	if checksumInputs(swapped) == a {
		t.Errorf("checksum insensitive to source binding")
	}
}
