package engine

import (
	"fmt"
	"time"

	"repro/internal/compile"
	"repro/internal/trace"
)

// Backend selects how the Gerenuk path executes a transformed driver:
// closure-compiled func chains (the default) or the tree-walking
// interpreter. Both run the identical record protocol over the shared
// interp.Env operations; the backend only changes dispatch cost.
type Backend int

// Native execution backends. BackendCompiled is the zero value so an
// unconfigured Executor/Context/JobConf gets the fast path.
const (
	BackendCompiled Backend = iota
	BackendInterp
)

func (b Backend) String() string {
	if b == BackendInterp {
		return "interp"
	}
	return "compiled"
}

// ParseBackend parses the -engine flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "compiled", "":
		return BackendCompiled, nil
	case "interp":
		return BackendInterp, nil
	default:
		return 0, fmt.Errorf("unknown engine backend %q (want compiled or interp)", s)
	}
}

// CachedClosure returns the memoized closure-compilation result for a
// driver: (prog, true) once compiled, (nil, true) once declined, and
// (nil, false) before the first attempt touches it.
func (c *Compiled) CachedClosure(entry string) (*compile.Prog, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, done := c.closures[entry]
	return p, done
}

// Closure returns the closure-compiled form of the driver's transformed
// SER, compiling on first use. fresh reports whether this call did the
// compilation (vs. hitting the cache, including a concurrent winner's
// entry). A nil Prog with fresh/cached true means closure compilation
// declined the driver — the interpreter then runs the transformed IR,
// which is sound for any driver (partial-compilation fallback).
func (c *Compiled) Closure(entry string) (p *compile.Prog, fresh bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, done := c.closures[entry]; done {
		return p, false
	}
	if c.closures == nil {
		c.closures = make(map[string]*compile.Prog)
	}
	fn := c.Natives[entry]
	if fn != nil {
		// A failed compile caches nil: the driver is interpreted forever
		// after, without re-attempting compilation per task.
		p, _ = compile.Compile(c.Prog, fn)
	}
	c.closures[entry] = p
	return p, true
}

// closureFor resolves the compiled form of the driver for one native
// attempt, emitting the compile span and compile_total/compile_declined
// counters exactly once per driver (the compile happens once per task
// pool, not per task). Returns nil when the interpreter should run —
// either because the backend is interp or the driver declined.
func (e *Executor) closureFor(driver string, att *trace.Span) *compile.Prog {
	if e.Backend != BackendCompiled {
		return nil
	}
	if p, done := e.C.CachedClosure(driver); done {
		return p
	}
	t0 := time.Now()
	sp := att.Child("compile", "closure-compile")
	p, fresh := e.C.Closure(driver)
	outcome := "cached"
	if fresh {
		if p != nil {
			outcome = "ok"
			e.Trace.Registry().Counter("compile_total").Add(1)
		} else {
			outcome = "declined"
			e.Trace.Registry().Counter("compile_declined_total").Add(1)
		}
	}
	attrs := []trace.Arg{trace.Str("outcome", outcome), trace.Str("driver", driver)}
	if p != nil {
		attrs = append(attrs, trace.I64("funcs", int64(p.Funcs)), trace.I64("steps", int64(p.Steps)))
	}
	sp.End(attrs...)
	e.Trace.Registry().Histogram("compile_ns", trace.LatencyBuckets()...).
		Observe(float64(time.Since(t0)))
	return p
}

// recordDeopt counts an abort as a deoptimization when the aborted
// attempt actually ran compiled code (compiled backend, driver has a
// live closure). An abort of an interpreted attempt is not a deopt.
func (e *Executor) recordDeopt(driver string) {
	if e.Backend != BackendCompiled {
		return
	}
	if p, done := e.C.CachedClosure(driver); done && p != nil {
		e.Trace.Registry().Counter("deopt_total").Add(1)
	}
}
