package engine

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestHedgeDelayResolution pins the trigger-selection ladder of
// hedgeDelay: disabled config arms nothing; an absolute After applies
// until the latency histogram has MinSamples observations; from then on
// the median-derived delay takes over.
func TestHedgeDelayResolution(t *testing.T) {
	e := &Executor{}
	if _, ok := e.hedgeDelay(); ok {
		t.Fatalf("zero HedgeConfig armed a hedge")
	}

	e.Hedge = HedgeConfig{After: 5 * time.Millisecond}
	if d, ok := e.hedgeDelay(); !ok || d != 5*time.Millisecond {
		t.Fatalf("absolute delay = %v, %v; want 5ms, true", d, ok)
	}

	// Median trigger without a tracer: no samples, fall back to After.
	e.Hedge = HedgeConfig{After: 5 * time.Millisecond, MedianMult: 3, MinSamples: 4}
	if d, ok := e.hedgeDelay(); !ok || d != 5*time.Millisecond {
		t.Fatalf("median trigger without samples = %v, %v; want After fallback", d, ok)
	}

	// Median trigger without After and without samples: nothing to arm.
	e.Hedge = HedgeConfig{MedianMult: 3, MinSamples: 4}
	if _, ok := e.hedgeDelay(); ok {
		t.Fatalf("median trigger armed with no latency samples and no After")
	}

	// Feed the latency histogram past MinSamples; the delay becomes
	// MedianMult x median. All samples are equal, so the clamped
	// bucket-quantile is exact.
	e.Trace = trace.New()
	hist := e.Trace.Registry().Histogram("task_latency_ns", trace.LatencyBuckets()...)
	for i := 0; i < 4; i++ {
		hist.Observe(float64(2 * time.Millisecond))
	}
	e.Hedge = HedgeConfig{After: 5 * time.Millisecond, MedianMult: 3, MinSamples: 4}
	if d, ok := e.hedgeDelay(); !ok || d != 6*time.Millisecond {
		t.Fatalf("adaptive delay = %v, %v; want 3x2ms = 6ms, true", d, ok)
	}
}

// TestCancelerSemantics pins the cooperative-cancellation primitive:
// idempotent cancel, nil-safe flag access, and sleep returning early
// (reporting canceled) when the flag trips mid-stall.
func TestCancelerSemantics(t *testing.T) {
	var nilC *canceler
	if nilC.cancelFlag() != nil {
		t.Fatalf("nil canceler must expose a nil flag")
	}

	c := newCanceler()
	if c.cancelFlag().Load() {
		t.Fatalf("fresh canceler already canceled")
	}
	c.cancel()
	c.cancel() // idempotent: a second cancel must not close twice
	if !c.cancelFlag().Load() {
		t.Fatalf("cancel did not set the flag")
	}
	if !c.sleep(time.Hour) {
		t.Fatalf("sleep on a canceled canceler must return immediately as canceled")
	}

	c2 := newCanceler()
	done := make(chan bool, 1)
	go func() { done <- c2.sleep(time.Hour) }()
	c2.cancel()
	select {
	case canceled := <-done:
		if !canceled {
			t.Fatalf("sleep returned uncanceled after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("canceled sleep did not wake up")
	}

	if c2.sleep(time.Microsecond) != true {
		t.Fatalf("sleep after cancel must report canceled")
	}
}
