package engine_test

import (
	"bytes"
	"sync/atomic"
	"testing"

	. "repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

func pairProgram(t *testing.T) *ir.Program {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Pair", Fields: []model.FieldDef{
		{Name: "key", Type: model.Prim(model.KindLong)},
		{Name: "value", Type: model.Prim(model.KindDouble)},
	}})
	reg.Define(model.ClassDef{Name: "Tagged", Fields: []model.FieldDef{
		{Name: "name", Type: model.Object(model.StringClassName)},
		{Name: "n", Type: model.Prim(model.KindLong)},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Pair", "Tagged"}

	b := ir.NewFuncBuilder(prog, "incUDF", model.Type{})
	rec := b.Param("rec", model.Object("Pair"))
	k := b.Load(rec, "key")
	v := b.Load(rec, "value")
	one := b.FConst(1)
	v1 := b.Bin(ir.OpAdd, v, one)
	out := b.New("Pair")
	b.Store(out, "key", k)
	b.Store(out, "value", v1)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "incStage", "incUDF", "Pair")
	return prog
}

func encode(t *testing.T, c *Compiled, n int) []byte {
	t.Helper()
	var buf []byte
	var err error
	for i := 0; i < n; i++ {
		buf, err = c.Codec.Encode("Pair", serde.Obj{"key": int64(i), "value": float64(i)}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestExecutorModesAgree(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	input := encode(t, c, 25)
	spec := TaskSpec{
		Name: "t", Driver: "incStage",
		Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
	}
	var outs [][]byte
	for _, mode := range []Mode{Baseline, Gerenuk} {
		e := &Executor{C: c, Mode: mode, HeapCfg: heap.Config{YoungSize: 64 << 10, OldSize: 1 << 20}}
		res, err := e.RunTask(spec)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		outs = append(outs, res.Out)
		if res.Stats.Records != 25 {
			t.Errorf("%v: records = %d", mode, res.Stats.Records)
		}
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("modes disagree")
	}
}

func TestInputImmutabilityAcrossAttempts(t *testing.T) {
	// The input buffer must be byte-identical after a Gerenuk run —
	// the invariant that makes slow-path re-execution possible.
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	input := encode(t, c, 10)
	canary := append([]byte(nil), input...)
	e := &Executor{C: c, Mode: Gerenuk}
	if _, err := e.RunTask(TaskSpec{
		Name: "t", Driver: "incStage",
		Invocations:       []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
		AbortAfterRecords: 3, // force the abort+slow-path sequence too
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(input, canary) {
		t.Fatalf("input buffer mutated by execution")
	}
}

func TestOffsRestrictedInvocation(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	input := encode(t, c, 6)
	offs := RecordOffsets(input)
	if len(offs) != 6 {
		t.Fatalf("offsets = %d", len(offs))
	}
	spec := TaskSpec{
		Name: "t", Driver: "incStage",
		Invocations: []map[string]Input{
			{"in": {Class: "Pair", Buf: input, Offs: offs[2:4]}},
		},
	}
	for _, mode := range []Mode{Baseline, Gerenuk} {
		e := &Executor{C: c, Mode: mode}
		res, err := e.RunTask(spec)
		if err != nil {
			t.Fatal(err)
		}
		n := len(RecordOffsets(res.Out))
		if n != 2 {
			t.Errorf("%v: processed %d records, want 2", mode, n)
		}
	}
}

func TestKeyOfPrimAndString(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	var buf []byte
	var err error
	buf, err = c.Codec.Encode("Tagged", serde.Obj{"name": "abc", "n": int64(7)}, buf)
	if err != nil {
		t.Fatal(err)
	}
	key, err := KeyOf(c.Layouts, "Tagged", "name", buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// [len=3][a][b][c] as UTF-16LE chars.
	want := []byte{3, 0, 0, 0, 'a', 0, 'b', 0, 'c', 0}
	if !bytes.Equal(key, want) {
		t.Errorf("string key = %x, want %x", key, want)
	}
	nkey, err := KeyOf(c.Layouts, "Tagged", "n", buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nkey) != 8 || nkey[0] != 7 {
		t.Errorf("prim key = %x", nkey)
	}
	if _, err := KeyOf(c.Layouts, "Tagged", "missing", buf, 0); err == nil {
		t.Errorf("missing field accepted")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	input := encode(t, c, 40)
	parts, err := Partition(c.Layouts, "Pair", "key", input, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(RecordOffsets(p))
	}
	if total != 40 {
		t.Fatalf("partitioning lost records: %d", total)
	}
	// Same key must always land in the same partition.
	again, err := Partition(c.Layouts, "Pair", "key", input, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parts {
		if !bytes.Equal(parts[i], again[i]) {
			t.Errorf("partitioning not deterministic")
		}
	}
}

func TestGroupByKeyGroupsAllRecords(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	var buf []byte
	var err error
	for i := 0; i < 30; i++ {
		buf, err = c.Codec.Encode("Pair", serde.Obj{"key": int64(i % 5), "value": 1.0}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	keys, groups, err := GroupByKey(c.Layouts, "Pair", "key", buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Fatalf("groups = %d, want 5", len(keys))
	}
	for i, g := range groups {
		if len(g) != 6 {
			t.Errorf("group %d has %d records", i, len(g))
		}
	}
}

func TestPoolRunsAllTasksAcrossWorkers(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	var created int32
	pool := &Pool{Workers: 3}
	specs := make([]TaskSpec, 9)
	for i := range specs {
		specs[i] = TaskSpec{
			Name: "t", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 3)}}},
		}
	}
	job, err := pool.Run(func() *Executor {
		atomic.AddInt32(&created, 1)
		return &Executor{C: c, Mode: Gerenuk}
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if created != 3 {
		t.Errorf("executors created = %d, want 3", created)
	}
	if len(job.Outputs) != 9 {
		t.Errorf("outputs = %d", len(job.Outputs))
	}
	if job.Stats.Records != 27 {
		t.Errorf("records = %d, want 27", job.Stats.Records)
	}
}

func TestHashKeyStable(t *testing.T) {
	a := HashKey([]byte{1, 2, 3})
	b := HashKey([]byte{1, 2, 3})
	c := HashKey([]byte{1, 2, 4})
	if a != b {
		t.Errorf("hash not deterministic")
	}
	if a == c {
		t.Errorf("trivial collision")
	}
}

func TestOwnedInputMatchesCopiedInput(t *testing.T) {
	// An Owned input (zero-copy adoption of a freshly assembled buffer,
	// e.g. a fetched shuffle block) must behave exactly like the default
	// copy-in path: same output in both modes, and since attempts only
	// read the input, the caller's buffer stays byte-identical.
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Baseline, Gerenuk} {
		var outs [][]byte
		for _, owned := range []bool{false, true} {
			input := encode(t, c, 20)
			canary := append([]byte(nil), input...)
			e := &Executor{C: c, Mode: mode}
			res, err := e.RunTask(TaskSpec{
				Name: "t", Driver: "incStage",
				Invocations: []map[string]Input{
					{"in": {Class: "Pair", Buf: input, Owned: owned}},
				},
			})
			if err != nil {
				t.Fatalf("%v owned=%v: %v", mode, owned, err)
			}
			outs = append(outs, res.Out)
			if !bytes.Equal(input, canary) {
				t.Fatalf("%v owned=%v: input buffer mutated", mode, owned)
			}
		}
		if !bytes.Equal(outs[0], outs[1]) {
			t.Fatalf("%v: owned input diverged from copied input", mode)
		}
	}
}
