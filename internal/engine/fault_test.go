package engine_test

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	. "repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/heap"
)

// baselineOut runs the task once, fault-free, on the heap path — the
// ground truth every recovered run must match byte for byte.
func baselineOut(t *testing.T, c *Compiled, input []byte) []byte {
	t.Helper()
	e := &Executor{C: c, Mode: Baseline}
	res, err := e.RunTask(TaskSpec{
		Name: "baseline", Driver: "incStage",
		Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
	})
	if err != nil {
		t.Fatalf("fault-free baseline: %v", err)
	}
	return res.Out
}

// TestFaultInjectionDifferential injects every fault class into a
// Gerenuk task — at the first, a middle, and the last record where the
// fault is record-targeted — and asserts the recovered output is
// byte-identical to a pure fault-free baseline run.
func TestFaultInjectionDifferential(t *testing.T) {
	const records = 25
	cases := []struct {
		name string
		spec func(s *TaskSpec)
		// expectations on the job stats after recovery
		aborts  int64
		panics  int64
		retries int64
	}{
		{name: "panic-first-record",
			spec:   func(s *TaskSpec) { s.Faults = &faults.Plan{PanicAtRecord: 1} },
			aborts: 1, panics: 1},
		{name: "panic-mid-record",
			spec:   func(s *TaskSpec) { s.Faults = &faults.Plan{PanicAtRecord: 12} },
			aborts: 1, panics: 1},
		{name: "panic-last-record",
			spec:   func(s *TaskSpec) { s.Faults = &faults.Plan{PanicAtRecord: records} },
			aborts: 1, panics: 1},
		{name: "wild-read-first-record",
			spec:   func(s *TaskSpec) { s.Faults = &faults.Plan{WildReadAtRecord: 1} },
			aborts: 1, panics: 1},
		{name: "wild-read-mid-record",
			spec:   func(s *TaskSpec) { s.Faults = &faults.Plan{WildReadAtRecord: 13} },
			aborts: 1, panics: 1},
		{name: "cooperative-abort",
			spec:   func(s *TaskSpec) { s.AbortAfterRecords = 5 },
			aborts: 1},
		{name: "transient-twice-then-ok",
			spec:    func(s *TaskSpec) { s.Faults = &faults.Plan{TransientFailures: 2} },
			retries: 2},
		{name: "oom-once-then-escalated-ok",
			spec:    func(s *TaskSpec) { s.Faults = &faults.Plan{OOMFailures: 1} },
			retries: 1},
		{name: "slow-task",
			spec: func(s *TaskSpec) { s.Faults = &faults.Plan{Delay: time.Millisecond} }},
		{name: "transient-then-panic",
			spec: func(s *TaskSpec) {
				s.Faults = &faults.Plan{TransientFailures: 1, PanicAtRecord: 7}
			},
			aborts: 1, panics: 1, retries: 1},
	}

	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	want := baselineOut(t, c, encode(t, c, records))

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh input per case: some faults mutate buffers.
			input := encode(t, c, records)
			spec := TaskSpec{
				Name: tc.name, Driver: "incStage",
				Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: input}}},
			}
			tc.spec(&spec)
			pool := &Pool{Workers: 1, MaxAttempts: 4}
			job, err := pool.Run(func() *Executor {
				return &Executor{C: c, Mode: Gerenuk, VerifyInputs: true}
			}, []TaskSpec{spec})
			if err != nil {
				t.Fatalf("task did not recover: %v", err)
			}
			if len(job.Outputs) != 1 || !bytes.Equal(job.Outputs[0], want) {
				t.Fatalf("recovered output differs from fault-free baseline")
			}
			s := job.Stats
			if s.Aborts != tc.aborts {
				t.Errorf("aborts = %d, want %d", s.Aborts, tc.aborts)
			}
			if s.PanicsContained != tc.panics {
				t.Errorf("panics contained = %d, want %d", s.PanicsContained, tc.panics)
			}
			if s.Retries != tc.retries {
				t.Errorf("retries = %d, want %d", s.Retries, tc.retries)
			}
			if s.Attempts != tc.retries+1 {
				t.Errorf("attempts = %d, want %d", s.Attempts, tc.retries+1)
			}
		})
	}
}

// TestInputMutationDetected flips one bit of the input buffer during the
// speculative attempt: the mutate-input canary must fail the task with a
// permanent, non-retried error instead of silently re-executing over
// corrupt bytes.
func TestInputMutationDetected(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	spec := TaskSpec{
		Name: "flip", Driver: "incStage",
		Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 10)}}},
		Faults:      &faults.Plan{FlipInputBit: true},
	}
	pool := &Pool{Workers: 1, MaxAttempts: 4}
	_, err := pool.Run(func() *Executor {
		return &Executor{C: c, Mode: Gerenuk, VerifyInputs: true}
	}, []TaskSpec{spec})
	if err == nil {
		t.Fatal("mutated input went undetected")
	}
	if !errors.Is(err, ErrInputMutated) {
		t.Fatalf("error is not ErrInputMutated: %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("not a JobError: %v", err)
	}
	if len(je.Failures) != 1 || je.Failures[0].Attempts != 1 {
		t.Errorf("permanent fault was retried: %+v", je.Failures)
	}
}

// TestBreakerLimitsNativeAttempts runs 20 always-aborting tasks through
// a breaker with threshold 3 and probe cadence 8 on one worker: only the
// 3 opening aborts plus the half-open probes (tasks 11 and 19) may
// attempt the native path; the other 15 must skip straight to the heap.
func TestBreakerLimitsNativeAttempts(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	br := &Breaker{Threshold: 3, ProbeEvery: 8}
	specs := make([]TaskSpec, 20)
	for i := range specs {
		specs[i] = TaskSpec{
			Name: "t", Driver: "incStage",
			Invocations:       []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 4)}}},
			AbortAfterRecords: 1,
		}
	}
	pool := &Pool{Workers: 1}
	job, err := pool.Run(func() *Executor {
		return &Executor{C: c, Mode: Gerenuk, Breaker: br}
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Outputs) != 20 {
		t.Fatalf("outputs = %d", len(job.Outputs))
	}
	if job.Stats.Aborts != 5 {
		t.Errorf("native attempts (aborts) = %d, want 5 (threshold 3 + 2 probes)", job.Stats.Aborts)
	}
	if job.Stats.NativeSkips != 15 {
		t.Errorf("native skips = %d, want 15", job.Stats.NativeSkips)
	}
	if !br.Open("incStage") {
		t.Errorf("breaker should still be open after failed probes")
	}
}

// TestBreakerClosesOnSuccessfulProbe opens the breaker with aborting
// tasks, then feeds healthy tasks: the first probe that succeeds must
// close the breaker and re-enable speculation for everyone after it.
func TestBreakerClosesOnSuccessfulProbe(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	br := &Breaker{Threshold: 2, ProbeEvery: 2}
	mkSpec := func(abort int64) TaskSpec {
		return TaskSpec{
			Name: "t", Driver: "incStage",
			Invocations:       []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 4)}}},
			AbortAfterRecords: abort,
		}
	}
	// 2 aborting tasks open it, then 6 healthy ones: task 3 skips
	// (seen=1), task 4 probes and succeeds -> closed; tasks 5-8 all
	// speculate successfully.
	specs := []TaskSpec{mkSpec(1), mkSpec(1), mkSpec(0), mkSpec(0), mkSpec(0), mkSpec(0), mkSpec(0), mkSpec(0)}
	pool := &Pool{Workers: 1}
	job, err := pool.Run(func() *Executor {
		return &Executor{C: c, Mode: Gerenuk, Breaker: br}
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if br.Open("incStage") {
		t.Errorf("breaker still open after successful probe")
	}
	if job.Stats.NativeSkips != 1 {
		t.Errorf("native skips = %d, want 1 (only the task before the probe)", job.Stats.NativeSkips)
	}
	if job.Stats.Aborts != 2 {
		t.Errorf("aborts = %d, want 2", job.Stats.Aborts)
	}
}

// TestJobErrorAggregatesAllFailures makes every task of a job fail and
// asserts the pool reports each one — no first-error-wins.
func TestJobErrorAggregatesAllFailures(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	specs := make([]TaskSpec, 3)
	for i := range specs {
		specs[i] = TaskSpec{
			Name: "doomed", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 3)}}},
			Faults:      &faults.Plan{TransientFailures: 99},
		}
	}
	pool := &Pool{Workers: 2}
	_, err := pool.Run(func() *Executor {
		return &Executor{C: c, Mode: Gerenuk}
	}, specs)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %v", err)
	}
	if je.Tasks != 3 || len(je.Failures) != 3 {
		t.Fatalf("failures = %d of %d, want 3 of 3", len(je.Failures), je.Tasks)
	}
	seen := map[int]bool{}
	for _, f := range je.Failures {
		seen[f.Index] = true
		if f.Attempts != 3 {
			t.Errorf("task %d: attempts = %d, want 3 (default retry budget)", f.Index, f.Attempts)
		}
		if Classify(f.Err) != FaultTransient {
			t.Errorf("task %d: class = %v", f.Index, Classify(f.Err))
		}
	}
	for i := 0; i < 3; i++ {
		if !seen[i] {
			t.Errorf("task %d missing from JobError", i)
		}
	}
}

// TestJobErrorPartialFailure mixes healthy and doomed tasks: the healthy
// ones must still run (their stats are accounted) and only the doomed
// ones appear in the JobError.
func TestJobErrorPartialFailure(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	specs := make([]TaskSpec, 4)
	for i := range specs {
		specs[i] = TaskSpec{
			Name: "t", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 3)}}},
		}
	}
	specs[1].Faults = &faults.Plan{TransientFailures: 99}
	specs[3].Faults = &faults.Plan{TransientFailures: 99}
	pool := &Pool{Workers: 1, MaxAttempts: 2}
	_, err := pool.Run(func() *Executor {
		return &Executor{C: c, Mode: Gerenuk}
	}, specs)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %v", err)
	}
	if len(je.Failures) != 2 {
		t.Fatalf("failures = %d, want 2", len(je.Failures))
	}
	if je.Failures[0].Index != 1 || je.Failures[1].Index != 3 {
		t.Errorf("failure indices = %d,%d, want 1,3", je.Failures[0].Index, je.Failures[1].Index)
	}
}

// TestPoolEmptySpecs: a job with no tasks must succeed without ever
// creating an executor.
func TestPoolEmptySpecs(t *testing.T) {
	pool := &Pool{Workers: 4}
	job, err := pool.Run(func() *Executor {
		t.Error("executor created for empty job")
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Outputs) != 0 {
		t.Errorf("outputs = %d", len(job.Outputs))
	}
}

// TestPoolMoreWorkersThanTasks: the pool must not spawn executors that
// could never receive a task.
func TestPoolMoreWorkersThanTasks(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	var created int32
	specs := make([]TaskSpec, 2)
	for i := range specs {
		specs[i] = TaskSpec{
			Name: "t", Driver: "incStage",
			Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 3)}}},
		}
	}
	pool := &Pool{Workers: 8}
	job, err := pool.Run(func() *Executor {
		atomic.AddInt32(&created, 1)
		return &Executor{C: c, Mode: Gerenuk}
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if created != 2 {
		t.Errorf("executors created = %d, want 2", created)
	}
	if len(job.Outputs) != 2 {
		t.Errorf("outputs = %d", len(job.Outputs))
	}
}

// TestOOMRetryEscalatesHeap injects an allocation failure and asserts
// the retry runs on an escalated heap configuration.
func TestOOMRetryEscalatesHeap(t *testing.T) {
	prog := pairProgram(t)
	c := Compile(prog)
	if err := c.CompileDriver("incStage"); err != nil {
		t.Fatal(err)
	}
	base := heap.Config{YoungSize: 64 << 10, OldSize: 1 << 20}
	var execs []*Executor
	spec := TaskSpec{
		Name: "oom", Driver: "incStage",
		Invocations: []map[string]Input{{"in": {Class: "Pair", Buf: encode(t, c, 5)}}},
		Faults:      &faults.Plan{OOMFailures: 1},
	}
	pool := &Pool{Workers: 1}
	job, err := pool.Run(func() *Executor {
		e := &Executor{C: c, Mode: Gerenuk, HeapCfg: base}
		execs = append(execs, e)
		return e
	}, []TaskSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Outputs) != 1 {
		t.Fatalf("outputs = %d", len(job.Outputs))
	}
	// The worker's executor ran attempt 1 (injected OOM); the retry built
	// a fresh executor whose heap the pool escalated 2x.
	if len(execs) != 2 {
		t.Fatalf("executors created = %d, want 2 (worker + OOM retry)", len(execs))
	}
	want := base.Escalate(2)
	if execs[1].HeapCfg != want {
		t.Errorf("retry heap = %+v, want escalated %+v", execs[1].HeapCfg, want)
	}
}
