package engine

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// Breaker is a per-driver circuit breaker implementing adaptive
// de-speculation. A speculative abort costs roughly one wasted native
// attempt on top of the heap re-execution (Figure 10(b): ~9-14% of a SER
// per re-execution), so a driver that aborts on every task turns the
// Gerenuk win into a steady 2x loss. The breaker watches abort outcomes
// per driver across the whole pool: after Threshold consecutive aborts
// it "opens" and subsequent tasks skip the doomed native attempt, going
// straight to the heap path. While open, every ProbeEvery-th task is
// let through as a half-open probe; one successful probe closes the
// breaker and re-enables speculation.
//
// Probe cadence alone couples re-speculation to *throughput*: a driver
// whose environment was only transiently bad (a memory spike, a noisy
// neighbor) stays de-speculated until enough tasks flow past, which on a
// quiet pool can be forever. CoolDown adds time-based decay — after a
// cool-down period an open breaker admits a probe regardless of how few
// tasks arrived — so recovery is bounded by wall-clock time, the way
// principled deoptimization triggers are time-bounded rather than
// event-count-bounded. A failed probe re-arms the cool-down.
//
// A nil *Breaker (or Threshold <= 0) disables the mechanism entirely:
// every task attempts the native path, preserving the paper's
// Figure 10(a)/(b) abort-cost semantics.
//
// Breaker state is keyed per driver, which is correct within one job
// but aliases across tenants: driver names repeat (every PageRank job
// runs "contribStage"), so a breaker shared service-wide would let one
// tenant's fault-injected aborts de-speculate an innocent tenant's
// jobs. Scoped returns a per-tenant view over the same underlying
// state, making the effective key (scope, driver).
//
// Safe for concurrent use by all executors of a pool.
type Breaker struct {
	// Threshold is the number of consecutive aborts that opens the
	// breaker for a driver; <= 0 disables the breaker.
	Threshold int
	// ProbeEvery lets 1 of every ProbeEvery tasks probe the native path
	// while open (default 8).
	ProbeEvery int
	// CoolDown, when > 0, admits a half-open probe once this much time
	// has passed since the breaker opened (or since the last probe),
	// independent of the ProbeEvery cadence — time-based decay for
	// transiently-bad drivers on quiet pools. 0 keeps probe-count-only
	// behavior.
	CoolDown time.Duration
	// Clock overrides the time source for CoolDown (tests inject a fake
	// clock); nil uses time.Now.
	Clock func() time.Time
	// Trace, when set, receives process-scoped instants on open/close
	// state transitions.
	Trace *trace.Tracer

	mu      sync.Mutex
	drivers map[string]*breakerEntry

	// root points at the breaker actually holding entries when this
	// value is a scoped view; nil means this breaker is the root. prefix
	// namespaces the entry keys; scope is the display name for trace
	// instants.
	root   *Breaker
	prefix string
	scope  string
}

// base resolves the breaker holding the shared state (the receiver,
// unless it is a scoped view). Configuration (Threshold, CoolDown, …)
// is always read from the root so views stay consistent with it.
func (b *Breaker) base() *Breaker {
	if b.root != nil {
		return b.root
	}
	return b
}

// Scoped returns a view of the breaker whose per-driver state lives in
// a private namespace — typically one tenant — so the effective key
// becomes (scope, driver). Views share the root's configuration, lock
// and tracer; scoping composes. A nil breaker scopes to nil (still a
// valid always-allow breaker).
func (b *Breaker) Scoped(scope string) *Breaker {
	if b == nil {
		return nil
	}
	name := scope
	if b.scope != "" {
		name = b.scope + "/" + scope
	}
	return &Breaker{root: b.base(), prefix: b.prefix + scope + "\x00", scope: name}
}

// EnsureTrace attaches tr as the breaker's tracer if none is set yet.
// Contexts sharing one breaker may call this concurrently (each wiring
// its own tracer); the first one wins. Direct writes to the Trace field
// remain fine before the breaker is shared.
func (b *Breaker) EnsureTrace(tr *trace.Tracer) {
	if b == nil || tr == nil {
		return
	}
	r := b.base()
	r.mu.Lock()
	if r.Trace == nil {
		r.Trace = tr
	}
	r.mu.Unlock()
}

type breakerEntry struct {
	aborts int  // consecutive aborts observed while closed
	open   bool // true = de-speculated
	seen   int  // tasks seen while open (for probe cadence)
	// probeAt is when the cool-down next admits a probe (open breakers
	// with CoolDown > 0 only). Re-armed on every admitted cool-down
	// probe and on every failed probe.
	probeAt time.Time
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

// NewBreaker returns a breaker that opens after threshold consecutive
// aborts with the default probe cadence.
func NewBreaker(threshold int) *Breaker {
	return &Breaker{Threshold: threshold}
}

// Allow reports whether the next task for driver should attempt the
// native path. While open it admits periodic half-open probes.
func (b *Breaker) Allow(driver string) bool {
	if b == nil {
		return true
	}
	r := b.base()
	if r.Threshold <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entry(b.prefix + driver)
	if !e.open {
		return true
	}
	e.seen++
	if r.CoolDown > 0 && !r.now().Before(e.probeAt) {
		// Time-based decay: the cool-down elapsed, so probe now and
		// re-arm (one probe per cool-down period until an outcome moves
		// the state).
		e.probeAt = r.now().Add(r.CoolDown)
		r.Trace.Instant("breaker", "breaker-cooldown-probe",
			trace.Str("driver", driver), trace.Str("scope", b.scope),
			trace.I64("cooldown_ns", int64(r.CoolDown)))
		return true
	}
	probeEvery := r.ProbeEvery
	if probeEvery <= 0 {
		probeEvery = 8
	}
	return e.seen%probeEvery == 0
}

// Record feeds one native-attempt outcome back. Aborts accumulate
// toward Threshold while closed and keep an open breaker open; a
// success resets the abort streak and closes the breaker (successful
// half-open probe).
func (b *Breaker) Record(driver string, aborted bool) {
	if b == nil {
		return
	}
	r := b.base()
	if r.Threshold <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entry(b.prefix + driver)
	if aborted {
		if e.open {
			// Failed probe: stay open and re-arm the cool-down so the
			// next time-based probe waits a full period again.
			e.probeAt = r.now().Add(r.CoolDown)
			return
		}
		e.aborts++
		if e.aborts >= r.Threshold {
			e.open = true
			e.seen = 0
			e.probeAt = r.now().Add(r.CoolDown)
			r.Trace.Instant("breaker", "breaker-open",
				trace.Str("driver", driver), trace.Str("scope", b.scope),
				trace.I64("aborts", int64(e.aborts)))
		}
		return
	}
	if e.open {
		r.Trace.Instant("breaker", "breaker-close",
			trace.Str("driver", driver), trace.Str("scope", b.scope))
	}
	e.aborts = 0
	e.open = false
	e.seen = 0
}

// Open reports whether the breaker is currently open for driver (in the
// receiver's scope, for a scoped view).
func (b *Breaker) Open(driver string) bool {
	if b == nil {
		return false
	}
	r := b.base()
	if r.Threshold <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entry(b.prefix + driver).open
}

func (b *Breaker) entry(driver string) *breakerEntry {
	if b.drivers == nil {
		b.drivers = make(map[string]*breakerEntry)
	}
	e, ok := b.drivers[driver]
	if !ok {
		e = &breakerEntry{}
		b.drivers[driver] = e
	}
	return e
}
