package engine

import (
	"sync"

	"repro/internal/trace"
)

// Breaker is a per-driver circuit breaker implementing adaptive
// de-speculation. A speculative abort costs roughly one wasted native
// attempt on top of the heap re-execution (Figure 10(b): ~9-14% of a SER
// per re-execution), so a driver that aborts on every task turns the
// Gerenuk win into a steady 2x loss. The breaker watches abort outcomes
// per driver across the whole pool: after Threshold consecutive aborts
// it "opens" and subsequent tasks skip the doomed native attempt, going
// straight to the heap path. While open, every ProbeEvery-th task is
// let through as a half-open probe; one successful probe closes the
// breaker and re-enables speculation.
//
// A nil *Breaker (or Threshold <= 0) disables the mechanism entirely:
// every task attempts the native path, preserving the paper's
// Figure 10(a)/(b) abort-cost semantics.
//
// Safe for concurrent use by all executors of a pool.
type Breaker struct {
	// Threshold is the number of consecutive aborts that opens the
	// breaker for a driver; <= 0 disables the breaker.
	Threshold int
	// ProbeEvery lets 1 of every ProbeEvery tasks probe the native path
	// while open (default 8).
	ProbeEvery int
	// Trace, when set, receives process-scoped instants on open/close
	// state transitions.
	Trace *trace.Tracer

	mu      sync.Mutex
	drivers map[string]*breakerEntry
}

type breakerEntry struct {
	aborts int  // consecutive aborts observed while closed
	open   bool // true = de-speculated
	seen   int  // tasks seen while open (for probe cadence)
}

// NewBreaker returns a breaker that opens after threshold consecutive
// aborts with the default probe cadence.
func NewBreaker(threshold int) *Breaker {
	return &Breaker{Threshold: threshold}
}

// Allow reports whether the next task for driver should attempt the
// native path. While open it admits periodic half-open probes.
func (b *Breaker) Allow(driver string) bool {
	if b == nil || b.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(driver)
	if !e.open {
		return true
	}
	e.seen++
	probeEvery := b.ProbeEvery
	if probeEvery <= 0 {
		probeEvery = 8
	}
	return e.seen%probeEvery == 0
}

// Record feeds one native-attempt outcome back. Aborts accumulate
// toward Threshold while closed and keep an open breaker open; a
// success resets the abort streak and closes the breaker (successful
// half-open probe).
func (b *Breaker) Record(driver string, aborted bool) {
	if b == nil || b.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(driver)
	if aborted {
		if e.open {
			return // failed probe: stay open
		}
		e.aborts++
		if e.aborts >= b.Threshold {
			e.open = true
			e.seen = 0
			b.Trace.Instant("breaker", "breaker-open",
				trace.Str("driver", driver), trace.I64("aborts", int64(e.aborts)))
		}
		return
	}
	if e.open {
		b.Trace.Instant("breaker", "breaker-close", trace.Str("driver", driver))
	}
	e.aborts = 0
	e.open = false
	e.seen = 0
}

// Open reports whether the breaker is currently open for driver.
func (b *Breaker) Open(driver string) bool {
	if b == nil || b.Threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.entry(driver).open
}

func (b *Breaker) entry(driver string) *breakerEntry {
	if b.drivers == nil {
		b.drivers = make(map[string]*breakerEntry)
	}
	e, ok := b.drivers[driver]
	if !ok {
		e = &breakerEntry{}
		b.drivers[driver] = e
	}
	return e
}
