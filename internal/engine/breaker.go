package engine

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// Breaker is a per-driver circuit breaker implementing adaptive
// de-speculation. A speculative abort costs roughly one wasted native
// attempt on top of the heap re-execution (Figure 10(b): ~9-14% of a SER
// per re-execution), so a driver that aborts on every task turns the
// Gerenuk win into a steady 2x loss. The breaker watches abort outcomes
// per driver across the whole pool: after Threshold consecutive aborts
// it "opens" and subsequent tasks skip the doomed native attempt, going
// straight to the heap path. While open, every ProbeEvery-th task is
// let through as a half-open probe; one successful probe closes the
// breaker and re-enables speculation.
//
// Probe cadence alone couples re-speculation to *throughput*: a driver
// whose environment was only transiently bad (a memory spike, a noisy
// neighbor) stays de-speculated until enough tasks flow past, which on a
// quiet pool can be forever. CoolDown adds time-based decay — after a
// cool-down period an open breaker admits a probe regardless of how few
// tasks arrived — so recovery is bounded by wall-clock time, the way
// principled deoptimization triggers are time-bounded rather than
// event-count-bounded. A failed probe re-arms the cool-down.
//
// A nil *Breaker (or Threshold <= 0) disables the mechanism entirely:
// every task attempts the native path, preserving the paper's
// Figure 10(a)/(b) abort-cost semantics.
//
// Safe for concurrent use by all executors of a pool.
type Breaker struct {
	// Threshold is the number of consecutive aborts that opens the
	// breaker for a driver; <= 0 disables the breaker.
	Threshold int
	// ProbeEvery lets 1 of every ProbeEvery tasks probe the native path
	// while open (default 8).
	ProbeEvery int
	// CoolDown, when > 0, admits a half-open probe once this much time
	// has passed since the breaker opened (or since the last probe),
	// independent of the ProbeEvery cadence — time-based decay for
	// transiently-bad drivers on quiet pools. 0 keeps probe-count-only
	// behavior.
	CoolDown time.Duration
	// Clock overrides the time source for CoolDown (tests inject a fake
	// clock); nil uses time.Now.
	Clock func() time.Time
	// Trace, when set, receives process-scoped instants on open/close
	// state transitions.
	Trace *trace.Tracer

	mu      sync.Mutex
	drivers map[string]*breakerEntry
}

type breakerEntry struct {
	aborts int  // consecutive aborts observed while closed
	open   bool // true = de-speculated
	seen   int  // tasks seen while open (for probe cadence)
	// probeAt is when the cool-down next admits a probe (open breakers
	// with CoolDown > 0 only). Re-armed on every admitted cool-down
	// probe and on every failed probe.
	probeAt time.Time
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

// NewBreaker returns a breaker that opens after threshold consecutive
// aborts with the default probe cadence.
func NewBreaker(threshold int) *Breaker {
	return &Breaker{Threshold: threshold}
}

// Allow reports whether the next task for driver should attempt the
// native path. While open it admits periodic half-open probes.
func (b *Breaker) Allow(driver string) bool {
	if b == nil || b.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(driver)
	if !e.open {
		return true
	}
	e.seen++
	if b.CoolDown > 0 && !b.now().Before(e.probeAt) {
		// Time-based decay: the cool-down elapsed, so probe now and
		// re-arm (one probe per cool-down period until an outcome moves
		// the state).
		e.probeAt = b.now().Add(b.CoolDown)
		b.Trace.Instant("breaker", "breaker-cooldown-probe",
			trace.Str("driver", driver), trace.I64("cooldown_ns", int64(b.CoolDown)))
		return true
	}
	probeEvery := b.ProbeEvery
	if probeEvery <= 0 {
		probeEvery = 8
	}
	return e.seen%probeEvery == 0
}

// Record feeds one native-attempt outcome back. Aborts accumulate
// toward Threshold while closed and keep an open breaker open; a
// success resets the abort streak and closes the breaker (successful
// half-open probe).
func (b *Breaker) Record(driver string, aborted bool) {
	if b == nil || b.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(driver)
	if aborted {
		if e.open {
			// Failed probe: stay open and re-arm the cool-down so the
			// next time-based probe waits a full period again.
			e.probeAt = b.now().Add(b.CoolDown)
			return
		}
		e.aborts++
		if e.aborts >= b.Threshold {
			e.open = true
			e.seen = 0
			e.probeAt = b.now().Add(b.CoolDown)
			b.Trace.Instant("breaker", "breaker-open",
				trace.Str("driver", driver), trace.I64("aborts", int64(e.aborts)))
		}
		return
	}
	if e.open {
		b.Trace.Instant("breaker", "breaker-close", trace.Str("driver", driver))
	}
	e.aborts = 0
	e.open = false
	e.seen = 0
}

// Open reports whether the breaker is currently open for driver.
func (b *Breaker) Open(driver string) bool {
	if b == nil || b.Threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.entry(driver).open
}

func (b *Breaker) entry(driver string) *breakerEntry {
	if b.drivers == nil {
		b.drivers = make(map[string]*breakerEntry)
	}
	e, ok := b.drivers[driver]
	if !ok {
		e = &breakerEntry{}
		b.drivers[driver] = e
	}
	return e
}
