package engine

import (
	"math/rand"
	"sync"
	"time"
)

// Jitter is a seedable source of full-jitter retry backoff. The
// deterministic BackoffDelay schedule has a thundering-herd flaw: tasks
// that failed together retry together, re-colliding on whatever
// resource failed them. Full jitter (delay uniform in [0, cap]) spreads
// the herd while keeping the same exponential cap — and seeding the
// source keeps chaos tests reproducible.
//
// A nil *Jitter is the un-jittered policy: Delay returns the
// deterministic cap unchanged, so existing callers keep their exact
// timing until they opt in. Safe for concurrent use.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter returns a jitter source seeded for reproducibility: two
// sources with the same seed emit the same delay sequence.
func NewJitter(seed int64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the backoff before the given 1-based attempt: uniform in
// [0, BackoffDelay(base, attempt)] — AWS-style full jitter — or exactly
// BackoffDelay for a nil receiver.
func (j *Jitter) Delay(base time.Duration, attempt int) time.Duration {
	d := BackoffDelay(base, attempt)
	if j == nil || d <= 0 {
		return d
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return time.Duration(j.rng.Int63n(int64(d) + 1))
}
