// Package hadoop implements an in-process MapReduce engine over the
// Gerenuk execution layer: map tasks over input splits, map-side sort
// and optional combining (the paper's IMC workload), a hash partition to
// reducers, and reduce tasks that fold key groups.
//
// As in internal/spark, each task is one speculative execution region:
// the map driver spans WritableDeserializer.deserialize (the paper's
// Hadoop deserialization point) to the shuffle write, and the reduce
// driver spans the shuffle read to IFile.append.
package hadoop

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/trace"
)

// JobConf configures one MapReduce job.
type JobConf struct {
	Name string
	// JobID, when set, namespaces the job's durable recovery state
	// (checkpoints, lineage) so concurrent jobs — which reuse app names
	// and hence exchange names like "IUF-shuffle" — can never serve each
	// other's bytes. The cluster service sets it to the submission ID.
	JobID string
	// Tenant, when set, labels the per-task latency series this job's
	// executors emit into the trace registry.
	Tenant string
	// Checkpoints and Lineage, when set, are the shared stores recovery
	// state persists to (scoped by JobID). nil keeps private per-job
	// stores.
	Checkpoints *recovery.CheckpointStore
	Lineage     *recovery.Lineage
	// Canceled, when set, is polled at every phase boundary: once it is
	// closed (cluster.Job.Cancel) the next phase does not start and the
	// job fails with engine.ErrCanceled. In-flight tasks drain;
	// cancellation is cooperative, never mid-record.
	Canceled <-chan struct{}
	// MapDriver reads records of InClass from source "in" and emits
	// MapOutClass records.
	MapDriver string
	// CombineDriver, if set, folds each key group of the map output
	// before the shuffle (in-map combining). Must be a reduce-style
	// driver over MapOutClass.
	CombineDriver string
	// ReduceDriver folds each key group on the reduce side, emitting
	// OutClass records.
	ReduceDriver string

	InClass     string
	MapOutClass string
	OutClass    string
	KeyField    string

	Reducers int
	Workers  int
	Mode     engine.Mode
	// Backend selects the native execution strategy (closure-compiled
	// chains by default) for every executor the job creates.
	Backend engine.Backend
	// MapHeap and ReduceHeap size the per-task heaps (the paper gives
	// mappers and reducers different heaps).
	MapHeap    heap.Config
	ReduceHeap heap.Config
	// EpochPerTask wraps each task invocation in a Yak epoch (the
	// epoch_start/epoch_end in setup()/cleanup() of section 4.3).
	EpochPerTask bool
	ClosureBytes int

	// MaxAttempts and RetryBackoff configure the pool's task retry
	// policy (0 = engine defaults: 3 attempts, no backoff).
	MaxAttempts  int
	RetryBackoff time.Duration
	// Breaker, when set, adaptively de-speculates drivers that keep
	// aborting, shared by map and reduce executors alike.
	Breaker *engine.Breaker
	// Hedge, when enabled, races the untransformed heap attempt against
	// straggling native attempts in every phase (map, combine, reduce).
	Hedge engine.HedgeConfig
	// CheckpointEvery persists each task's fold state every N completed
	// invocations so a killed attempt resumes from its last checkpoint
	// instead of restarting (0 = off).
	CheckpointEvery int
	// StageDeadline runs each phase (map, combine, reduce, shuffle fetch)
	// under a watchdog that converts a hang into a retryable timeout;
	// timed-out pool phases are re-executed once (0 = no watchdog).
	StageDeadline time.Duration
	// Jitter randomizes task-retry and shuffle-fetch backoff with full
	// jitter; nil keeps the deterministic delay schedule.
	Jitter *engine.Jitter
	// Injector, when set, derives a deterministic fault plan for every
	// task (chaos testing); VerifyInputs arms the mutate-input canary.
	Injector     *faults.Injector
	VerifyInputs bool
	// Trace, when set, receives a job span with map/sort/combine/
	// shuffle/merge/reduce phase spans plus the per-task spans every
	// executor emits.
	Trace *trace.Tracer
	// OnStage, when set, observes each pooled phase (map, combine,
	// reduce) as it completes: it runs before the phase's stats fold
	// into the job result, so the hook may enrich stats (the
	// observability plane charges real GC pause time here) and the
	// enrichment lands in the job totals.
	OnStage func(stage string, stats *metrics.Breakdown, wall time.Duration)
	// Shuffle configures the exchange between mappers and reducers:
	// memory budget (spill threshold), block compression, simulated
	// transport, fetch retry/breaker policy, block replication. Reducers,
	// Trace and (when unset) Injector are filled from the job conf.
	Shuffle shuffle.Config

	// ckpts is the per-job checkpoint store, created in Run when
	// CheckpointEvery is on and threaded to every phase's specs.
	ckpts *recovery.CheckpointStore
}

func (c JobConf) withDefaults() JobConf {
	if c.Reducers <= 0 {
		c.Reducers = 4
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MapHeap.YoungSize == 0 {
		c.MapHeap = heap.Config{YoungSize: 128 << 10, OldSize: 2 << 20}
	}
	if c.ReduceHeap.YoungSize == 0 {
		c.ReduceHeap = heap.Config{YoungSize: 128 << 10, OldSize: 3 << 20}
	}
	if c.ClosureBytes == 0 {
		c.ClosureBytes = 4 << 10
	}
	if c.EpochPerTask {
		c.MapHeap.Policy = heap.PolicyRegion
		c.ReduceHeap.Policy = heap.PolicyRegion
	}
	return c
}

// Result is the outcome of a job.
type Result struct {
	Out         []byte
	Stats       metrics.Breakdown
	Wall        time.Duration
	MapTasks    int
	ReduceTasks int
	// ShuffleBytes is the volume transferred from mappers to reducers
	// (after map-side combining, if any).
	ShuffleBytes int64
}

// Run executes the job over the given input splits.
func Run(c *engine.Compiled, conf JobConf, splits [][]byte) (*Result, error) {
	conf = conf.withDefaults()
	if conf.CheckpointEvery > 0 {
		store := conf.Checkpoints
		if store == nil {
			store = recovery.NewCheckpointStore()
		}
		if conf.JobID != "" {
			store = store.Scope(conf.JobID)
		}
		conf.ckpts = store
	}
	res := &Result{}
	start := time.Now()

	// EnsureTrace is mutex-guarded: jobs sharing one breaker may reach
	// this line concurrently (a bare check-then-set here was a data race
	// under multi-tenant load).
	conf.Breaker.EnsureTrace(conf.Trace)
	job := conf.Trace.StartSpan("job", conf.Name, trace.Str("mode", conf.Mode.String()))
	jobOutcome := "error"
	defer func() { job.End(trace.Str("outcome", jobOutcome)) }()

	for _, d := range []string{conf.MapDriver, conf.CombineDriver, conf.ReduceDriver} {
		if d == "" {
			continue
		}
		if err := c.CompileDriver(d); err != nil {
			return nil, fmt.Errorf("hadoop: compiling %s: %w", d, err)
		}
	}

	// ---- map phase ----
	mapSpecs := make([]engine.TaskSpec, len(splits))
	for i, split := range splits {
		mapSpecs[i] = engine.TaskSpec{
			Name:   fmt.Sprintf("%s-map%d", conf.Name, i),
			Driver: conf.MapDriver,
			Invocations: []map[string]engine.Input{
				{"in": {Class: conf.InClass, Buf: split}},
			},
			ClosureBytes:       conf.ClosureBytes,
			EpochPerInvocation: conf.EpochPerTask,
			Faults:             conf.Injector.ForTask(fmt.Sprintf("%s-map%d", conf.Name, i)),
			CheckpointEvery:    conf.CheckpointEvery,
			Checkpoints:        conf.ckpts,
		}
	}
	pool := &engine.Pool{Workers: conf.Workers, MaxAttempts: conf.MaxAttempts,
		Backoff: conf.RetryBackoff, Jitter: conf.Jitter}
	mapExec := func() *engine.Executor {
		return &engine.Executor{C: c, Mode: conf.Mode, HeapCfg: conf.MapHeap,
			Backend: conf.Backend,
			Breaker: conf.Breaker, VerifyInputs: conf.VerifyInputs,
			Hedge: conf.Hedge, Trace: conf.Trace, Tenant: conf.Tenant}
	}
	mapStage := job.Child("stage", "map", trace.I64("tasks", int64(len(mapSpecs))))
	mapStart := time.Now()
	mapJob, err := runPhase(conf, pool, mapExec, conf.Name+"/map", mapSpecs)
	mapWall := time.Since(mapStart)
	mapStage.End()
	if mapJob != nil {
		if conf.OnStage != nil {
			conf.OnStage("map", &mapJob.Stats, mapWall)
		}
		// Partial accounting: even a failed phase's completed tasks count.
		res.Stats.Add(mapJob.Stats)
	}
	if err != nil {
		res.Wall = time.Since(start)
		return res, fmt.Errorf("hadoop: map phase: %w", err)
	}
	res.MapTasks = len(mapSpecs)

	// ---- map-side sort (+ optional combine) ----
	// Sorting serialized key-value pairs is framework work both modes
	// pay identically (Gerenuk does not change Hadoop's byte-level
	// sort); it is measured into the total like any other computation.
	sortStart := time.Now()
	sortSpan := job.Child("stage", "map-sort")
	mapOuts := mapJob.Outputs
	for i, out := range mapOuts {
		sorted := SortByKey(c, conf.MapOutClass, conf.KeyField, out)
		mapOuts[i] = sorted
	}
	sortSpan.End()
	res.Stats.Total += time.Since(sortStart)
	if conf.CombineDriver != "" {
		combStart := time.Now()
		combined, cjob, err := foldGroups(c, conf, pool, conf.CombineDriver,
			conf.MapOutClass, mapOuts, conf.MapHeap, "combine", job, false)
		if cjob != nil {
			if conf.OnStage != nil {
				conf.OnStage("combine", &cjob.Stats, time.Since(combStart))
			}
			res.Stats.Add(cjob.Stats)
		}
		if err != nil {
			res.Wall = time.Since(start)
			return res, err
		}
		mapOuts = combined
	}

	// ---- shuffle: route map outputs through the exchange ----
	shufStart := time.Now()
	shufSpan := job.Child("stage", "shuffle")
	scfg := conf.Shuffle
	scfg.Partitions = conf.Reducers
	scfg.Trace = conf.Trace
	if scfg.Injector == nil {
		scfg.Injector = conf.Injector
	}
	if scfg.Jitter == nil {
		scfg.Jitter = conf.Jitter
	}
	if scfg.Lineage == nil {
		// The shared registry scoped by JobID when both were provided,
		// else a private one. Exchange names repeat across jobs running
		// the same app ("IUF-shuffle"), so an unscoped shared registry
		// would alias their producers.
		base := conf.Lineage
		if base == nil {
			base = recovery.NewLineage()
		}
		if conf.JobID != "" {
			base = base.Scope(conf.JobID)
		}
		scfg.Lineage = base
	}
	var codec *serde.Codec
	if conf.Mode == engine.Baseline {
		codec = c.Codec
	}
	exName := conf.Name + "-shuffle"
	ex, err := shuffle.NewExchange(shuffle.NewStore(), scfg, exName,
		c.Layouts, conf.MapOutClass, conf.KeyField, codec)
	if err != nil {
		res.Wall = time.Since(start)
		return res, fmt.Errorf("hadoop: shuffle: %w", err)
	}
	for i, out := range mapOuts {
		w := ex.Writer(i)
		if err := w.Add(out); err != nil {
			res.Wall = time.Since(start)
			return res, fmt.Errorf("hadoop: shuffle: %w", err)
		}
		if err := w.Close(); err != nil {
			res.Wall = time.Since(start)
			return res, fmt.Errorf("hadoop: shuffle: %w", err)
		}
		// Block lineage: losing every replica of this map output re-runs
		// just this writer over the retained (sorted, combined) bytes.
		part := out
		mapTask := i
		scfg.Lineage.Register(exName, mapTask, func() error {
			rw := ex.RecoveryWriter(mapTask)
			if err := rw.Add(part); err != nil {
				return err
			}
			return rw.Close()
		})
	}
	blocks, err := guardedFetch(conf, exName, ex)
	if err != nil {
		res.Wall = time.Since(start)
		return res, fmt.Errorf("hadoop: shuffle: %w", err)
	}
	shufStats := ex.Stats()
	shufStats.AddTo(&res.Stats)
	res.Stats.Total += time.Since(shufStart)
	res.ShuffleBytes = shufStats.BytesFetched
	shufSpan.End(trace.I64("shuffle_bytes", res.ShuffleBytes),
		trace.I64("spills", shufStats.Spills))

	// ---- reduce phase: merge-sort each reducer's blocks and fold ----
	mergeStart := time.Now()
	mergeSpan := job.Child("stage", "merge-sort")
	for i := range blocks {
		blocks[i] = SortByKey(c, conf.MapOutClass, conf.KeyField, blocks[i])
	}
	mergeSpan.End()
	res.Stats.Total += time.Since(mergeStart)
	reduceStart := time.Now()
	outs, rjob, err := foldGroups(c, conf, pool, conf.ReduceDriver,
		conf.MapOutClass, blocks, conf.ReduceHeap, "reduce", job, true)
	if rjob != nil {
		if conf.OnStage != nil {
			conf.OnStage("reduce", &rjob.Stats, time.Since(reduceStart))
		}
		res.Stats.Add(rjob.Stats)
	}
	if err != nil {
		res.Wall = time.Since(start)
		return res, err
	}
	res.ReduceTasks = len(blocks)
	for _, o := range outs {
		res.Out = append(res.Out, o...)
	}
	res.Wall = time.Since(start)
	jobOutcome = "ok"
	return res, nil
}

// foldGroups runs a reduce-style driver once per key group of each block.
// owned marks the blocks as freshly assembled for their task alone (the
// reduce side's fetched-and-merge-sorted buffers), letting the native
// attempt adopt them into its arena zero-copy.
func foldGroups(c *engine.Compiled, conf JobConf, pool *engine.Pool, driver, class string,
	blocks [][]byte, heapCfg heap.Config, phase string, job *trace.Span, owned bool) ([][]byte, *engine.JobResult, error) {
	var specs []engine.TaskSpec
	var blockOf []int
	for i, block := range blocks {
		if len(block) == 0 {
			continue
		}
		_, groups, err := engine.GroupByKey(c.Layouts, class, conf.KeyField, block)
		if err != nil {
			return nil, nil, fmt.Errorf("hadoop: %s grouping: %w", phase, err)
		}
		invocations := make([]map[string]engine.Input, 0, len(groups))
		for _, offs := range groups {
			invocations = append(invocations, map[string]engine.Input{
				"in": {Class: class, Buf: block, Offs: offs, Owned: owned},
			})
		}
		specs = append(specs, engine.TaskSpec{
			Name:               fmt.Sprintf("%s-%s%d", conf.Name, phase, i),
			Driver:             driver,
			Invocations:        invocations,
			ClosureBytes:       conf.ClosureBytes,
			EpochPerInvocation: conf.EpochPerTask,
			Faults:             conf.Injector.ForTask(fmt.Sprintf("%s-%s%d", conf.Name, phase, i)),
			CheckpointEvery:    conf.CheckpointEvery,
			Checkpoints:        conf.ckpts,
		})
		blockOf = append(blockOf, i)
	}
	outs := make([][]byte, len(blocks))
	if len(specs) == 0 {
		return outs, &engine.JobResult{}, nil
	}
	exec := func() *engine.Executor {
		return &engine.Executor{C: c, Mode: conf.Mode, HeapCfg: heapCfg,
			Backend: conf.Backend,
			Breaker: conf.Breaker, VerifyInputs: conf.VerifyInputs,
			Hedge: conf.Hedge, Trace: conf.Trace, Tenant: conf.Tenant}
	}
	stage := job.Child("stage", phase, trace.I64("tasks", int64(len(specs))))
	result, err := runPhase(conf, pool, exec, conf.Name+"/"+phase, specs)
	stage.End()
	if err != nil {
		// result carries the partial accounting; the caller folds it in.
		return nil, result, fmt.Errorf("hadoop: %s phase: %w", phase, err)
	}
	for k, out := range result.Outputs {
		outs[blockOf[k]] = out
	}
	return outs, result, nil
}

// runPhase executes one phase's pool under the stage watchdog; a phase
// whose deadline expires is presumed hung and re-executed once, with
// checkpointed tasks resuming from their last persisted fold state.
func runPhase(conf JobConf, pool *engine.Pool, exec func() *engine.Executor,
	name string, specs []engine.TaskSpec) (*engine.JobResult, error) {
	if err := engine.Canceled(conf.Canceled); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if conf.StageDeadline <= 0 {
		return pool.Run(exec, specs)
	}
	wd := recovery.Watchdog{Deadline: conf.StageDeadline, Trace: conf.Trace}
	run := func() (any, error) { return pool.Run(exec, specs) }
	res, err := wd.Guard(name, run)
	if err != nil && errors.Is(err, recovery.ErrStageTimeout) {
		res, err = wd.Guard(name+"#retry", run)
	}
	job, _ := res.(*engine.JobResult)
	return job, err
}

// guardedFetch bounds the reduce-side fetch with the stage watchdog;
// the exchange is terminal, so a timeout surfaces as the job error.
func guardedFetch(conf JobConf, name string, ex *shuffle.Exchange) ([][]byte, error) {
	if err := engine.Canceled(conf.Canceled); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if conf.StageDeadline <= 0 {
		return ex.FetchAll()
	}
	wd := recovery.Watchdog{Deadline: conf.StageDeadline, Trace: conf.Trace}
	res, err := wd.Guard(name+"/fetch", func() (any, error) { return ex.FetchAll() })
	blocks, _ := res.([][]byte)
	return blocks, err
}

// SortByKey rebuilds buf with its records sorted by canonical key bytes —
// the map-side sort both modes pay, mirroring Hadoop's in-memory sort of
// serialized key-value pairs.
func SortByKey(c *engine.Compiled, class, field string, buf []byte) []byte {
	offs := engine.RecordOffsets(buf)
	keys := make([]string, len(offs))
	for i, off := range offs {
		k, err := engine.KeyOf(c.Layouts, class, field, buf, off)
		if err != nil {
			// Sorting is engine machinery; schema errors here are bugs.
			panic(fmt.Sprintf("hadoop: SortByKey: %v", err))
		}
		keys[i] = string(k)
	}
	idx := make([]int, len(offs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]byte, 0, len(buf))
	for _, i := range idx {
		off := offs[i]
		out = append(out, buf[off:off+serde.RecordSize(buf, off)]...)
	}
	return out
}
