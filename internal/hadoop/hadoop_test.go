package hadoop

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

// wordCountProgram: Doc{text} -> WordCount{word string, n long} with a
// word-splitting map UDF written entirely in IR (charAt/length loops).
func wordCountProgram(t *testing.T) *ir.Program {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Doc", Fields: []model.FieldDef{
		{Name: "text", Type: model.Object(model.StringClassName)},
	}})
	reg.Define(model.ClassDef{Name: "WordCount", Fields: []model.FieldDef{
		{Name: "word", Type: model.Object(model.StringClassName)},
		{Name: "n", Type: model.Prim(model.KindLong)},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Doc", "WordCount"}

	long := model.Prim(model.KindLong)
	// splitUDF(doc): scan text, for each space-delimited word build a
	// char array + string + WordCount{word, 1} and emit it.
	b := ir.NewFuncBuilder(prog, "splitUDF", model.Type{})
	doc := b.Param("doc", model.Object("Doc"))
	text := b.Load(doc, "text")
	n := b.Native("length", long, text)
	space := b.IConst(int64(' '))
	one := b.IConst(1)
	zero := b.IConst(0)
	start := b.Local("start", long)
	b.Assign(start, zero)
	i := b.Local("i", long)
	b.Assign(i, zero)
	flush := func(end *ir.Var) {
		// if end > start: emit word text[start:end]
		wlen := b.Bin(ir.OpSub, end, start)
		b.If(ir.CmpGT, wlen, zero, func() {
			out := b.New("WordCount")
			word := b.New(model.StringClassName)
			chars := b.NewArr(model.Prim(model.KindChar), wlen)
			b.For(wlen, func(k *ir.Var) {
				pos := b.Bin(ir.OpAdd, start, k)
				ch := b.Native("charAt", long, text, pos)
				b.SetElem(chars, k, ch)
			})
			b.Store(word, "chars", chars)
			b.Store(out, "word", word)
			b.Store(out, "n", one)
			b.EmitRecord(out)
		}, nil)
	}
	b.While(ir.CmpLT, i, n, func() {
		ch := b.Native("charAt", long, text, i)
		b.If(ir.CmpEQ, ch, space, func() {
			flush(i)
			next := b.Bin(ir.OpAdd, i, one)
			b.Assign(start, next)
		}, nil)
		b.BinTo(i, ir.OpAdd, i, one)
	})
	flush(n)
	b.Ret(nil)
	b.Done()

	// countCombine(a, b) = WordCount{a.word, a.n + b.n}. The word string
	// is cloned into the fresh record via charAt/length (construction).
	cb := ir.NewFuncBuilder(prog, "countCombine", model.Object("WordCount"))
	a := cb.Param("a", model.Object("WordCount"))
	bb := cb.Param("b", model.Object("WordCount"))
	wa := cb.Load(a, "word")
	na := cb.Load(a, "n")
	nb := cb.Load(bb, "n")
	sum := cb.Bin(ir.OpAdd, na, nb)
	out := cb.New("WordCount")
	word := cb.New(model.StringClassName)
	wl := cb.Native("length", long, wa)
	chars := cb.NewArr(model.Prim(model.KindChar), wl)
	cb.For(wl, func(k *ir.Var) {
		ch := cb.Native("charAt", long, wa, k)
		cb.SetElem(chars, k, ch)
	})
	cb.Store(word, "chars", chars)
	cb.Store(out, "word", word)
	cb.Store(out, "n", sum)
	cb.Ret(out)
	cb.Done()

	spark.BuildMapDriver(prog, "wcMap", "splitUDF", "Doc")
	spark.BuildReduceDriver(prog, "wcReduce", "countCombine", "WordCount")
	return prog
}

func encodeDocs(t *testing.T, c *serde.Codec, docs []string) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, d := range docs {
		buf, err = c.Encode("Doc", serde.Obj{"text": d}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func decodeCounts(t *testing.T, c *serde.Codec, buf []byte) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for off := 0; off < len(buf); {
		v, next, err := c.Decode("WordCount", buf, off)
		if err != nil {
			t.Fatal(err)
		}
		o := v.(serde.Obj)
		out[o["word"].(string)] += o["n"].(int64)
		off = next
	}
	return out
}

func runWordCount(t *testing.T, mode engine.Mode, combine bool, epochs bool) (map[string]int64, *Result) {
	t.Helper()
	prog := wordCountProgram(t)
	comp := engine.Compile(prog)
	conf := JobConf{
		Name: "wc", MapDriver: "wcMap", ReduceDriver: "wcReduce",
		InClass: "Doc", MapOutClass: "WordCount", OutClass: "WordCount",
		KeyField: "word", Reducers: 2, Workers: 2, Mode: mode,
		EpochPerTask: epochs,
	}
	if combine {
		conf.CombineDriver = "wcReduce"
	}
	splits := [][]byte{
		encodeDocs(t, comp.Codec, []string{"the cat sat", "on the mat"}),
		encodeDocs(t, comp.Codec, []string{"the dog sat on the log", "cat and dog"}),
	}
	res, err := Run(comp, conf, splits)
	if err != nil {
		t.Fatal(err)
	}
	return decodeCounts(t, comp.Codec, res.Out), res
}

var wantCounts = map[string]int64{
	"the": 4, "cat": 2, "sat": 2, "on": 2, "mat": 1,
	"dog": 2, "log": 1, "and": 1,
}

func TestWordCountBaseline(t *testing.T) {
	got, res := runWordCount(t, engine.Baseline, false, false)
	if !reflect.DeepEqual(got, wantCounts) {
		t.Fatalf("counts = %v", got)
	}
	if res.Stats.Deser == 0 {
		t.Errorf("baseline paid no deserialization")
	}
}

func TestWordCountGerenuk(t *testing.T) {
	got, res := runWordCount(t, engine.Gerenuk, false, false)
	if !reflect.DeepEqual(got, wantCounts) {
		t.Fatalf("counts = %v", got)
	}
	if res.Stats.Aborts != 0 {
		t.Errorf("unexpected aborts: %d", res.Stats.Aborts)
	}
}

func TestWordCountWithCombiner(t *testing.T) {
	for _, mode := range []engine.Mode{engine.Baseline, engine.Gerenuk} {
		got, _ := runWordCount(t, mode, true, false)
		if !reflect.DeepEqual(got, wantCounts) {
			t.Fatalf("%v with combiner: counts = %v", mode, got)
		}
	}
}

func TestWordCountYakEpochs(t *testing.T) {
	got, res := runWordCount(t, engine.Baseline, false, true)
	if !reflect.DeepEqual(got, wantCounts) {
		t.Fatalf("yak: counts = %v", got)
	}
	_ = res
}

func TestSortByKeyOrdersRecords(t *testing.T) {
	prog := wordCountProgram(t)
	comp := engine.Compile(prog)
	var buf []byte
	var err error
	for _, w := range []string{"zebra", "apple", "mango"} {
		buf, err = comp.Codec.Encode("WordCount", serde.Obj{"word": w, "n": int64(1)}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	sorted := SortByKey(comp, "WordCount", "word", buf)
	var order []string
	for off := 0; off < len(sorted); {
		v, next, err := comp.Codec.Decode("WordCount", sorted, off)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, v.(serde.Obj)["word"].(string))
		off = next
	}
	// Canonical key bytes start with the length, so equal-length words
	// sort lexicographically.
	if !reflect.DeepEqual(order, []string{"apple", "mango", "zebra"}) {
		t.Errorf("order = %v", order)
	}
}
