// Package transform implements Algorithm 1 of the paper: the speculative
// rewriting of SER statements so they operate directly over inlined
// native bytes.
//
// Given the SER code analyzer's result (which statements lie on data
// flows, which are violation points) and the data structure analyzer's
// layouts (field offsets, possibly symbolic), the transformer produces a
// new version of the SER entry function in which
//
//   - deserialization points become getAddress (Case 1),
//   - assignments between data variables become address copies (Case 2/3),
//   - field stores/loads on data objects become writeNative/readNative
//     with constant or symbolic offsets (Cases 4/5),
//   - allocations become appendToBuffer (Case 6),
//   - violation points get an abort emitted in front (Case 7),
//   - serialization points become gWriteObject (Case 8), and
//   - calls that carry data are inlined and transformed recursively
//     (Case 9).
//
// The original function is left untouched — it is the slow path the
// runtime re-executes after an abort.
package transform

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dsa"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/model"
)

// Stats reports what the transformation did, feeding the paper's static
// statistics (55 classes, 126 violation points, ...).
type Stats struct {
	RewrittenStmts int
	InsertedAborts int
	InlinedCalls   int
	DroppedStores  int // construction ref-stores that became no-ops
	Classes        int
}

// Output is the result of transforming one SER.
type Output struct {
	// Native is the transformed entry function (with callees inlined),
	// registered in the program under "<entry>$gerenuk".
	Native *ir.Func
	// Orig is the untouched entry function (the slow path).
	Orig  *ir.Func
	Stats Stats
}

const inlineDepthLimit = 32

type xform struct {
	prog    *ir.Program
	layouts *dsa.Result
	ser     *analysis.SER
	out     *ir.Func
	stats   Stats
	depth   int
}

// Transform rewrites the SER rooted at ser.Entry. It fails only on
// structural problems (unknown functions, unbounded inlining); statically
// detected violations do not fail the transformation — they become abort
// instructions, which is the whole point of speculation.
func Transform(prog *ir.Program, layouts *dsa.Result, ser *analysis.SER) (*Output, error) {
	if !ser.Transformable {
		return nil, fmt.Errorf("transform: SER %q is not transformable: %s", ser.Entry, ser.Reason)
	}
	orig := prog.Fn(ser.Entry)
	nf := &ir.Func{Name: ser.Entry + "$gerenuk", Ret: orig.Ret}
	x := &xform{prog: prog, layouts: layouts, ser: ser, out: nf}

	vmap := make(map[*ir.Var]*ir.Var, len(orig.Locals))
	for _, v := range orig.Locals {
		vmap[v] = x.cloneVar(v)
	}
	for _, p := range orig.Params {
		nf.Params = append(nf.Params, vmap[p])
	}
	body, err := x.body(orig.Body, vmap)
	if err != nil {
		return nil, err
	}
	nf.Body = body
	x.stats.Classes = len(ser.ClassesTouched)
	if _, exists := prog.Funcs[nf.Name]; !exists {
		prog.Add(nf)
	}
	return &Output{Native: nf, Orig: orig, Stats: x.stats}, nil
}

// cloneVar copies a variable into the output function, turning data
// references into long address variables.
func (x *xform) cloneVar(v *ir.Var) *ir.Var {
	t := v.Type
	if x.ser.DataVars[v] && t.IsRef() {
		t = model.Prim(model.KindLong)
	}
	return x.out.NewVar(v.Name, t)
}

// body transforms a statement block, mapping original variables through
// vmap into output-function variables.
func (x *xform) body(stmts []ir.Stmt, vmap map[*ir.Var]*ir.Var) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for _, s := range stmts {
		// Case 7: violation points get a preceding abort; the violating
		// statement itself is unreachable and dropped.
		if v, isViol := x.ser.ViolationAt(s); isViol {
			out = append(out, &ir.Abort{Reason: v.Kind.String()})
			x.stats.InsertedAborts++
			continue
		}
		ns, err := x.stmt(s, vmap)
		if err != nil {
			return nil, err
		}
		out = append(out, ns...)
	}
	return out, nil
}

func (x *xform) mv(vmap map[*ir.Var]*ir.Var, v *ir.Var) *ir.Var {
	if v == nil {
		return nil
	}
	if nv, ok := vmap[v]; ok {
		return nv
	}
	// Variable from an enclosing inline scope already mapped, or a bug.
	panic(fmt.Sprintf("transform: unmapped variable %s", v))
}

func (x *xform) isData(v *ir.Var) bool { return v != nil && x.ser.DataVars[v] }

func (x *xform) fieldOffset(class, field string) (*expr.Expr, model.Field, error) {
	cls, ok := x.prog.Reg.Lookup(class)
	if !ok {
		return nil, model.Field{}, fmt.Errorf("transform: unknown class %s", class)
	}
	f, ok := cls.Field(field)
	if !ok {
		return nil, model.Field{}, fmt.Errorf("transform: unknown field %s.%s", class, field)
	}
	off, ok := x.layouts.FieldOffsetIn(class, field)
	if !ok {
		return nil, model.Field{}, fmt.Errorf("transform: no layout for %s.%s", class, field)
	}
	return off, f, nil
}

func (x *xform) stmt(s ir.Stmt, vmap map[*ir.Var]*ir.Var) ([]ir.Stmt, error) {
	selected := x.ser.TransformStmts[s]
	switch t := s.(type) {
	case *ir.If:
		nt := &ir.If{Cond: ir.Cond{Op: t.Cond.Op, L: x.mv(vmap, t.Cond.L), R: x.mv(vmap, t.Cond.R)}}
		var err error
		if nt.Then, err = x.body(t.Then, vmap); err != nil {
			return nil, err
		}
		if nt.Else, err = x.body(t.Else, vmap); err != nil {
			return nil, err
		}
		return []ir.Stmt{nt}, nil

	case *ir.While:
		nt := &ir.While{Cond: ir.Cond{Op: t.Cond.Op, L: x.mv(vmap, t.Cond.L), R: x.mv(vmap, t.Cond.R)}}
		var err error
		if nt.Body, err = x.body(t.Body, vmap); err != nil {
			return nil, err
		}
		return []ir.Stmt{nt}, nil

	case *ir.Deserialize:
		if !selected {
			break
		}
		// Case 1: a = readObject()  ==>  addr_a = getAddress().
		x.stats.RewrittenStmts++
		return []ir.Stmt{&ir.GetAddress{Dst: x.mv(vmap, t.Dst), Source: t.Source}}, nil

	case *ir.Serialize:
		if !x.isData(t.Src) {
			break
		}
		// Case 8: writeObject(a) ==> gWriteObject(addr_a).
		x.stats.RewrittenStmts++
		return []ir.Stmt{&ir.GWriteObject{Src: x.mv(vmap, t.Src), Sink: t.Sink, Class: t.Src.Type.Class}}, nil

	case *ir.Emit:
		if !x.isData(t.Src) {
			break
		}
		x.stats.RewrittenStmts++
		return []ir.Stmt{&ir.GEmit{Src: x.mv(vmap, t.Src), Class: t.Src.Type.Class}}, nil

	case *ir.FieldLoad:
		if !x.isData(t.Obj) {
			break
		}
		off, f, err := x.fieldOffset(t.Class, t.Field)
		if err != nil {
			return nil, err
		}
		x.stats.RewrittenStmts++
		dst, base := x.mv(vmap, t.Dst), x.mv(vmap, t.Obj)
		if !f.Type.IsRef() {
			// Case 5: primitive load becomes readNative.
			return []ir.Stmt{&ir.ReadNative{
				Dst: dst, Base: base, Off: off, Size: f.Type.Kind.Size(), Kind: f.Type.Kind,
			}}, nil
		}
		// Reference load: the "reference" is the interior offset.
		return []ir.Stmt{&ir.AddrOf{Dst: dst, Base: base, Off: off}}, nil

	case *ir.FieldStore:
		if !x.isData(t.Obj) {
			break
		}
		off, f, err := x.fieldOffset(t.Class, t.Field)
		if err != nil {
			return nil, err
		}
		x.stats.RewrittenStmts++
		base := x.mv(vmap, t.Obj)
		if !f.Type.IsRef() {
			// Case 4: primitive store becomes writeNative (with the
			// offset resolved at run time when symbolic).
			return []ir.Stmt{&ir.WriteNative{
				Base: base, Off: off, Size: f.Type.Kind.Size(), Src: x.mv(vmap, t.Src),
			}}, nil
		}
		// Construction-order reference store: the sub-record was already
		// appended in place; verify adjacency at run time.
		x.stats.DroppedStores++
		return []ir.Stmt{&ir.CheckInline{Base: base, Off: off, Sub: x.mv(vmap, t.Src)}}, nil

	case *ir.ArrayLoad:
		if !x.isData(t.Arr) {
			break
		}
		x.stats.RewrittenStmts++
		dst, base, idx := x.mv(vmap, t.Dst), x.mv(vmap, t.Arr), x.mv(vmap, t.Idx)
		elem := t.Arr.Type.Elem
		if elem == nil {
			return nil, fmt.Errorf("transform: array load on non-array-typed %s", t.Arr)
		}
		if !elem.IsRef() {
			return []ir.Stmt{&ir.ReadNativeElem{Dst: dst, Base: base, Idx: idx, Kind: elem.Kind}}, nil
		}
		if elem.Array {
			return nil, fmt.Errorf("transform: array-of-arrays load unsupported")
		}
		if sz := x.layouts.SizeOf(elem.Class); sz != nil && sz.IsConst() {
			return []ir.Stmt{&ir.AddrElem{Dst: dst, Base: base, Idx: idx, Stride: sz.ConstValue()}}, nil
		}
		// Variable-size elements: schema-guided scan.
		return []ir.Stmt{&ir.ScanElem{Dst: dst, Base: base, Idx: idx, Class: elem.Class}}, nil

	case *ir.ArrayStore:
		if !x.isData(t.Arr) {
			break
		}
		x.stats.RewrittenStmts++
		base, idx := x.mv(vmap, t.Arr), x.mv(vmap, t.Idx)
		elem := t.Arr.Type.Elem
		if elem == nil {
			return nil, fmt.Errorf("transform: array store on non-array-typed %s", t.Arr)
		}
		if !elem.IsRef() {
			return []ir.Stmt{&ir.WriteNativeElem{Base: base, Idx: idx, Kind: elem.Kind, Src: x.mv(vmap, t.Src)}}, nil
		}
		// Construction-order element store: sequential append protocol
		// already placed the record; nothing to do at run time (the seal
		// size check guards the invariant).
		x.stats.DroppedStores++
		return nil, nil

	case *ir.ArrayLen:
		if !x.isData(t.Arr) {
			break
		}
		x.stats.RewrittenStmts++
		return []ir.Stmt{&ir.ReadNative{
			Dst: x.mv(vmap, t.Dst), Base: x.mv(vmap, t.Arr),
			Off: expr.Konst(0), Size: 4, Kind: model.KindInt,
		}}, nil

	case *ir.New:
		if !selected {
			break
		}
		// Case 6: allocation becomes appendToBuffer.
		x.stats.RewrittenStmts++
		return []ir.Stmt{&ir.AppendRecord{Dst: x.mv(vmap, t.Dst), Class: t.Class}}, nil

	case *ir.NewArray:
		if !selected {
			break
		}
		x.stats.RewrittenStmts++
		return []ir.Stmt{&ir.AppendArray{Dst: x.mv(vmap, t.Dst), Elem: t.Elem, Len: x.mv(vmap, t.Len)}}, nil

	case *ir.ConstString:
		if !x.isData(t.Dst) {
			break
		}
		x.stats.RewrittenStmts++
		return []ir.Stmt{&ir.GConstString{Dst: x.mv(vmap, t.Dst), Val: t.Val}}, nil

	case *ir.Call:
		if !selected {
			break
		}
		// Case 9: inline and transform recursively.
		return x.inline(t, vmap)

	case *ir.NativeCall:
		if !x.isData(t.Recv) {
			break
		}
		if !analysis.IsWhitelistedNative(t.Name) {
			// The analyzer should have flagged this; be safe anyway.
			x.stats.InsertedAborts++
			return []ir.Stmt{&ir.Abort{Reason: "invoke-native-method"}}, nil
		}
		x.stats.RewrittenStmts++
		nc := &ir.NativeCall{Dst: x.mv(vmap, t.Dst), Name: t.Name, Recv: x.mv(vmap, t.Recv), RecvClass: t.RecvClass}
		for _, a := range t.Args {
			nc.Args = append(nc.Args, x.mv(vmap, a))
		}
		return []ir.Stmt{nc}, nil
	}

	// Default: clone the statement with variables remapped.
	return ir.CloneBody([]ir.Stmt{s}, vmap), nil
}

// inline splices the callee body into the caller, remapping parameters to
// arguments and replacing the trailing return with an assignment, then
// transforms the inlined statements (data classification was computed
// interprocedurally, so the callee's own DataVars apply).
func (x *xform) inline(call *ir.Call, vmap map[*ir.Var]*ir.Var) ([]ir.Stmt, error) {
	if x.depth >= inlineDepthLimit {
		return nil, fmt.Errorf("transform: inline depth limit at call to %q (recursive data-path call?)", call.Fn)
	}
	callee, ok := x.prog.Funcs[call.Fn]
	if !ok {
		return nil, fmt.Errorf("transform: unknown callee %q", call.Fn)
	}
	if len(call.Args) != len(callee.Params) {
		return nil, fmt.Errorf("transform: arity mismatch calling %q", call.Fn)
	}
	// Early returns cannot be spliced into structured IR.
	if err := checkSingleTrailingReturn(callee); err != nil {
		return nil, err
	}
	x.stats.InlinedCalls++

	inner := make(map[*ir.Var]*ir.Var, len(callee.Locals))
	for i, p := range callee.Params {
		inner[p] = x.mv(vmap, call.Args[i])
	}
	for _, v := range callee.Locals {
		if _, isParam := inner[v]; isParam {
			continue
		}
		inner[v] = x.cloneVar(v)
	}

	bodyStmts := callee.Body
	var retVal *ir.Var
	if n := len(bodyStmts); n > 0 {
		if r, isRet := bodyStmts[n-1].(*ir.Return); isRet {
			retVal = r.Val
			bodyStmts = bodyStmts[:n-1]
		}
	}
	x.depth++
	out, err := x.body(bodyStmts, inner)
	x.depth--
	if err != nil {
		return nil, err
	}
	if call.Dst != nil && retVal != nil {
		out = append(out, &ir.Assign{Dst: x.mv(vmap, call.Dst), Src: inner[retVal]})
	}
	return out, nil
}

func checkSingleTrailingReturn(f *ir.Func) error {
	n := len(f.Body)
	bad := false
	for i, s := range f.Body {
		if _, isRet := s.(*ir.Return); isRet && i != n-1 {
			bad = true
		}
	}
	ir.Walk(f.Body, func(s ir.Stmt) {
		switch t := s.(type) {
		case *ir.If:
			ir.Walk(t.Then, func(s ir.Stmt) {
				if _, isRet := s.(*ir.Return); isRet {
					bad = true
				}
			})
			ir.Walk(t.Else, func(s ir.Stmt) {
				if _, isRet := s.(*ir.Return); isRet {
					bad = true
				}
			})
		case *ir.While:
			ir.Walk(t.Body, func(s ir.Stmt) {
				if _, isRet := s.(*ir.Return); isRet {
					bad = true
				}
			})
		}
	})
	if bad {
		return fmt.Errorf("transform: callee %q has early returns; inline requires a single trailing return", f.Name)
	}
	return nil
}
