package transform

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/dsa"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/model"
)

func setup(t *testing.T) (*ir.Program, *dsa.Result) {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Vec", Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "values", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	reg.Define(model.ClassDef{Name: "LP", Fields: []model.FieldDef{
		{Name: "label", Type: model.Prim(model.KindDouble)},
		{Name: "features", Type: model.Object("Vec")},
	}})
	reg.Define(model.ClassDef{Name: "Ctl", Fields: []model.FieldDef{
		{Name: "v", Type: model.Object("Vec")},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LP"}
	layouts := dsa.Analyze(reg, []string{"LP"})
	return prog, layouts
}

func doTransform(t *testing.T, prog *ir.Program, layouts *dsa.Result, entry string) *Output {
	t.Helper()
	ser, err := analysis.AnalyzeSER(prog, layouts, entry)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Transform(prog, layouts, ser)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// count returns how many statements of each dynamic type the body holds.
func count(body []ir.Stmt) map[string]int {
	out := map[string]int{}
	ir.Walk(body, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.GetAddress:
			out["getAddress"]++
		case *ir.ReadNative:
			out["readNative"]++
		case *ir.WriteNative:
			out["writeNative"]++
		case *ir.AddrOf:
			out["addrOf"]++
		case *ir.AppendRecord:
			out["appendRecord"]++
		case *ir.AppendArray:
			out["appendArray"]++
		case *ir.GWriteObject:
			out["gWriteObject"]++
		case *ir.Abort:
			out["abort"]++
		case *ir.Deserialize:
			out["deserialize"]++
		case *ir.Serialize:
			out["serialize"]++
		case *ir.FieldLoad:
			out["fieldLoad"]++
		case *ir.FieldStore:
			out["fieldStore"]++
		case *ir.CheckInline:
			out["checkInline"]++
		case *ir.Call:
			out["call"]++
		}
	})
	return out
}

// TestAllNineCases builds a driver exercising every Algorithm 1 case and
// checks each rewrite happened.
func TestAllNineCases(t *testing.T) {
	prog, layouts := setup(t)

	// Case 9 target: a helper called with a data argument.
	hb := ir.NewFuncBuilder(prog, "firstVal", model.Prim(model.KindDouble))
	hp := hb.Param("v", model.Object("Vec"))
	vals := hb.Load(hp, "values")
	z := hb.IConst(0)
	x := hb.Elem(vals, z)
	hb.Ret(x)
	hb.Done()

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LP"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"}) // Case 1
	b.While(ir.CmpNE, rec, zero, func() {
		lbl := b.Load(rec, "label")    // Case 5 (prim load)
		vec := b.Load(rec, "features") // Case 5 (ref load -> AddrOf)
		alias := b.Temp(model.Object("Vec"))
		b.Assign(alias, vec)                                             // Case 2 (address copy)
		first := b.Call("firstVal", model.Prim(model.KindDouble), alias) // Case 9 (inline)
		out := b.New("LP")                                               // Case 6
		sum := b.Bin(ir.OpAdd, lbl, first)
		b.Store(out, "label", sum) // Case 4 (prim store)
		nv := b.New("Vec")
		one := b.IConst(1)
		b.Store(nv, "size", one)
		arr := b.NewArr(model.Prim(model.KindDouble), one) // Case 6 (array)
		b.SetElem(arr, zero, sum)
		b.Store(nv, "values", arr) // construction ref store -> CheckInline
		b.Store(out, "features", nv)
		b.WriteRecord("out", out) // Case 8
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	out := doTransform(t, prog, layouts, "driver")
	c := count(out.Native.Body)

	checks := map[string]int{
		"getAddress":   2, // both deserialization points
		"readNative":   0, // at least some (checked below)
		"appendRecord": 2, // LP + Vec
		"appendArray":  1,
		"gWriteObject": 1,
		"checkInline":  2, // vec->values and out->features
		"call":         0, // inlined away
		"deserialize":  0,
		"serialize":    0,
		"fieldLoad":    0,
		"fieldStore":   0,
	}
	for k, want := range checks {
		got := c[k]
		switch k {
		case "readNative":
			if got == 0 {
				t.Errorf("no readNative emitted")
			}
		default:
			if got != want {
				t.Errorf("%s = %d, want %d (counts: %v)", k, got, want, c)
			}
		}
	}
	if out.Stats.InlinedCalls != 1 {
		t.Errorf("InlinedCalls = %d", out.Stats.InlinedCalls)
	}
	if out.Stats.RewrittenStmts == 0 {
		t.Errorf("no statements counted as rewritten")
	}
	// The original function must be untouched (the slow path).
	oc := count(prog.Fn("driver").Body)
	if oc["deserialize"] != 2 || oc["fieldLoad"] == 0 {
		t.Errorf("original mutated: %v", oc)
	}
}

// TestCase7AbortInsertion: a violating statement becomes an abort and the
// statement itself is dropped.
func TestCase7AbortInsertion(t *testing.T) {
	prog, layouts := setup(t)
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LP"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		vec := b.Load(rec, "features")
		ctl := b.New("Ctl")
		b.Store(ctl, "v", vec) // load-and-escape violation
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	out := doTransform(t, prog, layouts, "driver")
	c := count(out.Native.Body)
	if c["abort"] != 1 {
		t.Fatalf("aborts = %d, want 1", c["abort"])
	}
	if c["fieldStore"] != 0 {
		t.Errorf("violating store survived the transformation")
	}
	if out.Stats.InsertedAborts != 1 {
		t.Errorf("InsertedAborts = %d", out.Stats.InsertedAborts)
	}
}

// TestDataVarsRetyped: reference-typed data variables become long address
// variables in the native function.
func TestDataVarsRetyped(t *testing.T) {
	prog, layouts := setup(t)
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LP"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	out := doTransform(t, prog, layouts, "driver")
	for _, v := range out.Native.Locals {
		if v.Name == "rec" && v.Type.Kind != model.KindLong {
			t.Errorf("rec not retyped to long: %s", v.Type)
		}
	}
}

// TestSymbolicOffsetCarried: a field behind an array keeps its symbolic
// offset expression in the rewritten ReadNative.
func TestSymbolicOffsetCarried(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "C", Fields: []model.FieldDef{
		{Name: "a", Type: model.Prim(model.KindInt)},
		{Name: "b", Type: model.ArrayOf(model.Prim(model.KindLong))},
		{Name: "c", Type: model.Prim(model.KindDouble)},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"C"}
	layouts := dsa.Analyze(reg, []string{"C"})

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("C"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		b.Load(rec, "c")
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	out := doTransform(t, prog, layouts, "driver")
	want := expr.Konst(8).Add(expr.ReadNative(8, expr.Konst(4), 4))
	found := false
	ir.Walk(out.Native.Body, func(s ir.Stmt) {
		if rn, ok := s.(*ir.ReadNative); ok && rn.Size == 8 {
			if rn.Off.Equal(want) {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("symbolic offset for field c not carried into readNative")
	}
}

// TestUntransformableRejected: Transform must refuse untransformable SERs.
func TestUntransformableRejected(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Node", Fields: []model.FieldDef{
		{Name: "next", Type: model.Object("Node")},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Node"}
	layouts := dsa.Analyze(reg, []string{"Node"})
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	rec := b.ReadRecord("in", model.Object("Node"))
	b.WriteRecord("out", rec)
	b.Ret(nil)
	b.Done()

	ser, err := analysis.AnalyzeSER(prog, layouts, "driver")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(prog, layouts, ser); err == nil {
		t.Fatalf("Transform accepted an untransformable SER")
	}
}

// TestEarlyReturnCalleeRejected: inlining requires single trailing return.
func TestEarlyReturnCalleeRejected(t *testing.T) {
	prog, layouts := setup(t)
	hb := ir.NewFuncBuilder(prog, "early", model.Prim(model.KindDouble))
	hp := hb.Param("v", model.Object("Vec"))
	sz := hb.Load(hp, "size")
	zero := hb.IConst(0)
	zf := hb.FConst(0)
	hb.If(ir.CmpEQ, sz, zero, func() {
		hb.Ret(zf)
	}, nil)
	one := hb.FConst(1)
	hb.Ret(one)
	hb.Done()

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero2 := b.IConst(0)
	rec := b.Local("rec", model.Object("LP"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero2, func() {
		vec := b.Load(rec, "features")
		b.Call("early", model.Prim(model.KindDouble), vec)
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	ser, err := analysis.AnalyzeSER(prog, layouts, "driver")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(prog, layouts, ser); err == nil {
		t.Fatalf("Transform accepted an early-return callee for inlining")
	}
}

// TestNativeFuncRegisteredOnce: transforming twice reuses the program
// entry without panicking on duplicate registration.
func TestNativeFuncRegisteredOnce(t *testing.T) {
	prog, layouts := setup(t)
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	rec := b.ReadRecord("in", model.Object("LP"))
	b.WriteRecord("out", rec)
	b.Ret(nil)
	b.Done()

	ser, err := analysis.AnalyzeSER(prog, layouts, "driver")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(prog, layouts, ser); err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(prog, layouts, ser); err != nil {
		t.Fatalf("second transform failed: %v", err)
	}
	if _, ok := prog.Funcs["driver$gerenuk"]; !ok {
		t.Errorf("native function not registered")
	}
}
