package serde

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dsa"
	"repro/internal/heap"
	"repro/internal/model"
)

func lrSchema() (*model.Registry, *dsa.Result) {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "DenseVector", Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "values", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	reg.Define(model.ClassDef{Name: "LabeledPoint", Fields: []model.FieldDef{
		{Name: "label", Type: model.Prim(model.KindDouble)},
		{Name: "features", Type: model.Object("DenseVector")},
	}})
	reg.Define(model.ClassDef{Name: "Account", Fields: []model.FieldDef{
		{Name: "userId", Type: model.Prim(model.KindLong)},
		{Name: "posts", Type: model.ArrayOf(model.Object(model.StringClassName))},
	}})
	reg.Define(model.ClassDef{Name: "Edge", Fields: []model.FieldDef{
		{Name: "src", Type: model.Prim(model.KindLong)},
		{Name: "dst", Type: model.Prim(model.KindLong)},
	}})
	layouts := dsa.Analyze(reg, []string{"LabeledPoint", "Account", "Edge", model.StringClassName})
	return reg, layouts
}

func newTestHeap(reg *model.Registry) *heap.Heap {
	return heap.New(reg, heap.Config{YoungSize: 1 << 20, OldSize: 8 << 20})
}

func lp(label float64, values []float64) Obj {
	return Obj{
		"label": label,
		"features": Obj{
			"size":   int64(len(values)),
			"values": values,
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	in := lp(1.5, []float64{0.25, -3, 7.5})
	wire, err := c.Encode("LabeledPoint", in, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wire size: prefix 4 + label 8 + size 4 + len 4 + 3*8 = 44.
	if len(wire) != 44 {
		t.Errorf("wire length = %d, want 44", len(wire))
	}
	if RecordSize(wire, 0) != 44 {
		t.Errorf("RecordSize = %d", RecordSize(wire, 0))
	}
	out, next, err := c.Decode("LabeledPoint", wire, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != len(wire) {
		t.Errorf("Decode consumed %d of %d", next, len(wire))
	}
	got := out.(Obj)
	if got["label"] != 1.5 {
		t.Errorf("label = %v", got["label"])
	}
	feats := got["features"].(Obj)
	if !reflect.DeepEqual(feats["values"], []float64{0.25, -3, 7.5}) {
		t.Errorf("values = %v", feats["values"])
	}
}

func TestHeapSerializeDeserializeRoundTrip(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	h := newTestHeap(reg)

	in := lp(2.25, []float64{1, 2, 3, 4})
	a, err := c.Build(h, "LabeledPoint", in)
	if err != nil {
		t.Fatal(err)
	}
	roots := &rootSlice{addrs: []heap.Addr{a}}
	defer h.AddRoots(roots)()

	wire, err := c.Serialize(h, roots.addrs[0], "LabeledPoint", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, next, err := c.Deserialize(h, wire, 0, "LabeledPoint")
	if err != nil {
		t.Fatal(err)
	}
	if next != len(wire) {
		t.Errorf("consumed %d of %d", next, len(wire))
	}
	roots.addrs = append(roots.addrs, b)
	back, err := c.ReadBack(h, roots.addrs[1], "LabeledPoint")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, any(Obj{
		"label":    2.25,
		"features": Obj{"size": int64(4), "values": []float64{1, 2, 3, 4}},
	})) {
		t.Errorf("round trip mismatch: %#v", back)
	}
}

type rootSlice struct{ addrs []heap.Addr }

func (r *rootSlice) VisitRoots(visit func(*heap.Addr)) {
	for i := range r.addrs {
		visit(&r.addrs[i])
	}
}

func TestStringsAndVariableElemArrays(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	h := newTestHeap(reg)
	in := Obj{
		"userId": int64(42),
		"posts":  []string{"hello", "", "wörld"},
	}
	a, err := c.Build(h, "Account", in)
	if err != nil {
		t.Fatal(err)
	}
	roots := &rootSlice{addrs: []heap.Addr{a}}
	defer h.AddRoots(roots)()
	back, err := c.ReadBack(h, roots.addrs[0], "Account")
	if err != nil {
		t.Fatal(err)
	}
	obj := back.(Obj)
	if obj["userId"] != int64(42) {
		t.Errorf("userId = %v", obj["userId"])
	}
	posts := obj["posts"].([]any)
	if len(posts) != 3 || posts[0] != "hello" || posts[1] != "" || posts[2] != "wörld" {
		t.Errorf("posts = %v", posts)
	}
}

func TestSerializeNullReferenceFails(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	h := newTestHeap(reg)
	lpCls := reg.MustLookup("LabeledPoint")
	a, err := h.AllocObject(lpCls) // features left null
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Serialize(h, a, "LabeledPoint", nil); err == nil {
		t.Errorf("serializing null reference succeeded")
	}
}

func TestDeserializeTruncatedFails(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	h := newTestHeap(reg)
	wire, err := c.Encode("LabeledPoint", lp(1, []float64{1, 2}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Deserialize(h, wire[:len(wire)-4], 0, "LabeledPoint"); err == nil {
		t.Errorf("truncated deserialize succeeded")
	}
}

func TestMultipleRecordsInOneBuffer(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	var buf []byte
	var err error
	for i := 0; i < 5; i++ {
		buf, err = c.Encode("Edge", Obj{"src": int64(i), "dst": int64(i * 10)}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i := 0; i < 5; i++ {
		v, next, err := c.Decode("Edge", buf, off)
		if err != nil {
			t.Fatal(err)
		}
		e := v.(Obj)
		if e["src"] != int64(i) || e["dst"] != int64(i*10) {
			t.Errorf("record %d = %v", i, e)
		}
		off = next
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d", off, len(buf))
	}
}

// TestHeapFootprintLabeledPoints reproduces the Figure 4 arithmetic: the
// heap representation of LabeledPoint records carries roughly 2x the
// payload in pure header/reference/padding overhead.
func TestHeapFootprintLabeledPoints(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	h := newTestHeap(reg)
	a, err := c.Build(h, "LabeledPoint", lp(1, []float64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	roots := &rootSlice{addrs: []heap.Addr{a}}
	defer h.AddRoots(roots)()

	foot, err := c.HeapFootprint(h, roots.addrs[0], "LabeledPoint")
	if err != nil {
		t.Fatal(err)
	}
	// LabeledPoint: hdr16 + label8 + ref8 = 32
	// DenseVector:  hdr16 + size4+pad4 + ref8 = 32
	// double[3]:    hdr16 + len4+pad4 + 24 = 48
	if foot != 112 {
		t.Errorf("heap footprint = %d, want 112", foot)
	}
	wire, err := c.Serialize(h, roots.addrs[0], "LabeledPoint", nil)
	if err != nil {
		t.Fatal(err)
	}
	inlined := len(wire) - SizePrefixBytes // 8+4+4+24 = 40
	if inlined != 40 {
		t.Errorf("inlined payload = %d, want 40", inlined)
	}
	ratio := float64(foot) / float64(inlined)
	if ratio < 2.5 || ratio > 3.2 {
		t.Errorf("heap/inlined ratio = %.2f, expected ~2.8", ratio)
	}
}

// TestDeserializeSurvivesGC stresses the rooted deserializer: a tiny
// nursery forces collections mid-deserialization.
func TestDeserializeSurvivesGC(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	h := heap.New(reg, heap.Config{YoungSize: 8 << 10, OldSize: 4 << 20})

	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	wire, err := c.Encode("LabeledPoint", lp(9, vals), nil)
	if err != nil {
		t.Fatal(err)
	}
	roots := &rootSlice{}
	defer h.AddRoots(roots)()
	for i := 0; i < 20; i++ {
		a, _, err := c.Deserialize(h, wire, 0, "LabeledPoint")
		if err != nil {
			t.Fatal(err)
		}
		roots.addrs = append(roots.addrs, a)
	}
	if h.Stats().MinorGCs == 0 {
		t.Fatalf("expected GCs during deserialization")
	}
	for _, a := range roots.addrs {
		back, err := c.ReadBack(h, a, "LabeledPoint")
		if err != nil {
			t.Fatal(err)
		}
		got := back.(Obj)["features"].(Obj)["values"].([]float64)
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("values corrupted after GC")
		}
	}
}

// Property: Encode → Deserialize-to-heap → Serialize produces identical
// wire bytes (the codec is canonical), for random LabeledPoints.
func TestCanonicalWireProperty(t *testing.T) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	f := func(label float64, seed int64, n uint8) bool {
		h := newTestHeap(reg)
		r := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n)%32)
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		wire, err := c.Encode("LabeledPoint", lp(label, vals), nil)
		if err != nil {
			return false
		}
		a, _, err := c.Deserialize(h, wire, 0, "LabeledPoint")
		if err != nil {
			return false
		}
		roots := &rootSlice{addrs: []heap.Addr{a}}
		defer h.AddRoots(roots)()
		wire2, err := c.Serialize(h, roots.addrs[0], "LabeledPoint", nil)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(wire, wire2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
