// Package serde implements the Gerenuk serializer (paper section 3.6): a
// schema-driven codec between simulated-heap object graphs and the
// inlined, pointer-free native format computed by the data structure
// analyzer.
//
// The wire format of a top-level record is a 4-byte total-size prefix
// followed by the payload laid out exactly as internal/dsa prescribes —
// primitives raw, reference fields inlined recursively, arrays as a
// 4-byte length plus back-to-back elements, strings as char arrays. The
// size prefix is the "special field storing the size of the entire data
// structure" the paper gives each top-level object; it lets buffers be
// iterated record by record without consulting the schema.
//
// The baseline execution path pays this codec's full graph-walk cost on
// every shuffle (serialize on write, deserialize-to-heap on read),
// modeling Kryo. The Gerenuk path moves the same bytes without invoking
// the codec at all.
package serde

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dsa"
	"repro/internal/heap"
	"repro/internal/model"
)

// SizePrefixBytes is the length of the per-record total-size prefix.
const SizePrefixBytes = 4

// Codec serializes and deserializes records of the classes covered by a
// DSA result.
type Codec struct {
	reg     *model.Registry
	layouts *dsa.Result
}

// NewCodec returns a codec over the given registry and layouts.
func NewCodec(reg *model.Registry, layouts *dsa.Result) *Codec {
	return &Codec{reg: reg, layouts: layouts}
}

// Layouts returns the DSA result backing the codec.
func (c *Codec) Layouts() *dsa.Result { return c.layouts }

// Serialize appends the inlined form of the record rooted at heap object
// a (of class top) to out, size prefix included, and returns the extended
// slice. This is the object-graph walk whose cost the baseline pays.
func (c *Codec) Serialize(h *heap.Heap, a heap.Addr, top string, out []byte) ([]byte, error) {
	start := len(out)
	out = append(out, 0, 0, 0, 0) // size prefix, patched below
	out, err := c.serializeClass(h, a, top, out)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(out[start:], uint32(len(out)-start-SizePrefixBytes))
	return out, nil
}

func (c *Codec) serializeClass(h *heap.Heap, a heap.Addr, clsName string, out []byte) ([]byte, error) {
	if a == 0 {
		return nil, fmt.Errorf("serde: null reference serializing %s", clsName)
	}
	if clsName == model.StringClassName {
		return c.serializeString(h, a, out)
	}
	cls, ok := c.reg.Lookup(clsName)
	if !ok {
		return nil, fmt.Errorf("serde: unknown class %s", clsName)
	}
	for _, f := range cls.Fields {
		var err error
		out, err = c.serializeField(h, a, f, out)
		if err != nil {
			return nil, fmt.Errorf("%w (field %s.%s)", err, clsName, f.Name)
		}
	}
	return out, nil
}

func (c *Codec) serializeField(h *heap.Heap, a heap.Addr, f model.Field, out []byte) ([]byte, error) {
	t := f.Type
	switch {
	case !t.IsRef():
		return appendPrim(out, h.GetPrim(a, f.Offset, t.Kind), t.Kind.Size()), nil
	case t.Array:
		arr := h.GetRef(a, f.Offset)
		return c.serializeArray(h, arr, *t.Elem, out)
	default:
		return c.serializeClass(h, h.GetRef(a, f.Offset), t.Class, out)
	}
}

func (c *Codec) serializeArray(h *heap.Heap, arr heap.Addr, elem model.Type, out []byte) ([]byte, error) {
	if arr == 0 {
		return nil, fmt.Errorf("serde: null array reference")
	}
	n := h.ArrayLen(arr)
	out = appendPrim(out, uint64(n), 4)
	if !elem.IsRef() {
		sz := elem.Kind.Size()
		for i := 0; i < n; i++ {
			out = appendPrim(out, h.ArrayGetPrim(arr, i, elem.Kind), sz)
		}
		return out, nil
	}
	if elem.Array {
		return nil, fmt.Errorf("serde: array of arrays unsupported")
	}
	for i := 0; i < n; i++ {
		var err error
		out, err = c.serializeClass(h, h.ArrayGetRef(arr, i), elem.Class, out)
		if err != nil {
			return nil, fmt.Errorf("%w (element %d)", err, i)
		}
	}
	return out, nil
}

func (c *Codec) serializeString(h *heap.Heap, a heap.Addr, out []byte) ([]byte, error) {
	strCls := c.reg.MustLookup(model.StringClassName)
	chars := h.GetRef(a, strCls.MustField("chars").Offset)
	if chars == 0 {
		return nil, fmt.Errorf("serde: string with null char array")
	}
	n := h.ArrayLen(chars)
	out = appendPrim(out, uint64(n), 4)
	for i := 0; i < n; i++ {
		out = appendPrim(out, h.ArrayGetPrim(chars, i, model.KindChar), 2)
	}
	return out, nil
}

func appendPrim(out []byte, bits uint64, sz int) []byte {
	for i := 0; i < sz; i++ {
		out = append(out, byte(bits>>(8*i)))
	}
	return out
}

// RecordSize reads the size prefix of the record starting at buf[off:],
// returning the total record length including the prefix.
func RecordSize(buf []byte, off int) int {
	return SizePrefixBytes + int(binary.LittleEndian.Uint32(buf[off:]))
}

// deserializer carries a heap-rooted stack so partially built object
// graphs survive collections triggered by their own allocations.
type deserializer struct {
	c     *Codec
	h     *heap.Heap
	buf   []byte
	off   int
	stack []heap.Addr
}

func (d *deserializer) VisitRoots(visit func(*heap.Addr)) {
	for i := range d.stack {
		visit(&d.stack[i])
	}
}

// Deserialize reads one size-prefixed record of class top starting at
// buf[off:], allocating the object graph on h, and returns the root
// address and the offset just past the record. This is the expensive
// bytes-to-objects conversion the baseline pays on every shuffle read
// and that Gerenuk skips.
func (c *Codec) Deserialize(h *heap.Heap, buf []byte, off int, top string) (heap.Addr, int, error) {
	d := &deserializer{c: c, h: h, buf: buf, off: off + SizePrefixBytes}
	remove := h.AddRoots(d)
	defer remove()
	payload := int(binary.LittleEndian.Uint32(buf[off:]))
	a, err := d.class(top)
	if err != nil {
		return 0, 0, err
	}
	want := off + SizePrefixBytes + payload
	if d.off != want {
		return 0, 0, fmt.Errorf("serde: record of %s consumed %d bytes, prefix says %d",
			top, d.off-off-SizePrefixBytes, payload)
	}
	return a, d.off, nil
}

// push roots an address and returns its stack index.
func (d *deserializer) push(a heap.Addr) int {
	d.stack = append(d.stack, a)
	return len(d.stack) - 1
}

func (d *deserializer) pop() { d.stack = d.stack[:len(d.stack)-1] }

func (d *deserializer) class(clsName string) (heap.Addr, error) {
	if clsName == model.StringClassName {
		return d.str()
	}
	cls, ok := d.c.reg.Lookup(clsName)
	if !ok {
		return 0, fmt.Errorf("serde: unknown class %s", clsName)
	}
	a, err := d.h.AllocObject(cls)
	if err != nil {
		return 0, err
	}
	self := d.push(a)
	defer d.pop()
	for _, f := range cls.Fields {
		t := f.Type
		switch {
		case !t.IsRef():
			bits, err := d.prim(t.Kind.Size())
			if err != nil {
				return 0, err
			}
			d.h.SetPrim(d.stack[self], f.Offset, t.Kind, bits)
		case t.Array:
			arr, err := d.array(*t.Elem)
			if err != nil {
				return 0, fmt.Errorf("%w (field %s.%s)", err, clsName, f.Name)
			}
			d.h.SetRef(d.stack[self], f.Offset, arr)
		default:
			sub, err := d.class(t.Class)
			if err != nil {
				return 0, fmt.Errorf("%w (field %s.%s)", err, clsName, f.Name)
			}
			d.h.SetRef(d.stack[self], f.Offset, sub)
		}
	}
	return d.stack[self], nil
}

func (d *deserializer) array(elem model.Type) (heap.Addr, error) {
	nBits, err := d.prim(4)
	if err != nil {
		return 0, err
	}
	n := int(int32(nBits))
	if n < 0 {
		return 0, fmt.Errorf("serde: negative array length %d", n)
	}
	if !elem.IsRef() {
		arr, err := d.h.AllocArray(elem.Kind, n)
		if err != nil {
			return 0, err
		}
		self := d.push(arr)
		sz := elem.Kind.Size()
		for i := 0; i < n; i++ {
			bits, err := d.prim(sz)
			if err != nil {
				d.pop()
				return 0, err
			}
			d.h.ArraySetPrim(d.stack[self], i, elem.Kind, bits)
		}
		arr = d.stack[self]
		d.pop()
		return arr, nil
	}
	if elem.Array {
		return 0, fmt.Errorf("serde: array of arrays unsupported")
	}
	arr, err := d.h.AllocArray(model.KindRef, n)
	if err != nil {
		return 0, err
	}
	self := d.push(arr)
	for i := 0; i < n; i++ {
		el, err := d.class(elem.Class)
		if err != nil {
			d.pop()
			return 0, fmt.Errorf("%w (element %d)", err, i)
		}
		d.h.ArraySetRef(d.stack[self], i, el)
	}
	arr = d.stack[self]
	d.pop()
	return arr, nil
}

func (d *deserializer) str() (heap.Addr, error) {
	nBits, err := d.prim(4)
	if err != nil {
		return 0, err
	}
	n := int(int32(nBits))
	chars, err := d.h.AllocArray(model.KindChar, n)
	if err != nil {
		return 0, err
	}
	self := d.push(chars)
	for i := 0; i < n; i++ {
		bits, err := d.prim(2)
		if err != nil {
			d.pop()
			return 0, err
		}
		d.h.ArraySetPrim(d.stack[self], i, model.KindChar, bits)
	}
	strCls := d.c.reg.MustLookup(model.StringClassName)
	s, err := d.h.AllocObject(strCls)
	if err != nil {
		d.pop()
		return 0, err
	}
	d.h.SetRef(s, strCls.MustField("chars").Offset, d.stack[self])
	d.pop()
	return s, nil
}

func (d *deserializer) prim(sz int) (uint64, error) {
	if d.off+sz > len(d.buf) {
		return 0, fmt.Errorf("serde: truncated input at offset %d (need %d of %d)",
			d.off, sz, len(d.buf))
	}
	var v uint64
	for i := 0; i < sz; i++ {
		v |= uint64(d.buf[d.off+i]) << (8 * i)
	}
	d.off += sz
	return v, nil
}

// HeapFootprint returns the total simulated-heap bytes of the object
// graph rooted at a — headers, references, padding and all. Comparing it
// with the serialized size reproduces the paper's Figure 5 ratios.
func (c *Codec) HeapFootprint(h *heap.Heap, a heap.Addr, clsName string) (int64, error) {
	if a == 0 {
		return 0, fmt.Errorf("serde: null reference in footprint of %s", clsName)
	}
	if clsName == model.StringClassName {
		strCls := c.reg.MustLookup(model.StringClassName)
		chars := h.GetRef(a, strCls.MustField("chars").Offset)
		return int64(strCls.Size + h.SizeOf(chars)), nil
	}
	cls, ok := c.reg.Lookup(clsName)
	if !ok {
		return 0, fmt.Errorf("serde: unknown class %s", clsName)
	}
	total := int64(cls.Size)
	for _, f := range cls.Fields {
		t := f.Type
		switch {
		case !t.IsRef():
		case t.Array:
			arr := h.GetRef(a, f.Offset)
			if arr == 0 {
				return 0, fmt.Errorf("serde: null array in footprint (%s.%s)", clsName, f.Name)
			}
			total += int64(h.SizeOf(arr))
			if t.Elem.IsRef() && !t.Elem.Array {
				for i, n := 0, h.ArrayLen(arr); i < n; i++ {
					el := h.ArrayGetRef(arr, i)
					sub, err := c.HeapFootprint(h, el, t.Elem.Class)
					if err != nil {
						return 0, err
					}
					total += sub
				}
			}
		default:
			sub, err := c.HeapFootprint(h, h.GetRef(a, f.Offset), t.Class)
			if err != nil {
				return 0, err
			}
			total += sub
		}
	}
	return total, nil
}
