package serde

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/heap"
	"repro/internal/model"
)

// Obj is a schema-directed Go representation of a record, used by
// workload generators and tests: field name to value, where a value is
// an int64 (any integer kind), float64 (float/double), string, Obj
// (reference field), []int64 / []float64 (primitive arrays), or []Obj
// (reference arrays).
type Obj map[string]any

// Encode appends the wire form (size prefix included) of v, interpreted
// as class top, directly to out — no heap involved. Workload generators
// use it to produce "input files" in the native format.
func (c *Codec) Encode(top string, v Obj, out []byte) ([]byte, error) {
	start := len(out)
	out = append(out, 0, 0, 0, 0)
	out, err := c.encodeClass(top, v, out)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(out[start:], uint32(len(out)-start-SizePrefixBytes))
	return out, nil
}

func (c *Codec) encodeClass(clsName string, v any, out []byte) ([]byte, error) {
	if clsName == model.StringClassName {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("serde: expected string for %s, got %T", clsName, v)
		}
		return encodeString(s, out), nil
	}
	obj, ok := v.(Obj)
	if !ok {
		return nil, fmt.Errorf("serde: expected Obj for class %s, got %T", clsName, v)
	}
	cls, ok := c.reg.Lookup(clsName)
	if !ok {
		return nil, fmt.Errorf("serde: unknown class %s", clsName)
	}
	for _, f := range cls.Fields {
		fv, present := obj[f.Name]
		if !present {
			return nil, fmt.Errorf("serde: missing field %s.%s", clsName, f.Name)
		}
		var err error
		out, err = c.encodeField(f, fv, out)
		if err != nil {
			return nil, fmt.Errorf("%w (field %s.%s)", err, clsName, f.Name)
		}
	}
	return out, nil
}

func (c *Codec) encodeField(f model.Field, v any, out []byte) ([]byte, error) {
	t := f.Type
	switch {
	case !t.IsRef():
		bits, err := primBits(t.Kind, v)
		if err != nil {
			return nil, err
		}
		return appendPrim(out, bits, t.Kind.Size()), nil
	case t.Array && !t.Elem.IsRef():
		return encodePrimArray(t.Elem.Kind, v, out)
	case t.Array:
		var elems []any
		switch vv := v.(type) {
		case []Obj:
			for _, o := range vv {
				elems = append(elems, o)
			}
		case []string:
			for _, s := range vv {
				elems = append(elems, s)
			}
		case []any:
			elems = vv
		default:
			return nil, fmt.Errorf("serde: expected []Obj/[]string/[]any, got %T", v)
		}
		out = appendPrim(out, uint64(len(elems)), 4)
		for i, o := range elems {
			var err error
			out, err = c.encodeClass(t.Elem.Class, o, out)
			if err != nil {
				return nil, fmt.Errorf("%w (element %d)", err, i)
			}
		}
		return out, nil
	default:
		return c.encodeClass(t.Class, v, out)
	}
}

func encodeString(s string, out []byte) []byte {
	runes := []rune(s)
	out = appendPrim(out, uint64(len(runes)), 4)
	for _, r := range runes {
		out = appendPrim(out, uint64(uint16(r)), 2)
	}
	return out
}

func encodePrimArray(k model.Kind, v any, out []byte) ([]byte, error) {
	switch vals := v.(type) {
	case []int64:
		out = appendPrim(out, uint64(len(vals)), 4)
		for _, x := range vals {
			out = appendPrim(out, uint64(x), k.Size())
		}
		return out, nil
	case []float64:
		if k != model.KindDouble && k != model.KindFloat {
			return nil, fmt.Errorf("serde: []float64 for %s array", k)
		}
		out = appendPrim(out, uint64(len(vals)), 4)
		for _, x := range vals {
			out = appendPrim(out, heap.Float64Bits(x), k.Size())
		}
		return out, nil
	default:
		return nil, fmt.Errorf("serde: unsupported prim array value %T", v)
	}
}

func primBits(k model.Kind, v any) (uint64, error) {
	switch x := v.(type) {
	case int64:
		return uint64(x), nil
	case int:
		return uint64(x), nil
	case float64:
		if k == model.KindDouble || k == model.KindFloat {
			return heap.Float64Bits(x), nil
		}
		return 0, fmt.Errorf("serde: float value for %s field", k)
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("serde: unsupported prim value %T", v)
	}
}

// Decode reads the size-prefixed record of class top at buf[off:] into an
// Obj, returning the value and the offset past the record. Mode-agnostic
// output verification in tests uses it.
func (c *Codec) Decode(top string, buf []byte, off int) (any, int, error) {
	end := off + RecordSize(buf, off)
	v, noff, err := c.decodeClass(top, buf, off+SizePrefixBytes)
	if err != nil {
		return nil, 0, err
	}
	if noff != end {
		return nil, 0, fmt.Errorf("serde: decode of %s consumed %d, prefix says %d",
			top, noff-off-SizePrefixBytes, end-off-SizePrefixBytes)
	}
	return v, noff, nil
}

func (c *Codec) decodeClass(clsName string, buf []byte, off int) (any, int, error) {
	if clsName == model.StringClassName {
		return decodeString(buf, off)
	}
	cls, ok := c.reg.Lookup(clsName)
	if !ok {
		return nil, 0, fmt.Errorf("serde: unknown class %s", clsName)
	}
	obj := make(Obj, len(cls.Fields))
	for _, f := range cls.Fields {
		v, noff, err := c.decodeField(f, buf, off)
		if err != nil {
			return nil, 0, fmt.Errorf("%w (field %s.%s)", err, clsName, f.Name)
		}
		obj[f.Name] = v
		off = noff
	}
	return obj, off, nil
}

func (c *Codec) decodeField(f model.Field, buf []byte, off int) (any, int, error) {
	t := f.Type
	switch {
	case !t.IsRef():
		bits, sz := readPrim(buf, off, t.Kind.Size())
		return primValue(t.Kind, bits), off + sz, nil
	case t.Array && !t.Elem.IsRef():
		n := int(int32(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
		k := t.Elem.Kind
		if k == model.KindDouble || k == model.KindFloat {
			vals := make([]float64, n)
			for i := range vals {
				bits, sz := readPrim(buf, off, k.Size())
				vals[i] = heap.Float64FromBits(bits)
				off += sz
			}
			return vals, off, nil
		}
		vals := make([]int64, n)
		for i := range vals {
			bits, sz := readPrim(buf, off, k.Size())
			vals[i] = signExtend(bits, k)
			off += sz
		}
		return vals, off, nil
	case t.Array:
		n := int(int32(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
		elems := make([]any, 0, n)
		for i := 0; i < n; i++ {
			v, noff, err := c.decodeClass(t.Elem.Class, buf, off)
			if err != nil {
				return nil, 0, err
			}
			off = noff
			elems = append(elems, v)
		}
		return elems, off, nil
	default:
		return c.decodeClass(t.Class, buf, off)
	}
}

func decodeString(buf []byte, off int) (string, int, error) {
	n := int(int32(binary.LittleEndian.Uint32(buf[off:])))
	off += 4
	runes := make([]rune, n)
	for i := 0; i < n; i++ {
		runes[i] = rune(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
	}
	return string(runes), off, nil
}

func readPrim(buf []byte, off, sz int) (uint64, int) {
	var v uint64
	for i := 0; i < sz; i++ {
		v |= uint64(buf[off+i]) << (8 * i)
	}
	return v, sz
}

func signExtend(bits uint64, k model.Kind) int64 {
	switch k.Size() {
	case 1:
		return int64(int8(bits))
	case 2:
		return int64(int16(bits))
	case 4:
		return int64(int32(bits))
	default:
		return int64(bits)
	}
}

func primValue(k model.Kind, bits uint64) any {
	if k == model.KindDouble || k == model.KindFloat {
		return heap.Float64FromBits(bits)
	}
	return signExtend(bits, k)
}

// Build allocates the heap object graph for v (class top) and returns
// the root address. The rootHold slot, if non-nil, receives intermediate
// roots so the caller need not pre-register anything.
func (c *Codec) Build(h *heap.Heap, top string, v Obj) (heap.Addr, error) {
	// Encode then deserialize: reuses the rooted deserializer so the
	// build survives GCs triggered mid-construction.
	wire, err := c.Encode(top, v, nil)
	if err != nil {
		return 0, err
	}
	a, _, err := c.Deserialize(h, wire, 0, top)
	return a, err
}

// ReadBack converts the heap object graph rooted at a back into an Obj.
func (c *Codec) ReadBack(h *heap.Heap, a heap.Addr, top string) (any, error) {
	wire, err := c.Serialize(h, a, top, nil)
	if err != nil {
		return nil, err
	}
	v, _, err := c.Decode(top, wire, 0)
	return v, err
}

// FieldNames returns the sorted field names of an Obj (test helper).
func (o Obj) FieldNames() []string {
	out := make([]string, 0, len(o))
	for k := range o {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
