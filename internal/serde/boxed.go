package serde

import (
	"encoding/binary"
	"fmt"

	"repro/internal/model"
)

// BoxedWireFootprint computes the heap bytes the record at buf[off:]
// would occupy under the representation real JVM dataflow systems give
// generic records: a Tuple/case-class object whose primitive fields are
// *boxed* (java.lang.Long, java.lang.Double, ...), because generic
// containers such as Scala's Tuple2 and GraphX's shuffle records erase
// to Object fields.
//
// Our executable heap model stores primitives unboxed inside objects
// (like specialized classes), which understates the paper's Figure 5
// overhead; this function reproduces the paper's measurement — "the size
// of data objects before serialization" as a JVM would hold them — from
// the wire bytes and the schema alone.
func (c *Codec) BoxedWireFootprint(class string, buf []byte, off int) (int64, error) {
	total, _, err := c.boxedClass(class, buf, off+SizePrefixBytes, true)
	return total, err
}

// boxedClass returns (heapBytes, nextOffset). topLevel boxing applies to
// every class: each primitive field costs a reference plus a box object.
func (c *Codec) boxedClass(class string, buf []byte, off int, _ bool) (int64, int, error) {
	if class == model.StringClassName {
		n := int(int32(binary.LittleEndian.Uint32(buf[off:])))
		// String object + its char[] payload.
		heapBytes := int64(model.HeaderSize + model.RefSize + model.ArraySize(model.KindChar, n))
		return heapBytes, off + 4 + 2*n, nil
	}
	cls, ok := c.reg.Lookup(class)
	if !ok {
		return 0, 0, fmt.Errorf("serde: unknown class %s", class)
	}
	total := int64(model.HeaderSize)
	for _, f := range cls.Fields {
		t := f.Type
		switch {
		case !t.IsRef():
			// Reference slot + box object (header + aligned payload).
			total += model.RefSize + model.HeaderSize + int64(align8(t.Kind.Size()))
			off += t.Kind.Size()
		case t.Array && !t.Elem.IsRef():
			n := int(int32(binary.LittleEndian.Uint32(buf[off:])))
			total += model.RefSize + int64(model.ArraySize(t.Elem.Kind, n))
			off += 4 + n*t.Elem.Kind.Size()
		case t.Array:
			n := int(int32(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
			total += model.RefSize + int64(model.ArrayRefSize(n))
			for i := 0; i < n; i++ {
				sub, noff, err := c.boxedClass(t.Elem.Class, buf, off, false)
				if err != nil {
					return 0, 0, err
				}
				total += sub
				off = noff
			}
		default:
			sub, noff, err := c.boxedClass(t.Class, buf, off, false)
			if err != nil {
				return 0, 0, err
			}
			total += model.RefSize + sub
			off = noff
		}
	}
	return total, off, nil
}

func align8(n int) int { return (n + 7) &^ 7 }
