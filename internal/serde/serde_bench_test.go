package serde

import (
	"testing"

	"repro/internal/heap"
)

// BenchmarkSerialize measures the object-graph walk baseline shuffles
// pay on every write.
func BenchmarkSerialize(b *testing.B) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	h := newTestHeap(reg)
	a, err := c.Build(h, "LabeledPoint", lp(1.5, []float64{1, 2, 3, 4, 5, 6, 7, 8}))
	if err != nil {
		b.Fatal(err)
	}
	root := a
	defer h.AddRoots(heap.RootFunc(func(visit func(*heap.Addr)) { visit(&root) }))()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.Serialize(h, root, "LabeledPoint", buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// BenchmarkDeserialize measures the bytes-to-objects conversion baseline
// shuffles pay on every read — the headline cost Gerenuk eliminates.
func BenchmarkDeserialize(b *testing.B) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	wire, err := c.Encode("LabeledPoint", lp(1.5, []float64{1, 2, 3, 4, 5, 6, 7, 8}), nil)
	if err != nil {
		b.Fatal(err)
	}
	h := newTestHeap(reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Deserialize(h, wire, 0, "LabeledPoint"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(h.Stats().MinorGCs), "minorGCs")
}

// BenchmarkEncode measures the Go-value-to-wire generator path.
func BenchmarkEncode(b *testing.B) {
	reg, layouts := lrSchema()
	c := NewCodec(reg, layouts)
	obj := lp(1.5, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.Encode("LabeledPoint", obj, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}
