package compile_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arena"
	"repro/internal/compile"
	"repro/internal/dsa"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/transform"
)

// ---- harness: the same source/sink protocol the engine uses ----

type wireSource struct {
	buf   []byte
	off   int
	class string
}

func (s *wireSource) NextWire() ([]byte, int, bool) {
	if s.off >= len(s.buf) {
		return nil, 0, false
	}
	off := s.off
	s.off += serde.RecordSize(s.buf, s.off)
	return s.buf, off, true
}
func (s *wireSource) Class() string { return s.class }

type collectSink struct{ out []byte }

func (s *collectSink) WriteWire(rec []byte, class string) error {
	s.out = append(s.out, rec...)
	return nil
}

type regionSource struct {
	a      *arena.Arena
	region *arena.Region
	buf    []byte // region bytes, snapshotted lazily (input regions never grow)
	base   int64
	off    int
	class  string
}

// NextAddr reads the size prefix straight off a snapshot of the region
// bytes so the microbenchmarks measure backend dispatch cost, not source
// overhead (both backends drain the same source).
func (s *regionSource) NextAddr() (int64, bool) {
	if s.buf == nil {
		s.buf = s.region.Bytes()
		s.base = s.region.Base()
	}
	if s.off+serde.SizePrefixBytes > len(s.buf) {
		return 0, false
	}
	size := int(binary.LittleEndian.Uint32(s.buf[s.off:]))
	addr := s.base + int64(s.off+serde.SizePrefixBytes)
	s.off += serde.SizePrefixBytes + size
	return addr, true
}
func (s *regionSource) Class() string { return s.class }

type nativeCollectSink struct {
	a   *arena.Arena
	out []byte
}

func (s *nativeCollectSink) WriteRecord(addr int64, size int, class string) error {
	s.out = append(s.out, s.a.Slice(addr-serde.SizePrefixBytes, serde.SizePrefixBytes+size)...)
	return nil
}

// ---- program construction ----

func lrProgram(t testing.TB) (*ir.Program, *dsa.Result, *serde.Codec) {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "DenseVector", Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "values", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	reg.Define(model.ClassDef{Name: "LabeledPoint", Fields: []model.FieldDef{
		{Name: "label", Type: model.Prim(model.KindDouble)},
		{Name: "features", Type: model.Object("DenseVector")},
	}})
	reg.Define(model.ClassDef{Name: "Pair", Fields: []model.FieldDef{
		{Name: "key", Type: model.Prim(model.KindLong)},
		{Name: "value", Type: model.Prim(model.KindDouble)},
	}})
	layouts := dsa.Analyze(reg, []string{"LabeledPoint", "Pair"})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint", "Pair"}
	return prog, layouts, serde.NewCodec(reg, layouts)
}

// buildSumDriver: for each LabeledPoint emit Pair{round(label), sum+label}.
// Exercises record fetch, field reads, element loop, record construction.
func buildSumDriver(prog *ir.Program) *ir.Func {
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		label := b.Load(rec, "label")
		vec := b.Load(rec, "features")
		vals := b.Load(vec, "values")
		sum := b.Local("sum", model.Prim(model.KindDouble))
		b.Emit(&ir.ConstFloat{Dst: sum, Val: 0})
		n := b.Len(vals)
		b.For(n, func(i *ir.Var) {
			x := b.Elem(vals, i)
			b.BinTo(sum, ir.OpAdd, sum, x)
		})
		total := b.Bin(ir.OpAdd, sum, label)
		out := b.New("Pair")
		k := b.Un(ir.OpD2I, label)
		b.Store(out, "key", k)
		b.Store(out, "value", total)
		b.WriteRecord("out", out)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	return b.Done()
}

// buildScanDriver: a projection-aggregation scan — per record it reads
// the label and the feature count (a mean-style aggregate), so the cost
// is a handful of statements of pure dispatch with no inner loop.
// Returns bits of (label sum + element count).
func buildScanDriver(prog *ir.Program) *ir.Func {
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	acc := b.Local("acc", model.Prim(model.KindDouble))
	b.Emit(&ir.ConstFloat{Dst: acc, Val: 0})
	cnt := b.Local("cnt", model.Prim(model.KindLong))
	b.Emit(&ir.ConstInt{Dst: cnt, Val: 0})
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		label := b.Load(rec, "label")
		b.BinTo(acc, ir.OpAdd, acc, label)
		vec := b.Load(rec, "features")
		vals := b.Load(vec, "values")
		n := b.Len(vals)
		b.BinTo(cnt, ir.OpAdd, cnt, n)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	cntD := b.Temp(model.Prim(model.KindDouble))
	b.Emit(&ir.UnOp{Dst: cntD, Op: ir.OpI2D, X: cnt})
	b.BinTo(acc, ir.OpAdd, acc, cntD)
	b.Ret(acc)
	return b.Done()
}

// buildFoldDriver: folds every element of every record into one
// accumulator — arithmetic plus per-element bounds guards.
func buildFoldDriver(prog *ir.Program) *ir.Func {
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	acc := b.Local("acc", model.Prim(model.KindDouble))
	b.Emit(&ir.ConstFloat{Dst: acc, Val: 0})
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		vec := b.Load(rec, "features")
		vals := b.Load(vec, "values")
		n := b.Len(vals)
		b.For(n, func(i *ir.Var) {
			x := b.Elem(vals, i)
			b.BinTo(acc, ir.OpAdd, acc, x)
		})
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(acc)
	return b.Done()
}

func encodeLPs(t testing.TB, c *serde.Codec, pts [][]float64) []byte {
	t.Helper()
	var buf []byte
	var err error
	for i, vals := range pts {
		buf, err = c.Encode("LabeledPoint", serde.Obj{
			"label": float64(i + 1),
			"features": serde.Obj{
				"size":   int64(len(vals)),
				"values": vals,
			},
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func gerenukTransform(t testing.TB, prog *ir.Program, layouts *dsa.Result, entry string) *ir.Func {
	t.Helper()
	ser, err := analysis.AnalyzeSER(prog, layouts, entry)
	if err != nil {
		t.Fatal(err)
	}
	if !ser.Transformable {
		t.Fatalf("SER not transformable: %s", ser.Reason)
	}
	out, err := transform.Transform(prog, layouts, ser)
	if err != nil {
		t.Fatal(err)
	}
	return out.Native
}

// nativeEnv builds a fresh native-mode Env over the adopted input.
func nativeEnv(prog *ir.Program, layouts *dsa.Result, a *arena.Arena, in *arena.Region, class string) (*interp.Env, *nativeCollectSink) {
	sink := &nativeCollectSink{a: a}
	return &interp.Env{
		Mode: interp.ModeNative, Prog: prog, Arena: a, Layouts: layouts,
		Out:           a.NewRegion("output"),
		NativeSources: map[string]interp.NativeSource{"in": &regionSource{a: a, region: in, class: class}},
		NativeSink:    sink,
	}, sink
}

func runHeap(t *testing.T, prog *ir.Program, layouts *dsa.Result, c *serde.Codec, fn *ir.Func, input []byte, class string) ([]byte, int64) {
	t.Helper()
	h := heap.New(prog.Reg, heap.Config{YoungSize: 256 << 10, OldSize: 8 << 20})
	sink := &collectSink{}
	env := &interp.Env{
		Mode: interp.ModeHeap, Prog: prog, Heap: h, Codec: c, Layouts: layouts,
		Sources: map[string]interp.Source{"in": &wireSource{buf: input, class: class}},
		Sink:    sink,
	}
	v, err := interp.New(env).Run(fn)
	if err != nil {
		t.Fatalf("heap run: %v", err)
	}
	return sink.out, v
}

// ---- differential tests ----

// TestCompiledMatchesInterpAndHeap is the core soundness check: the
// compiled chain, the interpreter over the same transformed IR, and the
// untransformed heap run all produce byte-identical output.
func TestCompiledMatchesInterpAndHeap(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(*ir.Program) *ir.Func
		pts   [][]float64
	}{
		{"sum-emit", buildSumDriver, [][]float64{{1, 2, 3}, {0.5, -0.25}, {}, {10}}},
		{"scan", buildScanDriver, [][]float64{{1}, {2, 4}, {}}},
		{"fold", buildFoldDriver, [][]float64{{1, 2, 3, 4}, {-1, 0.5}, {7}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, layouts, c := lrProgram(t)
			driver := tc.build(prog)
			input := encodeLPs(t, c, tc.pts)

			heapOut, heapV := runHeap(t, prog, layouts, c, driver, input, "LabeledPoint")

			native := gerenukTransform(t, prog, layouts, "driver")
			a := arena.New()
			in := a.AdoptBytes("input", input)

			ienv, isink := nativeEnv(prog, layouts, a, in, "LabeledPoint")
			iv, err := interp.New(ienv).Run(native)
			if err != nil {
				t.Fatalf("interp run: %v", err)
			}

			cprog, err := compile.Compile(prog, native)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cenv, csink := nativeEnv(prog, layouts, a, in, "LabeledPoint")
			cv, err := cprog.Run(cenv)
			if err != nil {
				t.Fatalf("compiled run: %v", err)
			}

			if !bytes.Equal(heapOut, isink.out) || !bytes.Equal(isink.out, csink.out) {
				t.Fatalf("outputs differ:\n heap     %x\n interp   %x\n compiled %x",
					heapOut, isink.out, csink.out)
			}
			if heapV != iv || iv != cv {
				t.Fatalf("return values differ: heap %#x interp %#x compiled %#x", heapV, iv, cv)
			}
		})
	}
}

// TestCompileDeclinesHeapDriver: the untransformed driver (Deserialize,
// New, FieldLoad, ...) must be rejected as a whole, never half-compiled.
func TestCompileDeclinesHeapDriver(t *testing.T) {
	prog, _, _ := lrProgram(t)
	driver := buildSumDriver(prog)
	if _, err := compile.Compile(prog, driver); err == nil {
		t.Fatal("expected heap-path driver to decline compilation")
	} else if !strings.Contains(err.Error(), "heap path") {
		t.Fatalf("unexpected decline reason: %v", err)
	}
}

// TestGuardAbortParity: a forced abort fires identically in both
// backends — same error class (interp.ErrAbort), same message, and the
// records already emitted match byte for byte.
func TestGuardAbortParity(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	buildSumDriver(prog)
	input := encodeLPs(t, c, [][]float64{{1}, {2}, {3}, {4}})
	native := gerenukTransform(t, prog, layouts, "driver")
	cprog, err := compile.Compile(prog, native)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := arena.New()
	in := a.AdoptBytes("input", input)

	ienv, isink := nativeEnv(prog, layouts, a, in, "LabeledPoint")
	ienv.AbortAfterRecords = 2
	_, ierr := interp.New(ienv).Run(native)

	cenv, csink := nativeEnv(prog, layouts, a, in, "LabeledPoint")
	cenv.AbortAfterRecords = 2
	_, cerr := cprog.Run(cenv)

	for _, err := range []error{ierr, cerr} {
		if !errors.Is(err, interp.ErrAbort) {
			t.Fatalf("expected abort, got %v", err)
		}
	}
	if ierr.Error() != cerr.Error() {
		t.Fatalf("abort messages differ: interp %q compiled %q", ierr, cerr)
	}
	if !bytes.Equal(isink.out, csink.out) {
		t.Fatalf("partial outputs differ:\n interp   %x\n compiled %x", isink.out, csink.out)
	}
}

// TestExplicitGuardAborts: a lowered ir.Abort (the shape every
// speculation guard takes after transformation) returns the existing
// AbortError from compiled code, so the engine deoptimizes through the
// unchanged abort path.
func TestExplicitGuardAborts(t *testing.T) {
	prog, layouts, _ := lrProgram(t)
	b := ir.NewFuncBuilder(prog, "guarded", model.Type{})
	b.Emit(&ir.Abort{Reason: "mutates input record"})
	b.Ret(nil)
	fn := b.Done()

	cprog, err := compile.Compile(prog, fn)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := arena.New()
	in := a.AdoptBytes("input", nil)
	env, _ := nativeEnv(prog, layouts, a, in, "LabeledPoint")
	_, cerr := cprog.Run(env)
	if !errors.Is(cerr, interp.ErrAbort) {
		t.Fatalf("expected ErrAbort, got %v", cerr)
	}
	var ae *interp.AbortError
	if !errors.As(cerr, &ae) || ae.Reason != "mutates input record" {
		t.Fatalf("abort reason lost: %v", cerr)
	}

	ienv, _ := nativeEnv(prog, layouts, a, in, "LabeledPoint")
	_, ierr := interp.New(ienv).Run(fn)
	if ierr == nil || ierr.Error() != cerr.Error() {
		t.Fatalf("backends disagree: interp %v compiled %v", ierr, cerr)
	}
}

// TestUnknownNativeMethodAborts: a non-whitelisted native method over
// inlined bytes aborts at run time (not compile time) with the
// interpreter's exact error, so speculative call sites that never
// execute don't decline the driver.
func TestUnknownNativeMethodAborts(t *testing.T) {
	prog, layouts, _ := lrProgram(t)
	b := ir.NewFuncBuilder(prog, "oddcall", model.Type{})
	recv := b.IConst(0)
	b.Emit(&ir.NativeCall{Name: "toUpperCase", Recv: recv, RecvClass: model.StringClassName})
	b.Ret(nil)
	fn := b.Done()

	cprog, err := compile.Compile(prog, fn)
	if err != nil {
		t.Fatalf("compile must defer unknown-method failure to run time: %v", err)
	}
	a := arena.New()
	in := a.AdoptBytes("input", nil)
	cenv, _ := nativeEnv(prog, layouts, a, in, "LabeledPoint")
	_, cerr := cprog.Run(cenv)
	ienv, _ := nativeEnv(prog, layouts, a, in, "LabeledPoint")
	_, ierr := interp.New(ienv).Run(fn)
	if cerr == nil || ierr == nil || cerr.Error() != ierr.Error() {
		t.Fatalf("backends disagree: interp %v compiled %v", ierr, cerr)
	}
	if !errors.Is(cerr, interp.ErrAbort) {
		t.Fatalf("expected ErrAbort, got %v", cerr)
	}
}

// TestCancelParity: a pre-cancelled run stops with ErrCanceled — which
// must NOT read as an abort — in both backends, proving hedge losers
// cancel cooperatively under the compiled backend too.
func TestCancelParity(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	buildFoldDriver(prog)
	input := encodeLPs(t, c, make([][]float64, 64))
	native := gerenukTransform(t, prog, layouts, "driver")
	cprog, err := compile.Compile(prog, native)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := arena.New()
	in := a.AdoptBytes("input", input)

	var flag atomic.Bool
	flag.Store(true)
	for name, run := range map[string]func(*interp.Env) error{
		"interp":   func(env *interp.Env) error { _, err := interp.New(env).Run(native); return err },
		"compiled": func(env *interp.Env) error { _, err := cprog.Run(env); return err },
	} {
		env, _ := nativeEnv(prog, layouts, a, in, "LabeledPoint")
		env.Cancel = &flag
		err := run(env)
		if !errors.Is(err, interp.ErrCanceled) {
			t.Fatalf("%s: expected ErrCanceled, got %v", name, err)
		}
		if errors.Is(err, interp.ErrAbort) {
			t.Fatalf("%s: cancellation must not read as an abort", name)
		}
	}
}

// TestStepBudgetParity pins the cancellation-granularity contract: the
// minimal MaxSteps that lets the interpreter finish is exactly the
// minimal budget for the compiled chain, so hedging's cooperative
// cancellation polls at identical step offsets in both backends.
func TestStepBudgetParity(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	buildSumDriver(prog)
	input := encodeLPs(t, c, [][]float64{{1, 2, 3}, {4, 5}, {6}})
	native := gerenukTransform(t, prog, layouts, "driver")
	cprog, err := compile.Compile(prog, native)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := arena.New()
	in := a.AdoptBytes("input", input)

	succeeds := func(run func(*interp.Env) error, budget int64) bool {
		env, _ := nativeEnv(prog, layouts, a, in, "LabeledPoint")
		env.MaxSteps = budget
		err := run(env)
		if err != nil && !strings.Contains(err.Error(), "step limit") {
			t.Fatalf("unexpected error at budget %d: %v", budget, err)
		}
		return err == nil
	}
	iRun := func(env *interp.Env) error { _, err := interp.New(env).Run(native); return err }
	cRun := func(env *interp.Env) error { _, err := cprog.Run(env); return err }

	// Binary-search the interpreter's minimal budget.
	lo, hi := int64(1), int64(1<<20)
	if !succeeds(iRun, hi) {
		t.Fatalf("interp cannot finish in %d steps", hi)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if succeeds(iRun, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	min := lo
	if !succeeds(cRun, min) {
		t.Fatalf("compiled needs more than the interpreter's %d steps", min)
	}
	if succeeds(cRun, min-1) {
		t.Fatalf("compiled finished under the interpreter's minimal budget %d", min)
	}
}

// ---- microbenchmarks: per-record dispatch cost, interp vs compiled ----

func benchKernel(b *testing.B, build func(*ir.Program) *ir.Func, pts [][]float64, compiled bool) {
	prog, layouts, c := lrProgram(b)
	build(prog)
	input := encodeLPs(b, c, pts)
	native := gerenukTransform(b, prog, layouts, "driver")
	var cprog *compile.Prog
	if compiled {
		p, err := compile.Compile(prog, native)
		if err != nil {
			b.Fatal(err)
		}
		cprog = p
	}
	a := arena.New()
	in := a.AdoptBytes("input", input)
	out := a.NewRegion("output")
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := &interp.Env{
			Mode: interp.ModeNative, Prog: prog, Arena: a, Layouts: layouts, Out: out,
			NativeSources: map[string]interp.NativeSource{
				"in": &regionSource{a: a, region: in, class: "LabeledPoint"},
			},
		}
		var err error
		if compiled {
			_, err = cprog.Run(env)
		} else {
			_, err = interp.New(env).Run(native)
		}
		if err != nil {
			b.Fatal(err)
		}
		records += int64(len(pts))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(records), "ns/record")
}

// genPts builds n records with k-element feature vectors.
func genPts(n, k int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		v := make([]float64, k)
		for j := range v {
			v[j] = float64(i*k+j) * 0.5
		}
		pts[i] = v
	}
	return pts
}

// Scan: per-record work is a two-field projection — pure dispatch cost,
// no inner loop.
func BenchmarkScanKernelInterp(b *testing.B)   { benchKernel(b, buildScanDriver, genPts(4096, 2), false) }
func BenchmarkScanKernelCompiled(b *testing.B) { benchKernel(b, buildScanDriver, genPts(4096, 2), true) }

// Fold: element-wise accumulation over 64-wide vectors.
func BenchmarkFoldKernelInterp(b *testing.B)   { benchKernel(b, buildFoldDriver, genPts(64, 64), false) }
func BenchmarkFoldKernelCompiled(b *testing.B) { benchKernel(b, buildFoldDriver, genPts(64, 64), true) }

// Guard-heavy: tiny vectors make per-element bounds guards and loop
// bookkeeping dominate the arithmetic.
func BenchmarkGuardKernelInterp(b *testing.B)   { benchKernel(b, buildFoldDriver, genPts(2048, 2), false) }
func BenchmarkGuardKernelCompiled(b *testing.B) { benchKernel(b, buildFoldDriver, genPts(2048, 2), true) }
