// Package compile is the closure-compilation backend for transformed
// SERs: it lowers an ir.Func once per driver into chains of plain Go
// funcs, eliminating the per-record statement/binop/cond interpretive
// dispatch that dominates internal/interp's hot loop.
//
// The lowering is a classic closure compiler (a "continuation chain" of
// func values, not generated source): every statement becomes one
// pre-specialized step closure with
//
//   - variable slots resolved to integer indices at compile time,
//   - constant offsets folded into direct arena reads/writes,
//   - float-vs-int operator selection done once instead of per record,
//   - GetAddress sources bound to a per-run array slot instead of a
//     per-record map lookup, and
//   - arena record operations pre-bound to the shared *interp.Env
//     methods (nativeops), so both backends run byte-identical record
//     protocols.
//
// Speculation guards (scan bounds, inline-placement checks, built-size
// checks, whitelisted-method checks) stay inline branch checks that
// return the existing *interp.AbortError, so a guard failure
// deoptimizes through the engine's unchanged abort → heap re-execution
// path; breaker, hedging, and recovery machinery observe exactly the
// interpreter's error surface.
//
// Cancellation parity: compiled chains call Env.CheckStep at precisely
// the interpreter's call sites (before every statement, once per While
// iteration), so a hedge loser polls Env.Cancel at the same step
// granularity and MaxSteps budgets behave identically.
//
// Compilation is partial by design: any statement that touches the
// simulated managed heap (Deserialize, New, FieldLoad, ...) makes the
// whole driver non-compilable and Compile returns an error — the engine
// then falls back to interpreting that driver. A consequence the
// soundness argument leans on: compiled code can never allocate on the
// managed heap, so no GC can run under it and compiled frames need no
// root registration.
package compile

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/arena"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/model"
)

// Prog is one closure-compiled driver: the entry function plus every
// reachable callee, ready to run against any *interp.Env.
type Prog struct {
	entry *cfn
	// srcNames holds the distinct GetAddress source names in slot order;
	// Run binds them up front (one map lookup per run, not per record).
	srcNames []string
	// Funcs and Steps describe the compiled shape, for tests/metrics.
	Funcs int
	Steps int
}

// cfn is a compiled function: parameter slots and a step chain.
type cfn struct {
	name   string
	params []int
	nslots int
	body   []step
}

// mach is the per-run machine state shared by all frames of one
// execution: the environment, the lazily bound native sources, and the
// last-resolved arena region (records stream from one input region, so
// the cache almost always hits).
type mach struct {
	env  *interp.Env
	srcs []interp.NativeSource

	regID int64
	reg   *arena.Region

	ret retSig
}

// bytesAt returns the backing bytes and intra-region offset of base,
// re-resolving only when the region changes. The bytes are re-fetched
// from the region on every access (never cached) so writes that grow
// the region can't leave a stale slice behind. Fault semantics are the
// arena's own: a wild or freed address faults through RegionAt exactly
// as a generic access would; a freed region yields nil bytes, which
// every in-bounds check rejects into the generic (faulting) path.
func (m *mach) bytesAt(base int64) ([]byte, int) {
	if base>>32 == m.regID {
		return m.reg.Bytes(), int(uint32(base))
	}
	return m.bytesAtSlow(base)
}

func (m *mach) bytesAtSlow(base int64) ([]byte, int) {
	m.reg = m.env.Arena.RegionAt(base)
	m.regID = base >> 32
	return m.reg.Bytes(), int(uint32(base))
}

// retSig propagates a Return through nested blocks as a sentinel
// error consumed at the callFn boundary. One instance lives in the
// mach and is reused (its value is read immediately at the consuming
// callFn, before any other step runs), so Return never allocates.
type retSig struct{ val int64 }

func (*retSig) Error() string { return "compile: internal return signal" }

// step executes one lowered statement against the frame's slot array.
// A *retSig error propagates a Return; any other error aborts the run.
type step func(m *mach, sl []int64) error

// Run executes the compiled driver with the given argument values (raw
// bits), against the same Env contract as interp.New(env).Run(fn, ...).
func (p *Prog) Run(env *interp.Env, args ...int64) (int64, error) {
	if env.MaxSteps == 0 {
		env.MaxSteps = interp.DefaultMaxSteps
	}
	// regID -1 forces the first access through RegionAt: id 0 is never
	// valid, and a null/heap-range base must fault there, not here.
	m := &mach{env: env, regID: -1}
	if len(p.srcNames) > 0 {
		m.srcs = make([]interp.NativeSource, len(p.srcNames))
		for i, name := range p.srcNames {
			m.srcs[i] = env.NativeSources[name]
		}
	}
	return callFn(m, p.entry, args)
}

func callFn(m *mach, f *cfn, args []int64) (int64, error) {
	if len(args) != len(f.params) {
		return 0, fmt.Errorf("compile: %s expects %d args, got %d", f.name, len(f.params), len(args))
	}
	sl := make([]int64, f.nslots)
	for i, a := range args {
		sl[f.params[i]] = a
	}
	if err := runSteps(m, f.name, sl, f.body); err != nil {
		if r, ok := err.(*retSig); ok {
			return r.val, nil
		}
		return 0, err
	}
	return 0, nil
}

// runSteps is the compiled analogue of the interpreter's block loop:
// CheckStep before every statement keeps step budgets and cancellation
// polling at identical granularity across backends.
func runSteps(m *mach, name string, sl []int64, steps []step) error {
	env := m.env
	for _, st := range steps {
		if err := env.CheckStep(name); err != nil {
			return err
		}
		if err := st(m, sl); err != nil {
			return err
		}
	}
	return nil
}

// Compile lowers fn (an already-transformed native driver from prog)
// and every function it calls into a closure chain. It fails — rather
// than falling back statement-by-statement — on any construct that
// needs the managed heap, so a successful compile certifies the whole
// driver runs heap-free.
func Compile(prog *ir.Program, fn *ir.Func) (*Prog, error) {
	c := &compiler{
		prog:   prog,
		fns:    map[string]*cfn{},
		srcIdx: map[string]int{},
	}
	entry, err := c.fn(fn)
	if err != nil {
		return nil, err
	}
	srcNames := make([]string, len(c.srcIdx))
	for name, i := range c.srcIdx {
		srcNames[i] = name
	}
	return &Prog{entry: entry, srcNames: srcNames, Funcs: len(c.fns), Steps: c.steps}, nil
}

type compiler struct {
	prog   *ir.Program
	fns    map[string]*cfn
	srcIdx map[string]int
	steps  int
}

func (c *compiler) sourceIndex(name string) int {
	if i, ok := c.srcIdx[name]; ok {
		return i
	}
	i := len(c.srcIdx)
	c.srcIdx[name] = i
	return i
}

func (c *compiler) fnByName(name string) (*cfn, error) {
	if f, ok := c.fns[name]; ok {
		return f, nil
	}
	fn, ok := c.prog.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("compile: unknown function %q", name)
	}
	return c.fn(fn)
}

func (c *compiler) fn(fn *ir.Func) (*cfn, error) {
	if f, ok := c.fns[fn.Name]; ok {
		return f, nil
	}
	f := &cfn{name: fn.Name, nslots: fn.NumSlots()}
	for _, p := range fn.Params {
		f.params = append(f.params, p.Slot)
	}
	// Memoize before compiling the body so recursive calls terminate.
	c.fns[fn.Name] = f
	body, err := c.block(fn, fn.Body)
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (c *compiler) block(fn *ir.Func, body []ir.Stmt) ([]step, error) {
	steps := make([]step, 0, len(body))
	for i := 0; i < len(body); i++ {
		if i+1 < len(body) {
			if st, ok := c.fusedPair(fn, body[i], body[i+1]); ok {
				steps = append(steps, st)
				i++
				continue
			}
		}
		st, err := c.stmt(fn, body[i])
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// fusedPair is the one superinstruction of this backend: an 8-byte
// native read (const-offset field or array element) immediately
// followed by a float add — the load/accumulate idiom of every scan and
// fold kernel — collapses into a single closure, saving one indirect
// dispatch per pair. The fused step still calls CheckStep between its
// two halves, so step budgets and cancellation granularity are
// indistinguishable from the unfused sequence; the read's temp slot is
// written before the add reads its operands, so no dataflow condition
// is needed for soundness. Any fast-path miss replays the exact unfused
// slow sequence, keeping the fault/abort surface identical.
func (c *compiler) fusedPair(fn *ir.Func, s1, s2 ir.Stmt) (step, bool) {
	add, ok := s2.(*ir.BinOp)
	if !ok || add.Op != ir.OpAdd {
		return nil, false
	}
	isF := isFloatKind(add.Dst.Type.Kind)
	name := fn.Name
	d, l, r := add.Dst.Slot, add.L.Slot, add.R.Slot
	switch rd := s1.(type) {
	case *ir.ReadNative:
		if !rd.Off.IsConst() || (rd.Size != 8 && rd.Size != 4) {
			return nil, false
		}
		c.steps += 2
		tdst, base, off, sz := rd.Dst.Slot, rd.Base.Slot, rd.Off.Const, rd.Size
		return func(m *mach, sl []int64) error {
			ba := sl[base]
			if ba>>32 == m.regID {
				b := m.reg.Bytes()
				o := int(uint32(ba)) + int(off)
				if uint(o)+uint(sz) <= uint(len(b)) {
					sl[tdst] = load(b, o, sz)
					if err := m.env.CheckStep(name); err != nil {
						return err
					}
					if isF {
						sl[d] = fbits(f64(sl[l]) + f64(sl[r]))
					} else {
						sl[d] = sl[l] + sl[r]
					}
					return nil
				}
			}
			if err := constReadSlow(m, sl, tdst, ba, off, sz); err != nil {
				return err
			}
			if err := m.env.CheckStep(name); err != nil {
				return err
			}
			if isF {
				sl[d] = fbits(f64(sl[l]) + f64(sl[r]))
			} else {
				sl[d] = sl[l] + sl[r]
			}
			return nil
		}, true

	case *ir.ReadNativeElem:
		if rd.Kind.Size() != 8 {
			return nil, false
		}
		c.steps += 2
		tdst, base, idx := rd.Dst.Slot, rd.Base.Slot, rd.Idx.Slot
		return func(m *mach, sl []int64) error {
			ba, i := sl[base], sl[idx]
			if ba>>32 == m.regID {
				b := m.reg.Bytes()
				o := int(uint32(ba))
				if uint(o)+4 <= uint(len(b)) {
					n := int64(int32(binary.LittleEndian.Uint32(b[o:])))
					if i >= 0 && i < n {
						eo := o + 4 + int(i)*8
						if uint(eo)+8 <= uint(len(b)) {
							sl[tdst] = int64(binary.LittleEndian.Uint64(b[eo:]))
							if err := m.env.CheckStep(name); err != nil {
								return err
							}
							if isF {
								sl[d] = fbits(f64(sl[l]) + f64(sl[r]))
							} else {
								sl[d] = sl[l] + sl[r]
							}
							return nil
						}
					}
				}
			}
			if err := elemReadSlow(m, sl, tdst, ba, i, 8); err != nil {
				return err
			}
			if err := m.env.CheckStep(name); err != nil {
				return err
			}
			if isF {
				sl[d] = fbits(f64(sl[l]) + f64(sl[r]))
			} else {
				sl[d] = sl[l] + sl[r]
			}
			return nil
		}, true
	}
	return nil, false
}

var noop step = func(*mach, []int64) error { return nil }

func (c *compiler) stmt(fn *ir.Func, s ir.Stmt) (step, error) {
	c.steps++
	switch t := s.(type) {
	case *ir.ConstInt:
		dst, v := t.Dst.Slot, t.Val
		return func(_ *mach, sl []int64) error { sl[dst] = v; return nil }, nil

	case *ir.ConstFloat:
		dst, v := t.Dst.Slot, int64(math.Float64bits(t.Val))
		return func(_ *mach, sl []int64) error { sl[dst] = v; return nil }, nil

	case *ir.Assign:
		dst, src := t.Dst.Slot, t.Src.Slot
		return func(_ *mach, sl []int64) error { sl[dst] = sl[src]; return nil }, nil

	case *ir.BinOp:
		return c.binop(t)

	case *ir.UnOp:
		return c.unop(t)

	case *ir.If:
		cond := compileCond(t.Cond)
		then, err := c.block(fn, t.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.block(fn, t.Else)
		if err != nil {
			return nil, err
		}
		name := fn.Name
		return func(m *mach, sl []int64) error {
			body := then
			if !cond(sl) {
				body = els
			}
			env := m.env
			for _, st := range body {
				if err := env.CheckStep(name); err != nil {
					return err
				}
				if err := st(m, sl); err != nil {
					return err
				}
			}
			return nil
		}, nil

	case *ir.While:
		cond := compileCond(t.Cond)
		body, err := c.block(fn, t.Body)
		if err != nil {
			return nil, err
		}
		name := fn.Name
		// The block loop is inlined here (vs calling runSteps) to shave
		// a call per iteration off the hottest loop in every driver.
		return func(m *mach, sl []int64) error {
			env := m.env
			for cond(sl) {
				if err := env.CheckStep(name); err != nil {
					return err
				}
				for _, st := range body {
					if err := env.CheckStep(name); err != nil {
						return err
					}
					if err := st(m, sl); err != nil {
						return err
					}
				}
			}
			return nil
		}, nil

	case *ir.Return:
		if t.Val == nil {
			return func(m *mach, _ []int64) error { m.ret.val = 0; return &m.ret }, nil
		}
		v := t.Val.Slot
		return func(m *mach, sl []int64) error { m.ret.val = sl[v]; return &m.ret }, nil

	case *ir.Call:
		callee, err := c.fnByName(t.Fn)
		if err != nil {
			return nil, err
		}
		argSlots := make([]int, len(t.Args))
		for i, a := range t.Args {
			argSlots[i] = a.Slot
		}
		dst := -1
		if t.Dst != nil {
			dst = t.Dst.Slot
		}
		return func(m *mach, sl []int64) error {
			args := make([]int64, len(argSlots))
			for i, s := range argSlots {
				args[i] = sl[s]
			}
			v, err := callFn(m, callee, args)
			if err != nil {
				return err
			}
			if dst >= 0 {
				sl[dst] = v
			}
			return nil
		}, nil

	case *ir.Abort:
		// The guard's error value is built once at compile time; firing
		// it is a pointer return.
		errv := &interp.AbortError{Reason: t.Reason}
		return func(*mach, []int64) error { return errv }, nil

	case *ir.MonitorEnter, *ir.MonitorExit:
		// Per-executor lock no-ops, but they still cost one interpreter
		// step; keep the step so budgets match across backends.
		return noop, nil

	// ---- native-mode statements ----

	case *ir.GetAddress:
		dst := t.Dst.Slot
		idx := c.sourceIndex(t.Source)
		name := t.Source
		return func(m *mach, sl []int64) error {
			src := m.srcs[idx]
			if src == nil {
				// Run pre-binds every source; nil means the env really
				// lacks it (matching the interpreter's error).
				return fmt.Errorf("interp: no native source %q", name)
			}
			addr, err := m.env.FetchRecord(src)
			if err != nil {
				return err
			}
			sl[dst] = addr
			return nil
		}, nil

	case *ir.ReadNative:
		dst, base, size := t.Dst.Slot, t.Base.Slot, t.Size
		if t.Off.IsConst() {
			return constReadStep(dst, base, t.Off.Const, size), nil
		}
		off := t.Off
		return func(m *mach, sl []int64) error {
			b := sl[base]
			o, err := m.env.ResolveOffset(b, off)
			if err != nil {
				return err
			}
			sl[dst] = m.env.Arena.ReadNative(b, o, size)
			return nil
		}, nil

	case *ir.WriteNative:
		base, src, size := t.Base.Slot, t.Src.Slot, t.Size
		if t.Off.IsConst() {
			return constWriteStep(base, src, t.Off.Const, size), nil
		}
		off := t.Off
		return func(m *mach, sl []int64) error {
			return m.env.WriteNativeOff(sl[base], off, size, sl[src])
		}, nil

	case *ir.ReadNativeElem:
		return elemReadStep(t.Dst.Slot, t.Base.Slot, t.Idx.Slot, t.Kind.Size()), nil

	case *ir.WriteNativeElem:
		return elemWriteStep(t.Base.Slot, t.Idx.Slot, t.Src.Slot, t.Kind.Size()), nil

	case *ir.AddrOf:
		dst, base := t.Dst.Slot, t.Base.Slot
		if t.Off.IsConst() {
			off := t.Off.Const
			return func(_ *mach, sl []int64) error {
				sl[dst] = sl[base] + off
				return nil
			}, nil
		}
		off := t.Off
		return func(m *mach, sl []int64) error {
			b := sl[base]
			o, err := m.env.ResolveOffset(b, off)
			if err != nil {
				return err
			}
			sl[dst] = b + o
			return nil
		}, nil

	case *ir.AddrElem:
		dst, base, idx, stride := t.Dst.Slot, t.Base.Slot, t.Idx.Slot, t.Stride
		return func(_ *mach, sl []int64) error {
			sl[dst] = sl[base] + 4 + sl[idx]*stride
			return nil
		}, nil

	case *ir.ScanElem:
		dst, base, idx, class := t.Dst.Slot, t.Base.Slot, t.Idx.Slot, t.Class
		return func(m *mach, sl []int64) error {
			a, err := m.env.ScanElem(sl[base], sl[idx], class)
			if err != nil {
				return err
			}
			sl[dst] = a
			return nil
		}, nil

	case *ir.AppendRecord:
		dst, class := t.Dst.Slot, t.Class
		return func(m *mach, sl []int64) error {
			a, err := m.env.AppendRecord(class)
			if err != nil {
				return err
			}
			sl[dst] = a
			return nil
		}, nil

	case *ir.AppendArray:
		dst, ln, elem := t.Dst.Slot, t.Len.Slot, t.Elem
		return func(m *mach, sl []int64) error {
			a, err := m.env.AppendArray(elem, sl[ln])
			if err != nil {
				return err
			}
			sl[dst] = a
			return nil
		}, nil

	case *ir.GConstString:
		dst, val := t.Dst.Slot, t.Val
		return func(m *mach, sl []int64) error {
			a, err := m.env.AppendString(val)
			if err != nil {
				return err
			}
			sl[dst] = a
			return nil
		}, nil

	case *ir.CheckInline:
		base, sub, off := t.Base.Slot, t.Sub.Slot, t.Off
		return func(m *mach, sl []int64) error {
			return m.env.CheckInlinePlacement(sl[base], sl[sub], off)
		}, nil

	case *ir.GWriteObject:
		src, class := t.Src.Slot, interp.RecordClass(t.Src.Type)
		return func(m *mach, sl []int64) error {
			return m.env.GWriteClass(class, sl[src])
		}, nil

	case *ir.GEmit:
		src, class := t.Src.Slot, interp.RecordClass(t.Src.Type)
		return func(m *mach, sl []int64) error {
			return m.env.GWriteClass(class, sl[src])
		}, nil

	case *ir.NativeCall:
		return c.nativeCall(t)

	default:
		// Everything else needs the managed heap (Deserialize, New,
		// FieldLoad/Store, Array*, ConstString, Serialize, Emit): decline
		// the whole driver so the engine interprets it instead.
		return nil, fmt.Errorf("compile: unsupported statement %T (heap path)", s)
	}
}

// nativeCall lowers each whitelisted native method to its specific
// operation at compile time, skipping the per-call name dispatch.
func (c *compiler) nativeCall(t *ir.NativeCall) (step, error) {
	recv := t.Recv.Slot
	dst := -1
	if t.Dst != nil {
		dst = t.Dst.Slot
	}
	setDst := func(sl []int64, v int64) {
		if dst >= 0 {
			sl[dst] = v
		}
	}
	switch t.Name {
	case "clone":
		// Immutable records: alias.
		return func(_ *mach, sl []int64) error {
			setDst(sl, sl[recv])
			return nil
		}, nil
	case "length":
		return func(m *mach, sl []int64) error {
			setDst(sl, m.env.Arena.ReadNative(sl[recv], 0, 4))
			return nil
		}, nil
	case "charAt":
		if len(t.Args) != 1 {
			return nil, fmt.Errorf("compile: charAt expects 1 arg")
		}
		arg := t.Args[0].Slot
		return func(m *mach, sl []int64) error {
			r, i := sl[recv], sl[arg]
			if err := m.env.NativeBounds(r, i); err != nil {
				return err
			}
			setDst(sl, m.env.Arena.ReadNative(r, 4+2*i, 2))
			return nil
		}, nil
	case "hashCode":
		cls := t.RecvClass
		return func(m *mach, sl []int64) error {
			v, err := m.env.NativeHash(cls, sl[recv])
			if err != nil {
				return err
			}
			setDst(sl, v)
			return nil
		}, nil
	case "equals":
		if len(t.Args) != 1 {
			return nil, fmt.Errorf("compile: equals expects 1 arg")
		}
		cls := t.RecvClass
		arg := t.Args[0].Slot
		return func(m *mach, sl []int64) error {
			v, err := m.env.NativeEquals(cls, sl[recv], sl[arg])
			if err != nil {
				return err
			}
			setDst(sl, v)
			return nil
		}, nil
	case "splitToWordCounts":
		return func(m *mach, sl []int64) error {
			if err := m.env.SplitToWordCounts(sl[recv]); err != nil {
				return err
			}
			setDst(sl, 0)
			return nil
		}, nil
	default:
		// The interpreter aborts only if the call executes; preserve
		// that by failing at run time, not compile time.
		errv := &interp.AbortError{Reason: "native method " + t.Name + " over inlined bytes"}
		return func(*mach, []int64) error { return errv }, nil
	}
}

// ---- pre-bound arena accessors ----
//
// The size-specialized steps below read/write region bytes directly
// when the access is fully in bounds; anything else — a wild address,
// a freed region, an out-of-range offset, a write that must grow the
// region — takes the generic Env/Arena path, which raises exactly the
// fault or abort the interpreter would. Sign extension matches the
// arena's readLE (sub-8-byte loads sign-extend like JVM int loads).

func load(b []byte, o, sz int) int64 {
	switch sz {
	case 1:
		return int64(int8(b[o]))
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(b[o:])))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(b[o:])))
	default:
		return int64(binary.LittleEndian.Uint64(b[o:]))
	}
}

func store(b []byte, o, sz int, v int64) {
	switch sz {
	case 1:
		b[o] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b[o:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b[o:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(b[o:], uint64(v))
	}
}

// constReadStep lowers a constant-offset ReadNative: cached region
// resolution plus a direct load, size-specialized so the common 8- and
// 4-byte accesses compile to a single unaligned load.
func constReadStep(dst, base int, off int64, sz int) step {
	switch sz {
	case 8:
		// The region-match check is open-coded (vs calling bytesAt,
		// which is over the inlining budget) so the hot read is
		// branch + load with no call.
		return func(m *mach, sl []int64) error {
			ba := sl[base]
			if ba>>32 == m.regID {
				b := m.reg.Bytes()
				o := int(uint32(ba)) + int(off)
				if uint(o)+8 <= uint(len(b)) {
					sl[dst] = int64(binary.LittleEndian.Uint64(b[o:]))
					return nil
				}
			}
			return constReadSlow(m, sl, dst, ba, off, sz)
		}
	case 4:
		return func(m *mach, sl []int64) error {
			ba := sl[base]
			if ba>>32 == m.regID {
				b := m.reg.Bytes()
				o := int(uint32(ba)) + int(off)
				if uint(o)+4 <= uint(len(b)) {
					sl[dst] = int64(int32(binary.LittleEndian.Uint32(b[o:])))
					return nil
				}
			}
			return constReadSlow(m, sl, dst, ba, off, sz)
		}
	}
	return func(m *mach, sl []int64) error {
		ba := sl[base]
		if ba>>32 == m.regID {
			b := m.reg.Bytes()
			o := int(uint32(ba)) + int(off)
			if uint(o)+uint(sz) <= uint(len(b)) {
				sl[dst] = load(b, o, sz)
				return nil
			}
		}
		return constReadSlow(m, sl, dst, ba, off, sz)
	}
}

// constReadSlow re-binds the region (faulting on wild/freed addresses
// exactly like the interpreter's access) and retries; a genuinely
// out-of-range read falls through to the generic arena path so its
// fault is byte-identical to the interpreter's.
func constReadSlow(m *mach, sl []int64, dst int, ba, off int64, sz int) error {
	b, o := m.bytesAtSlow(ba)
	o += int(off)
	if uint(o)+uint(sz) <= uint(len(b)) {
		sl[dst] = load(b, o, sz)
		return nil
	}
	sl[dst] = m.env.Arena.ReadNative(ba, off, sz)
	return nil
}

// constWriteStep lowers a constant-offset WriteNative. In-place when
// the target bytes exist; the grow-the-region case falls back to the
// generic write.
func constWriteStep(base, src int, off int64, sz int) step {
	return func(m *mach, sl []int64) error {
		ba := sl[base]
		b, o := m.bytesAt(ba)
		o += int(off)
		if uint(o)+uint(sz) <= uint(len(b)) {
			store(b, o, sz, sl[src])
			return nil
		}
		m.env.Arena.WriteNative(ba, off, sz, sl[src])
		return nil
	}
}

// elemReadStep lowers ReadNativeElem: the length guard reads the same
// int32 length prefix Env.NativeBounds does, and an out-of-bounds
// index routes through NativeBounds to produce the identical abort.
// The dominant 8-byte (double/long element) case gets its own closure.
func elemReadStep(dst, base, idx int, sz int) step {
	stride := int64(sz)
	if sz == 8 {
		// Region match open-coded like constReadStep: the fold inner
		// loop lives here, so the element read must be call-free.
		return func(m *mach, sl []int64) error {
			ba, i := sl[base], sl[idx]
			if ba>>32 == m.regID {
				b := m.reg.Bytes()
				o := int(uint32(ba))
				if uint(o)+4 <= uint(len(b)) {
					n := int64(int32(binary.LittleEndian.Uint32(b[o:])))
					if i < 0 || i >= n {
						return m.env.NativeBounds(ba, i)
					}
					eo := o + 4 + int(i)*8
					if uint(eo)+8 <= uint(len(b)) {
						sl[dst] = int64(binary.LittleEndian.Uint64(b[eo:]))
						return nil
					}
				}
			}
			return elemReadSlow(m, sl, dst, ba, i, 8)
		}
	}
	return func(m *mach, sl []int64) error {
		ba, i := sl[base], sl[idx]
		b, o := m.bytesAt(ba)
		if uint(o)+4 <= uint(len(b)) {
			n := int64(int32(binary.LittleEndian.Uint32(b[o:])))
			if i < 0 || i >= n {
				return m.env.NativeBounds(ba, i)
			}
			eo := o + 4 + int(i*stride)
			if uint(eo)+uint(sz) <= uint(len(b)) {
				sl[dst] = load(b, eo, sz)
				return nil
			}
		}
		if err := m.env.NativeBounds(ba, i); err != nil {
			return err
		}
		sl[dst] = m.env.Arena.ReadNative(ba, 4+i*stride, sz)
		return nil
	}
}

// elemReadSlow re-binds the region and retries the element read; bounds
// violations and genuinely short regions route through NativeBounds and
// the generic arena read so the abort/fault surface matches the
// interpreter exactly.
func elemReadSlow(m *mach, sl []int64, dst int, ba, i int64, sz int) error {
	b, o := m.bytesAtSlow(ba)
	stride := int64(sz)
	if uint(o)+4 <= uint(len(b)) {
		n := int64(int32(binary.LittleEndian.Uint32(b[o:])))
		if i < 0 || i >= n {
			return m.env.NativeBounds(ba, i)
		}
		eo := o + 4 + int(i*stride)
		if uint(eo)+uint(sz) <= uint(len(b)) {
			sl[dst] = load(b, eo, sz)
			return nil
		}
	}
	if err := m.env.NativeBounds(ba, i); err != nil {
		return err
	}
	sl[dst] = m.env.Arena.ReadNative(ba, 4+i*stride, sz)
	return nil
}

// elemWriteStep lowers WriteNativeElem with the same guard shape.
func elemWriteStep(base, idx, src int, sz int) step {
	stride := int64(sz)
	return func(m *mach, sl []int64) error {
		ba, i := sl[base], sl[idx]
		b, o := m.bytesAt(ba)
		if uint(o)+4 <= uint(len(b)) {
			n := int64(int32(binary.LittleEndian.Uint32(b[o:])))
			if i < 0 || i >= n {
				return m.env.NativeBounds(ba, i)
			}
			eo := o + 4 + int(i*stride)
			if uint(eo)+uint(sz) <= uint(len(b)) {
				store(b, eo, sz, sl[src])
				return nil
			}
		}
		if err := m.env.NativeBounds(ba, i); err != nil {
			return err
		}
		m.env.Arena.WriteNative(ba, 4+i*stride, sz, sl[src])
		return nil
	}
}

func isFloatKind(k model.Kind) bool {
	return k == model.KindDouble || k == model.KindFloat
}

func f64(x int64) float64  { return math.Float64frombits(uint64(x)) }
func fbits(f float64) int64 { return int64(math.Float64bits(f)) }

// compileCond pre-selects the comparison (float by the left operand's
// kind, mirroring interp.cond) into a branch-free-to-dispatch closure.
func compileCond(cd ir.Cond) func(sl []int64) bool {
	l, r := cd.L.Slot, cd.R.Slot
	if isFloatKind(cd.L.Type.Kind) {
		switch cd.Op {
		case ir.CmpEQ:
			return func(sl []int64) bool { return f64(sl[l]) == f64(sl[r]) }
		case ir.CmpNE:
			return func(sl []int64) bool { return f64(sl[l]) != f64(sl[r]) }
		case ir.CmpLT:
			return func(sl []int64) bool { return f64(sl[l]) < f64(sl[r]) }
		case ir.CmpLE:
			return func(sl []int64) bool { return f64(sl[l]) <= f64(sl[r]) }
		case ir.CmpGT:
			return func(sl []int64) bool { return f64(sl[l]) > f64(sl[r]) }
		default:
			return func(sl []int64) bool { return f64(sl[l]) >= f64(sl[r]) }
		}
	}
	switch cd.Op {
	case ir.CmpEQ:
		return func(sl []int64) bool { return sl[l] == sl[r] }
	case ir.CmpNE:
		return func(sl []int64) bool { return sl[l] != sl[r] }
	case ir.CmpLT:
		return func(sl []int64) bool { return sl[l] < sl[r] }
	case ir.CmpLE:
		return func(sl []int64) bool { return sl[l] <= sl[r] }
	case ir.CmpGT:
		return func(sl []int64) bool { return sl[l] > sl[r] }
	default:
		return func(sl []int64) bool { return sl[l] >= sl[r] }
	}
}

// binop pre-selects the operator and float/int interpretation (by the
// destination's kind, mirroring interp.binop) at compile time.
func (c *compiler) binop(t *ir.BinOp) (step, error) {
	dst, l, r := t.Dst.Slot, t.L.Slot, t.R.Slot
	if isFloatKind(t.Dst.Type.Kind) {
		switch t.Op {
		case ir.OpAdd:
			return func(_ *mach, sl []int64) error { sl[dst] = fbits(f64(sl[l]) + f64(sl[r])); return nil }, nil
		case ir.OpSub:
			return func(_ *mach, sl []int64) error { sl[dst] = fbits(f64(sl[l]) - f64(sl[r])); return nil }, nil
		case ir.OpMul:
			return func(_ *mach, sl []int64) error { sl[dst] = fbits(f64(sl[l]) * f64(sl[r])); return nil }, nil
		case ir.OpDiv:
			return func(_ *mach, sl []int64) error { sl[dst] = fbits(f64(sl[l]) / f64(sl[r])); return nil }, nil
		case ir.OpMin:
			return func(_ *mach, sl []int64) error {
				sl[dst] = fbits(math.Min(f64(sl[l]), f64(sl[r])))
				return nil
			}, nil
		case ir.OpMax:
			return func(_ *mach, sl []int64) error {
				sl[dst] = fbits(math.Max(f64(sl[l]), f64(sl[r])))
				return nil
			}, nil
		default:
			return nil, fmt.Errorf("compile: float binop %s unsupported", t.Op)
		}
	}
	switch t.Op {
	case ir.OpAdd:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] + sl[r]; return nil }, nil
	case ir.OpSub:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] - sl[r]; return nil }, nil
	case ir.OpMul:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] * sl[r]; return nil }, nil
	case ir.OpDiv:
		return func(_ *mach, sl []int64) error {
			if sl[r] == 0 {
				return fmt.Errorf("interp: integer division by zero")
			}
			sl[dst] = sl[l] / sl[r]
			return nil
		}, nil
	case ir.OpRem:
		return func(_ *mach, sl []int64) error {
			if sl[r] == 0 {
				return fmt.Errorf("interp: integer remainder by zero")
			}
			sl[dst] = sl[l] % sl[r]
			return nil
		}, nil
	case ir.OpAnd:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] & sl[r]; return nil }, nil
	case ir.OpOr:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] | sl[r]; return nil }, nil
	case ir.OpXor:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] ^ sl[r]; return nil }, nil
	case ir.OpShl:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] << uint(sl[r]&63); return nil }, nil
	case ir.OpShr:
		return func(_ *mach, sl []int64) error { sl[dst] = sl[l] >> uint(sl[r]&63); return nil }, nil
	case ir.OpMin:
		return func(_ *mach, sl []int64) error {
			if sl[l] < sl[r] {
				sl[dst] = sl[l]
			} else {
				sl[dst] = sl[r]
			}
			return nil
		}, nil
	case ir.OpMax:
		return func(_ *mach, sl []int64) error {
			if sl[l] > sl[r] {
				sl[dst] = sl[l]
			} else {
				sl[dst] = sl[r]
			}
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("compile: binop %s unsupported", t.Op)
	}
}

// unop pre-selects the unary operator; float interpretation follows
// interp.unop exactly (Neg by Dst kind, Abs by Dst==double, transcendental
// input conversion by X's kind).
func (c *compiler) unop(t *ir.UnOp) (step, error) {
	dst, x := t.Dst.Slot, t.X.Slot
	xFloat := isFloatKind(t.X.Type.Kind)
	toF := func(v int64) float64 {
		if xFloat {
			return f64(v)
		}
		return float64(v)
	}
	switch t.Op {
	case ir.OpNeg:
		if isFloatKind(t.Dst.Type.Kind) {
			return func(_ *mach, sl []int64) error { sl[dst] = fbits(-f64(sl[x])); return nil }, nil
		}
		return func(_ *mach, sl []int64) error { sl[dst] = -sl[x]; return nil }, nil
	case ir.OpNot:
		return func(_ *mach, sl []int64) error { sl[dst] = ^sl[x]; return nil }, nil
	case ir.OpI2D:
		return func(_ *mach, sl []int64) error { sl[dst] = fbits(float64(sl[x])); return nil }, nil
	case ir.OpD2I:
		return func(_ *mach, sl []int64) error { sl[dst] = int64(f64(sl[x])); return nil }, nil
	case ir.OpAbs:
		if t.Dst.Type.Kind == model.KindDouble {
			return func(_ *mach, sl []int64) error { sl[dst] = fbits(math.Abs(f64(sl[x]))); return nil }, nil
		}
		return func(_ *mach, sl []int64) error {
			v := sl[x]
			if v < 0 {
				v = -v
			}
			sl[dst] = v
			return nil
		}, nil
	case ir.OpSqrt:
		return func(_ *mach, sl []int64) error { sl[dst] = fbits(math.Sqrt(toF(sl[x]))); return nil }, nil
	case ir.OpExp:
		return func(_ *mach, sl []int64) error { sl[dst] = fbits(math.Exp(toF(sl[x]))); return nil }, nil
	case ir.OpLog:
		return func(_ *mach, sl []int64) error { sl[dst] = fbits(math.Log(toF(sl[x]))); return nil }, nil
	default:
		// The interpreter yields 0 for unknown unary ops; match it.
		return func(_ *mach, sl []int64) error { sl[dst] = 0; return nil }, nil
	}
}
