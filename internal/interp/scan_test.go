package interp

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/dsa"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
)

// accountProgram builds a schema with a variable-size-element tail array
// (Account.posts, String elements) to exercise ScanElem and the schema
// walk for non-linear record sizes.
func accountProgram(t *testing.T) (*ir.Program, *dsa.Result, *serde.Codec) {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Account", Fields: []model.FieldDef{
		{Name: "user", Type: model.Prim(model.KindLong)},
		{Name: "posts", Type: model.ArrayOf(model.Object(model.StringClassName))},
	}})
	reg.Define(model.ClassDef{Name: "Out", Fields: []model.FieldDef{
		{Name: "user", Type: model.Prim(model.KindLong)},
		{Name: "lenLast", Type: model.Prim(model.KindLong)},
		{Name: "firstEqLast", Type: model.Prim(model.KindLong)},
		{Name: "hash", Type: model.Prim(model.KindLong)},
	}})
	layouts := dsa.Analyze(reg, []string{"Account", "Out"})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Account", "Out"}
	return prog, layouts, serde.NewCodec(reg, layouts)
}

// TestScanElemAndNativesAgreeAcrossModes drives random access into a
// variable-size-element array (ScanElem with the sequential cursor) plus
// the whitelisted natives (length, equals, hashCode, clone) and compares
// both modes.
func TestScanElemAndNativesAgreeAcrossModes(t *testing.T) {
	prog, layouts, c := accountProgram(t)
	long := model.Prim(model.KindLong)

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("Account"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		user := b.Load(rec, "user")
		posts := b.Load(rec, "posts")
		n := b.Len(posts)
		one := b.IConst(1)
		lastIdx := b.Bin(ir.OpSub, n, one)
		first := b.Elem(posts, zero)
		last := b.Elem(posts, lastIdx) // ScanElem walks the tail array
		firstC := b.Native("clone", model.Object(model.StringClassName), first)
		lenLast := b.Native("length", long, last)
		eq := b.Native("equals", long, firstC, last)
		h := b.Native("hashCode", long, last)
		out := b.New("Out")
		b.Store(out, "user", user)
		b.Store(out, "lenLast", lenLast)
		b.Store(out, "firstEqLast", eq)
		b.Store(out, "hash", h)
		b.WriteRecord("out", out)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	var input []byte
	var err error
	for _, posts := range [][]string{
		{"alpha", "beta", "gamma-longer"},
		{"same", "same"},
		{"solo"},
	} {
		input, err = c.Encode("Account", serde.Obj{"user": int64(len(posts)), "posts": posts}, input)
		if err != nil {
			t.Fatal(err)
		}
	}

	heapOut := runHeap(t, prog, layouts, c, prog.Fn("driver"), input, "Account")
	native := gerenukTransform(t, prog, layouts, "driver")
	nativeOut, err := runNative(t, prog, layouts, native, input, "Account")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heapOut, nativeOut) {
		t.Fatalf("scan/native results differ:\n heap   %x\n native %x", heapOut, nativeOut)
	}
	v, _, err := c.Decode("Out", heapOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := v.(serde.Obj)
	if o["lenLast"] != int64(len("gamma-longer")) {
		t.Errorf("lenLast = %v", o["lenLast"])
	}
	if o["firstEqLast"] != int64(0) {
		t.Errorf("alpha == gamma-longer reported true")
	}
	// Record 2: identical first/last strings.
	v2, _, err := c.Decode("Out", heapOut, serde.RecordSize(heapOut, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v2.(serde.Obj)["firstEqLast"] != int64(1) {
		t.Errorf("same == same reported false")
	}
}

// TestPassThroughVariableSizeRecord exercises gWriteObject's byte-copy on
// records whose size is only known from the prefix.
func TestPassThroughVariableSizeRecord(t *testing.T) {
	prog, layouts, c := accountProgram(t)
	b := ir.NewFuncBuilder(prog, "ident", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("Account"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	var input []byte
	var err error
	input, err = c.Encode("Account", serde.Obj{"user": int64(9), "posts": []string{"x", "yy", "zzz"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	native := gerenukTransform(t, prog, layouts, "ident")
	out, err := runNative(t, prog, layouts, native, input, "Account")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, input) {
		t.Fatalf("pass-through altered a variable-size record")
	}
}

// TestScanElemOutOfBoundsAborts: a genuinely bad index aborts the
// speculation instead of reading a neighboring record's bytes.
func TestScanElemOutOfBoundsAborts(t *testing.T) {
	prog, layouts, c := accountProgram(t)
	long := model.Prim(model.KindLong)
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("Account"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		posts := b.Load(rec, "posts")
		bad := b.IConst(99)
		s := b.Elem(posts, bad)
		n := b.Native("length", long, s)
		_ = n
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	input, err := c.Encode("Account", serde.Obj{"user": int64(1), "posts": []string{"a"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	native := gerenukTransform(t, prog, layouts, "driver")
	_, err = runNative(t, prog, layouts, native, input, "Account")
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("out-of-bounds scan did not abort: %v", err)
	}
}
