package interp

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/dsa"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/transform"
)

// TestDifferentialRandomUDFs is the speculation-safety property from
// DESIGN.md: for randomly generated record-processing UDFs — including
// out-of-order record construction, which exercises the section 3.6
// deferred-offset machinery — the transformed native execution either
// produces byte-identical output to the heap execution or aborts. It
// must never produce a *wrong* answer.
func TestDifferentialRandomUDFs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))

		reg := model.NewRegistry()
		reg.Define(model.ClassDef{Name: "In", Fields: []model.FieldDef{
			{Name: "a", Type: model.Prim(model.KindLong)},
			{Name: "xs", Type: model.ArrayOf(model.Prim(model.KindDouble))},
			{Name: "b", Type: model.Prim(model.KindDouble)},
		}})
		reg.Define(model.ClassDef{Name: "Out", Fields: []model.FieldDef{
			{Name: "p", Type: model.Prim(model.KindLong)},
			{Name: "ys", Type: model.ArrayOf(model.Prim(model.KindDouble))},
			{Name: "q", Type: model.Prim(model.KindDouble)},
		}})
		layouts := dsa.Analyze(reg, []string{"In", "Out"})
		codec := serde.NewCodec(reg, layouts)
		prog := ir.NewProgram(reg)
		prog.TopTypes = []string{"In", "Out"}

		// Random UDF: compute values from the input, then construct Out
		// with a randomly permuted store order (p, q, ys creation, ys
		// element writes in random positions relative to each other).
		b := ir.NewFuncBuilder(prog, "udf", model.Type{})
		rec := b.Param("rec", model.Object("In"))
		a := b.Load(rec, "a")
		bf := b.Load(rec, "b")
		xs := b.Load(rec, "xs")
		n := b.Len(xs)
		af := b.Un(ir.OpI2D, a)
		sum := b.Local("sum", model.Prim(model.KindDouble))
		b.Emit(&ir.ConstFloat{Dst: sum, Val: 0})
		b.For(n, func(i *ir.Var) {
			x := b.Elem(xs, i)
			b.BinTo(sum, ir.OpAdd, sum, x)
		})
		q := b.Bin(ir.OpMul, sum, bf)
		p := b.Un(ir.OpD2I, af)

		out := b.New("Out")
		var arr *ir.Var
		mkArr := func() {
			arr = b.NewArr(model.Prim(model.KindDouble), n)
			b.For(n, func(i *ir.Var) {
				x := b.Elem(xs, i)
				d := b.Bin(ir.OpAdd, x, q)
				b.SetElem(arr, i, d)
			})
		}
		steps := []func(){
			func() { b.Store(out, "p", p) },
			func() { b.Store(out, "q", q) },
			mkArr,
		}
		r.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
		for _, s := range steps {
			s()
		}
		b.Store(out, "ys", arr)
		b.EmitRecord(out)
		b.Ret(nil)
		b.Done()

		// Driver.
		db := ir.NewFuncBuilder(prog, "driver", model.Type{})
		zero := db.IConst(0)
		drec := db.Local("rec", model.Object("In"))
		db.Emit(&ir.Deserialize{Dst: drec, Source: "in"})
		db.While(ir.CmpNE, drec, zero, func() {
			db.CallV("udf", drec)
			db.Emit(&ir.Deserialize{Dst: drec, Source: "in"})
		})
		db.Ret(nil)
		db.Done()

		// Random input records.
		var input []byte
		var err error
		for i := 0; i < 1+r.Intn(5); i++ {
			m := r.Intn(4)
			xsv := make([]float64, m)
			for j := range xsv {
				xsv[j] = float64(r.Intn(50)) / 2
			}
			input, err = codec.Encode("In", serde.Obj{
				"a": int64(r.Intn(100)), "b": float64(r.Intn(10)), "xs": xsv,
			}, input)
			if err != nil {
				t.Logf("seed %d: encode: %v", seed, err)
				return false
			}
		}

		heapOut := runHeap(t, prog, layouts, codec, prog.Fn("driver"), input, "In")

		ser, err := analysis.AnalyzeSER(prog, layouts, "driver")
		if err != nil || !ser.Transformable {
			t.Logf("seed %d: analysis: %v / %v", seed, err, ser)
			return false
		}
		xf, err := transform.Transform(prog, layouts, ser)
		if err != nil {
			t.Logf("seed %d: transform: %v", seed, err)
			return false
		}
		nativeOut, err := runNative(t, prog, layouts, xf.Native, input, "In")
		if err != nil {
			if errors.Is(err, ErrAbort) {
				return true // aborting is always a safe outcome
			}
			t.Logf("seed %d: native error: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(heapOut, nativeOut) {
			t.Logf("seed %d: outputs differ\nheap   %x\nnative %x", seed, heapOut, nativeOut)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestInterpOperators pins down arithmetic and comparison semantics.
func TestInterpOperators(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	long := model.Prim(model.KindLong)
	dbl := model.Prim(model.KindDouble)

	cases := []struct {
		name  string
		build func(b *ir.FB) *ir.Var
		want  int64
	}{
		{"add", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpAdd, b.IConst(3), b.IConst(4)) }, 7},
		{"sub", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpSub, b.IConst(3), b.IConst(4)) }, -1},
		{"mul", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpMul, b.IConst(-3), b.IConst(4)) }, -12},
		{"div", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpDiv, b.IConst(9), b.IConst(2)) }, 4},
		{"rem", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpRem, b.IConst(9), b.IConst(4)) }, 1},
		{"min", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpMin, b.IConst(9), b.IConst(4)) }, 4},
		{"max", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpMax, b.IConst(9), b.IConst(4)) }, 9},
		{"and", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpAnd, b.IConst(6), b.IConst(3)) }, 2},
		{"or", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpOr, b.IConst(6), b.IConst(3)) }, 7},
		{"xor", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpXor, b.IConst(6), b.IConst(3)) }, 5},
		{"shl", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpShl, b.IConst(3), b.IConst(2)) }, 12},
		{"shr", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpShr, b.IConst(12), b.IConst(2)) }, 3},
		{"neg", func(b *ir.FB) *ir.Var { return b.Un(ir.OpNeg, b.IConst(5)) }, -5},
		{"not", func(b *ir.FB) *ir.Var { return b.Un(ir.OpNot, b.IConst(0)) }, -1},
		{"d2i", func(b *ir.FB) *ir.Var { return b.Un(ir.OpD2I, b.FConst(3.99)) }, 3},
		{"i2d->d2i", func(b *ir.FB) *ir.Var { return b.Un(ir.OpD2I, b.Un(ir.OpI2D, b.IConst(42))) }, 42},
		{"fdiv->d2i", func(b *ir.FB) *ir.Var {
			d := b.Bin(ir.OpDiv, b.FConst(7), b.FConst(2))
			return b.Un(ir.OpD2I, d)
		}, 3},
		{"sqrt", func(b *ir.FB) *ir.Var { return b.Un(ir.OpD2I, b.Un(ir.OpSqrt, b.FConst(16))) }, 4},
	}
	for i, c := range cases {
		name := fmt.Sprintf("op%d_%s", i, c.name)
		b := ir.NewFuncBuilder(prog, name, long)
		v := c.build(b)
		b.Ret(v)
		fn := b.Done()
		env := &Env{Mode: ModeHeap, Prog: prog}
		got, err := New(env).Run(fn)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	_ = dbl
}

func TestInterpDivisionByZero(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	b := ir.NewFuncBuilder(prog, "crash", model.Prim(model.KindLong))
	z := b.IConst(0)
	one := b.IConst(1)
	v := b.Bin(ir.OpDiv, one, z)
	b.Ret(v)
	fn := b.Done()
	if _, err := New(&Env{Mode: ModeHeap, Prog: prog}).Run(fn); err == nil {
		t.Fatalf("integer division by zero did not error")
	}
}

func TestInterpStepLimit(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	b := ir.NewFuncBuilder(prog, "spin", model.Type{})
	one := b.IConst(1)
	two := b.IConst(2)
	b.While(ir.CmpLT, one, two, func() {
		b.IConst(0) // body keeps the loop condition true forever
	})
	b.Ret(nil)
	fn := b.Done()
	env := &Env{Mode: ModeHeap, Prog: prog, MaxSteps: 1000}
	if _, err := New(env).Run(fn); err == nil {
		t.Fatalf("infinite loop not caught by step limit")
	}
}

func TestInterpComparisonSemantics(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	long := model.Prim(model.KindLong)
	// result = (a < b) ? 1 : 0 over doubles including negatives.
	b := ir.NewFuncBuilder(prog, "cmp", long)
	x := b.FConst(-1.5)
	y := b.FConst(-1.0)
	res := b.Local("res", long)
	zero := b.IConst(0)
	one := b.IConst(1)
	b.Assign(res, zero)
	b.If(ir.CmpLT, x, y, func() { b.Assign(res, one) }, nil)
	b.Ret(res)
	fn := b.Done()
	got, err := New(&Env{Mode: ModeHeap, Prog: prog}).Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("-1.5 < -1.0 evaluated false")
	}
}
