package interp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/transform"
)

// TestDifferentialRandomUDFs is the speculation-safety property from
// DESIGN.md: for randomly generated record-processing UDFs — including
// out-of-order record construction, which exercises the section 3.6
// deferred-offset machinery — the transformed native execution either
// produces byte-identical output to the heap execution or aborts. It
// must never produce a *wrong* answer.
func TestDifferentialRandomUDFs(t *testing.T) {
	f := func(seed int64) bool {
		c, err := GenFuzzUDFCase(t, seed)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		heapOut := c.RunHeap(t)

		ser, err := analysis.AnalyzeSER(c.Prog, c.Layouts, "driver")
		if err != nil || !ser.Transformable {
			t.Logf("seed %d: analysis: %v / %v", seed, err, ser)
			return false
		}
		xf, err := transform.Transform(c.Prog, c.Layouts, ser)
		if err != nil {
			t.Logf("seed %d: transform: %v", seed, err)
			return false
		}
		nativeOut, err := runNative(t, c.Prog, c.Layouts, xf.Native, c.Input, "In")
		if err != nil {
			if errors.Is(err, ErrAbort) {
				return true // aborting is always a safe outcome
			}
			t.Logf("seed %d: native error: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(heapOut, nativeOut) {
			t.Logf("seed %d: outputs differ\nheap   %x\nnative %x", seed, heapOut, nativeOut)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestInterpOperators pins down arithmetic and comparison semantics.
func TestInterpOperators(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	long := model.Prim(model.KindLong)
	dbl := model.Prim(model.KindDouble)

	cases := []struct {
		name  string
		build func(b *ir.FB) *ir.Var
		want  int64
	}{
		{"add", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpAdd, b.IConst(3), b.IConst(4)) }, 7},
		{"sub", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpSub, b.IConst(3), b.IConst(4)) }, -1},
		{"mul", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpMul, b.IConst(-3), b.IConst(4)) }, -12},
		{"div", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpDiv, b.IConst(9), b.IConst(2)) }, 4},
		{"rem", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpRem, b.IConst(9), b.IConst(4)) }, 1},
		{"min", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpMin, b.IConst(9), b.IConst(4)) }, 4},
		{"max", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpMax, b.IConst(9), b.IConst(4)) }, 9},
		{"and", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpAnd, b.IConst(6), b.IConst(3)) }, 2},
		{"or", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpOr, b.IConst(6), b.IConst(3)) }, 7},
		{"xor", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpXor, b.IConst(6), b.IConst(3)) }, 5},
		{"shl", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpShl, b.IConst(3), b.IConst(2)) }, 12},
		{"shr", func(b *ir.FB) *ir.Var { return b.Bin(ir.OpShr, b.IConst(12), b.IConst(2)) }, 3},
		{"neg", func(b *ir.FB) *ir.Var { return b.Un(ir.OpNeg, b.IConst(5)) }, -5},
		{"not", func(b *ir.FB) *ir.Var { return b.Un(ir.OpNot, b.IConst(0)) }, -1},
		{"d2i", func(b *ir.FB) *ir.Var { return b.Un(ir.OpD2I, b.FConst(3.99)) }, 3},
		{"i2d->d2i", func(b *ir.FB) *ir.Var { return b.Un(ir.OpD2I, b.Un(ir.OpI2D, b.IConst(42))) }, 42},
		{"fdiv->d2i", func(b *ir.FB) *ir.Var {
			d := b.Bin(ir.OpDiv, b.FConst(7), b.FConst(2))
			return b.Un(ir.OpD2I, d)
		}, 3},
		{"sqrt", func(b *ir.FB) *ir.Var { return b.Un(ir.OpD2I, b.Un(ir.OpSqrt, b.FConst(16))) }, 4},
	}
	for i, c := range cases {
		name := fmt.Sprintf("op%d_%s", i, c.name)
		b := ir.NewFuncBuilder(prog, name, long)
		v := c.build(b)
		b.Ret(v)
		fn := b.Done()
		env := &Env{Mode: ModeHeap, Prog: prog}
		got, err := New(env).Run(fn)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	_ = dbl
}

func TestInterpDivisionByZero(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	b := ir.NewFuncBuilder(prog, "crash", model.Prim(model.KindLong))
	z := b.IConst(0)
	one := b.IConst(1)
	v := b.Bin(ir.OpDiv, one, z)
	b.Ret(v)
	fn := b.Done()
	if _, err := New(&Env{Mode: ModeHeap, Prog: prog}).Run(fn); err == nil {
		t.Fatalf("integer division by zero did not error")
	}
}

func TestInterpStepLimit(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	b := ir.NewFuncBuilder(prog, "spin", model.Type{})
	one := b.IConst(1)
	two := b.IConst(2)
	b.While(ir.CmpLT, one, two, func() {
		b.IConst(0) // body keeps the loop condition true forever
	})
	b.Ret(nil)
	fn := b.Done()
	env := &Env{Mode: ModeHeap, Prog: prog, MaxSteps: 1000}
	if _, err := New(env).Run(fn); err == nil {
		t.Fatalf("infinite loop not caught by step limit")
	}
}

func TestInterpComparisonSemantics(t *testing.T) {
	reg := model.NewRegistry()
	prog := ir.NewProgram(reg)
	long := model.Prim(model.KindLong)
	// result = (a < b) ? 1 : 0 over doubles including negatives.
	b := ir.NewFuncBuilder(prog, "cmp", long)
	x := b.FConst(-1.5)
	y := b.FConst(-1.0)
	res := b.Local("res", long)
	zero := b.IConst(0)
	one := b.IConst(1)
	b.Assign(res, zero)
	b.If(ir.CmpLT, x, y, func() { b.Assign(res, one) }, nil)
	b.Ret(res)
	fn := b.Done()
	got, err := New(&Env{Mode: ModeHeap, Prog: prog}).Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("-1.5 < -1.0 evaluated false")
	}
}
