package interp

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
)

// resolveOffset is Algorithm 1's resolveOffset auxiliary function:
// evaluate a (possibly symbolic) offset expression against a concrete
// record base. During record construction the open builder's deferred
// view is consulted so that offsets behind not-yet-created arrays are
// reported as unresolvable instead of reading garbage.
func (in *Interp) resolveOffset(base int64, off *expr.Expr) (int64, error) {
	if off.IsConst() {
		return off.Const, nil
	}
	if in.env.builder != nil && in.inOpenRecord(base) {
		if v, ok := in.env.builder.b.TryResolve(base, off); ok {
			return v, nil
		}
		return 0, &AbortError{Reason: "offset depends on an array not yet created"}
	}
	return off.Eval(in.env.Arena, base), nil
}

func (in *Interp) inOpenRecord(addr int64) bool {
	return in.env.builder != nil && in.env.builder.b.Covers(addr)
}

// nativeBounds checks an inlined array access. The transformed code
// eliminated the *managed-runtime* bounds check; this check guards the
// speculation itself (a genuinely out-of-range index would read another
// record's bytes) and aborts rather than crashing.
func (in *Interp) nativeBounds(base, idx int64) error {
	n := in.env.Arena.ReadNative(base, 0, 4)
	if idx < 0 || idx >= n {
		return &AbortError{Reason: fmt.Sprintf("native index %d out of bounds for length %d", idx, n)}
	}
	return nil
}

// constPrefix returns the leading bytes of a class layout whose offsets
// are compile-time constants and primitive-valued — the part AppendRecord
// reserves eagerly. Arrays and sub-records reserve their own storage when
// they are created (sequential construction protocol).
func (in *Interp) constPrefix(class string) int {
	l := in.env.Layouts.Layout(class)
	if l == nil {
		return 0
	}
	end := 0
	for _, f := range l.Class.Fields {
		off, ok := l.FieldOff[f.Name]
		if !ok || !off.IsConst() {
			break
		}
		if f.Type.IsRef() {
			break // array length slot or sub-record: created explicitly
		}
		end = int(off.ConstValue()) + f.Type.Kind.Size()
	}
	return end
}

func (in *Interp) isTopLevel(class string) bool {
	for _, t := range in.env.Prog.TopTypes {
		if t == class {
			return true
		}
	}
	return false
}

// appendRecord implements appendToBuffer (Case 6). A top-level class
// opens a new record (with its 4-byte size prefix); a lower-level class
// continues the open record at its current end, which is its layout
// position under in-order construction.
func (in *Interp) appendRecord(class string) (int64, error) {
	if in.env.Out == nil {
		return 0, fmt.Errorf("interp: no output region for appendToBuffer")
	}
	if in.isTopLevel(class) {
		// An unsealed previous record was constructed but never emitted
		// (e.g. filtered out); abandon its bytes, as the real appender
		// would.
		prefixOff := in.env.Out.Len()
		in.env.Out.Append(serde.SizePrefixBytes)
		b := in.env.Out.NewRecord()
		in.env.builder = &openRecord{b: b, class: class, prefixOff: prefixOff}
		b.Reserve(in.constPrefix(class))
		return b.Base(), nil
	}
	if in.env.builder == nil {
		return 0, &AbortError{Reason: fmt.Sprintf("sub-record %s allocated outside record construction", class)}
	}
	addr := in.env.builder.b.End()
	in.env.builder.b.Reserve(in.constPrefix(class))
	return addr, nil
}

// appendArray implements array creation inside a record: the length slot
// and payload are appended at the current end and the array-creation
// event fires (section 3.6).
func (in *Interp) appendArray(elem model.Type, n int64) (int64, error) {
	if in.env.builder == nil {
		return 0, &AbortError{Reason: "array allocated outside record construction"}
	}
	if n < 0 {
		return 0, fmt.Errorf("interp: negative array length %d", n)
	}
	elemSize := 0
	if !elem.IsRef() {
		elemSize = elem.Kind.Size()
	} else if !elem.Array && elem.Class != "" {
		if sz := in.env.Layouts.SizeOf(elem.Class); sz != nil && sz.IsConst() {
			// Fixed-stride element records could be pre-reserved, but the
			// sequential protocol appends them one by one; reserving here
			// would displace them. Keep elemSize 0.
			elemSize = 0
		}
	}
	return in.env.builder.b.AppendArray(elemSize, int(n)), nil
}

// appendString appends a string literal as an inlined char array.
func (in *Interp) appendString(s string) (int64, error) {
	if in.env.builder == nil {
		return 0, &AbortError{Reason: "string constant outside record construction"}
	}
	runes := []rune(s)
	slot := in.env.builder.b.AppendArray(2, len(runes))
	for i, r := range runes {
		in.env.Arena.WriteNative(slot, 4+int64(i*2), 2, int64(uint16(r)))
	}
	return slot, nil
}

// gWrite implements gWriteObject/gEmit (Case 8): a sealed record is
// handed to the sink; a pass-through input record is block-copied into
// the output region — a memcpy, not a serialization walk.
func (in *Interp) gWrite(srcType model.Type, addr int64) error {
	return in.gWriteClass(in.recordClass(srcType), addr)
}

func (in *Interp) recordClass(t model.Type) string {
	if t.IsRef() && !t.Array {
		return t.Class
	}
	return ""
}

func (in *Interp) gWriteClass(class string, addr int64) error {
	if in.env.NativeSink == nil {
		return fmt.Errorf("interp: no native sink configured")
	}
	if in.env.builder != nil && addr == in.env.builder.b.Base() {
		// Seal the record under construction.
		or := in.env.builder
		base, size, err := or.b.Seal()
		if err != nil {
			return &AbortError{Reason: err.Error()}
		}
		// Speculation guard: when the layout size is expressible, the
		// built size must match it exactly.
		if class == "" {
			class = or.class
		}
		if l := in.env.Layouts.Layout(or.class); l != nil && l.Size != nil {
			if want := l.Size.Eval(in.env.Arena, base); want != int64(size) {
				return &AbortError{Reason: fmt.Sprintf(
					"record %s built %d bytes, layout expects %d (construction order mismatch)",
					or.class, size, want)}
			}
		}
		// Patch the size prefix.
		in.env.Arena.WriteNative(in.env.Out.AddrOf(or.prefixOff), 0, 4, int64(size))
		in.env.builder = nil
		return in.env.NativeSink.WriteRecord(base, size, or.class)
	}
	// Pass-through of an existing record: its size prefix sits 4 bytes
	// before the payload base.
	size := in.env.Arena.ReadNative(addr-serde.SizePrefixBytes, 0, 4)
	if size < 0 {
		return &AbortError{Reason: "pass-through record has corrupt size prefix"}
	}
	na := in.env.Out.CopyRecord(addr-serde.SizePrefixBytes, serde.SizePrefixBytes+int(size))
	return in.env.NativeSink.WriteRecord(na+serde.SizePrefixBytes, int(size), class)
}

// scanElem computes the address of element idx in an inlined array of
// variable-size records by walking element size expressions — the
// schema-guided scan that replaces pointer dereferences for tail arrays.
// A per-array cursor makes the common sequential access pattern O(1)
// amortized (records are immutable, so cached positions stay valid).
func (in *Interp) scanElem(base, idx int64, class string) (int64, error) {
	if err := in.nativeBounds(base, idx); err != nil {
		return 0, err
	}
	if in.env.scanCur == nil {
		in.env.scanCur = make(map[int64]scanCursor)
	}
	k, pos := int64(0), base+4
	if cur, ok := in.env.scanCur[base]; ok && cur.idx <= idx {
		k, pos = cur.idx, cur.pos
	}
	for ; k < idx; k++ {
		sz, err := in.recordSizeAt(class, pos)
		if err != nil {
			return 0, err
		}
		pos += sz
	}
	in.env.scanCur[base] = scanCursor{idx: idx, pos: pos}
	return pos, nil
}

// recordSizeAt computes the inlined size of a record of the given class
// at addr, using the layout's size expression when linear and a schema
// walk otherwise.
func (in *Interp) recordSizeAt(class string, addr int64) (int64, error) {
	if class == model.StringClassName {
		return 4 + 2*in.env.Arena.ReadNative(addr, 0, 4), nil
	}
	l := in.env.Layouts.Layout(class)
	if l == nil {
		return 0, fmt.Errorf("interp: no layout for %s in scan", class)
	}
	if l.Size != nil {
		return l.Size.Eval(in.env.Arena, addr), nil
	}
	// Schema walk for non-linear layouts.
	pos := addr
	for _, f := range l.Class.Fields {
		t := f.Type
		switch {
		case !t.IsRef():
			pos += int64(t.Kind.Size())
		case t.Array && !t.Elem.IsRef():
			n := in.env.Arena.ReadNative(pos, 0, 4)
			pos += 4 + n*int64(t.Elem.Kind.Size())
		case t.Array:
			n := in.env.Arena.ReadNative(pos, 0, 4)
			pos += 4
			for k := int64(0); k < n; k++ {
				sz, err := in.recordSizeAt(t.Elem.Class, pos)
				if err != nil {
					return 0, err
				}
				pos += sz
			}
		case t.Class == model.StringClassName:
			n := in.env.Arena.ReadNative(pos, 0, 4)
			pos += 4 + 2*n
		default:
			sz, err := in.recordSizeAt(t.Class, pos)
			if err != nil {
				return 0, err
			}
			pos += sz
		}
	}
	return pos - addr, nil
}

// nativeCallNative implements the whitelisted native methods over
// inlined bytes — Gerenuk's customized implementations.
func (in *Interp) nativeCallNative(t *ir.NativeCall, f *frame, recv int64) (int64, error) {
	switch t.Name {
	case "clone":
		return recv, nil // immutable records: alias (see heap impl)
	case "length":
		return in.env.Arena.ReadNative(recv, 0, 4), nil
	case "charAt":
		if len(t.Args) != 1 {
			return 0, fmt.Errorf("interp: charAt expects 1 arg")
		}
		i := f.get(t.Args[0])
		if err := in.nativeBounds(recv, i); err != nil {
			return 0, err
		}
		return in.env.Arena.ReadNative(recv, 4+2*i, 2), nil
	case "hashCode":
		sz, err := in.recordSizeAt(in.classOrString(t.RecvClass), recv)
		if err != nil {
			return 0, err
		}
		return hashBytes(in.env.Arena.Slice(recv, int(sz))), nil
	case "equals":
		if len(t.Args) != 1 {
			return 0, fmt.Errorf("interp: equals expects 1 arg")
		}
		other := f.get(t.Args[0])
		cls := in.classOrString(t.RecvClass)
		s1, err := in.recordSizeAt(cls, recv)
		if err != nil {
			return 0, err
		}
		s2, err := in.recordSizeAt(cls, other)
		if err != nil {
			return 0, err
		}
		if s1 == s2 && string(in.env.Arena.Slice(recv, int(s1))) == string(in.env.Arena.Slice(other, int(s2))) {
			return 1, nil
		}
		return 0, nil
	case "splitToWordCounts":
		return 0, in.splitToWordCounts(recv)
	default:
		return 0, &AbortError{Reason: "native method " + t.Name + " over inlined bytes"}
	}
}

// splitToWordCounts is the fused Tungsten tokenizer (Figure 8(b)): one
// pass over the inlined string bytes of recv, emitting a
// WordCount{word, 1} record per space-delimited word with bulk byte
// copies instead of per-character interpreted loops — the "string
// optimizations" the paper credits for Tungsten's WordCount win.
func (in *Interp) splitToWordCounts(recv int64) error {
	const cls = "WordCount"
	layout := in.env.Layouts.Layout(cls)
	if layout == nil {
		return fmt.Errorf("interp: splitToWordCounts requires a %s layout", cls)
	}
	nOff, ok := layout.FieldOff["n"]
	if !ok {
		return fmt.Errorf("interp: %s has no field n", cls)
	}
	n := in.env.Arena.ReadNative(recv, 0, 4)
	chars := in.env.Arena.Slice(recv+4, int(2*n))
	emit := func(start, end int64) error {
		if end <= start {
			return nil
		}
		base, err := in.appendRecord(cls)
		if err != nil {
			return err
		}
		wlen := int(end - start)
		slot := in.env.builder.b.AppendArray(2, wlen)
		copy(in.env.Arena.Slice(slot+4, 2*wlen), chars[2*start:2*end])
		in.env.builder.b.WriteAt(base, nOff, 8, 1)
		return in.gWriteClass(cls, base)
	}
	var start int64
	for i := int64(0); i <= n; i++ {
		if i == n || (chars[2*i] == ' ' && chars[2*i+1] == 0) {
			if err := emit(start, i); err != nil {
				return err
			}
			start = i + 1
		}
	}
	return nil
}

func (in *Interp) classOrString(cls string) string {
	if cls == "" {
		return model.StringClassName
	}
	return cls
}
