package interp

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/serde"
)

// The native-mode record operations live on *Env (not *Interp) so that
// both execution backends share one implementation: the tree-walking
// interpreter calls them per statement, and the closure-compiled backend
// (internal/compile) binds them once at compile time as pre-resolved
// accessors. Everything here touches only Env state, so a compiled
// closure chain and an interpreted run over the same Env are
// behaviorally identical — the soundness invariant the differential
// fuzz tests pin down.

// ResolveOffset is Algorithm 1's resolveOffset auxiliary function:
// evaluate a (possibly symbolic) offset expression against a concrete
// record base. During record construction the open builder's deferred
// view is consulted so that offsets behind not-yet-created arrays are
// reported as unresolvable instead of reading garbage.
func (e *Env) ResolveOffset(base int64, off *expr.Expr) (int64, error) {
	if off.IsConst() {
		return off.Const, nil
	}
	if e.builder != nil && e.inOpenRecord(base) {
		if v, ok := e.builder.b.TryResolve(base, off); ok {
			return v, nil
		}
		return 0, &AbortError{Reason: "offset depends on an array not yet created"}
	}
	return off.Eval(e.Arena, base), nil
}

func (e *Env) inOpenRecord(addr int64) bool {
	return e.builder != nil && e.builder.b.Covers(addr)
}

// WriteNativeOff performs a symbolic-offset native write: routed through
// the open builder's deferred-offset protocol when base is the record
// under construction, resolved against the arena otherwise. Constant
// offsets never reach here — both backends write those directly.
func (e *Env) WriteNativeOff(base int64, off *expr.Expr, size int, val int64) error {
	if e.builder != nil && e.inOpenRecord(base) {
		e.builder.b.WriteAt(base, off, size, val)
		return nil
	}
	o, err := e.ResolveOffset(base, off)
	if err != nil {
		return err
	}
	e.Arena.WriteNative(base, o, size, val)
	return nil
}

// CheckInlinePlacement is the runtime guard behind ir.CheckInline: a
// construction-order reference store is a no-op over inlined bytes only
// if the sub-record actually sits where the layout expects it.
func (e *Env) CheckInlinePlacement(base, sub int64, off *expr.Expr) error {
	o, err := e.ResolveOffset(base, off)
	if err != nil {
		// Unresolvable at this point: construction out of order in a way
		// the deferred mechanism cannot express for interior records.
		// Abort the speculation.
		return &AbortError{Reason: "inline placement unresolvable"}
	}
	if base+o != sub {
		return &AbortError{Reason: fmt.Sprintf(
			"construction order mismatch: sub-record at %#x, layout expects %#x", sub, base+o)}
	}
	return nil
}

// NativeBounds checks an inlined array access. The transformed code
// eliminated the *managed-runtime* bounds check; this check guards the
// speculation itself (a genuinely out-of-range index would read another
// record's bytes) and aborts rather than crashing.
func (e *Env) NativeBounds(base, idx int64) error {
	n := e.Arena.ReadNative(base, 0, 4)
	if idx < 0 || idx >= n {
		return &AbortError{Reason: fmt.Sprintf("native index %d out of bounds for length %d", idx, n)}
	}
	return nil
}

// constPrefix returns the leading bytes of a class layout whose offsets
// are compile-time constants and primitive-valued — the part AppendRecord
// reserves eagerly. Arrays and sub-records reserve their own storage when
// they are created (sequential construction protocol).
func (e *Env) constPrefix(class string) int {
	l := e.Layouts.Layout(class)
	if l == nil {
		return 0
	}
	end := 0
	for _, f := range l.Class.Fields {
		off, ok := l.FieldOff[f.Name]
		if !ok || !off.IsConst() {
			break
		}
		if f.Type.IsRef() {
			break // array length slot or sub-record: created explicitly
		}
		end = int(off.ConstValue()) + f.Type.Kind.Size()
	}
	return end
}

func (e *Env) isTopLevel(class string) bool {
	for _, t := range e.Prog.TopTypes {
		if t == class {
			return true
		}
	}
	return false
}

// AppendRecord implements appendToBuffer (Case 6). A top-level class
// opens a new record (with its 4-byte size prefix); a lower-level class
// continues the open record at its current end, which is its layout
// position under in-order construction.
func (e *Env) AppendRecord(class string) (int64, error) {
	if e.Out == nil {
		return 0, fmt.Errorf("interp: no output region for appendToBuffer")
	}
	if e.isTopLevel(class) {
		// An unsealed previous record was constructed but never emitted
		// (e.g. filtered out); abandon its bytes, as the real appender
		// would.
		prefixOff := e.Out.Len()
		e.Out.Append(serde.SizePrefixBytes)
		b := e.Out.NewRecord()
		e.builder = &openRecord{b: b, class: class, prefixOff: prefixOff}
		b.Reserve(e.constPrefix(class))
		return b.Base(), nil
	}
	if e.builder == nil {
		return 0, &AbortError{Reason: fmt.Sprintf("sub-record %s allocated outside record construction", class)}
	}
	addr := e.builder.b.End()
	e.builder.b.Reserve(e.constPrefix(class))
	return addr, nil
}

// AppendArray implements array creation inside a record: the length slot
// and payload are appended at the current end and the array-creation
// event fires (section 3.6).
func (e *Env) AppendArray(elem model.Type, n int64) (int64, error) {
	if e.builder == nil {
		return 0, &AbortError{Reason: "array allocated outside record construction"}
	}
	if n < 0 {
		return 0, fmt.Errorf("interp: negative array length %d", n)
	}
	elemSize := 0
	if !elem.IsRef() {
		elemSize = elem.Kind.Size()
	} else if !elem.Array && elem.Class != "" {
		if sz := e.Layouts.SizeOf(elem.Class); sz != nil && sz.IsConst() {
			// Fixed-stride element records could be pre-reserved, but the
			// sequential protocol appends them one by one; reserving here
			// would displace them. Keep elemSize 0.
			elemSize = 0
		}
	}
	return e.builder.b.AppendArray(elemSize, int(n)), nil
}

// AppendString appends a string literal as an inlined char array.
func (e *Env) AppendString(s string) (int64, error) {
	if e.builder == nil {
		return 0, &AbortError{Reason: "string constant outside record construction"}
	}
	runes := []rune(s)
	slot := e.builder.b.AppendArray(2, len(runes))
	for i, r := range runes {
		e.Arena.WriteNative(slot, 4+int64(i*2), 2, int64(uint16(r)))
	}
	return slot, nil
}

// GWrite implements gWriteObject/gEmit (Case 8): a sealed record is
// handed to the sink; a pass-through input record is block-copied into
// the output region — a memcpy, not a serialization walk.
func (e *Env) GWrite(srcType model.Type, addr int64) error {
	return e.GWriteClass(RecordClass(srcType), addr)
}

// RecordClass reports the record class a transformed source variable's
// static type names, or "" when the type carries none (address-typed
// variables after transformation).
func RecordClass(t model.Type) string {
	if t.IsRef() && !t.Array {
		return t.Class
	}
	return ""
}

// GWriteClass seals (or pass-through-copies) the record at addr and
// hands it to the native sink, running the built-size speculation guard.
func (e *Env) GWriteClass(class string, addr int64) error {
	if e.NativeSink == nil {
		return fmt.Errorf("interp: no native sink configured")
	}
	if e.builder != nil && addr == e.builder.b.Base() {
		// Seal the record under construction.
		or := e.builder
		base, size, err := or.b.Seal()
		if err != nil {
			return &AbortError{Reason: err.Error()}
		}
		// Speculation guard: when the layout size is expressible, the
		// built size must match it exactly.
		if class == "" {
			class = or.class
		}
		if l := e.Layouts.Layout(or.class); l != nil && l.Size != nil {
			if want := l.Size.Eval(e.Arena, base); want != int64(size) {
				return &AbortError{Reason: fmt.Sprintf(
					"record %s built %d bytes, layout expects %d (construction order mismatch)",
					or.class, size, want)}
			}
		}
		// Patch the size prefix.
		e.Arena.WriteNative(e.Out.AddrOf(or.prefixOff), 0, 4, int64(size))
		e.builder = nil
		return e.NativeSink.WriteRecord(base, size, or.class)
	}
	// Pass-through of an existing record: its size prefix sits 4 bytes
	// before the payload base.
	size := e.Arena.ReadNative(addr-serde.SizePrefixBytes, 0, 4)
	if size < 0 {
		return &AbortError{Reason: "pass-through record has corrupt size prefix"}
	}
	na := e.Out.CopyRecord(addr-serde.SizePrefixBytes, serde.SizePrefixBytes+int(size))
	return e.NativeSink.WriteRecord(na+serde.SizePrefixBytes, int(size), class)
}

// ScanElem computes the address of element idx in an inlined array of
// variable-size records by walking element size expressions — the
// schema-guided scan that replaces pointer dereferences for tail arrays.
// A per-array cursor makes the common sequential access pattern O(1)
// amortized (records are immutable, so cached positions stay valid).
func (e *Env) ScanElem(base, idx int64, class string) (int64, error) {
	if err := e.NativeBounds(base, idx); err != nil {
		return 0, err
	}
	if e.scanCur == nil {
		e.scanCur = make(map[int64]scanCursor)
	}
	k, pos := int64(0), base+4
	if cur, ok := e.scanCur[base]; ok && cur.idx <= idx {
		k, pos = cur.idx, cur.pos
	}
	for ; k < idx; k++ {
		sz, err := e.RecordSizeAt(class, pos)
		if err != nil {
			return 0, err
		}
		pos += sz
	}
	e.scanCur[base] = scanCursor{idx: idx, pos: pos}
	return pos, nil
}

// RecordSizeAt computes the inlined size of a record of the given class
// at addr, using the layout's size expression when linear and a schema
// walk otherwise.
func (e *Env) RecordSizeAt(class string, addr int64) (int64, error) {
	if class == model.StringClassName {
		return 4 + 2*e.Arena.ReadNative(addr, 0, 4), nil
	}
	l := e.Layouts.Layout(class)
	if l == nil {
		return 0, fmt.Errorf("interp: no layout for %s in scan", class)
	}
	if l.Size != nil {
		return l.Size.Eval(e.Arena, addr), nil
	}
	// Schema walk for non-linear layouts.
	pos := addr
	for _, f := range l.Class.Fields {
		t := f.Type
		switch {
		case !t.IsRef():
			pos += int64(t.Kind.Size())
		case t.Array && !t.Elem.IsRef():
			n := e.Arena.ReadNative(pos, 0, 4)
			pos += 4 + n*int64(t.Elem.Kind.Size())
		case t.Array:
			n := e.Arena.ReadNative(pos, 0, 4)
			pos += 4
			for k := int64(0); k < n; k++ {
				sz, err := e.RecordSizeAt(t.Elem.Class, pos)
				if err != nil {
					return 0, err
				}
				pos += sz
			}
		case t.Class == model.StringClassName:
			n := e.Arena.ReadNative(pos, 0, 4)
			pos += 4 + 2*n
		default:
			sz, err := e.RecordSizeAt(t.Class, pos)
			if err != nil {
				return 0, err
			}
			pos += sz
		}
	}
	return pos - addr, nil
}

// NativeCallNative implements the whitelisted native methods over
// inlined bytes — Gerenuk's customized implementations. The interpreter
// routes every native-mode NativeCall through it; the compiled backend
// instead lowers each call site to the specific operation at compile
// time (NativeHash, NativeEquals, ...), skipping this dispatch.
func (e *Env) NativeCallNative(name, recvClass string, recv int64, args []int64) (int64, error) {
	switch name {
	case "clone":
		return recv, nil // immutable records: alias (see heap impl)
	case "length":
		return e.Arena.ReadNative(recv, 0, 4), nil
	case "charAt":
		if len(args) != 1 {
			return 0, fmt.Errorf("interp: charAt expects 1 arg")
		}
		if err := e.NativeBounds(recv, args[0]); err != nil {
			return 0, err
		}
		return e.Arena.ReadNative(recv, 4+2*args[0], 2), nil
	case "hashCode":
		return e.NativeHash(recvClass, recv)
	case "equals":
		if len(args) != 1 {
			return 0, fmt.Errorf("interp: equals expects 1 arg")
		}
		return e.NativeEquals(recvClass, recv, args[0])
	case "splitToWordCounts":
		return 0, e.SplitToWordCounts(recv)
	default:
		return 0, &AbortError{Reason: "native method " + name + " over inlined bytes"}
	}
}

// NativeHash hashes a record's inlined bytes (FNV-1a over the payload),
// matching the heap path's hash of the canonical serialized form.
func (e *Env) NativeHash(recvClass string, recv int64) (int64, error) {
	sz, err := e.RecordSizeAt(classOrString(recvClass), recv)
	if err != nil {
		return 0, err
	}
	return hashBytes(e.Arena.Slice(recv, int(sz))), nil
}

// NativeEquals compares two records' inlined bytes.
func (e *Env) NativeEquals(recvClass string, recv, other int64) (int64, error) {
	cls := classOrString(recvClass)
	s1, err := e.RecordSizeAt(cls, recv)
	if err != nil {
		return 0, err
	}
	s2, err := e.RecordSizeAt(cls, other)
	if err != nil {
		return 0, err
	}
	if s1 == s2 && string(e.Arena.Slice(recv, int(s1))) == string(e.Arena.Slice(other, int(s2))) {
		return 1, nil
	}
	return 0, nil
}

// SplitToWordCounts is the fused Tungsten tokenizer (Figure 8(b)): one
// pass over the inlined string bytes of recv, emitting a
// WordCount{word, 1} record per space-delimited word with bulk byte
// copies instead of per-character interpreted loops — the "string
// optimizations" the paper credits for Tungsten's WordCount win.
func (e *Env) SplitToWordCounts(recv int64) error {
	const cls = "WordCount"
	layout := e.Layouts.Layout(cls)
	if layout == nil {
		return fmt.Errorf("interp: splitToWordCounts requires a %s layout", cls)
	}
	nOff, ok := layout.FieldOff["n"]
	if !ok {
		return fmt.Errorf("interp: %s has no field n", cls)
	}
	n := e.Arena.ReadNative(recv, 0, 4)
	chars := e.Arena.Slice(recv+4, int(2*n))
	emit := func(start, end int64) error {
		if end <= start {
			return nil
		}
		base, err := e.AppendRecord(cls)
		if err != nil {
			return err
		}
		wlen := int(end - start)
		slot := e.builder.b.AppendArray(2, wlen)
		copy(e.Arena.Slice(slot+4, 2*wlen), chars[2*start:2*end])
		e.builder.b.WriteAt(base, nOff, 8, 1)
		return e.GWriteClass(cls, base)
	}
	var start int64
	for i := int64(0); i <= n; i++ {
		if i == n || (chars[2*i] == ' ' && chars[2*i+1] == 0) {
			if err := emit(start, i); err != nil {
				return err
			}
			start = i + 1
		}
	}
	return nil
}

func classOrString(cls string) string {
	if cls == "" {
		return model.StringClassName
	}
	return cls
}

// FetchRecord advances a native source to its next record, maintaining
// the per-attempt record count, the forced-abort experiment knob, and
// the fault-injection hook — the bookkeeping behind every GetAddress.
// It returns 0 at end of input (record addresses are never 0: they sit
// past a region's size prefix).
func (e *Env) FetchRecord(src NativeSource) (int64, error) {
	addr, more := src.NextAddr()
	if !more {
		return 0, nil
	}
	e.records++
	if e.AbortAfterRecords > 0 && e.records > e.AbortAfterRecords {
		return 0, &AbortError{Reason: "forced abort (experiment)"}
	}
	if e.RecordHook != nil {
		if err := e.RecordHook(e.records); err != nil {
			return 0, err
		}
	}
	return addr, nil
}
