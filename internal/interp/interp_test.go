package interp

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arena"
	"repro/internal/dsa"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/transform"
)

// ---- test harness: sources and sinks ----

// wireSource iterates size-prefixed records in a byte buffer (heap mode).
type wireSource struct {
	buf   []byte
	off   int
	class string
}

func (s *wireSource) NextWire() ([]byte, int, bool) {
	if s.off >= len(s.buf) {
		return nil, 0, false
	}
	off := s.off
	s.off += serde.RecordSize(s.buf, s.off)
	return s.buf, off, true
}
func (s *wireSource) Class() string { return s.class }

// regionSource iterates records adopted into an arena region (native).
type regionSource struct {
	a      *arena.Arena
	region *arena.Region
	off    int
	class  string
}

func (s *regionSource) NextAddr() (int64, bool) {
	if s.off >= s.region.Len() {
		return 0, false
	}
	size := s.a.ReadNative(s.region.AddrOf(s.off), 0, 4)
	addr := s.region.AddrOf(s.off + serde.SizePrefixBytes)
	s.off += serde.SizePrefixBytes + int(size)
	return addr, true
}
func (s *regionSource) Class() string { return s.class }

// collectSink gathers output wire bytes (heap mode).
type collectSink struct{ out []byte }

func (s *collectSink) WriteWire(rec []byte, class string) error {
	s.out = append(s.out, rec...)
	return nil
}

// nativeCollectSink gathers sealed records back into wire form.
type nativeCollectSink struct {
	a   *arena.Arena
	out []byte
}

func (s *nativeCollectSink) WriteRecord(addr int64, size int, class string) error {
	s.out = append(s.out, s.a.Slice(addr-serde.SizePrefixBytes, serde.SizePrefixBytes+size)...)
	return nil
}

// ---- program construction ----

func lrProgram(t *testing.T) (*ir.Program, *dsa.Result, *serde.Codec) {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "DenseVector", Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "values", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	reg.Define(model.ClassDef{Name: "LabeledPoint", Fields: []model.FieldDef{
		{Name: "label", Type: model.Prim(model.KindDouble)},
		{Name: "features", Type: model.Object("DenseVector")},
	}})
	reg.Define(model.ClassDef{Name: "Pair", Fields: []model.FieldDef{
		{Name: "key", Type: model.Prim(model.KindLong)},
		{Name: "value", Type: model.Prim(model.KindDouble)},
	}})
	layouts := dsa.Analyze(reg, []string{"LabeledPoint", "Pair"})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"LabeledPoint", "Pair"}
	return prog, layouts, serde.NewCodec(reg, layouts)
}

// buildSumDriver builds the canonical task loop: for each LabeledPoint,
// emit Pair{key: round(label), value: sum(values)+label}.
func buildSumDriver(prog *ir.Program) *ir.Func {
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		label := b.Load(rec, "label")
		vec := b.Load(rec, "features")
		vals := b.Load(vec, "values")
		sum := b.Local("sum", model.Prim(model.KindDouble))
		b.Emit(&ir.ConstFloat{Dst: sum, Val: 0})
		n := b.Len(vals)
		b.For(n, func(i *ir.Var) {
			x := b.Elem(vals, i)
			b.BinTo(sum, ir.OpAdd, sum, x)
		})
		total := b.Bin(ir.OpAdd, sum, label)
		out := b.New("Pair")
		k := b.Un(ir.OpD2I, label)
		b.Store(out, "key", k)
		b.Store(out, "value", total)
		b.WriteRecord("out", out)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	return b.Done()
}

func encodeLPs(t *testing.T, c *serde.Codec, pts [][]float64) []byte {
	t.Helper()
	var buf []byte
	var err error
	for i, vals := range pts {
		buf, err = c.Encode("LabeledPoint", serde.Obj{
			"label": float64(i + 1),
			"features": serde.Obj{
				"size":   int64(len(vals)),
				"values": vals,
			},
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func runHeap(t *testing.T, prog *ir.Program, layouts *dsa.Result, c *serde.Codec, fn *ir.Func, input []byte, inClass string) []byte {
	t.Helper()
	h := heap.New(prog.Reg, heap.Config{YoungSize: 256 << 10, OldSize: 8 << 20})
	sink := &collectSink{}
	env := &Env{
		Mode: ModeHeap, Prog: prog, Heap: h, Codec: c, Layouts: layouts,
		Sources: map[string]Source{"in": &wireSource{buf: input, class: inClass}},
		Sink:    sink,
	}
	if _, err := New(env).Run(fn); err != nil {
		t.Fatalf("heap run: %v", err)
	}
	return sink.out
}

func runNative(t *testing.T, prog *ir.Program, layouts *dsa.Result, fn *ir.Func, input []byte, inClass string) ([]byte, error) {
	t.Helper()
	a := arena.New()
	in := a.AdoptBytes("input", input)
	out := a.NewRegion("output")
	sink := &nativeCollectSink{a: a}
	// Gerenuk executors keep a (small) heap for control-path objects.
	h := heap.New(prog.Reg, heap.Config{YoungSize: 64 << 10, OldSize: 1 << 20})
	env := &Env{
		Mode: ModeNative, Prog: prog, Heap: h, Arena: a, Layouts: layouts, Out: out,
		NativeSources: map[string]NativeSource{"in": &regionSource{a: a, region: in, class: inClass}},
		NativeSink:    sink,
	}
	_, err := New(env).Run(fn)
	return sink.out, err
}

func gerenukTransform(t *testing.T, prog *ir.Program, layouts *dsa.Result, entry string) *ir.Func {
	t.Helper()
	ser, err := analysis.AnalyzeSER(prog, layouts, entry)
	if err != nil {
		t.Fatal(err)
	}
	if !ser.Transformable {
		t.Fatalf("SER not transformable: %s", ser.Reason)
	}
	out, err := transform.Transform(prog, layouts, ser)
	if err != nil {
		t.Fatal(err)
	}
	return out.Native
}

// TestHeapVsNativeIdenticalOutput is the core end-to-end check: the same
// program produces byte-identical output wire records on the baseline
// heap path and on the Gerenuk-transformed native path.
func TestHeapVsNativeIdenticalOutput(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	driver := buildSumDriver(prog)
	input := encodeLPs(t, c, [][]float64{
		{1, 2, 3},
		{0.5, -0.25},
		{},
		{10},
	})

	heapOut := runHeap(t, prog, layouts, c, driver, input, "LabeledPoint")
	native := gerenukTransform(t, prog, layouts, "driver")
	nativeOut, err := runNative(t, prog, layouts, native, input, "LabeledPoint")
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	if !reflect.DeepEqual(heapOut, nativeOut) {
		t.Fatalf("outputs differ:\n heap   %x\n native %x", heapOut, nativeOut)
	}
	// And the values must be right: record 0 is Pair{1, 1+6}.
	v, _, err := c.Decode("Pair", heapOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := v.(serde.Obj)
	if p["key"] != int64(1) || p["value"] != 7.0 {
		t.Errorf("first pair = %v", p)
	}
}

// TestNativeSkipsSerde verifies the native path never invokes the codec:
// deser/ser time must be zero while the heap path pays both.
func TestNativeSkipsSerde(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	driver := buildSumDriver(prog)
	input := encodeLPs(t, c, [][]float64{{1, 2, 3, 4, 5}})

	h := heap.New(prog.Reg, heap.Config{YoungSize: 256 << 10, OldSize: 8 << 20})
	heapEnv := &Env{
		Mode: ModeHeap, Prog: prog, Heap: h, Codec: c, Layouts: layouts,
		Sources: map[string]Source{"in": &wireSource{buf: input, class: "LabeledPoint"}},
		Sink:    &collectSink{},
	}
	if _, err := New(heapEnv).Run(driver); err != nil {
		t.Fatal(err)
	}
	if heapEnv.DeserTime == 0 || heapEnv.SerTime == 0 {
		t.Errorf("heap path should pay serde: deser=%v ser=%v", heapEnv.DeserTime, heapEnv.SerTime)
	}

	native := gerenukTransform(t, prog, layouts, "driver")
	a := arena.New()
	inRegion := a.AdoptBytes("input", input)
	outRegion := a.NewRegion("out")
	natEnv := &Env{
		Mode: ModeNative, Prog: prog, Arena: a, Layouts: layouts, Out: outRegion,
		NativeSources: map[string]NativeSource{"in": &regionSource{a: a, region: inRegion, class: "LabeledPoint"}},
		NativeSink:    &nativeCollectSink{a: a},
	}
	if _, err := New(natEnv).Run(native); err != nil {
		t.Fatal(err)
	}
	if natEnv.DeserTime != 0 || natEnv.SerTime != 0 {
		t.Errorf("native path paid serde: deser=%v ser=%v", natEnv.DeserTime, natEnv.SerTime)
	}
	if h.Stats().AllocObjects == 0 {
		t.Errorf("heap path allocated nothing")
	}
}

// TestPassThroughRecord checks gWriteObject on an unmodified input
// record: a pure byte copy that preserves the record exactly.
func TestPassThroughRecord(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	b := ir.NewFuncBuilder(prog, "ident", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	driver := b.Done()

	input := encodeLPs(t, c, [][]float64{{3, 1, 4}, {1, 5}})
	heapOut := runHeap(t, prog, layouts, c, driver, input, "LabeledPoint")
	native := gerenukTransform(t, prog, layouts, "ident")
	nativeOut, err := runNative(t, prog, layouts, native, input, "LabeledPoint")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heapOut, input) {
		t.Errorf("heap pass-through altered records")
	}
	if !reflect.DeepEqual(nativeOut, input) {
		t.Errorf("native pass-through altered records")
	}
}

// TestAbortRaisedOnViolation: a transformed program containing a
// statically detected violation aborts at run time when it reaches the
// violation point.
func TestAbortRaisedOnViolation(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	prog.Reg.Define(model.ClassDef{Name: "Stash", Fields: []model.FieldDef{
		{Name: "v", Type: model.Object("DenseVector")},
	}})
	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		vec := b.Load(rec, "features")
		stash := b.New("Stash")
		b.Store(stash, "v", vec) // load-and-escape
		b.WriteRecord("out", rec)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	b.Done()

	input := encodeLPs(t, c, [][]float64{{1}})
	native := gerenukTransform(t, prog, layouts, "driver")
	_, err := runNative(t, prog, layouts, native, input, "LabeledPoint")
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("expected abort, got %v", err)
	}
}

// TestSymbolicOffsetFieldAccess exercises a field laid out after a
// variable-length array (resolveOffset at run time) in both modes.
func TestSymbolicOffsetFieldAccess(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "C", Fields: []model.FieldDef{
		{Name: "a", Type: model.Prim(model.KindInt)},
		{Name: "b", Type: model.ArrayOf(model.Prim(model.KindLong))},
		{Name: "c", Type: model.Prim(model.KindDouble)},
	}})
	reg.Define(model.ClassDef{Name: "Out", Fields: []model.FieldDef{
		{Name: "v", Type: model.Prim(model.KindDouble)},
	}})
	layouts := dsa.Analyze(reg, []string{"C", "Out"})
	c := serde.NewCodec(reg, layouts)
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"C", "Out"}

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("C"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		cv := b.Load(rec, "c") // symbolic offset: behind array b
		out := b.New("Out")
		b.Store(out, "v", cv)
		b.WriteRecord("out", out)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	driver := b.Done()

	var input []byte
	var err error
	for i := 0; i < 3; i++ {
		input, err = c.Encode("C", serde.Obj{
			"a": int64(i), "b": make([]int64, i*2+1), "c": float64(i) + 0.5,
		}, input)
		if err != nil {
			t.Fatal(err)
		}
	}
	heapOut := runHeap(t, prog, layouts, c, driver, input, "C")
	native := gerenukTransform(t, prog, layouts, "driver")
	nativeOut, err := runNative(t, prog, layouts, native, input, "C")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heapOut, nativeOut) {
		t.Fatalf("outputs differ:\n heap   %x\n native %x", heapOut, nativeOut)
	}
	v, _, err := c.Decode("Out", nativeOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.(serde.Obj)["v"] != 0.5 {
		t.Errorf("first out = %v", v)
	}
}

// TestConstructedVariableRecord builds an output record containing an
// array whose length varies per input, in both modes.
func TestConstructedVariableRecord(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	b := ir.NewFuncBuilder(prog, "scale", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		label := b.Load(rec, "label")
		vec := b.Load(rec, "features")
		vals := b.Load(vec, "values")
		n := b.Len(vals)
		// out = LabeledPoint{label*2, 2*values}
		out := b.New("LabeledPoint")
		two := b.FConst(2)
		l2 := b.Bin(ir.OpMul, label, two)
		b.Store(out, "label", l2)
		nv := b.New("DenseVector")
		nInt := b.Temp(model.Prim(model.KindLong))
		b.Assign(nInt, n)
		b.Store(nv, "size", nInt)
		arr := b.NewArr(model.Prim(model.KindDouble), n)
		b.For(n, func(i *ir.Var) {
			x := b.Elem(vals, i)
			x2 := b.Bin(ir.OpMul, x, two)
			b.SetElem(arr, i, x2)
		})
		b.Store(nv, "values", arr)
		b.Store(out, "features", nv)
		b.WriteRecord("out", out)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	driver := b.Done()

	input := encodeLPs(t, c, [][]float64{{1, 2}, {5}, {0.5, 0.25, 0.125}})
	heapOut := runHeap(t, prog, layouts, c, driver, input, "LabeledPoint")
	native := gerenukTransform(t, prog, layouts, "scale")
	nativeOut, err := runNative(t, prog, layouts, native, input, "LabeledPoint")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heapOut, nativeOut) {
		t.Fatalf("outputs differ:\n heap   %x\n native %x", heapOut, nativeOut)
	}
	v, _, err := c.Decode("LabeledPoint", nativeOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(serde.Obj)["features"].(serde.Obj)["values"].([]float64)
	if !reflect.DeepEqual(got, []float64{2, 4}) {
		t.Errorf("scaled values = %v", got)
	}
}

// TestInlinedHelperCall: a UDF helper called with data arguments is
// inlined (Case 9) and the transformed program still matches the heap
// output.
func TestInlinedHelperCall(t *testing.T) {
	prog, layouts, c := lrProgram(t)

	hb := ir.NewFuncBuilder(prog, "sumVec", model.Prim(model.KindDouble))
	v := hb.Param("v", model.Object("DenseVector"))
	vals := hb.Load(v, "values")
	sum := hb.Local("sum", model.Prim(model.KindDouble))
	hb.Emit(&ir.ConstFloat{Dst: sum, Val: 0})
	n := hb.Len(vals)
	hb.For(n, func(i *ir.Var) {
		x := hb.Elem(vals, i)
		hb.BinTo(sum, ir.OpAdd, sum, x)
	})
	hb.Ret(sum)
	hb.Done()

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("LabeledPoint"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		vec := b.Load(rec, "features")
		s := b.Call("sumVec", model.Prim(model.KindDouble), vec)
		out := b.New("Pair")
		one := b.IConst(1)
		b.Store(out, "key", one)
		b.Store(out, "value", s)
		b.WriteRecord("out", out)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	driver := b.Done()

	input := encodeLPs(t, c, [][]float64{{1, 2, 3}, {4, 4}})
	heapOut := runHeap(t, prog, layouts, c, driver, input, "LabeledPoint")
	native := gerenukTransform(t, prog, layouts, "driver")
	// The native function must contain no Call statements on the data path.
	callCount := 0
	ir.Walk(native.Body, func(s ir.Stmt) {
		if _, isCall := s.(*ir.Call); isCall {
			callCount++
		}
	})
	if callCount != 0 {
		t.Errorf("native fn still has %d calls (inlining failed)", callCount)
	}
	nativeOut, err := runNative(t, prog, layouts, native, input, "LabeledPoint")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heapOut, nativeOut) {
		t.Fatalf("outputs differ")
	}
}

// TestForcedAbort: the AbortAfterRecords knob fires a forced abort, the
// mechanism behind Figure 10(b).
func TestForcedAbort(t *testing.T) {
	prog, layouts, c := lrProgram(t)
	buildSumDriver(prog)
	native := gerenukTransform(t, prog, layouts, "driver")
	input := encodeLPs(t, c, [][]float64{{1}, {2}, {3}})

	a := arena.New()
	inRegion := a.AdoptBytes("input", input)
	outRegion := a.NewRegion("out")
	env := &Env{
		Mode: ModeNative, Prog: prog, Arena: a, Layouts: layouts, Out: outRegion,
		NativeSources:     map[string]NativeSource{"in": &regionSource{a: a, region: inRegion, class: "LabeledPoint"}},
		NativeSink:        &nativeCollectSink{a: a},
		AbortAfterRecords: 2,
	}
	_, err := New(env).Run(native)
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("expected forced abort, got %v", err)
	}
}

// TestNativeStringOps: whitelisted native methods (length, charAt,
// hashCode) agree across modes.
func TestNativeStringOps(t *testing.T) {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Doc", Fields: []model.FieldDef{
		{Name: "text", Type: model.Object(model.StringClassName)},
	}})
	reg.Define(model.ClassDef{Name: "Out", Fields: []model.FieldDef{
		{Name: "len", Type: model.Prim(model.KindLong)},
		{Name: "first", Type: model.Prim(model.KindLong)},
		{Name: "hash", Type: model.Prim(model.KindLong)},
	}})
	layouts := dsa.Analyze(reg, []string{"Doc", "Out"})
	c := serde.NewCodec(reg, layouts)
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Doc", "Out"}

	b := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := b.IConst(0)
	rec := b.Local("rec", model.Object("Doc"))
	b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	b.While(ir.CmpNE, rec, zero, func() {
		s := b.Load(rec, "text")
		n := b.Native("length", model.Prim(model.KindLong), s)
		z := b.IConst(0)
		ch := b.Native("charAt", model.Prim(model.KindLong), s, z)
		hc := b.Native("hashCode", model.Prim(model.KindLong), s)
		out := b.New("Out")
		b.Store(out, "len", n)
		b.Store(out, "first", ch)
		b.Store(out, "hash", hc)
		b.WriteRecord("out", out)
		b.Emit(&ir.Deserialize{Dst: rec, Source: "in"})
	})
	b.Ret(nil)
	driver := b.Done()

	var input []byte
	var err error
	for _, s := range []string{"hello world", "x", "göphers"} {
		input, err = c.Encode("Doc", serde.Obj{"text": s}, input)
		if err != nil {
			t.Fatal(err)
		}
	}
	heapOut := runHeap(t, prog, layouts, c, driver, input, "Doc")
	native := gerenukTransform(t, prog, layouts, "driver")
	nativeOut, err := runNative(t, prog, layouts, native, input, "Doc")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heapOut, nativeOut) {
		t.Fatalf("string ops disagree between modes")
	}
	v, _, err := c.Decode("Out", heapOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := v.(serde.Obj)
	if o["len"] != int64(11) || o["first"] != int64('h') {
		t.Errorf("out = %v", o)
	}
}
