package interp_test

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/compile"
	"repro/internal/interp"
	"repro/internal/transform"
)

// TestDifferentialCompiledVsInterp extends the random-UDF differential
// fuzz across execution backends: for every generated program the
// closure-compiled chain and the tree-walking interpreter must agree
// exactly — same output bytes, same return value, and on failure the
// same error text and the same abort classification. This is the
// property the engine's backend switch relies on: the two backends are
// interchangeable per task.
//
// It lives in the external interp_test package because the in-package
// test files cannot import internal/compile (test-variant import
// cycle); the case generator is exported from an in-package test file.
func TestDifferentialCompiledVsInterp(t *testing.T) {
	f := func(seed int64) bool {
		c, err := interp.GenFuzzUDFCase(t, seed)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		ser, err := analysis.AnalyzeSER(c.Prog, c.Layouts, "driver")
		if err != nil || !ser.Transformable {
			t.Logf("seed %d: analysis: %v / %v", seed, err, ser)
			return false
		}
		xf, err := transform.Transform(c.Prog, c.Layouts, ser)
		if err != nil {
			t.Logf("seed %d: transform: %v", seed, err)
			return false
		}

		// A fully transformed driver must always compile: it contains no
		// heap-path statements by construction.
		prog, err := compile.Compile(c.Prog, xf.Native)
		if err != nil {
			t.Logf("seed %d: compile declined transformed driver: %v", seed, err)
			return false
		}

		envI, outI := c.NewNativeEnv()
		retI, errI := interp.New(envI).Run(xf.Native)

		envC, outC := c.NewNativeEnv()
		retC, errC := prog.Run(envC)

		if (errI == nil) != (errC == nil) {
			t.Logf("seed %d: error mismatch: interp=%v compiled=%v", seed, errI, errC)
			return false
		}
		if errI != nil {
			if errI.Error() != errC.Error() {
				t.Logf("seed %d: error text differs:\ninterp   %v\ncompiled %v", seed, errI, errC)
				return false
			}
			if errors.Is(errI, interp.ErrAbort) != errors.Is(errC, interp.ErrAbort) {
				t.Logf("seed %d: abort classification differs: interp=%v compiled=%v", seed, errI, errC)
				return false
			}
			return true // identical failures are a valid differential outcome
		}
		if retI != retC {
			t.Logf("seed %d: return value differs: interp=%d compiled=%d", seed, retI, retC)
			return false
		}
		if !bytes.Equal(outI(), outC()) {
			t.Logf("seed %d: outputs differ\ninterp   %x\ncompiled %x", seed, outI(), outC())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
