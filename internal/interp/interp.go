// Package interp executes IR functions in one of two data modes.
//
// Heap mode is the baseline: data values are references into the
// simulated managed heap (internal/heap); Deserialize statements run the
// full bytes-to-objects codec, Serialize statements walk object graphs
// back to bytes, and every field access pays header-relative addressing,
// bounds checks and write barriers.
//
// Native mode executes Gerenuk-transformed IR: data values are long
// addresses into arena regions; GetAddress iterates input records in
// place, readNative/writeNative access inlined bytes at (possibly
// symbolic) offsets, appendToBuffer builds output records sequentially
// with the deferred-offset protocol of section 3.6, and gWriteObject is a
// plain byte copy. Abort statements (and runtime guard failures) raise
// ErrAbort, which the engine turns into slow-path re-execution.
//
// Because both modes run the same interpreter loop, the measured
// difference between them isolates exactly the representation costs the
// paper attributes to the managed runtime.
package interp

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/dsa"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/trace"
)

// Mode selects the data backend.
type Mode int

// Execution modes.
const (
	ModeHeap Mode = iota
	ModeNative
)

func (m Mode) String() string {
	if m == ModeNative {
		return "gerenuk"
	}
	return "baseline"
}

// AbortError is raised when a speculative execution hits an inserted
// abort instruction or a runtime speculation guard fails.
type AbortError struct{ Reason string }

func (e *AbortError) Error() string { return "SER abort: " + e.Reason }

// ErrAbort matches any AbortError via errors.Is/As.
var ErrAbort = errors.New("SER abort")

// ErrCanceled is returned when the step loop observes Env.Cancel set: a
// racing attempt elsewhere already produced the task's result and this
// execution's output will be discarded. It is not a failure of the
// computation — the engine's hedging layer filters it out of task
// outcomes — so it deliberately does not match ErrAbort.
var ErrCanceled = errors.New("interp: execution canceled")

// Is lets errors.Is(err, ErrAbort) succeed for AbortError values.
func (e *AbortError) Is(target error) bool { return target == ErrAbort }

// Source supplies input records as wire bytes (heap mode deserializes
// them; the engine hands the same bytes to native mode as regions).
type Source interface {
	// NextWire returns the buffer and offset of the next size-prefixed
	// record, or ok=false at end of input.
	NextWire() (buf []byte, off int, ok bool)
	// Class returns the top-level type of the records.
	Class() string
}

// NativeSource supplies input records as native addresses (payload base,
// just past the size prefix).
type NativeSource interface {
	NextAddr() (addr int64, ok bool)
	Class() string
}

// Sink receives output records.
type Sink interface {
	// WriteWire receives one serialized record (heap mode).
	WriteWire(rec []byte, class string) error
}

// NativeSink receives output records as sealed native records.
type NativeSink interface {
	// WriteRecord receives the payload base address and payload size of
	// a sealed record living in the task output region.
	WriteRecord(addr int64, size int, class string) error
}

// Env is the execution context of one task attempt.
type Env struct {
	Mode    Mode
	Prog    *ir.Program
	Heap    *heap.Heap   // heap mode
	Codec   *serde.Codec // heap mode
	Arena   *arena.Arena // native mode
	Layouts *dsa.Result
	// Out is the output region for native-mode record construction.
	Out *arena.Region
	// Sources maps Deserialize/GetAddress source names to inputs.
	Sources       map[string]Source
	NativeSources map[string]NativeSource
	// Sink / NativeSink receive Serialize/Emit outputs.
	Sink       Sink
	NativeSink NativeSink
	// MaxSteps guards against runaway loops (0 = default 1e10).
	MaxSteps int64

	// Cancel, when set, is polled by the interpreter's step loop (every
	// cancelCheckInterval statements, so the overhead off the hedged
	// path is one nil check per statement). When it reads true the run
	// stops with ErrCanceled: the engine's hedging layer sets it on the
	// losing attempt of a hedged task, whose output nobody will read.
	Cancel *atomic.Bool

	// SerTime and DeserTime accumulate time spent inside serialization
	// and deserialization statements, for the Figure 6 breakdowns.
	// SerBytes and DeserBytes accumulate the wire bytes those
	// statements produced/consumed, for span args and metrics export.
	SerTime    time.Duration
	DeserTime  time.Duration
	SerBytes   int64
	DeserBytes int64

	// Trace, when set, is the enclosing execution-phase span; the
	// interpreter emits per-record deserialize/serialize child spans
	// (with byte counts) under it. nil disables serde tracing at the
	// cost of one nil check per record.
	Trace *trace.Span

	// ForcedAborts aborts the Nth executed Abort-eligible record loop
	// (used by the Figure 10(b) forced-abort experiment); 0 disables.
	AbortAfterRecords int64

	// RecordHook, when set, runs after each input record is fetched —
	// a native-mode GetAddress or a heap-mode deserialize — with the
	// running record count (1-based). Fault injectors use it to force
	// failures at deterministic record offsets: it may return an error
	// (propagated like any statement error) or panic (contained by the
	// engine's recovery layer).
	RecordHook func(n int64) error

	steps int64
	// nextPause is the step count at which CheckStep next enters its
	// slow path (cancel-poll boundary or step limit); see checkStepSlow.
	nextPause int64
	records   int64
	builder *openRecord
	// scanCur caches (index, position) cursors for inlined
	// variable-size-element arrays, making the sequential access
	// pattern O(1) amortized per element.
	scanCur map[int64]scanCursor
}

type scanCursor struct {
	idx int64
	pos int64
}

// openRecord tracks the record under construction in native mode.
type openRecord struct {
	b     *arena.RecordBuilder
	class string
	// prefixOff is the region offset of the 4-byte size prefix.
	prefixOff int
}

// Interp executes functions against an Env.
type Interp struct {
	env    *Env
	frames []*frame
	// strCharsOff caches the String.chars field offset (-1 if the
	// program has no String class).
	strCharsOff int
}

type frame struct {
	fn    *ir.Func
	slots []int64
	isRef []bool
}

// DefaultMaxSteps is the runaway-loop budget applied when Env.MaxSteps
// is zero; both execution backends (interpreter and closure-compiled)
// install it so step-limit behavior is identical.
const DefaultMaxSteps = 1e10

// New creates an interpreter over the environment.
func New(env *Env) *Interp {
	if env.MaxSteps == 0 {
		env.MaxSteps = DefaultMaxSteps
	}
	in := &Interp{env: env, strCharsOff: -1}
	if strCls, ok := env.Prog.Reg.Lookup(model.StringClassName); ok {
		in.strCharsOff = strCls.MustField("chars").Offset
	}
	return in
}

// VisitRoots exposes all heap references held in interpreter frames to
// the collector (heap mode).
func (in *Interp) VisitRoots(visit func(*heap.Addr)) {
	for _, f := range in.frames {
		for i, isRef := range f.isRef {
			if isRef {
				visit(&f.slots[i])
			}
		}
	}
}

// Run executes fn with the given argument values (raw bits). It returns
// the value of the trailing Return, if any.
func (in *Interp) Run(fn *ir.Func, args ...int64) (int64, error) {
	if in.env.Heap != nil {
		// Control-path objects live on the heap in both modes (in native
		// mode only data objects move to arena buffers), so frames are
		// GC roots whenever a heap exists.
		defer in.env.Heap.AddRoots(in)()
	}
	return in.call(fn, args)
}

type returnSignal struct{ val int64 }

func (in *Interp) call(fn *ir.Func, args []int64) (int64, error) {
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("interp: %s expects %d args, got %d", fn.Name, len(fn.Params), len(args))
	}
	f := &frame{fn: fn, slots: make([]int64, fn.NumSlots()), isRef: make([]bool, fn.NumSlots())}
	for _, v := range fn.Locals {
		// In native functions, data variables were retyped to long, so
		// any remaining ref-typed local is a control-path heap reference.
		f.isRef[v.Slot] = v.Type.IsRef()
	}
	for i, p := range fn.Params {
		f.slots[p.Slot] = args[i]
	}
	in.frames = append(in.frames, f)
	defer func() { in.frames = in.frames[:len(in.frames)-1] }()

	ret, err := in.block(f, fn.Body)
	if err != nil {
		return 0, err
	}
	if ret != nil {
		return ret.val, nil
	}
	return 0, nil
}

// cancelCheckInterval is how many interpreter steps may run between
// polls of Env.Cancel (must be a power of two). Small enough that a
// hedge loser dies within microseconds, large enough that the atomic
// load stays off the per-statement hot path.
const cancelCheckInterval = 64

// CheckStep enforces the step budget and polls the cancellation flag.
// It is the shared per-statement bookkeeping of both execution backends:
// the interpreter calls it before every statement and once per While
// iteration, and internal/compile emits the identical call sites into
// its closure chains, so cancellation latency (a hedge loser dying) and
// step-limit behavior cannot diverge between backends. The fast path is
// a counter bump and a single compare against nextPause — the nearer of
// the next cancel-poll boundary and the step limit, precomputed by
// checkStepSlow — so both the mask test and the MaxSteps load stay off
// the per-statement path. nextPause's zero value routes the first call
// through the slow path, which arms it.
func (e *Env) CheckStep(fn string) error {
	e.steps++
	if e.steps >= e.nextPause {
		return e.checkStepSlow(fn)
	}
	return nil
}

func (e *Env) checkStepSlow(fn string) error {
	if e.steps > e.MaxSteps {
		return fmt.Errorf("interp: step limit exceeded in %s", fn)
	}
	if e.steps&(cancelCheckInterval-1) == 0 && e.Cancel != nil && e.Cancel.Load() {
		return ErrCanceled
	}
	// Re-arm: pause again at the next poll boundary or one past the step
	// limit, whichever comes first. Detection points are identical to
	// checking both conditions every step.
	next := (e.steps | (cancelCheckInterval - 1)) + 1
	if lim := e.MaxSteps + 1; lim < next {
		next = lim
	}
	e.nextPause = next
	return nil
}

// block executes statements; a non-nil returnSignal propagates a Return.
func (in *Interp) block(f *frame, body []ir.Stmt) (*returnSignal, error) {
	for _, s := range body {
		if err := in.env.CheckStep(f.fn.Name); err != nil {
			return nil, err
		}
		ret, err := in.stmt(f, s)
		if err != nil {
			return nil, err
		}
		if ret != nil {
			return ret, nil
		}
	}
	return nil, nil
}

func (f *frame) get(v *ir.Var) int64    { return f.slots[v.Slot] }
func (f *frame) set(v *ir.Var, x int64) { f.slots[v.Slot] = x }

func (in *Interp) stmt(f *frame, s ir.Stmt) (*returnSignal, error) {
	switch t := s.(type) {
	case *ir.ConstInt:
		f.set(t.Dst, t.Val)
	case *ir.ConstFloat:
		f.set(t.Dst, int64(math.Float64bits(t.Val)))
	case *ir.ConstString:
		a, err := in.heapString(t.Val)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, a)
	case *ir.Assign:
		f.set(t.Dst, f.get(t.Src))
	case *ir.BinOp:
		v, err := in.binop(t, f.get(t.L), f.get(t.R))
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, v)
	case *ir.UnOp:
		f.set(t.Dst, in.unop(t, f.get(t.X)))
	case *ir.If:
		if in.cond(t.Cond, f) {
			return in.block(f, t.Then)
		}
		return in.block(f, t.Else)
	case *ir.While:
		for in.cond(t.Cond, f) {
			if err := in.env.CheckStep(f.fn.Name); err != nil {
				return nil, err
			}
			ret, err := in.block(f, t.Body)
			if err != nil || ret != nil {
				return ret, err
			}
		}
	case *ir.Return:
		if t.Val != nil {
			return &returnSignal{val: f.get(t.Val)}, nil
		}
		return &returnSignal{}, nil
	case *ir.Call:
		callee, ok := in.env.Prog.Funcs[t.Fn]
		if !ok {
			return nil, fmt.Errorf("interp: unknown function %q", t.Fn)
		}
		args := make([]int64, len(t.Args))
		for i, a := range t.Args {
			args[i] = f.get(a)
		}
		v, err := in.call(callee, args)
		if err != nil {
			return nil, err
		}
		if t.Dst != nil {
			f.set(t.Dst, v)
		}
	case *ir.Abort:
		return nil, &AbortError{Reason: t.Reason}

	// ---- heap-mode data statements ----
	case *ir.FieldLoad:
		v, err := in.heapFieldLoad(t, f.get(t.Obj))
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, v)
	case *ir.FieldStore:
		if err := in.heapFieldStore(t, f.get(t.Obj), f.get(t.Src)); err != nil {
			return nil, err
		}
	case *ir.ArrayLoad:
		arr := f.get(t.Arr)
		elem := t.Arr.Type.Elem
		if elem == nil {
			return nil, fmt.Errorf("interp: array load on non-array %s", t.Arr)
		}
		if elem.IsRef() {
			f.set(t.Dst, in.env.Heap.ArrayGetRef(arr, int(f.get(t.Idx))))
		} else {
			bits := in.env.Heap.ArrayGetPrim(arr, int(f.get(t.Idx)), elem.Kind)
			f.set(t.Dst, signExtend(bits, elem.Kind))
		}
	case *ir.ArrayStore:
		arr := f.get(t.Arr)
		elem := t.Arr.Type.Elem
		if elem == nil {
			return nil, fmt.Errorf("interp: array store on non-array %s", t.Arr)
		}
		if elem.IsRef() {
			in.env.Heap.ArraySetRef(arr, int(f.get(t.Idx)), f.get(t.Src))
		} else {
			in.env.Heap.ArraySetPrim(arr, int(f.get(t.Idx)), elem.Kind, uint64(f.get(t.Src)))
		}
	case *ir.ArrayLen:
		f.set(t.Dst, int64(in.env.Heap.ArrayLen(f.get(t.Arr))))
	case *ir.New:
		cls := t.R
		if cls == nil {
			cls = in.env.Prog.Reg.MustLookup(t.Class)
		}
		a, err := in.env.Heap.AllocObject(cls)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, a)
	case *ir.NewArray:
		n := int(f.get(t.Len))
		var a heap.Addr
		var err error
		if t.Elem.IsRef() {
			a, err = in.env.Heap.AllocArray(model.KindRef, n)
		} else {
			a, err = in.env.Heap.AllocArray(t.Elem.Kind, n)
		}
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, a)
	case *ir.Deserialize:
		v, err := in.deserialize(t)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, v)
	case *ir.Serialize:
		if err := in.serialize(t.Src.Type.Class, f.get(t.Src)); err != nil {
			return nil, err
		}
	case *ir.Emit:
		if err := in.serialize(t.Src.Type.Class, f.get(t.Src)); err != nil {
			return nil, err
		}
	case *ir.NativeCall:
		v, err := in.nativeCall(t, f)
		if err != nil {
			return nil, err
		}
		if t.Dst != nil {
			f.set(t.Dst, v)
		}
	case *ir.MonitorEnter, *ir.MonitorExit:
		// Locks are per-executor no-ops; metadata use is caught
		// statically on the native path.

	// ---- native-mode statements ----
	case *ir.GetAddress:
		src, ok := in.env.NativeSources[t.Source]
		if !ok {
			return nil, fmt.Errorf("interp: no native source %q", t.Source)
		}
		addr, err := in.env.FetchRecord(src)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, addr)
	case *ir.ReadNative:
		base := f.get(t.Base)
		off, err := in.env.ResolveOffset(base, t.Off)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, in.env.Arena.ReadNative(base, off, t.Size))
	case *ir.WriteNative:
		base := f.get(t.Base)
		if t.Off.IsConst() {
			in.env.Arena.WriteNative(base, t.Off.Const, t.Size, f.get(t.Src))
		} else if err := in.env.WriteNativeOff(base, t.Off, t.Size, f.get(t.Src)); err != nil {
			return nil, err
		}
	case *ir.ReadNativeElem:
		base := f.get(t.Base)
		idx := f.get(t.Idx)
		if err := in.env.NativeBounds(base, idx); err != nil {
			return nil, err
		}
		f.set(t.Dst, in.env.Arena.ReadNative(base, 4+idx*int64(t.Kind.Size()), t.Kind.Size()))
	case *ir.WriteNativeElem:
		base := f.get(t.Base)
		idx := f.get(t.Idx)
		if err := in.env.NativeBounds(base, idx); err != nil {
			return nil, err
		}
		in.env.Arena.WriteNative(base, 4+idx*int64(t.Kind.Size()), t.Kind.Size(), f.get(t.Src))
	case *ir.AddrOf:
		base := f.get(t.Base)
		off, err := in.env.ResolveOffset(base, t.Off)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, base+off)
	case *ir.AddrElem:
		f.set(t.Dst, f.get(t.Base)+4+f.get(t.Idx)*t.Stride)
	case *ir.ScanElem:
		a, err := in.env.ScanElem(f.get(t.Base), f.get(t.Idx), t.Class)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, a)
	case *ir.AppendRecord:
		a, err := in.env.AppendRecord(t.Class)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, a)
	case *ir.AppendArray:
		a, err := in.env.AppendArray(t.Elem, f.get(t.Len))
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, a)
	case *ir.GConstString:
		a, err := in.env.AppendString(t.Val)
		if err != nil {
			return nil, err
		}
		f.set(t.Dst, a)
	case *ir.CheckInline:
		if err := in.env.CheckInlinePlacement(f.get(t.Base), f.get(t.Sub), t.Off); err != nil {
			return nil, err
		}
	case *ir.GWriteObject:
		if err := in.env.GWrite(t.Src.Type, f.get(t.Src)); err != nil {
			return nil, err
		}
	case *ir.GEmit:
		if err := in.env.GWrite(t.Src.Type, f.get(t.Src)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("interp: unhandled statement %T", s)
	}
	return nil, nil
}

func (in *Interp) cond(c ir.Cond, f *frame) bool {
	l, r := f.get(c.L), f.get(c.R)
	if c.L.Type.Kind == model.KindDouble || c.L.Type.Kind == model.KindFloat {
		lf, rf := math.Float64frombits(uint64(l)), math.Float64frombits(uint64(r))
		switch c.Op {
		case ir.CmpEQ:
			return lf == rf
		case ir.CmpNE:
			return lf != rf
		case ir.CmpLT:
			return lf < rf
		case ir.CmpLE:
			return lf <= rf
		case ir.CmpGT:
			return lf > rf
		default:
			return lf >= rf
		}
	}
	switch c.Op {
	case ir.CmpEQ:
		return l == r
	case ir.CmpNE:
		return l != r
	case ir.CmpLT:
		return l < r
	case ir.CmpLE:
		return l <= r
	case ir.CmpGT:
		return l > r
	default:
		return l >= r
	}
}

func (in *Interp) binop(t *ir.BinOp, l, r int64) (int64, error) {
	if t.Dst.Type.Kind == model.KindDouble || t.Dst.Type.Kind == model.KindFloat {
		lf, rf := math.Float64frombits(uint64(l)), math.Float64frombits(uint64(r))
		var v float64
		switch t.Op {
		case ir.OpAdd:
			v = lf + rf
		case ir.OpSub:
			v = lf - rf
		case ir.OpMul:
			v = lf * rf
		case ir.OpDiv:
			v = lf / rf
		case ir.OpMin:
			v = math.Min(lf, rf)
		case ir.OpMax:
			v = math.Max(lf, rf)
		default:
			return 0, fmt.Errorf("interp: float binop %s unsupported", t.Op)
		}
		return int64(math.Float64bits(v)), nil
	}
	switch t.Op {
	case ir.OpAdd:
		return l + r, nil
	case ir.OpSub:
		return l - r, nil
	case ir.OpMul:
		return l * r, nil
	case ir.OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("interp: integer division by zero")
		}
		return l / r, nil
	case ir.OpRem:
		if r == 0 {
			return 0, fmt.Errorf("interp: integer remainder by zero")
		}
		return l % r, nil
	case ir.OpAnd:
		return l & r, nil
	case ir.OpOr:
		return l | r, nil
	case ir.OpXor:
		return l ^ r, nil
	case ir.OpShl:
		return l << uint(r&63), nil
	case ir.OpShr:
		return l >> uint(r&63), nil
	case ir.OpMin:
		if l < r {
			return l, nil
		}
		return r, nil
	case ir.OpMax:
		if l > r {
			return l, nil
		}
		return r, nil
	default:
		return 0, fmt.Errorf("interp: binop %s unsupported", t.Op)
	}
}

func (in *Interp) unop(t *ir.UnOp, x int64) int64 {
	switch t.Op {
	case ir.OpNeg:
		if t.Dst.Type.Kind == model.KindDouble || t.Dst.Type.Kind == model.KindFloat {
			return int64(math.Float64bits(-math.Float64frombits(uint64(x))))
		}
		return -x
	case ir.OpNot:
		return ^x
	case ir.OpI2D:
		return int64(math.Float64bits(float64(x)))
	case ir.OpD2I:
		return int64(math.Float64frombits(uint64(x)))
	case ir.OpAbs:
		if t.Dst.Type.Kind == model.KindDouble {
			return int64(math.Float64bits(math.Abs(math.Float64frombits(uint64(x)))))
		}
		if x < 0 {
			return -x
		}
		return x
	case ir.OpSqrt:
		return int64(math.Float64bits(math.Sqrt(floatOf(t.X, x))))
	case ir.OpExp:
		return int64(math.Float64bits(math.Exp(floatOf(t.X, x))))
	case ir.OpLog:
		return int64(math.Float64bits(math.Log(floatOf(t.X, x))))
	default:
		return 0
	}
}

// floatOf interprets a slot value as float64, converting from integer
// kinds when needed.
func floatOf(v *ir.Var, bits int64) float64 {
	if v.Type.Kind == model.KindDouble || v.Type.Kind == model.KindFloat {
		return math.Float64frombits(uint64(bits))
	}
	return float64(bits)
}

func signExtend(bits uint64, k model.Kind) int64 {
	switch k.Size() {
	case 1:
		return int64(int8(bits))
	case 2:
		return int64(int16(bits))
	case 4:
		return int64(int32(bits))
	default:
		return int64(bits)
	}
}
