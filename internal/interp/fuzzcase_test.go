package interp

import (
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/dsa"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
)

// FuzzUDFCase is a randomly generated record-processing program plus a
// matching random input. It is exported (from an in-package test file)
// so the external interp_test package can run the same cases through
// internal/compile — which this package's in-package tests cannot
// import without creating a test-variant cycle.
type FuzzUDFCase struct {
	Prog    *ir.Program
	Layouts *dsa.Result
	Codec   *serde.Codec
	Input   []byte
}

// GenFuzzUDFCase deterministically generates the seed's program: a UDF
// that computes values from the input record and constructs an output
// record with a randomly permuted store order (exercising the deferred-
// offset machinery), a driver looping it over the input source, and 1-5
// random input records.
func GenFuzzUDFCase(tb testing.TB, seed int64) (*FuzzUDFCase, error) {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))

	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "In", Fields: []model.FieldDef{
		{Name: "a", Type: model.Prim(model.KindLong)},
		{Name: "xs", Type: model.ArrayOf(model.Prim(model.KindDouble))},
		{Name: "b", Type: model.Prim(model.KindDouble)},
	}})
	reg.Define(model.ClassDef{Name: "Out", Fields: []model.FieldDef{
		{Name: "p", Type: model.Prim(model.KindLong)},
		{Name: "ys", Type: model.ArrayOf(model.Prim(model.KindDouble))},
		{Name: "q", Type: model.Prim(model.KindDouble)},
	}})
	layouts := dsa.Analyze(reg, []string{"In", "Out"})
	codec := serde.NewCodec(reg, layouts)
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"In", "Out"}

	// Random UDF: compute values from the input, then construct Out
	// with a randomly permuted store order (p, q, ys creation, ys
	// element writes in random positions relative to each other).
	b := ir.NewFuncBuilder(prog, "udf", model.Type{})
	rec := b.Param("rec", model.Object("In"))
	a := b.Load(rec, "a")
	bf := b.Load(rec, "b")
	xs := b.Load(rec, "xs")
	n := b.Len(xs)
	af := b.Un(ir.OpI2D, a)
	sum := b.Local("sum", model.Prim(model.KindDouble))
	b.Emit(&ir.ConstFloat{Dst: sum, Val: 0})
	b.For(n, func(i *ir.Var) {
		x := b.Elem(xs, i)
		b.BinTo(sum, ir.OpAdd, sum, x)
	})
	q := b.Bin(ir.OpMul, sum, bf)
	p := b.Un(ir.OpD2I, af)

	out := b.New("Out")
	var arr *ir.Var
	mkArr := func() {
		arr = b.NewArr(model.Prim(model.KindDouble), n)
		b.For(n, func(i *ir.Var) {
			x := b.Elem(xs, i)
			d := b.Bin(ir.OpAdd, x, q)
			b.SetElem(arr, i, d)
		})
	}
	steps := []func(){
		func() { b.Store(out, "p", p) },
		func() { b.Store(out, "q", q) },
		mkArr,
	}
	r.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
	for _, s := range steps {
		s()
	}
	b.Store(out, "ys", arr)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()

	// Driver.
	db := ir.NewFuncBuilder(prog, "driver", model.Type{})
	zero := db.IConst(0)
	drec := db.Local("rec", model.Object("In"))
	db.Emit(&ir.Deserialize{Dst: drec, Source: "in"})
	db.While(ir.CmpNE, drec, zero, func() {
		db.CallV("udf", drec)
		db.Emit(&ir.Deserialize{Dst: drec, Source: "in"})
	})
	db.Ret(nil)
	db.Done()

	// Random input records.
	var input []byte
	var err error
	for i := 0; i < 1+r.Intn(5); i++ {
		m := r.Intn(4)
		xsv := make([]float64, m)
		for j := range xsv {
			xsv[j] = float64(r.Intn(50)) / 2
		}
		input, err = codec.Encode("In", serde.Obj{
			"a": int64(r.Intn(100)), "b": float64(r.Intn(10)), "xs": xsv,
		}, input)
		if err != nil {
			return nil, err
		}
	}
	return &FuzzUDFCase{Prog: prog, Layouts: layouts, Codec: codec, Input: input}, nil
}

// RunHeap executes the case's driver on the baseline heap path and
// returns the output wire records.
func (c *FuzzUDFCase) RunHeap(t *testing.T) []byte {
	t.Helper()
	return runHeap(t, c.Prog, c.Layouts, c.Codec, c.Prog.Fn("driver"), c.Input, "In")
}

// NewNativeEnv builds a fresh native-mode environment over a fresh
// arena holding the case's input, plus an accessor for the sink's
// collected output bytes. Each call is independent, so the same case
// can run under multiple backends differentially.
func (c *FuzzUDFCase) NewNativeEnv() (*Env, func() []byte) {
	a := arena.New()
	in := a.AdoptBytes("input", c.Input)
	out := a.NewRegion("output")
	sink := &nativeCollectSink{a: a}
	// Gerenuk executors keep a (small) heap for control-path objects.
	h := heap.New(c.Prog.Reg, heap.Config{YoungSize: 64 << 10, OldSize: 1 << 20})
	env := &Env{
		Mode: ModeNative, Prog: c.Prog, Heap: h, Arena: a, Layouts: c.Layouts, Out: out,
		NativeSources: map[string]NativeSource{"in": &regionSource{a: a, region: in, class: "In"}},
		NativeSink:    sink,
	}
	return env, func() []byte { return sink.out }
}
