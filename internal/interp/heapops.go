package interp

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/trace"
)

// heapFieldLoad executes dst = obj.field against the simulated heap,
// paying header-relative addressing and (for chains) pointer chasing.
func (in *Interp) heapFieldLoad(t *ir.FieldLoad, obj heap.Addr) (int64, error) {
	if obj == 0 {
		return 0, fmt.Errorf("interp: null pointer reading %s.%s", t.Class, t.Field)
	}
	f := t.R
	if f == nil {
		cls := in.env.Prog.Reg.MustLookup(t.Class)
		ff := cls.MustField(t.Field)
		f = &ff
	}
	if f.Type.IsRef() {
		return in.env.Heap.GetRef(obj, f.Offset), nil
	}
	return signExtend(in.env.Heap.GetPrim(obj, f.Offset, f.Type.Kind), f.Type.Kind), nil
}

// heapFieldStore executes obj.field = src, running the write barrier for
// reference stores.
func (in *Interp) heapFieldStore(t *ir.FieldStore, obj, src int64) error {
	if obj == 0 {
		return fmt.Errorf("interp: null pointer writing %s.%s", t.Class, t.Field)
	}
	f := t.R
	if f == nil {
		cls := in.env.Prog.Reg.MustLookup(t.Class)
		ff := cls.MustField(t.Field)
		f = &ff
	}
	if f.Type.IsRef() {
		in.env.Heap.SetRef(obj, f.Offset, src)
		return nil
	}
	in.env.Heap.SetPrim(obj, f.Offset, f.Type.Kind, uint64(src))
	return nil
}

// heapString allocates a String object with its char array.
func (in *Interp) heapString(s string) (heap.Addr, error) {
	if in.env.Heap == nil {
		return 0, fmt.Errorf("interp: string constant requires a heap")
	}
	h := in.env.Heap
	runes := []rune(s)
	arr, err := h.AllocArray(model.KindChar, len(runes))
	if err != nil {
		return 0, err
	}
	// Root the array across the String allocation.
	hold := arr
	remove := h.AddRoots(heap.RootFunc(func(visit func(*heap.Addr)) { visit(&hold) }))
	for i, r := range runes {
		h.ArraySetPrim(hold, i, model.KindChar, uint64(uint16(r)))
	}
	strCls := in.env.Prog.Reg.MustLookup(model.StringClassName)
	obj, err := h.AllocObject(strCls)
	remove()
	if err != nil {
		return 0, err
	}
	h.SetRef(obj, strCls.MustField("chars").Offset, hold)
	return obj, nil
}

// deserialize executes a = readObject(): pulls the next wire record from
// the source and materializes it as heap objects — the cost Gerenuk
// eliminates. Returns 0 at end of input.
func (in *Interp) deserialize(t *ir.Deserialize) (int64, error) {
	src, ok := in.env.Sources[t.Source]
	if !ok {
		return 0, fmt.Errorf("interp: no source %q", t.Source)
	}
	buf, off, more := src.NextWire()
	if !more {
		return 0, nil
	}
	sp := in.env.Trace.Child("phase", "deserialize")
	start := time.Now()
	a, _, err := in.env.Codec.Deserialize(in.env.Heap, buf, off, src.Class())
	in.env.DeserTime += time.Since(start)
	n := int64(serde.RecordSize(buf, off))
	in.env.DeserBytes += n
	sp.End(trace.I64("bytes", n))
	if err != nil {
		return 0, err
	}
	in.env.records++
	if in.env.RecordHook != nil {
		if err := in.env.RecordHook(in.env.records); err != nil {
			return 0, err
		}
	}
	return a, nil
}

// serialize executes writeObject(a): walks the object graph into wire
// bytes and hands them to the sink.
func (in *Interp) serialize(class string, a int64) error {
	if in.env.Sink == nil {
		return fmt.Errorf("interp: no sink configured")
	}
	sp := in.env.Trace.Child("phase", "serialize")
	start := time.Now()
	wire, err := in.env.Codec.Serialize(in.env.Heap, a, class, nil)
	in.env.SerTime += time.Since(start)
	in.env.SerBytes += int64(len(wire))
	sp.End(trace.I64("bytes", int64(len(wire))))
	if err != nil {
		return err
	}
	return in.env.Sink.WriteWire(wire, class)
}

// nativeCall dispatches the whitelisted runtime-native methods in both
// modes. The heap implementations walk object graphs (pointer chasing);
// the native implementations operate directly on inlined bytes — the
// customized implementations the paper provides (section 3.4).
func (in *Interp) nativeCall(t *ir.NativeCall, f *frame) (int64, error) {
	recv := f.get(t.Recv)
	if in.env.Mode == ModeNative {
		var args []int64
		if len(t.Args) > 0 {
			args = make([]int64, len(t.Args))
			for i, a := range t.Args {
				args[i] = f.get(a)
			}
		}
		return in.env.NativeCallNative(t.Name, t.RecvClass, recv, args)
	}
	switch t.Name {
	case "clone":
		// Data records are immutable (enforced by the violation
		// conditions), so clone can safely alias in both modes; the JVM
		// identity difference is unobservable without mutation or
		// metadata use, which both abort.
		return recv, nil
	case "length":
		return in.heapStringLen(recv)
	case "charAt":
		if len(t.Args) != 1 {
			return 0, fmt.Errorf("interp: charAt expects 1 arg")
		}
		return in.heapCharAt(recv, f.get(t.Args[0]))
	case "hashCode":
		wire, err := in.env.Codec.Serialize(in.env.Heap, recv, t.RecvClass, nil)
		if err != nil {
			return 0, err
		}
		return hashBytes(wire[4:]), nil
	case "equals":
		if len(t.Args) != 1 {
			return 0, fmt.Errorf("interp: equals expects 1 arg")
		}
		w1, err := in.env.Codec.Serialize(in.env.Heap, recv, t.RecvClass, nil)
		if err != nil {
			return 0, err
		}
		w2, err := in.env.Codec.Serialize(in.env.Heap, f.get(t.Args[0]), t.RecvClass, nil)
		if err != nil {
			return 0, err
		}
		if string(w1) == string(w2) {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("interp: native method %q has no heap implementation", t.Name)
	}
}

func (in *Interp) heapStringLen(s heap.Addr) (int64, error) {
	if s == 0 {
		return 0, fmt.Errorf("interp: length() on null string")
	}
	chars := in.env.Heap.GetRef(s, in.strCharsOff)
	return int64(in.env.Heap.ArrayLen(chars)), nil
}

func (in *Interp) heapCharAt(s heap.Addr, i int64) (int64, error) {
	if s == 0 {
		return 0, fmt.Errorf("interp: charAt() on null string")
	}
	chars := in.env.Heap.GetRef(s, in.strCharsOff)
	return int64(in.env.Heap.ArrayGetPrim(chars, int(i), model.KindChar)), nil
}

// hashBytes is the canonical record hash: FNV-1a over inlined payload
// bytes. Both modes produce identical hashes because the heap
// implementation hashes the canonical serialized form.
func hashBytes(b []byte) int64 {
	h := fnv.New64a()
	h.Write(b)
	return int64(h.Sum64())
}
