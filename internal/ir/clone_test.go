package ir

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/model"
)

// allKindsFunc builds a function containing every statement kind the IR
// defines, native forms included.
func allKindsFunc() (*Program, *Func) {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "P", Fields: []model.FieldDef{
		{Name: "x", Type: model.Prim(model.KindLong)},
		{Name: "ys", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	prog := NewProgram(reg)
	f := &Func{Name: "all"}
	long := model.Prim(model.KindLong)
	dbl := model.Prim(model.KindDouble)
	obj := model.Object("P")
	arrT := model.ArrayOf(dbl)

	v := func(n string, t model.Type) *Var { return f.NewVar(n, t) }
	a, b2, c := v("a", long), v("b", long), v("c", dbl)
	o, o2 := v("o", obj), v("o2", obj)
	arr := v("arr", arrT)
	s := v("s", model.Object(model.StringClassName))
	off := expr.Konst(8).Add(expr.ReadNative(8, expr.Konst(4), 4))

	f.Body = []Stmt{
		&ConstInt{Dst: a, Val: 1},
		&ConstFloat{Dst: c, Val: 2.5},
		&ConstString{Dst: s, Val: "hi"},
		&Assign{Dst: b2, Src: a},
		&BinOp{Dst: a, Op: OpAdd, L: a, R: b2},
		&UnOp{Dst: c, Op: OpNeg, X: c},
		&New{Dst: o, Class: "P"},
		&NewArray{Dst: arr, Elem: dbl, Len: a},
		&FieldLoad{Dst: a, Obj: o, Class: "P", Field: "x"},
		&FieldStore{Obj: o, Class: "P", Field: "x", Src: a},
		&ArrayLoad{Dst: c, Arr: arr, Idx: a},
		&ArrayStore{Arr: arr, Idx: a, Src: c},
		&ArrayLen{Dst: a, Arr: arr},
		&Call{Dst: a, Fn: "g", Args: []*Var{b2}},
		&NativeCall{Dst: a, Name: "hashCode", Recv: o, RecvClass: "P"},
		&MonitorEnter{Obj: o},
		&MonitorExit{Obj: o},
		&If{Cond: Cond{Op: CmpLT, L: a, R: b2},
			Then: []Stmt{&ConstInt{Dst: a, Val: 2}},
			Else: []Stmt{&ConstInt{Dst: a, Val: 3}}},
		&While{Cond: Cond{Op: CmpGT, L: a, R: b2},
			Body: []Stmt{&BinOp{Dst: a, Op: OpSub, L: a, R: b2}}},
		&Deserialize{Dst: o, Source: "in"},
		&Serialize{Src: o, Sink: "out"},
		&Emit{Src: o},
		&GetAddress{Dst: a, Source: "in"},
		&ReadNative{Dst: a, Base: b2, Off: off, Size: 8, Kind: model.KindLong},
		&WriteNative{Base: b2, Off: off, Size: 8, Src: a},
		&AddrOf{Dst: a, Base: b2, Off: off},
		&ScanElem{Dst: a, Base: b2, Idx: a, Class: "P"},
		&AppendRecord{Dst: a, Class: "P"},
		&AppendArray{Dst: a, Elem: dbl, Len: b2},
		&ReadNativeElem{Dst: a, Base: b2, Idx: a, Kind: model.KindDouble},
		&WriteNativeElem{Base: b2, Idx: a, Kind: model.KindDouble, Src: c},
		&AddrElem{Dst: a, Base: b2, Idx: a, Stride: 16},
		&CheckInline{Base: b2, Off: off, Sub: a},
		&GConstString{Dst: a, Val: "w"},
		&GWriteObject{Src: a, Sink: "out", Class: "P"},
		&GEmit{Src: a, Class: "P"},
		&Abort{Reason: "test"},
		&Return{Val: a},
	}
	_ = o2
	return prog, f
}

// TestCloneBodyCoversEveryStatement clones a function containing every
// statement kind and checks the copies are structurally equal but
// variable-remapped.
func TestCloneBodyCoversEveryStatement(t *testing.T) {
	_, f := allKindsFunc()
	vmap := make(map[*Var]*Var, len(f.Locals))
	nf := &Func{Name: "copy"}
	for _, v := range f.Locals {
		vmap[v] = nf.NewVar(v.Name, v.Type)
	}
	out := CloneBody(f.Body, vmap)
	if len(out) != len(f.Body) {
		t.Fatalf("clone lost statements: %d vs %d", len(out), len(f.Body))
	}
	for i := range out {
		if out[i] == f.Body[i] {
			t.Errorf("statement %d aliased", i)
		}
		if out[i].String() != f.Body[i].String() {
			t.Errorf("statement %d differs:\n %s\n %s", i, out[i], f.Body[i])
		}
	}
	// The clone's defs must be the remapped variables, never originals.
	orig := map[*Var]bool{}
	for _, v := range f.Locals {
		orig[v] = true
	}
	for _, s := range out {
		if d := Defs(s); d != nil && orig[d] {
			t.Errorf("clone defines an original variable: %s", s)
		}
		for _, u := range Uses(s) {
			if u != nil && orig[u] {
				t.Errorf("clone uses an original variable: %s", s)
			}
		}
	}
}

// TestEveryStatementHasString smoke-tests the printers (gerenukc -dump).
func TestEveryStatementHasString(t *testing.T) {
	_, f := allKindsFunc()
	Walk(f.Body, func(s Stmt) {
		if s.String() == "" {
			t.Errorf("empty String() for %T", s)
		}
	})
}

// TestWalkVisitsNestedBlocks counts statements including block interiors.
func TestWalkVisitsNestedBlocks(t *testing.T) {
	_, f := allKindsFunc()
	n := 0
	Walk(f.Body, func(Stmt) { n++ })
	// Top-level count + 2 (If branches) + 1 (While body).
	if n != len(f.Body)+3 {
		t.Errorf("walk visited %d, want %d", n, len(f.Body)+3)
	}
}
