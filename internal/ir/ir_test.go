package ir

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func testProg() *Program {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "P", Fields: []model.FieldDef{
		{Name: "x", Type: model.Prim(model.KindLong)},
		{Name: "ys", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	return NewProgram(reg)
}

func TestBuilderBasics(t *testing.T) {
	prog := testProg()
	b := NewFuncBuilder(prog, "f", model.Prim(model.KindLong))
	p := b.Param("p", model.Object("P"))
	x := b.Load(p, "x")
	one := b.IConst(1)
	sum := b.Bin(OpAdd, x, one)
	b.Ret(sum)
	f := b.Done()

	if prog.Fn("f") != f {
		t.Fatalf("function not registered")
	}
	if len(f.Params) != 1 || f.Params[0] != p {
		t.Errorf("params wrong")
	}
	if f.NumSlots() != len(f.Locals) {
		t.Errorf("slot accounting wrong")
	}
	// Slots must be unique and dense.
	seen := map[int]bool{}
	for _, v := range f.Locals {
		if seen[v.Slot] {
			t.Errorf("duplicate slot %d", v.Slot)
		}
		seen[v.Slot] = true
	}
}

func TestBuilderControlFlowNesting(t *testing.T) {
	prog := testProg()
	b := NewFuncBuilder(prog, "g", model.Type{})
	n := b.IConst(3)
	zero := b.IConst(0)
	b.If(CmpGT, n, zero, func() {
		b.While(CmpGT, n, zero, func() {
			one := b.IConst(1)
			b.BinTo(n, OpSub, n, one)
		})
	}, func() {
		b.Assign(n, zero)
	})
	b.Ret(nil)
	g := b.Done()

	var ifs, whiles int
	Walk(g.Body, func(s Stmt) {
		switch s.(type) {
		case *If:
			ifs++
		case *While:
			whiles++
		}
	})
	if ifs != 1 || whiles != 1 {
		t.Errorf("walk found %d ifs, %d whiles", ifs, whiles)
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	prog := testProg()
	NewFuncBuilder(prog, "dup", model.Type{}).Done()
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate function registration did not panic")
		}
	}()
	NewFuncBuilder(prog, "dup", model.Type{}).Done()
}

func TestCloneFuncIndependence(t *testing.T) {
	prog := testProg()
	b := NewFuncBuilder(prog, "h", model.Type{})
	p := b.Param("p", model.Object("P"))
	x := b.Load(p, "x")
	two := b.IConst(2)
	b.Bin(OpMul, x, two)
	b.Ret(nil)
	f := b.Done()

	c := CloneFunc(f, "h2")
	if c.Name != "h2" || len(c.Locals) != len(f.Locals) {
		t.Fatalf("clone shape wrong")
	}
	for i := range c.Locals {
		if c.Locals[i] == f.Locals[i] {
			t.Errorf("clone shares variable %d", i)
		}
		if c.Locals[i].Slot != f.Locals[i].Slot {
			t.Errorf("clone slot mismatch at %d", i)
		}
	}
	// Mutating the clone body must not affect the original.
	c.Body = append(c.Body, &Abort{Reason: "x"})
	if len(c.Body) == len(f.Body) {
		t.Errorf("bodies aliased")
	}
}

func TestRewriteReplacesStatements(t *testing.T) {
	prog := testProg()
	b := NewFuncBuilder(prog, "r", model.Type{})
	v := b.IConst(5)
	zero := b.IConst(0)
	b.If(CmpGT, v, zero, func() {
		b.IConst(7)
	}, nil)
	b.Ret(nil)
	f := b.Done()

	// Replace every ConstInt with two Aborts.
	out := Rewrite(f.Body, func(s Stmt) []Stmt {
		if _, ok := s.(*ConstInt); ok {
			return []Stmt{&Abort{Reason: "a"}, &Abort{Reason: "b"}}
		}
		return []Stmt{s}
	})
	var aborts, consts int
	Walk(out, func(s Stmt) {
		switch s.(type) {
		case *Abort:
			aborts++
		case *ConstInt:
			consts++
		}
	})
	if consts != 0 || aborts != 6 {
		t.Errorf("rewrite left %d consts, made %d aborts", consts, aborts)
	}
}

func TestDefsAndUses(t *testing.T) {
	prog := testProg()
	b := NewFuncBuilder(prog, "du", model.Type{})
	p := b.Param("p", model.Object("P"))
	x := b.Load(p, "x")
	one := b.IConst(1)
	sum := b.Bin(OpAdd, x, one)
	_ = sum
	b.Ret(nil)
	f := b.Done()

	for _, s := range f.Body {
		d := Defs(s)
		us := Uses(s)
		switch t2 := s.(type) {
		case *FieldLoad:
			if d != t2.Dst || len(us) != 1 || us[0] != t2.Obj {
				t.Errorf("FieldLoad defs/uses wrong")
			}
		case *BinOp:
			if d != t2.Dst || len(us) != 2 {
				t.Errorf("BinOp defs/uses wrong")
			}
		}
	}
}

func TestStringerOutput(t *testing.T) {
	prog := testProg()
	b := NewFuncBuilder(prog, "s", model.Type{})
	p := b.Param("p", model.Object("P"))
	x := b.Load(p, "x")
	_ = x
	b.Ret(nil)
	f := b.Done()
	var sb strings.Builder
	Walk(f.Body, func(s Stmt) { sb.WriteString(s.String() + "\n") })
	out := sb.String()
	for _, want := range []string{"p.x", "return"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
}

func TestResolveProgramFillsCaches(t *testing.T) {
	prog := testProg()
	hb := NewFuncBuilder(prog, "helper", model.Type{})
	hp := hb.Param("p", model.Object("P"))
	hb.Load(hp, "x")
	hb.Ret(nil)
	hb.Done()

	b := NewFuncBuilder(prog, "main", model.Type{})
	p := b.Param("p", model.Object("P"))
	b.CallV("helper", p)
	q := b.New("P")
	_ = q
	b.Ret(nil)
	b.Done()

	prog.ResolveProgram("main")
	var resolved, allocs int
	for _, name := range []string{"main", "helper"} {
		Walk(prog.Fn(name).Body, func(s Stmt) {
			switch t2 := s.(type) {
			case *FieldLoad:
				if t2.R != nil {
					resolved++
				}
			case *New:
				if t2.R != nil {
					allocs++
				}
			}
		})
	}
	if resolved == 0 || allocs == 0 {
		t.Errorf("resolution caches not filled: fields=%d allocs=%d", resolved, allocs)
	}
}

func TestForLoopSemantics(t *testing.T) {
	prog := testProg()
	b := NewFuncBuilder(prog, "loop", model.Prim(model.KindLong))
	n := b.Param("n", model.Prim(model.KindLong))
	sum := b.Local("sum", model.Prim(model.KindLong))
	zero := b.IConst(0)
	b.Assign(sum, zero)
	b.For(n, func(i *Var) {
		b.BinTo(sum, OpAdd, sum, i)
	})
	b.Ret(sum)
	f := b.Done()
	// Structure check: exactly one top-level While with an increment.
	var whiles int
	for _, s := range f.Body {
		if _, ok := s.(*While); ok {
			whiles++
		}
	}
	if whiles != 1 {
		t.Errorf("For emitted %d whiles", whiles)
	}
}
