// Package ir defines the statement-level intermediate representation that
// stands in for JVM bytecode in this reproduction.
//
// The Gerenuk compiler operates on statements (paper section 3.5,
// Algorithm 1 lists nine statement cases), so the IR is three-address
// structured code: every operand is a typed local variable, heap accesses
// are explicit FieldLoad/FieldStore/ArrayLoad/ArrayStore statements,
// allocation is explicit, and the SER boundaries appear as Deserialize
// (readObject) and Serialize (writeObject) statements. Control flow is
// structured (If/While) because the analyses are flow-insensitive — the
// paper's taint analysis does not track control dependence (section 3.2).
//
// Both system code (the dataflow engines' per-task record loops) and user
// code (map/reduce UDFs) are expressed in this IR, so the SER code
// analyzer sees the same mixed control/data statements a JVM system
// presents. The interpreter (internal/interp) executes the IR against the
// simulated managed heap; after the Gerenuk transformation, the rewritten
// IR contains native statements (ReadNative, WriteNative, AppendRecord,
// GetAddress, GWriteObject, Abort) executed against arena buffers.
package ir

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/model"
)

// Var is a typed local variable (or parameter) of a function.
type Var struct {
	Name string
	Type model.Type
	// Slot is the frame index assigned by the owning function.
	Slot int
}

func (v *Var) String() string {
	if v == nil {
		return "_"
	}
	return v.Name
}

// BinKind enumerates binary arithmetic/logic operators. Integer vs
// floating-point behavior is selected by the destination variable's kind.
type BinKind uint8

// Binary operators.
const (
	OpAdd BinKind = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMin
	OpMax
)

var binNames = [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "min", "max"}

func (b BinKind) String() string { return binNames[b] }

// UnKind enumerates unary operators, including numeric conversions.
type UnKind uint8

// Unary operators.
const (
	OpNeg UnKind = iota
	OpNot
	OpI2D // int64 -> double
	OpD2I // double -> int64 (truncating)
	OpAbs
	OpSqrt
	OpExp
	OpLog
)

var unNames = [...]string{"neg", "not", "i2d", "d2i", "abs", "sqrt", "exp", "log"}

func (u UnKind) String() string { return unNames[u] }

// CmpKind enumerates comparison operators for conditions.
type CmpKind uint8

// Comparison operators.
const (
	CmpEQ CmpKind = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

func (c CmpKind) String() string { return cmpNames[c] }

// Cond is a comparison between two locals. Floating-point comparison is
// selected by the kind of L.
type Cond struct {
	Op   CmpKind
	L, R *Var
}

func (c Cond) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// Stmt is the interface implemented by all IR statements.
type Stmt interface {
	fmt.Stringer
	stmt()
}

// ---- ordinary statements ----

// ConstInt assigns an integer constant: dst = val.
type ConstInt struct {
	Dst *Var
	Val int64
}

// ConstFloat assigns a floating constant: dst = val.
type ConstFloat struct {
	Dst *Var
	Val float64
}

// ConstString assigns a string literal: dst = "val". In heap mode it
// allocates a String object with a char array.
type ConstString struct {
	Dst *Var
	Val string
}

// Assign copies a local: dst = src (Algorithm 1 Case 2; parameter passing
// is Case 3 and is represented the same way at call sites).
type Assign struct {
	Dst, Src *Var
}

// BinOp computes dst = l op r.
type BinOp struct {
	Dst  *Var
	Op   BinKind
	L, R *Var
}

// UnOp computes dst = op x.
type UnOp struct {
	Dst *Var
	Op  UnKind
	X   *Var
}

// FieldLoad reads an object field: dst = obj.field (Case 5).
type FieldLoad struct {
	Dst   *Var
	Obj   *Var
	Class string // static class of obj
	Field string
	// R caches the resolved field (filled once by the compile-time
	// resolve pass, mirroring JVM constant-pool resolution).
	R *model.Field
}

// FieldStore writes an object field: obj.field = src (Case 4).
type FieldStore struct {
	Obj   *Var
	Class string
	Field string
	Src   *Var
	// R caches the resolved field (see FieldLoad.R).
	R *model.Field
}

// ArrayLoad reads an element: dst = arr[idx].
type ArrayLoad struct {
	Dst, Arr, Idx *Var
}

// ArrayStore writes an element: arr[idx] = src.
type ArrayStore struct {
	Arr, Idx, Src *Var
}

// ArrayLen reads the length: dst = arr.length.
type ArrayLen struct {
	Dst, Arr *Var
}

// New allocates an object: dst = new Class() (Case 6).
type New struct {
	Dst   *Var
	Class string
	// R caches the resolved class.
	R *model.Class
}

// NewArray allocates an array: dst = new Elem[len].
type NewArray struct {
	Dst  *Var
	Elem model.Type
	Len  *Var
}

// Call invokes another IR function: dst = fn(args...). Calls made on
// data objects are inlined and transformed by the compiler (Case 9).
type Call struct {
	Dst  *Var // nil for void calls
	Fn   string
	Args []*Var
}

// NativeCall invokes a runtime-native method on a receiver:
// dst = recv.name(args...). Native methods are violation condition #3
// unless whitelisted (clone, hashCode, toString, arrayCopy).
type NativeCall struct {
	Dst  *Var
	Name string
	Recv *Var
	Args []*Var
	// RecvClass is the receiver's static class, preserved across the
	// transformation (which retypes data variables to long).
	RecvClass string
}

// MonitorEnter models `synchronized(obj) {` — using an object's metadata
// as a lock, violation condition #4.
type MonitorEnter struct {
	Obj *Var
}

// MonitorExit closes a MonitorEnter.
type MonitorExit struct {
	Obj *Var
}

// If is structured two-way branching.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// While is a structured loop.
type While struct {
	Cond Cond
	Body []Stmt
}

// Return exits the function, optionally yielding a value.
type Return struct {
	Val *Var // nil for void
}

// Deserialize is the SER source: dst = readObject() (the start of the
// data flow in Figure 1). The engine binds Source to a concrete input
// iterator at run time.
type Deserialize struct {
	Dst    *Var
	Source string
}

// Serialize is the SER sink: writeObject(src).
type Serialize struct {
	Src  *Var
	Sink string
}

// Emit hands a record to the engine's output collector (e.g. Hadoop's
// context.write or the iterator feeding a shuffle writer). The engine
// lowers Emit into Serialize at task-build time, so for the analyses it
// is also a sink.
type Emit struct {
	Src *Var
}

// ---- statements introduced by the Gerenuk transformation ----

// GetAddress replaces a Deserialize: dst = getAddress() returns the
// native address of the next top-level record (Case 1).
type GetAddress struct {
	Dst    *Var
	Source string
}

// ReadNative reads Size bytes at Base+Off: dst = readNative(base, off, sz)
// (Case 5 lowering). Kind selects sign/float interpretation.
type ReadNative struct {
	Dst  *Var
	Base *Var
	Off  *expr.Expr
	Size int
	Kind model.Kind
}

// WriteNative writes Size bytes at Base+Off (Case 4 lowering).
type WriteNative struct {
	Base *Var
	Off  *expr.Expr
	Size int
	Src  *Var
}

// AddrOf computes an inlined sub-record address: dst = base + off.
// Produced when a reference-typed field load is transformed: in the
// inlined representation the "reference" is just an interior offset.
type AddrOf struct {
	Dst  *Var
	Base *Var
	Off  *expr.Expr
}

// ScanElem computes the address of element idx of an inlined array of
// variable-size records: dst = walk(base, idx). Fixed-stride arrays use
// AddrOf with a symbolic multiply instead; variable-size element classes
// require walking size expressions element by element.
type ScanElem struct {
	Dst   *Var
	Base  *Var // address of the array length slot
	Idx   *Var
	Class string // element class (its size expression drives the walk)
}

// AppendRecord replaces an allocation (Case 6): it opens or continues the
// current record under construction in the task output region, reserving
// the class's fixed prefix.
type AppendRecord struct {
	Dst   *Var
	Class string
}

// AppendArray replaces a NewArray inside a record: the array's 4-byte
// length slot and zeroed payload are appended at the current end of the
// record under construction — which is the array's layout position when
// construction order matches declaration order — and the length slot is
// registered with the builder, firing the array-creation event of
// section 3.6 that releases any parked symbolic-offset writes.
type AppendArray struct {
	Dst  *Var // receives the address of the length slot
	Elem model.Type
	Len  *Var
}

// GWriteObject replaces a Serialize (Case 8): the record's inlined bytes
// are copied to the output stream as-is, with no serialization walk.
// Class records the record's static type, which the address-typed Src no
// longer carries after transformation.
type GWriteObject struct {
	Src   *Var
	Sink  string
	Class string
}

// GEmit replaces an Emit on the native path.
type GEmit struct {
	Src   *Var
	Class string
}

// Abort terminates the speculative execution (Case 7). The runtime
// discards the task and re-executes the untransformed version.
type Abort struct {
	Reason string
}

func (*ConstInt) stmt()     {}
func (*ConstFloat) stmt()   {}
func (*ConstString) stmt()  {}
func (*Assign) stmt()       {}
func (*BinOp) stmt()        {}
func (*UnOp) stmt()         {}
func (*FieldLoad) stmt()    {}
func (*FieldStore) stmt()   {}
func (*ArrayLoad) stmt()    {}
func (*ArrayStore) stmt()   {}
func (*ArrayLen) stmt()     {}
func (*New) stmt()          {}
func (*NewArray) stmt()     {}
func (*Call) stmt()         {}
func (*NativeCall) stmt()   {}
func (*MonitorEnter) stmt() {}
func (*MonitorExit) stmt()  {}
func (*If) stmt()           {}
func (*While) stmt()        {}
func (*Return) stmt()       {}
func (*Deserialize) stmt()  {}
func (*Serialize) stmt()    {}
func (*Emit) stmt()         {}
func (*GetAddress) stmt()   {}
func (*ReadNative) stmt()   {}
func (*WriteNative) stmt()  {}
func (*AddrOf) stmt()       {}
func (*ScanElem) stmt()     {}
func (*AppendRecord) stmt() {}
func (*AppendArray) stmt()  {}
func (*GWriteObject) stmt() {}
func (*GEmit) stmt()        {}
func (*Abort) stmt()        {}

func (s *ConstInt) String() string    { return fmt.Sprintf("%s = %d", s.Dst, s.Val) }
func (s *ConstFloat) String() string  { return fmt.Sprintf("%s = %g", s.Dst, s.Val) }
func (s *ConstString) String() string { return fmt.Sprintf("%s = %q", s.Dst, s.Val) }
func (s *Assign) String() string      { return fmt.Sprintf("%s = %s", s.Dst, s.Src) }
func (s *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s %s", s.Dst, s.L, s.Op, s.R)
}
func (s *UnOp) String() string { return fmt.Sprintf("%s = %s %s", s.Dst, s.Op, s.X) }
func (s *FieldLoad) String() string {
	return fmt.Sprintf("%s = %s.%s", s.Dst, s.Obj, s.Field)
}
func (s *FieldStore) String() string {
	return fmt.Sprintf("%s.%s = %s", s.Obj, s.Field, s.Src)
}
func (s *ArrayLoad) String() string  { return fmt.Sprintf("%s = %s[%s]", s.Dst, s.Arr, s.Idx) }
func (s *ArrayStore) String() string { return fmt.Sprintf("%s[%s] = %s", s.Arr, s.Idx, s.Src) }
func (s *ArrayLen) String() string   { return fmt.Sprintf("%s = %s.length", s.Dst, s.Arr) }
func (s *New) String() string        { return fmt.Sprintf("%s = new %s()", s.Dst, s.Class) }
func (s *NewArray) String() string {
	return fmt.Sprintf("%s = new %s[%s]", s.Dst, s.Elem, s.Len)
}
func (s *Call) String() string {
	if s.Dst != nil {
		return fmt.Sprintf("%s = %s(%s)", s.Dst, s.Fn, varList(s.Args))
	}
	return fmt.Sprintf("%s(%s)", s.Fn, varList(s.Args))
}
func (s *NativeCall) String() string {
	if s.Dst != nil {
		return fmt.Sprintf("%s = %s.%s(%s) [native]", s.Dst, s.Recv, s.Name, varList(s.Args))
	}
	return fmt.Sprintf("%s.%s(%s) [native]", s.Recv, s.Name, varList(s.Args))
}
func (s *MonitorEnter) String() string { return fmt.Sprintf("monitorenter %s", s.Obj) }
func (s *MonitorExit) String() string  { return fmt.Sprintf("monitorexit %s", s.Obj) }
func (s *If) String() string           { return fmt.Sprintf("if %s {...}", s.Cond) }
func (s *While) String() string        { return fmt.Sprintf("while %s {...}", s.Cond) }
func (s *Return) String() string {
	if s.Val != nil {
		return fmt.Sprintf("return %s", s.Val)
	}
	return "return"
}
func (s *Deserialize) String() string { return fmt.Sprintf("%s = readObject() <%s>", s.Dst, s.Source) }
func (s *Serialize) String() string   { return fmt.Sprintf("writeObject(%s) <%s>", s.Src, s.Sink) }
func (s *Emit) String() string        { return fmt.Sprintf("emit(%s)", s.Src) }
func (s *GetAddress) String() string  { return fmt.Sprintf("%s = getAddress() <%s>", s.Dst, s.Source) }
func (s *ReadNative) String() string {
	return fmt.Sprintf("%s = readNative(%s, %s, %d)", s.Dst, s.Base, s.Off, s.Size)
}
func (s *WriteNative) String() string {
	return fmt.Sprintf("writeNative(%s, %s, %d, %s)", s.Base, s.Off, s.Size, s.Src)
}
func (s *AddrOf) String() string { return fmt.Sprintf("%s = %s + (%s)", s.Dst, s.Base, s.Off) }
func (s *ScanElem) String() string {
	return fmt.Sprintf("%s = scanElem(%s, %s) <%s>", s.Dst, s.Base, s.Idx, s.Class)
}
func (s *AppendRecord) String() string {
	return fmt.Sprintf("%s = appendToBuffer(<%s>)", s.Dst, s.Class)
}
func (s *AppendArray) String() string {
	return fmt.Sprintf("%s = appendArray(%s[%s])", s.Dst, s.Elem, s.Len)
}
func (s *GWriteObject) String() string { return fmt.Sprintf("gWriteObject(%s) <%s>", s.Src, s.Sink) }
func (s *GEmit) String() string        { return fmt.Sprintf("gEmit(%s)", s.Src) }
func (s *Abort) String() string        { return fmt.Sprintf("ABORT(%s)", s.Reason) }

func varList(vs []*Var) string {
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += ", "
		}
		out += v.String()
	}
	return out
}

// Func is an IR function: named, with typed parameters and locals.
type Func struct {
	Name   string
	Params []*Var
	// Locals holds every variable of the function including parameters
	// (params occupy the first slots).
	Locals []*Var
	Body   []Stmt
	// Ret is the declared return type; zero Type for void.
	Ret model.Type
}

// NumSlots returns the frame size.
func (f *Func) NumSlots() int { return len(f.Locals) }

// NewVar appends a fresh local to the function.
func (f *Func) NewVar(name string, t model.Type) *Var {
	v := &Var{Name: name, Type: t, Slot: len(f.Locals)}
	f.Locals = append(f.Locals, v)
	return v
}

// Program is a set of functions plus the schema information the Gerenuk
// compiler needs: which classes are top-level data types (the user
// annotation of section 3.1) and the class registry.
type Program struct {
	Reg   *model.Registry
	Funcs map[string]*Func
	// TopTypes are the user-annotated top-level data types T (e.g. the
	// RDD element classes).
	TopTypes []string
}

// NewProgram returns an empty program over the registry.
func NewProgram(reg *model.Registry) *Program {
	return &Program{Reg: reg, Funcs: make(map[string]*Func)}
}

// Add registers a function, panicking on duplicates (program construction
// is static).
func (p *Program) Add(f *Func) *Func {
	if _, dup := p.Funcs[f.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", f.Name))
	}
	p.Funcs[f.Name] = f
	return f
}

// Fn returns the named function, panicking if missing.
func (p *Program) Fn(name string) *Func {
	f, ok := p.Funcs[name]
	if !ok {
		panic(fmt.Sprintf("ir: unknown function %q", name))
	}
	return f
}

// Walk visits every statement in the body, recursing into If/While blocks
// in order.
func Walk(body []Stmt, visit func(Stmt)) {
	for _, s := range body {
		visit(s)
		switch t := s.(type) {
		case *If:
			Walk(t.Then, visit)
			Walk(t.Else, visit)
		case *While:
			Walk(t.Body, visit)
		}
	}
}

// Rewrite maps every statement through f, which returns the replacement
// statement list (possibly the original, possibly several statements —
// the EMIT+REPLACE pattern of Algorithm 1). Block statements have their
// bodies rewritten first, then the block itself is passed to f.
func Rewrite(body []Stmt, f func(Stmt) []Stmt) []Stmt {
	var out []Stmt
	for _, s := range body {
		switch t := s.(type) {
		case *If:
			t.Then = Rewrite(t.Then, f)
			t.Else = Rewrite(t.Else, f)
		case *While:
			t.Body = Rewrite(t.Body, f)
		}
		out = append(out, f(s)...)
	}
	return out
}

// CloneBody deep-copies a statement list, remapping variables through
// vmap (identity if a variable is absent). Used to inline functions and
// to keep the original SER for slow-path re-execution.
func CloneBody(body []Stmt, vmap map[*Var]*Var) []Stmt {
	mv := func(v *Var) *Var {
		if v == nil {
			return nil
		}
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v
	}
	mvs := func(vs []*Var) []*Var {
		out := make([]*Var, len(vs))
		for i, v := range vs {
			out[i] = mv(v)
		}
		return out
	}
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch t := s.(type) {
		case *ConstInt:
			out = append(out, &ConstInt{Dst: mv(t.Dst), Val: t.Val})
		case *ConstFloat:
			out = append(out, &ConstFloat{Dst: mv(t.Dst), Val: t.Val})
		case *ConstString:
			out = append(out, &ConstString{Dst: mv(t.Dst), Val: t.Val})
		case *Assign:
			out = append(out, &Assign{Dst: mv(t.Dst), Src: mv(t.Src)})
		case *BinOp:
			out = append(out, &BinOp{Dst: mv(t.Dst), Op: t.Op, L: mv(t.L), R: mv(t.R)})
		case *UnOp:
			out = append(out, &UnOp{Dst: mv(t.Dst), Op: t.Op, X: mv(t.X)})
		case *FieldLoad:
			out = append(out, &FieldLoad{Dst: mv(t.Dst), Obj: mv(t.Obj), Class: t.Class, Field: t.Field, R: t.R})
		case *FieldStore:
			out = append(out, &FieldStore{Obj: mv(t.Obj), Class: t.Class, Field: t.Field, Src: mv(t.Src), R: t.R})
		case *ArrayLoad:
			out = append(out, &ArrayLoad{Dst: mv(t.Dst), Arr: mv(t.Arr), Idx: mv(t.Idx)})
		case *ArrayStore:
			out = append(out, &ArrayStore{Arr: mv(t.Arr), Idx: mv(t.Idx), Src: mv(t.Src)})
		case *ArrayLen:
			out = append(out, &ArrayLen{Dst: mv(t.Dst), Arr: mv(t.Arr)})
		case *New:
			out = append(out, &New{Dst: mv(t.Dst), Class: t.Class, R: t.R})
		case *NewArray:
			out = append(out, &NewArray{Dst: mv(t.Dst), Elem: t.Elem, Len: mv(t.Len)})
		case *Call:
			out = append(out, &Call{Dst: mv(t.Dst), Fn: t.Fn, Args: mvs(t.Args)})
		case *NativeCall:
			out = append(out, &NativeCall{Dst: mv(t.Dst), Name: t.Name, Recv: mv(t.Recv), Args: mvs(t.Args), RecvClass: t.RecvClass})
		case *MonitorEnter:
			out = append(out, &MonitorEnter{Obj: mv(t.Obj)})
		case *MonitorExit:
			out = append(out, &MonitorExit{Obj: mv(t.Obj)})
		case *If:
			out = append(out, &If{
				Cond: Cond{Op: t.Cond.Op, L: mv(t.Cond.L), R: mv(t.Cond.R)},
				Then: CloneBody(t.Then, vmap),
				Else: CloneBody(t.Else, vmap),
			})
		case *While:
			out = append(out, &While{
				Cond: Cond{Op: t.Cond.Op, L: mv(t.Cond.L), R: mv(t.Cond.R)},
				Body: CloneBody(t.Body, vmap),
			})
		case *Return:
			out = append(out, &Return{Val: mv(t.Val)})
		case *Deserialize:
			out = append(out, &Deserialize{Dst: mv(t.Dst), Source: t.Source})
		case *Serialize:
			out = append(out, &Serialize{Src: mv(t.Src), Sink: t.Sink})
		case *Emit:
			out = append(out, &Emit{Src: mv(t.Src)})
		case *GetAddress:
			out = append(out, &GetAddress{Dst: mv(t.Dst), Source: t.Source})
		case *ReadNative:
			out = append(out, &ReadNative{Dst: mv(t.Dst), Base: mv(t.Base), Off: t.Off, Size: t.Size, Kind: t.Kind})
		case *WriteNative:
			out = append(out, &WriteNative{Base: mv(t.Base), Off: t.Off, Size: t.Size, Src: mv(t.Src)})
		case *AddrOf:
			out = append(out, &AddrOf{Dst: mv(t.Dst), Base: mv(t.Base), Off: t.Off})
		case *ScanElem:
			out = append(out, &ScanElem{Dst: mv(t.Dst), Base: mv(t.Base), Idx: mv(t.Idx), Class: t.Class})
		case *AppendRecord:
			out = append(out, &AppendRecord{Dst: mv(t.Dst), Class: t.Class})
		case *AppendArray:
			out = append(out, &AppendArray{Dst: mv(t.Dst), Elem: t.Elem, Len: mv(t.Len)})
		case *ReadNativeElem:
			out = append(out, &ReadNativeElem{Dst: mv(t.Dst), Base: mv(t.Base), Idx: mv(t.Idx), Kind: t.Kind})
		case *WriteNativeElem:
			out = append(out, &WriteNativeElem{Base: mv(t.Base), Idx: mv(t.Idx), Kind: t.Kind, Src: mv(t.Src)})
		case *AddrElem:
			out = append(out, &AddrElem{Dst: mv(t.Dst), Base: mv(t.Base), Idx: mv(t.Idx), Stride: t.Stride})
		case *CheckInline:
			out = append(out, &CheckInline{Base: mv(t.Base), Off: t.Off, Sub: mv(t.Sub)})
		case *GConstString:
			out = append(out, &GConstString{Dst: mv(t.Dst), Val: t.Val})
		case *GWriteObject:
			out = append(out, &GWriteObject{Src: mv(t.Src), Sink: t.Sink, Class: t.Class})
		case *GEmit:
			out = append(out, &GEmit{Src: mv(t.Src), Class: t.Class})
		case *Abort:
			out = append(out, &Abort{Reason: t.Reason})
		default:
			panic(fmt.Sprintf("ir: CloneBody of unknown statement %T", s))
		}
	}
	return out
}

// CloneFunc deep-copies a function, producing fresh variables.
func CloneFunc(f *Func, newName string) *Func {
	nf := &Func{Name: newName, Ret: f.Ret}
	vmap := make(map[*Var]*Var, len(f.Locals))
	for _, v := range f.Locals {
		nv := &Var{Name: v.Name, Type: v.Type, Slot: v.Slot}
		vmap[v] = nv
		nf.Locals = append(nf.Locals, nv)
	}
	for _, p := range f.Params {
		nf.Params = append(nf.Params, vmap[p])
	}
	nf.Body = CloneBody(f.Body, vmap)
	return nf
}

// Defs returns the variable a statement defines (nil if none).
func Defs(s Stmt) *Var {
	switch t := s.(type) {
	case *ConstInt:
		return t.Dst
	case *ConstFloat:
		return t.Dst
	case *ConstString:
		return t.Dst
	case *Assign:
		return t.Dst
	case *BinOp:
		return t.Dst
	case *UnOp:
		return t.Dst
	case *FieldLoad:
		return t.Dst
	case *ArrayLoad:
		return t.Dst
	case *ArrayLen:
		return t.Dst
	case *New:
		return t.Dst
	case *NewArray:
		return t.Dst
	case *Call:
		return t.Dst
	case *NativeCall:
		return t.Dst
	case *Deserialize:
		return t.Dst
	case *GetAddress:
		return t.Dst
	case *ReadNative:
		return t.Dst
	case *AddrOf:
		return t.Dst
	case *ScanElem:
		return t.Dst
	case *AppendRecord:
		return t.Dst
	case *AppendArray:
		return t.Dst
	case *ReadNativeElem:
		return t.Dst
	case *AddrElem:
		return t.Dst
	case *GConstString:
		return t.Dst
	}
	return nil
}

// Uses returns the variables a statement reads.
func Uses(s Stmt) []*Var {
	switch t := s.(type) {
	case *Assign:
		return []*Var{t.Src}
	case *BinOp:
		return []*Var{t.L, t.R}
	case *UnOp:
		return []*Var{t.X}
	case *FieldLoad:
		return []*Var{t.Obj}
	case *FieldStore:
		return []*Var{t.Obj, t.Src}
	case *ArrayLoad:
		return []*Var{t.Arr, t.Idx}
	case *ArrayStore:
		return []*Var{t.Arr, t.Idx, t.Src}
	case *ArrayLen:
		return []*Var{t.Arr}
	case *NewArray:
		return []*Var{t.Len}
	case *Call:
		return t.Args
	case *NativeCall:
		return append([]*Var{t.Recv}, t.Args...)
	case *MonitorEnter:
		return []*Var{t.Obj}
	case *MonitorExit:
		return []*Var{t.Obj}
	case *If:
		return []*Var{t.Cond.L, t.Cond.R}
	case *While:
		return []*Var{t.Cond.L, t.Cond.R}
	case *Return:
		if t.Val != nil {
			return []*Var{t.Val}
		}
	case *Serialize:
		return []*Var{t.Src}
	case *Emit:
		return []*Var{t.Src}
	}
	return nil
}

// ResolveProgram fills the runtime resolution caches (field and class
// lookups) of every function reachable from entry, mirroring the JVM's
// one-time constant-pool resolution so interpreted field accesses do not
// pay per-access map lookups. It must run before concurrent execution;
// the interpreter only reads the caches.
func (p *Program) ResolveProgram(entry string) {
	seen := map[string]bool{}
	var resolve func(name string)
	resolve = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		fn, ok := p.Funcs[name]
		if !ok {
			return
		}
		Walk(fn.Body, func(s Stmt) {
			switch t := s.(type) {
			case *FieldLoad:
				if t.R == nil {
					if cls, ok := p.Reg.Lookup(t.Class); ok {
						if f, ok := cls.Field(t.Field); ok {
							t.R = &f
						}
					}
				}
			case *FieldStore:
				if t.R == nil {
					if cls, ok := p.Reg.Lookup(t.Class); ok {
						if f, ok := cls.Field(t.Field); ok {
							t.R = &f
						}
					}
				}
			case *New:
				if t.R == nil {
					if cls, ok := p.Reg.Lookup(t.Class); ok {
						t.R = cls
					}
				}
			case *Call:
				resolve(t.Fn)
			}
		})
	}
	resolve(entry)
}
