package ir

import (
	"fmt"

	"repro/internal/model"
)

// FB is a fluent function builder. It keeps a stack of statement blocks
// so structured control flow reads naturally:
//
//	b := ir.NewFuncBuilder(prog, "double", model.Prim(model.KindDouble))
//	x := b.Param("x", model.Prim(model.KindDouble))
//	two := b.FConst(2)
//	b.Ret(b.Bin(OpMul, x, two))
//	f := b.Done()
type FB struct {
	prog   *Program
	f      *Func
	blocks []*[]Stmt
	tmp    int
}

// NewFuncBuilder starts building a function with the given return type
// (zero Type for void). The finished function is added to prog by Done.
func NewFuncBuilder(prog *Program, name string, ret model.Type) *FB {
	f := &Func{Name: name, Ret: ret}
	b := &FB{prog: prog, f: f}
	b.blocks = []*[]Stmt{&f.Body}
	return b
}

// Done finalizes the function and registers it with the program.
func (b *FB) Done() *Func {
	if len(b.blocks) != 1 {
		panic(fmt.Sprintf("ir: unbalanced blocks in %q", b.f.Name))
	}
	b.prog.Add(b.f)
	return b.f
}

// Param declares a parameter.
func (b *FB) Param(name string, t model.Type) *Var {
	v := b.f.NewVar(name, t)
	b.f.Params = append(b.f.Params, v)
	return v
}

// Local declares a named local variable.
func (b *FB) Local(name string, t model.Type) *Var { return b.f.NewVar(name, t) }

// Temp declares an anonymous temporary.
func (b *FB) Temp(t model.Type) *Var {
	b.tmp++
	return b.f.NewVar(fmt.Sprintf("t%d", b.tmp), t)
}

func (b *FB) emit(s Stmt) { *b.blocks[len(b.blocks)-1] = append(*b.blocks[len(b.blocks)-1], s) }

// Emit appends an arbitrary prebuilt statement.
func (b *FB) Emit(s Stmt) { b.emit(s) }

// IConst yields a fresh long temp holding an integer constant.
func (b *FB) IConst(v int64) *Var {
	t := b.Temp(model.Prim(model.KindLong))
	b.emit(&ConstInt{Dst: t, Val: v})
	return t
}

// FConst yields a fresh double temp holding a floating constant.
func (b *FB) FConst(v float64) *Var {
	t := b.Temp(model.Prim(model.KindDouble))
	b.emit(&ConstFloat{Dst: t, Val: v})
	return t
}

// SConst yields a fresh String temp holding a string literal.
func (b *FB) SConst(v string) *Var {
	t := b.Temp(model.Object(model.StringClassName))
	b.emit(&ConstString{Dst: t, Val: v})
	return t
}

// Assign emits dst = src.
func (b *FB) Assign(dst, src *Var) { b.emit(&Assign{Dst: dst, Src: src}) }

// Bin yields l op r in a fresh temp typed like l.
func (b *FB) Bin(op BinKind, l, r *Var) *Var {
	t := b.Temp(l.Type)
	b.emit(&BinOp{Dst: t, Op: op, L: l, R: r})
	return t
}

// BinTo emits dst = l op r.
func (b *FB) BinTo(dst *Var, op BinKind, l, r *Var) {
	b.emit(&BinOp{Dst: dst, Op: op, L: l, R: r})
}

// Un yields op x in a fresh temp. Conversions pick the converted type.
func (b *FB) Un(op UnKind, x *Var) *Var {
	t := x.Type
	switch op {
	case OpI2D:
		t = model.Prim(model.KindDouble)
	case OpD2I:
		t = model.Prim(model.KindLong)
	case OpSqrt, OpExp, OpLog:
		t = model.Prim(model.KindDouble)
	}
	v := b.Temp(t)
	b.emit(&UnOp{Dst: v, Op: op, X: x})
	return v
}

// Load yields obj.field in a fresh temp with the field's declared type.
func (b *FB) Load(obj *Var, field string) *Var {
	cls := b.classOf(obj)
	f := cls.MustField(field)
	t := b.Temp(f.Type)
	b.emit(&FieldLoad{Dst: t, Obj: obj, Class: cls.Name, Field: field})
	return t
}

// Store emits obj.field = src.
func (b *FB) Store(obj *Var, field string, src *Var) {
	cls := b.classOf(obj)
	b.emit(&FieldStore{Obj: obj, Class: cls.Name, Field: field, Src: src})
}

func (b *FB) classOf(obj *Var) *model.Class {
	if !obj.Type.IsRef() || obj.Type.Array {
		panic(fmt.Sprintf("ir: %s is not an object (type %s)", obj, obj.Type))
	}
	return b.prog.Reg.MustLookup(obj.Type.Class)
}

// Elem yields arr[idx] in a fresh temp of the element type.
func (b *FB) Elem(arr, idx *Var) *Var {
	if !arr.Type.Array {
		panic(fmt.Sprintf("ir: %s is not an array", arr))
	}
	t := b.Temp(*arr.Type.Elem)
	b.emit(&ArrayLoad{Dst: t, Arr: arr, Idx: idx})
	return t
}

// SetElem emits arr[idx] = src.
func (b *FB) SetElem(arr, idx, src *Var) { b.emit(&ArrayStore{Arr: arr, Idx: idx, Src: src}) }

// Len yields arr.length in a fresh long temp.
func (b *FB) Len(arr *Var) *Var {
	t := b.Temp(model.Prim(model.KindLong))
	b.emit(&ArrayLen{Dst: t, Arr: arr})
	return t
}

// New yields a fresh instance of the class.
func (b *FB) New(class string) *Var {
	t := b.Temp(model.Object(class))
	b.emit(&New{Dst: t, Class: class})
	return t
}

// NewArr yields a fresh array of elem with the given length.
func (b *FB) NewArr(elem model.Type, n *Var) *Var {
	t := b.Temp(model.ArrayOf(elem))
	b.emit(&NewArray{Dst: t, Elem: elem, Len: n})
	return t
}

// CallV emits a void call.
func (b *FB) CallV(fn string, args ...*Var) { b.emit(&Call{Fn: fn, Args: args}) }

// Call yields fn(args...) in a fresh temp of type ret.
func (b *FB) Call(fn string, ret model.Type, args ...*Var) *Var {
	t := b.Temp(ret)
	b.emit(&Call{Dst: t, Fn: fn, Args: args})
	return t
}

// Native yields recv.name(args...) for a runtime-native method.
func (b *FB) Native(name string, ret model.Type, recv *Var, args ...*Var) *Var {
	t := b.Temp(ret)
	b.emit(&NativeCall{Dst: t, Name: name, Recv: recv, Args: args, RecvClass: recv.Type.Class})
	return t
}

// Synchronized wraps body in MonitorEnter/MonitorExit on obj.
func (b *FB) Synchronized(obj *Var, body func()) {
	b.emit(&MonitorEnter{Obj: obj})
	body()
	b.emit(&MonitorExit{Obj: obj})
}

// If emits a two-way branch; elseBody may be nil.
func (b *FB) If(op CmpKind, l, r *Var, thenBody func(), elseBody func()) {
	s := &If{Cond: Cond{Op: op, L: l, R: r}}
	b.emit(s)
	b.blocks = append(b.blocks, &s.Then)
	thenBody()
	b.blocks = b.blocks[:len(b.blocks)-1]
	if elseBody != nil {
		b.blocks = append(b.blocks, &s.Else)
		elseBody()
		b.blocks = b.blocks[:len(b.blocks)-1]
	}
}

// While emits a loop with the given condition.
func (b *FB) While(op CmpKind, l, r *Var, body func()) {
	s := &While{Cond: Cond{Op: op, L: l, R: r}}
	b.emit(s)
	b.blocks = append(b.blocks, &s.Body)
	body()
	b.blocks = b.blocks[:len(b.blocks)-1]
}

// For emits the canonical counted loop for i := 0; i < n; i++.
func (b *FB) For(n *Var, body func(i *Var)) {
	i := b.Temp(model.Prim(model.KindLong))
	b.emit(&ConstInt{Dst: i, Val: 0})
	one := b.IConst(1)
	s := &While{Cond: Cond{Op: CmpLT, L: i, R: n}}
	b.emit(s)
	b.blocks = append(b.blocks, &s.Body)
	body(i)
	b.emit(&BinOp{Dst: i, Op: OpAdd, L: i, R: one})
	b.blocks = b.blocks[:len(b.blocks)-1]
}

// Ret emits a return of v (nil for void).
func (b *FB) Ret(v *Var) { b.emit(&Return{Val: v}) }

// ReadRecord yields readObject() from the named source — a SER start.
func (b *FB) ReadRecord(source string, t model.Type) *Var {
	v := b.Temp(t)
	b.emit(&Deserialize{Dst: v, Source: source})
	return v
}

// WriteRecord emits writeObject(v) to the named sink — a SER end.
func (b *FB) WriteRecord(sink string, v *Var) { b.emit(&Serialize{Src: v, Sink: sink}) }

// EmitRecord hands v to the engine output collector.
func (b *FB) EmitRecord(v *Var) { b.emit(&Emit{Src: v}) }
