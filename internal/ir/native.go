package ir

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/model"
)

// ReadNativeElem reads element Idx of an inlined primitive array whose
// length slot is at Base: dst = readNative(base, 4 + idx*elemSize). The
// dynamic index makes this a separate form from ReadNative, whose offset
// is a static (possibly symbolic) expression.
type ReadNativeElem struct {
	Dst  *Var
	Base *Var
	Idx  *Var
	Kind model.Kind
}

// WriteNativeElem writes element Idx of an inlined primitive array.
type WriteNativeElem struct {
	Base *Var
	Idx  *Var
	Kind model.Kind
	Src  *Var
}

// AddrElem computes the address of element Idx of an inlined array of
// fixed-size records: dst = base + 4 + idx*stride.
type AddrElem struct {
	Dst    *Var
	Base   *Var
	Idx    *Var
	Stride int64
}

// CheckInline is the runtime guard emitted for a construction-order
// reference store obj.field = sub: over inlined bytes the store is a
// no-op because appendToBuffer already placed the sub-record, but only
// if construction order matched the layout. The interpreter verifies
// sub == base + resolveOffset(off) and aborts the SER otherwise.
type CheckInline struct {
	Base *Var
	Off  *expr.Expr
	Sub  *Var
}

// GConstString appends a string literal as an inlined char array to the
// record under construction: dst = its address.
type GConstString struct {
	Dst *Var
	Val string
}

func (*ReadNativeElem) stmt()  {}
func (*WriteNativeElem) stmt() {}
func (*AddrElem) stmt()        {}
func (*CheckInline) stmt()     {}
func (*GConstString) stmt()    {}

func (s *ReadNativeElem) String() string {
	return fmt.Sprintf("%s = readNativeElem(%s, %s, %s)", s.Dst, s.Base, s.Idx, s.Kind)
}
func (s *WriteNativeElem) String() string {
	return fmt.Sprintf("writeNativeElem(%s, %s, %s, %s)", s.Base, s.Idx, s.Kind, s.Src)
}
func (s *AddrElem) String() string {
	return fmt.Sprintf("%s = %s + 4 + %s*%d", s.Dst, s.Base, s.Idx, s.Stride)
}
func (s *CheckInline) String() string {
	return fmt.Sprintf("checkInline(%s + (%s) == %s)", s.Base, s.Off, s.Sub)
}
func (s *GConstString) String() string {
	return fmt.Sprintf("%s = appendString(%q)", s.Dst, s.Val)
}
