package workload_test

import (
	"strings"
	"testing"

	"repro/internal/apps/sparkapps"
	"repro/internal/dsa"
	"repro/internal/engine"
	"repro/internal/serde"
	. "repro/internal/workload"
)

func codec(t *testing.T) *serde.Codec {
	t.Helper()
	prog := sparkapps.NewProgram()
	layouts := dsa.Analyze(prog.Reg, []string{
		sparkapps.ClsLinks, sparkapps.ClsDenseVector, sparkapps.ClsLabeled,
		sparkapps.ClsSparsePoint, sparkapps.ClsDoc, sparkapps.ClsPost, sparkapps.ClsUser,
	})
	return serde.NewCodec(prog.Reg, layouts)
}

func TestGenGraphCoversAllVertices(t *testing.T) {
	links := GenGraph(GraphSpec{Name: "t", Vertices: 100, AvgDeg: 4, Alpha: 2.2, Seed: 3})
	if len(links) != 100 {
		t.Fatalf("links = %d", len(links))
	}
	seen := map[int64]bool{}
	edges := 0
	for _, l := range links {
		if seen[l.Src] {
			t.Errorf("duplicate source %d", l.Src)
		}
		seen[l.Src] = true
		for _, d := range l.Dsts {
			if d < 0 || d >= 100 {
				t.Errorf("edge to out-of-range vertex %d", d)
			}
			if d == l.Src {
				t.Errorf("self loop at %d", l.Src)
			}
			edges++
		}
	}
	if edges == 0 {
		t.Fatalf("no edges generated")
	}
}

func TestGenGraphDeterministic(t *testing.T) {
	a := GenGraph(GraphSpec{Name: "t", Vertices: 50, AvgDeg: 3, Alpha: 2.0, Seed: 9})
	b := GenGraph(GraphSpec{Name: "t", Vertices: 50, AvgDeg: 3, Alpha: 2.0, Seed: 9})
	for i := range a {
		if a[i].Src != b[i].Src || len(a[i].Dsts) != len(b[i].Dsts) {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
}

func TestStandardGraphsScale(t *testing.T) {
	g1 := StandardGraphs(1)
	g2 := StandardGraphs(3)
	if len(g1) != 4 || len(g2) != 4 {
		t.Fatalf("want 4 standard graphs")
	}
	for i := range g1 {
		if g2[i].Vertices != 3*g1[i].Vertices {
			t.Errorf("%s did not scale", g1[i].Name)
		}
	}
	names := []string{"LiveJournal", "Orkut", "UK-2005", "Twitter-2010"}
	for i, n := range names {
		if g1[i].Name != n {
			t.Errorf("graph %d = %s, want %s", i, g1[i].Name, n)
		}
	}
}

func TestGenDensePointsClusterShape(t *testing.T) {
	pts, centers := GenDensePoints(60, 4, 3, 5)
	if len(pts) != 60 || len(centers) != 3 {
		t.Fatalf("shape wrong")
	}
	for i, p := range pts {
		vals := p["values"].([]float64)
		c := centers[i%3]
		for d := range vals {
			if diff := vals[d] - c[d]; diff > 20 || diff < -20 {
				t.Errorf("point %d dim %d far from its center: %v", i, d, diff)
			}
		}
	}
}

func TestGenLabeledPointsSeparable(t *testing.T) {
	pts, w := GenLabeledPoints(300, 6, 7)
	agree := 0
	for _, p := range pts {
		vals := p["features"].(serde.Obj)["values"].([]float64)
		dot := 0.0
		for d := range vals {
			dot += vals[d] * w[d]
		}
		label := p["label"].(float64)
		if (dot > 0) == (label == 1) {
			agree++
		}
	}
	if float64(agree)/300 < 0.9 {
		t.Errorf("labels agree with weights only %d/300", agree)
	}
}

func TestGenSparsePointsShape(t *testing.T) {
	pts := GenSparsePoints(40, 20, 5, 3)
	for _, p := range pts {
		f := p["features"].(serde.Obj)
		idx := f["indices"].([]int64)
		vals := f["values"].([]float64)
		if len(idx) != 5 || len(vals) != 5 {
			t.Fatalf("nnz wrong")
		}
		seen := map[int64]bool{}
		for _, i := range idx {
			if i < 0 || i >= 20 || seen[i] {
				t.Errorf("bad index %d", i)
			}
			seen[i] = true
		}
	}
}

func TestGenPostsHeavyTail(t *testing.T) {
	posts := GenPosts(200, 10, 11)
	per := map[int64]int{}
	for _, p := range posts {
		per[p["user"].(int64)]++
		body := p["body"].(string)
		if len(strings.Fields(body)) == 0 {
			t.Errorf("empty post body")
		}
		h := p["hour"].(int64)
		if h < 0 || h > 23 {
			t.Errorf("hour %d out of range", h)
		}
	}
	if len(per) != 200 {
		t.Fatalf("users with posts = %d", len(per))
	}
	heavy := 0
	for _, n := range per {
		if n > 40 { // > 2*avg: only the heavy tail
			heavy++
		}
	}
	if heavy == 0 {
		t.Errorf("no heavy users in 200 (expected ~10%%)")
	}
	if heavy > 60 {
		t.Errorf("too many heavy users: %d", heavy)
	}
}

func TestGenUsersFieldsAndEncode(t *testing.T) {
	c := codec(t)
	users := GenUsers(30, 1)
	parts, err := Encode(c, sparkapps.ClsUser, users, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(engine.RecordOffsets(p))
	}
	if total != 30 {
		t.Fatalf("encoded %d records", total)
	}
	// Round-trip one record.
	v, _, err := c.Decode(sparkapps.ClsUser, parts[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	u := v.(serde.Obj)
	if u["about"].(string) == "" {
		t.Errorf("user without about text")
	}
}

func TestGenDocsZipfVocabulary(t *testing.T) {
	docs := GenDocs(50, 30, 2)
	freq := map[string]int{}
	for _, d := range docs {
		for _, w := range strings.Fields(d["text"].(string)) {
			freq[w]++
		}
	}
	if len(freq) < 5 {
		t.Fatalf("vocabulary too small: %d", len(freq))
	}
	// Zipf head: the most frequent word clearly dominates the median.
	max := 0
	for _, n := range freq {
		if n > max {
			max = n
		}
	}
	if max*len(freq) < 50*30/2 {
		t.Logf("weak skew (max=%d, vocab=%d) — acceptable", max, len(freq))
	}
}

func TestEncodeZeroPartitions(t *testing.T) {
	c := codec(t)
	parts, err := Encode(c, sparkapps.ClsDoc, GenDocs(3, 5, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("want single partition fallback, got %d", len(parts))
	}
}
