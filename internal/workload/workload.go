// Package workload generates the synthetic datasets standing in for the
// paper's inputs: power-law graphs for LiveJournal/Orkut/UK-2005/Twitter
// (Figure 5, PageRank, CC, TC), synthetic ML points (KMeans, LR, CS, GB —
// Table 1 lists the paper's own inputs as synthetic), StackOverflow-like
// posts/users (Table 2, SOA) and Wikipedia-like documents (IMC, TFC).
//
// Generators emit wire-format records directly (via the serde codec), so
// "reading the input" in either execution mode starts from the same
// bytes a disk split would contain.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/serde"
)

// Encode encodes objs as wire records of the class, split round-robin
// into nparts partitions.
func Encode(c *serde.Codec, class string, objs []serde.Obj, nparts int) ([][]byte, error) {
	if nparts <= 0 {
		nparts = 1
	}
	parts := make([][]byte, nparts)
	for i, o := range objs {
		var err error
		p := i % nparts
		parts[p], err = c.Encode(class, o, parts[p])
		if err != nil {
			return nil, fmt.Errorf("workload: encoding %s record %d: %w", class, i, err)
		}
	}
	return parts, nil
}

// GraphSpec parameterizes the power-law graph generator.
type GraphSpec struct {
	Name     string
	Vertices int
	AvgDeg   int
	// Alpha is the power-law exponent of the out-degree distribution
	// (real social graphs sit near 2.0-2.5).
	Alpha float64
	Seed  int64
}

// StandardGraphs mirrors the paper's four graph datasets, scaled down.
// Relative sizes roughly track LiveJournal < Orkut < UK-2005 < Twitter.
func StandardGraphs(scale int) []GraphSpec {
	if scale <= 0 {
		scale = 1
	}
	return []GraphSpec{
		{Name: "LiveJournal", Vertices: 600 * scale, AvgDeg: 9, Alpha: 2.3, Seed: 11},
		{Name: "Orkut", Vertices: 800 * scale, AvgDeg: 19, Alpha: 2.2, Seed: 12},
		{Name: "UK-2005", Vertices: 1200 * scale, AvgDeg: 12, Alpha: 2.1, Seed: 13},
		{Name: "Twitter-2010", Vertices: 1500 * scale, AvgDeg: 14, Alpha: 2.0, Seed: 14},
	}
}

// Links is one adjacency record: a source vertex and its out-neighbors.
type Links struct {
	Src  int64
	Dsts []int64
}

// GenGraph produces adjacency lists with power-law out-degrees. Every
// vertex appears as a source (possibly with no out-edges) so iterative
// algorithms keep full vertex coverage.
func GenGraph(spec GraphSpec) []Links {
	r := rand.New(rand.NewSource(spec.Seed))
	n := spec.Vertices
	out := make([]Links, n)
	// Zipf-distributed degrees normalized to the requested average.
	zipf := rand.NewZipf(r, spec.Alpha, 1, uint64(4*spec.AvgDeg))
	for v := 0; v < n; v++ {
		deg := int(zipf.Uint64()) + 1
		dsts := make([]int64, 0, deg)
		seen := map[int64]bool{}
		for len(dsts) < deg {
			d := int64(r.Intn(n))
			if d == int64(v) || seen[d] {
				// Tolerate duplicates by bounded retries on tiny graphs.
				if len(seen) >= n-1 {
					break
				}
				continue
			}
			seen[d] = true
			dsts = append(dsts, d)
		}
		out[v] = Links{Src: int64(v), Dsts: dsts}
	}
	return out
}

// LinksObjs converts adjacency records to serde objects of class "Links"
// (schema: {src long, dsts long[]}).
func LinksObjs(links []Links) []serde.Obj {
	objs := make([]serde.Obj, len(links))
	for i, l := range links {
		objs[i] = serde.Obj{"src": l.Src, "dsts": l.Dsts}
	}
	return objs
}

// GenDensePoints produces n points of dimension d clustered around k
// Gaussian centers, as DenseVector objects ({size int, values double[]}).
// It also returns the true centers for validation.
func GenDensePoints(n, d, k int, seed int64) ([]serde.Obj, [][]float64) {
	r := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for j := range centers {
		c := make([]float64, d)
		for t := range c {
			c[t] = r.Float64() * 100
		}
		centers[j] = c
	}
	objs := make([]serde.Obj, n)
	for i := range objs {
		c := centers[i%k]
		vals := make([]float64, d)
		for t := range vals {
			vals[t] = c[t] + r.NormFloat64()*3
		}
		objs[i] = serde.Obj{"size": int64(d), "values": vals}
	}
	return objs, centers
}

// GenLabeledPoints produces linearly separable LabeledPoint objects
// ({label double, features {size int, values double[]}}) with labels in
// {0, 1}, plus the true separating weights.
func GenLabeledPoints(n, d int, seed int64) ([]serde.Obj, []float64) {
	r := rand.New(rand.NewSource(seed))
	w := make([]float64, d)
	for t := range w {
		w[t] = r.NormFloat64()
	}
	objs := make([]serde.Obj, n)
	for i := range objs {
		vals := make([]float64, d)
		dot := 0.0
		for t := range vals {
			vals[t] = r.NormFloat64()
			dot += vals[t] * w[t]
		}
		label := 0.0
		if dot+r.NormFloat64()*0.1 > 0 {
			label = 1.0
		}
		objs[i] = serde.Obj{
			"label":    label,
			"features": serde.Obj{"size": int64(d), "values": vals},
		}
	}
	return objs, w
}

// GenSparsePoints produces SparseLabeledPoint objects
// ({label double, features {size int, indices long[], values double[]}})
// with nnz non-zeros of dim d.
func GenSparsePoints(n, d, nnz int, seed int64) []serde.Obj {
	r := rand.New(rand.NewSource(seed))
	objs := make([]serde.Obj, n)
	for i := range objs {
		idx := r.Perm(d)[:nnz]
		indices := make([]int64, nnz)
		values := make([]float64, nnz)
		for t := 0; t < nnz; t++ {
			indices[t] = int64(idx[t])
			values[t] = math.Abs(r.NormFloat64())
		}
		label := float64(i % 2)
		objs[i] = serde.Obj{
			"label": label,
			"features": serde.Obj{
				"size": int64(d), "indices": indices, "values": values,
			},
		}
	}
	return objs
}

// vocabulary used by text generators; word lengths vary to exercise
// variable-size records.
var vocab = []string{
	"the", "of", "and", "data", "system", "java", "heap", "object", "query",
	"stream", "compile", "native", "buffer", "shuffle", "spark", "hadoop",
	"reduce", "map", "serialize", "garbage", "collector", "pointer",
	"immutable", "speculative", "transformation", "region", "executor",
	"task", "stage", "partition", "vector", "gradient", "cluster", "graph",
}

// GenDocs produces documents of class "Doc" ({text String}) with
// Zipf-weighted word frequencies, the Wikipedia stand-in.
func GenDocs(nDocs, wordsPerDoc int, seed int64) []serde.Obj {
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, 1.3, 1, uint64(len(vocab)-1))
	objs := make([]serde.Obj, nDocs)
	for i := range objs {
		text := ""
		for w := 0; w < wordsPerDoc; w++ {
			if w > 0 {
				text += " "
			}
			text += vocab[zipf.Uint64()]
		}
		objs[i] = serde.Obj{"text": text}
	}
	return objs
}

// Post is a StackOverflow-like post record of class "Post"
// ({user long, score long, hour long, body String}).
type Post struct {
	User  int64
	Score int64
	Hour  int64
	Body  string
}

// GenPosts produces posts with skewed posts-per-user: most users post
// about avgPosts times, and roughly one in ten is a heavy user with ~5x
// the volume (the heavy tail that makes SOA's vectors resize) — the
// StackOverflow stand-in.
func GenPosts(nUsers, avgPosts int, seed int64) []serde.Obj {
	r := rand.New(rand.NewSource(seed))
	var objs []serde.Obj
	for u := 0; u < nUsers; u++ {
		n := 1 + r.Intn(2*avgPosts)
		if r.Intn(10) == 0 {
			n += 4 * avgPosts
		}
		for p := 0; p < n; p++ {
			nw := 3 + r.Intn(8)
			body := ""
			for w := 0; w < nw; w++ {
				if w > 0 {
					body += " "
				}
				body += vocab[r.Intn(len(vocab))]
			}
			objs = append(objs, serde.Obj{
				"user":  int64(u),
				"score": int64(r.Intn(100) - 20),
				"hour":  int64(r.Intn(24)),
				"body":  body,
			})
		}
	}
	// Shuffle so same-user posts are scattered, as in a real dump.
	r.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
	return objs
}

// GenUsers produces user records of class "User"
// ({id long, lastActive long, posts long, reputation long, about String}).
func GenUsers(n int, seed int64) []serde.Obj {
	r := rand.New(rand.NewSource(seed))
	objs := make([]serde.Obj, n)
	for i := range objs {
		nw := 4 + r.Intn(10)
		about := ""
		for w := 0; w < nw; w++ {
			if w > 0 {
				about += " "
			}
			about += vocab[r.Intn(len(vocab))]
		}
		objs[i] = serde.Obj{
			"id":         int64(i),
			"lastActive": int64(r.Intn(365)),
			"posts":      int64(r.Intn(200)),
			"reputation": int64(r.Intn(10000)),
			"about":      about,
		}
	}
	return objs
}
