package workload

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/serde"
)

// Unbounded is a deterministic unbounded record source: At(i) returns
// record i of an infinite stream, computable in any order and any
// number of times. Determinism is the streaming subsystem's whole
// correctness story — the batch reference run, the streamed run, and a
// resumed-after-crash run all regenerate byte-identical records from
// the same indices, so window outputs stay byte-comparable.
type Unbounded struct {
	// Class is the serde class of the emitted records.
	Class string
	// At returns record i (i >= 0).
	At func(i int64) serde.Obj
}

// Slice materializes records [lo, hi) in index order.
func (u *Unbounded) Slice(lo, hi int64) []serde.Obj {
	if hi <= lo {
		return nil
	}
	objs := make([]serde.Obj, 0, hi-lo)
	for i := lo; i < hi; i++ {
		objs = append(objs, u.At(i))
	}
	return objs
}

// recRand returns a rand source deterministically derived from (seed,
// record index) — per-record seeding, so records are random-access
// without chunk bookkeeping.
func recRand(seed, i int64) *rand.Rand {
	h := fnv.New64a()
	var b [16]byte
	for k := 0; k < 8; k++ {
		b[k] = byte(uint64(seed) >> (8 * k))
		b[8+k] = byte(uint64(i) >> (8 * k))
	}
	h.Write(b[:])
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// UnboundedDocs streams documents of class "Doc" ({text String}) with
// Zipf-weighted word frequencies — the wordcount-style source.
func UnboundedDocs(wordsPerDoc int, seed int64) *Unbounded {
	return &Unbounded{Class: "Doc", At: func(i int64) serde.Obj {
		r := recRand(seed, i)
		zipf := rand.NewZipf(r, 1.3, 1, uint64(len(vocab)-1))
		text := ""
		for w := 0; w < wordsPerDoc; w++ {
			if w > 0 {
				text += " "
			}
			text += vocab[zipf.Uint64()]
		}
		return serde.Obj{"text": text}
	}}
}

// UnboundedLinks streams adjacency records of class "Links"
// ({src long, dsts long[]}) over a fixed vertex universe: record i
// describes vertex i % universe with power-law out-degree — the
// PageRank-style source. Repeated visits to a vertex emit the same
// edges (the stream re-describes a stable graph), so contribution sums
// stay deterministic.
func UnboundedLinks(universe, avgDeg int, seed int64) *Unbounded {
	if universe <= 1 {
		universe = 2
	}
	return &Unbounded{Class: "Links", At: func(i int64) serde.Obj {
		src := i % int64(universe)
		r := recRand(seed, src)
		zipf := rand.NewZipf(r, 2.2, 1, uint64(4*avgDeg))
		deg := int(zipf.Uint64()) + 1
		dsts := make([]int64, 0, deg)
		seen := map[int64]bool{}
		for len(dsts) < deg {
			d := int64(r.Intn(universe))
			if d == src || seen[d] {
				if len(seen) >= universe-1 {
					break
				}
				continue
			}
			seen[d] = true
			dsts = append(dsts, d)
		}
		return serde.Obj{"src": src, "dsts": dsts}
	}}
}
