package faults

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	a := Chaos(42)
	b := Chaos(42)
	names := []string{"wcSplitStage-p0", "wcSplitStage-p1", "wcCombineStage-r0", "prJoinStage-j3"}
	for _, n := range names {
		pa, pb := a.ForTask(n), b.ForTask(n)
		if (pa == nil) != (pb == nil) {
			t.Fatalf("%s: selection differs across same-seed injectors", n)
		}
		if pa == nil {
			continue
		}
		if pa.PanicAtRecord != pb.PanicAtRecord || pa.WildReadAtRecord != pb.WildReadAtRecord ||
			pa.TransientFailures != pb.TransientFailures || pa.OOMFailures != pb.OOMFailures ||
			pa.FlipInputBit != pb.FlipInputBit || pa.Delay != pb.Delay {
			t.Errorf("%s: plans differ: %v vs %v", n, pa, pb)
		}
	}
}

func TestInjectorSeedSensitivity(t *testing.T) {
	// Different seeds should not pick identical plans for every task.
	a, b := Chaos(1), Chaos(2)
	same := 0
	total := 0
	for i := 0; i < 64; i++ {
		name := "stage-p" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		pa, pb := a.ForTask(name), b.ForTask(name)
		total++
		if (pa == nil) == (pb == nil) && (pa == nil || pa.String() == pb.String()) {
			same++
		}
	}
	if same == total {
		t.Errorf("seeds 1 and 2 produced identical plans for all %d tasks", total)
	}
}

func TestInjectorRates(t *testing.T) {
	zero := &Injector{Seed: 7}
	for i := 0; i < 32; i++ {
		if p := zero.ForTask(string(rune('a' + i))); p != nil {
			t.Fatalf("zero-rate injector selected %v", p)
		}
	}
	always := &Injector{Seed: 7, PanicRate: 1, MaxRecord: 4}
	for i := 0; i < 32; i++ {
		p := always.ForTask(string(rune('a' + i)))
		if p == nil || p.PanicAtRecord < 1 || p.PanicAtRecord > 4 {
			t.Fatalf("rate-1 injector gave %v", p)
		}
	}
}

func TestPlanAttemptsAndEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Errorf("nil plan not empty")
	}
	p := &Plan{}
	if !p.Empty() {
		t.Errorf("zero plan not empty")
	}
	p = &Plan{TransientFailures: 2, Delay: time.Millisecond}
	if p.Empty() {
		t.Errorf("non-zero plan reported empty")
	}
	if p.TakeAttempt() != 1 || p.TakeAttempt() != 2 || p.Attempts() != 2 {
		t.Errorf("attempt counter broken")
	}
	if s := p.String(); s == "" || s == "faults(none)" {
		t.Errorf("String() = %q", s)
	}
	if (&Plan{}).String() != "faults(none)" {
		t.Errorf("empty String() = %q", (&Plan{}).String())
	}
}

func TestFetchFailureKnobs(t *testing.T) {
	p := &Plan{FetchFailures: 2}
	if p.Empty() {
		t.Error("fetch-failure plan reported empty")
	}
	if s := p.String(); s != "faults(fetchfail×2)" {
		t.Errorf("String() = %q", s)
	}
	// First two fetch attempts fail, every later one succeeds.
	if !p.TakeFetchAttempt() || !p.TakeFetchAttempt() {
		t.Error("budgeted fetch attempts did not fail")
	}
	if p.TakeFetchAttempt() || p.TakeFetchAttempt() {
		t.Error("exhausted budget still failing")
	}
	if p.FetchAttempts() != 4 {
		t.Errorf("fetch attempts = %d, want 4", p.FetchAttempts())
	}

	inj := &Injector{Seed: 3, FetchFailRate: 1}
	plan := inj.ForTask("shuffle-1/r0")
	if plan == nil || plan.FetchFailures != 1 {
		t.Fatalf("rate-1 fetch injector gave %v (FetchFails default should be 1)", plan)
	}
	inj.FetchFails = 3
	if plan := inj.ForTask("shuffle-1/r1"); plan == nil || plan.FetchFailures != 3 {
		t.Fatalf("FetchFails=3 injector gave %v", plan)
	}
	if Chaos(1).FetchFailRate <= 0 {
		t.Error("chaos preset does not inject fetch faults")
	}
}

func TestNilInjectorForTask(t *testing.T) {
	var inj *Injector
	if inj.ForTask("x") != nil {
		t.Errorf("nil injector produced a plan")
	}
}

// TestFetchFailureBudgetSharedAcrossAttempts pins the cross-attempt
// semantics of FetchFailures: the budget lives in the plan, not the
// fetch loop, so concurrent block fetches and later retries of the same
// task all draw from one counter — exactly FetchFailures attempts fail
// in total, no matter how they are distributed over blocks or attempts.
func TestFetchFailureBudgetSharedAcrossAttempts(t *testing.T) {
	p := &Plan{FetchFailures: 5}
	var failed atomic.Int64
	var wg sync.WaitGroup
	// 4 "blocks" × 3 "attempts" each, fetching concurrently.
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := 0; a < 3; a++ {
				if p.TakeFetchAttempt() {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 5 {
		t.Errorf("shared budget failed %d attempts, want exactly 5", failed.Load())
	}
	if p.FetchAttempts() != 12 {
		t.Errorf("fetch attempts = %d, want 12", p.FetchAttempts())
	}
}

func TestRecoveryKnobs(t *testing.T) {
	p := &Plan{LoseBlockReplicas: 2, KillReduceAtRecord: 4, CheckpointCorrupt: true}
	if p.Empty() {
		t.Error("recovery plan reported empty")
	}
	if s := p.String(); s != "faults(losereplicas×2,kill@4,ckptcorrupt)" {
		t.Errorf("String() = %q", s)
	}
	// Each knob fires exactly once per plan.
	if n, ok := p.TakeReplicaLoss(); !ok || n != 2 {
		t.Errorf("TakeReplicaLoss = %d, %v", n, ok)
	}
	if _, ok := p.TakeReplicaLoss(); ok {
		t.Error("replica loss fired twice")
	}
	if !p.TakeKill() || p.TakeKill() {
		t.Error("kill did not fire exactly once")
	}
	if !p.TakeCheckpointCorrupt() || p.TakeCheckpointCorrupt() {
		t.Error("checkpoint corruption did not fire exactly once")
	}
	// Disabled knobs never fire.
	z := &Plan{}
	if _, ok := z.TakeReplicaLoss(); ok || z.TakeKill() || z.TakeCheckpointCorrupt() {
		t.Error("zero plan fired a recovery fault")
	}
	var nilPlan *Plan
	if _, ok := nilPlan.TakeReplicaLoss(); ok || nilPlan.TakeKill() || nilPlan.TakeCheckpointCorrupt() {
		t.Error("nil plan fired a recovery fault")
	}
}

func TestRecoveryChaosPreset(t *testing.T) {
	inj := RecoveryChaos(7)
	sawLoss, sawKill, sawCorrupt := false, false, false
	for i := 0; i < 40; i++ {
		p := inj.ForTask(fmt.Sprintf("job-reduce%d", i))
		if p == nil {
			continue
		}
		if p.LoseBlockReplicas > 0 {
			sawLoss = true
			if p.LoseBlockReplicas < 2 {
				t.Errorf("preset loses %d replicas; must exceed any replication factor", p.LoseBlockReplicas)
			}
		}
		if p.KillReduceAtRecord > 0 {
			sawKill = true
		}
		if p.CheckpointCorrupt {
			sawCorrupt = true
			if p.KillReduceAtRecord == 0 {
				t.Error("checkpoint corruption selected without a kill to resume from")
			}
		}
	}
	if !sawLoss || !sawKill || !sawCorrupt {
		t.Errorf("preset never fired: loss=%v kill=%v corrupt=%v", sawLoss, sawKill, sawCorrupt)
	}
	// Same seed, same plans.
	a, b := RecoveryChaos(3).ForTask("t9"), RecoveryChaos(3).ForTask("t9")
	if (a == nil) != (b == nil) {
		t.Fatal("RecoveryChaos not deterministic")
	}
	if a != nil && (a.LoseBlockReplicas != b.LoseBlockReplicas ||
		a.KillReduceAtRecord != b.KillReduceAtRecord || a.CheckpointCorrupt != b.CheckpointCorrupt) {
		t.Errorf("RecoveryChaos plans differ: %v vs %v", a, b)
	}
}
