// Package faults provides deterministic fault injection for the Gerenuk
// runtime's recovery paths (paper sections 3.4 and 3.6: speculation may
// fail at any point and the system must recover by re-executing the
// untransformed path over pristine inputs).
//
// A Plan describes the faults injected into one task: runtime panics at a
// chosen input record, native-memory violations, transient whole-attempt
// failures, simulated allocation OOMs, input-buffer bit flips (a broken
// mutate-input guarantee the engine's canary must catch), and slow-task
// delays. An Injector derives plans from a seed and the task name, so a
// chaos run is fully reproducible: the same seed injects the same faults
// at the same records on every run.
//
// The package is pure data + seeded selection; the engine interprets the
// plan. That keeps faults dependency-free and lets any layer (engine
// tests, spark, hadoop, the gerenukbench chaos mode) share one injector.
package faults

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"
)

// Plan describes the faults injected into one task. A nil *Plan means no
// injection. The plan carries cross-attempt state (the attempt counter),
// so the same value must be handed to every retry of its task — the
// engine's pool does this by re-running the same TaskSpec.
type Plan struct {
	// PanicAtRecord forces a plain runtime panic inside the speculative
	// native attempt when the Nth input record (1-based) is fetched.
	// 0 disables.
	PanicAtRecord int64
	// WildReadAtRecord forces a read of a wild native address at record
	// N, raising an arena access violation (arena.Fault). 0 disables.
	WildReadAtRecord int64
	// TransientFailures fails this many whole-task attempts with a
	// transient error before letting an attempt proceed.
	TransientFailures int
	// OOMFailures fails this many whole-task attempts with an error
	// wrapping heap.ErrOutOfMemory, exercising the pool's escalated-heap
	// retry.
	OOMFailures int
	// FlipInputBit corrupts one bit of the task's input buffer during
	// the native attempt, simulating a violated mutate-input guarantee.
	// The engine's input canary must detect it and fail the task rather
	// than silently recovering over corrupt bytes.
	FlipInputBit bool
	// Delay stalls every attempt, modeling a slow task.
	Delay time.Duration
	// NativeDelay stalls only the speculative native attempt, modeling a
	// straggling speculation (a GC-wedged executor, a slow node). The
	// heap path is unaffected, so a hedged heap attempt can overtake the
	// straggler. The stall honors cooperative cancellation.
	NativeDelay time.Duration
	// FetchFailures fails this many shuffle block fetch attempts before
	// letting one through, exercising the exchange's retry-with-backoff
	// and breaker paths. The budget is shared across the task's blocks
	// (cross-attempt, like TransientFailures).
	FetchFailures int
	// LoseBlockReplicas drops this many replicas of the reduce task's
	// first fetched block before the fetch starts — N at least the
	// replication factor loses every copy, forcing lineage re-execution
	// of the producing map task. Fires once per plan. 0 disables.
	LoseBlockReplicas int
	// KillReduceAtRecord kills the task attempt (a retryable transient
	// failure, modeling a shot executor) when its cumulative processed
	// record count reaches N — in whichever mode's attempt gets there
	// first. Fires once per plan, so the retry runs to completion and the
	// checkpoint-resume path is exercised. 0 disables.
	KillReduceAtRecord int64
	// CheckpointCorrupt flips one bit of the task's persisted checkpoint
	// as the injected kill fires (the dying executor mangles its last
	// checkpoint write); the resume path must detect the bad checksum and
	// restart from record zero rather than fold over corrupt state.
	// Fires once per plan and only alongside KillReduceAtRecord.
	CheckpointCorrupt bool

	attempts      atomic.Int64
	fetchAttempts atomic.Int64
	replicaLosses atomic.Int64
	kills         atomic.Int64
	ckptCorrupts  atomic.Int64
}

// TakeAttempt returns the 1-based number of the attempt now starting and
// records it. Safe for concurrent use.
func (p *Plan) TakeAttempt() int64 { return p.attempts.Add(1) }

// Attempts returns how many attempts have started against this plan.
func (p *Plan) Attempts() int64 { return p.attempts.Load() }

// TakeFetchAttempt reports whether the shuffle fetch attempt now starting
// should fail: the first FetchFailures calls return true, every later
// call false. Safe for concurrent use (blocks fetch in parallel).
func (p *Plan) TakeFetchAttempt() bool {
	return p.fetchAttempts.Add(1) <= int64(p.FetchFailures)
}

// FetchAttempts returns how many fetch attempts have rolled against this
// plan.
func (p *Plan) FetchAttempts() int64 { return p.fetchAttempts.Load() }

// TakeReplicaLoss reports whether replica loss should be injected now
// (the first call of a plan with LoseBlockReplicas > 0) and returns how
// many replicas to drop. Safe for concurrent use.
func (p *Plan) TakeReplicaLoss() (int, bool) {
	if p == nil || p.LoseBlockReplicas <= 0 {
		return 0, false
	}
	return p.LoseBlockReplicas, p.replicaLosses.Add(1) == 1
}

// TakeKill reports whether the injected kill should fire now (the first
// call of a plan with KillReduceAtRecord > 0). Safe for concurrent use:
// a hedged pair of attempts racing to the fatal record kills only one.
func (p *Plan) TakeKill() bool {
	if p == nil || p.KillReduceAtRecord <= 0 {
		return false
	}
	return p.kills.Add(1) == 1
}

// TakeCheckpointCorrupt reports whether checkpoint corruption should be
// injected now (the first call of a plan with CheckpointCorrupt set).
func (p *Plan) TakeCheckpointCorrupt() bool {
	if p == nil || !p.CheckpointCorrupt {
		return false
	}
	return p.ckptCorrupts.Add(1) == 1
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (p.PanicAtRecord == 0 && p.WildReadAtRecord == 0 &&
		p.TransientFailures == 0 && p.OOMFailures == 0 && !p.FlipInputBit &&
		p.Delay == 0 && p.NativeDelay == 0 && p.FetchFailures == 0 &&
		p.LoseBlockReplicas == 0 && p.KillReduceAtRecord == 0 && !p.CheckpointCorrupt)
}

func (p *Plan) String() string {
	if p.Empty() {
		return "faults(none)"
	}
	var parts []string
	if p.PanicAtRecord > 0 {
		parts = append(parts, fmt.Sprintf("panic@%d", p.PanicAtRecord))
	}
	if p.WildReadAtRecord > 0 {
		parts = append(parts, fmt.Sprintf("wild@%d", p.WildReadAtRecord))
	}
	if p.TransientFailures > 0 {
		parts = append(parts, fmt.Sprintf("transient×%d", p.TransientFailures))
	}
	if p.OOMFailures > 0 {
		parts = append(parts, fmt.Sprintf("oom×%d", p.OOMFailures))
	}
	if p.FlipInputBit {
		parts = append(parts, "bitflip")
	}
	if p.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%v", p.Delay))
	}
	if p.NativeDelay > 0 {
		parts = append(parts, fmt.Sprintf("straggle=%v", p.NativeDelay))
	}
	if p.FetchFailures > 0 {
		parts = append(parts, fmt.Sprintf("fetchfail×%d", p.FetchFailures))
	}
	if p.LoseBlockReplicas > 0 {
		parts = append(parts, fmt.Sprintf("losereplicas×%d", p.LoseBlockReplicas))
	}
	if p.KillReduceAtRecord > 0 {
		parts = append(parts, fmt.Sprintf("kill@%d", p.KillReduceAtRecord))
	}
	if p.CheckpointCorrupt {
		parts = append(parts, "ckptcorrupt")
	}
	return "faults(" + strings.Join(parts, ",") + ")"
}

// Injector derives per-task fault plans from a seed. Every rate is a
// probability in [0,1]; selection is a pure function of (Seed, task name,
// fault kind), so two injectors with the same seed agree on every task.
type Injector struct {
	Seed int64

	// PanicRate is the fraction of tasks whose native attempt panics.
	PanicRate float64
	// WildReadRate is the fraction of tasks that read a wild native
	// address (an arena access violation).
	WildReadRate float64
	// TransientRate is the fraction of tasks whose first Transient
	// attempts fail with a retryable error.
	TransientRate float64
	// Transient is how many attempts fail per selected task (default 1).
	Transient int
	// OOMRate is the fraction of tasks whose first attempt fails with a
	// simulated out-of-memory error.
	OOMRate float64
	// FlipRate is the fraction of tasks whose input buffer gets one bit
	// flipped mid-speculation.
	FlipRate float64
	// DelayRate is the fraction of tasks stalled by Delay per attempt.
	DelayRate float64
	Delay     time.Duration
	// NativeDelayRate is the fraction of tasks whose speculative native
	// attempt straggles by NativeDelay (the hedging demo workload).
	NativeDelayRate float64
	NativeDelay     time.Duration
	// FetchFailRate is the fraction of reduce tasks whose first FetchFails
	// shuffle block fetches fail, exercising the exchange's retry path.
	FetchFailRate float64
	// FetchFails is how many fetch attempts fail per selected task
	// (default 1; keep it under the exchange's MaxFetchRetries or the job
	// legitimately fails).
	FetchFails int
	// ReplicaLossRate is the fraction of reduce tasks that lose
	// ReplicaLosses replicas of their first fetched block before the
	// fetch starts (losing all of them forces lineage re-execution).
	ReplicaLossRate float64
	// ReplicaLosses is how many replicas each selected task loses
	// (default 1; use a value at least the replication factor to lose
	// every copy).
	ReplicaLosses int
	// KillRate is the fraction of tasks killed (a retryable transient
	// failure) at a seed-derived cumulative record index, exercising the
	// checkpoint-resume path on the retry.
	KillRate float64
	// CheckpointCorruptRate is the fraction of killed tasks whose next
	// persisted checkpoint gets one bit flipped, exercising checksum
	// detection on resume. Only meaningful alongside KillRate.
	CheckpointCorruptRate float64
	// MaxRecord bounds the record index at which record-targeted faults
	// fire (default 8); the actual index is seed-derived in [1,MaxRecord].
	MaxRecord int64
}

// Chaos returns a moderately aggressive injector suitable for the
// gerenukbench chaos mode: every recovery path fires somewhere in a
// multi-task job, but transient budgets stay within the default retry
// policy so a correct runtime still completes the job.
func Chaos(seed int64) *Injector {
	return &Injector{
		Seed:          seed,
		PanicRate:     0.35,
		WildReadRate:  0.25,
		TransientRate: 0.30,
		Transient:     1,
		OOMRate:       0.20,
		DelayRate:     0.15,
		Delay:         200 * time.Microsecond,
		FetchFailRate: 0.25,
		FetchFails:    1,
		MaxRecord:     6,
	}
}

// RecoveryChaos returns an injector aimed at the durable-recovery paths:
// replica loss (all copies, forcing lineage re-execution), reduce-task
// kills resuming from checkpoints, and checkpoint corruption — plus a
// light dose of fetch faults so replication and retries interleave. All
// budgets are one-shot, so a correct runtime completes the job within
// the default retry policy.
func RecoveryChaos(seed int64) *Injector {
	return &Injector{
		Seed:                  seed,
		ReplicaLossRate:       0.7,
		ReplicaLosses:         99, // more than any sane replication factor: every copy dies
		KillRate:              0.5,
		CheckpointCorruptRate: 0.4,
		FetchFailRate:         0.2,
		FetchFails:            1,
		MaxRecord:             10,
	}
}

// roll returns a deterministic uniform value in [0,1) for (task, kind).
func (inj *Injector) roll(task, kind string) float64 {
	return float64(inj.hash(task, kind)>>11) / float64(1<<53)
}

func (inj *Injector) hash(task, kind string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(uint64(inj.Seed) >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(task))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	return h.Sum64()
}

// record picks the seed-derived record index in [1,MaxRecord] for a
// record-targeted fault.
func (inj *Injector) record(task, kind string) int64 {
	maxRec := inj.MaxRecord
	if maxRec <= 0 {
		maxRec = 8
	}
	return 1 + int64(inj.hash(task, kind+"-rec")%uint64(maxRec))
}

// ForTask returns the plan for the named task, or nil when the injector
// selects no faults for it (or the injector itself is nil).
func (inj *Injector) ForTask(task string) *Plan {
	if inj == nil {
		return nil
	}
	p := &Plan{}
	if inj.roll(task, "panic") < inj.PanicRate {
		p.PanicAtRecord = inj.record(task, "panic")
	}
	if inj.roll(task, "wild") < inj.WildReadRate {
		p.WildReadAtRecord = inj.record(task, "wild")
	}
	if inj.roll(task, "transient") < inj.TransientRate {
		p.TransientFailures = inj.Transient
		if p.TransientFailures <= 0 {
			p.TransientFailures = 1
		}
	}
	if inj.roll(task, "oom") < inj.OOMRate {
		p.OOMFailures = 1
	}
	if inj.roll(task, "flip") < inj.FlipRate {
		p.FlipInputBit = true
	}
	if inj.Delay > 0 && inj.roll(task, "delay") < inj.DelayRate {
		p.Delay = inj.Delay
	}
	if inj.NativeDelay > 0 && inj.roll(task, "native-delay") < inj.NativeDelayRate {
		p.NativeDelay = inj.NativeDelay
	}
	if inj.roll(task, "fetch") < inj.FetchFailRate {
		p.FetchFailures = inj.FetchFails
		if p.FetchFailures <= 0 {
			p.FetchFailures = 1
		}
	}
	if inj.roll(task, "replica-loss") < inj.ReplicaLossRate {
		p.LoseBlockReplicas = inj.ReplicaLosses
		if p.LoseBlockReplicas <= 0 {
			p.LoseBlockReplicas = 1
		}
	}
	if inj.roll(task, "kill") < inj.KillRate {
		p.KillReduceAtRecord = inj.record(task, "kill")
		if inj.roll(task, "ckpt-corrupt") < inj.CheckpointCorruptRate {
			p.CheckpointCorrupt = true
		}
	}
	if p.Empty() {
		return nil
	}
	return p
}
