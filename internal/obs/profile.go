package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ProfileSchemaVersion identifies the profiles.json layout. Bump it when
// a record's fields change meaning; Load rejects newer versions rather
// than silently misreading them.
const ProfileSchemaVersion = 1

// ProfileKey identifies one profiled unit of work.
type ProfileKey struct {
	App   string `json:"app"`
	Mode  string `json:"mode"`
	Stage string `json:"stage"`
}

// ProfileRecord is the persisted profile of one (app, mode, stage):
// cumulative sums across runs, so averages are Sum/Runs and a rerun
// merges in place instead of appending. This is the substrate for
// profile-guided admission — a stage whose historical abort rate is high
// can skip the speculative attempt entirely.
type ProfileRecord struct {
	ProfileKey
	Runs          int64 `json:"runs"`
	WallNsSum     int64 `json:"wall_ns_sum"`
	TotalNsSum    int64 `json:"total_ns_sum"`
	ComputeNsSum  int64 `json:"compute_ns_sum"`
	GCNsSum       int64 `json:"gc_ns_sum"`
	GCAttrNsSum   int64 `json:"gc_attr_ns_sum"`
	SerNsSum      int64 `json:"ser_ns_sum"`
	DeserNsSum    int64 `json:"deser_ns_sum"`
	AttemptsSum   int64 `json:"attempts_sum"`
	AbortsSum     int64 `json:"aborts_sum"`
	RecordsSum    int64 `json:"records_sum"`
	AllocBytesSum int64 `json:"alloc_bytes_sum"`
	PeakBytesMax  int64 `json:"peak_bytes_max"`
}

// AbortRate returns the historical aborts-per-attempt ratio, the signal
// profile-guided admission would key on.
func (r ProfileRecord) AbortRate() float64 {
	if r.AttemptsSum == 0 {
		return 0
	}
	return float64(r.AbortsSum) / float64(r.AttemptsSum)
}

// profileFile is the on-disk shape of profiles.json.
type profileFile struct {
	Schema    int             `json:"schema"`
	UpdatedAt string          `json:"updated_at,omitempty"`
	Profiles  []ProfileRecord `json:"profiles"`
}

// ProfileStore accumulates stage profiles and persists them as a
// versioned profiles.json. All methods are safe for concurrent use; a
// nil *ProfileStore ignores every call.
type ProfileStore struct {
	mu   sync.Mutex
	path string
	recs map[ProfileKey]*ProfileRecord
}

// OpenProfileStore loads (or initializes) the store at path. A missing
// file yields an empty store; a file with an unknown schema version or
// malformed JSON is an error, never silently overwritten.
func OpenProfileStore(path string) (*ProfileStore, error) {
	ps := &ProfileStore{path: path, recs: make(map[ProfileKey]*ProfileRecord)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ps, nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: profile store: %w", err)
	}
	var f profileFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obs: profile store %s: %w", path, err)
	}
	if f.Schema > ProfileSchemaVersion {
		return nil, fmt.Errorf("obs: profile store %s: schema %d newer than supported %d",
			path, f.Schema, ProfileSchemaVersion)
	}
	for i := range f.Profiles {
		r := f.Profiles[i]
		ps.recs[r.ProfileKey] = &r
	}
	return ps, nil
}

// Record merges one stage observation into the profile for (app, mode,
// stage): sums accumulate, Runs increments, so the same key recorded
// across reruns stays one record.
func (ps *ProfileStore) Record(app, mode, stage string, stats *metrics.Breakdown, wall time.Duration) {
	if ps == nil || stats == nil {
		return
	}
	key := ProfileKey{App: app, Mode: mode, Stage: stage}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	r, ok := ps.recs[key]
	if !ok {
		r = &ProfileRecord{ProfileKey: key}
		ps.recs[key] = r
	}
	r.Runs++
	r.WallNsSum += wall.Nanoseconds()
	r.TotalNsSum += stats.Total.Nanoseconds()
	r.ComputeNsSum += stats.Compute().Nanoseconds()
	r.GCNsSum += stats.GC.Nanoseconds()
	r.GCAttrNsSum += stats.GCAttributed.Nanoseconds()
	r.SerNsSum += stats.Ser.Nanoseconds()
	r.DeserNsSum += stats.Deser.Nanoseconds()
	r.AttemptsSum += stats.Attempts
	r.AbortsSum += stats.Aborts
	r.RecordsSum += stats.Records
	r.AllocBytesSum += stats.AllocBytes
	if pb := stats.PeakBytes(); pb > r.PeakBytesMax {
		r.PeakBytesMax = pb
	}
}

// Get returns a copy of the record for (app, mode, stage) and whether it
// exists.
func (ps *ProfileStore) Get(app, mode, stage string) (ProfileRecord, bool) {
	if ps == nil {
		return ProfileRecord{}, false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	r, ok := ps.recs[ProfileKey{App: app, Mode: mode, Stage: stage}]
	if !ok {
		return ProfileRecord{}, false
	}
	return *r, true
}

// Len returns the number of distinct profiled keys.
func (ps *ProfileStore) Len() int {
	if ps == nil {
		return 0
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.recs)
}

// Save writes the store atomically (temp file + rename) with records in
// deterministic key order, so committed profiles diff cleanly.
func (ps *ProfileStore) Save() error {
	if ps == nil {
		return nil
	}
	ps.mu.Lock()
	f := profileFile{
		Schema:    ProfileSchemaVersion,
		UpdatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, r := range ps.recs {
		f.Profiles = append(f.Profiles, *r)
	}
	path := ps.path
	ps.mu.Unlock()
	sort.Slice(f.Profiles, func(i, j int) bool {
		a, b := f.Profiles[i], f.Profiles[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		return a.Stage < b.Stage
	})
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("obs: profile store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".profiles-*.json")
	if err != nil {
		return fmt.Errorf("obs: profile store: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: profile store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: profile store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: profile store: %w", err)
	}
	return nil
}
