package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Metric names in the registry may carry an inline Prometheus label
// block: `gc_pause_ns{job="PR",mode="gerenuk"}`. splitName separates the
// base family name from the label block (without braces); names with no
// block return labels == "".
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// MetricName builds a registry metric name carrying an inline label
// block, e.g. MetricName("gc_pause_ns", "job", "PR", "mode", "gerenuk")
// → `gc_pause_ns{job="PR",mode="gerenuk"}`. It is trace.Name re-exported
// for the plane's own callers; the builder lives in the trace package so
// the execution layers can emit labeled series without importing obs.
func MetricName(base string, kv ...string) string {
	return trace.Name(base, kv...)
}

// sanitizeName maps an arbitrary instrument name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:].
func sanitizeName(s string) string { return trace.SanitizeMetricName(s) }

// seriesName renders one exposition line's name part: base family plus
// the series' label block with any extra labels merged in.
func seriesName(base, labels string, extra ...string) string {
	all := labels
	for i := 0; i+1 < len(extra); i += 2 {
		kv := fmt.Sprintf("%s=%q", extra[i], extra[i+1])
		if all == "" {
			all = kv
		} else {
			all += "," + kv
		}
	}
	if all == "" {
		return base
	}
	return base + "{" + all + "}"
}

// fmtFloat renders a float the way Prometheus text exposition expects.
func fmtFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	switch s {
	case "+Inf", "inf", "+inf":
		return "+Inf"
	case "-inf":
		return "-Inf"
	}
	return s
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges one line per
// series, histograms as cumulative-bucket families with _bucket/_sum/
// _count series and an explicit le="+Inf" bucket. Families are emitted
// in sorted order with one TYPE line each, label series within a family
// sorted, and histogram buckets in ascending bound order, so scrapes
// are deterministic and diffable.
func WritePrometheus(w io.Writer, s trace.Snapshot) error {
	// A family is one base name; each series inside it is a sortable
	// block of exposition lines (a histogram series spans many lines
	// whose bucket order must survive sorting).
	type fam struct {
		typ    string
		series map[string][]string // label block -> lines in order
	}
	fams := map[string]*fam{}
	add := func(base, typ, labels string, lines ...string) {
		f, ok := fams[base]
		if !ok {
			f = &fam{typ: typ, series: map[string][]string{}}
			fams[base] = f
		}
		f.series[labels] = append(f.series[labels], lines...)
	}

	for name, v := range s.Counters {
		rawBase, labels := splitName(name)
		base := sanitizeName(rawBase)
		add(base, "counter", labels, fmt.Sprintf("%s %d", seriesName(base, labels), v))
	}
	for name, v := range s.Gauges {
		rawBase, labels := splitName(name)
		base := sanitizeName(rawBase)
		add(base, "gauge", labels, fmt.Sprintf("%s %s", seriesName(base, labels), fmtFloat(v)))
	}
	for name, h := range s.Histograms {
		rawBase, labels := splitName(name)
		base := sanitizeName(rawBase)
		lines := make([]string, 0, len(h.Bounds)+3)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			lines = append(lines, fmt.Sprintf("%s %d",
				seriesName(base+"_bucket", labels, "le", fmtFloat(bound)), cum))
		}
		lines = append(lines,
			fmt.Sprintf("%s %d", seriesName(base+"_bucket", labels, "le", "+Inf"), h.Count),
			fmt.Sprintf("%s %s", seriesName(base+"_sum", labels), fmtFloat(h.Sum)),
			fmt.Sprintf("%s %d", seriesName(base+"_count", labels), h.Count))
		add(base, "histogram", labels, lines...)
	}

	bases := make([]string, 0, len(fams))
	for b := range fams {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		f := fams[b]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", b, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, line := range f.series[k] {
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
