package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Flame incrementally folds the span stream into a flame graph: each
// completed span contributes its self time (duration minus the time of
// its direct children) to the stack of frames above it, producing the
// collapsed-stack text format Brendan Gregg's flamegraph.pl and
// speedscope consume — one line per unique stack,
// `job:app;stage:s0;task:t3 1234`, weight in nanoseconds.
//
// The span tree is reconstructed live from subscriber events using
// SID/PSID. Spark-side stage/task/shuffle spans open as StartSpan roots
// (PSID 0); those attach to the innermost open job/stage span at the
// moment they open, which is exactly the enclosing-run semantics the
// bench harness has (one job at a time, tasks strictly inside their
// stage's lifetime). A nil *Flame ignores events.
type Flame struct {
	mu     sync.Mutex
	open   map[int64]*openSpan
	ctx    []ctxSpan // open job/stage spans, outermost first
	folded map[string]int64
	spans  int64 // completed spans folded in
}

// ctxSpan is one attachment-context entry: an open job/stage span and
// its lifecycle rank.
type ctxSpan struct {
	sid  int64
	rank int
}

type openSpan struct {
	stack   []string // frames root-first, including this span's own
	psid    int64    // effective parent SID (0 = root)
	childNs int64
}

// NewFlame returns an empty aggregator; install its Observe with
// Tracer.Subscribe.
func NewFlame() *Flame {
	return &Flame{open: make(map[int64]*openSpan), folded: make(map[string]int64)}
}

// ctxCat reports whether spans of this category form attachment context
// for parentless root spans.
func ctxCat(cat string) bool { return cat == "job" || cat == "stage" }

// catRank orders the lifecycle categories (job 0 … phase 4); -1 for
// categories outside the spine.
func catRank(cat string) int {
	switch cat {
	case "job":
		return 0
	case "stage":
		return 1
	case "task":
		return 2
	case "attempt":
		return 3
	case "phase":
		return 4
	}
	return -1
}

// sanitizeFrame makes a span name safe inside the collapsed format,
// where ';' separates frames and ' ' separates stack from weight.
func sanitizeFrame(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ';', ' ', '\n', '\t', '\r':
			return '_'
		}
		return r
	}, s)
}

// Observe feeds one tracer event into the aggregator. Installed via
// Tracer.Subscribe, so it runs under the tracer's mutex and must not
// call back into the tracer.
func (f *Flame) Observe(e trace.Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch e.Ph {
	case "B":
		frame := sanitizeFrame(e.Cat) + ":" + sanitizeFrame(e.Name)
		psid := e.PSID
		if psid != 0 && f.open[psid] == nil {
			psid = 0 // parent closed or predates this subscriber
		}
		if psid == 0 {
			// Parentless root span: attach to the innermost open context
			// span of strictly lower lifecycle rank, so a stage folds
			// under its job and a task under its stage — but two jobs
			// running concurrently never nest under each other.
			rank := catRank(e.Cat)
			for i := len(f.ctx) - 1; i >= 0; i-- {
				if rank < 0 || f.ctx[i].rank < rank {
					psid = f.ctx[i].sid
					break
				}
			}
		}
		os := &openSpan{psid: psid}
		if parent := f.open[psid]; parent != nil {
			os.stack = append(append([]string(nil), parent.stack...), frame)
		} else {
			os.psid = 0
			os.stack = []string{frame}
		}
		f.open[e.SID] = os
		if ctxCat(e.Cat) {
			f.ctx = append(f.ctx, ctxSpan{sid: e.SID, rank: catRank(e.Cat)})
		}
	case "X":
		os, ok := f.open[e.SID]
		if !ok {
			return // opened before this subscriber attached
		}
		delete(f.open, e.SID)
		for i := len(f.ctx) - 1; i >= 0; i-- {
			if f.ctx[i].sid == e.SID {
				f.ctx = append(f.ctx[:i], f.ctx[i+1:]...)
				break
			}
		}
		if p := f.open[os.psid]; p != nil {
			p.childNs += e.Dur
		}
		self := e.Dur - os.childNs
		if self < 0 {
			self = 0
		}
		f.folded[strings.Join(os.stack, ";")] += self
		f.spans++
	}
}

// Spans returns the number of completed spans folded so far.
func (f *Flame) Spans() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spans
}

// WriteFolded writes the collapsed-stack text, stacks sorted,
// zero-weight stacks elided.
func (f *Flame) WriteFolded(w io.Writer) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	weights := make(map[string]int64, len(f.folded))
	stacks := make([]string, 0, len(f.folded))
	for s, ns := range f.folded {
		if ns > 0 {
			stacks = append(stacks, s)
			weights[s] = ns
		}
	}
	f.mu.Unlock()
	sort.Strings(stacks)
	bw := bufio.NewWriter(w)
	for _, s := range stacks {
		if _, err := fmt.Fprintf(bw, "%s %d\n", s, weights[s]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFoldedFile writes the collapsed-stack text to the named file.
func (f *Flame) WriteFoldedFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer out.Close()
	if err := f.WriteFolded(out); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// FoldedStats summarizes a validated collapsed-stack file.
type FoldedStats struct {
	Stacks     int   // distinct stack lines
	Frames     int   // total frames across all stacks
	TotalNs    int64 // summed weights
	FullChains int   // stacks containing the full job→stage→task→attempt→phase spine
}

// frameRank orders the lifecycle categories; -1 for categories outside
// the spine (shuffle, gc, obs... may appear anywhere below their
// parent).
func frameRank(frame string) int {
	cat, _, ok := strings.Cut(frame, ":")
	if !ok {
		return -1
	}
	switch cat {
	case "job":
		return 0
	case "stage":
		return 1
	case "task":
		return 2
	case "attempt":
		return 3
	case "phase":
		return 4
	}
	return -1
}

// ValidateFolded parses collapsed-stack text and checks its structural
// invariants: every line is `frame(;frame)* weight` with a positive
// integer weight, every frame is `cat:name`, and within each stack the
// lifecycle categories appear in increasing job → stage → task →
// attempt → phase order (a task can never sit above its stage). Phases
// are the one category allowed to repeat: execute phases contain their
// serde phases. This is the tracelint counterpart for flame output.
func ValidateFolded(r io.Reader) (FoldedStats, error) {
	var stats FoldedStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		stack, weight, ok := strings.Cut(text, " ")
		if !ok {
			return stats, fmt.Errorf("line %d: no weight separator", line)
		}
		ns, err := strconv.ParseInt(weight, 10, 64)
		if err != nil || ns <= 0 {
			return stats, fmt.Errorf("line %d: bad weight %q", line, weight)
		}
		frames := strings.Split(stack, ";")
		lastRank := -1
		spine := 0
		for _, fr := range frames {
			if fr == "" || !strings.Contains(fr, ":") {
				return stats, fmt.Errorf("line %d: bad frame %q", line, fr)
			}
			if rk := frameRank(fr); rk >= 0 {
				phaseNest := rk == 4 && lastRank == 4
				if rk <= lastRank && !phaseNest {
					return stats, fmt.Errorf("line %d: frame %q out of lifecycle order", line, fr)
				}
				if lastRank != rk {
					spine++
				}
				lastRank = rk
			}
		}
		if spine == 5 {
			stats.FullChains++
		}
		stats.Stacks++
		stats.Frames += len(frames)
		stats.TotalNs += ns
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if stats.Stacks == 0 {
		return stats, fmt.Errorf("no stacks")
	}
	return stats, nil
}
