// Package obs is the live observability plane: an embeddable HTTP
// server exposing the run's trace registry as Prometheus text
// exposition (/metrics), liveness and run-state JSON (/healthz,
// /statusz), collapsed-stack flame graphs folded live from the span
// stream (/flamez), and the standard net/http/pprof handlers — plus the
// GC-pause attribution sampler (gcattr.go) and the persistent stage
// profile store (profile.go).
//
// The plane is strictly opt-in. Binaries only construct a Server when
// the user passes -obs-addr; with the flag unset no goroutine starts,
// no tracer subscriber is installed, and no runtime/metrics read
// happens, so the zero-overhead contract of the trace package carries
// through unchanged.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// RingSize is the number of recent span events /statusz retains.
const RingSize = 256

// Server serves the observability endpoints for one tracer. Construct
// with NewServer, then either Start (own listener) or mount Handler on
// an existing mux.
type Server struct {
	tr    *trace.Tracer
	ring  *Ring
	flame *Flame
	start time.Time

	mu       sync.Mutex
	status   map[string]func() any
	extra    map[string]http.Handler
	srv      *http.Server
	ln       net.Listener
	scrapes  atomic.Int64
	scrapedC chan struct{}
	scraped1 sync.Once
}

// NewServer builds a server observing tr: a bounded event ring and a
// flame aggregator subscribe to the tracer's span stream. The tracer
// must be non-nil (the caller only constructs a Server when the plane
// is enabled).
func NewServer(tr *trace.Tracer) *Server {
	s := &Server{
		tr:       tr,
		ring:     NewRing(RingSize),
		flame:    NewFlame(),
		start:    time.Now(),
		status:   make(map[string]func() any),
		scrapedC: make(chan struct{}),
	}
	tr.Subscribe(func(e trace.Event) {
		s.ring.Observe(e)
		s.flame.Observe(e)
	})
	return s
}

// Flame returns the server's flame aggregator (for offline -flame
// export after the run).
func (s *Server) Flame() *Flame { return s.flame }

// AddStatus registers a named status source rendered under /statusz.
// The callback must return a JSON-marshalable value and be safe to call
// from the serving goroutine; this is how engine state (breaker,
// pools) reaches the plane without obs importing the engine.
func (s *Server) AddStatus(name string, fn func() any) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.status[name] = fn
	s.mu.Unlock()
}

// Handle registers an extra handler on the observability mux — the job
// service mounts its submission API here so one address serves both
// planes. Call before Handler/Start; later registrations are ignored by
// already-built muxes.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil || h == nil {
		return
	}
	s.mu.Lock()
	if s.extra == nil {
		s.extra = make(map[string]http.Handler)
	}
	s.extra[pattern] = h
	s.mu.Unlock()
}

// Handler returns the observability mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.mu.Lock()
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	s.mu.Unlock()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/flamez", s.handleFlamez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "gerenuk observability plane\n"+
			"/metrics /healthz /statusz /flamez /debug/pprof/\n")
	})
	return mux
}

// Start listens on addr and serves the observability endpoints in a
// background goroutine. Addr returns the bound address (useful with
// ":0").
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln = ln
	s.srv = srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return nil
}

// Addr returns the listener address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. In-flight requests are cut off; the plane
// is diagnostic, not transactional.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Scrapes returns how many /metrics scrapes have been served.
func (s *Server) Scrapes() int64 { return s.scrapes.Load() }

// WaitScraped blocks until at least one /metrics scrape has been served
// or d elapses, reporting whether a scrape happened. Binaries use it
// (-obs-hold) to keep a short run alive long enough for an external
// scraper — the CI smoke test — to observe it mid-flight.
func (s *Server) WaitScraped(d time.Duration) bool {
	if s.scrapes.Load() > 0 {
		return true
	}
	select {
	case <-s.scrapedC:
		return true
	case <-time.After(d):
		return s.scrapes.Load() > 0
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Fold the live runtime sample into the registry before
	// snapshotting, so the exposition carries process truth (goroutines,
	// heap goal, GC pause quantiles) alongside the run's own
	// instruments.
	ReadRuntime().PublishGauges(s.tr.Registry())
	s.tr.Registry().Counter("obs_scrapes_total").Add(1)
	s.tr.Registry().Gauge("obs_uptime_seconds").Set(time.Since(s.start).Seconds())
	n := s.scrapes.Add(1)
	s.scraped1.Do(func() { close(s.scrapedC) })
	s.tr.Instant("obs", "scrape", trace.I64("n", n))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.tr.Registry().Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.start).Nanoseconds(),
		"scrapes":   s.scrapes.Load(),
	})
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	snap := s.tr.Registry().Snapshot()
	// recovery_* / fault_* counters summarize the run's fault-tolerance
	// activity; surfacing them here keeps /statusz readable without
	// dumping the whole registry (that is /metrics' job).
	recovery := map[string]int64{}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "recovery_") || strings.HasPrefix(name, "fault_") ||
			strings.HasPrefix(name, "gc_pauses_") {
			recovery[name] = v
		}
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.status))
	for n := range s.status {
		names = append(names, n)
	}
	fns := make(map[string]func() any, len(s.status))
	for n, fn := range s.status {
		fns[n] = fn
	}
	s.mu.Unlock()
	sort.Strings(names)
	sources := map[string]any{}
	for _, n := range names {
		sources[n] = fns[n]()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(map[string]any{
		"uptime_ns":    time.Since(s.start).Nanoseconds(),
		"scrapes":      s.scrapes.Load(),
		"inflight":     s.ring.Inflight(),
		"events_seen":  s.ring.Total(),
		"spans_folded": s.flame.Spans(),
		"recovery":     recovery,
		"status":       sources,
		"recent":       s.ring.Events(),
	})
}

func (s *Server) handleFlamez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.flame.WriteFolded(w)
}
