package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestProfileStoreMergeOnRerun is the acceptance criterion: recording
// the same (app, mode, stage) across two store generations keeps one
// record whose sums accumulate, and the schema version survives the
// round trip.
func TestProfileStoreMergeOnRerun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")

	stats := &metrics.Breakdown{
		Total: 10 * time.Millisecond, GC: 2 * time.Millisecond,
		Ser: time.Millisecond, Deser: time.Millisecond,
		GCAttributed: 500 * time.Microsecond,
		Attempts:     8, Aborts: 2, Records: 100, AllocBytes: 4096,
		PeakHeapBytes: 1 << 20,
	}

	ps, err := OpenProfileStore(path)
	if err != nil {
		t.Fatalf("OpenProfileStore: %v", err)
	}
	ps.Record("PR", "gerenuk", "s0", stats, 12*time.Millisecond)
	ps.Record("PR", "gerenuk", "s1", stats, 12*time.Millisecond)
	ps.Record("PR", "heaps", "s0", stats, 15*time.Millisecond)
	if err := ps.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// second run: reopen, record the same keys again
	ps2, err := OpenProfileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if ps2.Len() != 3 {
		t.Fatalf("Len after reload = %d, want 3", ps2.Len())
	}
	ps2.Record("PR", "gerenuk", "s0", stats, 14*time.Millisecond)
	if err := ps2.Save(); err != nil {
		t.Fatalf("second Save: %v", err)
	}

	ps3, err := OpenProfileStore(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if ps3.Len() != 3 {
		t.Fatalf("Len after merge = %d, want 3 (rerun must merge, not append)", ps3.Len())
	}
	r, ok := ps3.Get("PR", "gerenuk", "s0")
	if !ok {
		t.Fatal("record PR/gerenuk/s0 missing")
	}
	if r.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", r.Runs)
	}
	if want := (12 + 14) * time.Millisecond; r.WallNsSum != want.Nanoseconds() {
		t.Fatalf("WallNsSum = %d, want %d", r.WallNsSum, want.Nanoseconds())
	}
	if r.AttemptsSum != 16 || r.AbortsSum != 4 {
		t.Fatalf("AttemptsSum/AbortsSum = %d/%d, want 16/4", r.AttemptsSum, r.AbortsSum)
	}
	if got := r.AbortRate(); got != 0.25 {
		t.Fatalf("AbortRate = %v, want 0.25", got)
	}
	if r.GCAttrNsSum != (time.Millisecond).Nanoseconds() {
		t.Fatalf("GCAttrNsSum = %d, want %d", r.GCAttrNsSum, time.Millisecond.Nanoseconds())
	}
	if r.PeakBytesMax != 1<<20 {
		t.Fatalf("PeakBytesMax = %d, want %d", r.PeakBytesMax, 1<<20)
	}
	// untouched key unchanged
	if r2, _ := ps3.Get("PR", "heaps", "s0"); r2.Runs != 1 {
		t.Fatalf("heaps record Runs = %d, want 1", r2.Runs)
	}

	// raw file checks: schema version and deterministic record order
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Schema   int `json:"schema"`
		Profiles []struct {
			App, Mode, Stage string
		} `json:"profiles"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("profiles.json not valid JSON: %v", err)
	}
	if raw.Schema != ProfileSchemaVersion {
		t.Fatalf("schema = %d, want %d", raw.Schema, ProfileSchemaVersion)
	}
	for i := 1; i < len(raw.Profiles); i++ {
		a, b := raw.Profiles[i-1], raw.Profiles[i]
		ka := a.App + "\x00" + a.Mode + "\x00" + a.Stage
		kb := b.App + "\x00" + b.Mode + "\x00" + b.Stage
		if ka >= kb {
			t.Fatalf("profiles not sorted: %q before %q", ka, kb)
		}
	}
}

// TestProfileStoreRejectsBadFiles: malformed JSON and future schemas
// must error, never be silently clobbered.
func TestProfileStoreRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := OpenProfileStore(bad); err == nil {
		t.Fatal("OpenProfileStore accepted malformed JSON")
	}

	future := filepath.Join(dir, "future.json")
	os.WriteFile(future, []byte(`{"schema": 999, "profiles": []}`), 0o644)
	if _, err := OpenProfileStore(future); err == nil {
		t.Fatal("OpenProfileStore accepted a future schema version")
	}

	// missing file is fine — fresh store
	ps, err := OpenProfileStore(filepath.Join(dir, "absent.json"))
	if err != nil || ps.Len() != 0 {
		t.Fatalf("missing file: err=%v len=%d, want nil/0", err, ps.Len())
	}
}

// TestProfileStoreNilSafety mirrors the repo-wide nil-receiver contract.
func TestProfileStoreNilSafety(t *testing.T) {
	var ps *ProfileStore
	ps.Record("a", "m", "s", &metrics.Breakdown{}, time.Second)
	if err := ps.Save(); err != nil {
		t.Fatalf("nil Save: %v", err)
	}
	if _, ok := ps.Get("a", "m", "s"); ok {
		t.Fatal("nil Get returned ok")
	}
	if ps.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
}
