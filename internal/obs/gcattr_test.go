package obs

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestGCAttributorChargesPauses: after stages that allocate, the
// per-(job,mode) gc_pause_ns histogram must be non-empty — if no
// natural GC cycle landed in the window, the attributor forces one, so
// this holds even on tiny test runs.
func TestGCAttributorChargesPauses(t *testing.T) {
	tr := trace.New()
	a := NewGCAttributor(tr)

	// simulate a stage doing allocation work
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink

	total := a.StageEnd("PR", "gerenuk", "s0")
	if total <= 0 {
		t.Fatalf("StageEnd attributed %v, want > 0 (forced GC fallback should guarantee a pause)", total)
	}

	snap := tr.Registry().Snapshot()
	name := MetricName("gc_pause_ns", "job", "PR", "mode", "gerenuk")
	h, ok := snap.Histograms[name]
	if !ok {
		var have []string
		for k := range snap.Histograms {
			have = append(have, k)
		}
		t.Fatalf("histogram %q missing; have %v", name, have)
	}
	if h.Count == 0 || h.Sum <= 0 {
		t.Fatalf("gc_pause_ns count=%d sum=%v, want non-empty", h.Count, h.Sum)
	}
	if snap.Counters["gc_pauses_attributed_total"] == 0 {
		t.Fatal("gc_pauses_attributed_total = 0")
	}

	// the attribution instant must be in the event stream under cat "gc"
	found := false
	for _, e := range tr.Events() {
		if e.Cat == "gc" && e.Name == "gc-attributed" {
			found = true
			if e.Args["job"] != "PR" || e.Args["mode"] != "gerenuk" {
				t.Fatalf("gc-attributed args = %v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("no gc-attributed instant emitted")
	}
}

// TestGCAttributorForcesOncePerJob: the forced-GC fallback fires at most
// once per (job,mode) — a second idle stage of the same job may
// attribute nothing, but must not force another collection.
func TestGCAttributorForcesOncePerJob(t *testing.T) {
	tr := trace.New()
	a := NewGCAttributor(tr)
	a.StageEnd("J", "gerenuk", "s0") // may force
	before := ReadRuntime().GCCycles
	a.StageEnd("J", "gerenuk", "s1") // must not force
	after := ReadRuntime().GCCycles
	// a natural cycle could still land in between; only assert the
	// attributor didn't add one when nothing else allocates
	if after > before+1 {
		t.Fatalf("GC cycles jumped %d -> %d across an idle stage", before, after)
	}
}

// TestGCAttributorNilSafety: nil attributor and nil tracer paths.
func TestGCAttributorNilSafety(t *testing.T) {
	var a *GCAttributor
	if d := a.StageEnd("x", "y", "z"); d != 0 {
		t.Fatalf("nil StageEnd = %v, want 0", d)
	}
}

// TestMetricNameEscaping: label values with quotes and backslashes stay
// one valid label.
func TestMetricNameEscaping(t *testing.T) {
	n := MetricName("m", "k", `va"l\ue`)
	if n != `m{k="va\"l\\ue"}` {
		t.Fatalf("MetricName = %q", n)
	}
	base, labels := splitName(n)
	if base != "m" || !strings.Contains(labels, `va\"l\\ue`) {
		t.Fatalf("splitName(%q) = %q, %q", n, base, labels)
	}
}
