package obs

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestScrapeUnderLoad hammers the tracer with concurrent span trees and
// registry writes — the live-run shape — while /metrics, /statusz and
// /flamez are scraped concurrently. Run under -race by the CI suite, it
// locks in that the whole observability plane (prometheus render, ring,
// flame fold, runtime sampling) is data-race-free against hot
// instrumentation.
func TestScrapeUnderLoad(t *testing.T) {
	tr := trace.New()
	s := NewServer(tr)
	h := s.Handler()

	const workers, rounds, scrapers = 6, 120, 3
	var wg sync.WaitGroup
	start := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			r := tr.Registry()
			for i := 0; i < rounds; i++ {
				job := tr.StartSpan("job", fmt.Sprintf("j%d", w))
				task := job.Child("task", fmt.Sprintf("t%d", i))
				att := task.Child("attempt", "native")
				att.End()
				task.End()
				job.End()
				r.Counter("tasks_total").Add(1)
				r.Histogram(MetricName("gc_pause_ns", "job", fmt.Sprintf("j%d", w), "mode", "gerenuk"),
					trace.LatencyBuckets()...).Observe(float64(i * 100))
			}
		}(w)
	}
	for sc := 0; sc < scrapers; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds/4; i++ {
				for _, path := range []string{"/metrics", "/statusz", "/flamez", "/healthz"} {
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
					if rec.Code != 200 {
						t.Errorf("%s -> %d", path, rec.Code)
						return
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := tr.Registry().Counter("tasks_total").Value(); got != workers*rounds {
		t.Fatalf("tasks_total = %d, want %d", got, workers*rounds)
	}
	if got := s.flame.Spans(); got != workers*rounds*3 {
		t.Fatalf("flame folded %d spans, want %d", got, workers*rounds*3)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/flamez", nil))
	if _, err := ValidateFolded(rec.Body); err != nil {
		t.Fatalf("post-load flamez invalid: %v", err)
	}
}
