package obs

import (
	"sync"

	"repro/internal/trace"
)

// RingEvent is the JSON shape of one retained span event as served by
// /statusz: a completed span ("X") or an instant ("i"), never the
// subscriber-only "B" opens (those only feed the in-flight gauges).
type RingEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Ph    string `json:"ph"`
	TS    int64  `json:"ts_ns"`
	Dur   int64  `json:"dur_ns,omitempty"`
	TID   int64  `json:"tid,omitempty"`
	Abort string `json:"abort,omitempty"`
}

// Ring is a bounded, concurrency-safe window over the span stream: the
// last N completed/instant events plus a live count of open spans per
// category, fed by subscribing to a tracer. Memory is fixed at N
// regardless of run length. A nil *Ring ignores events and reports
// empty state.
type Ring struct {
	mu       sync.Mutex
	buf      []RingEvent
	next     int
	full     bool
	inflight map[string]int
	total    int64
}

// NewRing builds a ring retaining the last n events (n < 1 is clamped
// to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]RingEvent, n), inflight: make(map[string]int)}
}

// Observe feeds one tracer event into the ring. It is installed via
// Tracer.Subscribe and therefore runs under the tracer's mutex: it must
// stay allocation-light and never call back into the tracer.
func (r *Ring) Observe(e trace.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Ph {
	case "B":
		r.inflight[e.Cat]++
		return
	case "X":
		if n := r.inflight[e.Cat]; n > 0 {
			r.inflight[e.Cat] = n - 1
		}
	case "i":
		// retained below
	default:
		return
	}
	re := RingEvent{Name: e.Name, Cat: e.Cat, Ph: e.Ph, TS: e.TS, Dur: e.Dur, TID: e.TID}
	if v, ok := e.Args["abort"]; ok {
		if s, ok := v.(string); ok {
			re.Abort = s
		}
	}
	r.buf[r.next] = re
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []RingEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]RingEvent(nil), r.buf[:r.next]...)
	}
	out := make([]RingEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Inflight returns the current open-span count per category (only
// categories with at least one open span).
func (r *Ring) Inflight() map[string]int {
	if r == nil {
		return map[string]int{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.inflight))
	for k, v := range r.inflight {
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// Total returns the number of events the ring has ever retained
// (including ones since evicted).
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
