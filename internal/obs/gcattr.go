package obs

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/trace"
)

// GCAttributor charges real Go GC pauses to the job that was running
// when they happened — the live counterpart of the paper's Figure 6/7
// cost decomposition. It reads the runtime's cumulative
// /gc/pauses:seconds histogram at construction and after every stage;
// the count delta between reads is the set of pauses that landed inside
// that stage, and each one is observed (at its bucket-midpoint estimate)
// into a per-(job,mode) gc_pause_ns histogram in the tracer's registry.
//
// Attribution is interval-based, so it is exact only while one stage
// runs at a time — which is how the bench harness drives jobs. When
// stages of different jobs overlap, a pause is charged to whichever
// stage ends first; the total across jobs is still conserved.
//
// Small runs may complete without a single natural GC cycle, which would
// leave the per-job series empty and downstream dashboards blind. The
// first time a (job,mode) pair ends a stage with zero observed pauses
// the attributor forces one runtime.GC() and re-reads, so every traced
// job carries at least one attributed pause.
//
// A nil *GCAttributor is the disabled attributor; StageEnd is a no-op
// returning 0.
type GCAttributor struct {
	mu     sync.Mutex
	tr     *trace.Tracer
	last   []uint64 // cumulative bucket counts at the previous read
	forced map[string]bool
}

// NewGCAttributor builds an attributor bound to tr's registry and primes
// the pause-histogram baseline so pre-existing pauses are never charged
// to the first stage.
func NewGCAttributor(tr *trace.Tracer) *GCAttributor {
	a := &GCAttributor{tr: tr, forced: make(map[string]bool)}
	if s := ReadRuntime(); s.Pauses != nil {
		a.last = append([]uint64(nil), s.Pauses.Counts...)
	}
	return a
}

// StageEnd attributes every GC pause since the previous read to the
// given (job, mode) pair, returning the total attributed pause time.
// Call it at each stage boundary, after the stage's work completes.
func (a *GCAttributor) StageEnd(job, mode, stage string) time.Duration {
	return a.StageEndTenant("", job, mode, stage)
}

// StageEndTenant is StageEnd with a tenant dimension: the pause
// histogram series gains a tenant label (gc_pause_ns{tenant,job,mode}),
// so a multi-tenant service can answer "whose jobs are eating GC pause
// budget". tenant "" degenerates to the unlabeled-by-tenant StageEnd
// behavior.
func (a *GCAttributor) StageEndTenant(tenant, job, mode, stage string) time.Duration {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	total := a.attribute(tenant, job, mode, stage)
	if total == 0 {
		key := tenant + "\x00" + job + "\x00" + mode
		if !a.forced[key] {
			a.forced[key] = true
			runtime.GC()
			total = a.attribute(tenant, job, mode, stage)
		}
	}
	return total
}

// attribute performs one read-diff-observe cycle under the lock.
func (a *GCAttributor) attribute(tenant, job, mode, stage string) time.Duration {
	s := ReadRuntime()
	if s.Pauses == nil {
		return 0
	}
	cur := s.Pauses.Counts
	var totalNs float64
	var pauses int64
	reg := a.tr.Registry()
	name := MetricName("gc_pause_ns", "job", job, "mode", mode)
	if tenant != "" {
		name = MetricName("gc_pause_ns", "tenant", tenant, "job", job, "mode", mode)
	}
	hist := reg.Histogram(name, trace.LatencyBuckets()...)
	for i, c := range cur {
		var prev uint64
		if i < len(a.last) {
			prev = a.last[i]
		}
		if c <= prev {
			continue
		}
		ns := bucketValueNs(s.Pauses, i)
		for n := uint64(0); n < c-prev; n++ {
			hist.Observe(ns)
			totalNs += ns
			pauses++
		}
	}
	a.last = append(a.last[:0], cur...)
	if pauses == 0 {
		return 0
	}
	reg.Counter("gc_pauses_attributed_total").Add(pauses)
	a.tr.Instant("gc", "gc-attributed",
		trace.Str("tenant", tenant), trace.Str("job", job),
		trace.Str("mode", mode), trace.Str("stage", stage),
		trace.I64("pauses", pauses), trace.F64("pause_ns", totalNs))
	return time.Duration(totalNs)
}
