package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// newTestServer builds a server over a tracer with some activity on it.
func newTestServer(t *testing.T) (*Server, *trace.Tracer) {
	t.Helper()
	tr := trace.New()
	s := NewServer(tr)
	r := tr.Registry()
	r.Counter("tasks_total").Add(7)
	r.Counter(MetricName("gc_pause_ns_example", "job", "PR")).Add(1)
	r.Gauge("inflight").Set(3)
	r.Histogram("task_latency_ns", 1000, 2000).Observe(1500)
	job := tr.StartSpan("job", "PR")
	task := job.Child("task", "t0")
	task.End()
	job.End()
	return s, tr
}

// TestMetricsEndpoint: the exposition must be valid Prometheus text —
// TYPE lines, counter values, histogram bucket/sum/count series with a
// +Inf bucket — and each scrape must bump obs_scrapes_total and publish
// the runtime gauges.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE tasks_total counter",
		"tasks_total 7",
		"# TYPE task_latency_ns histogram",
		`task_latency_ns_bucket{le="1000"} 0`,
		`task_latency_ns_bucket{le="2000"} 1`,
		`task_latency_ns_bucket{le="+Inf"} 1`,
		"task_latency_ns_sum 1500",
		"task_latency_ns_count 1",
		"# TYPE go_goroutines gauge",
		"# TYPE go_gc_pause_p99_ns gauge",
		"inflight 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("body:\n%s", body)
		t.FailNow()
	}

	// second scrape: counter advances, WaitScraped unblocks immediately
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec2.Body.String(), "obs_scrapes_total 2") {
		t.Fatal("obs_scrapes_total did not advance to 2")
	}
	if !s.WaitScraped(0) {
		t.Fatal("WaitScraped(0) = false after scrapes")
	}
	if s.Scrapes() != 2 {
		t.Fatalf("Scrapes() = %d, want 2", s.Scrapes())
	}
}

// TestHealthzAndStatusz: health is ok JSON; statusz carries the ring's
// recent span events and any registered status sources.
func TestHealthzAndStatusz(t *testing.T) {
	s, tr := newTestServer(t)
	s.AddStatus("breaker", func() any { return map[string]string{"state": "closed"} })
	tr.Registry().Counter("recovery_reexecuted_tasks_total").Add(3)
	open := tr.StartSpan("stage", "live") // stays open: must show as inflight
	defer open.End()

	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health struct {
		Status  string `json:"status"`
		Scrapes int64  `json:"scrapes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if health.Status != "ok" {
		t.Fatalf("health status = %q", health.Status)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	var status struct {
		Inflight map[string]int   `json:"inflight"`
		Recovery map[string]int64 `json:"recovery"`
		Status   map[string]any   `json:"status"`
		Recent   []RingEvent      `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatalf("statusz not JSON: %v", err)
	}
	if status.Inflight["stage"] != 1 {
		t.Fatalf("inflight = %v, want stage:1", status.Inflight)
	}
	if status.Recovery["recovery_reexecuted_tasks_total"] != 3 {
		t.Fatalf("recovery counters = %v", status.Recovery)
	}
	if _, ok := status.Status["breaker"]; !ok {
		t.Fatalf("status sources = %v, want breaker", status.Status)
	}
	foundTask := false
	for _, e := range status.Recent {
		if e.Cat == "task" && e.Ph == "X" {
			foundTask = true
		}
	}
	if !foundTask {
		t.Fatalf("recent events missing completed task span: %+v", status.Recent)
	}
}

// TestFlamezAndPprof: /flamez serves validatable collapsed stacks;
// /debug/pprof/ serves the pprof index.
func TestFlamezAndPprof(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/flamez", nil))
	stats, err := ValidateFolded(rec.Body)
	if err != nil {
		t.Fatalf("flamez output invalid: %v", err)
	}
	if stats.Stacks == 0 {
		t.Fatal("flamez served no stacks")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: code=%d", rec.Code)
	}
}

// TestServerStartScrapeClose exercises the real listener path end to
// end: Start on :0, GET /metrics over TCP, WaitScraped, Close.
func TestServerStartScrapeClose(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Close()
	addr := s.Addr()
	if addr == "" {
		t.Fatal("Addr() empty after Start")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("GET /metrics: %v", err)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if !bytes.Contains(body, []byte("obs_scrapes_total")) {
			t.Error("scrape missing obs_scrapes_total")
		}
	}()
	if !s.WaitScraped(5 * time.Second) {
		t.Fatal("WaitScraped timed out")
	}
	<-done
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
