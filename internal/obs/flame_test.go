package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// fakeClock returns a clock that advances a fixed step per read, so
// span durations are deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

// TestFlameFoldsSpanTree drives the real lifecycle shape — job and
// stage as context spans, tasks as parentless roots (the spark idiom),
// attempts and phases as children — and checks the folded output nests
// them job→stage→task→attempt→phase with self-time weights.
func TestFlameFoldsSpanTree(t *testing.T) {
	tr := trace.NewWithClock(fakeClock(time.Millisecond))
	f := NewFlame()
	tr.Subscribe(f.Observe)

	job := tr.StartSpan("job", "PR")
	stage := tr.StartSpan("stage", "s0") // parentless root: attaches to job
	task := tr.StartSpan("task", "t1")   // attaches to stage
	att := task.Child("attempt", "native")
	ph := att.Child("phase", "deser")
	ph.End()
	att.End()
	task.End()
	stage.End()
	job.End()

	if got := f.Spans(); got != 5 {
		t.Fatalf("Spans() = %d, want 5", got)
	}
	var buf bytes.Buffer
	if err := f.WriteFolded(&buf); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	out := buf.String()
	want := "job:PR;stage:s0;task:t1;attempt:native;phase:deser"
	if !strings.Contains(out, want) {
		t.Fatalf("folded output missing full chain %q:\n%s", want, out)
	}
	stats, err := ValidateFolded(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ValidateFolded: %v\n%s", err, out)
	}
	if stats.FullChains != 1 {
		t.Fatalf("FullChains = %d, want 1\n%s", stats.FullChains, out)
	}
	if stats.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d, want > 0", stats.TotalNs)
	}
}

// TestFlameSelfTimeConservation checks the core folding invariant: the
// summed folded weights equal the root span's wall time (self time
// partitions the tree, nothing double-counted).
func TestFlameSelfTimeConservation(t *testing.T) {
	tr := trace.NewWithClock(fakeClock(time.Millisecond))
	f := NewFlame()
	tr.Subscribe(f.Observe)

	job := tr.StartSpan("job", "WC")
	jobStart := int64(0)
	task := job.Child("task", "t0")
	a1 := task.Child("attempt", "native")
	a1.End()
	a2 := task.Child("attempt", "heap")
	a2.End()
	task.End()
	job.End(trace.I64("marker", jobStart))

	var buf bytes.Buffer
	if err := f.WriteFolded(&buf); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	stats, err := ValidateFolded(&buf)
	if err != nil {
		t.Fatalf("ValidateFolded: %v", err)
	}
	// Clock steps once per since() read: job spans reads 2..11 → its X
	// event duration covers every child tick. The exact total equals the
	// job's Dur, which we recover from the tracer's own event log.
	var jobDur int64
	for _, e := range tr.Events() {
		if e.Cat == "job" && e.Ph == "X" {
			jobDur = e.Dur
		}
	}
	if jobDur == 0 {
		t.Fatal("job X event not found")
	}
	if stats.TotalNs != jobDur {
		t.Fatalf("folded total %d != job wall %d (self-time not conserved)", stats.TotalNs, jobDur)
	}
}

// TestFlameOverlappingHedges pins the SID-based disambiguation: two
// attempts open concurrently under one task (the hedge shape) and both
// fold under the task, not under each other.
func TestFlameOverlappingHedges(t *testing.T) {
	tr := trace.NewWithClock(fakeClock(time.Millisecond))
	f := NewFlame()
	tr.Subscribe(f.Observe)

	task := tr.StartSpan("task", "t9")
	native := task.Child("attempt", "native")
	hedge := task.Child("attempt", "hedge") // overlaps native on the same tid
	hedge.End()
	native.End()
	task.End()

	var buf bytes.Buffer
	f.WriteFolded(&buf)
	out := buf.String()
	for _, want := range []string{"task:t9;attempt:native", "task:t9;attempt:hedge"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in folded output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "attempt:native;attempt:hedge") ||
		strings.Contains(out, "attempt:hedge;attempt:native") {
		t.Fatalf("hedged attempts nested under each other:\n%s", out)
	}
}

// TestValidateFoldedRejects locks in the validator's error cases.
func TestValidateFoldedRejects(t *testing.T) {
	cases := map[string]string{
		"empty input":     "",
		"no weight":       "job:a;task:b\n",
		"bad weight":      "job:a xyz\n",
		"zero weight":     "job:a 0\n",
		"bare frame":      "noseparator 5\n",
		"task above job":  "task:t;job:j 5\n",
		"repeated stage":  "job:j;stage:s;stage:s2 5\n",
		"phase then task": "job:j;phase:p;task:t 5\n",
	}
	for name, in := range cases {
		if _, err := ValidateFolded(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateFolded accepted %q", name, in)
		}
	}
	// and the happy path: out-of-spine categories interleave freely, and
	// phases nest under phases (heap-execute contains deserialize) — that
	// stack still counts as one full chain.
	ok := "job:j;stage:s;shuffle:exchange 10\n" +
		"job:j;stage:s;task:t;attempt:a;phase:execute;phase:deser 20\n"
	stats, err := ValidateFolded(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ValidateFolded rejected valid input: %v", err)
	}
	if stats.Stacks != 2 || stats.FullChains != 1 || stats.TotalNs != 30 {
		t.Fatalf("stats = %+v, want 2 stacks, 1 full chain, 30ns", stats)
	}
}

// TestFlameSanitizesNames checks frame-hostile characters in span names
// cannot corrupt the collapsed format.
func TestFlameSanitizesNames(t *testing.T) {
	tr := trace.New()
	f := NewFlame()
	tr.Subscribe(f.Observe)
	sp := tr.StartSpan("task", "weird name;with everything")
	time.Sleep(time.Millisecond)
	sp.End()
	var buf bytes.Buffer
	f.WriteFolded(&buf)
	if _, err := ValidateFolded(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("sanitized output failed validation: %v\n%s", err, buf.String())
	}
}
