package obs

import (
	"math"
	rtmetrics "runtime/metrics"

	"repro/internal/trace"
)

// The runtime/metrics samples the live plane reads. /gc/pauses:seconds
// is the stop-the-world pause distribution the GC attributor diffs per
// stage; the rest become gauges on every /metrics scrape.
const (
	rmGCPauses   = "/gc/pauses:seconds"
	rmHeapGoal   = "/gc/heap/goal:bytes"
	rmHeapLive   = "/memory/classes/heap/objects:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
)

// RuntimeSample is one point-in-time read of the Go runtime's own
// telemetry — the real process under the simulated heaps.
type RuntimeSample struct {
	Goroutines    int64
	HeapGoalBytes uint64
	HeapLiveBytes uint64
	GCCycles      uint64
	// GCPauseP50Ns/GCPauseP99Ns are bucket-quantile estimates over the
	// process-lifetime pause distribution, in nanoseconds.
	GCPauseP50Ns float64
	GCPauseP99Ns float64
	// GCPauseCount is the total number of pauses observed so far.
	GCPauseCount uint64
	// Pauses is the raw cumulative pause histogram (counts per bucket),
	// retained for delta computation by the attributor.
	Pauses *rtmetrics.Float64Histogram
}

// ReadRuntime samples the runtime metrics the observability plane
// exposes.
func ReadRuntime() RuntimeSample {
	samples := []rtmetrics.Sample{
		{Name: rmGCPauses},
		{Name: rmHeapGoal},
		{Name: rmHeapLive},
		{Name: rmGoroutines},
		{Name: rmGCCycles},
	}
	rtmetrics.Read(samples)
	var out RuntimeSample
	for _, s := range samples {
		switch s.Name {
		case rmGCPauses:
			if s.Value.Kind() == rtmetrics.KindFloat64Histogram {
				out.Pauses = s.Value.Float64Histogram()
			}
		case rmHeapGoal:
			if s.Value.Kind() == rtmetrics.KindUint64 {
				out.HeapGoalBytes = s.Value.Uint64()
			}
		case rmHeapLive:
			if s.Value.Kind() == rtmetrics.KindUint64 {
				out.HeapLiveBytes = s.Value.Uint64()
			}
		case rmGoroutines:
			if s.Value.Kind() == rtmetrics.KindUint64 {
				out.Goroutines = int64(s.Value.Uint64())
			}
		case rmGCCycles:
			if s.Value.Kind() == rtmetrics.KindUint64 {
				out.GCCycles = s.Value.Uint64()
			}
		}
	}
	if out.Pauses != nil {
		out.GCPauseCount = histCount(out.Pauses.Counts)
		out.GCPauseP50Ns = histQuantileNs(out.Pauses, 0.5)
		out.GCPauseP99Ns = histQuantileNs(out.Pauses, 0.99)
	}
	return out
}

// PublishGauges folds a runtime sample into registry gauges, so both
// the Prometheus exposition and the metrics JSON exporter carry them.
func (s RuntimeSample) PublishGauges(r *trace.Registry) {
	r.Gauge("go_goroutines").Set(float64(s.Goroutines))
	r.Gauge("go_gc_heap_goal_bytes").Set(float64(s.HeapGoalBytes))
	r.Gauge("go_heap_live_bytes").Set(float64(s.HeapLiveBytes))
	r.Gauge("go_gc_cycles_total").Set(float64(s.GCCycles))
	r.Gauge("go_gc_pause_p50_ns").Set(s.GCPauseP50Ns)
	r.Gauge("go_gc_pause_p99_ns").Set(s.GCPauseP99Ns)
	r.Gauge("go_gc_pauses_seen").Set(float64(s.GCPauseCount))
}

func histCount(counts []uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// bucketValueNs estimates a representative value (nanoseconds) for
// bucket i of a runtime seconds-histogram. Runtime histograms carry
// ±Inf sentinel edges; the estimate is the midpoint of the finite
// edges, or the surviving finite edge when one side is infinite.
func bucketValueNs(h *rtmetrics.Float64Histogram, i int) float64 {
	lo, hi := h.Buckets[i], h.Buckets[i+1]
	var sec float64
	switch {
	case !math.IsInf(lo, 0) && !math.IsInf(hi, 0):
		sec = (lo + hi) / 2
	case math.IsInf(lo, 0):
		sec = hi
	default:
		sec = lo
	}
	if sec < 0 || math.IsInf(sec, 0) || math.IsNaN(sec) {
		sec = 0
	}
	return sec * 1e9
}

// histQuantileNs estimates the q-th quantile of a runtime
// seconds-histogram, in nanoseconds (0 when empty).
func histQuantileNs(h *rtmetrics.Float64Histogram, q float64) float64 {
	total := histCount(h.Counts)
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			return bucketValueNs(h, i)
		}
	}
	return bucketValueNs(h, len(h.Counts)-1)
}
