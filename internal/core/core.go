// Package core is the public face of the Gerenuk reproduction: a
// compiler + runtime that lets a dataflow program execute directly over
// inlined native bytes, speculatively, with automatic abort-and-retry.
//
// The pipeline mirrors the paper's architecture (Figure 2):
//
//	                 ┌─ internal/dsa ──────── inline layouts (§3.3)
//	Program (IR) ────┤─ internal/analysis ─── SER discovery + violations (§3.2, §3.4)
//	                 └─ internal/transform ── Algorithm 1 rewriting (§3.5)
//	                          │
//	                 internal/engine ───────── speculative execution,
//	                                           abort → slow path (§3.6)
//
// A downstream user provides three things (the paper's section 3.1 user
// effort): the (de)serialization points — expressed as Deserialize and
// Serialize/Emit statements in the IR —, the top-level data types
// (Program.TopTypes), and the collection types, which the bundled
// dataflow engines (internal/spark, internal/hadoop) already annotate.
//
// Typical use:
//
//	prog := ir.NewProgram(reg)
//	prog.TopTypes = []string{"LabeledPoint"}
//	...define UDFs and stage drivers...
//	g := core.New(prog)
//	report, err := g.CompileSER("myStage")       // static pipeline
//	res, err := g.RunTask(core.ModeGerenuk, spec) // speculative execution
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/transform"
)

// Mode re-exports the execution mode.
type Mode = engine.Mode

// Execution modes.
const (
	ModeBaseline = engine.Baseline
	ModeGerenuk  = engine.Gerenuk
)

// TaskSpec re-exports the task description.
type TaskSpec = engine.TaskSpec

// Input re-exports the task input binding.
type Input = engine.Input

// Gerenuk bundles a compiled program with its executor configuration.
type Gerenuk struct {
	C *engine.Compiled
	// HeapCfg sizes the simulated per-task heap for baseline attempts
	// and slow-path re-executions.
	HeapCfg heap.Config
}

// New compiles the program's schemas (data structure analyzer) and
// returns a Gerenuk instance. SERs compile lazily per driver.
func New(prog *ir.Program) *Gerenuk {
	return &Gerenuk{
		C:       engine.Compile(prog),
		HeapCfg: heap.Config{YoungSize: 128 << 10, OldSize: 2 << 20},
	}
}

// Report summarizes the static compilation of one SER, the numbers the
// paper reports in sections 4.1/4.2.
type Report struct {
	Driver         string
	Transformable  bool
	Reason         string
	Violations     []analysis.Violation
	ClassesTouched int
	Stats          transform.Stats
}

func (r Report) String() string {
	if !r.Transformable {
		return fmt.Sprintf("%s: NOT transformable (%s)", r.Driver, r.Reason)
	}
	return fmt.Sprintf("%s: %d stmts rewritten, %d calls inlined, %d classes, %d violation points",
		r.Driver, r.Stats.RewrittenStmts, r.Stats.InlinedCalls, r.ClassesTouched, len(r.Violations))
}

// CompileSER runs the full static pipeline (SER code analyzer, violation
// detection, Algorithm 1) for the driver function and returns the report.
func (g *Gerenuk) CompileSER(driver string) (Report, error) {
	if err := g.C.CompileDriver(driver); err != nil {
		return Report{}, err
	}
	ser := g.C.SERs[driver]
	rep := Report{
		Driver:         driver,
		Transformable:  ser.Transformable,
		Reason:         ser.Reason,
		Violations:     ser.Violations,
		ClassesTouched: len(ser.ClassesTouched),
		Stats:          g.C.XStats[driver],
	}
	return rep, nil
}

// RunTask executes one task in the given mode. In Gerenuk mode the
// transformed driver runs over native buffers; on abort the executor is
// discarded and the original driver re-runs on the heap path over the
// same immutable inputs.
func (g *Gerenuk) RunTask(mode Mode, spec TaskSpec) (engine.TaskResult, error) {
	if err := g.C.CompileDriver(spec.Driver); err != nil {
		return engine.TaskResult{}, err
	}
	ex := &engine.Executor{C: g.C, Mode: mode, HeapCfg: g.HeapCfg}
	return ex.RunTask(spec)
}

// CompareModes runs the same task on both paths and returns the results
// keyed by mode — the one-call way to see the transformation's effect
// and verify output equivalence.
func (g *Gerenuk) CompareModes(spec TaskSpec) (base, ger engine.TaskResult, err error) {
	base, err = g.RunTask(ModeBaseline, spec)
	if err != nil {
		return
	}
	ger, err = g.RunTask(ModeGerenuk, spec)
	return
}

// Speedup computes baseline/gerenuk total time from two results.
func Speedup(base, ger engine.TaskResult) float64 {
	return metrics.Ratio(float64(base.Stats.Total), float64(ger.Stats.Total))
}
