package core

import (
	"bytes"
	"testing"

	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/serde"
	"repro/internal/spark"
)

func demoProgram(t *testing.T) (*ir.Program, *Gerenuk) {
	t.Helper()
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Point", Fields: []model.FieldDef{
		{Name: "id", Type: model.Prim(model.KindLong)},
		{Name: "xs", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Point"}

	b := ir.NewFuncBuilder(prog, "normUDF", model.Type{})
	p := b.Param("p", model.Object("Point"))
	id := b.Load(p, "id")
	xs := b.Load(p, "xs")
	n := b.Len(xs)
	out := b.New("Point")
	b.Store(out, "id", id)
	arr := b.NewArr(model.Prim(model.KindDouble), n)
	two := b.FConst(0.5)
	b.For(n, func(i *ir.Var) {
		x := b.Elem(xs, i)
		h := b.Bin(ir.OpMul, x, two)
		b.SetElem(arr, i, h)
	})
	b.Store(out, "xs", arr)
	b.EmitRecord(out)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "normStage", "normUDF", "Point")
	return prog, New(prog)
}

func encodePoints(t *testing.T, g *Gerenuk, n int) []byte {
	t.Helper()
	var buf []byte
	var err error
	for i := 0; i < n; i++ {
		buf, err = g.C.Codec.Encode("Point", serde.Obj{
			"id": int64(i), "xs": []float64{float64(i), float64(2 * i)},
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestCompileSERReport(t *testing.T) {
	_, g := demoProgram(t)
	rep, err := g.CompileSER("normStage")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Transformable {
		t.Fatalf("not transformable: %s", rep.Reason)
	}
	if rep.Stats.RewrittenStmts == 0 || rep.Stats.InlinedCalls == 0 {
		t.Errorf("report: %+v", rep)
	}
	if rep.String() == "" {
		t.Errorf("empty report string")
	}
}

func TestCompareModesIdenticalOutput(t *testing.T) {
	_, g := demoProgram(t)
	input := encodePoints(t, g, 20)
	spec := TaskSpec{
		Name:   "t",
		Driver: "normStage",
		Invocations: []map[string]Input{
			{"in": {Class: "Point", Buf: input}},
		},
	}
	base, ger, err := g.CompareModes(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Out, ger.Out) {
		t.Fatalf("outputs differ between modes")
	}
	if ger.Stats.Deser != 0 {
		t.Errorf("gerenuk paid record deserialization: %v", ger.Stats.Deser)
	}
	if base.Stats.Deser == 0 {
		t.Errorf("baseline paid no deserialization")
	}
	if Speedup(base, ger) <= 0 {
		t.Errorf("speedup not computable")
	}
}

func TestRunTaskUnknownDriver(t *testing.T) {
	_, g := demoProgram(t)
	if _, err := g.RunTask(ModeGerenuk, TaskSpec{Driver: "missing"}); err == nil {
		t.Fatalf("expected error for unknown driver")
	}
}

func TestUntransformableSERStillRuns(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Node", Fields: []model.FieldDef{
		{Name: "v", Type: model.Prim(model.KindLong)},
		{Name: "next", Type: model.Object("Node")}, // recursive: DSA rejects
	}})
	prog := ir.NewProgram(reg)
	prog.TopTypes = []string{"Node"}
	b := ir.NewFuncBuilder(prog, "idUDF", model.Type{})
	p := b.Param("p", model.Object("Node"))
	b.EmitRecord(p)
	b.Ret(nil)
	b.Done()
	spark.BuildMapDriver(prog, "idStage", "idUDF", "Node")

	g := New(prog)
	rep, err := g.CompileSER("idStage")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transformable {
		t.Fatalf("recursive type reported transformable")
	}
	// Gerenuk mode must fall back to the heap path transparently.
	var input []byte
	input, err = g.C.Codec.Encode("Node", serde.Obj{"v": int64(1), "next": serde.Obj{}}, input)
	if err == nil {
		// Recursive schemas cannot even encode without a layout; this is
		// fine — the engine runs such jobs purely on the heap path with
		// codec-free inputs in practice. Just check mode dispatch.
		_ = input
	}
	res, err := g.RunTask(ModeGerenuk, TaskSpec{
		Name: "t", Driver: "idStage",
		Invocations: []map[string]Input{{"in": {Class: "Node", Buf: nil}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Aborts != 0 {
		t.Errorf("fallback should not count as abort")
	}
}
