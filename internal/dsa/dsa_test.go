package dsa

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/model"
)

// fakeNative lets tests evaluate symbolic offsets against hand-built
// inlined bytes.
type fakeNative []byte

func (f fakeNative) ReadNative(base, off int64, sz int) int64 {
	m := f[base+off:]
	switch sz {
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(m)))
	case 8:
		return int64(binary.LittleEndian.Uint64(m))
	}
	panic("bad size")
}

func TestPaperExampleClassC(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "C", Fields: []model.FieldDef{
		{Name: "a", Type: model.Prim(model.KindInt)},
		{Name: "b", Type: model.ArrayOf(model.Prim(model.KindLong))},
		{Name: "c", Type: model.Prim(model.KindDouble)},
	}})
	res := Analyze(reg, []string{"C"})
	if !res.IsAccepted("C") {
		t.Fatalf("C rejected: %v", res.Rejected)
	}
	l := res.Layout("C")
	if got := l.FieldOff["a"]; !got.IsConst() || got.ConstValue() != 0 {
		t.Errorf("off(a) = %s", got)
	}
	if got := l.FieldOff["b"]; !got.IsConst() || got.ConstValue() != 4 {
		t.Errorf("off(b) = %s", got)
	}
	// offset(c) = 4 + 4 + 8*readNative(BASE, 4, 4)
	wantC := expr.Konst(8).Add(expr.ReadNative(8, expr.Konst(4), 4))
	if got := l.FieldOff["c"]; !got.Equal(wantC) {
		t.Errorf("off(c) = %s, want %s", got, wantC)
	}
	// size(C) = 16 + 8*readNative(BASE, 4, 4)
	wantSize := expr.Konst(16).Add(expr.ReadNative(8, expr.Konst(4), 4))
	if !l.Size.Equal(wantSize) {
		t.Errorf("size(C) = %s, want %s", l.Size, wantSize)
	}
	if l.Fixed {
		t.Errorf("C misreported as fixed size")
	}

	// Evaluate against concrete bytes with b.len = 5.
	buf := make(fakeNative, 4+4+40+8)
	binary.LittleEndian.PutUint32(buf[4:], 5)
	if got := l.FieldOff["c"].Eval(buf, 0); got != 48 {
		t.Errorf("eval off(c) = %d, want 48", got)
	}
	if got := l.Size.Eval(buf, 0); got != 56 {
		t.Errorf("eval size(C) = %d, want 56", got)
	}
}

func TestFixedSizeClass(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Pt", Fields: []model.FieldDef{
		{Name: "x", Type: model.Prim(model.KindDouble)},
		{Name: "y", Type: model.Prim(model.KindDouble)},
	}})
	res := Analyze(reg, []string{"Pt"})
	l := res.Layout("Pt")
	if !l.Fixed || l.Size.ConstValue() != 16 {
		t.Errorf("Pt layout: fixed=%v size=%s", l.Fixed, l.Size)
	}
}

// TestLabeledPoint mirrors the paper's LR data type (Figure 3): a
// LabeledPoint holding a label and a DenseVector of doubles.
func TestLabeledPoint(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "DenseVector", Fields: []model.FieldDef{
		{Name: "size", Type: model.Prim(model.KindInt)},
		{Name: "values", Type: model.ArrayOf(model.Prim(model.KindDouble))},
	}})
	reg.Define(model.ClassDef{Name: "LabeledPoint", Fields: []model.FieldDef{
		{Name: "label", Type: model.Prim(model.KindDouble)},
		{Name: "features", Type: model.Object("DenseVector")},
	}})
	res := Analyze(reg, []string{"LabeledPoint"})
	if !res.IsAccepted("LabeledPoint") {
		t.Fatalf("rejected: %v", res.Rejected)
	}
	lp := res.Layout("LabeledPoint")
	if got := lp.FieldOff["features"]; !got.IsConst() || got.ConstValue() != 8 {
		t.Errorf("off(features) = %s", got)
	}
	// size(LabeledPoint) = 8 (label) + 4 (size) + 4 (len) + 8*len
	// with the len slot at offset 12.
	want := expr.Konst(16).Add(expr.ReadNative(8, expr.Konst(12), 4))
	if !lp.Size.Equal(want) {
		t.Errorf("size = %s, want %s", lp.Size, want)
	}
	// Concrete: 3 features -> 16 + 24 = 40 bytes.
	buf := make(fakeNative, 64)
	binary.LittleEndian.PutUint32(buf[12:], 3)
	if got := lp.Size.Eval(buf, 0); got != 40 {
		t.Errorf("eval size = %d, want 40", got)
	}
	// The DenseVector sub-layout must also be present.
	if res.Layout("DenseVector") == nil {
		t.Errorf("DenseVector layout missing")
	}
}

func TestStringTreatedAsCharArray(t *testing.T) {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Post", Fields: []model.FieldDef{
		{Name: "id", Type: model.Prim(model.KindLong)},
		{Name: "body", Type: model.Object(model.StringClassName)},
		{Name: "score", Type: model.Prim(model.KindInt)},
	}})
	res := Analyze(reg, []string{"Post"})
	if !res.IsAccepted("Post") {
		t.Fatalf("rejected: %v", res.Rejected)
	}
	l := res.Layout("Post")
	// score = 8 + 4 + 2*len, len slot at offset 8.
	want := expr.Konst(12).Add(expr.ReadNative(2, expr.Konst(8), 4))
	if got := l.FieldOff["score"]; !got.Equal(want) {
		t.Errorf("off(score) = %s, want %s", got, want)
	}
}

func TestRecursiveClassRejected(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Node", Fields: []model.FieldDef{
		{Name: "val", Type: model.Prim(model.KindLong)},
		{Name: "next", Type: model.Object("Node")},
	}})
	res := Analyze(reg, []string{"Node"})
	if res.IsAccepted("Node") {
		t.Fatalf("recursive class accepted")
	}
	if !strings.Contains(res.Rejected["Node"], "not a tree") {
		t.Errorf("reason = %q", res.Rejected["Node"])
	}
}

func TestMutuallyRecursiveRejected(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "A", Fields: []model.FieldDef{{Name: "b", Type: model.Object("B")}}})
	reg.Define(model.ClassDef{Name: "B", Fields: []model.FieldDef{{Name: "a", Type: model.Object("A")}}})
	res := Analyze(reg, []string{"A"})
	if res.IsAccepted("A") {
		t.Fatalf("mutually recursive classes accepted")
	}
}

func TestVariableElemArrayTailAllowed(t *testing.T) {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Account", Fields: []model.FieldDef{
		{Name: "userId", Type: model.Prim(model.KindLong)},
		{Name: "posts", Type: model.ArrayOf(model.Object(model.StringClassName))},
	}})
	res := Analyze(reg, []string{"Account"})
	if !res.IsAccepted("Account") {
		t.Fatalf("rejected: %v", res.Rejected)
	}
	l := res.Layout("Account")
	if l.Size != nil {
		t.Errorf("Account size should be non-linear (nil), got %s", l.Size)
	}
	if got := l.FieldOff["posts"]; !got.IsConst() || got.ConstValue() != 8 {
		t.Errorf("off(posts) = %s", got)
	}
}

func TestVariableElemArrayMidRejected(t *testing.T) {
	reg := model.NewRegistry()
	reg.DefineString()
	reg.Define(model.ClassDef{Name: "Bad", Fields: []model.FieldDef{
		{Name: "posts", Type: model.ArrayOf(model.Object(model.StringClassName))},
		{Name: "tail", Type: model.Prim(model.KindInt)},
	}})
	res := Analyze(reg, []string{"Bad"})
	if res.IsAccepted("Bad") {
		t.Fatalf("mid-record variable-size-element array accepted")
	}
}

func TestFixedElemRefArray(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Pt", Fields: []model.FieldDef{
		{Name: "x", Type: model.Prim(model.KindDouble)},
	}})
	reg.Define(model.ClassDef{Name: "Poly", Fields: []model.FieldDef{
		{Name: "pts", Type: model.ArrayOf(model.Object("Pt"))},
		{Name: "area", Type: model.Prim(model.KindDouble)},
	}})
	res := Analyze(reg, []string{"Poly"})
	if !res.IsAccepted("Poly") {
		t.Fatalf("rejected: %v", res.Rejected)
	}
	l := res.Layout("Poly")
	// area offset = 4 + 8*len, len slot at 0.
	want := expr.Konst(4).Add(expr.ReadNative(8, expr.Konst(0), 4))
	if got := l.FieldOff["area"]; !got.Equal(want) {
		t.Errorf("off(area) = %s, want %s", got, want)
	}
}

func TestArrayOfArraysRejected(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "M", Fields: []model.FieldDef{
		{Name: "rows", Type: model.ArrayOf(model.ArrayOf(model.Prim(model.KindDouble)))},
	}})
	res := Analyze(reg, []string{"M"})
	if res.IsAccepted("M") {
		t.Fatalf("array of arrays accepted")
	}
}

func TestRebaseNestedSymbolic(t *testing.T) {
	// Outer { int pre; Inner in; } with Inner { int[] xs; long tail; }:
	// tail's offset within Outer = 4 (pre) + 4 (xs len) + 4*len, where the
	// len slot itself is at outer offset 4.
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Inner", Fields: []model.FieldDef{
		{Name: "xs", Type: model.ArrayOf(model.Prim(model.KindInt))},
		{Name: "tail", Type: model.Prim(model.KindLong)},
	}})
	reg.Define(model.ClassDef{Name: "Outer", Fields: []model.FieldDef{
		{Name: "pre", Type: model.Prim(model.KindInt)},
		{Name: "in", Type: model.Object("Inner")},
		{Name: "post", Type: model.Prim(model.KindInt)},
	}})
	res := Analyze(reg, []string{"Outer"})
	if !res.IsAccepted("Outer") {
		t.Fatalf("rejected: %v", res.Rejected)
	}
	l := res.Layout("Outer")
	inOff := l.FieldOff["in"]
	if !inOff.IsConst() || inOff.ConstValue() != 4 {
		t.Fatalf("off(in) = %s", inOff)
	}
	// post = 4 + size(Inner rebased) = 4 + (12 + 4*readNative(BASE+4,4))
	post := l.FieldOff["post"]
	buf := make(fakeNative, 64)
	binary.LittleEndian.PutUint32(buf[4:], 7) // xs.len = 7
	if got := post.Eval(buf, 0); got != 4+4+28+8 {
		t.Errorf("eval off(post) = %d, want 44", got)
	}
	// Inner's own tail offset evaluated at the sub-record base must agree.
	tailInInner, _ := res.FieldOffsetIn("Inner", "tail")
	if got := tailInInner.Eval(buf, 4); got != 4+28 {
		t.Errorf("eval inner tail = %d, want 32", got)
	}
}

func TestRejectedDoesNotPoisonOthers(t *testing.T) {
	reg := model.NewRegistry()
	reg.Define(model.ClassDef{Name: "Node", Fields: []model.FieldDef{
		{Name: "next", Type: model.Object("Node")},
	}})
	reg.Define(model.ClassDef{Name: "Ok", Fields: []model.FieldDef{
		{Name: "v", Type: model.Prim(model.KindLong)},
	}})
	res := Analyze(reg, []string{"Node", "Ok"})
	if !res.IsAccepted("Ok") || res.IsAccepted("Node") {
		t.Errorf("accepted = %v, rejected = %v", res.Accepted, res.Rejected)
	}
}

func TestUnknownClassRejected(t *testing.T) {
	reg := model.NewRegistry()
	res := Analyze(reg, []string{"Ghost"})
	if res.IsAccepted("Ghost") {
		t.Fatalf("unknown class accepted")
	}
}
