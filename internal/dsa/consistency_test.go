package dsa_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsa"
	"repro/internal/model"
	"repro/internal/serde"
)

// byteReader adapts wire bytes to expr.NativeReader.
type byteReader []byte

func (b byteReader) ReadNative(base, off int64, sz int) int64 {
	var v uint64
	for i := 0; i < sz; i++ {
		v |= uint64(b[base+off+int64(i)]) << (8 * i)
	}
	switch sz {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// TestOffsetsAgreeWithSerializer is the central cross-component
// invariant of the whole system (paper section 3.6: "we need to
// guarantee that the way our compiler computes these offsets is
// consistent with how data is actually serialized"): for randomly
// generated schemas and records, every primitive field read through the
// DSA's (possibly symbolic) offset expression over the serialized bytes
// must equal the value that was encoded.
func TestOffsetsAgreeWithSerializer(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		reg := model.NewRegistry()

		// Random leaf class: prims + at most one prim array, array not
		// necessarily last (fields after it get symbolic offsets).
		nLeaf := 1 + r.Intn(4)
		arrayAt := -1
		if r.Intn(2) == 0 {
			arrayAt = r.Intn(nLeaf)
		}
		kinds := []model.Kind{model.KindInt, model.KindLong, model.KindDouble, model.KindShort}
		var leafFields []model.FieldDef
		for i := 0; i < nLeaf; i++ {
			if i == arrayAt {
				leafFields = append(leafFields, model.FieldDef{
					Name: fmt.Sprintf("arr%d", i),
					Type: model.ArrayOf(model.Prim(kinds[r.Intn(len(kinds))])),
				})
				continue
			}
			leafFields = append(leafFields, model.FieldDef{
				Name: fmt.Sprintf("f%d", i),
				Type: model.Prim(kinds[r.Intn(len(kinds))]),
			})
		}
		reg.Define(model.ClassDef{Name: "Leaf", Fields: leafFields})

		// Top class: a prim, a nested Leaf, a trailing prim.
		reg.Define(model.ClassDef{Name: "Top", Fields: []model.FieldDef{
			{Name: "pre", Type: model.Prim(model.KindLong)},
			{Name: "leaf", Type: model.Object("Leaf")},
			{Name: "post", Type: model.Prim(model.KindInt)},
		}})

		layouts := dsa.Analyze(reg, []string{"Top"})
		if !layouts.IsAccepted("Top") {
			t.Logf("seed %d: rejected (%v)", seed, layouts.Rejected)
			return false
		}
		codec := serde.NewCodec(reg, layouts)

		// Random record values.
		leafObj := serde.Obj{}
		expect := map[string]int64{}
		for i, fd := range leafFields {
			if i == arrayAt {
				n := r.Intn(5)
				vals := make([]int64, n)
				for j := range vals {
					vals[j] = int64(r.Intn(100))
				}
				leafObj[fd.Name] = vals
				continue
			}
			v := int64(r.Intn(1000))
			if fd.Type.Kind == model.KindDouble {
				leafObj[fd.Name] = float64(v)
			} else {
				leafObj[fd.Name] = v
			}
			expect["leaf."+fd.Name] = v
		}
		preV, postV := int64(r.Intn(1000)), int64(r.Intn(1000))
		top := serde.Obj{"pre": preV, "leaf": leafObj, "post": postV}
		expect["pre"] = preV
		expect["post"] = postV

		wire, err := codec.Encode("Top", top, nil)
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		payload := byteReader(wire[serde.SizePrefixBytes:])
		topL := layouts.Layout("Top")
		leafL := layouts.Layout("Leaf")
		leafBase := topL.FieldOff["leaf"].Eval(payload, 0)

		check := func(name string, e int64, off int64, k model.Kind) bool {
			got := payload.ReadNative(0, off, k.Size())
			if k == model.KindDouble {
				// Encoded as float bits of float64(v); compare bits.
				want := int64(float64bits(float64(e)))
				if got != want {
					t.Logf("seed %d: %s = %#x, want %#x", seed, name, got, want)
					return false
				}
				return true
			}
			if got != e {
				t.Logf("seed %d: %s = %d, want %d", seed, name, got, e)
				return false
			}
			return true
		}

		for i, fd := range leafFields {
			if i == arrayAt {
				continue
			}
			off := leafBase + leafL.FieldOff[fd.Name].Eval(payload, leafBase)
			if !check("leaf."+fd.Name, expect["leaf."+fd.Name], off, fd.Type.Kind) {
				return false
			}
		}
		if !check("pre", preV, topL.FieldOff["pre"].Eval(payload, 0), model.KindLong) {
			return false
		}
		if !check("post", postV, topL.FieldOff["post"].Eval(payload, 0), model.KindInt) {
			return false
		}
		// The top-level size expression (when linear) must equal the
		// actual payload length.
		if topL.Size != nil {
			if got := topL.Size.Eval(payload, 0); got != int64(len(payload)) {
				t.Logf("seed %d: size expr %d != payload %d", seed, got, len(payload))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func float64bits(f float64) uint64 { return math.Float64bits(f) }
