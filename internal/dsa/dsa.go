// Package dsa implements the data structure analyzer of paper section
// 3.3: given a user-annotated top-level data type T, it explores every
// class referenced directly or transitively by T and computes, for each
// primitive- or array-typed field, its offset inside the inlined
// native-buffer representation of T.
//
// Offsets are computed bottom-up by a DFS over the class hierarchy. A
// class whose fields all have statically known sizes gets constant
// offsets; a class containing a variable-length array gets symbolic
// offsets (expr.Expr) for everything laid out after the array, exactly as
// in the paper's example: for class C { int a; long[] b; double c; } the
// offset of c is 4 + 4 + 8*readNative(BASE, 4, 4).
//
// The inlined format has no pointers: a reference field's "value" is the
// sub-record inlined at the field's offset; an array is a 4-byte length
// followed by its elements back to back; a string is treated as a char
// array (the paper's special case). The analyzer rejects (a) non-tree
// shapes — class-level recursion cannot be represented without pointers —
// and (b) layouts it cannot express with linear offset expressions, such
// as a variable-size-element array followed by more fields. Rejected top
// types simply stay on the heap path; the compiler will not transform
// statements touching them.
package dsa

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/model"
)

// Layout is the inlined layout of one class, offsets relative to the
// start of a record of this class.
type Layout struct {
	Class *model.Class
	// FieldOff maps each field name to the offset of its inlined
	// storage: the value itself for primitives, the 4-byte length slot
	// for arrays and strings, the sub-record base for reference fields.
	FieldOff map[string]*expr.Expr
	// Size is the total inlined size of a record, or nil when the size
	// is not expressible as a linear expression (variable-size-element
	// array in tail position). Records of such classes are still
	// constructible; their size is carried by the top-level record's
	// size prefix.
	Size *expr.Expr
	// Fixed reports whether Size is a compile-time constant.
	Fixed bool
}

// Result holds the layouts for every class reachable from the analyzed
// top-level types, plus which top types were accepted.
type Result struct {
	Layouts map[string]*Layout
	// Accepted lists top-level types whose whole hierarchy was
	// representable; programs using rejected types keep the heap path.
	Accepted []string
	// Rejected maps top-level type names to the reason they cannot be
	// inlined.
	Rejected map[string]string
}

// Layout returns the layout for a class name, or nil.
func (r *Result) Layout(name string) *Layout { return r.Layouts[name] }

// IsAccepted reports whether the named top type was accepted.
func (r *Result) IsAccepted(name string) bool {
	for _, t := range r.Accepted {
		if t == name {
			return true
		}
	}
	return false
}

// InHierarchy reports whether the class participates in any accepted
// hierarchy (i.e. has a layout).
func (r *Result) InHierarchy(name string) bool {
	_, ok := r.Layouts[name]
	return ok
}

// analyzer carries DFS state.
type analyzer struct {
	reg      *model.Registry
	layouts  map[string]*Layout
	visiting map[string]bool // cycle detection
}

// Analyze computes layouts for the given top-level types over the
// registry. Each top type's hierarchy is explored by DFS; failures
// reject only that top type.
func Analyze(reg *model.Registry, topTypes []string) *Result {
	a := &analyzer{
		reg:      reg,
		layouts:  make(map[string]*Layout),
		visiting: make(map[string]bool),
	}
	res := &Result{Layouts: a.layouts, Rejected: make(map[string]string)}
	seen := make(map[string]bool)
	for _, t := range topTypes {
		if seen[t] {
			continue
		}
		seen[t] = true
		if _, err := a.classLayout(t); err != nil {
			res.Rejected[t] = err.Error()
			continue
		}
		res.Accepted = append(res.Accepted, t)
	}
	sort.Strings(res.Accepted)
	return res
}

// classLayout computes (and memoizes) the layout of one class.
func (a *analyzer) classLayout(name string) (*Layout, error) {
	if l, ok := a.layouts[name]; ok {
		return l, nil
	}
	if a.visiting[name] {
		return nil, fmt.Errorf("dsa: class %s is recursive — not a tree shape", name)
	}
	cls, ok := a.reg.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("dsa: unknown class %s", name)
	}
	a.visiting[name] = true
	defer delete(a.visiting, name)

	l := &Layout{Class: cls, FieldOff: make(map[string]*expr.Expr)}
	cur := expr.Konst(0)
	fixed := true
	for i, f := range cls.Fields {
		if cur == nil {
			return nil, fmt.Errorf(
				"dsa: class %s: field %s follows a variable-size-element array; offset not expressible",
				name, f.Name)
		}
		l.FieldOff[f.Name] = cur
		next, fldFixed, err := a.advance(cur, f.Type, name, f.Name)
		if err != nil {
			return nil, err
		}
		cur = next
		fixed = fixed && fldFixed
		_ = i
	}
	l.Size = cur
	l.Fixed = fixed && cur != nil && cur.IsConst()
	a.layouts[name] = l
	return l, nil
}

// advance returns the offset immediately after a field of type t laid
// out at cur, or nil when no following field can be placed. fixed
// reports whether the field's inlined size is constant.
func (a *analyzer) advance(cur *expr.Expr, t model.Type, owner, field string) (*expr.Expr, bool, error) {
	switch {
	case !t.IsRef():
		return cur.AddConst(int64(t.Kind.Size())), true, nil

	case t.Array && t.Elem.Kind != model.KindRef:
		// Primitive array: [len:4][len * elemSize].
		lenTerm := expr.ReadNative(int64(t.Elem.Kind.Size()), cur, 4)
		return cur.AddConst(4).Add(lenTerm), false, nil

	case t.Array && t.Elem.Array:
		return nil, false, fmt.Errorf("dsa: class %s: field %s is an array of arrays — unsupported", owner, field)

	case t.Array: // array of class references
		el, err := a.classLayout(t.Elem.Class)
		if err != nil {
			return nil, false, err
		}
		if el.Size != nil && el.Size.IsConst() {
			// Fixed-stride inlined element records.
			lenTerm := expr.ReadNative(el.Size.ConstValue(), cur, 4)
			return cur.AddConst(4).Add(lenTerm), false, nil
		}
		// Variable-size elements: representable only in tail position.
		// Element access degrades to a schema-guided scan at run time.
		return nil, false, nil

	case t.Class == model.StringClassName:
		// Strings are char arrays (paper special case): [len:4][len*2].
		// Register the String layout itself so string allocations on the
		// data path are recognized as hierarchy members.
		if _, ok := a.reg.Lookup(model.StringClassName); ok {
			if _, err := a.classLayout(model.StringClassName); err != nil {
				return nil, false, err
			}
		}
		lenTerm := expr.ReadNative(2, cur, 4)
		return cur.AddConst(4).Add(lenTerm), false, nil

	default: // reference to a class: sub-record inlined here
		sub, err := a.classLayout(t.Class)
		if err != nil {
			return nil, false, err
		}
		if sub.Size == nil {
			return nil, false, nil // tail-only sub-record
		}
		return cur.Add(rebase(sub.Size, cur)), sub.Fixed, nil
	}
}

// rebase rewrites an expression whose readNative offsets are relative to
// a sub-record base so they become relative to the enclosing record base
// at offset delta: every term offset o becomes delta + rebase(o).
func rebase(e *expr.Expr, delta *expr.Expr) *expr.Expr {
	if e.IsConst() {
		return e
	}
	out := &expr.Expr{Const: e.Const}
	for _, t := range e.Terms {
		out.Terms = append(out.Terms, expr.Term{
			Scale: t.Scale,
			Off:   delta.Add(rebase(t.Off, delta)),
			Size:  t.Size,
		})
	}
	return out
}

// Rebase is the exported form used by the transformer when it folds a
// sub-record's field offset into an enclosing record access.
func Rebase(e *expr.Expr, delta *expr.Expr) *expr.Expr { return rebase(e, delta) }

// FieldOffsetIn returns the offset expression of a field of class cls
// relative to cls's own record base.
func (r *Result) FieldOffsetIn(cls, field string) (*expr.Expr, bool) {
	l := r.Layouts[cls]
	if l == nil {
		return nil, false
	}
	e, ok := l.FieldOff[field]
	return e, ok
}

// SizeOf returns the size expression of a class, or nil if non-linear or
// unknown.
func (r *Result) SizeOf(cls string) *expr.Expr {
	l := r.Layouts[cls]
	if l == nil {
		return nil
	}
	return l.Size
}
