// Package expr implements the symbolic size and offset expressions used
// by the data structure analyzer (paper section 3.3).
//
// A class that directly or transitively contains a variable-length array
// has no statically decidable inlined size; its size and the offsets of
// fields laid out after the array are linear expressions over the array
// lengths stored in the inlined bytes. The paper's example
//
//	class C { int a; long[] b; double c; }
//
// yields offset(c) = 4 + 4 + 8*readNative(BASE_C, 4, 4) and
// size(C) = 16 + 8*readNative(BASE_C, 4, 4).
//
// An Expr is a constant plus a sum of scaled ReadNative terms. Each term's
// offset argument is itself an Expr, because an array's length slot can
// sit behind an earlier variable-length array. Terms are resolved at run
// time against a NativeReader (the arena), which is precisely the
// resolveOffset auxiliary function of Algorithm 1.
package expr

import (
	"fmt"
	"strings"
)

// NativeReader reads sz bytes at base+off from native memory, returning
// the value zero-extended to int64. The Gerenuk arena implements it.
type NativeReader interface {
	ReadNative(base int64, off int64, sz int) int64
}

// Term is one scaled readNative occurrence: Scale * readNative(BASE+Off, Size).
type Term struct {
	Scale int64
	Off   *Expr // offset of the length slot, relative to the record base
	Size  int   // bytes of the length slot (always 4 in practice)
}

// Expr is Const + sum(Terms). The zero value is the constant 0.
type Expr struct {
	Const int64
	Terms []Term
}

// Konst returns a constant expression.
func Konst(c int64) *Expr { return &Expr{Const: c} }

// ReadNative returns the expression Scale*readNative(BASE+off, size).
func ReadNative(scale int64, off *Expr, size int) *Expr {
	return &Expr{Terms: []Term{{Scale: scale, Off: off, Size: size}}}
}

// IsConst reports whether the expression has no symbolic terms.
func (e *Expr) IsConst() bool { return len(e.Terms) == 0 }

// ConstValue returns the constant value; it panics if the expression is
// symbolic, which indicates a compiler bug (the transformation must route
// symbolic offsets through resolveOffset).
func (e *Expr) ConstValue() int64 {
	if !e.IsConst() {
		panic("expr: ConstValue on symbolic expression " + e.String())
	}
	return e.Const
}

// Add returns e + o as a new expression.
func (e *Expr) Add(o *Expr) *Expr {
	out := &Expr{Const: e.Const + o.Const}
	out.Terms = append(out.Terms, e.Terms...)
	out.Terms = append(out.Terms, o.Terms...)
	return out
}

// AddConst returns e + c as a new expression.
func (e *Expr) AddConst(c int64) *Expr { return e.Add(Konst(c)) }

// Scale returns e * k as a new expression.
func (e *Expr) Scale(k int64) *Expr {
	out := &Expr{Const: e.Const * k}
	for _, t := range e.Terms {
		out.Terms = append(out.Terms, Term{Scale: t.Scale * k, Off: t.Off, Size: t.Size})
	}
	return out
}

// Eval resolves the expression against a concrete record base address,
// reading array-length slots through r. This is resolveOffset from
// Algorithm 1.
func (e *Expr) Eval(r NativeReader, base int64) int64 {
	v := e.Const
	for _, t := range e.Terms {
		off := t.Off.Eval(r, base)
		v += t.Scale * r.ReadNative(base, off, t.Size)
	}
	return v
}

// String renders the expression in the paper's notation.
func (e *Expr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", e.Const)
	for _, t := range e.Terms {
		fmt.Fprintf(&b, " + %d*readNative(BASE+%s, %d)", t.Scale, t.Off.String(), t.Size)
	}
	return b.String()
}

// Equal reports structural equality of two expressions.
func (e *Expr) Equal(o *Expr) bool {
	if e.Const != o.Const || len(e.Terms) != len(o.Terms) {
		return false
	}
	for i, t := range e.Terms {
		u := o.Terms[i]
		if t.Scale != u.Scale || t.Size != u.Size || !t.Off.Equal(u.Off) {
			return false
		}
	}
	return true
}
