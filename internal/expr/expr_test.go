package expr

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// fakeNative is a flat byte buffer implementing NativeReader, standing in
// for the arena in unit tests.
type fakeNative []byte

func (f fakeNative) ReadNative(base, off int64, sz int) int64 {
	m := f[base+off:]
	switch sz {
	case 1:
		return int64(m[0])
	case 2:
		return int64(binary.LittleEndian.Uint16(m))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(m)))
	case 8:
		return int64(binary.LittleEndian.Uint64(m))
	}
	panic("bad size")
}

func TestConstArithmetic(t *testing.T) {
	e := Konst(4).AddConst(4).Add(Konst(8))
	if !e.IsConst() {
		t.Fatalf("expected const")
	}
	if got := e.ConstValue(); got != 16 {
		t.Errorf("ConstValue = %d, want 16", got)
	}
	if got := e.Scale(3).ConstValue(); got != 48 {
		t.Errorf("Scale = %d, want 48", got)
	}
}

// TestPaperExample checks the exact expression from paper section 3.3:
// class C { int a; long[] b; double c; } in the *inlined* layout has
// offset(a)=0, offset(b)=4 (its length slot), and
// offset(c) = 4 + 4 + 8*readNative(BASE, 4, 4);
// size(C) = 16 + 8*readNative(BASE, 4, 4).
func TestPaperExample(t *testing.T) {
	lenB := ReadNative(1, Konst(4), 4)
	offC := Konst(4 + 4).Add(lenB.Scale(8))
	sizeC := Konst(16).Add(lenB.Scale(8))

	// Build a record with b.len = 5: [a:4][len:4][5 longs][c:8]
	buf := make(fakeNative, 4+4+5*8+8)
	binary.LittleEndian.PutUint32(buf[0:], 7)                      // a
	binary.LittleEndian.PutUint32(buf[4:], 5)                      // b.len
	binary.LittleEndian.PutUint64(buf[8+5*8:], 0x4045000000000000) // c = 42.0

	if got := offC.Eval(buf, 0); got != 48 {
		t.Errorf("offset(c) = %d, want 48", got)
	}
	if got := sizeC.Eval(buf, 0); got != 56 {
		t.Errorf("size(C) = %d, want 56", got)
	}
	if got := offC.String(); got != "8 + 8*readNative(BASE+4, 4)" {
		t.Errorf("String = %q", got)
	}
}

func TestNestedSymbolicOffset(t *testing.T) {
	// Two consecutive arrays: [len1:4][len1 bytes][len2:4][len2 * 8] — the
	// second length slot's offset depends on the first array's length.
	len1 := ReadNative(1, Konst(0), 4)
	off2 := Konst(4).Add(len1) // offset of len2
	total := off2.AddConst(4).Add(ReadNative(8, off2, 4))

	buf := make(fakeNative, 64)
	binary.LittleEndian.PutUint32(buf[0:], 8)  // len1 = 8
	binary.LittleEndian.PutUint32(buf[12:], 3) // len2 = 3 at offset 4+8
	if got := off2.Eval(buf, 0); got != 12 {
		t.Errorf("off2 = %d, want 12", got)
	}
	if got := total.Eval(buf, 0); got != 12+4+24 {
		t.Errorf("total = %d, want 40", got)
	}
}

func TestEvalWithNonzeroBase(t *testing.T) {
	lenB := ReadNative(2, Konst(4), 4)
	buf := make(fakeNative, 128)
	binary.LittleEndian.PutUint32(buf[100+4:], 6)
	if got := lenB.Eval(buf, 100); got != 12 {
		t.Errorf("Eval(base=100) = %d, want 12", got)
	}
}

func TestEqual(t *testing.T) {
	a := Konst(8).Add(ReadNative(8, Konst(4), 4))
	b := Konst(8).Add(ReadNative(8, Konst(4), 4))
	c := Konst(8).Add(ReadNative(4, Konst(4), 4))
	if !a.Equal(b) {
		t.Errorf("a should equal b")
	}
	if a.Equal(c) {
		t.Errorf("a should not equal c (different scale)")
	}
	if a.Equal(Konst(8)) {
		t.Errorf("a should not equal a constant")
	}
}

func TestConstValuePanicsOnSymbolic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("ConstValue on symbolic expression did not panic")
		}
	}()
	ReadNative(1, Konst(0), 4).ConstValue()
}

// Property: Add and Scale behave like linear algebra over the evaluated
// values: (a+b).Eval = a.Eval + b.Eval and (a*k).Eval = k*a.Eval.
func TestLinearityProperty(t *testing.T) {
	buf := make(fakeNative, 64)
	binary.LittleEndian.PutUint32(buf[0:], 3)
	binary.LittleEndian.PutUint32(buf[4:], 11)
	mk := func(c int64, s1, s2 int64) *Expr {
		return Konst(c).Add(ReadNative(s1, Konst(0), 4)).Add(ReadNative(s2, Konst(4), 4))
	}
	f := func(c1, c2 int32, s1, s2, k int8) bool {
		a := mk(int64(c1), int64(s1), int64(s2))
		b := mk(int64(c2), int64(s2), int64(s1))
		sum := a.Add(b)
		if sum.Eval(buf, 0) != a.Eval(buf, 0)+b.Eval(buf, 0) {
			return false
		}
		sc := a.Scale(int64(k))
		return sc.Eval(buf, 0) == int64(k)*a.Eval(buf, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
