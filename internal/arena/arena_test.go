package arena

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func TestRegionAppendAndAddressing(t *testing.T) {
	a := New()
	r := a.NewRegion("t")
	p := r.Append(16)
	q := r.Append(8)
	if p == 0 || q != p+16 {
		t.Fatalf("addresses: p=%#x q=%#x", p, q)
	}
	a.WriteNative(p, 0, 8, 0x1122334455667788)
	a.WriteNative(q, 4, 4, -7)
	if got := a.ReadNative(p, 0, 8); got != 0x1122334455667788 {
		t.Errorf("read8 = %#x", got)
	}
	if got := a.ReadNative(q, 4, 4); got != -7 {
		t.Errorf("read4 = %d, want -7 (sign extension)", got)
	}
	if r.Len() != 24 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestWritePastEndExtends(t *testing.T) {
	a := New()
	r := a.NewRegion("t")
	p := r.Append(4)
	a.WriteNative(p, 4, 8, 42) // lands just past the appended bytes
	if r.Len() != 12 {
		t.Errorf("Len = %d, want 12", r.Len())
	}
	if got := a.ReadNative(p, 4, 8); got != 42 {
		t.Errorf("read = %d", got)
	}
}

func TestCrossRegionCopyRecord(t *testing.T) {
	a := New()
	src := a.NewRegion("src")
	dst := a.NewRegion("dst")
	p := src.Append(8)
	a.WriteNative(p, 0, 8, 99)
	q := dst.CopyRecord(p, 8)
	if got := a.ReadNative(q, 0, 8); got != 99 {
		t.Errorf("copied value = %d", got)
	}
	if int(q>>32) == int(p>>32) {
		t.Errorf("copy stayed in the same region")
	}
}

func TestFreeWholesaleAndAccounting(t *testing.T) {
	a := New()
	r1 := a.NewRegion("a")
	r2 := a.NewRegion("b")
	r1.Append(100)
	r2.Append(50)
	if a.LiveBytes() != 150 {
		t.Fatalf("live = %d", a.LiveBytes())
	}
	r1.Free()
	if a.LiveBytes() != 50 {
		t.Errorf("live after free = %d", a.LiveBytes())
	}
	st := a.Stats()
	if st.FreedBytes != 100 || st.PeakBytes != 150 || st.AllocBytes != 150 || st.Regions != 2 {
		t.Errorf("stats = %+v", st)
	}
	if !r1.Freed() || r2.Freed() {
		t.Errorf("freed flags wrong")
	}
	r1.Free() // double free is a no-op
	if a.Stats().FreedBytes != 100 {
		t.Errorf("double free accounted")
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	a := New()
	r := a.NewRegion("t")
	p := r.Append(8)
	r.Free()
	defer func() {
		if recover() == nil {
			t.Errorf("read of freed region did not panic")
		}
	}()
	a.ReadNative(p, 0, 8)
}

func TestAdoptBytes(t *testing.T) {
	a := New()
	data := []byte{1, 0, 0, 0, 2, 0, 0, 0}
	r := a.AdoptBytes("shuffle-0", data)
	if got := a.ReadNative(r.Base(), 4, 4); got != 2 {
		t.Errorf("adopted read = %d", got)
	}
	data[4] = 9 // mutating the source must not affect the region
	if got := a.ReadNative(r.Base(), 4, 4); got != 2 {
		t.Errorf("region aliases caller bytes")
	}
}

// TestRecordBuilderInOrder builds the paper's class C { int a; long[] b;
// double c; } in layout order and checks the final bytes.
func TestRecordBuilderInOrder(t *testing.T) {
	a := New()
	r := a.NewRegion("t")
	b := r.NewRecord()

	lenB := expr.ReadNative(1, expr.Konst(4), 4)
	offC := expr.Konst(8).Add(lenB.Scale(8))

	b.WriteAt(b.Base(), expr.Konst(0), 4, 7) // a = 7
	b.AppendArray(8, 3)
	b.WriteAt(b.Base(), offC, 8, 1234) // c (raw bits)
	base, size, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if size != 4+4+24+8 {
		t.Errorf("size = %d, want 40", size)
	}
	if got := a.ReadNative(base, 0, 4); got != 7 {
		t.Errorf("a = %d", got)
	}
	if got := a.ReadNative(base, 4, 4); got != 3 {
		t.Errorf("b.len = %d", got)
	}
	if got := a.ReadNative(base, 32, 8); got != 1234 {
		t.Errorf("c = %d", got)
	}
}

// TestRecordBuilderOutOfOrder writes field c BEFORE creating array b: the
// write must park and flush when the array creation event fires — the
// event-driven mechanism of section 3.6.
func TestRecordBuilderOutOfOrder(t *testing.T) {
	a := New()
	r := a.NewRegion("t")
	b := r.NewRecord()

	lenB := expr.ReadNative(1, expr.Konst(4), 4)
	offC := expr.Konst(8).Add(lenB.Scale(8))

	b.WriteAt(b.Base(), offC, 8, 5555)       // c first: offset unknown, parks
	b.WriteAt(b.Base(), expr.Konst(0), 4, 7) // a
	b.AppendArray(8, 2)
	base, size, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if size != 4+4+16+8 {
		t.Errorf("size = %d, want 32", size)
	}
	if got := a.ReadNative(base, 24, 8); got != 5555 {
		t.Errorf("c = %d, want 5555", got)
	}
}

func TestRecordBuilderSealFailsOnMissingArray(t *testing.T) {
	a := New()
	r := a.NewRegion("t")
	b := r.NewRecord()
	off := expr.Konst(8).Add(expr.ReadNative(8, expr.Konst(4), 4))
	b.WriteAt(b.Base(), off, 8, 1)
	if _, _, err := b.Seal(); err == nil {
		t.Errorf("Seal succeeded with unresolved pending write")
	}
}

func TestNestedSymbolicArrays(t *testing.T) {
	// Record: [len1:4][len1 int32s][len2:4][len2 int32s][tail:4]
	a := New()
	r := a.NewRegion("t")
	b := r.NewRecord()

	len1 := expr.ReadNative(1, expr.Konst(0), 4)
	off2 := expr.Konst(4).Add(len1.Scale(4)) // len2 slot
	len2 := &expr.Expr{Terms: []expr.Term{{Scale: 1, Off: off2, Size: 4}}}
	tail := off2.AddConst(4).Add(len2.Scale(4))

	b.WriteAt(b.Base(), tail, 4, 77) // parks: neither array exists
	b.AppendArray(4, 3)
	b.AppendArray(4, 2)
	base, size, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	wantTail := int64(4 + 12 + 4 + 8)
	if got := a.ReadNative(base, wantTail, 4); got != 77 {
		t.Errorf("tail = %d at %d (size %d)", got, wantTail, size)
	}
}

// Property: for random sequences of appends and read/write pairs, every
// read returns the last value written at that location.
func TestReadWriteRoundTripProperty(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	f := func(vals []int64, szSel []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		a := New()
		r := a.NewRegion("q")
		base := r.Append(8 * len(vals))
		for i, v := range vals {
			sz := 8
			if len(szSel) > 0 {
				sz = sizes[int(szSel[i%len(szSel)])%4]
			}
			off := int64(i * 8)
			a.WriteNative(base, off, sz, v)
			got := a.ReadNative(base, off, sz)
			// Truncate-and-sign-extend semantics.
			var want int64
			switch sz {
			case 1:
				want = int64(int8(v))
			case 2:
				want = int64(int16(v))
			case 4:
				want = int64(int32(v))
			case 8:
				want = v
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// catchFault runs f and returns the recovered *Fault, or nil when f
// panicked with something else (or not at all).
func catchFault(f func()) (fault *Fault) {
	defer func() {
		if r := recover(); r != nil {
			fault, _ = r.(*Fault)
		}
	}()
	f()
	return nil
}

// TestDataPathViolationsPanicWithFault: every access violation reachable
// from speculative execution must panic with the typed *Fault so the
// engine's recover barrier can classify it as a failed speculation
// (plain panics stay reserved for engine API misuse).
func TestDataPathViolationsPanicWithFault(t *testing.T) {
	a := New()
	r := a.NewRegion("t")
	p := r.Append(8)

	if f := catchFault(func() { a.ReadNative(int64(1)<<62, 0, 8) }); f == nil {
		t.Errorf("wild address did not panic with *Fault")
	} else if f.Error() == "" {
		t.Errorf("empty fault message")
	}
	if f := catchFault(func() { a.ReadNative(p, 1<<40, 8) }); f == nil {
		t.Errorf("out-of-bounds read did not panic with *Fault")
	}
	if f := catchFault(func() { a.Slice(p, 1<<30) }); f == nil {
		t.Errorf("past-end slice did not panic with *Fault")
	}
	freed := a.NewRegion("freed")
	q := freed.Append(8)
	freed.Free()
	if f := catchFault(func() { a.ReadNative(q, 0, 8) }); f == nil {
		t.Errorf("use-after-free did not panic with *Fault")
	}
	// API misuse is a bug in the engine, not failed speculation: it must
	// NOT be a *Fault (the recover barrier would wrongly deoptimize it).
	if f := catchFault(func() { a.ReadNative(p, 0, 3) }); f != nil {
		t.Errorf("invalid access size panicked with *Fault: %v", f)
	}
}

// TestAdoptBytesOwnedZeroCopy: the owned adoption path must wrap the
// caller's array without copying, account it as live bytes, and still
// protect the caller from a later region append (the re-capped slice
// forces reallocation instead of scribbling past the payload).
func TestAdoptBytesOwnedZeroCopy(t *testing.T) {
	a := New()
	data := make([]byte, 16, 64) // spare capacity an append must NOT reuse
	for i := range data {
		data[i] = byte(i)
	}
	canary := data[:32][16:] // the bytes after len, inside the caller's cap
	for i := range canary {
		canary[i] = 0xEE
	}
	r := a.AdoptBytesOwned("blk", data)
	if &r.Bytes()[0] != &data[0] {
		t.Fatalf("owned adoption copied the payload")
	}
	if a.LiveBytes() != 16 || r.Len() != 16 {
		t.Fatalf("live=%d len=%d, want 16", a.LiveBytes(), r.Len())
	}
	if got := a.ReadNative(r.Base(), 8, 1); got != 8 {
		t.Fatalf("ReadNative over adopted bytes = %d, want 8", got)
	}
	r.AppendBytes([]byte{1, 2, 3, 4})
	for i, b := range canary {
		if b != 0xEE {
			t.Fatalf("append scribbled into the caller's array at +%d", i)
		}
	}
	if r.Len() != 20 {
		t.Fatalf("post-append len = %d", r.Len())
	}
	r.Free()
	if a.LiveBytes() != 0 {
		t.Fatalf("live after free = %d", a.LiveBytes())
	}
}
