package arena

import (
	"fmt"

	"repro/internal/expr"
)

// RecordBuilder constructs one inlined top-level record in a region,
// implementing the event-driven offset resolution of paper section 3.6
// ("Determining Offsets"): a field whose statically computed offset
// depends on the length of an array that has not been created yet cannot
// be placed, so its value is parked in a temporary buffer together with a
// handler. When the array is created, the builder fires the event,
// re-evaluates the pending offsets against the now-available lengths and
// copies the parked values into the actual buffer.
//
// Addresses are absolute arena addresses: the builder covers the byte
// range [Base(), end-of-region) while the record is open, and sub-record
// construction passes interior bases directly.
type RecordBuilder struct {
	region *Region
	base   Addr
	// lengths records the absolute addresses of array length slots
	// already written — the symbols pending offsets may read. Records
	// have few arrays, so a small slice beats a map.
	lengths []Addr
	pending []pendingWrite
}

type pendingWrite struct {
	base Addr
	off  *expr.Expr
	size int
	val  int64
}

// NewRecord starts building a record at the current end of the region.
func (r *Region) NewRecord() *RecordBuilder {
	return &RecordBuilder{
		region: r,
		base:   r.AddrOf(len(r.buf)),
	}
}

// Base returns the record's base address.
func (b *RecordBuilder) Base() Addr { return b.base }

// Size returns the bytes appended for this record so far.
func (b *RecordBuilder) Size() int {
	return int(b.region.AddrOf(len(b.region.buf)) - b.base)
}

// End returns the current end address of the record (where the next
// sequential append lands).
func (b *RecordBuilder) End() Addr { return b.base + int64(b.Size()) }

// Reserve appends n zeroed bytes (e.g. a class's constant prefix) and
// returns the address of the reserved range.
func (b *RecordBuilder) Reserve(n int) Addr {
	return b.region.Append(n)
}

// WriteAt stores val at base+off. If off is fully resolvable now
// (constant, or depending only on array lengths already created), the
// value lands immediately, extending the record if it targets bytes just
// past the current end; otherwise it is parked until AppendArray supplies
// the missing length — the paper's handler registration.
func (b *RecordBuilder) WriteAt(base Addr, off *expr.Expr, size int, val int64) {
	if off.IsConst() {
		b.region.arena.WriteNative(base, off.Const, size, val)
		return
	}
	if o, ok := b.TryResolve(base, off); ok {
		b.region.arena.WriteNative(base, o, size, val)
		return
	}
	b.pending = append(b.pending, pendingWrite{base: base, off: off, size: size, val: val})
}

// AppendArray appends an array at the current end of the record: a
// 4-byte length slot followed by n zeroed elements of elemSize bytes
// (pass elemSize 0 for variable-size elements, which are appended
// individually by subsequent construction). It registers the length slot
// and fires the array-creation event, flushing newly resolvable parked
// writes. It returns the absolute address of the length slot.
func (b *RecordBuilder) AppendArray(elemSize, n int) Addr {
	slot := b.region.Append(4 + elemSize*n)
	b.region.arena.WriteNative(slot, 0, 4, int64(n))
	b.lengths = append(b.lengths, slot)
	b.fire()
	return slot
}

// fire re-evaluates pending writes; resolvable ones flush to the buffer.
func (b *RecordBuilder) fire() {
	remaining := b.pending[:0]
	for _, p := range b.pending {
		if o, ok := b.TryResolve(p.base, p.off); ok {
			b.region.arena.WriteNative(p.base, o, p.size, p.val)
		} else {
			remaining = append(remaining, p)
		}
	}
	b.pending = remaining
}

// Seal completes the record, returning its base address and final size.
// It fails if any parked write remains unresolvable, meaning the program
// never created an array the layout depends on — a malformed record the
// runtime must not emit.
func (b *RecordBuilder) Seal() (Addr, int, error) {
	b.fire()
	if len(b.pending) > 0 {
		return 0, 0, fmt.Errorf("arena: record sealed with %d unresolved writes (first offset %s)",
			len(b.pending), b.pending[0].off)
	}
	return b.base, b.Size(), nil
}

// TryResolve evaluates off against base, succeeding only if every
// readNative term refers to an array length slot already created.
func (b *RecordBuilder) TryResolve(base Addr, off *expr.Expr) (int64, bool) {
	v := off.Const
	for _, t := range off.Terms {
		o, ok := b.TryResolve(base, t.Off)
		if !ok || !b.hasLength(base+o) {
			return 0, false
		}
		v += t.Scale * b.region.arena.ReadNative(base, o, t.Size)
	}
	return v, true
}

func (b *RecordBuilder) hasLength(addr Addr) bool {
	for _, l := range b.lengths {
		if l == addr {
			return true
		}
	}
	return false
}

// Covers reports whether addr lies within the open record's range.
func (b *RecordBuilder) Covers(addr Addr) bool {
	return addr >= b.base && addr <= b.End()
}
